// Accuracy–ratio trade-off: DeepSZ's two operating modes (§3.4). The
// expected-accuracy mode maximises compression under an accuracy budget;
// the expected-ratio mode minimises accuracy loss under a size target.
// This example sweeps both on LeNet-5 and prints the frontier.
//
//	go run ./examples/accuracy-tradeoff
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/prune"
	"repro/internal/tensor"
)

func main() {
	tr, err := models.Pretrained(models.LeNet5)
	if err != nil {
		log.Fatal(err)
	}
	net := tr.Net.Clone()
	prune.Network(net, prune.PaperRatios(models.LeNet5), 0.1)
	prune.Retrain(net, tr.Train, 1, 0.03, tensor.NewRNG(7))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\ttarget\tratio\ttop-1 before\ttop-1 after")

	// Expected-accuracy mode: tighter and looser budgets.
	for _, budget := range []float64{0.005, 0.02, 0.05} {
		res, err := core.Encode(net, tr.Test, core.Config{
			ExpectedAccuracyLoss: budget,
			DistortionCriterion:  0.005,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "expected-accuracy\tloss ≤ %.1f%%\t%.1fx\t%.2f%%\t%.2f%%\n",
			100*budget, res.CompressionRatio(),
			100*res.Before.Top1, 100*res.After.Top1)
	}

	// Expected-ratio mode: increasingly aggressive size targets.
	for _, ratio := range []float64{20, 40, 60} {
		res, err := core.Encode(net, tr.Test, core.Config{
			Mode:                core.ExpectedRatio,
			TargetRatio:         ratio,
			DistortionCriterion: 0.005,
		})
		if err != nil {
			fmt.Fprintf(tw, "expected-ratio\t≥ %.0fx\tinfeasible: %v\n", ratio, err)
			continue
		}
		fmt.Fprintf(tw, "expected-ratio\t≥ %.0fx\t%.1fx\t%.2f%%\t%.2f%%\n",
			ratio, res.CompressionRatio(),
			100*res.Before.Top1, 100*res.After.Top1)
	}
	tw.Flush()
	fmt.Println("\nhigher budgets buy higher ratios; the ratio mode hits its size")
	fmt.Println("target while spending as little accuracy as the assessment allows.")
}
