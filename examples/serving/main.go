// Serving under memory pressure: the example spins up the deepszd serving
// stack in-process, fires concurrent clients at a compressed LeNet-300-100,
// and repeats the run under three decode-cache budgets — unlimited, exactly
// one (largest) layer, and half a layer. The cache counters show the
// behaviour shift from "decode once, hit forever" to LRU churn to pure
// streaming (bypass), while every configuration keeps returning identical
// predictions.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/serve"
	"repro/internal/tensor"
)

const (
	clients    = 8
	reqPerConn = 25
	rowsPerReq = 4
)

func main() {
	tr, err := models.Pretrained(models.LeNet300)
	if err != nil {
		log.Fatal(err)
	}
	pruned := tr.Net.Clone()
	prune.Network(pruned, prune.PaperRatios(models.LeNet300), 0.1)
	prune.Retrain(pruned, tr.Train, 1, 0.03, tensor.NewRNG(7))
	res, err := core.Encode(pruned, tr.Test, core.Config{
		ExpectedAccuracyLoss: 0.02,
		DistortionCriterion:  0.005,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := res.Model
	fmt.Printf("model %s: %d B compressed, %d B dense, largest layer %d B\n\n",
		m.NetName, m.TotalBytes(), m.TotalDenseBytes(), m.MaxDenseBytes())

	budgets := []struct {
		label  string
		budget int64
	}{
		{"unlimited", 0},
		{"one layer", m.MaxDenseBytes()},
		{"half layer", m.MaxDenseBytes() / 2},
	}
	var first []int
	for _, b := range budgets {
		argmax, err := runBudget(b.label, b.budget, m, pruned)
		if err != nil {
			log.Fatal(err)
		}
		if first == nil {
			first = argmax
		} else {
			for i := range first {
				if argmax[i] != first[i] {
					log.Fatalf("budget %q changed prediction %d: %d vs %d",
						b.label, i, argmax[i], first[i])
				}
			}
		}
	}
	fmt.Println("all budgets returned identical predictions")
}

// runBudget serves the model over real HTTP under one cache budget, fires
// concurrent clients, prints the stats, and returns the argmax of a fixed
// probe batch for cross-budget comparison.
func runBudget(label string, budget int64, m *core.Model, skeleton *nn.Network) ([]int, error) {
	reg := serve.NewRegistry(budget, serve.BatchOptions{MaxBatch: 32, Window: 2 * time.Millisecond})
	defer reg.Close()
	shape, err := models.InputShape(m.NetName)
	if err != nil {
		return nil, err
	}
	eng, err := reg.Add(m.NetName, m, skeleton, shape)
	if err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: serve.NewServer(reg)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Concurrent clients, each sending its own deterministic inputs.
	t0 := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := tensor.NewRNG(uint64(1000 + c))
			for r := 0; r < reqPerConn; r++ {
				rows := make([][]float32, rowsPerReq)
				for i := range rows {
					rows[i] = make([]float32, eng.InputLen())
					rng.FillNormal(rows[i], 0, 1)
				}
				body, _ := json.Marshal(map[string]any{"inputs": rows})
				resp, err := http.Post(base+"/v1/models/"+m.NetName+"/predict",
					"application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("predict status %d", resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	// Fixed probe batch for the cross-budget consistency check.
	probe := make([][]float32, 8)
	rng := tensor.NewRNG(99)
	for i := range probe {
		probe[i] = make([]float32, eng.InputLen())
		rng.FillNormal(probe[i], 0, 1)
	}
	out, err := eng.Predict(probe)
	if err != nil {
		return nil, err
	}
	argmax := make([]int, len(out))
	for i, row := range out {
		for j, v := range row {
			if v > row[argmax[i]] {
				argmax[i] = j
			}
		}
	}

	rows := clients * reqPerConn * rowsPerReq
	s := reg.Cache().Stats()
	es := eng.Stats()
	fmt.Printf("budget %-9s (%8d B): %5d rows in %7.1fms (%6.0f rows/s), avg batch %.1f\n",
		label, s.Budget, rows, float64(elapsed.Microseconds())/1000, float64(rows)/elapsed.Seconds(), es.AvgBatch)
	fmt.Printf("  cache: %d hits, %d misses, %d coalesced, %d evictions, %d bypasses, %.1f%% hit rate, %d B resident\n",
		s.Hits, s.Misses, s.Coalesced, s.Evictions, s.Bypasses, 100*s.HitRate(), s.BytesInUse)
	return argmax, nil
}
