// Quickstart: the full DeepSZ pipeline in one file — train a LeNet-300-100
// on synthetic MNIST, prune it, compress it with an expected accuracy loss,
// decode it back, and verify the accuracy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

func main() {
	// 1. Build and train the network.
	rng := tensor.NewRNG(42)
	net, err := models.Build(models.LeNet300, rng)
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := models.DataFor(models.LeNet300, 1200, 500)
	if err != nil {
		log.Fatal(err)
	}
	opt := nn.NewSGD(0.1, 0.9, 1e-4)
	nn.Train(net, train, opt, nn.TrainConfig{Epochs: 3, BatchSize: 32, LRDecay: 0.7}, rng)
	fmt.Printf("trained:  top-1 %.2f%%\n", 100*net.Evaluate(test, 100).Top1)

	// 2. Prune to the paper's keep ratios and retrain with masks.
	prune.Network(net, prune.PaperRatios(models.LeNet300), 0.1)
	prune.Retrain(net, train, 1, 0.03, rng)
	fmt.Printf("pruned:   top-1 %.2f%%\n", 100*net.Evaluate(test, 100).Top1)

	// 3. DeepSZ encode: assessment → optimisation → compressed model.
	res, err := core.Encode(net, test, core.Config{
		ExpectedAccuracyLoss: 0.02,
		DistortionCriterion:  0.005,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded:  %d B → %d B (%.1fx; pruning alone %.1fx)\n",
		res.OriginalBytes, res.CompressedBytes,
		res.CompressionRatio(), res.PruningRatio())
	for _, c := range res.Plan.Choices {
		fmt.Printf("          %s: error bound %.0e\n", c.Layer, c.EB)
	}

	// 4. Serialize, decode into a fresh network, verify accuracy.
	blob := res.Model.Marshal()
	m, err := core.Unmarshal(blob)
	if err != nil {
		log.Fatal(err)
	}
	restored := net.Clone()
	if _, err := m.Apply(restored); err != nil {
		log.Fatal(err)
	}
	acc := restored.Evaluate(test, 100)
	fmt.Printf("restored: top-1 %.2f%% (budget allowed −%.1f%%)\n",
		100*acc.Top1, 100*0.02)
}
