// Serving from a replica fleet: the example boots three deepszd-style
// replicas in-process, each carrying the same four compressed models,
// puts the deepszgw gateway in front of them, and fires concurrent
// clients. The per-replica request counts show rendezvous affinity at
// work — every model's traffic lands on at most two of the three
// replicas, so its layers stay hot in few decode caches. Then one
// replica is killed mid-load: the gateway fails over and ejects it, and
// not a single request is lost.
//
//	go run ./examples/gateway
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/serve"
	"repro/internal/tensor"
)

const (
	nModels    = 4
	nReplicas  = 3
	clients    = 6
	reqPerConn = 25
)

// replica is one in-process deepszd: registry, HTTP server, and a
// per-model counter so the example can show where traffic landed.
type replica struct {
	srv    *http.Server
	ln     net.Listener
	counts [nModels]atomic.Int64
}

func buildModel(seed uint64) (*nn.Network, *core.Model, error) {
	rng := tensor.NewRNG(seed)
	net := nn.NewNetwork("demo-mlp",
		nn.NewFlatten("flat"),
		nn.NewDense("ip1", 64, 32, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("ip2", 32, 10, rng),
	)
	prune.Network(net, map[string]float64{"ip1": 0.2, "ip2": 0.4}, 0.1)
	plan := &core.Plan{}
	for _, fc := range net.DenseLayers() {
		plan.Choices = append(plan.Choices, core.Choice{Layer: fc.Name(), EB: 1e-3})
	}
	m, err := core.Generate(net, plan, core.Config{ExpectedAccuracyLoss: 0.01})
	return net, m, err
}

func main() {
	nets := make([]*nn.Network, nModels)
	mods := make([]*core.Model, nModels)
	for i := range nets {
		n, m, err := buildModel(uint64(10 + i))
		if err != nil {
			log.Fatal(err)
		}
		nets[i], mods[i] = n, m
	}

	reps := make([]*replica, nReplicas)
	backends := make([]string, nReplicas)
	for i := range reps {
		rep := &replica{}
		reg := serve.NewRegistry(0, serve.BatchOptions{})
		defer reg.Close()
		for j := range mods {
			if _, err := reg.Add(fmt.Sprintf("m%d", j), mods[j], nets[j], []int{1, 8, 8}); err != nil {
				log.Fatal(err)
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		inner := serve.NewServer(reg)
		rep.srv = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				var m int
				if _, err := fmt.Sscanf(r.URL.Path, "/v1/models/m%d/predict", &m); err == nil && m < nModels {
					rep.counts[m].Add(1)
				}
			}
			inner.ServeHTTP(w, r)
		})}
		rep.ln = ln
		go rep.srv.Serve(ln)
		defer rep.srv.Close()
		reps[i] = rep
		backends[i] = "http://" + ln.Addr().String()
	}

	g, err := gateway.New(backends, gateway.Options{
		ProbeInterval: 50 * time.Millisecond,
		EjectAfter:    3,
		HedgeAfter:    50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	gsrv := &http.Server{Handler: g}
	go gsrv.Serve(gln)
	defer gsrv.Close()
	base := "http://" + gln.Addr().String()
	fmt.Printf("gateway %s fronting %d replicas × %d models\n\n", base, nReplicas, nModels)

	load := func() (okCount, failCount int) {
		var ok, fail atomic.Int64
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := tensor.NewRNG(uint64(1000 + c))
				row := make([]float32, 64)
				for r := 0; r < reqPerConn; r++ {
					rng.FillNormal(row, 0, 1)
					body, _ := json.Marshal(map[string]any{"inputs": [][]float32{row}})
					resp, err := http.Post(fmt.Sprintf("%s/v1/models/m%d/predict", base, (c+r)%nModels),
						"application/json", bytes.NewReader(body))
					if err != nil {
						fail.Add(1)
						continue
					}
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						ok.Add(1)
					} else {
						fail.Add(1)
					}
				}
			}(c)
		}
		wg.Wait()
		return int(ok.Load()), int(fail.Load())
	}

	totalFail := 0
	ok, fail := load()
	totalFail += fail
	fmt.Printf("phase 1 — all replicas healthy: %d ok, %d failed\n", ok, fail)
	fmt.Println("per-replica predict counts (rendezvous affinity keeps each model on ≤2 replicas):")
	printCounts(reps)

	// Kill the busiest replica mid-fleet and keep the traffic coming.
	victim := 0
	for i, rep := range reps {
		if total(rep) > total(reps[victim]) {
			victim = i
		}
	}
	fmt.Printf("\nkilling replica %d (busiest) …\n", victim)
	reps[victim].srv.Close()
	ok, fail = load()
	totalFail += fail
	fmt.Printf("phase 2 — during failover + ejection: %d ok, %d failed\n", ok, fail)

	// Give the probes time to eject the corpse, then load once more: now
	// the routing avoids it outright instead of failing over around it.
	deadline := time.Now().Add(3 * time.Second)
	for g.HealthyBackends() == nReplicas && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	ok, fail = load()
	totalFail += fail
	fmt.Printf("phase 3 — after ejection: %d ok, %d failed\n", ok, fail)

	s := g.Stats()
	fmt.Printf("\ngateway stats: %d admitted, %d shed, %d hedges, %d failovers, %d/%d backends healthy\n",
		s.Admitted, s.Shed, s.Hedges, s.Failovers, s.HealthyBackends, len(s.Backends))
	for _, b := range s.Backends {
		state := "healthy"
		if !b.Healthy {
			state = "EJECTED"
		}
		fmt.Printf("  %-28s %-8s %4d requests, %3d errors, %2d hedged, mean %.2fms\n",
			b.Backend, state, b.Requests, b.Errors, b.Hedged, b.MeanLatencyMs)
	}
	if totalFail > 0 {
		log.Fatalf("%d requests failed — the fleet should have absorbed the kill", totalFail)
	}
	fmt.Println("\nzero failed requests across the kill: the fleet absorbed it")
}

func total(r *replica) int64 {
	var t int64
	for i := range r.counts {
		t += r.counts[i].Load()
	}
	return t
}

func printCounts(reps []*replica) {
	for i, rep := range reps {
		var parts []string
		for m := range rep.counts {
			parts = append(parts, fmt.Sprintf("m%d:%4d", m, rep.counts[m].Load()))
		}
		fmt.Printf("  replica %d (%s): %s\n", i, rep.ln.Addr(), strings.Join(parts, "  "))
	}
}
