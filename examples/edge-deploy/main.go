// Edge deployment: the paper's motivating scenario (§1) — a model trained
// in the cloud must reach edge devices over a 2G-class link (1 Mbit/s).
// This example encodes a VGG-16-s with DeepSZ, "ships" the bitstream, and
// decodes it on the device side, reporting transfer-time savings and the
// decode overhead relative to inference.
//
//	go run ./examples/edge-deploy
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// linkBitsPerSecond models the 2G link of the paper's GSMA citation.
const linkBitsPerSecond = 1e6

func main() {
	// --- cloud side ---
	tr, err := models.Pretrained(models.VGG16S)
	if err != nil {
		log.Fatal(err)
	}
	net := tr.Net.Clone()
	prune.Network(net, prune.PaperRatios(models.VGG16S), 0.1)
	prune.Retrain(net, tr.Train, 1, 0.03, tensor.NewRNG(7))

	res, err := core.Encode(net, tr.Test, core.Config{
		ExpectedAccuracyLoss: 0.02,
		DistortionCriterion:  0.005,
	})
	if err != nil {
		log.Fatal(err)
	}
	wire := res.Model.Marshal()
	fmt.Printf("cloud: encoded %s in %v\n", models.VGG16S, res.EncodeTime.Round(time.Millisecond))
	fmt.Printf("cloud: payload %d B vs %d B dense fc weights (%.1fx smaller)\n",
		len(wire), res.OriginalBytes, float64(res.OriginalBytes)/float64(len(wire)))

	denseSec := float64(res.OriginalBytes*8) / linkBitsPerSecond
	wireSec := float64(len(wire)*8) / linkBitsPerSecond
	fmt.Printf("link:  %.1f s → %.1f s on a 1 Mbit/s link\n", denseSec, wireSec)

	// --- edge side ---
	m, err := core.Unmarshal(wire)
	if err != nil {
		log.Fatal(err)
	}
	device := tr.Net.Clone() // architecture shipped with firmware; weights from the wire
	t0 := time.Now()
	bd, err := m.Apply(device)
	if err != nil {
		log.Fatal(err)
	}
	decodeTime := time.Since(t0)

	// One inference batch to put the decode cost in context (paper §4.1:
	// decoding is cheap relative to a forward pass).
	idx := make([]int, 50)
	for i := range idx {
		idx[i] = i
	}
	x, labels := tr.Test.Batch(idx)
	t1 := time.Now()
	logits := device.Forward(x, false)
	fwdTime := time.Since(t1)

	correct := 0
	for i := 0; i < 50; i++ {
		best, bestV := 0, logits.At(i, 0)
		for j := 1; j < logits.Dim(1); j++ {
			if v := logits.At(i, j); v > bestV {
				best, bestV = j, v
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	fmt.Printf("edge:  decode %v (lossless %v / lossy %v / reconstruct %v)\n",
		decodeTime.Round(time.Microsecond), bd.Lossless.Round(time.Microsecond),
		bd.Lossy.Round(time.Microsecond), bd.Reconstruct.Round(time.Microsecond))
	fmt.Printf("edge:  50-image forward pass %v — decode is %.1f%% of one batch\n",
		fwdTime.Round(time.Microsecond), 100*float64(decodeTime)/float64(fwdTime))
	fmt.Printf("edge:  batch accuracy %d/50\n", correct)
}
