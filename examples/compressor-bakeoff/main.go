// Compressor bake-off: why DeepSZ uses SZ (§2.2, Figure 2). Compares SZ
// against the ZFP-style coder and the three lossless back-ends on a real
// pruned fc-layer data array, across error bounds, reporting ratio and the
// measured maximum error versus the bound.
//
//	go run ./examples/compressor-bakeoff
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/lossless"
	"repro/internal/models"
	"repro/internal/prune"
	"repro/internal/stats"
	"repro/internal/sz"
	"repro/internal/tensor"
	"repro/internal/zfp"
)

func main() {
	tr, err := models.Pretrained(models.AlexNetS)
	if err != nil {
		log.Fatal(err)
	}
	net := tr.Net.Clone()
	prune.Network(net, prune.PaperRatios(models.AlexNetS), 0.1)
	prune.Retrain(net, tr.Train, 1, 0.03, tensor.NewRNG(7))

	fc6 := net.DenseLayers()[0]
	sp := prune.Encode(fc6.Weights())
	data := sp.Data
	fmt.Printf("fc6 data array: %d nonzero weights (%d B dense)\n\n", len(data), 4*len(data))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "compressor\terror bound\tratio\tmax error\tPSNR")
	for _, eb := range []float64{1e-2, 1e-3, 1e-4} {
		blob, err := sz.Compress(data, sz.Options{ErrorBound: eb})
		if err != nil {
			log.Fatal(err)
		}
		dec, err := sz.Decompress(blob)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "SZ\t%.0e\t%.2fx\t%.2e\t%.1f dB\n",
			eb, sz.Ratio(len(data), blob), stats.MaxAbsError(data, dec), stats.PSNR(data, dec))

		zblob, err := zfp.Compress(data, zfp.Options{Mode: zfp.ModeAccuracy, Tolerance: eb})
		if err != nil {
			log.Fatal(err)
		}
		zdec, err := zfp.Decompress(zblob)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "ZFP\t%.0e\t%.2fx\t%.2e\t%.1f dB\n",
			eb, zfp.Ratio(len(data), zblob), stats.MaxAbsError(data, zdec), stats.PSNR(data, zdec))
	}

	// Lossless compressors can't touch floating-point weights (§2.2: the
	// mantissa bits are effectively random).
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	for _, c := range lossless.All() {
		blob := c.Compress(raw)
		fmt.Fprintf(tw, "%s\tlossless\t%.2fx\t0\t∞\n",
			c.Name(), float64(len(raw))/float64(len(blob)))
	}
	tw.Flush()
	fmt.Println("\nSZ dominates ZFP on these 1-D arrays, and lossless coding barely")
	fmt.Println("reaches 1.2x — the paper's case for error-bounded lossy compression.")
}
