// Memory-streamed decoding: the paper's future-work direction of using
// DeepSZ to improve accelerator memory utilisation. Instead of
// materialising every fc layer at once, the consumer keeps the model
// compressed and decodes one layer at a time — peak extra memory is a
// single layer's dense weights.
//
//	go run ./examples/memory-streaming
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/prune"
	"repro/internal/tensor"
)

func main() {
	tr, err := models.Pretrained(models.AlexNetS)
	if err != nil {
		log.Fatal(err)
	}
	net := tr.Net.Clone()
	prune.Network(net, prune.PaperRatios(models.AlexNetS), 0.1)
	prune.Retrain(net, tr.Train, 1, 0.03, tensor.NewRNG(7))

	res, err := core.Encode(net, tr.Test, core.Config{
		ExpectedAccuracyLoss: 0.02,
		DistortionCriterion:  0.005,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := res.Model

	// Whole-model decode: peak extra memory = all dense fc layers.
	var allDense int
	layers, _, err := m.Decode()
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range layers {
		allDense += 4 * len(l.Weights)
	}

	// Streamed decode: peak = max single layer.
	fmt.Printf("model payload: %d B compressed\n\n", m.TotalBytes())
	fmt.Println("layer  dense bytes  (streamed one at a time)")
	peak := 0
	err = m.StreamDecode(func(dl *core.DecodedLayer) error {
		sz := 4 * len(dl.Weights)
		if sz > peak {
			peak = sz
		}
		fmt.Printf("%-5s  %d\n", dl.Name, sz)
		// A real consumer would upload dl.Weights to the accelerator here
		// and drop the buffer before the next layer arrives.
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npeak extra memory: %d B streamed vs %d B whole-model (%.1fx lower)\n",
		peak, allDense, float64(allDense)/float64(peak))

	// The streamed path reconstructs the same network.
	recon := net.Clone()
	if err := m.StreamDecode(func(dl *core.DecodedLayer) error {
		for _, fc := range recon.DenseLayers() {
			if fc.Name() == dl.Name {
				fc.SetWeights(dl.Weights)
				copy(fc.B.W.Data, dl.Bias)
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	acc := recon.Evaluate(tr.Test, 100)
	fmt.Printf("streamed-reconstruction accuracy: top-1 %.2f%% (baseline %.2f%%)\n",
		100*acc.Top1, 100*res.Before.Top1)
}
