package sz

// 2-D compression, following the multidimensional SZ design (Tao et al.
// IPDPS'17; Liang et al. 2018): the array is tiled, each tile chooses
// between the 2-D Lorenzo predictor
//
//	pred(i,j) = x̂(i−1,j) + x̂(i,j−1) − x̂(i−1,j−1)
//
// (on reconstructed values x̂) and a least-squares plane fit
// v ≈ a0 + a1·i + a2·j, followed by the same error-controlled quantization,
// Huffman, and lossless stages as the 1-D path. DeepSZ itself compresses
// 1-D arrays (§3.3), but the substrate is the general compressor; the 2-D
// path also powers the dense-matrix ablation.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/huffman"
	"repro/internal/lossless"
	"repro/internal/quant"
)

const (
	magic2D          = 0x535A4732 // "SZG2"
	defaultTile      = 16
	regressionCoeffs = 3
)

// Compress2D encodes a rows×cols row-major array under opts. Options.
// BlockSize is interpreted as the square tile edge (default 16).
func Compress2D(data []float32, rows, cols int, opts Options) ([]byte, error) {
	if rows < 0 || cols < 0 || rows*cols != len(data) {
		return nil, fmt.Errorf("sz: 2-D shape %d×%d does not match %d values", rows, cols, len(data))
	}
	if opts.BlockSize == 0 {
		opts.BlockSize = defaultTile
	}
	if err := (&opts).fill(); err != nil {
		return nil, err
	}
	eb := AbsBound(data, opts)
	q := quant.New(eb, opts.Radius)
	tile := opts.BlockSize

	tilesY := (rows + tile - 1) / tile
	tilesX := (cols + tile - 1) / tile
	nTiles := tilesY * tilesX

	recon := make([]float64, len(data))
	codes := make([]uint32, 0, len(data))
	var escapes []float32
	predFlags := make([]byte, nTiles)
	var coeffs []float32

	at := func(i, j int) float64 { return recon[i*cols+j] }

	ti := 0
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			i0, j0 := ty*tile, tx*tile
			i1, j1 := min2(i0+tile, rows), min2(j0+tile, cols)

			usesReg := false
			var a0, a1, a2 float64
			if !opts.DisableRegression {
				a0, a1, a2 = fitPlane(data, cols, i0, j0, i1, j1)
				if opts.DisableLorenzo {
					usesReg = true
				} else {
					usesReg = planeWins(data, cols, i0, j0, i1, j1, a0, a1, a2, eb)
				}
			}
			if usesReg {
				predFlags[ti] = predRegress
				c0, c1, c2 := float32(a0), float32(a1), float32(a2)
				coeffs = append(coeffs, c0, c1, c2)
				for i := i0; i < i1; i++ {
					for j := j0; j < j1; j++ {
						pred := float64(c0) + float64(c1)*float64(i-i0) + float64(c2)*float64(j-j0)
						v := sanitize(float64(data[i*cols+j]))
						code, r, ok := q.Encode(v, pred)
						if !ok {
							codes = append(codes, 0)
							escapes = append(escapes, data[i*cols+j])
							r = v
						} else {
							codes = append(codes, code)
						}
						recon[i*cols+j] = r
					}
				}
			} else {
				predFlags[ti] = predLorenzo
				for i := i0; i < i1; i++ {
					for j := j0; j < j1; j++ {
						pred := lorenzo2D(at, i, j)
						v := sanitize(float64(data[i*cols+j]))
						code, r, ok := q.Encode(v, pred)
						if !ok {
							codes = append(codes, 0)
							escapes = append(escapes, data[i*cols+j])
							r = v
						} else {
							codes = append(codes, code)
						}
						recon[i*cols+j] = r
					}
				}
			}
			ti++
		}
	}

	payload := make([]byte, 0, len(data)/2)
	payload = append(payload, packBits(predFlags)...)
	for _, c := range coeffs {
		payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(c))
	}
	hblob := huffman.Encode(codes)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(hblob)))
	payload = append(payload, hblob...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(escapes)))
	for _, e := range escapes {
		payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(e))
	}
	llFlag := byte(0)
	if !opts.DisableLossless {
		comp := lossless.ZstdLike{}
		if cp := comp.Compress(payload); len(cp) < len(payload) {
			payload = cp
			llFlag = byte(comp.ID())
		}
	}

	out := make([]byte, 0, 40+len(payload))
	out = binary.LittleEndian.AppendUint32(out, magic2D)
	out = append(out, version, llFlag, byte(opts.Mode), 0)
	out = binary.LittleEndian.AppendUint64(out, uint64(rows))
	out = binary.LittleEndian.AppendUint64(out, uint64(cols))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(eb))
	out = binary.LittleEndian.AppendUint32(out, uint32(tile))
	out = binary.LittleEndian.AppendUint32(out, uint32(opts.Radius))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...), nil
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// lorenzo2D predicts from already-reconstructed west/north/north-west
// neighbours, degrading to 1-D or zero prediction at the borders.
func lorenzo2D(at func(i, j int) float64, i, j int) float64 {
	switch {
	case i > 0 && j > 0:
		return at(i-1, j) + at(i, j-1) - at(i-1, j-1)
	case i > 0:
		return at(i-1, j)
	case j > 0:
		return at(i, j-1)
	}
	return 0
}

// fitPlane least-squares fits v ≈ a0 + a1·(i−i0) + a2·(j−j0) over the tile.
func fitPlane(data []float32, cols, i0, j0, i1, j1 int) (a0, a1, a2 float64) {
	// Local coordinates are separable, so the normal equations reduce to
	// independent slopes around the means.
	var n, sy, sx, sv, syv, sxv, syy, sxx float64
	for i := i0; i < i1; i++ {
		for j := j0; j < j1; j++ {
			y, x := float64(i-i0), float64(j-j0)
			v := sanitize(float64(data[i*cols+j]))
			n++
			sy += y
			sx += x
			sv += v
			syv += y * v
			sxv += x * v
			syy += y * y
			sxx += x * x
		}
	}
	my, mx, mv := sy/n, sx/n, sv/n
	denY := syy - n*my*my
	denX := sxx - n*mx*mx
	if denY > 0 {
		a1 = (syv - n*my*mv) / denY
	}
	if denX > 0 {
		a2 = (sxv - n*mx*mv) / denX
	}
	a0 = mv - a1*my - a2*mx
	return a0, a1, a2
}

// planeWins estimates the entropy-coded cost of both predictors on the tile
// (Lorenzo approximated on original values) and reports whether the plane
// fit is expected to win after its coefficient overhead.
func planeWins(data []float32, cols, i0, j0, i1, j1 int, a0, a1, a2, eb float64) bool {
	step := 2 * eb
	lorHist := make(map[int]int, 8)
	regHist := make(map[int]int, 8)
	orig := func(i, j int) float64 { return sanitize(float64(data[i*cols+j])) }
	n := 0.0
	for i := i0; i < i1; i++ {
		for j := j0; j < j1; j++ {
			v := orig(i, j)
			var pred float64
			switch {
			case i > i0 && j > j0:
				pred = orig(i-1, j) + orig(i, j-1) - orig(i-1, j-1)
			case i > i0:
				pred = orig(i-1, j)
			case j > j0:
				pred = orig(i, j-1)
			}
			lorHist[quantIndex(v-pred, step)]++
			regHist[quantIndex(v-(a0+a1*float64(i-i0)+a2*float64(j-j0)), step)]++
			n++
		}
	}
	return entropyBits(regHist, n)+regressionCoeffs*32 < entropyBits(lorHist, n)
}

// Decompress2D reverses Compress2D, returning the array and its shape.
func Decompress2D(blob []byte) (data []float32, rows, cols int, err error) {
	if len(blob) < 44 {
		return nil, 0, 0, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(blob[0:4]) != magic2D {
		return nil, 0, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if blob[4] != version {
		return nil, 0, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, blob[4])
	}
	llFlag := blob[5]
	rows = int(binary.LittleEndian.Uint64(blob[8:16]))
	cols = int(binary.LittleEndian.Uint64(blob[16:24]))
	eb := math.Float64frombits(binary.LittleEndian.Uint64(blob[24:32]))
	tile := int(binary.LittleEndian.Uint32(blob[32:36]))
	radius := int(binary.LittleEndian.Uint32(blob[36:40]))
	payloadLen := int(binary.LittleEndian.Uint32(blob[40:44]))
	if len(blob) < 44+payloadLen {
		return nil, 0, 0, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	payload := blob[44 : 44+payloadLen]
	if llFlag != 0 {
		c, err := lossless.ByID(lossless.ID(llFlag))
		if err != nil {
			return nil, 0, 0, err
		}
		payload, err = c.Decompress(payload)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("sz: lossless stage: %w", err)
		}
	}
	if rows < 0 || cols < 0 {
		return nil, 0, 0, fmt.Errorf("%w: negative shape", ErrCorrupt)
	}
	n := rows * cols
	if n == 0 {
		return []float32{}, rows, cols, nil
	}
	if tile < 1 || radius < 2 || eb <= 0 {
		return nil, 0, 0, fmt.Errorf("%w: bad header fields", ErrCorrupt)
	}
	if uint64(n) > uint64(len(payload))*8 {
		return nil, 0, 0, fmt.Errorf("%w: value count exceeds payload capacity", ErrCorrupt)
	}

	tilesY := (rows + tile - 1) / tile
	tilesX := (cols + tile - 1) / tile
	nTiles := tilesY * tilesX
	flagBytes := (nTiles + 7) / 8
	if len(payload) < flagBytes {
		return nil, 0, 0, ErrCorrupt
	}
	predFlags := unpackBits(payload[:flagBytes], nTiles)
	off := flagBytes
	nReg := 0
	for _, f := range predFlags {
		if f == predRegress {
			nReg++
		}
	}
	if len(payload) < off+nReg*regressionCoeffs*4+4 {
		return nil, 0, 0, ErrCorrupt
	}
	coeffs := make([]float32, regressionCoeffs*nReg)
	for i := range coeffs {
		coeffs[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	hLen := int(binary.LittleEndian.Uint32(payload[off:]))
	off += 4
	if hLen < 0 || len(payload) < off+hLen+4 {
		return nil, 0, 0, ErrCorrupt
	}
	codes, err := huffman.Decode(payload[off : off+hLen])
	if err != nil {
		return nil, 0, 0, fmt.Errorf("sz: %w", err)
	}
	off += hLen
	nEsc := int(binary.LittleEndian.Uint32(payload[off:]))
	off += 4
	if nEsc < 0 || len(payload) < off+nEsc*4 {
		return nil, 0, 0, ErrCorrupt
	}
	escapes := make([]float32, nEsc)
	for i := range escapes {
		escapes[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	if len(codes) != n {
		return nil, 0, 0, fmt.Errorf("%w: %d codes for %d values", ErrCorrupt, len(codes), n)
	}

	q := quant.New(eb, radius)
	recon := make([]float64, n)
	out := make([]float32, n)
	at := func(i, j int) float64 { return recon[i*cols+j] }
	ci, escIdx, regIdx, ti := 0, 0, 0, 0
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			i0, j0 := ty*tile, tx*tile
			i1, j1 := min2(i0+tile, rows), min2(j0+tile, cols)
			isReg := predFlags[ti] == predRegress
			var c0, c1, c2 float64
			if isReg {
				c0 = float64(coeffs[regressionCoeffs*regIdx])
				c1 = float64(coeffs[regressionCoeffs*regIdx+1])
				c2 = float64(coeffs[regressionCoeffs*regIdx+2])
				regIdx++
			}
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					var pred float64
					if isReg {
						pred = c0 + c1*float64(i-i0) + c2*float64(j-j0)
					} else {
						pred = lorenzo2D(at, i, j)
					}
					var r float64
					if quant.IsEscape(codes[ci]) {
						if escIdx >= nEsc {
							return nil, 0, 0, fmt.Errorf("%w: escape underflow", ErrCorrupt)
						}
						r = float64(escapes[escIdx])
						escIdx++
					} else {
						r = q.Decode(codes[ci], pred)
					}
					recon[i*cols+j] = r
					out[i*cols+j] = float32(r)
					ci++
				}
			}
			ti++
		}
	}
	return out, rows, cols, nil
}
