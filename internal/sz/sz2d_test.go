package sz

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func checkRoundTrip2D(t *testing.T, data []float32, rows, cols int, opts Options) []byte {
	t.Helper()
	blob, err := Compress2D(data, rows, cols, opts)
	if err != nil {
		t.Fatalf("Compress2D: %v", err)
	}
	got, r, c, err := Decompress2D(blob)
	if err != nil {
		t.Fatalf("Decompress2D: %v", err)
	}
	if r != rows || c != cols || len(got) != len(data) {
		t.Fatalf("shape %d×%d (%d), want %d×%d", r, c, len(got), rows, cols)
	}
	eb := AbsBound(data, opts)
	tol := boundTol(eb)
	for i := range data {
		if d := math.Abs(float64(got[i]) - float64(data[i])); d > tol {
			t.Fatalf("element %d: error %g exceeds bound %g", i, d, eb)
		}
	}
	return blob
}

func smooth2D(rows, cols int, noise float64, rng *tensor.RNG) []float32 {
	data := make([]float32, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := math.Sin(float64(i)*0.07)*math.Cos(float64(j)*0.05) + rng.NormFloat64()*noise
			data[i*cols+j] = float32(v)
		}
	}
	return data
}

func TestRoundTrip2DShapes(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, sh := range [][2]int{{1, 1}, {1, 100}, {100, 1}, {16, 16}, {17, 31}, {64, 128}} {
		data := make([]float32, sh[0]*sh[1])
		rng.FillNormal(data, 0, 0.1)
		checkRoundTrip2D(t, data, sh[0], sh[1], Options{ErrorBound: 1e-3})
	}
}

func TestRoundTrip2DEmpty(t *testing.T) {
	blob, err := Compress2D(nil, 0, 0, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	got, r, c, err := Decompress2D(blob)
	if err != nil || r != 0 || c != 0 || len(got) != 0 {
		t.Fatalf("empty 2-D round trip: %v %d %d", err, r, c)
	}
}

func TestCompress2DShapeMismatch(t *testing.T) {
	if _, err := Compress2D(make([]float32, 10), 3, 4, Options{ErrorBound: 1e-3}); err == nil {
		t.Fatal("expected error for shape mismatch")
	}
}

func Test2DBeats1DOnSmoothFields(t *testing.T) {
	// A smooth 2-D field has structure along both axes; the 2-D Lorenzo /
	// plane predictors must exploit the vertical correlation the 1-D path
	// cannot see.
	rng := tensor.NewRNG(2)
	rows, cols := 96, 96
	data := smooth2D(rows, cols, 1e-4, rng)
	opts := Options{ErrorBound: 1e-3}
	blob2, err := Compress2D(data, rows, cols, opts)
	if err != nil {
		t.Fatal(err)
	}
	blob1, err := Compress(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob2) >= len(blob1) {
		t.Fatalf("2-D (%d B) should beat 1-D (%d B) on smooth fields", len(blob2), len(blob1))
	}
}

func TestErrorBound2DSweep(t *testing.T) {
	rng := tensor.NewRNG(3)
	data := smooth2D(40, 50, 0.05, rng)
	for _, eb := range []float64{1e-2, 1e-3, 1e-4} {
		checkRoundTrip2D(t, data, 40, 50, Options{ErrorBound: eb})
	}
}

func TestPredictor2DAblation(t *testing.T) {
	rng := tensor.NewRNG(4)
	data := smooth2D(32, 32, 1e-3, rng)
	checkRoundTrip2D(t, data, 32, 32, Options{ErrorBound: 1e-3, DisableRegression: true})
	checkRoundTrip2D(t, data, 32, 32, Options{ErrorBound: 1e-3, DisableLorenzo: true})
}

func TestFitPlaneExact(t *testing.T) {
	// v = 2 + 0.5 i − 0.25 j fits exactly.
	rows, cols := 8, 8
	data := make([]float32, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			data[i*cols+j] = float32(2 + 0.5*float64(i) - 0.25*float64(j))
		}
	}
	a0, a1, a2 := fitPlane(data, cols, 0, 0, rows, cols)
	if math.Abs(a0-2) > 1e-6 || math.Abs(a1-0.5) > 1e-6 || math.Abs(a2+0.25) > 1e-6 {
		t.Fatalf("fitPlane = (%v, %v, %v)", a0, a1, a2)
	}
}

func TestLorenzo2DBorders(t *testing.T) {
	grid := []float64{
		1, 2,
		3, 4,
	}
	at := func(i, j int) float64 { return grid[i*2+j] }
	if got := lorenzo2D(at, 0, 0); got != 0 {
		t.Fatalf("corner pred = %v", got)
	}
	if got := lorenzo2D(at, 0, 1); got != 1 {
		t.Fatalf("top edge pred = %v", got)
	}
	if got := lorenzo2D(at, 1, 0); got != 1 {
		t.Fatalf("left edge pred = %v", got)
	}
	if got := lorenzo2D(at, 1, 1); got != 3+2-1 {
		t.Fatalf("interior pred = %v", got)
	}
}

func TestDecompress2DCorrupt(t *testing.T) {
	rng := tensor.NewRNG(5)
	data := smooth2D(20, 20, 0.01, rng)
	blob, _ := Compress2D(data, 20, 20, Options{ErrorBound: 1e-3})
	if _, _, _, err := Decompress2D(blob[:30]); err == nil {
		t.Fatal("expected error for truncated header")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if _, _, _, err := Decompress2D(bad); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, _, _, err := Decompress2D(blob[:len(blob)-4]); err == nil {
		t.Fatal("expected error for truncated payload")
	}
	// 1-D blobs must be rejected by the 2-D decoder and vice versa.
	blob1, _ := Compress(data, Options{ErrorBound: 1e-3})
	if _, _, _, err := Decompress2D(blob1); err == nil {
		t.Fatal("2-D decoder accepted a 1-D stream")
	}
	if _, err := Decompress(blob); err == nil {
		t.Fatal("1-D decoder accepted a 2-D stream")
	}
}

func TestDecompress2DSurvivesRandomCorruption(t *testing.T) {
	rng := tensor.NewRNG(6)
	data := smooth2D(24, 24, 0.01, rng)
	blob, _ := Compress2D(data, 24, 24, Options{ErrorBound: 1e-3})
	for trial := 0; trial < 300; trial++ {
		bad := append([]byte(nil), blob...)
		for i := 0; i < 1+rng.Intn(12); i++ {
			p := rng.Intn(len(bad))
			bad[p] ^= 1 << rng.Intn(8)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			_, _, _, _ = Decompress2D(bad)
		}()
	}
}

func TestQuick2DErrorBoundInvariant(t *testing.T) {
	rng := tensor.NewRNG(7)
	f := func(seed uint32, ebExp uint8) bool {
		rows := 1 + int(seed%60)
		cols := 1 + int((seed/64)%60)
		eb := math.Pow(10, -float64(1+ebExp%4))
		data := make([]float32, rows*cols)
		rng.FillNormal(data, 0, 0.1)
		blob, err := Compress2D(data, rows, cols, Options{ErrorBound: eb})
		if err != nil {
			return false
		}
		got, r, c, err := Decompress2D(blob)
		if err != nil || r != rows || c != cols {
			return false
		}
		tol := boundTol(eb)
		for i := range data {
			if math.Abs(float64(got[i])-float64(data[i])) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
