package sz

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// boundTol accounts for the final float64→float32 rounding of reconstructed
// values, which can add at most half a float32 ULP on top of the bound.
func boundTol(eb float64) float64 { return eb*1.0001 + 1e-7 }

func checkRoundTrip(t *testing.T, data []float32, opts Options) []byte {
	t.Helper()
	blob, err := Compress(data, opts)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	got, err := Decompress(blob)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if len(got) != len(data) {
		t.Fatalf("length %d, want %d", len(got), len(data))
	}
	eb := AbsBound(data, opts)
	tol := boundTol(eb)
	for i := range data {
		if d := math.Abs(float64(got[i]) - float64(data[i])); d > tol {
			t.Fatalf("element %d: error %g exceeds bound %g (orig %v, got %v)",
				i, d, eb, data[i], got[i])
		}
	}
	return blob
}

func weightLike(rng *tensor.RNG, n int) []float32 {
	data := make([]float32, n)
	rng.FillNormal(data, 0, 0.05) // trained fc weights: ~N(0, 0.05)
	return data
}

func TestRoundTripWeightLike(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, n := range []int{1, 3, 127, 128, 129, 1000, 50000} {
		checkRoundTrip(t, weightLike(rng, n), Options{ErrorBound: 1e-3})
	}
}

func TestRoundTripEmpty(t *testing.T) {
	blob, err := Compress(nil, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(blob)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

func TestErrorBoundSweep(t *testing.T) {
	rng := tensor.NewRNG(2)
	data := weightLike(rng, 20000)
	for _, eb := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5} {
		checkRoundTrip(t, data, Options{ErrorBound: eb})
	}
}

func TestRatioGrowsWithErrorBound(t *testing.T) {
	rng := tensor.NewRNG(3)
	data := weightLike(rng, 50000)
	var prev float64
	for _, eb := range []float64{1e-4, 1e-3, 1e-2} {
		blob, err := Compress(data, Options{ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		r := Ratio(len(data), blob)
		if r <= prev {
			t.Fatalf("ratio should grow with eb: eb=%g ratio=%.2f prev=%.2f", eb, r, prev)
		}
		prev = r
	}
	if prev < 4 {
		t.Fatalf("eb=1e-2 on weight-like data should exceed 4x, got %.2f", prev)
	}
}

func TestSmoothDataUsesRegressionAndCompressesWell(t *testing.T) {
	// A noisy ramp favours the regression predictor.
	rng := tensor.NewRNG(4)
	n := 10000
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(float64(i)*1e-4 + rng.NormFloat64()*1e-5)
	}
	blobAdaptive := checkRoundTrip(t, data, Options{ErrorBound: 1e-4})
	blobLorenzo := checkRoundTrip(t, data, Options{ErrorBound: 1e-4, DisableRegression: true})
	if len(blobAdaptive) > len(blobLorenzo) {
		t.Fatalf("adaptive (%d) should not lose to lorenzo-only (%d) on ramps",
			len(blobAdaptive), len(blobLorenzo))
	}
}

func TestPredictorAblationModes(t *testing.T) {
	rng := tensor.NewRNG(5)
	data := weightLike(rng, 5000)
	checkRoundTrip(t, data, Options{ErrorBound: 1e-3, DisableRegression: true})
	checkRoundTrip(t, data, Options{ErrorBound: 1e-3, DisableLorenzo: true})
	if _, err := Compress(data, Options{ErrorBound: 1e-3, DisableLorenzo: true, DisableRegression: true}); err == nil {
		t.Fatal("disabling both predictors must error")
	}
}

func TestRelMode(t *testing.T) {
	rng := tensor.NewRNG(6)
	data := weightLike(rng, 10000)
	opts := Options{Mode: ModeRel, ErrorBound: 1e-3}
	checkRoundTrip(t, data, opts)
	lo, hi := minMax(data)
	wantEB := 1e-3 * (float64(hi) - float64(lo))
	if got := AbsBound(data, opts); math.Abs(got-wantEB) > 1e-12 {
		t.Fatalf("rel AbsBound = %g, want %g", got, wantEB)
	}
}

func TestPSNRMode(t *testing.T) {
	rng := tensor.NewRNG(7)
	data := weightLike(rng, 20000)
	opts := Options{Mode: ModePSNR, ErrorBound: 60} // 60 dB
	blob := checkRoundTrip(t, data, opts)
	got, _ := Decompress(blob)
	// Measure actual PSNR; must be at least the target.
	lo, hi := minMax(data)
	rangeV := float64(hi) - float64(lo)
	var mse float64
	for i := range data {
		d := float64(got[i]) - float64(data[i])
		mse += d * d
	}
	mse /= float64(len(data))
	psnr := 20 * math.Log10(rangeV/math.Sqrt(mse))
	if psnr < 60 {
		t.Fatalf("achieved PSNR %.1f dB below target 60", psnr)
	}
}

func TestEscapesAndOutliers(t *testing.T) {
	rng := tensor.NewRNG(8)
	data := weightLike(rng, 2000)
	// Inject huge outliers that exceed the representable residual range of a
	// small radius, forcing the escape path.
	for i := 100; i < len(data); i += 100 {
		data[i] = float32(1e6 * rng.NormFloat64())
	}
	checkRoundTrip(t, data, Options{ErrorBound: 1e-4, Radius: 16})
}

func TestNaNInfHandled(t *testing.T) {
	data := []float32{1, float32(math.NaN()), 2, float32(math.Inf(1)), 3, float32(math.Inf(-1)), 4}
	blob, err := Compress(data, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Finite values must respect the bound; non-finite are sanitized to ~0.
	for _, i := range []int{0, 2, 4, 6} {
		if math.Abs(float64(got[i])-float64(data[i])) > boundTol(1e-3) {
			t.Fatalf("finite value %d out of bound", i)
		}
	}
}

func TestInvalidOptions(t *testing.T) {
	data := []float32{1, 2, 3}
	for _, o := range []Options{
		{ErrorBound: 0},
		{ErrorBound: -1},
		{ErrorBound: 1e-3, BlockSize: 2},
		{ErrorBound: 1e-3, Radius: 1},
	} {
		if _, err := Compress(data, o); err == nil {
			t.Fatalf("expected error for options %+v", o)
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	rng := tensor.NewRNG(9)
	blob, _ := Compress(weightLike(rng, 1000), Options{ErrorBound: 1e-3})
	if _, err := Decompress(blob[:20]); err == nil {
		t.Fatal("expected error for truncated header")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if _, err := Decompress(bad); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := Decompress(blob[:len(blob)-5]); err == nil {
		t.Fatal("expected error for truncated payload")
	}
}

func TestLosslessStageToggle(t *testing.T) {
	rng := tensor.NewRNG(10)
	data := weightLike(rng, 30000)
	with, _ := Compress(data, Options{ErrorBound: 1e-2})
	without, _ := Compress(data, Options{ErrorBound: 1e-2, DisableLossless: true})
	if len(with) > len(without) {
		t.Fatalf("lossless stage made blob bigger: %d vs %d", len(with), len(without))
	}
	for _, blob := range [][]byte{with, without} {
		got, err := Decompress(blob)
		if err != nil || len(got) != len(data) {
			t.Fatal("toggle round trip failed")
		}
	}
}

func TestQuickErrorBoundInvariant(t *testing.T) {
	rng := tensor.NewRNG(11)
	f := func(seed uint32, ebExp uint8) bool {
		n := 200 + int(seed%2000)
		eb := math.Pow(10, -float64(1+ebExp%5)) // 1e-1 .. 1e-5
		data := make([]float32, n)
		rng.FillNormal(data, 0, 0.1)
		blob, err := Compress(data, Options{ErrorBound: eb})
		if err != nil {
			return false
		}
		got, err := Decompress(blob)
		if err != nil || len(got) != n {
			return false
		}
		tol := boundTol(eb)
		for i := range data {
			if math.Abs(float64(got[i])-float64(data[i])) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFitLine(t *testing.T) {
	// Exact line should fit perfectly.
	block := []float32{1, 3, 5, 7, 9}
	a0, a1 := fitLine(block)
	if math.Abs(a0-1) > 1e-9 || math.Abs(a1-2) > 1e-9 {
		t.Fatalf("fitLine = (%v, %v), want (1, 2)", a0, a1)
	}
	a0, a1 = fitLine([]float32{4})
	if a0 != 4 || a1 != 0 {
		t.Fatalf("single-point fit = (%v, %v)", a0, a1)
	}
}

func TestPackUnpackBits(t *testing.T) {
	flags := []byte{1, 0, 1, 1, 0, 0, 0, 1, 1, 0, 1}
	packed := packBits(flags)
	got := unpackBits(packed, len(flags))
	for i := range flags {
		if got[i] != flags[i] {
			t.Fatalf("bit %d = %d, want %d", i, got[i], flags[i])
		}
	}
}
