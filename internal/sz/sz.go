// Package sz is a from-scratch Go implementation of the SZ error-bounded
// lossy compressor (Di & Cappello IPDPS'16; Tao et al. IPDPS'17; Liang et
// al. 2018) specialised for the 1-D float32 arrays DeepSZ compresses.
//
// The pipeline follows the papers:
//
//  1. blockwise adaptive prediction — each block chooses between a Lorenzo
//     predictor (previous reconstructed value) and a linear-regression
//     predictor (best-fit line over the block),
//  2. error-controlled linear-scaling quantization of the residuals
//     (package quant), with an escape code for unpredictable points,
//  3. customized Huffman coding of the quantization codes, and
//  4. an optional lossless stage (zstd-like) over the entire payload.
//
// The central invariant — every reconstructed value is within the absolute
// error bound of the original — is enforced by construction and checked by
// property tests.
package sz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/huffman"
	"repro/internal/lossless"
	"repro/internal/quant"
)

// Mode selects how Options.ErrorBound is interpreted.
type Mode uint8

const (
	// ModeAbs interprets ErrorBound as an absolute error bound.
	ModeAbs Mode = iota
	// ModeRel interprets ErrorBound as a fraction of the data's value range
	// (value-range-relative error bound, SZ's REL mode).
	ModeRel
	// ModePSNR interprets ErrorBound as a target peak signal-to-noise ratio
	// in dB; the absolute bound is derived from the value range.
	ModePSNR
)

// Options configures compression.
type Options struct {
	// Mode selects the error-control mode. Default is ModeAbs.
	Mode Mode
	// ErrorBound is the absolute bound (ModeAbs), the range fraction
	// (ModeRel), or the target PSNR in dB (ModePSNR). Must be positive.
	ErrorBound float64
	// BlockSize is the prediction block length; 0 selects the default (128).
	BlockSize int
	// Radius is the quantization interval radius; 0 selects the default
	// (32768, SZ's 65536-interval capacity).
	Radius int
	// DisableLossless skips the final lossless stage. The stage is on by
	// default, matching SZ's Zstd post-pass.
	DisableLossless bool
	// DisableRegression forces Lorenzo-only prediction (ablation hook).
	DisableRegression bool
	// DisableLorenzo forces regression-only prediction (ablation hook).
	DisableLorenzo bool
}

const (
	defaultBlockSize = 128
	defaultRadius    = 32768
	magic            = 0x535A474F // "SZGO"
	version          = 1
)

// ErrCorrupt is returned for structurally invalid blobs.
var ErrCorrupt = errors.New("sz: corrupt stream")

func (o *Options) fill() error {
	if o.ErrorBound <= 0 {
		return fmt.Errorf("sz: error bound must be positive, got %v", o.ErrorBound)
	}
	if o.BlockSize == 0 {
		o.BlockSize = defaultBlockSize
	}
	if o.BlockSize < 4 {
		return fmt.Errorf("sz: block size %d too small", o.BlockSize)
	}
	if o.Radius == 0 {
		o.Radius = defaultRadius
	}
	if o.Radius < 2 {
		return fmt.Errorf("sz: radius %d too small", o.Radius)
	}
	if o.DisableRegression && o.DisableLorenzo {
		return errors.New("sz: cannot disable both predictors")
	}
	return nil
}

// AbsBound resolves the absolute error bound the options imply for data.
func AbsBound(data []float32, opts Options) float64 {
	switch opts.Mode {
	case ModeRel:
		lo, hi := minMax(data)
		r := float64(hi) - float64(lo)
		if r == 0 {
			r = 1
		}
		return opts.ErrorBound * r
	case ModePSNR:
		lo, hi := minMax(data)
		r := float64(hi) - float64(lo)
		if r == 0 {
			r = 1
		}
		// Uniform quantization with bound eb has RMSE ≈ eb/√3, so a target
		// PSNR = 20·log10(range/RMSE) gives eb = range·√3·10^(−PSNR/20).
		return r * math.Sqrt(3) * math.Pow(10, -opts.ErrorBound/20)
	default:
		return opts.ErrorBound
	}
}

func minMax(data []float32) (float32, float32) {
	if len(data) == 0 {
		return 0, 0
	}
	lo, hi := data[0], data[0]
	for _, v := range data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// predictor ids stored per block.
const (
	predLorenzo = 0
	predRegress = 1
)

// Compress encodes data under opts. The returned blob is self-describing.
func Compress(data []float32, opts Options) ([]byte, error) {
	if err := (&opts).fill(); err != nil {
		return nil, err
	}
	eb := AbsBound(data, opts)
	q := quant.New(eb, opts.Radius)
	n := len(data)
	bs := opts.BlockSize
	nBlocks := (n + bs - 1) / bs

	codes := make([]uint32, 0, n)
	var escapes []float32
	predFlags := make([]byte, nBlocks)
	var coeffs []float32 // two float32 per regression block

	prev := 0.0 // last reconstructed value (Lorenzo predictor state)

	for b := 0; b < nBlocks; b++ {
		lo := b * bs
		hi := lo + bs
		if hi > n {
			hi = n
		}
		block := data[lo:hi]
		usesReg := false
		var a0, a1 float64
		if !opts.DisableRegression {
			a0, a1 = fitLine(block)
			if opts.DisableLorenzo {
				usesReg = true
			} else {
				usesReg = regressionWins(block, prev, a0, a1, eb)
			}
		}
		if usesReg {
			predFlags[b] = predRegress
			// Store coefficients as float32; prediction must use the
			// *stored* precision so encoder and decoder agree.
			c0, c1 := float32(a0), float32(a1)
			coeffs = append(coeffs, c0, c1)
			for i, v := range block {
				pred := float64(c0) + float64(c1)*float64(i)
				code, r, ok := q.Encode(sanitize(float64(v)), pred)
				if !ok {
					codes = append(codes, 0)
					escapes = append(escapes, v)
					r = float64(v)
				} else {
					codes = append(codes, code)
				}
				prev = r
			}
		} else {
			predFlags[b] = predLorenzo
			for _, v := range block {
				code, r, ok := q.Encode(sanitize(float64(v)), prev)
				if !ok {
					codes = append(codes, 0)
					escapes = append(escapes, v)
					r = float64(v)
				} else {
					codes = append(codes, code)
				}
				prev = r
			}
		}
	}

	// ---- serialize ----
	payload := make([]byte, 0, n/2)
	payload = append(payload, packBits(predFlags)...)
	for _, c := range coeffs {
		payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(c))
	}
	hblob := huffman.Encode(codes)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(hblob)))
	payload = append(payload, hblob...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(escapes)))
	for _, e := range escapes {
		payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(e))
	}

	llFlag := byte(0)
	if !opts.DisableLossless {
		comp := lossless.ZstdLike{}
		cp := comp.Compress(payload)
		if len(cp) < len(payload) {
			payload = cp
			llFlag = byte(comp.ID())
		}
	}

	out := make([]byte, 0, 32+len(payload))
	out = binary.LittleEndian.AppendUint32(out, magic)
	out = append(out, version, llFlag, byte(opts.Mode), 0)
	out = binary.LittleEndian.AppendUint64(out, uint64(n))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(eb))
	out = binary.LittleEndian.AppendUint32(out, uint32(bs))
	out = binary.LittleEndian.AppendUint32(out, uint32(opts.Radius))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...), nil
}

// sanitize maps NaN/Inf to 0 so quantization arithmetic stays defined; DNN
// weights never contain them, but the compressor must not misbehave.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// fitLine least-squares fits v[i] ≈ a0 + a1·i over the block.
func fitLine(block []float32) (a0, a1 float64) {
	n := float64(len(block))
	if len(block) == 1 {
		return float64(block[0]), 0
	}
	var sx, sy, sxx, sxy float64
	for i, v := range block {
		x := float64(i)
		y := sanitize(float64(v))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	a1 = (n*sxy - sx*sy) / den
	a0 = (sy - a1*sx) / n
	return a0, a1
}

// regressionWins estimates the entropy-coded cost of both predictors on the
// block (the SZ selection idea: pick the predictor whose quantization codes
// are cheapest) and reports whether regression is expected to win after
// paying its 64-bit coefficient overhead.
func regressionWins(block []float32, prev float64, a0, a1, eb float64) bool {
	step := 2 * eb
	lorenzoHist := make(map[int]int, 8)
	regressHist := make(map[int]int, 8)
	p := prev
	for i, v := range block {
		y := sanitize(float64(v))
		lorenzoHist[quantIndex(y-p, step)]++
		p = y // proxy: assume near-perfect reconstruction
		regressHist[quantIndex(y-(a0+a1*float64(i)), step)]++
	}
	n := float64(len(block))
	lorenzoBits := entropyBits(lorenzoHist, n)
	regressBits := entropyBits(regressHist, n) + 64 // two float32 coefficients
	return regressBits < lorenzoBits
}

func quantIndex(diff, step float64) int {
	if diff >= 0 {
		return int(diff/step + 0.5)
	}
	return -int(-diff/step + 0.5)
}

// entropyBits returns the expected coded size in bits: n·H(hist), floored at
// one bit per symbol because the Huffman stage cannot emit shorter codes.
// The sum runs in sorted-key order: float addition is not associative, so
// map-iteration order could otherwise flip a predictor choice between runs
// when the two costs are within rounding distance.
func entropyBits(hist map[int]int, n float64) float64 {
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var h float64
	for _, k := range keys {
		p := float64(hist[k]) / n
		h -= p * math.Log2(p)
	}
	if h < 1 {
		h = 1
	}
	return n * h
}

func packBits(flags []byte) []byte {
	out := make([]byte, (len(flags)+7)/8)
	for i, f := range flags {
		if f != 0 {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	return out
}

func unpackBits(b []byte, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		if b[i/8]&(1<<(7-i%8)) != 0 {
			out[i] = 1
		}
	}
	return out
}

// Decompress reverses Compress.
func Decompress(blob []byte) ([]float32, error) {
	if len(blob) < 32 {
		return nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(blob[0:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if blob[4] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, blob[4])
	}
	llFlag := blob[5]
	n := int(binary.LittleEndian.Uint64(blob[8:16]))
	eb := math.Float64frombits(binary.LittleEndian.Uint64(blob[16:24]))
	bs := int(binary.LittleEndian.Uint32(blob[24:28]))
	radius := int(binary.LittleEndian.Uint32(blob[28:32]))
	payloadLen := int(binary.LittleEndian.Uint32(blob[32:36]))
	if len(blob) < 36+payloadLen {
		return nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	payload := blob[36 : 36+payloadLen]
	if llFlag != 0 {
		c, err := lossless.ByID(lossless.ID(llFlag))
		if err != nil {
			return nil, err
		}
		payload, err = c.Decompress(payload)
		if err != nil {
			return nil, fmt.Errorf("sz: lossless stage: %w", err)
		}
	}
	if n == 0 {
		return []float32{}, nil
	}
	if bs < 1 || radius < 2 || eb <= 0 {
		return nil, fmt.Errorf("%w: bad header fields", ErrCorrupt)
	}
	// Each value costs at least one Huffman bit; forged counts beyond the
	// payload capacity are rejected before any allocation sized by n.
	if uint64(n) > uint64(len(payload))*8 {
		return nil, fmt.Errorf("%w: value count %d exceeds payload capacity", ErrCorrupt, n)
	}

	nBlocks := (n + bs - 1) / bs
	flagBytes := (nBlocks + 7) / 8
	if len(payload) < flagBytes {
		return nil, ErrCorrupt
	}
	predFlags := unpackBits(payload[:flagBytes], nBlocks)
	off := flagBytes
	nReg := 0
	for _, f := range predFlags {
		if f == predRegress {
			nReg++
		}
	}
	if len(payload) < off+nReg*8+4 {
		return nil, ErrCorrupt
	}
	coeffs := make([]float32, 2*nReg)
	for i := range coeffs {
		coeffs[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[off : off+4]))
		off += 4
	}
	hLen := int(binary.LittleEndian.Uint32(payload[off : off+4]))
	off += 4
	if len(payload) < off+hLen+4 {
		return nil, ErrCorrupt
	}
	codes, err := huffman.Decode(payload[off : off+hLen])
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	off += hLen
	nEsc := int(binary.LittleEndian.Uint32(payload[off : off+4]))
	off += 4
	if len(payload) < off+nEsc*4 {
		return nil, ErrCorrupt
	}
	escapes := make([]float32, nEsc)
	for i := range escapes {
		escapes[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[off : off+4]))
		off += 4
	}
	if len(codes) != n {
		return nil, fmt.Errorf("%w: %d codes for %d values", ErrCorrupt, len(codes), n)
	}

	q := quant.New(eb, radius)
	out := make([]float32, n)
	prev := 0.0
	escIdx, regIdx, ci := 0, 0, 0
	for b := 0; b < nBlocks; b++ {
		lo := b * bs
		hi := lo + bs
		if hi > n {
			hi = n
		}
		if predFlags[b] == predRegress {
			c0 := float64(coeffs[2*regIdx])
			c1 := float64(coeffs[2*regIdx+1])
			regIdx++
			for i := lo; i < hi; i++ {
				pred := c0 + c1*float64(i-lo)
				var r float64
				if quant.IsEscape(codes[ci]) {
					if escIdx >= nEsc {
						return nil, fmt.Errorf("%w: escape underflow", ErrCorrupt)
					}
					r = float64(escapes[escIdx])
					escIdx++
				} else {
					r = q.Decode(codes[ci], pred)
				}
				out[i] = float32(r)
				prev = r
				ci++
			}
		} else {
			for i := lo; i < hi; i++ {
				var r float64
				if quant.IsEscape(codes[ci]) {
					if escIdx >= nEsc {
						return nil, fmt.Errorf("%w: escape underflow", ErrCorrupt)
					}
					r = float64(escapes[escIdx])
					escIdx++
				} else {
					r = q.Decode(codes[ci], prev)
				}
				out[i] = float32(r)
				prev = r
				ci++
			}
		}
	}
	return out, nil
}

// Ratio returns the compression ratio achieved by blob for n float32 values.
func Ratio(n int, blob []byte) float64 {
	if len(blob) == 0 {
		return 0
	}
	return float64(4*n) / float64(len(blob))
}
