package sz

import (
	"testing"

	"repro/internal/tensor"
)

// Failure injection: Decompress must reject or survive arbitrary corruption
// without panicking or allocating absurdly.

func TestDecompressSurvivesRandomCorruption(t *testing.T) {
	rng := tensor.NewRNG(1)
	data := weightLike(rng, 5000)
	blob, err := Compress(data, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		bad := append([]byte(nil), blob...)
		flips := 1 + rng.Intn(16)
		for i := 0; i < flips; i++ {
			p := rng.Intn(len(bad))
			bad[p] ^= 1 << rng.Intn(8)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			_, _ = Decompress(bad)
		}()
	}
}

func TestDecompressSurvivesTruncation(t *testing.T) {
	rng := tensor.NewRNG(2)
	blob, _ := Compress(weightLike(rng, 2000), Options{ErrorBound: 1e-3})
	for cut := 0; cut <= len(blob); cut += 1 + len(blob)/113 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panic: %v", cut, r)
				}
			}()
			_, _ = Decompress(blob[:cut])
		}()
	}
}

func TestDecompressRejectsForgedHugeCount(t *testing.T) {
	rng := tensor.NewRNG(3)
	blob, _ := Compress(weightLike(rng, 100), Options{ErrorBound: 1e-3})
	// Forge the value count (bytes 8..16, little endian) to 2^40.
	for i := 8; i < 16; i++ {
		blob[i] = 0
	}
	blob[13] = 1 // 2^40
	if _, err := Decompress(blob); err == nil {
		t.Fatal("expected rejection of forged count")
	}
}

func TestDecompressGarbage(t *testing.T) {
	rng := tensor.NewRNG(4)
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		garbage := make([]byte, n)
		for i := range garbage {
			garbage[i] = byte(rng.Uint64())
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on garbage: %v", trial, r)
				}
			}()
			_, _ = Decompress(garbage)
		}()
	}
}
