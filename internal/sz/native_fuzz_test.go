package sz

import (
	"testing"

	"repro/internal/tensor"
)

// FuzzDecompress is the native-fuzzing counterpart of the corruption tests
// above: arbitrary bytes must be rejected or decoded without panics or
// header-driven huge allocations.
func FuzzDecompress(f *testing.F) {
	rng := tensor.NewRNG(21)
	for _, n := range []int{0, 1, 300, 5000} {
		blob, err := Compress(weightLike(rng, n), Options{ErrorBound: 1e-3})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{0x4F, 0x47, 0x5A, 0x53}) // magic only
	f.Fuzz(func(t *testing.T, blob []byte) {
		_, _ = Decompress(blob)
	})
}
