// Package stats provides the small numeric helpers the experiment harness
// reports: error norms, PSNR, and linear correlation.
package stats

import (
	"fmt"
	"math"
)

// MaxAbsError returns L∞(a − b).
func MaxAbsError(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(a), len(b)))
	}
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

// MeanAbsError returns L1(a − b)/n.
func MeanAbsError(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		s += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return s / float64(len(a))
}

// PSNR returns the peak signal-to-noise ratio in dB of b against reference a
// (peak = value range of a). Returns +Inf for identical arrays.
func PSNR(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return math.Inf(1)
	}
	lo, hi := a[0], a[0]
	var mse float64
	for i := range a {
		if a[i] < lo {
			lo = a[i]
		}
		if a[i] > hi {
			hi = a[i]
		}
		d := float64(a[i]) - float64(b[i])
		mse += d * d
	}
	mse /= float64(len(a))
	if mse == 0 {
		return math.Inf(1)
	}
	r := float64(hi) - float64(lo)
	if r == 0 {
		r = 1
	}
	return 20 * math.Log10(r/math.Sqrt(mse))
}

// Pearson returns the linear correlation coefficient of (x, y) pairs.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(x), len(y)))
	}
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
