package stats

import (
	"math"
	"testing"
)

func TestMaxAbsError(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{1.5, 2, 2}
	if got := MaxAbsError(a, b); got != 1 {
		t.Fatalf("MaxAbsError = %v, want 1", got)
	}
	if got := MaxAbsError(a, a); got != 0 {
		t.Fatalf("identical arrays: %v", got)
	}
}

func TestMeanAbsError(t *testing.T) {
	a := []float32{0, 0, 0, 0}
	b := []float32{1, -1, 2, 0}
	if got := MeanAbsError(a, b); got != 1 {
		t.Fatalf("MeanAbsError = %v, want 1", got)
	}
	if MeanAbsError(nil, nil) != 0 {
		t.Fatal("empty arrays should give 0")
	}
}

func TestPSNR(t *testing.T) {
	a := []float32{0, 1}
	if !math.IsInf(PSNR(a, a), 1) {
		t.Fatal("identical arrays should give +Inf PSNR")
	}
	b := []float32{0.1, 0.9}
	// mse = 0.01, range 1 → psnr = 20 log10(1/0.1) = 20.
	if got := PSNR(a, b); math.Abs(got-20) > 1e-4 {
		t.Fatalf("PSNR = %v, want 20", got)
	}
	// Smaller error → larger PSNR.
	c := []float32{0.01, 0.99}
	if PSNR(a, c) <= PSNR(a, b) {
		t.Fatal("PSNR should grow as error shrinks")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yneg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if got := Pearson(x, flat); got != 0 {
		t.Fatalf("zero variance should give 0, got %v", got)
	}
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Fatal("n<2 should give 0")
	}
}

func TestMismatchPanics(t *testing.T) {
	for _, f := range []func(){
		func() { MaxAbsError([]float32{1}, []float32{1, 2}) },
		func() { MeanAbsError([]float32{1}, []float32{1, 2}) },
		func() { PSNR([]float32{1}, []float32{1, 2}) },
		func() { Pearson([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
