package core

import (
	"bytes"
	"testing"

	"repro/internal/codec"
)

// The parallel refactor of Generate and Decode must not change bytes:
// worker count is a throughput knob, not a semantic one. These tests pin
// that down per codec, catching map-iteration and append-ordering races
// (run under -race in CI).

func TestGenerateByteIdenticalAcrossWorkers(t *testing.T) {
	net := prunedMLP(51)
	plan := simplePlan(net, 1e-3)
	for _, name := range codec.Names() {
		cdc, err := codec.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		switch cdc.ID() {
		case codec.IDSZ, codec.IDZFP, codec.IDDeepComp:
		default:
			continue // test-registered fakes from other files
		}
		t.Run(name, func(t *testing.T) {
			var ref []byte
			for _, workers := range []int{1, 8, 3} {
				m, err := Generate(net, plan, Config{
					ExpectedAccuracyLoss: 0.01,
					Workers:              workers,
					Codec:                cdc.ID(),
				})
				if err != nil {
					t.Fatal(err)
				}
				blob := m.Marshal()
				if ref == nil {
					ref = blob
					continue
				}
				if !bytes.Equal(ref, blob) {
					t.Fatalf("Workers=%d produced different WriteModel bytes than Workers=1", workers)
				}
			}
		})
	}
}

// TestGenerateConvByteIdenticalAcrossWorkers pins worker-count independence
// for whole-network (conv+fc) generation: the v3 stream bytes must not
// depend on scheduling any more than the fc-only stream does.
func TestGenerateConvByteIdenticalAcrossWorkers(t *testing.T) {
	net := prunedConvNet(55)
	plan := simplePlanAll(net, 1e-3)
	var ref []byte
	for _, workers := range []int{1, 8, 3} {
		m, err := Generate(net, plan, Config{
			ExpectedAccuracyLoss: 0.01,
			Workers:              workers,
			Layers:               LayersAll,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Layers) != 4 {
			t.Fatalf("generated %d layers, want 4 (2 conv + 2 fc)", len(m.Layers))
		}
		blob := m.Marshal()
		if ref == nil {
			ref = blob
			continue
		}
		if !bytes.Equal(ref, blob) {
			t.Fatalf("Workers=%d produced different conv+fc stream bytes than Workers=1", workers)
		}
	}
}

// TestGenerateByteIdenticalAcrossRuns catches nondeterminism independent of
// scheduling (map-iteration-dependent entropy coding would flip bytes
// between two identical calls).
func TestGenerateByteIdenticalAcrossRuns(t *testing.T) {
	net := prunedMLP(52)
	plan := simplePlan(net, 1e-3)
	cfg := Config{ExpectedAccuracyLoss: 0.01, Workers: 2}
	m1, err := Generate(net, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Generate(net, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Marshal(), m2.Marshal()) {
		t.Fatal("two identical Generate calls produced different bytes")
	}
}

func TestDecodeIdenticalAcrossWorkers(t *testing.T) {
	net := prunedMLP(53)
	m, err := Generate(net, simplePlan(net, 1e-3), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := m.DecodeWith(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, _, err := m.DecodeWith(workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("DecodeWith(%d): %d layers, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Name != ref[i].Name {
				t.Fatalf("DecodeWith(%d): layer %d is %q, want %q (ordering race)", workers, i, got[i].Name, ref[i].Name)
			}
			for j := range ref[i].Weights {
				if got[i].Weights[j] != ref[i].Weights[j] {
					t.Fatalf("DecodeWith(%d): %s weight %d differs", workers, ref[i].Name, j)
				}
			}
			for j := range ref[i].Bias {
				if got[i].Bias[j] != ref[i].Bias[j] {
					t.Fatalf("DecodeWith(%d): %s bias %d differs", workers, ref[i].Name, j)
				}
			}
		}
	}
}

// TestGenerateCodecRoundTrip locks the codec threading end to end: a model
// generated with each codec decodes through the registry, and the stored
// codec id survives a marshal round trip.
func TestGenerateCodecRoundTrip(t *testing.T) {
	net := prunedMLP(54)
	for _, id := range []codec.ID{codec.IDSZ, codec.IDZFP, codec.IDDeepComp} {
		m, err := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01, Codec: id})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range m.Layers {
			if l.Codec != id {
				t.Fatalf("codec %d: layer %s stored codec %d", id, l.Name, l.Codec)
			}
		}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range got.Layers {
			if l.Codec != id {
				t.Fatalf("codec %d: round-tripped layer %s has codec %d", id, l.Name, l.Codec)
			}
		}
		layers, _, err := got.Decode()
		if err != nil {
			t.Fatalf("codec %d: decode: %v", id, err)
		}
		if len(layers) != len(net.DenseLayers()) {
			t.Fatalf("codec %d: decoded %d layers", id, len(layers))
		}
		ids := got.Codecs()
		if len(ids) != 1 || ids[0] != id {
			t.Fatalf("codec %d: Codecs() = %v", id, ids)
		}
	}
}
