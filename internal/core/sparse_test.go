package core

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// sparseDecoded builds a dense decoded fc layer with the given density.
func sparseDecoded(rows, cols int, density float64) *DecodedLayer {
	rng := tensor.NewRNG(99)
	w := make([]float32, rows*cols)
	rng.FillNormal(w, 0, 1)
	gate := make([]float32, len(w))
	rng.FillUniform(gate, 0, 1)
	for i := range w {
		if float64(gate[i]) >= density {
			w[i] = 0
		}
	}
	return &DecodedLayer{
		Name:    "fc",
		Kind:    nn.KindDense,
		Shape:   []int{rows, cols},
		Weights: w,
		Bias:    make([]float32, rows),
	}
}

func TestDecodedLayerCompact(t *testing.T) {
	dl := sparseDecoded(32, 128, 0.1)
	wantDense := append([]float32(nil), dl.Weights...)
	density := dl.Density()
	if density <= 0 || density > 0.2 {
		t.Fatalf("unexpected density %v", density)
	}
	denseBytes := dl.ResidentBytes()
	if denseBytes != 4*int64(len(wantDense)+len(dl.Bias)) {
		t.Fatalf("dense ResidentBytes %d", denseBytes)
	}

	// Above-threshold and disabled thresholds must leave the layer dense.
	if dl.Compact(0.05) || dl.Sparse != nil {
		t.Fatal("Compact converted above-threshold layer")
	}
	if dl.Compact(0) || dl.Compact(-1) {
		t.Fatal("Compact ran with conversion disabled")
	}

	if !dl.Compact(0.35) {
		t.Fatal("Compact refused an eligible layer")
	}
	if dl.Weights != nil || dl.Sparse == nil {
		t.Fatal("Compact did not swap representations")
	}
	if dl.Sparse.Rows != 32 || dl.Sparse.Cols != 128 {
		t.Fatalf("CSR dims %dx%d", dl.Sparse.Rows, dl.Sparse.Cols)
	}
	if dl.Density() != density {
		t.Fatalf("density changed across Compact: %v vs %v", dl.Density(), density)
	}
	if got := dl.ResidentBytes(); got >= denseBytes/2 {
		t.Fatalf("sparse ResidentBytes %d not well under dense %d", got, denseBytes)
	}
	// Compacting twice is a no-op that still reports sparse.
	if !dl.Compact(0.35) {
		t.Fatal("second Compact lost the sparse form")
	}
	got := dl.DenseWeights()
	for i := range wantDense {
		if got[i] != wantDense[i] {
			t.Fatalf("DenseWeights diverged at %d", i)
		}
	}
}

func TestDecodedLayerCompactConvShape(t *testing.T) {
	dl := sparseDecoded(8, 2*3*3, 0.1)
	dl.Kind = nn.KindConv
	dl.Shape = []int{8, 2, 3, 3}
	if !dl.Compact(0.35) {
		t.Fatal("conv layer did not compact")
	}
	// Rows = outC, cols = the flattened im2col dimensions.
	if dl.Sparse.Rows != 8 || dl.Sparse.Cols != 18 {
		t.Fatalf("conv CSR dims %dx%d, want 8x18", dl.Sparse.Rows, dl.Sparse.Cols)
	}
}

func TestEstimatedDensity(t *testing.T) {
	// Build a real blob via Generate and compare the header estimate with
	// the decoded truth: estimate must be an upper bound within the
	// padding slack.
	rng := tensor.NewRNG(4)
	net := nn.NewNetwork("est", nn.NewFlatten("flat"), nn.NewDense("ip1", 64, 32, rng))
	prune.Network(net, map[string]float64{"ip1": 0.1}, 0.1)
	plan := &Plan{Choices: []Choice{{Layer: "ip1", EB: 1e-3}}}
	m, err := Generate(net, plan, Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	l := m.Layer("ip1")
	est := l.EstimatedDensity()
	dl, err := m.DecodeLayer("ip1")
	if err != nil {
		t.Fatal(err)
	}
	exact := dl.Density()
	if est < exact {
		t.Fatalf("estimate %v below exact density %v", est, exact)
	}
	if est > exact+0.05 {
		t.Fatalf("estimate %v too far above exact %v (padding slack only)", est, exact)
	}
	if idx, ok := m.LayerIndex("ip1"); !ok || idx != 0 {
		t.Fatalf("LayerIndex = %d,%v", idx, ok)
	}
	if _, ok := m.LayerIndex("nope"); ok {
		t.Fatal("LayerIndex found a missing layer")
	}
}
