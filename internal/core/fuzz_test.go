package core

// Failure-injection tests: random corruption of serialized artefacts must
// surface as errors, never as panics or silent acceptance of impossible
// structures. v4 streams carry a whole-model digest plus per-blob CRCs, so
// random flips are rejected up front; pre-v4 streams (and resealed v4
// forgeries) may reach the deeper paths, which must stay memory-safe.

import (
	"encoding/binary"
	"os"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// mutate flips nFlips random bits of blob (copy).
func mutate(rng *tensor.RNG, blob []byte, nFlips int) []byte {
	out := append([]byte(nil), blob...)
	for i := 0; i < nFlips; i++ {
		p := rng.Intn(len(out))
		out[p] ^= 1 << rng.Intn(8)
	}
	return out
}

func TestUnmarshalSurvivesRandomCorruption(t *testing.T) {
	net := prunedMLP(30)
	m, err := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	blob := m.Marshal()
	rng := tensor.NewRNG(31)
	for trial := 0; trial < 300; trial++ {
		bad := mutate(rng, blob, 1+rng.Intn(8))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on corrupted model: %v", trial, r)
				}
			}()
			mm, err := Unmarshal(bad)
			if err != nil {
				return // rejection is the expected outcome
			}
			// Structurally valid after corruption: decoding must still not
			// panic (it may error or return different weights).
			_, _, _ = mm.Decode()
		}()
	}
}

func TestUnmarshalSurvivesTruncation(t *testing.T) {
	net := prunedMLP(32)
	m, _ := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	blob := m.Marshal()
	for cut := 0; cut < len(blob); cut += 1 + len(blob)/97 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panic: %v", cut, r)
				}
			}()
			if mm, err := Unmarshal(blob[:cut]); err == nil {
				_, _, _ = mm.Decode()
			}
		}()
	}
}

// FuzzReadModel feeds arbitrary bytes to the `.dsz` reader. The contract:
// Unmarshal either rejects the blob with an error or returns a model whose
// Decode cannot panic or allocate beyond the header plausibility caps —
// corrupt, truncated, and adversarial-length headers included. Seeds cover
// all four stream versions so the fuzzer mutates real v1–v4 structure,
// including the v3 layer-kind/shape bytes and the v4 digest, flags, and
// CRC fields.
func FuzzReadModel(f *testing.F) {
	// Seeds use the tiny golden network: a few-KB corpus keeps mutated
	// payload decompression cheap, so the fuzzer spends its budget on
	// header structure rather than on decoding large semi-valid blobs.
	net := goldenNet()
	m, err := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		f.Fatal(err)
	}
	v4 := m.Marshal()
	f.Add(v4)
	f.Add(v4[:len(v4)/2])
	f.Add(v4[:5])
	// Forged v4 fields. Any flip below the digest fails Unmarshal's digest
	// check, so forgeries that must reach the deeper validation paths
	// re-seal the stream: patch a field, then recompute the digest over
	// the body — exactly what an adversarial (or doubly unlucky) stream
	// looks like. Offset arithmetic mirrors Marshal: magic(4) version(1)
	// netname(2+n) digest(4) nlayers(2) layername(2+n) kind ndims dims…
	digestOff := 4 + 1 + 2 + len(m.NetName)
	kindOff := digestOff + 4 + 2 + 2 + len(m.Layers[0].Name)
	forge := func(off int, b ...byte) []byte {
		bad := append([]byte(nil), v4...)
		copy(bad[off:], b)
		binary.LittleEndian.PutUint32(bad[digestOff:], crc32c(bad[digestOff+4:]))
		return bad
	}
	f.Add(forge(kindOff, 0xEE))                     // unknown layer kind
	f.Add(forge(kindOff+1, 0xFF))                   // 255-dimensional shape
	f.Add(forge(kindOff+2, 0xFF, 0xFF, 0xFF, 0xFF)) // dimension beyond the caps
	f.Add(forge(kindOff, byte(nn.KindConv), 4))     // kind/rank lying about the payload
	// Digest-only flip (caught by the up-front check), an unknown flags
	// bit, and a forged-but-resealed blob CRC (accepted by Unmarshal,
	// must surface as an error at decode, never as wrong weights).
	rawFlip := append([]byte(nil), v4...)
	rawFlip[digestOff] ^= 0x01
	f.Add(rawFlip)
	mm, err := Unmarshal(v4)
	if err != nil {
		f.Fatal(err)
	}
	flagsOff := kindOff + 1 + 1 + 4*len(mm.Layers[0].Shape) + 8 + 4 + 4*len(mm.Layers[0].Bias) + 1
	f.Add(forge(flagsOff, 0x80))                                // unknown flags bit
	dataCRCOff := flagsOff + 1 + 4 + len(mm.Layers[0].DataBlob) // stored CRC of layer 0's data blob
	f.Add(forge(dataCRCOff, 0xDE, 0xAD, 0xBE, 0xEF))
	// A conv+fc whole-network model exercises real KindConv layers and
	// 4-D shapes in the corpus.
	convNet := prunedConvNet(77)
	cm, err := Generate(convNet, simplePlanAll(convNet, 1e-2), Config{ExpectedAccuracyLoss: 0.01, Layers: LayersAll})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cm.Marshal())
	// v1–v3 seeds (the layouts the golden fixtures lock).
	for _, p := range []string{goldenV1Path, goldenV2Path, goldenV3Path} {
		if fixture, err := os.ReadFile(p); err == nil {
			f.Add(fixture)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x5A, 0x53, 0x44, 3}) // magic + version, nothing else
	f.Fuzz(func(t *testing.T, blob []byte) {
		mm, err := Unmarshal(blob)
		if err != nil {
			return // rejection is the expected outcome
		}
		// Structurally valid: decoding may error but must stay memory-safe,
		// serially and in parallel.
		_, _, _ = mm.DecodeWith(2)
		_ = mm.Marshal() // re-marshal of an accepted model must not panic
	})
}

func TestDecodeSurvivesBlobSwap(t *testing.T) {
	// Swapping the SZ blobs of two layers must be caught (entry counts no
	// longer match the index arrays) rather than corrupting memory.
	net := prunedMLP(33)
	m, _ := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	if len(m.Layers) < 2 {
		t.Skip("need two layers")
	}
	m.Layers[0].DataBlob, m.Layers[1].DataBlob = m.Layers[1].DataBlob, m.Layers[0].DataBlob
	if _, _, err := m.Decode(); err == nil {
		t.Fatal("expected error after swapping data blobs")
	}
}
