package core

import (
	"errors"
	"testing"
)

func TestDecodeLayerMatchesFullDecode(t *testing.T) {
	net := prunedMLP(20)
	m, err := Generate(net, simplePlan(net, 1e-3), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := m.Decode()
	if err != nil {
		t.Fatal(err)
	}
	names := m.LayerNames()
	if len(names) != len(full) {
		t.Fatalf("LayerNames %v vs %d decoded layers", names, len(full))
	}
	for i, name := range names {
		single, err := m.DecodeLayer(name)
		if err != nil {
			t.Fatal(err)
		}
		if single.Name != full[i].Name {
			t.Fatalf("layer order mismatch: %s vs %s", single.Name, full[i].Name)
		}
		for j := range full[i].Weights {
			if single.Weights[j] != full[i].Weights[j] {
				t.Fatalf("%s weight %d differs between streamed and full decode", name, j)
			}
		}
		for j := range full[i].Bias {
			if single.Bias[j] != full[i].Bias[j] {
				t.Fatalf("%s bias %d differs", name, j)
			}
		}
	}
}

func TestDecodeLayerUnknown(t *testing.T) {
	net := prunedMLP(21)
	m, _ := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	if _, err := m.DecodeLayer("nope"); err == nil {
		t.Fatal("expected error for unknown layer")
	}
}

func TestStreamDecodeVisitsAllInOrder(t *testing.T) {
	net := prunedMLP(22)
	m, _ := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	var seen []string
	if err := m.StreamDecode(func(dl *DecodedLayer) error {
		seen = append(seen, dl.Name)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := m.LayerNames()
	if len(seen) != len(want) {
		t.Fatalf("visited %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("order %v, want %v", seen, want)
		}
	}
}

func TestStreamDecodeStopsOnCallbackError(t *testing.T) {
	net := prunedMLP(23)
	m, _ := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	sentinel := errors.New("stop")
	calls := 0
	err := m.StreamDecode(func(*DecodedLayer) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after error", calls)
	}
}
