package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/lossless"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// Point is one assessed (error bound → degradation, size) sample for a
// layer: Δ(ℓ;eb) and σ(ℓ;eb) in the paper's notation.
type Point struct {
	EB          float64
	Degradation float64 // baseline top-1 − reconstructed top-1 (may be < 0)
	DataBytes   int     // SZ-compressed data-array size at this bound
}

// LayerAssessment is Algorithm 1's output for one compressible layer.
type LayerAssessment struct {
	Layer string
	// Kind tags the layer family (fc, conv) and Shape its weight-tensor
	// dimensions ([out, in] for fc, [outC, inC, k, k] for conv).
	Kind  nn.LayerKind
	Shape []int
	// Sparse is the pruned two-array form the data points are measured on.
	Sparse *prune.Sparse
	// IndexBytes is the best-fit losslessly compressed index-array size
	// (constant across error bounds).
	IndexBytes int
	// IndexCompressor is the back-end that produced IndexBytes.
	IndexCompressor lossless.ID
	// Points are the assessed samples, sorted by error bound.
	Points []Point
	// FeasibleLo/FeasibleHi delimit the feasible error-bound range: the
	// first fine-sweep bound and the last bound whose degradation stayed
	// within ϵ*.
	FeasibleLo, FeasibleHi float64
}

// WeightCount returns the number of dense weights (the product of Shape).
func (la *LayerAssessment) WeightCount() int {
	n := 1
	for _, d := range la.Shape {
		n *= d
	}
	return n
}

// Assessment is the full Algorithm 1 output.
type Assessment struct {
	NetName  string
	Baseline nn.Accuracy
	// Split is the layer index where the uncompressed prefix ends (feature
	// cache boundary): the first assessed layer's position in the network.
	Split  int
	Layers []*LayerAssessment
	// Tests counts accuracy evaluations performed (the paper's c·k).
	Tests int
}

// Assess runs Algorithm 1 (error bound assessment) over every selected
// weighted layer of net (cfg.Layers: fc only by default, or all), which
// must already be pruned and mask-retrained. test supplies the
// inference-accuracy measurements.
func Assess(net *nn.Network, test *dataset.Set, cfg Config) (*Assessment, error) {
	if err := (&cfg).fill(); err != nil {
		return nil, err
	}
	selected := selectLayers(net, cfg.Layers)
	if len(selected) == 0 {
		return nil, fmt.Errorf("core: network %q has no %s layers to compress", net.Name(), cfg.Layers)
	}
	// The feature cache covers the prefix before the first assessed layer:
	// those layers are never reconstructed, so their activations are
	// computed once and reused by every error-bound test.
	split := net.LayerIndex(selected[0].Name())
	features := net.FeatureCache(split, test, cfg.TestBatch)
	baseline := net.EvaluateFrom(split, features, test, cfg.TestBatch)

	a := &Assessment{NetName: net.Name(), Baseline: baseline, Split: split}
	for _, cl := range selected {
		sp := prune.Encode(cl.Weights())
		comp, blob := lossless.Best(indexBytes(sp))
		a.Layers = append(a.Layers, &LayerAssessment{
			Layer:           cl.Name(),
			Kind:            cl.Kind(),
			Shape:           append([]int(nil), cl.WeightShape()...),
			Sparse:          sp,
			IndexBytes:      len(blob),
			IndexCompressor: comp.ID(),
		})
	}

	// Layers are assessed concurrently; each worker owns a private clone of
	// the suffix from Split onward so weight swaps cannot race.
	workers := cfg.Workers
	if workers > len(a.Layers) {
		workers = len(a.Layers)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	totalTests := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			suffix := net.CloneRange(split, len(net.Layers))
			for li := range jobs {
				n := assessLayer(suffix, features, test, a.Layers[li], baseline.Top1, cfg)
				mu.Lock()
				totalTests += n
				mu.Unlock()
			}
		}()
	}
	for li := range a.Layers {
		jobs <- li
	}
	close(jobs)
	wg.Wait()
	a.Tests = totalTests
	return a, nil
}

// indexBytes converts a sparse index array to raw bytes for lossless coding.
func indexBytes(sp *prune.Sparse) []byte {
	b := make([]byte, len(sp.Index))
	copy(b, sp.Index)
	return b
}

// assessLayer implements Algorithm 1's per-layer loop and returns the number
// of accuracy tests performed.
func assessLayer(suffix *nn.Network, features *tensor.Tensor, test *dataset.Set,
	la *LayerAssessment, baselineTop1 float64, cfg Config) int {

	cl := findCompressible(suffix, la.Layer)
	original := append([]float32(nil), cl.Weights()...)
	defer cl.SetWeights(original)

	tests := 0
	seen := map[float64]Point{}
	try := func(eb float64) Point {
		if p, ok := seen[eb]; ok {
			return p
		}
		p := measure(suffix, features, test, cl, la.Sparse, eb, baselineTop1, cfg)
		cl.SetWeights(original)
		seen[eb] = p
		tests++
		return p
	}

	// A codec without error control (deepcomp) produces the same blob and
	// degradation at every grid point: one measurement describes the whole
	// sweep, so skip it rather than re-clustering and re-evaluating the
	// suffix once per bound.
	if cdc, err := codec.ByID(cfg.Codec); err == nil && !cdc.ErrorBounded() {
		p := try(cfg.StartErrorBound)
		la.FeasibleLo, la.FeasibleHi = p.EB, p.EB
		la.Points = []Point{p}
		return tests
	}

	// Coarse sweep (Algorithm 1 lines 13–19): walk decades from the start
	// bound until the distortion criterion (0.1 %) trips, then fine-sweep
	// from a decade below.
	base := cfg.StartErrorBound
	tripped := false
	for beta := cfg.StartErrorBound; beta <= cfg.MaxErrorBound*1.0001; beta *= 10 {
		p := try(beta)
		if p.Degradation > cfg.DistortionCriterion {
			base = beta / 10
			tripped = true
			break
		}
	}
	if !tripped {
		// Accuracy never distorted up to the cap: the whole decade below
		// the cap is feasible.
		base = cfg.MaxErrorBound / 10
	}

	// Fine sweep (Check, lines 1–10): step by `base`, promoting the step a
	// decade whenever the bound reaches ten steps, until degradation
	// exceeds ϵ* or the cap is hit.
	la.FeasibleLo = base
	eb := base
	for {
		p := try(eb)
		if p.Degradation > cfg.ExpectedAccuracyLoss {
			break
		}
		la.FeasibleHi = eb
		next := eb + base
		if next >= 10*base*0.9999 {
			base *= 10
		}
		eb = next
		if eb > cfg.MaxErrorBound*1.0001 {
			break
		}
	}
	if la.FeasibleHi == 0 {
		la.FeasibleHi = la.FeasibleLo
	}

	la.Points = la.Points[:0]
	for _, p := range seen {
		la.Points = append(la.Points, p)
	}
	sort.Slice(la.Points, func(i, j int) bool { return la.Points[i].EB < la.Points[j].EB })
	return tests
}

// measure compresses the layer's data array at eb with the configured
// codec, reconstructs the layer, and evaluates the suffix network. The
// suffix's weights are left modified; the caller restores them.
func measure(suffix *nn.Network, features *tensor.Tensor, test *dataset.Set,
	cl nn.Compressible, sp *prune.Sparse, eb, baselineTop1 float64, cfg Config) Point {

	cdc, err := codec.ByID(cfg.Codec)
	if err != nil {
		panic(fmt.Sprintf("core: assessment codec missing: %v", err)) // fill() validated it
	}
	blob, err := cdc.Compress(sp.Data, cfg.codecOptions(eb))
	if err != nil {
		panic(fmt.Sprintf("core: assessment compression failed: %v", err))
	}
	dec, err := cdc.Decompress(blob)
	if err != nil {
		panic(fmt.Sprintf("core: assessment decompression failed: %v", err))
	}
	recon := &prune.Sparse{N: sp.N, Data: dec, Index: sp.Index}
	dense, err := recon.Decode()
	if err != nil {
		panic(fmt.Sprintf("core: sparse reconstruction failed: %v", err))
	}
	cl.SetWeights(dense)
	acc := suffix.EvaluateFrom(0, features, test, cfg.TestBatch)
	return Point{EB: eb, Degradation: baselineTop1 - acc.Top1, DataBytes: len(blob)}
}

func findCompressible(net *nn.Network, name string) nn.Compressible {
	if cl := net.CompressibleByName(name); cl != nil {
		return cl
	}
	panic(fmt.Sprintf("core: layer %q not found in suffix", name))
}
