package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/codec"
)

// ErrNoLayers is returned when an assessment covers no compressible layers.
var ErrNoLayers = errors.New("core: assessment has no layers")

// ErrInfeasible is returned when no error-bound configuration satisfies the
// optimisation constraint: every point of some layer exceeds the accuracy
// budget, or the size target is below the minimum achievable size.
var ErrInfeasible = errors.New("core: no feasible error-bound configuration")

// Choice is the optimiser's selection for one layer.
type Choice struct {
	Layer       string
	EB          float64
	Degradation float64
	DataBytes   int
	IndexBytes  int
	// Codec records the lossy back-end the assessment measured DataBytes
	// with; Generate compresses the layer with the same codec (0 falls
	// back to Config.Codec).
	Codec codec.ID
	// Sensitivity is the layer's measured criticality: the maximum
	// accuracy degradation observed across its assessed points. Generate
	// uses it (via Config.DecodedChecksums) to decide which layers carry
	// a decoded checksum in the v4 stream.
	Sensitivity float64
}

// Plan is Algorithm 2's output: one error bound per layer.
type Plan struct {
	Choices []Choice
	// PredictedLoss is Σ Δℓ, the linear estimate of total accuracy loss
	// (Equation 1).
	PredictedLoss float64
	// TotalBytes is the predicted compressed fc size (data + index blobs).
	TotalBytes int
}

// slots is the budget discretisation of Algorithm 2 (the [0..100]·ϵ* loop).
const slots = 100

// Optimize dispatches on cfg.Mode.
func Optimize(a *Assessment, cfg Config) (*Plan, error) {
	if err := (&cfg).fill(); err != nil {
		return nil, err
	}
	var plan *Plan
	var err error
	switch cfg.Mode {
	case ExpectedAccuracy:
		plan, err = OptimizeExpectedAccuracy(a, cfg.ExpectedAccuracyLoss)
	case ExpectedRatio:
		var origBytes int64
		for _, la := range a.Layers {
			origBytes += int64(la.WeightCount()) * 4
		}
		target := int(float64(origBytes) / cfg.TargetRatio)
		plan, err = OptimizeExpectedRatio(a, target)
	default:
		return nil, fmt.Errorf("core: unknown optimise mode %d", cfg.Mode)
	}
	if err != nil {
		return nil, err
	}
	// Stamp the codec the assessment measured with, so Generate emits the
	// sizes the plan predicts, and each layer's measured criticality so
	// integrity strength can follow it.
	sens := map[string]float64{}
	for _, la := range a.Layers {
		max := 0.0
		for _, p := range la.Points {
			if p.Degradation > max {
				max = p.Degradation
			}
		}
		sens[la.Layer] = max
	}
	for i := range plan.Choices {
		plan.Choices[i].Codec = cfg.Codec
		plan.Choices[i].Sensitivity = sens[plan.Choices[i].Layer]
	}
	return plan, nil
}

// OptimizeExpectedAccuracy implements Algorithm 2: minimise total compressed
// size subject to Σ max(Δℓ,0) ≤ epsStar, via a knapsack dynamic program over
// the discretised accuracy budget, then trace back per-layer bounds.
func OptimizeExpectedAccuracy(a *Assessment, epsStar float64) (*Plan, error) {
	if epsStar <= 0 {
		return nil, fmt.Errorf("core: expected accuracy loss must be positive, got %v", epsStar)
	}
	if len(a.Layers) == 0 {
		return nil, ErrNoLayers
	}
	res := epsStar / slots
	cost := func(d float64) int {
		if d <= 0 {
			return 0
		}
		return int(math.Ceil(d / res))
	}

	const inf = math.MaxInt64 / 4
	k := len(a.Layers)
	// S[j] = min size of layers processed so far using ≤ j budget slots.
	S := make([]int64, slots+1)
	choice := make([][]int, k) // choice[l][j] = point index picked
	for l := 0; l < k; l++ {
		choice[l] = make([]int, slots+1)
	}
	next := make([]int64, slots+1)

	for l, la := range a.Layers {
		feas := feasiblePoints(la, epsStar)
		if len(feas) == 0 {
			return nil, fmt.Errorf("%w: layer %s has no assessed point within budget %v", ErrInfeasible, la.Layer, epsStar)
		}
		for j := 0; j <= slots; j++ {
			next[j] = inf
			choice[l][j] = -1
		}
		for j := 0; j <= slots; j++ {
			if l > 0 && S[j] >= inf {
				continue
			}
			prev := int64(0)
			if l > 0 {
				prev = S[j]
			} else if j > 0 {
				continue // layer 0 starts from budget exactly consumed
			}
			for pi, p := range feas {
				c := cost(p.Degradation)
				nj := j + c
				if nj > slots {
					continue
				}
				total := prev + int64(p.DataBytes)
				if total < next[nj] {
					next[nj] = total
					choice[l][nj] = pi
				}
			}
		}
		// States record exact budget consumption so the trace-back can
		// recover each layer's choice; the final answer scans all j.
		copy(S, next)
	}

	// Find the best final state and trace back.
	bestJ, bestSize := -1, int64(inf)
	for j := 0; j <= slots; j++ {
		if S[j] < bestSize {
			bestSize, bestJ = S[j], j
		}
	}
	if bestJ < 0 || bestSize >= inf {
		return nil, fmt.Errorf("%w: no configuration within budget %v", ErrInfeasible, epsStar)
	}

	plan := &Plan{}
	j := bestJ
	chosen := make([]int, k)
	for l := k - 1; l >= 0; l-- {
		pi := choice[l][j]
		if pi < 0 {
			return nil, fmt.Errorf("core: trace-back failed at layer %s", a.Layers[l].Layer)
		}
		chosen[l] = pi
		feas := feasiblePoints(a.Layers[l], epsStar)
		j -= cost(feas[pi].Degradation)
	}
	for l, la := range a.Layers {
		p := feasiblePoints(la, epsStar)[chosen[l]]
		plan.Choices = append(plan.Choices, Choice{
			Layer:       la.Layer,
			EB:          p.EB,
			Degradation: p.Degradation,
			DataBytes:   p.DataBytes,
			IndexBytes:  la.IndexBytes,
		})
		if p.Degradation > 0 {
			plan.PredictedLoss += p.Degradation
		}
		plan.TotalBytes += p.DataBytes + la.IndexBytes
	}
	return plan, nil
}

// feasiblePoints returns a layer's points with Δ ≤ epsStar, in EB order.
func feasiblePoints(la *LayerAssessment, epsStar float64) []Point {
	var out []Point
	for _, p := range la.Points {
		if p.Degradation <= epsStar {
			out = append(out, p)
		}
	}
	return out
}

// OptimizeExpectedRatio is the fixed-rate mode (§3.4): minimise Σ Δℓ subject
// to Σ compressed bytes ≤ targetBytes, by the same DP with size and accuracy
// swapped.
func OptimizeExpectedRatio(a *Assessment, targetBytes int) (*Plan, error) {
	if len(a.Layers) == 0 {
		return nil, ErrNoLayers
	}
	// Index blobs are mandatory; they consume budget up front.
	idxTotal := 0
	for _, la := range a.Layers {
		idxTotal += la.IndexBytes
	}
	dataBudget := targetBytes - idxTotal
	if dataBudget <= 0 {
		return nil, fmt.Errorf("%w: size target %d cannot cover index arrays (%d bytes)", ErrInfeasible, targetBytes, idxTotal)
	}
	const sizeSlots = 256
	res := float64(dataBudget) / sizeSlots
	cost := func(bytes int) int { return int(math.Ceil(float64(bytes) / res)) }

	inf := math.Inf(1)
	k := len(a.Layers)
	S := make([]float64, sizeSlots+1)
	choice := make([][]int, k)
	for l := 0; l < k; l++ {
		choice[l] = make([]int, sizeSlots+1)
	}
	next := make([]float64, sizeSlots+1)
	for l, la := range a.Layers {
		if len(la.Points) == 0 {
			return nil, fmt.Errorf("%w: layer %s has no assessed points", ErrInfeasible, la.Layer)
		}
		for j := 0; j <= sizeSlots; j++ {
			next[j] = inf
			choice[l][j] = -1
		}
		for j := 0; j <= sizeSlots; j++ {
			var prev float64
			if l > 0 {
				prev = S[j]
				if math.IsInf(prev, 1) {
					continue
				}
			} else if j > 0 {
				continue
			}
			for pi, p := range la.Points {
				nj := j + cost(p.DataBytes)
				if nj > sizeSlots {
					continue
				}
				d := p.Degradation
				if d < 0 {
					d = 0
				}
				if total := prev + d; total < next[nj] {
					next[nj] = total
					choice[l][nj] = pi
				}
			}
		}
		copy(S, next)
	}
	bestJ, bestLoss := -1, inf
	for j := 0; j <= sizeSlots; j++ {
		if S[j] < bestLoss {
			bestLoss, bestJ = S[j], j
		}
	}
	if bestJ < 0 || math.IsInf(bestLoss, 1) {
		return nil, fmt.Errorf("%w: no configuration meets size target %d bytes", ErrInfeasible, targetBytes)
	}
	plan := &Plan{}
	j := bestJ
	chosen := make([]int, k)
	for l := k - 1; l >= 0; l-- {
		pi := choice[l][j]
		if pi < 0 {
			return nil, fmt.Errorf("core: trace-back failed at layer %s", a.Layers[l].Layer)
		}
		chosen[l] = pi
		j -= cost(a.Layers[l].Points[pi].DataBytes)
	}
	for l, la := range a.Layers {
		p := la.Points[chosen[l]]
		plan.Choices = append(plan.Choices, Choice{
			Layer:       la.Layer,
			EB:          p.EB,
			Degradation: p.Degradation,
			DataBytes:   p.DataBytes,
			IndexBytes:  la.IndexBytes,
		})
		if p.Degradation > 0 {
			plan.PredictedLoss += p.Degradation
		}
		plan.TotalBytes += p.DataBytes + la.IndexBytes
	}
	return plan, nil
}
