package core

// Whole-network compression tests: the LayersAll pipeline must carry conv
// layers through every stage — assessment, optimisation, generation, the
// v3 stream, and Apply — with the conv layers actually compressed, not
// merely copied.

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// trainedPrunedConvNet returns a small trained conv+fc network with every
// weighted layer pruned and mask-retrained, plus its test set.
func trainedPrunedConvNet(t *testing.T) (*nn.Network, *dataset.Set) {
	t.Helper()
	rng := tensor.NewRNG(19)
	net := nn.NewNetwork("conv-e2e",
		nn.NewConv2D("conv1", 1, 6, 3, 1, 1, rng), // 8×8
		nn.NewMaxPool2D("pool1", 2, 2),            // →4
		nn.NewReLU("reluc1"),
		nn.NewConv2D("conv2", 6, 8, 3, 1, 1, rng), // 4×4
		nn.NewReLU("reluc2"),
		nn.NewFlatten("flat"),
		nn.NewDense("ip1", 128, 32, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("ip2", 32, 10, rng),
	)
	train, test := dataset.SynthImagesSplit(900, 400, 10, 1, 8, 8, 91)
	opt := nn.NewSGD(0.05, 0.9, 1e-4)
	nn.Train(net, train, opt, nn.TrainConfig{Epochs: 3, BatchSize: 32}, rng)
	prune.NetworkAll(net, map[string]float64{"ip1": 0.15, "ip2": 0.4}, 0.15, 0.4)
	prune.Retrain(net, train, 1, 0.03, rng)
	return net, test
}

// TestAssessAllCoversConvLayers: LayersAll assessment must include the conv
// layers, record their kinds and 4-D shapes, and anchor the feature cache
// before the first conv layer.
func TestAssessAllCoversConvLayers(t *testing.T) {
	net := prunedConvNet(70)
	test := dataset.SynthImages(60, 10, 1, 8, 8, 71)
	cfg := assessCfg()
	cfg.Layers = LayersAll
	cfg.TestBatch = 30
	a, err := Assess(net, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Layers) != 4 {
		t.Fatalf("assessed %d layers, want 4 (2 conv + 2 fc)", len(a.Layers))
	}
	if a.Split != 0 {
		t.Fatalf("split %d, want 0 (first assessed layer is conv1)", a.Split)
	}
	wantKinds := []nn.LayerKind{nn.KindConv, nn.KindConv, nn.KindDense, nn.KindDense}
	wantRank := []int{4, 4, 2, 2}
	for i, la := range a.Layers {
		if la.Kind != wantKinds[i] || len(la.Shape) != wantRank[i] {
			t.Fatalf("layer %s assessed as %s rank %d, want %s rank %d",
				la.Layer, la.Kind, len(la.Shape), wantKinds[i], wantRank[i])
		}
		if la.WeightCount() != len(net.CompressibleByName(la.Layer).Weights()) {
			t.Fatalf("layer %s WeightCount %d != live weight count", la.Layer, la.WeightCount())
		}
	}
	// Paper-faithful default must keep ignoring conv layers.
	cfg.Layers = LayersFC
	a, err = Assess(net, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Layers) != 2 {
		t.Fatalf("fc-only assessment covered %d layers, want 2", len(a.Layers))
	}
}

// TestConvRoundTripThroughStream is the acceptance lock: a conv+fc network
// round-trips Assess → Optimize → Generate → WriteModel → ReadModel →
// Apply with the conv layers genuinely compressed (compressed bytes <
// dense conv bytes) and the error bound honoured per weight.
func TestConvRoundTripThroughStream(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	net, test := trainedPrunedConvNet(t)
	cfg := assessCfg()
	cfg.Layers = LayersAll
	a, err := Assess(net, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Optimize(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Choices) != 4 {
		t.Fatalf("plan covers %d layers, want 4", len(plan.Choices))
	}
	m, err := Generate(net, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "conv.dsz")
	if err := m.WriteModel(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(path)
	if err != nil {
		t.Fatal(err)
	}

	ebByLayer := map[string]float64{}
	for _, c := range plan.Choices {
		ebByLayer[c.Layer] = c.EB
	}
	convSeen := 0
	for i := range got.Layers {
		l := &got.Layers[i]
		if l.Kind != nn.KindConv {
			continue
		}
		convSeen++
		if len(l.Shape) != 4 {
			t.Fatalf("conv layer %s stored with shape %v", l.Name, l.Shape)
		}
		if int64(l.CompressedBytes()) >= l.DenseBytes() {
			t.Fatalf("conv layer %s not compressed: %d stored vs %d dense bytes",
				l.Name, l.CompressedBytes(), l.DenseBytes())
		}
	}
	if convSeen != 2 {
		t.Fatalf("stream carries %d conv layers, want 2", convSeen)
	}

	// Apply onto a clone with wiped weights: both conv and fc tensors must
	// come back within each layer's chosen error bound.
	recon := net.Clone()
	for _, cl := range recon.CompressibleLayers() {
		cl.WeightParam().W.Zero()
	}
	if _, err := got.Apply(recon); err != nil {
		t.Fatal(err)
	}
	for _, cl := range recon.CompressibleLayers() {
		orig := net.CompressibleByName(cl.Name()).Weights()
		eb := ebByLayer[cl.Name()]
		for i, w := range cl.Weights() {
			if d := math.Abs(float64(w) - float64(orig[i])); d > eb*1.0001+1e-7 {
				t.Fatalf("%s[%d]: error %g exceeds bound %g after Apply", cl.Name(), i, d, eb)
			}
		}
	}
}

// TestConvApplyRestoresAccuracy: the network reconstructed from a
// whole-network compressed model must stay within the accuracy budget of
// the pruned baseline (with slack for the linearity approximation).
func TestConvApplyRestoresAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	net, test := trainedPrunedConvNet(t)
	cfg := assessCfg()
	cfg.Layers = LayersAll
	// Four simultaneously reconstructed layers compound reconstruction
	// error; keep the sweep inside the paper's linear regime (§3.4 wants
	// eb ≪ 0.1) so Σ∆ℓ stays a usable predictor.
	cfg.MaxErrorBound = 0.05
	res, err := Encode(net, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginalBytesPerKind["conv"] <= 0 || res.CompressedBytesPerKind["conv"] <= 0 {
		t.Fatalf("per-kind accounting missing conv bytes: %+v / %+v",
			res.OriginalBytesPerKind, res.CompressedBytesPerKind)
	}
	if int64(res.CompressedBytesPerKind["conv"]) >= res.OriginalBytesPerKind["conv"] {
		t.Fatalf("conv layers grew: %d compressed vs %d original",
			res.CompressedBytesPerKind["conv"], res.OriginalBytesPerKind["conv"])
	}
	loss := res.Before.Top1 - res.After.Top1
	if loss > cfg.ExpectedAccuracyLoss+0.02 {
		t.Fatalf("actual loss %.4f far exceeds budget %.4f", loss, cfg.ExpectedAccuracyLoss)
	}
}

// TestGenerateRejectsDuplicateLayerNames: Unmarshal treats duplicate names
// as corrupt, so Generate must refuse to produce a stream ReadModel would
// bounce.
func TestGenerateRejectsDuplicateLayerNames(t *testing.T) {
	rng := tensor.NewRNG(9)
	net := nn.NewNetwork("dup-mlp",
		nn.NewFlatten("flat"),
		nn.NewDense("ip", 16, 8, rng),
		nn.NewReLU("relu"),
		nn.NewDense("ip", 8, 4, rng), // same name
	)
	prune.Network(net, nil, 0.3)
	if _, err := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01}); err == nil {
		t.Fatal("Generate accepted duplicate layer names")
	}
}

// TestGenerateFCDefaultSkipsConv locks the paper-faithful default: without
// LayersAll the generated model must not contain conv layers even when the
// plan names them.
func TestGenerateFCDefaultSkipsConv(t *testing.T) {
	net := prunedConvNet(72)
	m, err := Generate(net, simplePlanAll(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) != 2 {
		t.Fatalf("fc-only Generate produced %d layers, want 2", len(m.Layers))
	}
	for i := range m.Layers {
		if m.Layers[i].Kind != nn.KindDense {
			t.Fatalf("fc-only Generate emitted a %s layer", m.Layers[i].Kind)
		}
	}
}
