package core

import (
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// Result bundles the outputs of a full DeepSZ encoding run.
type Result struct {
	Assessment *Assessment
	Plan       *Plan
	Model      *Model

	// Before/After are top-1/top-5 accuracies of the pruned network and of
	// the network reconstructed from the compressed model.
	Before, After nn.Accuracy

	// OriginalBytes is the dense float32 storage of every compressed layer
	// (fc only by default, fc+conv under LayersAll).
	OriginalBytes int64
	// OriginalBytesPerKind splits OriginalBytes by layer kind ("fc",
	// "conv"), so whole-network runs can report where the bytes came from.
	OriginalBytesPerKind map[string]int64
	// CSRBytes is the two-array sparse size after pruning (the paper's
	// "CSR size" column).
	CSRBytes int
	// CompressedBytes is the final DeepSZ size (the "DeepSZ Compressed"
	// column).
	CompressedBytes int
	// CompressedBytesPerKind splits CompressedBytes by layer kind.
	CompressedBytesPerKind map[string]int

	// EncodeTime covers steps 2–4 (assessment, optimisation, generation),
	// matching the paper's encoding-time measurements, which exclude the
	// pruning step shared by all methods.
	EncodeTime time.Duration
}

// PruningRatio returns original ÷ CSR size.
func (r *Result) PruningRatio() float64 {
	return float64(r.OriginalBytes) / float64(r.CSRBytes)
}

// CompressionRatio returns original ÷ compressed size, the headline number
// of Tables 2–4.
func (r *Result) CompressionRatio() float64 {
	return float64(r.OriginalBytes) / float64(r.CompressedBytes)
}

// BitsPerWeight returns compressed bits per nonzero (pruned) weight, the
// paper's "2.0–3.3 bits per pruned weight" metric.
func (r *Result) BitsPerWeight() float64 {
	nz := 0
	for _, la := range r.Assessment.Layers {
		nz += la.Sparse.Nonzeros()
	}
	if nz == 0 {
		return 0
	}
	return float64(8*r.CompressedBytes) / float64(nz)
}

// PredictedVsActualGap returns |Σ∆ℓ − actual loss|, the linearity-model
// error the paper's Figure 6 studies.
func (r *Result) PredictedVsActualGap() float64 {
	actual := r.Before.Top1 - r.After.Top1
	if actual < 0 {
		actual = 0
	}
	return math.Abs(r.Plan.PredictedLoss - actual)
}

// Encode runs DeepSZ steps 2–4 on a pruned, mask-retrained network:
// assessment (Algorithm 1), error-bound optimisation (Algorithm 2), and
// compressed-model generation. The returned Result includes the accuracy of
// the network reconstructed from the emitted model, verified end to end.
func Encode(net *nn.Network, test *dataset.Set, cfg Config) (*Result, error) {
	if err := (&cfg).fill(); err != nil {
		return nil, err
	}
	start := time.Now()
	assessment, err := Assess(net, test, cfg)
	if err != nil {
		return nil, err
	}
	plan, err := Optimize(assessment, cfg)
	if err != nil {
		return nil, err
	}
	model, err := Generate(net, plan, cfg)
	if err != nil {
		return nil, err
	}
	encodeTime := time.Since(start)

	res := &Result{
		Assessment:             assessment,
		Plan:                   plan,
		Model:                  model,
		Before:                 assessment.Baseline,
		EncodeTime:             encodeTime,
		OriginalBytesPerKind:   map[string]int64{},
		CompressedBytesPerKind: map[string]int{},
	}
	for _, cl := range selectLayers(net, cfg.Layers) {
		b := int64(len(cl.Weights())) * 4
		res.OriginalBytes += b
		res.OriginalBytesPerKind[cl.Kind().String()] += b
	}
	for _, la := range assessment.Layers {
		res.CSRBytes += la.Sparse.Bytes()
	}
	res.CompressedBytes = model.TotalBytes()
	for i := range model.Layers {
		l := &model.Layers[i]
		res.CompressedBytesPerKind[l.Kind.String()] += l.CompressedBytes()
	}

	// Verify end to end: reconstruct a clone from the compressed model and
	// measure its accuracy.
	recon := net.Clone()
	if _, err := model.Apply(recon); err != nil {
		return nil, err
	}
	res.After = recon.Evaluate(test, cfg.TestBatch)
	return res, nil
}

// PruneNetwork is a convenience wrapper for step 1: magnitude-prune every
// fc layer of net to the given keep ratios and retrain with masks.
func PruneNetwork(net *nn.Network, train *dataset.Set, ratios map[string]float64,
	defaultRatio float64, retrainEpochs int, lr float32, seed uint64) {
	prune.Network(net, ratios, defaultRatio)
	if retrainEpochs > 0 {
		prune.Retrain(net, train, retrainEpochs, lr, rngFor(seed))
	}
}

func rngFor(seed uint64) *tensor.RNG { return tensor.NewRNG(seed) }
