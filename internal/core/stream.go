package core

import (
	"fmt"

	"repro/internal/lossless"
	"repro/internal/prune"
	"repro/internal/sz"
)

// This file implements layer-granular decoding, the paper's future-work
// direction of using DeepSZ to improve accelerator memory utilisation: a
// memory-constrained consumer keeps the model compressed and materialises
// one fc layer's dense weights at a time (peak extra memory = one layer
// instead of the whole fc suffix).

// LayerNames returns the fc layers stored in the model, in order.
func (m *Model) LayerNames() []string {
	names := make([]string, len(m.Layers))
	for i, l := range m.Layers {
		names[i] = l.Name
	}
	return names
}

// DecodeLayer reconstructs a single fc layer's dense weights and bias
// without touching the other layers.
func (m *Model) DecodeLayer(name string) (*DecodedLayer, error) {
	for _, l := range m.Layers {
		if l.Name != name {
			continue
		}
		comp, err := lossless.ByID(l.IndexID)
		if err != nil {
			return nil, fmt.Errorf("core: layer %s: %w", name, err)
		}
		idx, err := comp.Decompress(l.IndexBlob)
		if err != nil {
			return nil, fmt.Errorf("core: layer %s index: %w", name, err)
		}
		if len(idx) != l.IndexLen {
			return nil, fmt.Errorf("%w: layer %s index length", ErrCorrupt, name)
		}
		data, err := sz.Decompress(l.SZBlob)
		if err != nil {
			return nil, fmt.Errorf("core: layer %s data: %w", name, err)
		}
		if len(data) != len(idx) {
			return nil, fmt.Errorf("%w: layer %s entry count", ErrCorrupt, name)
		}
		dense, err := (&prune.Sparse{N: l.Rows * l.Cols, Data: data, Index: idx}).Decode()
		if err != nil {
			return nil, fmt.Errorf("core: layer %s: %w", name, err)
		}
		return &DecodedLayer{Name: name, Weights: dense, Bias: l.Bias}, nil
	}
	return nil, fmt.Errorf("core: model has no layer %q", name)
}

// StreamDecode invokes fn for each layer in storage order, materialising
// only one layer's dense weights at a time. fn may retain the layer; the
// model never does. Decoding stops at the first error from fn.
func (m *Model) StreamDecode(fn func(*DecodedLayer) error) error {
	for _, name := range m.LayerNames() {
		dl, err := m.DecodeLayer(name)
		if err != nil {
			return err
		}
		if err := fn(dl); err != nil {
			return err
		}
	}
	return nil
}
