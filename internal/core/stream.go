package core

import (
	"fmt"
	"os"
)

// This file implements layer-granular decoding, the paper's future-work
// direction of using DeepSZ to improve accelerator memory utilisation: a
// memory-constrained consumer keeps the model compressed and materialises
// one layer's dense weights at a time (peak extra memory = one layer
// instead of the whole compressed suffix).
//
// Concurrency contract: a *Model is immutable once produced by Generate,
// Unmarshal, or ReadModel. Every read-side method (LayerNames, Layer,
// DenseBytes, DecodeLayer, Decode, Marshal, TotalBytes) only reads the
// blobs and the name index and allocates fresh output buffers, so any
// number of goroutines may call them on a shared *Model simultaneously.
// This is what the serve package's decode cache relies on.

// ReadModel loads and parses a compressed model file written by WriteModel
// (or by `deepsz encode`).
func ReadModel(path string) (*Model, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Unmarshal(blob)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	return m, nil
}

// WriteModel serializes the model to path.
func (m *Model) WriteModel(path string) error {
	return os.WriteFile(path, m.Marshal(), 0o644)
}

// Layer returns the stored blob for the named layer, or nil. O(1) via the
// name index on models built by Generate/Unmarshal — this sits on the serve
// decode cache's per-request path.
func (m *Model) Layer(name string) *LayerBlob {
	if m.index != nil {
		if i, ok := m.index[name]; ok {
			return &m.Layers[i]
		}
		return nil
	}
	for i := range m.Layers {
		if m.Layers[i].Name == name {
			return &m.Layers[i]
		}
	}
	return nil
}

// LayerIndex returns the storage position of the named layer. O(1) via
// the name index on models built by Generate/Unmarshal.
func (m *Model) LayerIndex(name string) (int, bool) {
	if m.index != nil {
		i, ok := m.index[name]
		return i, ok
	}
	for i := range m.Layers {
		if m.Layers[i].Name == name {
			return i, true
		}
	}
	return 0, false
}

// DenseBytes returns the memory cost of the named layer once materialised:
// the dense weight tensor plus bias, in bytes. It is the unit the serve
// package's cache budget is accounted in. Returns 0 for unknown layers.
func (m *Model) DenseBytes(name string) int64 {
	l := m.Layer(name)
	if l == nil {
		return 0
	}
	return l.DenseBytes()
}

// TotalDenseBytes returns the summed DenseBytes of every layer: the
// memory a full decode materialises.
func (m *Model) TotalDenseBytes() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.DenseBytes()
	}
	return n
}

// MaxDenseBytes returns the largest DenseBytes over all layers — the
// minimum cache budget that can hold every layer one at a time.
func (m *Model) MaxDenseBytes() int64 {
	var max int64
	for _, l := range m.Layers {
		if b := l.DenseBytes(); b > max {
			max = b
		}
	}
	return max
}

// EstimatedDecodeCostNs returns a rough a-priori estimate of the wall
// time a DecodeLayer of this layer costs, in nanoseconds, computable
// without decoding anything. The model is the decode pipeline's own
// shape: lossless index decompression and lossy data decompression scale
// with the stored blobs, sparse-to-dense reconstruction scales with the
// dense weight count. The constants are order-of-magnitude (a few ns per
// compressed byte, ~1 ns per dense slot) — callers that can measure
// (the serve decode cache times every real decode) should prefer the
// measurement and use this only to rank layers before their first
// decode, e.g. to prefetch the most stall-masking layer first.
func (l *LayerBlob) EstimatedDecodeCostNs() int64 {
	const (
		nsPerCompressedByte = 4
		nsPerDenseSlot      = 1
	)
	compressed := int64(len(l.DataBlob) + len(l.IndexBlob))
	return nsPerCompressedByte*compressed + nsPerDenseSlot*int64(l.WeightCount())
}

// LayerNames returns the layers stored in the model, in order.
func (m *Model) LayerNames() []string {
	names := make([]string, len(m.Layers))
	for i, l := range m.Layers {
		names[i] = l.Name
	}
	return names
}

// DecodeLayer reconstructs a single layer's dense weights and bias without
// touching the other layers. The returned layer shares nothing with the
// model (the bias is copied), so callers may mutate or retain it freely
// while other goroutines keep decoding from the same *Model.
func (m *Model) DecodeLayer(name string) (*DecodedLayer, error) {
	l := m.Layer(name)
	if l == nil {
		return nil, fmt.Errorf("core: model has no layer %q", name)
	}
	dl, _, err := decodeLayerBlob(l)
	if err != nil {
		return nil, err
	}
	return &dl, nil
}

// StreamDecode invokes fn for each layer in storage order, materialising
// only one layer's dense weights at a time. fn may retain the layer; the
// model never does. Decoding stops at the first error from fn.
func (m *Model) StreamDecode(fn func(*DecodedLayer) error) error {
	for i := range m.Layers {
		dl, _, err := decodeLayerBlob(&m.Layers[i])
		if err != nil {
			return err
		}
		if err := fn(&dl); err != nil {
			return err
		}
	}
	return nil
}
