package core

import "repro/internal/tensor"

// This file carries the sparse-residency side of the serving fast path: a
// decoded layer whose density is low enough can live in the decode cache
// as CSR (~40 bits per nonzero) instead of dense float32 (~32 bits per
// slot), so a byte budget holds more layers while each hit's matmul runs
// over the nonzeros only. The conversion is lossless and the sparse
// kernels are bit-identical to the dense ones, so format is purely a
// residency decision.

// matDims returns the 2-D matrix view of the layer's weight shape: rows =
// Shape[0], cols = the product of the remaining dimensions ([out, in] for
// fc; [outC, inC·k·k] for conv — the im2col layout).
func (dl *DecodedLayer) matDims() (rows, cols int) {
	if len(dl.Shape) == 0 {
		return 0, 0
	}
	rows, cols = dl.Shape[0], 1
	for _, d := range dl.Shape[1:] {
		cols *= d
	}
	return rows, cols
}

// Density returns the fraction of nonzero weights, for either form.
func (dl *DecodedLayer) Density() float64 {
	if dl.Sparse != nil {
		return dl.Sparse.Density()
	}
	if len(dl.Weights) == 0 {
		return 0
	}
	nnz := 0
	for _, v := range dl.Weights {
		if v != 0 {
			nnz++
		}
	}
	return float64(nnz) / float64(len(dl.Weights))
}

// ResidentBytes returns the layer's in-memory cost in its current form:
// the CSR arrays or the dense tensor, plus the bias. This is the unit the
// serve decode cache charges against its budget (DenseBytes reports the
// cost of the dense form regardless of residency).
func (dl *DecodedLayer) ResidentBytes() int64 {
	if dl.Sparse != nil {
		return dl.Sparse.Bytes() + 4*int64(len(dl.Bias))
	}
	return 4 * int64(len(dl.Weights)+len(dl.Bias))
}

// Compact converts the layer to CSR in place when its density is below
// threshold (and it is still dense, with a matrix-shaped weight tensor).
// threshold <= 0 disables conversion. Returns true when the layer is in
// CSR form afterwards.
func (dl *DecodedLayer) Compact(threshold float64) bool {
	if dl.Sparse != nil {
		return true
	}
	if threshold <= 0 || len(dl.Shape) < 2 || len(dl.Weights) == 0 {
		return false
	}
	if dl.Density() >= threshold {
		return false
	}
	rows, cols := dl.matDims()
	dl.Sparse = tensor.CSRFromDense(dl.Weights, rows, cols)
	dl.Weights = nil
	return true
}

// DenseWeights returns the flat dense weight tensor, materialising it
// from the CSR form when necessary (the stored form is not modified).
func (dl *DecodedLayer) DenseWeights() []float32 {
	if dl.Sparse != nil {
		return dl.Sparse.Dense()
	}
	return dl.Weights
}

// EstimatedDensity returns an upper bound on the layer's nonzero fraction
// computable without decoding: stored sparse entries (which include gap
// padding) over dense slots. Exact density becomes known once the layer
// is decoded.
func (l *LayerBlob) EstimatedDensity() float64 {
	n := l.WeightCount()
	if n == 0 {
		return 0
	}
	d := float64(l.IndexLen) / float64(n)
	if d > 1 {
		d = 1
	}
	return d
}
