package core

import (
	"errors"
	"testing"

	"repro/internal/nn"
)

// Handcrafted-assessment edge cases for Algorithm 2. The optimiser must
// fail with a typed error — never a zero-value plan — whenever the
// constraint set is empty, and still solve trivially small instances.

func layerWith(name string, idxBytes int, points ...Point) *LayerAssessment {
	return &LayerAssessment{Layer: name, Kind: nn.KindDense, Shape: []int{10, 10}, IndexBytes: idxBytes, Points: points}
}

func TestOptimizeExpectedAccuracyEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		layers  []*LayerAssessment
		epsStar float64
		wantErr error // nil means the plan must succeed
		wantLen int
	}{
		{
			name:    "no layers",
			layers:  nil,
			epsStar: 0.01,
			wantErr: ErrNoLayers,
		},
		{
			name: "zero feasible points",
			layers: []*LayerAssessment{
				layerWith("fc1", 100), // assessed but no points at all
			},
			epsStar: 0.01,
			wantErr: ErrInfeasible,
		},
		{
			name: "single layer single point",
			layers: []*LayerAssessment{
				layerWith("fc1", 100, Point{EB: 1e-3, Degradation: 0.001, DataBytes: 400}),
			},
			epsStar: 0.01,
			wantLen: 1,
		},
		{
			name: "epsStar smaller than every degradation",
			layers: []*LayerAssessment{
				layerWith("fc1", 100,
					Point{EB: 1e-3, Degradation: 0.02, DataBytes: 400},
					Point{EB: 1e-2, Degradation: 0.05, DataBytes: 200}),
				layerWith("fc2", 50,
					Point{EB: 1e-3, Degradation: 0.03, DataBytes: 300}),
			},
			epsStar: 0.01,
			wantErr: ErrInfeasible,
		},
		{
			name: "combined budget exceeded even though layers are individually feasible",
			layers: []*LayerAssessment{
				layerWith("fc1", 100, Point{EB: 1e-3, Degradation: 0.008, DataBytes: 400}),
				layerWith("fc2", 50, Point{EB: 1e-3, Degradation: 0.008, DataBytes: 300}),
			},
			epsStar: 0.01,
			wantErr: ErrInfeasible,
		},
		{
			name: "two layers pick cheapest feasible mix",
			layers: []*LayerAssessment{
				layerWith("fc1", 100,
					Point{EB: 1e-3, Degradation: 0.001, DataBytes: 400},
					Point{EB: 1e-2, Degradation: 0.004, DataBytes: 200}),
				layerWith("fc2", 50,
					Point{EB: 1e-3, Degradation: 0.001, DataBytes: 300},
					Point{EB: 1e-2, Degradation: 0.02, DataBytes: 100}),
			},
			epsStar: 0.01,
			wantLen: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := &Assessment{Layers: tc.layers}
			plan, err := OptimizeExpectedAccuracy(a, tc.epsStar)
			if tc.wantErr != nil {
				if err == nil {
					t.Fatalf("expected %v, got plan %+v", tc.wantErr, plan)
				}
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("error %v is not %v", err, tc.wantErr)
				}
				if plan != nil {
					t.Fatal("error must not come with a plan")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(plan.Choices) != tc.wantLen {
				t.Fatalf("plan has %d choices, want %d", len(plan.Choices), tc.wantLen)
			}
			if plan.PredictedLoss > tc.epsStar {
				t.Fatalf("predicted loss %v exceeds budget %v", plan.PredictedLoss, tc.epsStar)
			}
		})
	}

	if _, err := OptimizeExpectedAccuracy(&Assessment{}, 0); err == nil {
		t.Fatal("expected error for non-positive epsStar")
	}
}

func TestOptimizeExpectedRatioEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		layers  []*LayerAssessment
		target  int
		wantErr error
		wantLen int
	}{
		{
			name:    "no layers",
			layers:  nil,
			target:  1000,
			wantErr: ErrNoLayers,
		},
		{
			name: "target below index arrays",
			layers: []*LayerAssessment{
				layerWith("fc1", 500, Point{EB: 1e-3, Degradation: 0.001, DataBytes: 400}),
			},
			target:  400, // < 500 bytes of mandatory index storage
			wantErr: ErrInfeasible,
		},
		{
			name: "target below minimum achievable size",
			layers: []*LayerAssessment{
				layerWith("fc1", 100,
					Point{EB: 1e-3, Degradation: 0.001, DataBytes: 4000},
					Point{EB: 1e-2, Degradation: 0.01, DataBytes: 2000}),
			},
			target:  150, // data budget of 50 < smallest point (2000)
			wantErr: ErrInfeasible,
		},
		{
			name: "layer with no points",
			layers: []*LayerAssessment{
				layerWith("fc1", 100),
			},
			target:  10000,
			wantErr: ErrInfeasible,
		},
		{
			name: "single layer fits",
			layers: []*LayerAssessment{
				layerWith("fc1", 100,
					Point{EB: 1e-3, Degradation: 0.001, DataBytes: 4000},
					Point{EB: 1e-2, Degradation: 0.01, DataBytes: 2000}),
			},
			target:  2200,
			wantLen: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := &Assessment{Layers: tc.layers}
			plan, err := OptimizeExpectedRatio(a, tc.target)
			if tc.wantErr != nil {
				if err == nil {
					t.Fatalf("expected %v, got plan %+v", tc.wantErr, plan)
				}
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("error %v is not %v", err, tc.wantErr)
				}
				if plan != nil {
					t.Fatal("error must not come with a plan")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(plan.Choices) != tc.wantLen {
				t.Fatalf("plan has %d choices, want %d", len(plan.Choices), tc.wantLen)
			}
			if plan.TotalBytes > tc.target {
				t.Fatalf("plan size %d exceeds target %d", plan.TotalBytes, tc.target)
			}
		})
	}
}
