package core

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// marshalV1 replicates the version-1 stream layout (fixed Rows×Cols, no
// per-layer codec byte) so the reader's back-compat path can be exercised
// without keeping old writer code alive. Only valid for all-SZ fc models,
// which is the only thing a v1 writer could produce.
func marshalV1(t *testing.T, m *Model) []byte {
	t.Helper()
	out := make([]byte, 0, 64+m.TotalBytes())
	out = binary.LittleEndian.AppendUint32(out, modelMagic)
	out = append(out, modelVersion1)
	out = appendString(out, m.NetName)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Layers)))
	for _, l := range m.Layers {
		if l.Codec != codec.IDSZ {
			t.Fatalf("layer %s uses codec %d; v1 streams can only carry SZ", l.Name, l.Codec)
		}
		out = appendV1V2Header(t, out, &l)
		out = appendBytes(out, l.DataBlob)
		out = append(out, byte(l.IndexID))
		out = appendBytes(out, l.IndexBlob)
		out = binary.LittleEndian.AppendUint32(out, uint32(l.IndexLen))
	}
	return out
}

// marshalV2 replicates the version-2 layout (fixed Rows×Cols plus a
// per-layer codec byte) — the writer this repo shipped before the v3
// layer-kind/shape header.
func marshalV2(t *testing.T, m *Model) []byte {
	t.Helper()
	out := make([]byte, 0, 64+m.TotalBytes())
	out = binary.LittleEndian.AppendUint32(out, modelMagic)
	out = append(out, modelVersion2)
	out = appendString(out, m.NetName)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Layers)))
	for _, l := range m.Layers {
		out = appendV1V2Header(t, out, &l)
		out = append(out, byte(l.Codec))
		out = appendBytes(out, l.DataBlob)
		out = append(out, byte(l.IndexID))
		out = appendBytes(out, l.IndexBlob)
		out = binary.LittleEndian.AppendUint32(out, uint32(l.IndexLen))
	}
	return out
}

// marshalV3 replicates the version-3 layout (layer-kind/shape header, no
// checksums) — the writer this repo shipped before the v4 integrity
// fields.
func marshalV3(t *testing.T, m *Model) []byte {
	t.Helper()
	out := make([]byte, 0, 64+m.TotalBytes())
	out = binary.LittleEndian.AppendUint32(out, modelMagic)
	out = append(out, modelVersion3)
	out = appendString(out, m.NetName)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Layers)))
	for _, l := range m.Layers {
		out = appendString(out, l.Name)
		out = append(out, byte(l.Kind))
		out = append(out, byte(len(l.Shape)))
		for _, d := range l.Shape {
			out = binary.LittleEndian.AppendUint32(out, uint32(d))
		}
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(l.EB))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(l.Bias)))
		for _, b := range l.Bias {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(b))
		}
		out = append(out, byte(l.Codec))
		out = appendBytes(out, l.DataBlob)
		out = append(out, byte(l.IndexID))
		out = appendBytes(out, l.IndexBlob)
		out = binary.LittleEndian.AppendUint32(out, uint32(l.IndexLen))
	}
	return out
}

// appendV1V2Header writes the shared v1/v2 per-layer prefix: name, the
// fixed Rows×Cols pair (the pre-v3 layouts cannot carry any other shape),
// error bound, and biases.
func appendV1V2Header(t *testing.T, out []byte, l *LayerBlob) []byte {
	t.Helper()
	if l.Kind != nn.KindDense || len(l.Shape) != 2 {
		t.Fatalf("layer %s is %s %v; pre-v3 streams can only carry 2-D fc layers", l.Name, l.Kind, l.Shape)
	}
	out = appendString(out, l.Name)
	out = binary.LittleEndian.AppendUint32(out, uint32(l.Shape[0]))
	out = binary.LittleEndian.AppendUint32(out, uint32(l.Shape[1]))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(l.EB))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(l.Bias)))
	for _, b := range l.Bias {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(b))
	}
	return out
}

// goldenNet builds the tiny deterministic network behind the checked-in
// fixtures. Everything downstream (prune masks, SZ blobs, lossless choice)
// is a pure function of this seed.
func goldenNet() *nn.Network {
	rng := tensor.NewRNG(2019) // HPDC'19
	net := nn.NewNetwork("golden-tiny",
		nn.NewFlatten("flat"),
		nn.NewDense("fc1", 48, 24, rng),
		nn.NewReLU("relu"),
		nn.NewDense("fc2", 24, 8, rng),
	)
	prune.Network(net, map[string]float64{"fc1": 0.15, "fc2": 0.3}, 0.15)
	return net
}

func goldenModel(t *testing.T) *Model {
	t.Helper()
	net := goldenNet()
	m, err := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const (
	goldenV1Path = "testdata/golden_v1.dsz"
	goldenV2Path = "testdata/golden_v2.dsz"
	goldenV3Path = "testdata/golden_v3.dsz"
	goldenV4Path = "testdata/golden_v4.dsz"
)

// goldenModelV4 is goldenModel with decoded checksums on every layer —
// the configuration the v4 byte-identity fixture locks, so both flag
// states of the v4 layout are pinned (golden tests cover flag=1, fresh
// simplePlan models cover flag=0).
func goldenModelV4(t *testing.T) *Model {
	t.Helper()
	net := goldenNet()
	m, err := Generate(net, simplePlan(net, 1e-2),
		Config{ExpectedAccuracyLoss: 0.01, DecodedChecksums: ChecksumAll})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestWriteGoldenFixtures regenerates the checked-in fixtures. It only
// runs when WRITE_GOLDEN is set — e.g. after an intentional SZ or
// container change — and must be followed by committing the new files.
func TestWriteGoldenFixtures(t *testing.T) {
	if os.Getenv("WRITE_GOLDEN") == "" {
		t.Skip("set WRITE_GOLDEN=1 to regenerate the testdata/golden_v*.dsz fixtures")
	}
	m := goldenModel(t)
	for _, f := range []struct {
		path string
		blob []byte
	}{
		{goldenV1Path, marshalV1(t, m)},
		{goldenV2Path, marshalV2(t, m)},
		{goldenV3Path, marshalV3(t, m)},
		{goldenV4Path, goldenModelV4(t).Marshal()},
	} {
		if err := os.MkdirAll(filepath.Dir(f.path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(f.path, f.blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(f.blob), f.path)
	}
}

// goldenRoundTrip is the format back-compat lock shared by the v1 and v2
// fixtures: a `.dsz` file written by an old writer must decode through
// today's reader to exactly the layers a freshly encoded model produces.
func goldenRoundTrip(t *testing.T, path string, wantVersion byte) {
	old, err := ReadModel(path)
	if err != nil {
		t.Fatalf("reading fixture (regenerate with WRITE_GOLDEN=1 if the format changed intentionally): %v", err)
	}
	fresh := goldenModel(t)

	// Old streams predate the layer-kind byte; the reader must fill in fc,
	// and (for v1) the SZ codec.
	for _, l := range old.Layers {
		if l.Codec != codec.IDSZ {
			t.Fatalf("layer %s decoded with codec %d, want SZ", l.Name, l.Codec)
		}
		if l.Kind != nn.KindDense || len(l.Shape) != 2 {
			t.Fatalf("layer %s decoded as %s %v, want 2-D fc", l.Name, l.Kind, l.Shape)
		}
	}
	// A fresh marshal is version 4 and the fixture keeps its own version.
	if got := fresh.Marshal()[4]; got != modelVersion4 {
		t.Fatalf("fresh model marshals as version %d", got)
	}
	fixture, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fixture[4] != wantVersion {
		t.Fatalf("fixture is version %d, want %d", fixture[4], wantVersion)
	}

	oldLayers, _, err := old.Decode()
	if err != nil {
		t.Fatal(err)
	}
	freshLayers, _, err := fresh.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(oldLayers) != len(freshLayers) {
		t.Fatalf("fixture decodes %d layers, fresh model %d", len(oldLayers), len(freshLayers))
	}
	for i := range oldLayers {
		a, b := oldLayers[i], freshLayers[i]
		if a.Name != b.Name || len(a.Weights) != len(b.Weights) || len(a.Bias) != len(b.Bias) {
			t.Fatalf("layer %d shape mismatch: %q/%d/%d vs %q/%d/%d",
				i, a.Name, len(a.Weights), len(a.Bias), b.Name, len(b.Weights), len(b.Bias))
		}
		for j := range a.Weights {
			if a.Weights[j] != b.Weights[j] {
				t.Fatalf("layer %s weight %d: fixture %v, fresh %v", a.Name, j, a.Weights[j], b.Weights[j])
			}
		}
		for j := range a.Bias {
			if a.Bias[j] != b.Bias[j] {
				t.Fatalf("layer %s bias %d differs", a.Name, j)
			}
		}
	}
}

// TestGoldenV1RoundTrip locks the version-1 layout (pre codec registry).
func TestGoldenV1RoundTrip(t *testing.T) { goldenRoundTrip(t, goldenV1Path, modelVersion1) }

// TestGoldenV2RoundTrip locks the version-2 layout (per-layer codec byte,
// pre layer-kind/shape header), so the v3 bump cannot silently break v2
// readers.
func TestGoldenV2RoundTrip(t *testing.T) { goldenRoundTrip(t, goldenV2Path, modelVersion2) }

// TestGoldenV3RoundTrip locks the version-3 layout (layer-kind/shape
// header, pre integrity fields), so the v4 bump cannot silently break v3
// readers.
func TestGoldenV3RoundTrip(t *testing.T) { goldenRoundTrip(t, goldenV3Path, modelVersion3) }

// TestGoldenV4RoundTrip locks the version-4 layout bidirectionally: the
// fixture must decode to exactly what a fresh encode produces, and a
// fresh encode must reproduce the fixture byte for byte — pinning the
// digest, per-blob CRCs, flags byte, and decoded checksums in place.
func TestGoldenV4RoundTrip(t *testing.T) {
	goldenRoundTrip(t, goldenV4Path, modelVersion4)

	fixture, err := os.ReadFile(goldenV4Path)
	if err != nil {
		t.Fatal(err)
	}
	fresh := goldenModelV4(t).Marshal()
	if len(fixture) != len(fresh) {
		t.Fatalf("fixture is %d bytes, fresh v4 marshal %d (regenerate with WRITE_GOLDEN=1 if intentional)", len(fixture), len(fresh))
	}
	for i := range fixture {
		if fixture[i] != fresh[i] {
			t.Fatalf("fixture and fresh v4 marshal differ at byte %d (regenerate with WRITE_GOLDEN=1 if intentional)", i)
		}
	}
	// The fixture's layers must all carry decoded checksums, and the
	// v3→v4 upgrade path must verify them (checksums reference the real
	// decompressor output, not pre-compression values).
	m, err := Unmarshal(fixture)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Layers {
		if !m.Layers[i].Checksummed || !m.Layers[i].HasDecodedCRC {
			t.Fatalf("layer %s missing integrity fields", m.Layers[i].Name)
		}
	}
	if _, _, err := m.Decode(); err != nil {
		t.Fatalf("verified decode of golden v4: %v", err)
	}
}

// TestV4SizeOverhead bounds the integrity tax on a bench-scale model:
// v4 with decoded checksums on every layer must cost at most 1 % over
// the same model's v3 bytes. (The overhead is a fixed 13 bytes per layer
// plus a 4-byte header digest, so it only shrinks as models grow.)
func TestV4SizeOverhead(t *testing.T) {
	net := prunedMLP(7)
	m, err := Generate(net, simplePlan(net, 1e-2),
		Config{ExpectedAccuracyLoss: 0.01, DecodedChecksums: ChecksumAll})
	if err != nil {
		t.Fatal(err)
	}
	v3 := len(marshalV3(t, m))
	v4 := len(m.Marshal())
	if v4 > v3+v3/100 {
		t.Fatalf("v4 stream is %d bytes vs %d for v3 — over the 1%% integrity budget", v4, v3)
	}
	t.Logf("v3 %d bytes, v4 %d bytes (+%.2f%%)", v3, v4, 100*float64(v4-v3)/float64(v3))
}

// unmarshalCompat covers an old read path without touching the fixtures,
// so it keeps working even mid-regeneration.
func unmarshalCompat(t *testing.T, blob []byte, m *Model) {
	t.Helper()
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.NetName != m.NetName || len(got.Layers) != len(m.Layers) {
		t.Fatal("old-version header mismatch")
	}
	for i := range m.Layers {
		a, b := m.Layers[i], got.Layers[i]
		if a.Name != b.Name || a.EB != b.EB ||
			a.IndexID != b.IndexID || a.IndexLen != b.IndexLen {
			t.Fatalf("layer %d metadata mismatch", i)
		}
		if b.Kind != nn.KindDense || len(b.Shape) != 2 ||
			b.Shape[0] != a.Shape[0] || b.Shape[1] != a.Shape[1] {
			t.Fatalf("layer %d: old read produced %s %v, want fc %v", i, b.Kind, b.Shape, a.Shape)
		}
	}
	// And the re-marshal upgrades to v4 losslessly, growing fresh blob
	// CRCs on the way (old streams carry none).
	up, err := Unmarshal(got.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if up.Layers[0].Codec != m.Layers[0].Codec {
		t.Fatal("upgrade lost the codec id")
	}
	if up.Layers[0].Kind != nn.KindDense {
		t.Fatal("upgrade lost the layer kind")
	}
	for i := range up.Layers {
		if !up.Layers[i].Checksummed {
			t.Fatalf("layer %d: upgrade did not add blob CRCs", i)
		}
	}
	if _, _, err := up.Decode(); err != nil {
		t.Fatalf("verified decode after upgrade: %v", err)
	}
}

func TestV1UnmarshalCompat(t *testing.T) {
	m := goldenModel(t)
	unmarshalCompat(t, marshalV1(t, m), m)
	got, err := Unmarshal(marshalV1(t, m))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Layers {
		if got.Layers[i].Codec != codec.IDSZ {
			t.Fatalf("layer %d: v1 read produced codec %d", i, got.Layers[i].Codec)
		}
	}
}

func TestV2UnmarshalCompat(t *testing.T) {
	m := goldenModel(t)
	unmarshalCompat(t, marshalV2(t, m), m)
}

func TestV3UnmarshalCompat(t *testing.T) {
	m := goldenModel(t)
	unmarshalCompat(t, marshalV3(t, m), m)
}
