package core

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// marshalV1 replicates the version-1 stream layout (no per-layer codec
// byte) so the reader's back-compat path can be exercised without keeping
// old writer code alive. Only valid for all-SZ models, which is the only
// thing a v1 writer could produce.
func marshalV1(t *testing.T, m *Model) []byte {
	t.Helper()
	out := make([]byte, 0, 64+m.TotalBytes())
	out = binary.LittleEndian.AppendUint32(out, modelMagic)
	out = append(out, modelVersion1)
	out = appendString(out, m.NetName)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Layers)))
	for _, l := range m.Layers {
		if l.Codec != codec.IDSZ {
			t.Fatalf("layer %s uses codec %d; v1 streams can only carry SZ", l.Name, l.Codec)
		}
		out = appendString(out, l.Name)
		out = binary.LittleEndian.AppendUint32(out, uint32(l.Rows))
		out = binary.LittleEndian.AppendUint32(out, uint32(l.Cols))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(l.EB))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(l.Bias)))
		for _, b := range l.Bias {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(b))
		}
		out = appendBytes(out, l.DataBlob)
		out = append(out, byte(l.IndexID))
		out = appendBytes(out, l.IndexBlob)
		out = binary.LittleEndian.AppendUint32(out, uint32(l.IndexLen))
	}
	return out
}

// goldenNet builds the tiny deterministic network behind the checked-in v1
// fixture. Everything downstream (prune masks, SZ blobs, lossless choice)
// is a pure function of this seed.
func goldenNet() *nn.Network {
	rng := tensor.NewRNG(2019) // HPDC'19
	net := nn.NewNetwork("golden-tiny",
		nn.NewFlatten("flat"),
		nn.NewDense("fc1", 48, 24, rng),
		nn.NewReLU("relu"),
		nn.NewDense("fc2", 24, 8, rng),
	)
	prune.Network(net, map[string]float64{"fc1": 0.15, "fc2": 0.3}, 0.15)
	return net
}

func goldenModel(t *testing.T) *Model {
	t.Helper()
	net := goldenNet()
	m, err := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const goldenV1Path = "testdata/golden_v1.dsz"

// TestWriteGoldenV1Fixture regenerates the checked-in fixture. It only
// runs when WRITE_GOLDEN is set — e.g. after an intentional SZ or
// container change — and must be followed by committing the new file.
func TestWriteGoldenV1Fixture(t *testing.T) {
	if os.Getenv("WRITE_GOLDEN") == "" {
		t.Skip("set WRITE_GOLDEN=1 to regenerate " + goldenV1Path)
	}
	blob := marshalV1(t, goldenModel(t))
	if err := os.MkdirAll(filepath.Dir(goldenV1Path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenV1Path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d bytes to %s", len(blob), goldenV1Path)
}

// TestGoldenV1RoundTrip is the format back-compat lock: a `.dsz` file
// written by the version-1 writer (before the codec registry existed) must
// decode through today's reader to exactly the layers a freshly encoded
// version-2 model produces.
func TestGoldenV1RoundTrip(t *testing.T) {
	old, err := ReadModel(goldenV1Path)
	if err != nil {
		t.Fatalf("reading fixture (regenerate with WRITE_GOLDEN=1 if the format changed intentionally): %v", err)
	}
	fresh := goldenModel(t)

	// The fixture predates the codec byte; the reader must fill in SZ.
	for _, l := range old.Layers {
		if l.Codec != codec.IDSZ {
			t.Fatalf("v1 layer %s decoded with codec %d, want SZ", l.Name, l.Codec)
		}
	}
	// A fresh marshal is version 2 and the fixture version 1.
	if got := fresh.Marshal()[4]; got != modelVersion2 {
		t.Fatalf("fresh model marshals as version %d", got)
	}
	fixture, err := os.ReadFile(goldenV1Path)
	if err != nil {
		t.Fatal(err)
	}
	if fixture[4] != modelVersion1 {
		t.Fatalf("fixture is version %d, want 1", fixture[4])
	}

	oldLayers, _, err := old.Decode()
	if err != nil {
		t.Fatal(err)
	}
	freshLayers, _, err := fresh.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(oldLayers) != len(freshLayers) {
		t.Fatalf("fixture decodes %d layers, fresh model %d", len(oldLayers), len(freshLayers))
	}
	for i := range oldLayers {
		a, b := oldLayers[i], freshLayers[i]
		if a.Name != b.Name || len(a.Weights) != len(b.Weights) || len(a.Bias) != len(b.Bias) {
			t.Fatalf("layer %d shape mismatch: %q/%d/%d vs %q/%d/%d",
				i, a.Name, len(a.Weights), len(a.Bias), b.Name, len(b.Weights), len(b.Bias))
		}
		for j := range a.Weights {
			if a.Weights[j] != b.Weights[j] {
				t.Fatalf("layer %s weight %d: fixture %v, fresh %v", a.Name, j, a.Weights[j], b.Weights[j])
			}
		}
		for j := range a.Bias {
			if a.Bias[j] != b.Bias[j] {
				t.Fatalf("layer %s bias %d differs", a.Name, j)
			}
		}
	}
}

// TestV1UnmarshalCompat covers the v1 read path without touching the
// fixture, so it keeps working even mid-regeneration.
func TestV1UnmarshalCompat(t *testing.T) {
	m := goldenModel(t)
	got, err := Unmarshal(marshalV1(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if got.NetName != m.NetName || len(got.Layers) != len(m.Layers) {
		t.Fatal("v1 header mismatch")
	}
	for i := range m.Layers {
		a, b := m.Layers[i], got.Layers[i]
		if a.Name != b.Name || a.Rows != b.Rows || a.Cols != b.Cols || a.EB != b.EB ||
			a.IndexID != b.IndexID || a.IndexLen != b.IndexLen {
			t.Fatalf("layer %d metadata mismatch", i)
		}
		if b.Codec != codec.IDSZ {
			t.Fatalf("layer %d: v1 read produced codec %d", i, b.Codec)
		}
	}
	// And the re-marshal upgrades to v2 losslessly.
	up, err := Unmarshal(got.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if up.Layers[0].Codec != codec.IDSZ {
		t.Fatal("upgrade lost the codec id")
	}
}
