package core

import (
	"path/filepath"
	"sync"
	"testing"
)

// TestDecodeLayerConcurrent hammers a shared *Model with goroutines that
// decode every layer simultaneously, verifying the concurrency contract
// stated in stream.go: reads allocate fresh buffers and never mutate the
// model. Run with -race (CI does) to make the guarantee meaningful.
func TestDecodeLayerConcurrent(t *testing.T) {
	net := prunedMLP(31)
	m, err := Generate(net, simplePlan(net, 1e-3), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := m.Decode()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DecodedLayer{}
	for _, dl := range want {
		byName[dl.Name] = dl
	}

	const goroutines = 16
	const rounds = 8
	names := m.LayerNames()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := names[(g+r)%len(names)]
				dl, err := m.DecodeLayer(name)
				if err != nil {
					errs <- err
					return
				}
				ref := byName[name]
				for i := range ref.Weights {
					if dl.Weights[i] != ref.Weights[i] {
						t.Errorf("%s: concurrent decode diverged at weight %d", name, i)
						return
					}
				}
				// Scribble on the returned layer: it must not alias model
				// state seen by other decoders.
				for i := range dl.Bias {
					dl.Bias[i] = -1
				}
				for i := range dl.Weights {
					dl.Weights[i] = -1
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The model is untouched: a final decode still matches the reference.
	for name, ref := range byName {
		dl, err := m.DecodeLayer(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Bias {
			if dl.Bias[i] != ref.Bias[i] {
				t.Fatalf("%s: bias mutated through a previously returned layer", name)
			}
		}
	}
}

func TestReadWriteModelRoundTrip(t *testing.T) {
	net := prunedMLP(32)
	m, err := Generate(net, simplePlan(net, 1e-3), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.dsz")
	if err := m.WriteModel(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NetName != m.NetName || len(got.Layers) != len(m.Layers) {
		t.Fatalf("round trip: got %s/%d layers, want %s/%d",
			got.NetName, len(got.Layers), m.NetName, len(m.Layers))
	}
	if got.TotalBytes() != m.TotalBytes() {
		t.Fatalf("round trip: %d bytes, want %d", got.TotalBytes(), m.TotalBytes())
	}
	if _, err := ReadModel(filepath.Join(t.TempDir(), "missing.dsz")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestDenseBytes(t *testing.T) {
	net := prunedMLP(33)
	m, err := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.DenseBytes("ip1"), int64(4*(784*64+64)); got != want {
		t.Fatalf("DenseBytes(ip1) = %d, want %d", got, want)
	}
	if got := m.DenseBytes("nope"); got != 0 {
		t.Fatalf("DenseBytes(nope) = %d, want 0", got)
	}
	if got, want := m.MaxDenseBytes(), m.DenseBytes("ip1"); got != want {
		t.Fatalf("MaxDenseBytes = %d, want %d", got, want)
	}
	if m.Layer("ip2") == nil || m.Layer("nope") != nil {
		t.Fatal("Layer lookup broken")
	}
}
