package core

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// fakeAssessment fabricates an Assessment for optimiser unit tests.
func fakeAssessment(layers ...*LayerAssessment) *Assessment {
	return &Assessment{NetName: "fake", Layers: layers}
}

func layer(name string, idxBytes int, points ...Point) *LayerAssessment {
	return &LayerAssessment{Layer: name, Kind: nn.KindDense, Shape: []int{10, 10}, IndexBytes: idxBytes, Points: points}
}

func TestOptimizeSingleLayerPicksLargestFeasible(t *testing.T) {
	a := fakeAssessment(layer("fc", 100,
		Point{EB: 1e-3, Degradation: 0.000, DataBytes: 1000},
		Point{EB: 1e-2, Degradation: 0.002, DataBytes: 500},
		Point{EB: 1e-1, Degradation: 0.050, DataBytes: 100},
	))
	plan, err := OptimizeExpectedAccuracy(a, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Choices[0].EB != 1e-2 {
		t.Fatalf("chose eb %v, want 1e-2", plan.Choices[0].EB)
	}
	if plan.TotalBytes != 600 {
		t.Fatalf("TotalBytes = %d, want 600", plan.TotalBytes)
	}
}

func TestOptimizeSpendsBudgetOnLargestLayer(t *testing.T) {
	// Budget admits degradation in only one layer; the optimiser must spend
	// it where the byte savings are largest (the big layer).
	big := layer("fc6", 0,
		Point{EB: 1e-3, Degradation: 0, DataBytes: 10000},
		Point{EB: 1e-2, Degradation: 0.003, DataBytes: 2000},
	)
	small := layer("fc8", 0,
		Point{EB: 1e-3, Degradation: 0, DataBytes: 500},
		Point{EB: 1e-2, Degradation: 0.003, DataBytes: 300},
	)
	a := fakeAssessment(big, small)
	plan, err := OptimizeExpectedAccuracy(a, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Choices[0].EB != 1e-2 {
		t.Fatal("big layer should get the high bound")
	}
	if plan.Choices[1].EB != 1e-3 {
		t.Fatal("small layer should stay conservative")
	}
	if plan.PredictedLoss > 0.004 {
		t.Fatalf("predicted loss %v exceeds budget", plan.PredictedLoss)
	}
}

func TestOptimizeRespectsBudgetSum(t *testing.T) {
	// Both layers could individually afford Δ=0.003, but together they
	// exceed ϵ*=0.004; only one may take it.
	mk := func(name string) *LayerAssessment {
		return layer(name, 0,
			Point{EB: 1e-3, Degradation: 0, DataBytes: 1000},
			Point{EB: 1e-2, Degradation: 0.003, DataBytes: 400},
		)
	}
	a := fakeAssessment(mk("a"), mk("b"))
	plan, err := OptimizeExpectedAccuracy(a, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PredictedLoss > 0.004+1e-12 {
		t.Fatalf("budget violated: %v", plan.PredictedLoss)
	}
	aggressive := 0
	for _, c := range plan.Choices {
		if c.EB == 1e-2 {
			aggressive++
		}
	}
	if aggressive != 1 {
		t.Fatalf("%d layers took the aggressive bound, want exactly 1", aggressive)
	}
}

func TestOptimizeNegativeDegradationIsFree(t *testing.T) {
	a := fakeAssessment(layer("fc", 0,
		Point{EB: 1e-3, Degradation: -0.001, DataBytes: 900},
		Point{EB: 1e-2, Degradation: -0.0005, DataBytes: 300},
	))
	plan, err := OptimizeExpectedAccuracy(a, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Choices[0].DataBytes != 300 {
		t.Fatal("accuracy-improving options should cost zero budget")
	}
	if plan.PredictedLoss != 0 {
		t.Fatalf("PredictedLoss = %v, want 0", plan.PredictedLoss)
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	a := fakeAssessment(layer("fc", 0,
		Point{EB: 1e-3, Degradation: 0.5, DataBytes: 100},
	))
	if _, err := OptimizeExpectedAccuracy(a, 0.004); err == nil {
		t.Fatal("expected error when no point fits the budget")
	}
	if _, err := OptimizeExpectedAccuracy(fakeAssessment(), 0.004); err == nil {
		t.Fatal("expected error for empty assessment")
	}
	if _, err := OptimizeExpectedAccuracy(a, 0); err == nil {
		t.Fatal("expected error for zero budget")
	}
}

// bruteForce finds the true optimum under the same discretised cost model.
func bruteForce(a *Assessment, epsStar float64) (bestSize int, ok bool) {
	res := epsStar / slots
	cost := func(d float64) int {
		if d <= 0 {
			return 0
		}
		return int(math.Ceil(d / res))
	}
	var rec func(l, used, size int) (int, bool)
	rec = func(l, used, size int) (int, bool) {
		if l == len(a.Layers) {
			return size, true
		}
		best, found := 0, false
		for _, p := range a.Layers[l].Points {
			if p.Degradation > epsStar {
				continue
			}
			nu := used + cost(p.Degradation)
			if nu > slots {
				continue
			}
			if s, k := rec(l+1, nu, size+p.DataBytes); k && (!found || s < best) {
				best, found = s, true
			}
		}
		return best, found
	}
	return rec(0, 0, 0)
}

func TestOptimizeMatchesBruteForceRandom(t *testing.T) {
	rng := tensor.NewRNG(7)
	for trial := 0; trial < 30; trial++ {
		nLayers := 2 + rng.Intn(3)
		var layers []*LayerAssessment
		for l := 0; l < nLayers; l++ {
			nPts := 2 + rng.Intn(5)
			var pts []Point
			size := 5000 + rng.Intn(5000)
			for p := 0; p < nPts; p++ {
				size = size * 2 / 3
				pts = append(pts, Point{
					EB:          math.Pow(10, -3+float64(p)*0.3),
					Degradation: rng.Float64() * 0.01,
					DataBytes:   size,
				})
			}
			layers = append(layers, layer("l", rng.Intn(100), pts...))
		}
		a := fakeAssessment(layers...)
		eps := 0.004 + rng.Float64()*0.01
		plan, err := OptimizeExpectedAccuracy(a, eps)
		want, feasible := bruteForce(a, eps)
		if !feasible {
			if err == nil {
				t.Fatalf("trial %d: DP found a plan where brute force found none", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: DP failed where brute force succeeded: %v", trial, err)
		}
		gotData := 0
		for _, c := range plan.Choices {
			gotData += c.DataBytes
		}
		if gotData != want {
			t.Fatalf("trial %d: DP size %d, brute force %d", trial, gotData, want)
		}
	}
}

func TestOptimizeExpectedRatioMeetsTarget(t *testing.T) {
	a := fakeAssessment(
		layer("fc6", 100,
			Point{EB: 1e-3, Degradation: 0.000, DataBytes: 4000},
			Point{EB: 1e-2, Degradation: 0.004, DataBytes: 1000},
			Point{EB: 3e-2, Degradation: 0.020, DataBytes: 400}),
		layer("fc7", 50,
			Point{EB: 1e-3, Degradation: 0.000, DataBytes: 1000},
			Point{EB: 1e-2, Degradation: 0.002, DataBytes: 300}),
	)
	target := 1900 // forces both layers aggressive (400+300+150)
	plan, err := OptimizeExpectedRatio(a, target)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalBytes > target {
		t.Fatalf("TotalBytes %d exceeds target %d", plan.TotalBytes, target)
	}
	// Among plans meeting the target it must pick the min-degradation one:
	// fc6@3e-2 (0.020) + fc7@1e-2 (0.002) is forced; check it did not pick
	// something worse.
	if plan.PredictedLoss > 0.023 {
		t.Fatalf("PredictedLoss %v too high", plan.PredictedLoss)
	}
}

func TestOptimizeExpectedRatioInfeasible(t *testing.T) {
	a := fakeAssessment(layer("fc", 1000,
		Point{EB: 1e-3, Degradation: 0, DataBytes: 5000}))
	if _, err := OptimizeExpectedRatio(a, 500); err == nil {
		t.Fatal("expected error: target below index size")
	}
	if _, err := OptimizeExpectedRatio(a, 2000); err == nil {
		t.Fatal("expected error: no point fits data budget")
	}
}

func TestOptimizeDispatch(t *testing.T) {
	a := fakeAssessment(layer("fc", 10,
		Point{EB: 1e-3, Degradation: 0, DataBytes: 100}))
	if _, err := Optimize(a, Config{Mode: ExpectedAccuracy, ExpectedAccuracyLoss: 0.01}); err != nil {
		t.Fatal(err)
	}
	// 10×10 weights = 400 original bytes; ratio 2 → 200-byte target, which
	// the 100+10-byte plan meets.
	if _, err := Optimize(a, Config{Mode: ExpectedRatio, TargetRatio: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(a, Config{Mode: ExpectedRatio, TargetRatio: 100}); err == nil {
		t.Fatal("expected error for unreachable ratio")
	}
	if _, err := Optimize(a, Config{Mode: ExpectedRatio, TargetRatio: 0.5}); err == nil {
		t.Fatal("expected error for ratio ≤ 1")
	}
}
