package core

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// trainedPrunedMLP returns a small trained+pruned MLP plus its test set.
// Training is cheap (a few seconds) and cached per test binary run.
func trainedPrunedMLP(t *testing.T) (*nn.Network, *dataset.Set) {
	t.Helper()
	rng := tensor.NewRNG(11)
	net := nn.NewNetwork("assess-mlp",
		nn.NewFlatten("flat"),
		nn.NewDense("ip1", 784, 48, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("ip2", 48, 10, rng),
	)
	train := dataset.SynthMNIST(1000, 30)
	test := dataset.SynthMNIST(400, 31)
	opt := nn.NewSGD(0.1, 0.9, 1e-4)
	nn.Train(net, train, opt, nn.TrainConfig{Epochs: 3, BatchSize: 32}, rng)
	prune.Network(net, map[string]float64{"ip1": 0.15, "ip2": 0.4}, 0.15)
	prune.Retrain(net, train, 1, 0.05, rng)
	return net, test
}

func assessCfg() Config {
	return Config{
		// Test-set resolution is 1/400, so the distortion criterion and
		// budget are scaled up from the paper's 50 k-image values.
		ExpectedAccuracyLoss: 0.02,
		DistortionCriterion:  0.005,
		StartErrorBound:      1e-3,
		MaxErrorBound:        0.2,
		TestBatch:            100,
	}
}

// TestAssessNonErrorBoundedCodecSinglePoint: a codec that ignores the
// error bound (deepcomp) yields the same measurement at every grid point,
// so assessment must collapse each layer's sweep to one test.
func TestAssessNonErrorBoundedCodecSinglePoint(t *testing.T) {
	net := prunedMLP(60)
	test := dataset.SynthMNIST(60, 32)
	cfg := assessCfg()
	cfg.Codec = codec.IDDeepComp
	cfg.TestBatch = 30
	a, err := Assess(net, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Layers) != 2 {
		t.Fatalf("assessed %d layers", len(a.Layers))
	}
	for _, la := range a.Layers {
		if len(la.Points) != 1 {
			t.Fatalf("layer %s has %d points, want 1 (codec ignores the bound)", la.Layer, len(la.Points))
		}
		if la.FeasibleLo != la.Points[0].EB || la.FeasibleHi != la.Points[0].EB {
			t.Fatalf("layer %s feasible range [%v,%v] not collapsed", la.Layer, la.FeasibleLo, la.FeasibleHi)
		}
	}
	if a.Tests != len(a.Layers) {
		t.Fatalf("%d accuracy tests for %d layers, want one each", a.Tests, len(a.Layers))
	}
}

func TestAssessProducesFeasibleRanges(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	net, test := trainedPrunedMLP(t)
	a, err := Assess(net, test, assessCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Layers) != 2 {
		t.Fatalf("assessed %d layers", len(a.Layers))
	}
	if a.Baseline.Top1 < 0.8 {
		t.Fatalf("baseline %.3f too low for a meaningful assessment", a.Baseline.Top1)
	}
	if a.Tests < 4 {
		t.Fatalf("only %d tests performed", a.Tests)
	}
	for _, la := range a.Layers {
		if len(la.Points) < 2 {
			t.Fatalf("%s: only %d points", la.Layer, len(la.Points))
		}
		if la.FeasibleLo <= 0 || la.FeasibleHi < la.FeasibleLo {
			t.Fatalf("%s: bad feasible range [%g, %g]", la.Layer, la.FeasibleLo, la.FeasibleHi)
		}
		if la.IndexBytes <= 0 {
			t.Fatalf("%s: index not compressed", la.Layer)
		}
		// Compressed size must shrink as the bound grows, allowing small
		// wiggle once the coder saturates near 1 bit/weight.
		for i := 1; i < len(la.Points); i++ {
			if float64(la.Points[i].DataBytes) > 1.25*float64(la.Points[i-1].DataBytes) {
				t.Fatalf("%s: size grew with error bound: %+v then %+v",
					la.Layer, la.Points[i-1], la.Points[i])
			}
		}
		first, last := la.Points[0], la.Points[len(la.Points)-1]
		if last.DataBytes >= first.DataBytes {
			t.Fatalf("%s: no overall size reduction across the sweep (%d → %d)",
				la.Layer, first.DataBytes, last.DataBytes)
		}
	}
}

func TestAssessDoesNotMutateNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	net, test := trainedPrunedMLP(t)
	before := append([]float32(nil), net.DenseLayers()[0].Weights()...)
	if _, err := Assess(net, test, assessCfg()); err != nil {
		t.Fatal(err)
	}
	after := net.DenseLayers()[0].Weights()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("assessment mutated the original network")
		}
	}
}

func TestAssessParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	net, test := trainedPrunedMLP(t)
	cfg := assessCfg()
	cfg.Workers = 1
	serial, err := Assess(net, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := Assess(net, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for li := range serial.Layers {
		s, p := serial.Layers[li], parallel.Layers[li]
		if len(s.Points) != len(p.Points) {
			t.Fatalf("%s: %d vs %d points", s.Layer, len(s.Points), len(p.Points))
		}
		for i := range s.Points {
			if s.Points[i] != p.Points[i] {
				t.Fatalf("%s point %d: %+v vs %+v", s.Layer, i, s.Points[i], p.Points[i])
			}
		}
	}
}

func TestAssessNoDenseLayers(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := nn.NewNetwork("convonly", nn.NewConv2D("c", 1, 2, 3, 1, 0, rng))
	test := dataset.SynthMNIST(10, 1)
	if _, err := Assess(net, test, assessCfg()); err == nil {
		t.Fatal("expected error for network without fc layers")
	}
}

func TestEncodeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	net, test := trainedPrunedMLP(t)
	cfg := assessCfg()
	res, err := Encode(net, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() <= res.PruningRatio() {
		t.Fatalf("DeepSZ ratio %.1f should beat pruning-only ratio %.1f",
			res.CompressionRatio(), res.PruningRatio())
	}
	if res.CompressionRatio() < 15 {
		t.Fatalf("compression ratio %.1f too low", res.CompressionRatio())
	}
	// Actual accuracy loss should respect the budget with slack for the
	// linearity approximation (the paper's Figure 6 regime).
	loss := res.Before.Top1 - res.After.Top1
	if loss > cfg.ExpectedAccuracyLoss+0.02 {
		t.Fatalf("actual loss %.4f far exceeds budget %.4f", loss, cfg.ExpectedAccuracyLoss)
	}
	if res.PredictedVsActualGap() > 0.05 {
		t.Fatalf("linearity estimate off by %.4f", res.PredictedVsActualGap())
	}
	if res.BitsPerWeight() <= 0 || res.BitsPerWeight() > 34 {
		t.Fatalf("BitsPerWeight = %v", res.BitsPerWeight())
	}
	if res.EncodeTime <= 0 {
		t.Fatal("EncodeTime not recorded")
	}
}

func TestEncodeExpectedRatioMode(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	net, test := trainedPrunedMLP(t)
	cfg := assessCfg()
	cfg.Mode = ExpectedRatio
	cfg.TargetRatio = 20
	res, err := Encode(net, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() < 20 {
		t.Fatalf("expected-ratio mode achieved %.1f, target 20", res.CompressionRatio())
	}
}
