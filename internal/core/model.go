package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/lossless"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// LayerBlob is one compressed layer of a model: the lossy-compressed data
// array, the losslessly compressed index array, and the raw biases (biases
// are a few hundred bytes; the paper leaves them untouched).
type LayerBlob struct {
	Name string
	// Kind tags the layer family (fc, conv); Shape holds the weight
	// tensor's dimensions — [out, in] for fc, [outC, inC, k, k] for conv.
	// Streams older than version 3 only ever carried fc layers, so their
	// readers fill Kind=KindDense and Shape=[rows, cols].
	Kind  nn.LayerKind
	Shape []int
	EB    float64
	// Codec identifies the lossy back-end that produced DataBlob. Version-1
	// streams predate the field and always carry codec.IDSZ.
	Codec     codec.ID
	Bias      []float32
	DataBlob  []byte
	IndexID   lossless.ID
	IndexBlob []byte
	IndexLen  int // entries in the decompressed index array

	// Integrity (stream version 4). Checksummed marks DataCRC/IndexCRC as
	// valid CRC32C values over the stored blobs — set by Generate and the
	// v4 reader; false on v1–v3 reads and hand-assembled models, whose
	// decodes skip blob verification. DecodedCRC, present only when
	// HasDecodedCRC, covers the decoded dense weights plus bias
	// (DecodedChecksum): criticality-aware protection written for layers
	// whose assessed sensitivity crosses Config.CriticalSensitivity, so
	// decode-path faults are caught on the accuracy-critical layers.
	DataCRC       uint32
	IndexCRC      uint32
	DecodedCRC    uint32
	Checksummed   bool
	HasDecodedCRC bool
}

// Model is the compressed-model container DeepSZ step 4 emits. It is
// immutable after construction and safe for concurrent reads; see the
// concurrency contract in stream.go.
type Model struct {
	NetName string
	Layers  []LayerBlob

	// index maps layer name → Layers position. Built once by Generate and
	// Unmarshal so the serve decode cache's per-request lookups are O(1)
	// instead of a linear scan; read-only afterwards, like the rest of the
	// model. Nil for hand-assembled models, which fall back to scanning.
	index map[string]int
}

const (
	modelMagic = 0x44535A31 // "DSZ1"
	// modelVersion1 streams have no per-layer codec byte: every data blob
	// is SZ-compressed. modelVersion2 adds one codec.ID byte per layer.
	// modelVersion3 replaces the fixed Rows×Cols pair with a layer-kind
	// byte plus an N-dimensional weight shape, admitting conv layers.
	// modelVersion4 adds integrity: a whole-model CRC32C digest in the
	// header (verified at Unmarshal), a flags byte and data/index blob
	// CRCs per layer (verified at decode), and an optional decoded-bytes
	// checksum for accuracy-critical layers. WriteModel/Marshal always
	// emit version 4; Unmarshal reads all four.
	modelVersion1 = 1
	modelVersion2 = 2
	modelVersion3 = 3
	modelVersion4 = 4
)

// layerFlagDecodedCRC marks a v4 layer record as carrying a trailing
// checksum over its decoded dense bytes. The remaining flag bits are
// reserved and must be zero.
const layerFlagDecodedCRC byte = 1 << 0

// maxLayerDense bounds the weight count accepted from serialized headers.
// 2^28 weights (1 GiB dense) is 2.6× the paper's largest fc layer (VGG-16
// fc6, ~103 M weights); forged headers beyond it are rejected before any
// allocation sized by the product.
const maxLayerDense = 1 << 28

// maxModelDense bounds the summed weight count over all layers of one model
// (2^29 weights = 2 GiB dense, 4× the paper's largest fc suffix). Without
// an aggregate cap, a stream of many individually-plausible layers could
// still drive Decode to unbounded total allocation.
const maxModelDense = 1 << 29

// maxShapeDims bounds the dimensionality a version-3 header may claim; the
// deepest real shape is conv's 4.
const maxShapeDims = 8

// ErrCorrupt is returned when a serialized model fails validation.
var ErrCorrupt = errors.New("core: corrupt model")

// WeightCount returns the number of dense weights (the product of Shape).
func (l *LayerBlob) WeightCount() int {
	n := 1
	for _, d := range l.Shape {
		n *= d
	}
	return n
}

// DenseBytes returns the memory cost of the layer once materialised: the
// dense weight tensor plus bias, in bytes.
func (l *LayerBlob) DenseBytes() int64 {
	return 4 * int64(l.WeightCount()+len(l.Bias))
}

// CompressedBytes returns the layer's stored size: data blob, index blob,
// and raw biases. The single source of truth for every per-layer size
// report (Tables 2–4, /v1/models).
func (l *LayerBlob) CompressedBytes() int {
	return len(l.DataBlob) + len(l.IndexBlob) + 4*len(l.Bias)
}

// TotalBytes returns the compressed payload size (data + index blobs +
// biases), i.e. the quantity Tables 2–4 report.
func (m *Model) TotalBytes() int {
	n := 0
	for _, l := range m.Layers {
		n += l.CompressedBytes()
	}
	return n
}

// Codecs returns the distinct codec identifiers used by the model's layers,
// in layer order. A freshly generated model has exactly one.
func (m *Model) Codecs() []codec.ID {
	var out []codec.ID
	for _, l := range m.Layers {
		seen := false
		for _, id := range out {
			if id == l.Codec {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, l.Codec)
		}
	}
	return out
}

// buildIndex populates the name→position map. Called once at construction
// (Generate, Unmarshal); the model is read-only afterwards.
func (m *Model) buildIndex() {
	m.index = make(map[string]int, len(m.Layers))
	for i := range m.Layers {
		m.index[m.Layers[i].Name] = i
	}
}

// Marshal serializes the model to a self-describing byte stream (always the
// current version-4 layout). It does not validate: hand-assembled models
// must carry unique layer names and a valid Kind/Shape per layer (as
// Generate and Unmarshal guarantee), or Unmarshal will reject the output.
// Blob CRCs are taken from the model when Checksummed (so a blob corrupted
// in memory after Generate is written with its original CRC and caught by
// the reader) and computed fresh otherwise, which is how v1–v3 reads and
// hand-assembled models upgrade to v4 transparently.
func (m *Model) Marshal() []byte {
	out := make([]byte, 0, 64+m.TotalBytes())
	out = binary.LittleEndian.AppendUint32(out, modelMagic)
	out = append(out, modelVersion4)
	out = appendString(out, m.NetName)
	digestOff := len(out)
	out = append(out, 0, 0, 0, 0) // whole-model digest, filled in below
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Layers)))
	for i := range m.Layers {
		l := &m.Layers[i]
		out = appendString(out, l.Name)
		out = append(out, byte(l.Kind))
		out = append(out, byte(len(l.Shape)))
		for _, d := range l.Shape {
			out = binary.LittleEndian.AppendUint32(out, uint32(d))
		}
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(l.EB))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(l.Bias)))
		for _, b := range l.Bias {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(b))
		}
		out = append(out, byte(l.Codec))
		var flags byte
		if l.HasDecodedCRC {
			flags |= layerFlagDecodedCRC
		}
		out = append(out, flags)
		dataCRC, indexCRC := l.DataCRC, l.IndexCRC
		if !l.Checksummed {
			dataCRC, indexCRC = crc32c(l.DataBlob), crc32c(l.IndexBlob)
		}
		out = appendBytes(out, l.DataBlob)
		out = binary.LittleEndian.AppendUint32(out, dataCRC)
		out = append(out, byte(l.IndexID))
		out = appendBytes(out, l.IndexBlob)
		out = binary.LittleEndian.AppendUint32(out, indexCRC)
		out = binary.LittleEndian.AppendUint32(out, uint32(l.IndexLen))
		if l.HasDecodedCRC {
			out = binary.LittleEndian.AppendUint32(out, l.DecodedCRC)
		}
	}
	// The digest covers every byte after itself (layer count through the
	// last layer record), so any flip in the file — header field, blob,
	// or stored CRC — fails the one check Unmarshal runs up front.
	binary.LittleEndian.PutUint32(out[digestOff:], crc32c(out[digestOff+4:]))
	return out
}

func appendString(out []byte, s string) []byte {
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

func appendBytes(out, b []byte) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
	return append(out, b...)
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) need(n int) error {
	if r.off+n > len(r.buf) {
		return ErrCorrupt
	}
	return nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if err := r.need(int(n)); err != nil {
		return nil, err
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) byte1() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// readShape parses the layer kind and weight shape of one serialized layer.
// Versions 1 and 2 store a fixed Rows×Cols pair (they predate conv support,
// so the kind is implicitly fc); version 3 stores a kind byte and an
// N-dimensional shape.
func readShape(r *reader, version byte, name string) (nn.LayerKind, []int, error) {
	if version < modelVersion3 {
		rows, err := r.u32()
		if err != nil {
			return 0, nil, err
		}
		cols, err := r.u32()
		if err != nil {
			return 0, nil, err
		}
		return nn.KindDense, []int{int(rows), int(cols)}, nil
	}
	kb, err := r.byte1()
	if err != nil {
		return 0, nil, err
	}
	kind := nn.LayerKind(kb)
	if !nn.KnownKind(kind) {
		return 0, nil, fmt.Errorf("%w: layer %s has unknown kind %d", ErrCorrupt, name, kb)
	}
	nd, err := r.byte1()
	if err != nil {
		return 0, nil, err
	}
	if nd == 0 || nd > maxShapeDims {
		return 0, nil, fmt.Errorf("%w: layer %s claims %d shape dimensions", ErrCorrupt, name, nd)
	}
	shape := make([]int, nd)
	for i := range shape {
		d, err := r.u32()
		if err != nil {
			return 0, nil, err
		}
		shape[i] = int(d)
	}
	return kind, shape, nil
}

// Unmarshal parses a serialized model. All four stream versions are
// accepted: version-1 layers (written before the codec registry existed)
// decode with the SZ codec, version-2 layers carry an explicit codec
// identifier, version-3 layers add a layer kind and N-dimensional weight
// shape, and version-4 streams add checksums — the whole-model digest is
// verified here, the per-blob CRCs at decode time (so a blob that rots
// after load is still caught).
func Unmarshal(blob []byte) (*Model, error) {
	r := &reader{buf: blob}
	magic, err := r.u32()
	if err != nil || magic != modelMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version, err := r.byte1()
	if err != nil {
		return nil, err
	}
	if version < modelVersion1 || version > modelVersion4 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	m := &Model{}
	if m.NetName, err = r.str(); err != nil {
		return nil, err
	}
	if version >= modelVersion4 {
		digest, err := r.u32()
		if err != nil {
			return nil, err
		}
		if got := crc32c(r.buf[r.off:]); got != digest {
			return nil, &CorruptError{Kind: CorruptHeader,
				Detail: fmt.Sprintf("model digest %08x, header says %08x", got, digest)}
		}
	}
	nLayers, err := r.u16()
	if err != nil {
		return nil, err
	}
	var totalDense uint64
	for i := 0; i < int(nLayers); i++ {
		var l LayerBlob
		if l.Name, err = r.str(); err != nil {
			return nil, err
		}
		if l.Kind, l.Shape, err = readShape(r, version, l.Name); err != nil {
			return nil, err
		}
		// Forged dimensions must not drive huge allocations when the layer
		// is later reconstructed — per dimension, per layer, or in
		// aggregate (a zero dimension must not launder the others).
		product := uint64(1)
		for _, d := range l.Shape {
			if uint64(d) > maxLayerDense {
				return nil, fmt.Errorf("%w: layer %s claims dimension %d", ErrCorrupt, l.Name, d)
			}
			product *= uint64(d)
			if product > maxLayerDense {
				return nil, fmt.Errorf("%w: layer %s claims %v dense weights", ErrCorrupt, l.Name, l.Shape)
			}
		}
		totalDense += product
		if totalDense > maxModelDense {
			return nil, fmt.Errorf("%w: layers claim more than %d dense weights in total", ErrCorrupt, maxModelDense)
		}
		ebBits, err := r.u64()
		if err != nil {
			return nil, err
		}
		l.EB = math.Float64frombits(ebBits)
		nb, err := r.u32()
		if err != nil {
			return nil, err
		}
		if err := r.need(int(nb) * 4); err != nil {
			return nil, err
		}
		l.Bias = make([]float32, nb)
		for j := range l.Bias {
			l.Bias[j] = math.Float32frombits(binary.LittleEndian.Uint32(r.buf[r.off:]))
			r.off += 4
		}
		l.Codec = codec.IDSZ
		if version >= modelVersion2 {
			cb, err := r.byte1()
			if err != nil {
				return nil, err
			}
			l.Codec = codec.ID(cb)
			if _, err := codec.ByID(l.Codec); err != nil {
				return nil, fmt.Errorf("%w: layer %s: %v", ErrCorrupt, l.Name, err)
			}
		}
		var flags byte
		if version >= modelVersion4 {
			if flags, err = r.byte1(); err != nil {
				return nil, err
			}
			if flags&^layerFlagDecodedCRC != 0 {
				return nil, fmt.Errorf("%w: layer %s has unknown flags %#x", ErrCorrupt, l.Name, flags)
			}
		}
		db, err := r.bytes()
		if err != nil {
			return nil, err
		}
		l.DataBlob = append([]byte(nil), db...)
		if version >= modelVersion4 {
			if l.DataCRC, err = r.u32(); err != nil {
				return nil, err
			}
		}
		ib, err := r.byte1()
		if err != nil {
			return nil, err
		}
		l.IndexID = lossless.ID(ib)
		idx, err := r.bytes()
		if err != nil {
			return nil, err
		}
		l.IndexBlob = append([]byte(nil), idx...)
		if version >= modelVersion4 {
			if l.IndexCRC, err = r.u32(); err != nil {
				return nil, err
			}
			l.Checksummed = true
		}
		il, err := r.u32()
		if err != nil {
			return nil, err
		}
		l.IndexLen = int(il)
		if flags&layerFlagDecodedCRC != 0 {
			l.HasDecodedCRC = true
			if l.DecodedCRC, err = r.u32(); err != nil {
				return nil, err
			}
		}
		m.Layers = append(m.Layers, l)
	}
	// Duplicate names would make every by-name lookup (Apply, the serving
	// decode cache) ambiguous; no writer produces them.
	m.buildIndex()
	if len(m.index) != len(m.Layers) {
		return nil, fmt.Errorf("%w: duplicate layer names", ErrCorrupt)
	}
	return m, nil
}

// Generate performs DeepSZ step 4: compress every selected layer of net
// (cfg.Layers) with the plan's error bounds (the plan's codec on data
// arrays, best-fit lossless on index arrays) and package the result. Layers
// are compressed by a bounded worker pool (cfg.Workers); the output is
// ordered by the network's layer order and is byte-identical regardless of
// worker count.
func Generate(net *nn.Network, plan *Plan, cfg Config) (*Model, error) {
	if err := (&cfg).fill(); err != nil {
		return nil, err
	}
	byLayer := map[string]Choice{}
	for _, c := range plan.Choices {
		byLayer[c.Layer] = c
	}
	layers := selectLayers(net, cfg.Layers)
	for _, cl := range layers {
		if _, ok := byLayer[cl.Name()]; !ok {
			return nil, fmt.Errorf("core: plan has no choice for layer %s", cl.Name())
		}
	}

	blobs := make([]LayerBlob, len(layers))
	errs := make([]error, len(layers))
	workers := cfg.Workers
	if workers > len(layers) {
		workers = len(layers)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for li := range jobs {
				blobs[li], errs[li] = generateLayer(layers[li], byLayer[layers[li].Name()], cfg)
			}
		}()
	}
	for li := range layers {
		jobs <- li
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	m := &Model{NetName: net.Name(), Layers: blobs}
	m.buildIndex()
	// Unmarshal rejects duplicate layer names as corrupt; refusing to
	// produce them here keeps every Generate output readable by ReadModel.
	if len(m.index) != len(m.Layers) {
		return nil, fmt.Errorf("core: network %s has duplicate layer names", net.Name())
	}
	return m, nil
}

// generateLayer compresses one layer: the codec on the sparse data array,
// best-fit lossless on the index array. Pure function of its inputs, which
// is what makes Generate's output independent of scheduling. Every blob is
// stamped with its CRC32C; accuracy-critical layers (per the plan's
// measured sensitivity and cfg's checksum mode) additionally get a
// checksum over the bytes a decoder will reconstruct, computed by running
// the real decompressor so the reference is exactly what DecodeLayer
// produces.
func generateLayer(cl nn.Compressible, c Choice, cfg Config) (LayerBlob, error) {
	id := c.Codec
	if id == 0 {
		id = cfg.Codec
	}
	cdc, err := codec.ByID(id)
	if err != nil {
		return LayerBlob{}, fmt.Errorf("core: layer %s: %w", cl.Name(), err)
	}
	sp := prune.Encode(cl.Weights())
	dataBlob, err := cdc.Compress(sp.Data, cfg.codecOptions(c.EB))
	if err != nil {
		return LayerBlob{}, fmt.Errorf("core: compressing %s: %w", cl.Name(), err)
	}
	comp, idxBlob := lossless.Best(indexBytes(sp))
	blob := LayerBlob{
		Name:        cl.Name(),
		Kind:        cl.Kind(),
		Shape:       append([]int(nil), cl.WeightShape()...),
		EB:          c.EB,
		Codec:       id,
		Bias:        append([]float32(nil), cl.BiasParam().W.Data...),
		DataBlob:    dataBlob,
		DataCRC:     crc32c(dataBlob),
		IndexID:     comp.ID(),
		IndexBlob:   idxBlob,
		IndexCRC:    crc32c(idxBlob),
		IndexLen:    len(sp.Index),
		Checksummed: true,
	}
	if cfg.wantDecodedChecksum(c) {
		// The decoded checksum must match what a reader reconstructs, not
		// what the writer started from: lossy codecs round values, so the
		// reference pass decompresses our own blob. Codecs are
		// deterministic, so this equals every future decode exactly.
		dec, err := cdc.Decompress(dataBlob)
		if err != nil {
			return LayerBlob{}, fmt.Errorf("core: verifying %s: %w", cl.Name(), err)
		}
		dense, err := (&prune.Sparse{N: blob.WeightCount(), Data: dec, Index: sp.Index}).Decode()
		if err != nil {
			return LayerBlob{}, fmt.Errorf("core: verifying %s: %w", cl.Name(), err)
		}
		blob.DecodedCRC = DecodedChecksum(dense, blob.Bias)
		blob.HasDecodedCRC = true
	}
	return blob, nil
}

// DecodeBreakdown reports where decoding time went (paper Figure 7b). With
// parallel decoding the durations are summed across workers, i.e. they are
// CPU time per stage, not wall time.
type DecodeBreakdown struct {
	Lossless    time.Duration // index-array lossless decompression
	Lossy       time.Duration // data-array lossy decompression
	Reconstruct time.Duration // sparse-to-dense reconstruction
}

// DecodedLayer is one reconstructed layer. Decode always produces the
// dense form; Compact may convert a sufficiently sparse layer to CSR in
// place, after which Weights is nil and Sparse holds the matrix (rows =
// Shape[0], cols = the product of the remaining dimensions — the layout
// every forward kernel consumes).
type DecodedLayer struct {
	Name    string
	Kind    nn.LayerKind
	Shape   []int
	Weights []float32   // dense, flat (product of Shape entries); nil when Sparse is set
	Sparse  *tensor.CSR // CSR form; nil when dense
	Bias    []float32
}

// Decode reverses Generate with one worker per CPU: lossless-decompress the
// index arrays, codec-decompress the data arrays, and rebuild each dense
// weight tensor. Layer order matches storage order regardless of workers.
func (m *Model) Decode() ([]DecodedLayer, DecodeBreakdown, error) {
	return m.DecodeWith(runtime.GOMAXPROCS(0))
}

// DecodeWith is Decode with an explicit worker count (≤ 1 decodes
// serially). The decoded layers are identical to a serial decode; only the
// wall time changes.
func (m *Model) DecodeWith(workers int) ([]DecodedLayer, DecodeBreakdown, error) {
	var bd DecodeBreakdown
	out := make([]DecodedLayer, len(m.Layers))
	errs := make([]error, len(m.Layers))
	if workers > len(m.Layers) {
		workers = len(m.Layers)
	}
	if workers < 1 {
		workers = 1
	}
	var mu sync.Mutex
	var failed atomic.Bool // fail fast: corrupt input must not cost a full decode
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for li := range jobs {
				if failed.Load() {
					continue
				}
				dl, lbd, err := decodeLayerBlob(&m.Layers[li])
				out[li], errs[li] = dl, err
				if err != nil {
					failed.Store(true)
				}
				mu.Lock()
				bd.Lossless += lbd.Lossless
				bd.Lossy += lbd.Lossy
				bd.Reconstruct += lbd.Reconstruct
				mu.Unlock()
			}
		}()
	}
	for li := range m.Layers {
		if failed.Load() {
			break
		}
		jobs <- li
	}
	close(jobs)
	wg.Wait()
	// Report the lowest-indexed recorded error; layers after a failure may
	// have been skipped, so only the success path is byte-deterministic.
	for _, err := range errs {
		if err != nil {
			return nil, bd, err
		}
	}
	return out, bd, nil
}

// decodeLayerBlob reconstructs one layer and times each stage. On
// checksummed layers every stored blob's CRC is verified before its
// decompressor touches the bytes, and the decoded checksum (when the
// layer carries one) is verified after reconstruction — so a corrupt
// blob, a mismatched structure, or a decode-path fault all surface as a
// CorruptError naming the layer and the surface, never as wrong weights.
func decodeLayerBlob(l *LayerBlob) (DecodedLayer, DecodeBreakdown, error) {
	var bd DecodeBreakdown
	t0 := time.Now()
	if l.Checksummed {
		if got := crc32c(l.IndexBlob); got != l.IndexCRC {
			return DecodedLayer{}, bd, &CorruptError{Layer: l.Name, Kind: CorruptBlob,
				Detail: fmt.Sprintf("index blob CRC %08x, stream says %08x", got, l.IndexCRC)}
		}
		if got := crc32c(l.DataBlob); got != l.DataCRC {
			return DecodedLayer{}, bd, &CorruptError{Layer: l.Name, Kind: CorruptBlob,
				Detail: fmt.Sprintf("data blob CRC %08x, stream says %08x", got, l.DataCRC)}
		}
	}
	comp, err := lossless.ByID(l.IndexID)
	if err != nil {
		return DecodedLayer{}, bd, fmt.Errorf("core: layer %s: %w", l.Name, err)
	}
	idx, err := comp.Decompress(l.IndexBlob)
	if err != nil {
		return DecodedLayer{}, bd, &CorruptError{Layer: l.Name, Kind: CorruptBlob,
			Detail: "index: " + err.Error()}
	}
	if len(idx) != l.IndexLen {
		return DecodedLayer{}, bd, &CorruptError{Layer: l.Name, Kind: CorruptBlob,
			Detail: fmt.Sprintf("index length %d, want %d", len(idx), l.IndexLen)}
	}
	t1 := time.Now()
	bd.Lossless = t1.Sub(t0)

	cdc, err := codec.ByID(l.Codec)
	if err != nil {
		return DecodedLayer{}, bd, fmt.Errorf("core: layer %s: %w", l.Name, err)
	}
	data, err := cdc.Decompress(l.DataBlob)
	if err != nil {
		return DecodedLayer{}, bd, &CorruptError{Layer: l.Name, Kind: CorruptBlob,
			Detail: "data: " + err.Error()}
	}
	t2 := time.Now()
	bd.Lossy = t2.Sub(t1)

	if len(data) != len(idx) {
		return DecodedLayer{}, bd, &CorruptError{Layer: l.Name, Kind: CorruptBlob,
			Detail: fmt.Sprintf("%d data values for %d indices", len(data), len(idx))}
	}
	sp := &prune.Sparse{N: l.WeightCount(), Data: data, Index: idx}
	dense, err := sp.Decode()
	if err != nil {
		return DecodedLayer{}, bd, &CorruptError{Layer: l.Name, Kind: CorruptBlob,
			Detail: err.Error()}
	}
	bd.Reconstruct = time.Since(t2)
	if l.HasDecodedCRC {
		if got := DecodedChecksum(dense, l.Bias); got != l.DecodedCRC {
			return DecodedLayer{}, bd, &CorruptError{Layer: l.Name, Kind: CorruptDecoded,
				Detail: fmt.Sprintf("decoded checksum %08x, stream says %08x", got, l.DecodedCRC)}
		}
	}
	return DecodedLayer{
		Name:    l.Name,
		Kind:    l.Kind,
		Shape:   append([]int(nil), l.Shape...),
		Weights: dense,
		Bias:    append([]float32(nil), l.Bias...),
	}, bd, nil
}

// Apply loads decoded weights into net's compressible layers (matched by
// name, fc and conv alike).
func (m *Model) Apply(net *nn.Network) (DecodeBreakdown, error) {
	layers, bd, err := m.Decode()
	if err != nil {
		return bd, err
	}
	for _, dl := range layers {
		cl := net.CompressibleByName(dl.Name)
		if cl == nil {
			return bd, fmt.Errorf("core: network %s has no layer %s", net.Name(), dl.Name)
		}
		cl.SetWeights(dl.Weights)
		copy(cl.BiasParam().W.Data, dl.Bias)
	}
	return bd, nil
}
