package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/lossless"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// LayerBlob is one compressed layer of a model: the lossy-compressed data
// array, the losslessly compressed index array, and the raw biases (biases
// are a few hundred bytes; the paper leaves them untouched).
type LayerBlob struct {
	Name string
	// Kind tags the layer family (fc, conv); Shape holds the weight
	// tensor's dimensions — [out, in] for fc, [outC, inC, k, k] for conv.
	// Streams older than version 3 only ever carried fc layers, so their
	// readers fill Kind=KindDense and Shape=[rows, cols].
	Kind  nn.LayerKind
	Shape []int
	EB    float64
	// Codec identifies the lossy back-end that produced DataBlob. Version-1
	// streams predate the field and always carry codec.IDSZ.
	Codec     codec.ID
	Bias      []float32
	DataBlob  []byte
	IndexID   lossless.ID
	IndexBlob []byte
	IndexLen  int // entries in the decompressed index array
}

// Model is the compressed-model container DeepSZ step 4 emits. It is
// immutable after construction and safe for concurrent reads; see the
// concurrency contract in stream.go.
type Model struct {
	NetName string
	Layers  []LayerBlob

	// index maps layer name → Layers position. Built once by Generate and
	// Unmarshal so the serve decode cache's per-request lookups are O(1)
	// instead of a linear scan; read-only afterwards, like the rest of the
	// model. Nil for hand-assembled models, which fall back to scanning.
	index map[string]int
}

const (
	modelMagic = 0x44535A31 // "DSZ1"
	// modelVersion1 streams have no per-layer codec byte: every data blob
	// is SZ-compressed. modelVersion2 adds one codec.ID byte per layer.
	// modelVersion3 replaces the fixed Rows×Cols pair with a layer-kind
	// byte plus an N-dimensional weight shape, admitting conv layers.
	// WriteModel/Marshal always emit version 3; Unmarshal reads all three.
	modelVersion1 = 1
	modelVersion2 = 2
	modelVersion3 = 3
)

// maxLayerDense bounds the weight count accepted from serialized headers.
// 2^28 weights (1 GiB dense) is 2.6× the paper's largest fc layer (VGG-16
// fc6, ~103 M weights); forged headers beyond it are rejected before any
// allocation sized by the product.
const maxLayerDense = 1 << 28

// maxModelDense bounds the summed weight count over all layers of one model
// (2^29 weights = 2 GiB dense, 4× the paper's largest fc suffix). Without
// an aggregate cap, a stream of many individually-plausible layers could
// still drive Decode to unbounded total allocation.
const maxModelDense = 1 << 29

// maxShapeDims bounds the dimensionality a version-3 header may claim; the
// deepest real shape is conv's 4.
const maxShapeDims = 8

// ErrCorrupt is returned when a serialized model fails validation.
var ErrCorrupt = errors.New("core: corrupt model")

// WeightCount returns the number of dense weights (the product of Shape).
func (l *LayerBlob) WeightCount() int {
	n := 1
	for _, d := range l.Shape {
		n *= d
	}
	return n
}

// DenseBytes returns the memory cost of the layer once materialised: the
// dense weight tensor plus bias, in bytes.
func (l *LayerBlob) DenseBytes() int64 {
	return 4 * int64(l.WeightCount()+len(l.Bias))
}

// CompressedBytes returns the layer's stored size: data blob, index blob,
// and raw biases. The single source of truth for every per-layer size
// report (Tables 2–4, /v1/models).
func (l *LayerBlob) CompressedBytes() int {
	return len(l.DataBlob) + len(l.IndexBlob) + 4*len(l.Bias)
}

// TotalBytes returns the compressed payload size (data + index blobs +
// biases), i.e. the quantity Tables 2–4 report.
func (m *Model) TotalBytes() int {
	n := 0
	for _, l := range m.Layers {
		n += l.CompressedBytes()
	}
	return n
}

// Codecs returns the distinct codec identifiers used by the model's layers,
// in layer order. A freshly generated model has exactly one.
func (m *Model) Codecs() []codec.ID {
	var out []codec.ID
	for _, l := range m.Layers {
		seen := false
		for _, id := range out {
			if id == l.Codec {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, l.Codec)
		}
	}
	return out
}

// buildIndex populates the name→position map. Called once at construction
// (Generate, Unmarshal); the model is read-only afterwards.
func (m *Model) buildIndex() {
	m.index = make(map[string]int, len(m.Layers))
	for i := range m.Layers {
		m.index[m.Layers[i].Name] = i
	}
}

// Marshal serializes the model to a self-describing byte stream (always the
// current version-3 layout). It does not validate: hand-assembled models
// must carry unique layer names and a valid Kind/Shape per layer (as
// Generate and Unmarshal guarantee), or Unmarshal will reject the output.
func (m *Model) Marshal() []byte {
	out := make([]byte, 0, 64+m.TotalBytes())
	out = binary.LittleEndian.AppendUint32(out, modelMagic)
	out = append(out, modelVersion3)
	out = appendString(out, m.NetName)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Layers)))
	for _, l := range m.Layers {
		out = appendString(out, l.Name)
		out = append(out, byte(l.Kind))
		out = append(out, byte(len(l.Shape)))
		for _, d := range l.Shape {
			out = binary.LittleEndian.AppendUint32(out, uint32(d))
		}
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(l.EB))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(l.Bias)))
		for _, b := range l.Bias {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(b))
		}
		out = append(out, byte(l.Codec))
		out = appendBytes(out, l.DataBlob)
		out = append(out, byte(l.IndexID))
		out = appendBytes(out, l.IndexBlob)
		out = binary.LittleEndian.AppendUint32(out, uint32(l.IndexLen))
	}
	return out
}

func appendString(out []byte, s string) []byte {
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

func appendBytes(out, b []byte) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
	return append(out, b...)
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) need(n int) error {
	if r.off+n > len(r.buf) {
		return ErrCorrupt
	}
	return nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if err := r.need(int(n)); err != nil {
		return nil, err
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) byte1() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// readShape parses the layer kind and weight shape of one serialized layer.
// Versions 1 and 2 store a fixed Rows×Cols pair (they predate conv support,
// so the kind is implicitly fc); version 3 stores a kind byte and an
// N-dimensional shape.
func readShape(r *reader, version byte, name string) (nn.LayerKind, []int, error) {
	if version < modelVersion3 {
		rows, err := r.u32()
		if err != nil {
			return 0, nil, err
		}
		cols, err := r.u32()
		if err != nil {
			return 0, nil, err
		}
		return nn.KindDense, []int{int(rows), int(cols)}, nil
	}
	kb, err := r.byte1()
	if err != nil {
		return 0, nil, err
	}
	kind := nn.LayerKind(kb)
	if !nn.KnownKind(kind) {
		return 0, nil, fmt.Errorf("%w: layer %s has unknown kind %d", ErrCorrupt, name, kb)
	}
	nd, err := r.byte1()
	if err != nil {
		return 0, nil, err
	}
	if nd == 0 || nd > maxShapeDims {
		return 0, nil, fmt.Errorf("%w: layer %s claims %d shape dimensions", ErrCorrupt, name, nd)
	}
	shape := make([]int, nd)
	for i := range shape {
		d, err := r.u32()
		if err != nil {
			return 0, nil, err
		}
		shape[i] = int(d)
	}
	return kind, shape, nil
}

// Unmarshal parses a serialized model. All three stream versions are
// accepted: version-1 layers (written before the codec registry existed)
// decode with the SZ codec, version-2 layers carry an explicit codec
// identifier, and version-3 layers add a layer kind and N-dimensional
// weight shape.
func Unmarshal(blob []byte) (*Model, error) {
	r := &reader{buf: blob}
	magic, err := r.u32()
	if err != nil || magic != modelMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version, err := r.byte1()
	if err != nil {
		return nil, err
	}
	if version < modelVersion1 || version > modelVersion3 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	m := &Model{}
	if m.NetName, err = r.str(); err != nil {
		return nil, err
	}
	nLayers, err := r.u16()
	if err != nil {
		return nil, err
	}
	var totalDense uint64
	for i := 0; i < int(nLayers); i++ {
		var l LayerBlob
		if l.Name, err = r.str(); err != nil {
			return nil, err
		}
		if l.Kind, l.Shape, err = readShape(r, version, l.Name); err != nil {
			return nil, err
		}
		// Forged dimensions must not drive huge allocations when the layer
		// is later reconstructed — per dimension, per layer, or in
		// aggregate (a zero dimension must not launder the others).
		product := uint64(1)
		for _, d := range l.Shape {
			if uint64(d) > maxLayerDense {
				return nil, fmt.Errorf("%w: layer %s claims dimension %d", ErrCorrupt, l.Name, d)
			}
			product *= uint64(d)
			if product > maxLayerDense {
				return nil, fmt.Errorf("%w: layer %s claims %v dense weights", ErrCorrupt, l.Name, l.Shape)
			}
		}
		totalDense += product
		if totalDense > maxModelDense {
			return nil, fmt.Errorf("%w: layers claim more than %d dense weights in total", ErrCorrupt, maxModelDense)
		}
		ebBits, err := r.u64()
		if err != nil {
			return nil, err
		}
		l.EB = math.Float64frombits(ebBits)
		nb, err := r.u32()
		if err != nil {
			return nil, err
		}
		if err := r.need(int(nb) * 4); err != nil {
			return nil, err
		}
		l.Bias = make([]float32, nb)
		for j := range l.Bias {
			l.Bias[j] = math.Float32frombits(binary.LittleEndian.Uint32(r.buf[r.off:]))
			r.off += 4
		}
		l.Codec = codec.IDSZ
		if version >= modelVersion2 {
			cb, err := r.byte1()
			if err != nil {
				return nil, err
			}
			l.Codec = codec.ID(cb)
			if _, err := codec.ByID(l.Codec); err != nil {
				return nil, fmt.Errorf("%w: layer %s: %v", ErrCorrupt, l.Name, err)
			}
		}
		db, err := r.bytes()
		if err != nil {
			return nil, err
		}
		l.DataBlob = append([]byte(nil), db...)
		ib, err := r.byte1()
		if err != nil {
			return nil, err
		}
		l.IndexID = lossless.ID(ib)
		idx, err := r.bytes()
		if err != nil {
			return nil, err
		}
		l.IndexBlob = append([]byte(nil), idx...)
		il, err := r.u32()
		if err != nil {
			return nil, err
		}
		l.IndexLen = int(il)
		m.Layers = append(m.Layers, l)
	}
	// Duplicate names would make every by-name lookup (Apply, the serving
	// decode cache) ambiguous; no writer produces them.
	m.buildIndex()
	if len(m.index) != len(m.Layers) {
		return nil, fmt.Errorf("%w: duplicate layer names", ErrCorrupt)
	}
	return m, nil
}

// Generate performs DeepSZ step 4: compress every selected layer of net
// (cfg.Layers) with the plan's error bounds (the plan's codec on data
// arrays, best-fit lossless on index arrays) and package the result. Layers
// are compressed by a bounded worker pool (cfg.Workers); the output is
// ordered by the network's layer order and is byte-identical regardless of
// worker count.
func Generate(net *nn.Network, plan *Plan, cfg Config) (*Model, error) {
	if err := (&cfg).fill(); err != nil {
		return nil, err
	}
	byLayer := map[string]Choice{}
	for _, c := range plan.Choices {
		byLayer[c.Layer] = c
	}
	layers := selectLayers(net, cfg.Layers)
	for _, cl := range layers {
		if _, ok := byLayer[cl.Name()]; !ok {
			return nil, fmt.Errorf("core: plan has no choice for layer %s", cl.Name())
		}
	}

	blobs := make([]LayerBlob, len(layers))
	errs := make([]error, len(layers))
	workers := cfg.Workers
	if workers > len(layers) {
		workers = len(layers)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for li := range jobs {
				blobs[li], errs[li] = generateLayer(layers[li], byLayer[layers[li].Name()], cfg)
			}
		}()
	}
	for li := range layers {
		jobs <- li
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	m := &Model{NetName: net.Name(), Layers: blobs}
	m.buildIndex()
	// Unmarshal rejects duplicate layer names as corrupt; refusing to
	// produce them here keeps every Generate output readable by ReadModel.
	if len(m.index) != len(m.Layers) {
		return nil, fmt.Errorf("core: network %s has duplicate layer names", net.Name())
	}
	return m, nil
}

// generateLayer compresses one layer: the codec on the sparse data array,
// best-fit lossless on the index array. Pure function of its inputs, which
// is what makes Generate's output independent of scheduling.
func generateLayer(cl nn.Compressible, c Choice, cfg Config) (LayerBlob, error) {
	id := c.Codec
	if id == 0 {
		id = cfg.Codec
	}
	cdc, err := codec.ByID(id)
	if err != nil {
		return LayerBlob{}, fmt.Errorf("core: layer %s: %w", cl.Name(), err)
	}
	sp := prune.Encode(cl.Weights())
	dataBlob, err := cdc.Compress(sp.Data, cfg.codecOptions(c.EB))
	if err != nil {
		return LayerBlob{}, fmt.Errorf("core: compressing %s: %w", cl.Name(), err)
	}
	comp, idxBlob := lossless.Best(indexBytes(sp))
	return LayerBlob{
		Name:      cl.Name(),
		Kind:      cl.Kind(),
		Shape:     append([]int(nil), cl.WeightShape()...),
		EB:        c.EB,
		Codec:     id,
		Bias:      append([]float32(nil), cl.BiasParam().W.Data...),
		DataBlob:  dataBlob,
		IndexID:   comp.ID(),
		IndexBlob: idxBlob,
		IndexLen:  len(sp.Index),
	}, nil
}

// DecodeBreakdown reports where decoding time went (paper Figure 7b). With
// parallel decoding the durations are summed across workers, i.e. they are
// CPU time per stage, not wall time.
type DecodeBreakdown struct {
	Lossless    time.Duration // index-array lossless decompression
	Lossy       time.Duration // data-array lossy decompression
	Reconstruct time.Duration // sparse-to-dense reconstruction
}

// DecodedLayer is one reconstructed layer. Decode always produces the
// dense form; Compact may convert a sufficiently sparse layer to CSR in
// place, after which Weights is nil and Sparse holds the matrix (rows =
// Shape[0], cols = the product of the remaining dimensions — the layout
// every forward kernel consumes).
type DecodedLayer struct {
	Name    string
	Kind    nn.LayerKind
	Shape   []int
	Weights []float32   // dense, flat (product of Shape entries); nil when Sparse is set
	Sparse  *tensor.CSR // CSR form; nil when dense
	Bias    []float32
}

// Decode reverses Generate with one worker per CPU: lossless-decompress the
// index arrays, codec-decompress the data arrays, and rebuild each dense
// weight tensor. Layer order matches storage order regardless of workers.
func (m *Model) Decode() ([]DecodedLayer, DecodeBreakdown, error) {
	return m.DecodeWith(runtime.GOMAXPROCS(0))
}

// DecodeWith is Decode with an explicit worker count (≤ 1 decodes
// serially). The decoded layers are identical to a serial decode; only the
// wall time changes.
func (m *Model) DecodeWith(workers int) ([]DecodedLayer, DecodeBreakdown, error) {
	var bd DecodeBreakdown
	out := make([]DecodedLayer, len(m.Layers))
	errs := make([]error, len(m.Layers))
	if workers > len(m.Layers) {
		workers = len(m.Layers)
	}
	if workers < 1 {
		workers = 1
	}
	var mu sync.Mutex
	var failed atomic.Bool // fail fast: corrupt input must not cost a full decode
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for li := range jobs {
				if failed.Load() {
					continue
				}
				dl, lbd, err := decodeLayerBlob(&m.Layers[li])
				out[li], errs[li] = dl, err
				if err != nil {
					failed.Store(true)
				}
				mu.Lock()
				bd.Lossless += lbd.Lossless
				bd.Lossy += lbd.Lossy
				bd.Reconstruct += lbd.Reconstruct
				mu.Unlock()
			}
		}()
	}
	for li := range m.Layers {
		if failed.Load() {
			break
		}
		jobs <- li
	}
	close(jobs)
	wg.Wait()
	// Report the lowest-indexed recorded error; layers after a failure may
	// have been skipped, so only the success path is byte-deterministic.
	for _, err := range errs {
		if err != nil {
			return nil, bd, err
		}
	}
	return out, bd, nil
}

// decodeLayerBlob reconstructs one layer and times each stage.
func decodeLayerBlob(l *LayerBlob) (DecodedLayer, DecodeBreakdown, error) {
	var bd DecodeBreakdown
	t0 := time.Now()
	comp, err := lossless.ByID(l.IndexID)
	if err != nil {
		return DecodedLayer{}, bd, fmt.Errorf("core: layer %s: %w", l.Name, err)
	}
	idx, err := comp.Decompress(l.IndexBlob)
	if err != nil {
		return DecodedLayer{}, bd, fmt.Errorf("core: layer %s index: %w", l.Name, err)
	}
	if len(idx) != l.IndexLen {
		return DecodedLayer{}, bd, fmt.Errorf("%w: layer %s index length %d, want %d", ErrCorrupt, l.Name, len(idx), l.IndexLen)
	}
	t1 := time.Now()
	bd.Lossless = t1.Sub(t0)

	cdc, err := codec.ByID(l.Codec)
	if err != nil {
		return DecodedLayer{}, bd, fmt.Errorf("core: layer %s: %w", l.Name, err)
	}
	data, err := cdc.Decompress(l.DataBlob)
	if err != nil {
		return DecodedLayer{}, bd, fmt.Errorf("core: layer %s data: %w", l.Name, err)
	}
	t2 := time.Now()
	bd.Lossy = t2.Sub(t1)

	if len(data) != len(idx) {
		return DecodedLayer{}, bd, fmt.Errorf("%w: layer %s: %d data values for %d indices", ErrCorrupt, l.Name, len(data), len(idx))
	}
	sp := &prune.Sparse{N: l.WeightCount(), Data: data, Index: idx}
	dense, err := sp.Decode()
	if err != nil {
		return DecodedLayer{}, bd, fmt.Errorf("core: layer %s: %w", l.Name, err)
	}
	bd.Reconstruct = time.Since(t2)
	return DecodedLayer{
		Name:    l.Name,
		Kind:    l.Kind,
		Shape:   append([]int(nil), l.Shape...),
		Weights: dense,
		Bias:    append([]float32(nil), l.Bias...),
	}, bd, nil
}

// Apply loads decoded weights into net's compressible layers (matched by
// name, fc and conv alike).
func (m *Model) Apply(net *nn.Network) (DecodeBreakdown, error) {
	layers, bd, err := m.Decode()
	if err != nil {
		return bd, err
	}
	for _, dl := range layers {
		cl := net.CompressibleByName(dl.Name)
		if cl == nil {
			return bd, fmt.Errorf("core: network %s has no layer %s", net.Name(), dl.Name)
		}
		cl.SetWeights(dl.Weights)
		copy(cl.BiasParam().W.Data, dl.Bias)
	}
	return bd, nil
}
