package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/lossless"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/sz"
)

// LayerBlob is one fc layer of a compressed model: the SZ-compressed data
// array, the losslessly compressed index array, and the raw biases (biases
// are a few hundred bytes; the paper leaves them untouched).
type LayerBlob struct {
	Name       string
	Rows, Cols int
	EB         float64
	Bias       []float32
	SZBlob     []byte
	IndexID    lossless.ID
	IndexBlob  []byte
	IndexLen   int // entries in the decompressed index array
}

// Model is the compressed-model container DeepSZ step 4 emits. It is
// immutable after construction and safe for concurrent reads; see the
// concurrency contract in stream.go.
type Model struct {
	NetName string
	Layers  []LayerBlob
}

const (
	modelMagic   = 0x44535A31 // "DSZ1"
	modelVersion = 1
)

// ErrCorrupt is returned when a serialized model fails validation.
var ErrCorrupt = errors.New("core: corrupt model")

// DenseBytes returns the memory cost of the layer once materialised: the
// dense weight matrix plus bias, in bytes.
func (l *LayerBlob) DenseBytes() int64 {
	return 4 * int64(l.Rows*l.Cols+len(l.Bias))
}

// TotalBytes returns the compressed payload size (data + index blobs +
// biases), i.e. the quantity Tables 2–4 report.
func (m *Model) TotalBytes() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.SZBlob) + len(l.IndexBlob) + 4*len(l.Bias)
	}
	return n
}

// Marshal serializes the model to a self-describing byte stream.
func (m *Model) Marshal() []byte {
	out := make([]byte, 0, 64+m.TotalBytes())
	out = binary.LittleEndian.AppendUint32(out, modelMagic)
	out = append(out, modelVersion)
	out = appendString(out, m.NetName)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Layers)))
	for _, l := range m.Layers {
		out = appendString(out, l.Name)
		out = binary.LittleEndian.AppendUint32(out, uint32(l.Rows))
		out = binary.LittleEndian.AppendUint32(out, uint32(l.Cols))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(l.EB))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(l.Bias)))
		for _, b := range l.Bias {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(b))
		}
		out = appendBytes(out, l.SZBlob)
		out = append(out, byte(l.IndexID))
		out = appendBytes(out, l.IndexBlob)
		out = binary.LittleEndian.AppendUint32(out, uint32(l.IndexLen))
	}
	return out
}

func appendString(out []byte, s string) []byte {
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

func appendBytes(out, b []byte) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
	return append(out, b...)
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) need(n int) error {
	if r.off+n > len(r.buf) {
		return ErrCorrupt
	}
	return nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if err := r.need(int(n)); err != nil {
		return nil, err
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// Unmarshal parses a serialized model.
func Unmarshal(blob []byte) (*Model, error) {
	r := &reader{buf: blob}
	magic, err := r.u32()
	if err != nil || magic != modelMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if err := r.need(1); err != nil {
		return nil, err
	}
	if r.buf[r.off] != modelVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, r.buf[r.off])
	}
	r.off++
	m := &Model{}
	if m.NetName, err = r.str(); err != nil {
		return nil, err
	}
	nLayers, err := r.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nLayers); i++ {
		var l LayerBlob
		if l.Name, err = r.str(); err != nil {
			return nil, err
		}
		rows, err := r.u32()
		if err != nil {
			return nil, err
		}
		cols, err := r.u32()
		if err != nil {
			return nil, err
		}
		l.Rows, l.Cols = int(rows), int(cols)
		ebBits, err := r.u64()
		if err != nil {
			return nil, err
		}
		l.EB = math.Float64frombits(ebBits)
		nb, err := r.u32()
		if err != nil {
			return nil, err
		}
		if err := r.need(int(nb) * 4); err != nil {
			return nil, err
		}
		l.Bias = make([]float32, nb)
		for j := range l.Bias {
			l.Bias[j] = math.Float32frombits(binary.LittleEndian.Uint32(r.buf[r.off:]))
			r.off += 4
		}
		szb, err := r.bytes()
		if err != nil {
			return nil, err
		}
		l.SZBlob = append([]byte(nil), szb...)
		if err := r.need(1); err != nil {
			return nil, err
		}
		l.IndexID = lossless.ID(r.buf[r.off])
		r.off++
		idx, err := r.bytes()
		if err != nil {
			return nil, err
		}
		l.IndexBlob = append([]byte(nil), idx...)
		il, err := r.u32()
		if err != nil {
			return nil, err
		}
		l.IndexLen = int(il)
		m.Layers = append(m.Layers, l)
	}
	return m, nil
}

// Generate performs DeepSZ step 4: compress every fc layer of net with the
// plan's error bounds (SZ on data arrays, best-fit lossless on index
// arrays) and package the result.
func Generate(net *nn.Network, plan *Plan, cfg Config) (*Model, error) {
	if err := (&cfg).fill(); err != nil {
		return nil, err
	}
	byLayer := map[string]Choice{}
	for _, c := range plan.Choices {
		byLayer[c.Layer] = c
	}
	m := &Model{NetName: net.Name()}
	for _, fc := range net.DenseLayers() {
		c, ok := byLayer[fc.Name()]
		if !ok {
			return nil, fmt.Errorf("core: plan has no choice for layer %s", fc.Name())
		}
		sp := prune.Encode(fc.Weights())
		szBlob, err := sz.Compress(sp.Data, sz.Options{
			ErrorBound: c.EB,
			BlockSize:  cfg.SZBlockSize,
			Radius:     cfg.SZRadius,
		})
		if err != nil {
			return nil, fmt.Errorf("core: compressing %s: %w", fc.Name(), err)
		}
		comp, idxBlob := lossless.Best(indexBytes(sp))
		m.Layers = append(m.Layers, LayerBlob{
			Name:      fc.Name(),
			Rows:      fc.Out,
			Cols:      fc.In,
			EB:        c.EB,
			Bias:      append([]float32(nil), fc.B.W.Data...),
			SZBlob:    szBlob,
			IndexID:   comp.ID(),
			IndexBlob: idxBlob,
			IndexLen:  len(sp.Index),
		})
	}
	return m, nil
}

// DecodeBreakdown reports where decoding time went (paper Figure 7b).
type DecodeBreakdown struct {
	Lossless    time.Duration // index-array lossless decompression
	SZ          time.Duration // data-array lossy decompression
	Reconstruct time.Duration // sparse-to-dense matrix reconstruction
}

// DecodedLayer is one reconstructed fc layer.
type DecodedLayer struct {
	Name    string
	Weights []float32 // dense, Rows×Cols
	Bias    []float32
}

// Decode reverses Generate: lossless-decompress the index arrays,
// SZ-decompress the data arrays, and rebuild each dense weight matrix.
func (m *Model) Decode() ([]DecodedLayer, DecodeBreakdown, error) {
	var bd DecodeBreakdown
	out := make([]DecodedLayer, 0, len(m.Layers))
	for _, l := range m.Layers {
		t0 := time.Now()
		comp, err := lossless.ByID(l.IndexID)
		if err != nil {
			return nil, bd, fmt.Errorf("core: layer %s: %w", l.Name, err)
		}
		idx, err := comp.Decompress(l.IndexBlob)
		if err != nil {
			return nil, bd, fmt.Errorf("core: layer %s index: %w", l.Name, err)
		}
		if len(idx) != l.IndexLen {
			return nil, bd, fmt.Errorf("%w: layer %s index length %d, want %d", ErrCorrupt, l.Name, len(idx), l.IndexLen)
		}
		t1 := time.Now()
		bd.Lossless += t1.Sub(t0)

		data, err := sz.Decompress(l.SZBlob)
		if err != nil {
			return nil, bd, fmt.Errorf("core: layer %s data: %w", l.Name, err)
		}
		t2 := time.Now()
		bd.SZ += t2.Sub(t1)

		if len(data) != len(idx) {
			return nil, bd, fmt.Errorf("%w: layer %s: %d data values for %d indices", ErrCorrupt, l.Name, len(data), len(idx))
		}
		sp := &prune.Sparse{N: l.Rows * l.Cols, Data: data, Index: idx}
		dense, err := sp.Decode()
		if err != nil {
			return nil, bd, fmt.Errorf("core: layer %s: %w", l.Name, err)
		}
		bd.Reconstruct += time.Since(t2)
		out = append(out, DecodedLayer{Name: l.Name, Weights: dense, Bias: append([]float32(nil), l.Bias...)})
	}
	return out, bd, nil
}

// Apply loads decoded weights into net's fc layers (matched by name).
func (m *Model) Apply(net *nn.Network) (DecodeBreakdown, error) {
	layers, bd, err := m.Decode()
	if err != nil {
		return bd, err
	}
	for _, dl := range layers {
		found := false
		for _, fc := range net.DenseLayers() {
			if fc.Name() == dl.Name {
				fc.SetWeights(dl.Weights)
				copy(fc.B.W.Data, dl.Bias)
				found = true
				break
			}
		}
		if !found {
			return bd, fmt.Errorf("core: network %s has no layer %s", net.Name(), dl.Name)
		}
	}
	return bd, nil
}
