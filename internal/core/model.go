package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/lossless"
	"repro/internal/nn"
	"repro/internal/prune"
)

// LayerBlob is one fc layer of a compressed model: the lossy-compressed data
// array, the losslessly compressed index array, and the raw biases (biases
// are a few hundred bytes; the paper leaves them untouched).
type LayerBlob struct {
	Name       string
	Rows, Cols int
	EB         float64
	// Codec identifies the lossy back-end that produced DataBlob. Version-1
	// streams predate the field and always carry codec.IDSZ.
	Codec     codec.ID
	Bias      []float32
	DataBlob  []byte
	IndexID   lossless.ID
	IndexBlob []byte
	IndexLen  int // entries in the decompressed index array
}

// Model is the compressed-model container DeepSZ step 4 emits. It is
// immutable after construction and safe for concurrent reads; see the
// concurrency contract in stream.go.
type Model struct {
	NetName string
	Layers  []LayerBlob
}

const (
	modelMagic = 0x44535A31 // "DSZ1"
	// modelVersion1 streams have no per-layer codec byte: every data blob
	// is SZ-compressed. modelVersion2 adds one codec.ID byte per layer.
	// WriteModel/Marshal always emit version 2; Unmarshal reads both.
	modelVersion1 = 1
	modelVersion2 = 2
)

// maxLayerDense bounds Rows×Cols accepted from serialized headers. 2^28
// weights (1 GiB dense) is 2.6× the paper's largest fc layer (VGG-16 fc6,
// ~103 M weights); forged headers beyond it are rejected before any
// allocation sized by the product.
const maxLayerDense = 1 << 28

// maxModelDense bounds the summed Rows×Cols over all layers of one model
// (2^29 weights = 2 GiB dense, 4× the paper's largest fc suffix). Without
// an aggregate cap, a stream of many individually-plausible layers could
// still drive Decode to unbounded total allocation.
const maxModelDense = 1 << 29

// ErrCorrupt is returned when a serialized model fails validation.
var ErrCorrupt = errors.New("core: corrupt model")

// DenseBytes returns the memory cost of the layer once materialised: the
// dense weight matrix plus bias, in bytes.
func (l *LayerBlob) DenseBytes() int64 {
	return 4 * int64(l.Rows*l.Cols+len(l.Bias))
}

// CompressedBytes returns the layer's stored size: data blob, index blob,
// and raw biases. The single source of truth for every per-layer size
// report (Tables 2–4, /v1/models).
func (l *LayerBlob) CompressedBytes() int {
	return len(l.DataBlob) + len(l.IndexBlob) + 4*len(l.Bias)
}

// TotalBytes returns the compressed payload size (data + index blobs +
// biases), i.e. the quantity Tables 2–4 report.
func (m *Model) TotalBytes() int {
	n := 0
	for _, l := range m.Layers {
		n += l.CompressedBytes()
	}
	return n
}

// Codecs returns the distinct codec identifiers used by the model's layers,
// in layer order. A freshly generated model has exactly one.
func (m *Model) Codecs() []codec.ID {
	var out []codec.ID
	for _, l := range m.Layers {
		seen := false
		for _, id := range out {
			if id == l.Codec {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, l.Codec)
		}
	}
	return out
}

// Marshal serializes the model to a self-describing byte stream (always the
// current version-2 layout).
func (m *Model) Marshal() []byte {
	out := make([]byte, 0, 64+m.TotalBytes())
	out = binary.LittleEndian.AppendUint32(out, modelMagic)
	out = append(out, modelVersion2)
	out = appendString(out, m.NetName)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Layers)))
	for _, l := range m.Layers {
		out = appendString(out, l.Name)
		out = binary.LittleEndian.AppendUint32(out, uint32(l.Rows))
		out = binary.LittleEndian.AppendUint32(out, uint32(l.Cols))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(l.EB))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(l.Bias)))
		for _, b := range l.Bias {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(b))
		}
		out = append(out, byte(l.Codec))
		out = appendBytes(out, l.DataBlob)
		out = append(out, byte(l.IndexID))
		out = appendBytes(out, l.IndexBlob)
		out = binary.LittleEndian.AppendUint32(out, uint32(l.IndexLen))
	}
	return out
}

func appendString(out []byte, s string) []byte {
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

func appendBytes(out, b []byte) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
	return append(out, b...)
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) need(n int) error {
	if r.off+n > len(r.buf) {
		return ErrCorrupt
	}
	return nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if err := r.need(int(n)); err != nil {
		return nil, err
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) byte1() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// Unmarshal parses a serialized model. Both stream versions are accepted:
// version-1 layers (written before the codec registry existed) decode with
// the SZ codec; version-2 layers carry an explicit codec identifier.
func Unmarshal(blob []byte) (*Model, error) {
	r := &reader{buf: blob}
	magic, err := r.u32()
	if err != nil || magic != modelMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version, err := r.byte1()
	if err != nil {
		return nil, err
	}
	if version != modelVersion1 && version != modelVersion2 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	m := &Model{}
	if m.NetName, err = r.str(); err != nil {
		return nil, err
	}
	nLayers, err := r.u16()
	if err != nil {
		return nil, err
	}
	var totalDense uint64
	for i := 0; i < int(nLayers); i++ {
		var l LayerBlob
		if l.Name, err = r.str(); err != nil {
			return nil, err
		}
		rows, err := r.u32()
		if err != nil {
			return nil, err
		}
		cols, err := r.u32()
		if err != nil {
			return nil, err
		}
		l.Rows, l.Cols = int(rows), int(cols)
		// Forged dimensions must not drive huge allocations when the layer
		// is later reconstructed — per dimension, per layer, or in
		// aggregate (a zero dimension must not launder the other one).
		if uint64(rows) > maxLayerDense || uint64(cols) > maxLayerDense ||
			uint64(rows)*uint64(cols) > maxLayerDense {
			return nil, fmt.Errorf("%w: layer %s claims %d×%d dense weights", ErrCorrupt, l.Name, rows, cols)
		}
		totalDense += uint64(rows) * uint64(cols)
		if totalDense > maxModelDense {
			return nil, fmt.Errorf("%w: layers claim more than %d dense weights in total", ErrCorrupt, maxModelDense)
		}
		ebBits, err := r.u64()
		if err != nil {
			return nil, err
		}
		l.EB = math.Float64frombits(ebBits)
		nb, err := r.u32()
		if err != nil {
			return nil, err
		}
		if err := r.need(int(nb) * 4); err != nil {
			return nil, err
		}
		l.Bias = make([]float32, nb)
		for j := range l.Bias {
			l.Bias[j] = math.Float32frombits(binary.LittleEndian.Uint32(r.buf[r.off:]))
			r.off += 4
		}
		l.Codec = codec.IDSZ
		if version >= modelVersion2 {
			cb, err := r.byte1()
			if err != nil {
				return nil, err
			}
			l.Codec = codec.ID(cb)
			if _, err := codec.ByID(l.Codec); err != nil {
				return nil, fmt.Errorf("%w: layer %s: %v", ErrCorrupt, l.Name, err)
			}
		}
		db, err := r.bytes()
		if err != nil {
			return nil, err
		}
		l.DataBlob = append([]byte(nil), db...)
		ib, err := r.byte1()
		if err != nil {
			return nil, err
		}
		l.IndexID = lossless.ID(ib)
		idx, err := r.bytes()
		if err != nil {
			return nil, err
		}
		l.IndexBlob = append([]byte(nil), idx...)
		il, err := r.u32()
		if err != nil {
			return nil, err
		}
		l.IndexLen = int(il)
		m.Layers = append(m.Layers, l)
	}
	return m, nil
}

// Generate performs DeepSZ step 4: compress every fc layer of net with the
// plan's error bounds (the plan's codec on data arrays, best-fit lossless
// on index arrays) and package the result. Layers are compressed by a
// bounded worker pool (cfg.Workers); the output is ordered by the network's
// layer order and is byte-identical regardless of worker count.
func Generate(net *nn.Network, plan *Plan, cfg Config) (*Model, error) {
	if err := (&cfg).fill(); err != nil {
		return nil, err
	}
	byLayer := map[string]Choice{}
	for _, c := range plan.Choices {
		byLayer[c.Layer] = c
	}
	denses := net.DenseLayers()
	for _, fc := range denses {
		if _, ok := byLayer[fc.Name()]; !ok {
			return nil, fmt.Errorf("core: plan has no choice for layer %s", fc.Name())
		}
	}

	blobs := make([]LayerBlob, len(denses))
	errs := make([]error, len(denses))
	workers := cfg.Workers
	if workers > len(denses) {
		workers = len(denses)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for li := range jobs {
				blobs[li], errs[li] = generateLayer(denses[li], byLayer[denses[li].Name()], cfg)
			}
		}()
	}
	for li := range denses {
		jobs <- li
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Model{NetName: net.Name(), Layers: blobs}, nil
}

// generateLayer compresses one fc layer: the codec on the sparse data
// array, best-fit lossless on the index array. Pure function of its inputs,
// which is what makes Generate's output independent of scheduling.
func generateLayer(fc *nn.Dense, c Choice, cfg Config) (LayerBlob, error) {
	id := c.Codec
	if id == 0 {
		id = cfg.Codec
	}
	cdc, err := codec.ByID(id)
	if err != nil {
		return LayerBlob{}, fmt.Errorf("core: layer %s: %w", fc.Name(), err)
	}
	sp := prune.Encode(fc.Weights())
	dataBlob, err := cdc.Compress(sp.Data, cfg.codecOptions(c.EB))
	if err != nil {
		return LayerBlob{}, fmt.Errorf("core: compressing %s: %w", fc.Name(), err)
	}
	comp, idxBlob := lossless.Best(indexBytes(sp))
	return LayerBlob{
		Name:      fc.Name(),
		Rows:      fc.Out,
		Cols:      fc.In,
		EB:        c.EB,
		Codec:     id,
		Bias:      append([]float32(nil), fc.B.W.Data...),
		DataBlob:  dataBlob,
		IndexID:   comp.ID(),
		IndexBlob: idxBlob,
		IndexLen:  len(sp.Index),
	}, nil
}

// DecodeBreakdown reports where decoding time went (paper Figure 7b). With
// parallel decoding the durations are summed across workers, i.e. they are
// CPU time per stage, not wall time.
type DecodeBreakdown struct {
	Lossless    time.Duration // index-array lossless decompression
	Lossy       time.Duration // data-array lossy decompression
	Reconstruct time.Duration // sparse-to-dense matrix reconstruction
}

// DecodedLayer is one reconstructed fc layer.
type DecodedLayer struct {
	Name    string
	Weights []float32 // dense, Rows×Cols
	Bias    []float32
}

// Decode reverses Generate with one worker per CPU: lossless-decompress the
// index arrays, codec-decompress the data arrays, and rebuild each dense
// weight matrix. Layer order matches storage order regardless of workers.
func (m *Model) Decode() ([]DecodedLayer, DecodeBreakdown, error) {
	return m.DecodeWith(runtime.GOMAXPROCS(0))
}

// DecodeWith is Decode with an explicit worker count (≤ 1 decodes
// serially). The decoded layers are identical to a serial decode; only the
// wall time changes.
func (m *Model) DecodeWith(workers int) ([]DecodedLayer, DecodeBreakdown, error) {
	var bd DecodeBreakdown
	out := make([]DecodedLayer, len(m.Layers))
	errs := make([]error, len(m.Layers))
	if workers > len(m.Layers) {
		workers = len(m.Layers)
	}
	if workers < 1 {
		workers = 1
	}
	var mu sync.Mutex
	var failed atomic.Bool // fail fast: corrupt input must not cost a full decode
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for li := range jobs {
				if failed.Load() {
					continue
				}
				dl, lbd, err := decodeLayerBlob(&m.Layers[li])
				out[li], errs[li] = dl, err
				if err != nil {
					failed.Store(true)
				}
				mu.Lock()
				bd.Lossless += lbd.Lossless
				bd.Lossy += lbd.Lossy
				bd.Reconstruct += lbd.Reconstruct
				mu.Unlock()
			}
		}()
	}
	for li := range m.Layers {
		if failed.Load() {
			break
		}
		jobs <- li
	}
	close(jobs)
	wg.Wait()
	// Report the lowest-indexed recorded error; layers after a failure may
	// have been skipped, so only the success path is byte-deterministic.
	for _, err := range errs {
		if err != nil {
			return nil, bd, err
		}
	}
	return out, bd, nil
}

// decodeLayerBlob reconstructs one layer and times each stage.
func decodeLayerBlob(l *LayerBlob) (DecodedLayer, DecodeBreakdown, error) {
	var bd DecodeBreakdown
	t0 := time.Now()
	comp, err := lossless.ByID(l.IndexID)
	if err != nil {
		return DecodedLayer{}, bd, fmt.Errorf("core: layer %s: %w", l.Name, err)
	}
	idx, err := comp.Decompress(l.IndexBlob)
	if err != nil {
		return DecodedLayer{}, bd, fmt.Errorf("core: layer %s index: %w", l.Name, err)
	}
	if len(idx) != l.IndexLen {
		return DecodedLayer{}, bd, fmt.Errorf("%w: layer %s index length %d, want %d", ErrCorrupt, l.Name, len(idx), l.IndexLen)
	}
	t1 := time.Now()
	bd.Lossless = t1.Sub(t0)

	cdc, err := codec.ByID(l.Codec)
	if err != nil {
		return DecodedLayer{}, bd, fmt.Errorf("core: layer %s: %w", l.Name, err)
	}
	data, err := cdc.Decompress(l.DataBlob)
	if err != nil {
		return DecodedLayer{}, bd, fmt.Errorf("core: layer %s data: %w", l.Name, err)
	}
	t2 := time.Now()
	bd.Lossy = t2.Sub(t1)

	if len(data) != len(idx) {
		return DecodedLayer{}, bd, fmt.Errorf("%w: layer %s: %d data values for %d indices", ErrCorrupt, l.Name, len(data), len(idx))
	}
	sp := &prune.Sparse{N: l.Rows * l.Cols, Data: data, Index: idx}
	dense, err := sp.Decode()
	if err != nil {
		return DecodedLayer{}, bd, fmt.Errorf("core: layer %s: %w", l.Name, err)
	}
	bd.Reconstruct = time.Since(t2)
	return DecodedLayer{Name: l.Name, Weights: dense, Bias: append([]float32(nil), l.Bias...)}, bd, nil
}

// Apply loads decoded weights into net's fc layers (matched by name).
func (m *Model) Apply(net *nn.Network) (DecodeBreakdown, error) {
	layers, bd, err := m.Decode()
	if err != nil {
		return bd, err
	}
	for _, dl := range layers {
		found := false
		for _, fc := range net.DenseLayers() {
			if fc.Name() == dl.Name {
				fc.SetWeights(dl.Weights)
				copy(fc.B.W.Data, dl.Bias)
				found = true
				break
			}
		}
		if !found {
			return bd, fmt.Errorf("core: network %s has no layer %s", net.Name(), dl.Name)
		}
	}
	return bd, nil
}
