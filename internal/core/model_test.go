package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/lossless"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// prunedMLP builds a small untrained MLP, prunes it, and returns it.
func prunedMLP(seed uint64) *nn.Network {
	rng := tensor.NewRNG(seed)
	net := nn.NewNetwork("test-mlp",
		nn.NewFlatten("flat"),
		nn.NewDense("ip1", 784, 64, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("ip2", 64, 10, rng),
	)
	prune.Network(net, map[string]float64{"ip1": 0.1, "ip2": 0.3}, 0.1)
	return net
}

func simplePlan(net *nn.Network, eb float64) *Plan {
	p := &Plan{}
	for _, fc := range net.DenseLayers() {
		p.Choices = append(p.Choices, Choice{Layer: fc.Name(), EB: eb})
	}
	return p
}

// prunedConvNet builds a small untrained conv+fc network with every
// weighted layer pruned — the whole-network (LayersAll) test fixture.
// Input shape: [1, 8, 8].
func prunedConvNet(seed uint64) *nn.Network {
	rng := tensor.NewRNG(seed)
	net := nn.NewNetwork("test-conv",
		nn.NewConv2D("conv1", 1, 6, 3, 1, 1, rng), // 8×8
		nn.NewMaxPool2D("pool1", 2, 2),            // →4
		nn.NewReLU("reluc1"),
		nn.NewConv2D("conv2", 6, 8, 3, 1, 1, rng), // 4×4
		nn.NewReLU("reluc2"),
		nn.NewFlatten("flat"), // 8·4·4 = 128
		nn.NewDense("ip1", 128, 32, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("ip2", 32, 10, rng),
	)
	prune.NetworkAll(net, map[string]float64{"ip1": 0.1, "ip2": 0.3}, 0.1, 0.3)
	return net
}

// simplePlanAll is simplePlan over every weighted layer, conv included.
func simplePlanAll(net *nn.Network, eb float64) *Plan {
	p := &Plan{}
	for _, cl := range net.CompressibleLayers() {
		p.Choices = append(p.Choices, Choice{Layer: cl.Name(), EB: eb})
	}
	return p
}

func TestGenerateDecodeErrorBound(t *testing.T) {
	net := prunedMLP(1)
	const eb = 1e-3
	m, err := Generate(net, simplePlan(net, eb), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	layers, _, err := m.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 2 {
		t.Fatalf("decoded %d layers", len(layers))
	}
	for li, dl := range layers {
		orig := net.DenseLayers()[li].Weights()
		if len(dl.Weights) != len(orig) {
			t.Fatalf("%s: %d weights, want %d", dl.Name, len(dl.Weights), len(orig))
		}
		for i := range orig {
			if d := math.Abs(float64(dl.Weights[i]) - float64(orig[i])); d > eb*1.0001+1e-7 {
				t.Fatalf("%s[%d]: error %g exceeds bound %g", dl.Name, i, d, eb)
			}
		}
	}
}

func TestGenerateCompresses(t *testing.T) {
	net := prunedMLP(2)
	m, err := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	var origBytes int
	for _, fc := range net.DenseLayers() {
		origBytes += 4 * len(fc.Weights())
	}
	if ratio := float64(origBytes) / float64(m.TotalBytes()); ratio < 15 {
		t.Fatalf("compression ratio %.1f, want ≥15 for 10%%-pruned layers at eb 1e-2", ratio)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	net := prunedMLP(3)
	m, err := Generate(net, simplePlan(net, 5e-3), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	blob := m.Marshal()
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.NetName != m.NetName || len(got.Layers) != len(m.Layers) {
		t.Fatal("header mismatch")
	}
	for i := range m.Layers {
		a, b := m.Layers[i], got.Layers[i]
		if a.Name != b.Name || a.Kind != b.Kind || a.EB != b.EB {
			t.Fatalf("layer %d metadata mismatch", i)
		}
		if len(a.Shape) != len(b.Shape) {
			t.Fatalf("layer %d shape rank mismatch", i)
		}
		for j := range a.Shape {
			if a.Shape[j] != b.Shape[j] {
				t.Fatalf("layer %d shape mismatch: %v vs %v", i, a.Shape, b.Shape)
			}
		}
		if !bytes.Equal(a.DataBlob, b.DataBlob) || !bytes.Equal(a.IndexBlob, b.IndexBlob) {
			t.Fatalf("layer %d blobs mismatch", i)
		}
		if a.IndexID != b.IndexID || a.IndexLen != b.IndexLen {
			t.Fatalf("layer %d index metadata mismatch", i)
		}
		for j := range a.Bias {
			if a.Bias[j] != b.Bias[j] {
				t.Fatalf("layer %d bias mismatch", i)
			}
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	net := prunedMLP(4)
	m, _ := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	blob := m.Marshal()
	if _, err := Unmarshal(blob[:3]); err == nil {
		t.Fatal("expected error for tiny blob")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := Unmarshal(blob[:len(blob)-7]); err == nil {
		t.Fatal("expected error for truncation")
	}
	bad2 := append([]byte(nil), blob...)
	bad2[4] = 99 // version byte
	if _, err := Unmarshal(bad2); err == nil {
		t.Fatal("expected error for bad version")
	}
}

func TestApplyReconstructsNetwork(t *testing.T) {
	net := prunedMLP(5)
	m, err := Generate(net, simplePlan(net, 1e-3), Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	recon := net.Clone()
	// Wipe the clone's fc weights to prove Apply restores them.
	for _, fc := range recon.DenseLayers() {
		fc.W.W.Zero()
	}
	bd, err := m.Apply(recon)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Lossy == 0 && bd.Lossless == 0 && bd.Reconstruct == 0 {
		t.Fatal("decode breakdown not populated")
	}
	for li, fc := range recon.DenseLayers() {
		orig := net.DenseLayers()[li].Weights()
		var maxd float64
		for i := range orig {
			if d := math.Abs(float64(fc.Weights()[i]) - float64(orig[i])); d > maxd {
				maxd = d
			}
		}
		if maxd > 1e-3*1.0001+1e-7 {
			t.Fatalf("%s: max error %g after Apply", fc.Name(), maxd)
		}
	}
}

func TestApplyUnknownLayer(t *testing.T) {
	net := prunedMLP(6)
	m, _ := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	m.Layers[0].Name = "nonexistent"
	if _, err := m.Apply(net.Clone()); err == nil {
		t.Fatal("expected error for unknown layer")
	}
}

func TestDecodeCorruptIndexID(t *testing.T) {
	net := prunedMLP(7)
	m, _ := Generate(net, simplePlan(net, 1e-2), Config{ExpectedAccuracyLoss: 0.01})
	m.Layers[0].IndexID = lossless.ID(99)
	if _, _, err := m.Decode(); err == nil {
		t.Fatal("expected error for bad lossless id")
	}
}

func TestGenerateMissingChoice(t *testing.T) {
	net := prunedMLP(8)
	plan := &Plan{Choices: []Choice{{Layer: "ip1", EB: 1e-3}}} // ip2 missing
	if _, err := Generate(net, plan, Config{ExpectedAccuracyLoss: 0.01}); err == nil {
		t.Fatal("expected error for missing layer choice")
	}
}
