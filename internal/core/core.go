// Package core implements the DeepSZ framework itself — the paper's primary
// contribution. The four steps (§3.1):
//
//  1. network pruning — performed by package prune; core consumes a
//     pruned, mask-retrained network,
//  2. error bound assessment (Algorithm 1) — Assess sweeps per-layer error
//     bounds, measuring inference-accuracy degradation with exactly one
//     layer reconstructed at a time,
//  3. optimization of the error bound configuration (Algorithm 2) —
//     Optimize runs the knapsack-style dynamic program that picks each
//     layer's bound to minimise total compressed size under the user's
//     expected accuracy loss (or, in expected-ratio mode, to minimise
//     accuracy loss under a size target), and
//  4. generation of the compressed model — Generate emits the container
//     (SZ-compressed data arrays + best-fit losslessly compressed index
//     arrays) that Decode later reverses.
package core

import (
	"fmt"
	"runtime"

	"repro/internal/codec"
	"repro/internal/nn"
)

// Mode selects the optimisation objective (§3.4).
type OptimizeMode uint8

const (
	// ExpectedAccuracy minimises compressed size subject to a bound on the
	// total accuracy loss (the paper's default mode).
	ExpectedAccuracy OptimizeMode = iota
	// ExpectedRatio minimises accuracy loss subject to a compressed-size
	// target derived from Config.TargetRatio.
	ExpectedRatio
)

// LayerSelection picks which weighted layers the pipeline compresses.
type LayerSelection uint8

const (
	// LayersFC compresses fully connected layers only — the paper's scope,
	// and the default (fc weights dominate storage in AlexNet/VGG-era
	// models).
	LayersFC LayerSelection = iota
	// LayersAll compresses every weighted layer, convolutions included —
	// the whole-network generalisation for conv-heavy architectures.
	LayersAll
)

// String returns "fc" or "all".
func (s LayerSelection) String() string {
	if s == LayersAll {
		return "all"
	}
	return "fc"
}

// selects reports whether the selection covers the given layer kind.
func (s LayerSelection) selects(k nn.LayerKind) bool {
	return s == LayersAll || k == nn.KindDense
}

// selectLayers returns net's compressible layers covered by the selection,
// in network order.
func selectLayers(net *nn.Network, sel LayerSelection) []nn.Compressible {
	var out []nn.Compressible
	for _, c := range net.CompressibleLayers() {
		if sel.selects(c.Kind()) {
			out = append(out, c)
		}
	}
	return out
}

// Config controls the DeepSZ pipeline.
type Config struct {
	// Mode selects expected-accuracy (default) or expected-ratio operation.
	Mode OptimizeMode

	// Layers selects the compressed layer set: LayersFC (default,
	// paper-faithful) or LayersAll (every weighted layer, conv included).
	Layers LayerSelection

	// ExpectedAccuracyLoss is ϵ*, the user's acceptable top-1 accuracy loss
	// as a fraction (the paper uses 0.002–0.004 on 50 k-image test sets;
	// scaled experiments use larger values matching their test resolution).
	ExpectedAccuracyLoss float64

	// TargetRatio is the desired overall fc compression ratio for
	// ExpectedRatio mode (original fc bytes ÷ compressed bytes).
	TargetRatio float64

	// DistortionCriterion is the degradation (fraction) beyond which a
	// reconstructed network counts as distorted during the coarse sweep;
	// the paper uses 0.001 (0.1 %).
	DistortionCriterion float64

	// StartErrorBound is the first coarse bound tested (paper default 1e-3,
	// can be lowered to 1e-4 per §3.3).
	StartErrorBound float64

	// MaxErrorBound caps the sweep. §3.4 requires eb < 0.1 so ∆W ≪ W and
	// the linear accuracy-loss model holds; the default cap is 0.1.
	MaxErrorBound float64

	// TestBatch is the evaluation batch size (default 100).
	TestBatch int

	// Workers bounds assessment and generation parallelism (default
	// GOMAXPROCS); each assessment worker owns a private clone of the
	// network's assessed suffix, mirroring the paper's embarrassingly parallel
	// multi-GPU testing, while generation workers compress whole layers
	// independently. Decoding is bounded separately: Model.DecodeWith
	// takes an explicit worker count (Decode uses GOMAXPROCS).
	Workers int

	// Codec selects the lossy back-end for data arrays (0 = codec.IDSZ,
	// the paper's choice). Assessment, optimisation, and generation all use
	// it, so the plan's sizes match the emitted model.
	Codec codec.ID

	// CodecBits is the deepcomp codec's codebook width (0 = 5).
	CodecBits int

	// SZBlockSize / SZRadius tune the SZ compressor (0 = defaults).
	SZBlockSize int
	SZRadius    int

	// DecodedChecksums selects which layers additionally carry a checksum
	// over their decoded dense bytes in the v4 stream (blob CRCs are
	// always present). Default ChecksumCritical: layers whose measured
	// sensitivity reaches CriticalSensitivity.
	DecodedChecksums DecodedChecksumMode

	// CriticalSensitivity is the accuracy-degradation threshold (fraction)
	// above which a layer counts as critical for ChecksumCritical mode
	// (0 = 0.001, matching the paper's distortion criterion: a layer that
	// can distort the network is a layer whose decode must be right).
	CriticalSensitivity float64
}

// DecodedChecksumMode selects decoded-checksum coverage for Generate.
type DecodedChecksumMode uint8

const (
	// ChecksumCritical (default) covers layers whose assessed sensitivity
	// reaches Config.CriticalSensitivity — protection strength follows
	// measured criticality.
	ChecksumCritical DecodedChecksumMode = iota
	// ChecksumAll covers every layer.
	ChecksumAll
	// ChecksumOff emits blob CRCs only.
	ChecksumOff
)

// wantDecodedChecksum reports whether a layer with the given plan choice
// gets a decoded checksum under the configured mode.
func (c *Config) wantDecodedChecksum(ch Choice) bool {
	switch c.DecodedChecksums {
	case ChecksumAll:
		return true
	case ChecksumOff:
		return false
	}
	return ch.Sensitivity >= c.CriticalSensitivity
}

// codecOptions bundles the per-call codec tuning for an error bound.
func (c *Config) codecOptions(eb float64) codec.Options {
	return codec.Options{
		ErrorBound: eb,
		BlockSize:  c.SZBlockSize,
		Radius:     c.SZRadius,
		Bits:       c.CodecBits,
	}
}

func (c *Config) fill() error {
	if c.ExpectedAccuracyLoss <= 0 && c.Mode == ExpectedAccuracy {
		return fmt.Errorf("core: ExpectedAccuracyLoss must be positive, got %v", c.ExpectedAccuracyLoss)
	}
	if c.Mode == ExpectedRatio && c.TargetRatio <= 1 {
		return fmt.Errorf("core: TargetRatio must exceed 1, got %v", c.TargetRatio)
	}
	if c.ExpectedAccuracyLoss <= 0 {
		// Expected-ratio mode still needs a budget scale for assessment
		// termination; default to 2 % (the linearity regime of §3.4).
		c.ExpectedAccuracyLoss = 0.02
	}
	if c.DistortionCriterion <= 0 {
		c.DistortionCriterion = 0.001
	}
	if c.StartErrorBound <= 0 {
		c.StartErrorBound = 1e-3
	}
	if c.MaxErrorBound <= 0 {
		c.MaxErrorBound = 0.1
	}
	if c.TestBatch <= 0 {
		c.TestBatch = 100
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Codec == 0 {
		c.Codec = codec.IDSZ
	}
	if _, err := codec.ByID(c.Codec); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.CodecBits < 0 || c.CodecBits > 16 {
		return fmt.Errorf("core: CodecBits %d out of [0,16]", c.CodecBits)
	}
	if c.CriticalSensitivity <= 0 {
		c.CriticalSensitivity = 0.001
	}
	return nil
}
