package core

// Integrity layer for the .dsz stream and everything decoded from it. A
// fleet that serves every prediction from compressed bytes has three
// distinct corruption surfaces: the stored container (bad disk, torn
// write), the compressed blobs once resident in a process (bit flip in
// page cache or heap), and the decoded dense weights living in a decode
// cache for minutes at a time. Version-4 streams carry CRC32C checksums
// at each granularity — a whole-model digest in the header, a CRC per
// compressed blob, and (for accuracy-critical layers) a checksum over
// the decoded dense bytes — so each surface is verified at the moment
// it is consumed, and a failure is attributed to the surface that
// actually rotted. CRC32C (Castagnoli) is hardware-accelerated on every
// deployment target and detects all burst errors up to 32 bits, which
// is the fault model here (flips, not adversaries).

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// castagnoli is the CRC32C table shared by every integrity check.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crc32c returns the CRC32C checksum of b.
func crc32c(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// CorruptKind classifies where corruption was detected — which copy of
// the data rotted, not merely that something failed.
type CorruptKind uint8

const (
	// CorruptHeader marks container-level damage: bad structure, or a
	// whole-model digest mismatch at Unmarshal.
	CorruptHeader CorruptKind = iota
	// CorruptBlob marks a compressed blob (data or index array) whose
	// stored CRC no longer matches — a storage or resident-blob fault
	// caught before decompression touches the bytes.
	CorruptBlob
	// CorruptDecoded marks a decode whose reconstructed dense bytes
	// mismatch the stream's decoded checksum: the blob CRCs held, so the
	// fault is on the decode path itself.
	CorruptDecoded
	// CorruptCache marks a decoded layer that verified on fill but later
	// failed a resident re-check — an in-memory flip after decode. The
	// cache ejects the entry, so a retry self-heals.
	CorruptCache
)

// String returns the kind's metric label (header, blob, decoded, cache).
func (k CorruptKind) String() string {
	switch k {
	case CorruptBlob:
		return "blob"
	case CorruptDecoded:
		return "decoded"
	case CorruptCache:
		return "cache"
	}
	return "header"
}

// CorruptError pinpoints one detected integrity failure. It matches
// errors.Is(err, ErrCorrupt), so callers that only care about
// "corrupt or not" keep working; errors.As extracts the layer and the
// surface for quarantine and telemetry decisions.
type CorruptError struct {
	Layer  string // offending layer; empty when the whole container is at fault
	Kind   CorruptKind
	Detail string
}

// Error implements error.
func (e *CorruptError) Error() string {
	msg := "core: corrupt model"
	if e.Layer != "" {
		msg += " layer " + e.Layer
	}
	msg += " (" + e.Kind.String() + ")"
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// Is reports ErrCorrupt as a match, keeping every existing
// errors.Is(err, core.ErrCorrupt) check true for typed failures.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// DecodedChecksum returns the CRC32C over a layer's decoded dense
// representation: every weight, then every bias, as little-endian
// float32 bits. Encoding through explicit byte order (rather than an
// in-memory view) makes the checksum a property of the values, portable
// across architectures — the same stream verifies on any reader.
func DecodedChecksum(weights, bias []float32) uint32 {
	var crc uint32
	crc = updateF32(crc, weights)
	return updateF32(crc, bias)
}

// updateF32 folds vals into crc through a fixed scratch buffer, so
// checksumming a multi-megabyte layer allocates nothing.
func updateF32(crc uint32, vals []float32) uint32 {
	var buf [4096]byte
	n := 0
	for _, v := range vals {
		binary.LittleEndian.PutUint32(buf[n:], math.Float32bits(v))
		n += 4
		if n == len(buf) {
			crc = crc32.Update(crc, castagnoli, buf[:n])
			n = 0
		}
	}
	if n > 0 {
		crc = crc32.Update(crc, castagnoli, buf[:n])
	}
	return crc
}

// updateI32 is updateF32 for int32 slices (CSR row pointers).
func updateI32(crc uint32, vals []int32) uint32 {
	var buf [4096]byte
	n := 0
	for _, v := range vals {
		binary.LittleEndian.PutUint32(buf[n:], uint32(v))
		n += 4
		if n == len(buf) {
			crc = crc32.Update(crc, castagnoli, buf[:n])
			n = 0
		}
	}
	if n > 0 {
		crc = crc32.Update(crc, castagnoli, buf[:n])
	}
	return crc
}

// Checksum returns the CRC32C over the layer's resident representation —
// dense weights or CSR arrays, then biases. It is the re-check value a
// cache computes at fill time and compares against during scrubs and
// release-time verification; dense and CSR forms checksum differently
// (they are different bytes), which is fine because the comparison is
// always fill-time against now, same representation both sides.
func (dl *DecodedLayer) Checksum() uint32 {
	if dl.Sparse != nil {
		crc := updateI32(0, dl.Sparse.RowPtr)
		crc = crc32.Update(crc, castagnoli, dl.Sparse.Delta)
		crc = updateF32(crc, dl.Sparse.Val)
		return updateF32(crc, dl.Bias)
	}
	return DecodedChecksum(dl.Weights, dl.Bias)
}
