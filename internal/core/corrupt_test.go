package core

// Corrupted-byte table tests for every stream version: a flip in the
// header, a blob, a stored CRC field, or a truncation must surface as an
// error (typed, for v4's integrity checks) — never as silently wrong
// weights. These are the deterministic complement to the random-mutation
// tests in fuzz_test.go.

import (
	"encoding/binary"
	"errors"
	"testing"
)

// corruptAt returns a copy of blob with one bit flipped at off.
func corruptAt(blob []byte, off int) []byte {
	out := append([]byte(nil), blob...)
	out[off] ^= 0x01
	return out
}

// decodeOutcome classifies what a corrupted stream does end to end:
// rejected at Unmarshal, rejected at Decode, or decoded to values that
// differ from the reference (the only acceptable silent path — pre-v4
// streams cannot detect payload rot).
func decodeOutcome(t *testing.T, blob []byte, ref []DecodedLayer) (unmarshalErr, decodeErr error, differs bool) {
	t.Helper()
	m, err := Unmarshal(blob)
	if err != nil {
		return err, nil, false
	}
	layers, _, err := m.Decode()
	if err != nil {
		return nil, err, false
	}
	if len(layers) != len(ref) {
		return nil, nil, true
	}
	for i := range layers {
		a, b := layers[i], ref[i]
		if a.Name != b.Name || len(a.Weights) != len(b.Weights) || len(a.Bias) != len(b.Bias) {
			return nil, nil, true
		}
		for j := range a.Weights {
			if a.Weights[j] != b.Weights[j] {
				return nil, nil, true
			}
		}
		for j := range a.Bias {
			if a.Bias[j] != b.Bias[j] {
				return nil, nil, true
			}
		}
	}
	return nil, nil, false
}

// TestCorruptionTable flips single bits at structurally meaningful
// offsets of each stream version and checks the reader's verdict.
func TestCorruptionTable(t *testing.T) {
	m := goldenModelV4(t)
	ref, _, err := m.Decode()
	if err != nil {
		t.Fatal(err)
	}
	v1 := marshalV1(t, m)
	v2 := marshalV2(t, m)
	v3 := marshalV3(t, m)
	v4 := m.Marshal()

	// Offsets into the v4 stream, mirroring Marshal's layout.
	digestOff := 4 + 1 + 2 + len(m.NetName)
	l0 := &m.Layers[0]
	nameOff := digestOff + 4 + 2
	flagsOff := nameOff + 2 + len(l0.Name) + 1 + 1 + 4*len(l0.Shape) + 8 + 4 + 4*len(l0.Bias) + 1
	dataBlobOff := flagsOff + 1 + 4
	dataCRCOff := dataBlobOff + len(l0.DataBlob)

	cases := []struct {
		name string
		blob []byte
		// wantDetect: the corruption must be caught (error somewhere).
		// When false, a silent value change is tolerated (pre-v4 payload).
		wantDetect bool
	}{
		{"v1 header flip", corruptAt(v1, 5), false},
		{"v1 blob flip", corruptAt(v1, len(v1)/2), false},
		{"v2 header flip", corruptAt(v2, 5), false},
		{"v2 blob flip", corruptAt(v2, len(v2)/2), false},
		{"v3 header flip", corruptAt(v3, 5), false},
		{"v3 blob flip", corruptAt(v3, len(v3)/2), false},
		{"v4 digest flip", corruptAt(v4, digestOff), true},
		{"v4 header flip", corruptAt(v4, nameOff), true},
		{"v4 flags flip", corruptAt(v4, flagsOff), true},
		{"v4 blob flip", corruptAt(v4, dataBlobOff), true},
		{"v4 stored-CRC flip", corruptAt(v4, dataCRCOff), true},
		{"v4 tail flip", corruptAt(v4, len(v4)-1), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			uErr, dErr, differs := decodeOutcome(t, tc.blob, ref)
			if tc.wantDetect {
				if uErr == nil && dErr == nil {
					t.Fatalf("corruption not detected (differs=%v)", differs)
				}
				err := uErr
				if err == nil {
					err = dErr
				}
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("detected, but not as ErrCorrupt: %v", err)
				}
			} else if uErr == nil && dErr == nil && !differs {
				// A flip the pre-v4 reader neither rejects nor propagates
				// into values would mean the bit wasn't load-bearing —
				// possible for some offsets, but not the chosen ones.
				t.Fatalf("flip had no observable effect")
			}
		})
	}

	// Truncation at every boundary-ish point must error for all versions.
	for _, v := range []struct {
		name string
		blob []byte
	}{{"v1", v1}, {"v2", v2}, {"v3", v3}, {"v4", v4}} {
		for _, cut := range []int{3, 6, len(v.blob) / 2, len(v.blob) - 1} {
			if _, err := Unmarshal(v.blob[:cut]); err == nil {
				t.Fatalf("%s truncated at %d: accepted", v.name, cut)
			}
		}
	}
}

// TestForgedCRCRejectedAtDecode seals a v4 stream around a forged blob
// CRC: Unmarshal accepts it (the digest holds), but DecodeLayer must
// reject the layer with a typed blob-corruption error — the contract is
// "error, never wrong bytes", not "rejected at load".
func TestForgedCRCRejectedAtDecode(t *testing.T) {
	m := goldenModelV4(t)
	v4 := m.Marshal()
	digestOff := 4 + 1 + 2 + len(m.NetName)
	l0 := &m.Layers[0]
	dataCRCOff := digestOff + 4 + 2 + 2 + len(l0.Name) + 1 + 1 + 4*len(l0.Shape) +
		8 + 4 + 4*len(l0.Bias) + 1 + 1 + 4 + len(l0.DataBlob)

	bad := append([]byte(nil), v4...)
	binary.LittleEndian.PutUint32(bad[dataCRCOff:], 0xDEADBEEF)
	binary.LittleEndian.PutUint32(bad[digestOff:], crc32c(bad[digestOff+4:]))

	mm, err := Unmarshal(bad)
	if err != nil {
		t.Fatalf("resealed stream rejected at Unmarshal: %v", err)
	}
	_, err = mm.DecodeLayer(l0.Name)
	if err == nil {
		t.Fatal("forged blob CRC not caught at decode")
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("not a CorruptError: %v", err)
	}
	if ce.Kind != CorruptBlob || ce.Layer != l0.Name {
		t.Fatalf("got kind=%v layer=%q, want blob/%q", ce.Kind, ce.Layer, l0.Name)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatal("CorruptError does not match ErrCorrupt")
	}
}

// TestDecodedChecksumCatchesBlobConsistentFault forges a v4 layer whose
// blob CRC and digest are both consistent with a tampered payload — the
// storage-level checks all pass, and only the decoded checksum can catch
// it. This is the criticality-aware layer of defense: for checksummed
// layers, even a fault that rewrites blob and CRC together cannot produce
// silently wrong weights.
func TestDecodedChecksumCatchesBlobConsistentFault(t *testing.T) {
	m := goldenModelV4(t)
	l0 := &m.Layers[0]
	// Tamper with the payload, then make the blob CRC match the tampered
	// bytes. Marshal reseals the digest automatically.
	l0.DataBlob[len(l0.DataBlob)/2] ^= 0x10
	l0.DataCRC = crc32c(l0.DataBlob)

	mm, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatalf("consistent forgery rejected at Unmarshal: %v", err)
	}
	_, err = mm.DecodeLayer(l0.Name)
	if err == nil {
		t.Fatal("blob-consistent fault not caught")
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("not a CorruptError: %v", err)
	}
	// The codec may reject the tampered blob outright (blob kind) or
	// decode it to different values (decoded kind); both are detections.
	if ce.Kind != CorruptDecoded && ce.Kind != CorruptBlob {
		t.Fatalf("got kind %v, want decoded or blob", ce.Kind)
	}
}

// TestCorruptErrorTyping pins the errors.Is/As contract serve and the
// gateway rely on.
func TestCorruptErrorTyping(t *testing.T) {
	err := error(&CorruptError{Layer: "ip1", Kind: CorruptDecoded, Detail: "x"})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatal("CorruptError must match ErrCorrupt")
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Layer != "ip1" || ce.Kind != CorruptDecoded {
		t.Fatal("errors.As lost the layer/kind")
	}
	for kind, want := range map[CorruptKind]string{
		CorruptHeader: "header", CorruptBlob: "blob",
		CorruptDecoded: "decoded", CorruptCache: "cache",
	} {
		if kind.String() != want {
			t.Fatalf("kind %d stringifies as %q, want %q", kind, kind.String(), want)
		}
	}
}
