package dataset

import (
	"testing"
)

func TestSynthMNISTShapes(t *testing.T) {
	s := SynthMNIST(50, 1)
	if s.Len() != 50 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Images.Shape; got[0] != 50 || got[1] != 1 || got[2] != 28 || got[3] != 28 {
		t.Fatalf("shape = %v", got)
	}
	if s.Classes != 10 {
		t.Fatalf("Classes = %d", s.Classes)
	}
	for i, l := range s.Labels {
		if l < 0 || l >= 10 {
			t.Fatalf("label %d = %d out of range", i, l)
		}
	}
}

func TestSynthMNISTDeterministic(t *testing.T) {
	a := SynthMNIST(20, 7)
	b := SynthMNIST(20, 7)
	for i := range a.Images.Data {
		if a.Images.Data[i] != b.Images.Data[i] {
			t.Fatal("same seed must give identical images")
		}
	}
	c := SynthMNIST(20, 8)
	same := true
	for i := range a.Images.Data {
		if a.Images.Data[i] != c.Images.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

func TestSynthMNISTHasInk(t *testing.T) {
	s := SynthMNIST(100, 2)
	for i := 0; i < s.Len(); i++ {
		img := s.Image(i)
		var ink int
		for _, v := range img.Data {
			if v > 0.5 {
				ink++
			}
		}
		if ink < 10 {
			t.Fatalf("image %d (digit %d) has almost no ink (%d px)", i, s.Labels[i], ink)
		}
	}
}

func TestSynthMNISTClassesDiffer(t *testing.T) {
	// Mean images of two different digits should differ substantially.
	s := SynthMNIST(400, 3)
	mean := make([][]float64, 10)
	count := make([]int, 10)
	for k := range mean {
		mean[k] = make([]float64, 28*28)
	}
	for i := 0; i < s.Len(); i++ {
		img := s.Image(i)
		l := s.Labels[i]
		count[l]++
		for p, v := range img.Data {
			mean[l][p] += float64(v)
		}
	}
	var dist float64
	for p := range mean[0] {
		a := mean[0][p] / float64(count[0])
		b := mean[1][p] / float64(count[1])
		dist += (a - b) * (a - b)
	}
	if dist < 1 {
		t.Fatalf("digit 0 and 1 prototypes too similar: dist=%v", dist)
	}
}

func TestBatch(t *testing.T) {
	s := SynthMNIST(30, 4)
	x, labels := s.Batch([]int{3, 7, 11})
	if x.Shape[0] != 3 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	if labels[1] != s.Labels[7] {
		t.Fatal("batch labels misaligned")
	}
	img := s.Image(7)
	for p, v := range img.Data {
		if x.Data[1*28*28+p] != v {
			t.Fatal("batch image data misaligned")
		}
	}
}

func TestSynthImagesShapes(t *testing.T) {
	s := SynthImages(40, 5, 3, 16, 16, 9)
	if s.Len() != 40 || s.Classes != 5 {
		t.Fatalf("Len=%d Classes=%d", s.Len(), s.Classes)
	}
	if got := s.Images.Shape; got[1] != 3 || got[2] != 16 || got[3] != 16 {
		t.Fatalf("shape = %v", got)
	}
}

func TestSynthImagesClassSeparation(t *testing.T) {
	s := SynthImages(600, 4, 3, 12, 12, 10)
	// Nearest-class-mean classification should beat chance comfortably:
	// the task must be learnable.
	sz := 3 * 12 * 12
	means := make([][]float64, 4)
	count := make([]int, 4)
	for k := range means {
		means[k] = make([]float64, sz)
	}
	half := s.Len() / 2
	for i := 0; i < half; i++ {
		l := s.Labels[i]
		count[l]++
		for p := 0; p < sz; p++ {
			means[l][p] += float64(s.Images.Data[i*sz+p])
		}
	}
	for k := range means {
		for p := range means[k] {
			means[k][p] /= float64(count[k])
		}
	}
	correct := 0
	for i := half; i < s.Len(); i++ {
		best, bestD := -1, 0.0
		for k := range means {
			var d float64
			for p := 0; p < sz; p++ {
				diff := float64(s.Images.Data[i*sz+p]) - means[k][p]
				d += diff * diff
			}
			if best == -1 || d < bestD {
				best, bestD = k, d
			}
		}
		if best == s.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(s.Len()-half)
	if acc < 0.6 {
		t.Fatalf("nearest-mean accuracy %.2f; task not learnable", acc)
	}
}

func TestSynthImagesPanicsOnBadClasses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SynthImages(10, 1, 1, 8, 8, 1)
}
