// Package dataset provides the synthetic workloads that stand in for MNIST
// and ImageNet (the module is offline; see DESIGN.md §1). Both generators
// produce learnable-but-noisy classification tasks so that inference
// accuracy degrades smoothly as compression error is injected into the
// network — the property DeepSZ's error-bound assessment depends on.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Set is a labelled image classification dataset. Images has shape
// [N, C, H, W]; Labels[i] is the class of image i.
type Set struct {
	Images  *tensor.Tensor
	Labels  []int
	Classes int
}

// Len returns the number of examples.
func (s *Set) Len() int { return len(s.Labels) }

// Image returns a view (not a copy) of image i as a [C, H, W] tensor.
func (s *Set) Image(i int) *tensor.Tensor {
	c, h, w := s.Images.Shape[1], s.Images.Shape[2], s.Images.Shape[3]
	sz := c * h * w
	return tensor.FromSlice(s.Images.Data[i*sz:(i+1)*sz], c, h, w)
}

// Batch copies examples idx into a [len(idx), C, H, W] tensor plus labels.
func (s *Set) Batch(idx []int) (*tensor.Tensor, []int) {
	c, h, w := s.Images.Shape[1], s.Images.Shape[2], s.Images.Shape[3]
	sz := c * h * w
	x := tensor.New(len(idx), c, h, w)
	labels := make([]int, len(idx))
	for bi, i := range idx {
		copy(x.Data[bi*sz:(bi+1)*sz], s.Images.Data[i*sz:(i+1)*sz])
		labels[bi] = s.Labels[i]
	}
	return x, labels
}

// digitGlyphs are 7×11 stroke masks for the ten digits; '#' marks ink.
var digitGlyphs = [10][]string{
	{" ##### ", "#     #", "#     #", "#     #", "#     #", "#     #", "#     #", "#     #", "#     #", "#     #", " ##### "},
	{"   #   ", "  ##   ", " # #   ", "   #   ", "   #   ", "   #   ", "   #   ", "   #   ", "   #   ", "   #   ", " ##### "},
	{" ##### ", "#     #", "      #", "      #", "     # ", "    #  ", "   #   ", "  #    ", " #     ", "#      ", "#######"},
	{" ##### ", "#     #", "      #", "      #", "  #### ", "      #", "      #", "      #", "      #", "#     #", " ##### "},
	{"#   #  ", "#   #  ", "#   #  ", "#   #  ", "#   #  ", "#######", "    #  ", "    #  ", "    #  ", "    #  ", "    #  "},
	{"#######", "#      ", "#      ", "#      ", "###### ", "      #", "      #", "      #", "      #", "#     #", " ##### "},
	{" ##### ", "#     #", "#      ", "#      ", "###### ", "#     #", "#     #", "#     #", "#     #", "#     #", " ##### "},
	{"#######", "      #", "     # ", "     # ", "    #  ", "    #  ", "   #   ", "   #   ", "  #    ", "  #    ", "  #    "},
	{" ##### ", "#     #", "#     #", "#     #", " ##### ", "#     #", "#     #", "#     #", "#     #", "#     #", " ##### "},
	{" ##### ", "#     #", "#     #", "#     #", "#     #", " ######", "      #", "      #", "      #", "#     #", " ##### "},
}

const (
	mnistSide    = 28
	mnistClasses = 10
)

// SynthMNIST renders n synthetic 28×28 grayscale digit images with random
// translation, per-image ink intensity, and additive Gaussian noise. The
// generator is deterministic in seed.
func SynthMNIST(n int, seed uint64) *Set {
	rng := tensor.NewRNG(seed)
	images := tensor.New(n, 1, mnistSide, mnistSide)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		digit := rng.Intn(mnistClasses)
		labels[i] = digit
		img := images.Data[i*mnistSide*mnistSide : (i+1)*mnistSide*mnistSide]
		renderDigit(rng, img, digit)
	}
	return &Set{Images: images, Labels: labels, Classes: mnistClasses}
}

func renderDigit(rng *tensor.RNG, img []float32, digit int) {
	glyph := digitGlyphs[digit]
	gh, gw := len(glyph), len(glyph[0])
	// Random placement inside the 28×28 canvas with margin jitter.
	maxOffY := mnistSide - 2*gh // glyph drawn at 2× vertical scale
	maxOffX := mnistSide - 2*gw
	offY := 2 + rng.Intn(maxOffY-3)
	offX := 2 + rng.Intn(maxOffX-3)
	ink := 0.7 + 0.3*rng.Float64()
	for gy := 0; gy < gh; gy++ {
		for gx := 0; gx < gw; gx++ {
			if glyph[gy][gx] != '#' {
				continue
			}
			// 2×2 block per glyph cell gives ~14×22 strokes.
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					y, x := offY+2*gy+dy, offX+2*gx+dx
					img[y*mnistSide+x] = float32(ink)
				}
			}
		}
	}
	// Additive noise over the whole canvas.
	for p := range img {
		img[p] += float32(rng.NormFloat64() * 0.08)
	}
}

// SynthImages generates an n-example, classes-way task of size c×h×w. Each
// class is a smooth low-frequency prototype; examples are the prototype plus
// white noise and a random global brightness shift. This is the ImageNet
// stand-in for the scaled AlexNet/VGG experiments.
//
// The class prototypes are derived from seed, so two calls with different
// seeds define different tasks. To draw a train and a test set from the
// same task, use SynthImagesSplit.
func SynthImages(n, classes, c, h, w int, seed uint64) *Set {
	train, _ := SynthImagesSplit(n, 0, classes, c, h, w, seed)
	return train
}

// SynthImagesSplit draws a train set and a test set from one shared task
// (identical class prototypes, disjoint noise).
func SynthImagesSplit(trainN, testN, classes, c, h, w int, seed uint64) (train, test *Set) {
	if classes < 2 {
		panic(fmt.Sprintf("dataset: need at least 2 classes, got %d", classes))
	}
	rng := tensor.NewRNG(seed)
	protos := make([][]float32, classes)
	for k := range protos {
		protos[k] = smoothProto(rng, c, h, w)
	}
	sample := func(n int) *Set {
		images := tensor.New(n, c, h, w)
		labels := make([]int, n)
		sz := c * h * w
		for i := 0; i < n; i++ {
			k := rng.Intn(classes)
			labels[i] = k
			img := images.Data[i*sz : (i+1)*sz]
			bright := float32(rng.NormFloat64() * 0.2)
			for p := range img {
				img[p] = protos[k][p] + bright + float32(rng.NormFloat64()*0.8)
			}
		}
		return &Set{Images: images, Labels: labels, Classes: classes}
	}
	return sample(trainN), sample(testN)
}

// smoothProto builds a low-frequency pattern from a handful of random 2-D
// cosine components per channel.
func smoothProto(rng *tensor.RNG, c, h, w int) []float32 {
	proto := make([]float32, c*h*w)
	for ch := 0; ch < c; ch++ {
		type wave struct{ fy, fx, phase, amp float64 }
		waves := make([]wave, 3)
		for i := range waves {
			waves[i] = wave{
				fy:    (rng.Float64() - 0.5) * 0.8,
				fx:    (rng.Float64() - 0.5) * 0.8,
				phase: rng.Float64() * 6.283,
				amp:   0.3 + 0.4*rng.Float64(),
			}
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				var v float64
				for _, wv := range waves {
					v += wv.amp * math.Cos(wv.fy*float64(y)+wv.fx*float64(x)+wv.phase)
				}
				proto[ch*h*w+y*w+x] = float32(v)
			}
		}
	}
	return proto
}
