package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/httputil"
	"repro/internal/telemetry"
)

// The gateway speaks the same API surface as a single deepszd, so a
// client (or a test) cannot tell whether it is talking to one replica
// or a fleet:
//
//	GET  /healthz                        gateway liveness (+ fleet summary + build info)
//	GET  /v1/models                      proxied from a healthy replica
//	POST /v1/models/{name}/predict       routed, hedged, admission-bounded
//	GET  /v1/stats                       per-replica health/latency/shed counters
//	GET  /v1/traces                      kept-trace index (gateway-side spans)
//	GET  /v1/traces/{id}                 fleet-wide timeline: gateway spans + replica spans
//	GET  /metrics                        Prometheus text exposition (gateway's own)
//	GET  /metrics/fleet                  federated exposition: every healthy replica, backend-labelled
func (g *Gateway) routes() {
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("GET /healthz", g.handleHealth)
	g.mux.HandleFunc("GET /v1/models", g.handleModels)
	g.mux.HandleFunc("POST /v1/models/{name}/predict", g.handlePredict)
	g.mux.HandleFunc("GET /v1/stats", g.handleStats)
	g.mux.HandleFunc("GET /v1/traces", g.handleTraces)
	g.mux.HandleFunc("GET /v1/traces/{id}", g.handleTraceByID)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /metrics/fleet", g.handleFleetMetrics)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.tel.WriteExposition(w)
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// HealthyBackends counts the replicas currently admitted to routing.
func (g *Gateway) HealthyBackends() int {
	n := 0
	for _, r := range g.replicas {
		if r.healthy.Load() {
			n++
		}
	}
	return n
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	healthy := g.HealthyBackends()
	status := http.StatusOK
	state := "ok"
	if healthy == 0 {
		// The gateway process is alive, but it cannot do its job — an
		// upstream balancer should stop sending traffic here.
		status = http.StatusServiceUnavailable
		state = "no healthy backends"
	}
	httputil.WriteJSON(w, status, map[string]any{
		"status":           state,
		"uptime_seconds":   time.Since(g.start).Seconds(),
		"backends":         len(g.replicas),
		"healthy_backends": healthy,
		"in_flight":        g.inFlight.Load(),
		"build":            telemetry.BuildInfo(),
		"gomaxprocs":       runtime.GOMAXPROCS(0),
	})
}

// handleModels proxies the model listing from the first replica that
// answers, healthy ones first: the fleet serves the same model set, so
// any replica's answer is the fleet's answer.
func (g *Gateway) handleModels(w http.ResponseWriter, r *http.Request) {
	var lastErr error
	for _, healthyPass := range []bool{true, false} {
		for _, rep := range g.replicas {
			if rep.healthy.Load() != healthyPass {
				continue
			}
			// Bound each attempt like a probe: a backend that wedges on
			// /v1/models while still answering /healthz must not pin the
			// client for the transport's full minute before the walk moves
			// on to a replica that can answer instantly.
			attempt, cancel := context.WithTimeout(r.Context(), g.opt.ProbeTimeout)
			body, ctype, err := g.modelsFrom(attempt, rep)
			cancel()
			if err != nil {
				lastErr = err
				continue
			}
			w.Header().Set("Content-Type", ctype)
			w.WriteHeader(http.StatusOK)
			w.Write(body)
			return
		}
	}
	httputil.WriteError(w, http.StatusBadGateway, "no backend could list models: %v", lastErr)
}

// modelsFrom fetches one replica's /v1/models listing.
func (g *Gateway) modelsFrom(ctx context.Context, rep *replica) (body []byte, ctype string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/v1/models", nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := g.opt.Client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if body, err = io.ReadAll(resp.Body); err != nil {
		return nil, "", fmt.Errorf("%s: %w", rep.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("%s answered %d", rep.base, resp.StatusCode)
	}
	return body, resp.Header.Get("Content-Type"), nil
}

func (g *Gateway) handlePredict(w http.ResponseWriter, r *http.Request) {
	// Admission first: a saturated gateway answers cheaply and honestly
	// before it reads a byte of body.
	in := g.inFlight.Add(1)
	defer g.inFlight.Add(-1)
	name := r.PathValue("name")
	if g.opt.MaxPending > 0 && in > int64(g.opt.MaxPending) {
		g.shed.Add(1)
		// Shed requests burn SLO budget: an overloaded fleet that reported
		// 100% attainment would be lying to exactly the person the SLO is
		// for.
		g.slo.Record(name, 0, false)
		w.Header().Set("Retry-After", strconv.Itoa(int((g.opt.RetryAfter+time.Second-1)/time.Second)))
		httputil.WriteError(w, http.StatusServiceUnavailable, "gateway at capacity: %d predicts pending (max %d)", in-1, g.opt.MaxPending)
		return
	}
	g.admitted.Add(1)

	// The body is buffered because a hedge replays it verbatim; the cap
	// mirrors deepszd's own -max-body-bytes guard so the gateway can
	// never be made to buffer what its backends would refuse anyway.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.opt.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httputil.WriteError(w, status, "bad request body: %v", err)
		return
	}

	// One trace per client request, minted here (or honoured when the
	// client brought its own): every backend attempt — hedges included —
	// carries this ID, the replica logs it on slow requests, and the
	// client gets it back in the response header. The winning attempt's
	// body is relayed verbatim, so the stage breakdown a traced client
	// sees is exactly the winner's — a losing hedge cannot pollute it.
	traceID := r.Header.Get(telemetry.TraceHeader)
	if traceID == "" {
		traceID = telemetry.MintID()
	}
	w.Header().Set(telemetry.TraceHeader, traceID)
	rt := g.newReqTrace(traceID, name)

	a, err := g.predict(r.Context(), name, rt, body)
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone; nobody reads this. 499 is the
			// client-closed-request convention — internal bookkeeping only.
			g.finishRequest(rt, 499, nil)
			return
		}
		g.finishRequest(rt, http.StatusBadGateway, nil)
		httputil.WriteError(w, http.StatusBadGateway, "%v", err)
		return
	}
	if a.ctype != "" {
		w.Header().Set("Content-Type", a.ctype)
	}
	if a.retryAfter != "" {
		w.Header().Set("Retry-After", a.retryAfter)
	}
	w.WriteHeader(a.status)
	w.Write(a.body)
	g.finishRequest(rt, a.status, a)
}

// finishRequest settles one client request's observability: scores it
// against the SLO, decides whether its trace is kept (sampled, slow,
// errored, quarantined), and — the slow-request contract — logs the
// assembled cross-tier evidence when the end-to-end latency crossed
// SlowRequest: trace ID, winning backend, every attempt's outcome, and
// the winner's per-stage breakdown as relayed by the replica.
func (g *Gateway) finishRequest(rt *reqTrace, status int, winner *attempt) {
	total := time.Since(rt.start)
	g.slo.Record(rt.model, total, status == http.StatusOK)
	slow := g.opt.SlowRequest > 0 && total >= g.opt.SlowRequest
	var keep []string
	if rt.recording {
		keep = append(keep, telemetry.KeepSampled)
	}
	if slow {
		keep = append(keep, telemetry.KeepSlow)
	}
	if winner != nil && winner.quarantined {
		keep = append(keep, telemetry.KeepQuarantined)
	} else if status >= 500 {
		keep = append(keep, telemetry.KeepError)
	}
	rt.finish(status, strings.Join(keep, ","), total)
	if slow {
		args := []any{
			"trace", rt.id,
			"model", rt.model,
			"status", status,
			"total_ns", total.Nanoseconds(),
			"attempts", rt.attemptsSummary(),
		}
		if winner != nil {
			args = append(args, "backend", winner.rep.base, "stages", winner.stages)
		}
		g.opt.Logger.Warn("slow request", args...)
	}
}

// handleTraces serves the gateway's kept-trace index, newest first
// (?n= bounds the count).
func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil {
			n = parsed
		}
	}
	httputil.WriteJSON(w, http.StatusOK, struct {
		Traces []telemetry.TraceSummary `json:"traces"`
	}{Traces: g.store.Index(n)})
}

// handleTraceByID assembles the fleet-wide timeline for one trace: the
// gateway's own spans name which backends were attempted, so each of
// those is asked for its spans for the same ID and the union — sorted by
// start time — is one cross-tier tree. Replica fetches are best-effort:
// a replica that dropped the trace (sampling disagreement is impossible,
// but eviction and restarts are not) just contributes nothing.
func (g *Gateway) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := g.store.Get(id)
	if !ok {
		httputil.WriteError(w, http.StatusNotFound, "trace %q not stored on this gateway", id)
		return
	}
	seen := map[string]bool{}
	for _, sp := range st.Spans {
		base := sp.Attrs["backend"]
		if base == "" || seen[base] {
			continue
		}
		seen[base] = true
		ctx, cancel := context.WithTimeout(r.Context(), g.opt.ProbeTimeout)
		spans, err := g.traceFrom(ctx, base, id)
		cancel()
		if err != nil {
			g.opt.Logger.Debug("trace fetch failed", "trace", id, "backend", base, "err", err)
			continue
		}
		st.Spans = append(st.Spans, spans...)
	}
	sort.SliceStable(st.Spans, func(i, j int) bool { return st.Spans[i].Start.Before(st.Spans[j].Start) })
	httputil.WriteJSON(w, http.StatusOK, st)
}

// traceFrom fetches one replica's stored spans for a trace ID.
func (g *Gateway) traceFrom(ctx context.Context, base, id string) ([]telemetry.Span, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/traces/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.opt.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%s answered %d", base, resp.StatusCode)
	}
	var st telemetry.StoredTrace
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("%s: %w", base, err)
	}
	return st.Spans, nil
}

// handleFleetMetrics scrapes every healthy replica's /metrics, validates
// each exposition with the strict parser, and re-exports the union with
// a backend label on every sample — one scrape target for the whole
// fleet, and a replica emitting malformed text is skipped and logged
// rather than poisoning the merged page.
func (g *Gateway) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	var scrapes []telemetry.FederatedScrape
	for _, rep := range g.replicas {
		if !rep.healthy.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), g.opt.ProbeTimeout)
		sc, err := g.scrapeFrom(ctx, rep)
		cancel()
		if err != nil {
			g.opt.Logger.Warn("fleet scrape failed", "backend", rep.base, "err", err)
			continue
		}
		scrapes = append(scrapes, telemetry.FederatedScrape{Backend: rep.base, Scrape: sc})
	}
	var buf bytes.Buffer
	if err := telemetry.WriteFederated(&buf, scrapes); err != nil {
		httputil.WriteError(w, http.StatusInternalServerError, "federate: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// scrapeFrom fetches and strict-parses one replica's /metrics page.
func (g *Gateway) scrapeFrom(ctx context.Context, rep *replica) (*telemetry.Scrape, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.opt.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("answered %d", resp.StatusCode)
	}
	return telemetry.ParseExposition(body)
}

// ReplicaStats is one backend's view in /v1/stats, as measured by the
// gateway itself (probe RTTs and proxied-predict latencies, not the
// backend's self-reported numbers).
type ReplicaStats struct {
	Backend  string `json:"backend"`
	Healthy  bool   `json:"healthy"`
	Pending  int64  `json:"pending"`
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Hedged   uint64 `json:"hedged"`
	Wins     uint64 `json:"wins"`
	// Canceled counts attempts cut short because a sibling attempt won —
	// the per-backend face of the hedging spend.
	Canceled      uint64  `json:"canceled"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	LastProbeMs   float64 `json:"last_probe_ms"`
	ProbeFailures uint64  `json:"probe_failures"`
	Ejections     uint64  `json:"ejections"`
}

// Stats is the gateway's /v1/stats payload.
type Stats struct {
	UptimeSeconds   float64        `json:"uptime_seconds"`
	Backends        []ReplicaStats `json:"backends"`
	HealthyBackends int            `json:"healthy_backends"`
	InFlight        int64          `json:"in_flight"`
	MaxPending      int            `json:"max_pending"`
	Admitted        uint64         `json:"admitted"`
	Shed            uint64         `json:"shed"`
	Hedges          uint64         `json:"hedges"`
	Failovers       uint64         `json:"failovers"`
	// ModelQuarantines counts quarantine 503 signals accepted from
	// backends (new (model, backend) pairs routed around).
	ModelQuarantines uint64 `json:"model_quarantines"`
	// HedgeWastedSeconds is the total wall time of attempts whose answer
	// was thrown away — what the hedging tail-latency win costs.
	HedgeWastedSeconds float64 `json:"hedge_wasted_seconds"`
	// SLO is the fleet-edge per-model attainment and burn-rate report;
	// absent unless -slo-target-ms configured one.
	SLO *telemetry.SLOReport `json:"slo,omitempty"`
}

// Stats snapshots the gateway and per-replica counters.
func (g *Gateway) Stats() Stats {
	s := Stats{
		UptimeSeconds:      time.Since(g.start).Seconds(),
		HealthyBackends:    g.HealthyBackends(),
		InFlight:           g.inFlight.Load(),
		MaxPending:         g.opt.MaxPending,
		Admitted:           g.admitted.Load(),
		Shed:               g.shed.Load(),
		Hedges:             g.hedges.Load(),
		Failovers:          g.failovers.Load(),
		ModelQuarantines:   g.modelQuarantines.Load(),
		HedgeWastedSeconds: float64(g.hedgeWastedNs.Load()) / 1e9,
		SLO:                g.slo.Report(),
	}
	for _, r := range g.replicas {
		rs := ReplicaStats{
			Backend:       r.base,
			Healthy:       r.healthy.Load(),
			Pending:       r.pending.Load(),
			Requests:      r.requests.Load(),
			Errors:        r.errors.Load(),
			Hedged:        r.hedged.Load(),
			Wins:          r.wins.Load(),
			Canceled:      r.canceled.Load(),
			LastProbeMs:   float64(r.lastProbeNs.Load()) / 1e6,
			ProbeFailures: r.probeFails.Load(),
			Ejections:     r.ejections.Load(),
		}
		if n := r.latN.Load(); n > 0 {
			rs.MeanLatencyMs = float64(r.latNs.Load()) / float64(n) / 1e6
		}
		s.Backends = append(s.Backends, rs)
	}
	return s
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	httputil.WriteJSON(w, http.StatusOK, g.Stats())
}
