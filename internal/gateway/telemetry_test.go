package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// scrape fetches and strictly parses url's /metrics exposition.
func scrape(t testing.TB, url string) (*telemetry.Scrape, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	s, err := telemetry.ParseExposition(raw)
	if err != nil {
		t.Fatalf("invalid exposition from %s: %v\n%s", url, err, raw)
	}
	return s, raw
}

// TestGatewayTracePropagationUnderHedging locks the tracing contract
// across the hedge path: the gateway mints one trace ID per client
// request, stamps every attempt — the slow primary and the hedge — with
// that same ID, and relays the winner's body verbatim, so the stage
// breakdown the client sees is the winner's alone.
func TestGatewayTracePropagationUnderHedging(t *testing.T) {
	type seen struct {
		mu  sync.Mutex
		ids []string
	}
	record := func(s *seen, id string) {
		s.mu.Lock()
		s.ids = append(s.ids, id)
		s.mu.Unlock()
	}
	// Fake backends echo the trace ID they received and a marker decode
	// value, so the response body identifies both the attempt's trace and
	// which backend produced it.
	backend := func(s *seen, decodeNs int64, delay time.Duration) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				w.Write([]byte(`{"status":"ok"}`)) // health probes
				return
			}
			id := r.Header.Get(telemetry.TraceHeader)
			record(s, id)
			time.Sleep(delay)
			w.Header().Set(telemetry.TraceHeader, id)
			fmt.Fprintf(w, `{"outputs":[[1]],"argmax":[0],"trace":{"id":%q,"stages_ns":{"decode":%d}}}`, id, decodeNs)
		})
	}
	var slowSeen, fastSeen seen
	slowTS := httptest.NewServer(backend(&slowSeen, 111, 400*time.Millisecond))
	defer slowTS.Close()
	fastTS := httptest.NewServer(backend(&fastSeen, 222, 0))
	defer fastTS.Close()

	g, err := New([]string{slowTS.URL, fastTS.URL}, Options{
		ProbeInterval: 50 * time.Millisecond,
		HedgeAfter:    25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// A model whose rendezvous primary is the slow backend: the fast
	// answer can only arrive via the hedge.
	name := ""
	for i := 0; i < 100; i++ {
		cand := fmt.Sprintf("trace-%d", i)
		if g.rank(cand)[0].base == slowTS.URL {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no candidate model ranked the slow backend first")
	}

	gw := httptest.NewServer(g)
	defer gw.Close()
	resp, err := http.Post(gw.URL+"/v1/models/"+name+"/predict", "application/json",
		strings.NewReader(`{"inputs":[[1]],"trace":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	headerID := resp.Header.Get(telemetry.TraceHeader)
	if headerID == "" {
		t.Fatal("gateway did not mint a trace ID")
	}
	var pr struct {
		Trace telemetry.Breakdown `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Trace.ID != headerID {
		t.Fatalf("body trace ID %q != response header ID %q", pr.Trace.ID, headerID)
	}
	// The winner is the fast hedge: its marker decode value, not the slow
	// primary's, reaches the client.
	if pr.Trace.StagesNs["decode"] != 222 {
		t.Fatalf("client saw decode_ns=%d, want the winning hedge's 222 (losing attempt must not pollute)", pr.Trace.StagesNs["decode"])
	}

	// Both attempts carried the same gateway-minted ID.
	for _, s := range []struct {
		name string
		seen *seen
	}{{"slow", &slowSeen}, {"fast", &fastSeen}} {
		s.seen.mu.Lock()
		ids := append([]string(nil), s.seen.ids...)
		s.seen.mu.Unlock()
		if len(ids) == 0 {
			t.Fatalf("%s backend never saw the predict", s.name)
		}
		for _, id := range ids {
			if id != headerID {
				t.Fatalf("%s backend saw trace ID %q, want %q on every attempt", s.name, id, headerID)
			}
		}
	}
	if s := g.Stats(); s.Hedges == 0 {
		t.Fatalf("no hedge fired: %+v", s)
	}
}

// syncBuffer is a goroutine-safe io.Writer for capturing slog output
// from concurrent handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestGatewayTraceReachesReplicaSlowLog is the end-to-end tracing
// acceptance test: a predict through the gateway to a real replica must
// land in the replica's slow-request log under the gateway-minted trace
// ID, with real decode time recorded on a cold cache.
func TestGatewayTraceReachesReplicaSlowLog(t *testing.T) {
	net, m := buildModel(t, 120)
	reg := serve.NewRegistry(0, serve.BatchOptions{})
	defer reg.Close()
	if _, err := reg.Add("m", m, net, []int{1, 8, 8}); err != nil {
		t.Fatal(err)
	}
	var logBuf syncBuffer
	srv := serve.NewServerWith(reg, serve.ServerOptions{
		SlowRequestThreshold: time.Nanosecond, // log every request
		Logger:               slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	rep := httptest.NewServer(srv)
	defer rep.Close()

	g, err := New([]string{rep.URL}, Options{HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	code, resp, _ := postPredict(t, gw.URL, "m", testRows(1, 121))
	if code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	traceID := resp.Header.Get(telemetry.TraceHeader)
	if traceID == "" {
		t.Fatal("gateway did not return a trace ID")
	}

	var entry struct {
		Msg      string `json:"msg"`
		Trace    string `json:"trace"`
		Model    string `json:"model"`
		DecodeNs int64  `json:"decode_ns"`
		KernelNs int64  `json:"kernel_ns"`
		TotalNs  int64  `json:"total_ns"`
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if line == "" {
			continue
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("replica log line is not JSON: %q: %v", line, err)
		}
		if entry.Msg == "slow request" && entry.Trace == traceID {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("gateway trace ID %q never appeared in the replica slow log:\n%s", traceID, logBuf.String())
	}
	if entry.Model != "m" {
		t.Fatalf("slow log model %q, want m", entry.Model)
	}
	if entry.DecodeNs <= 0 {
		t.Fatalf("cold-cache slow log reports decode_ns=%d, want > 0", entry.DecodeNs)
	}
	if entry.TotalNs <= 0 {
		t.Fatalf("slow log total_ns=%d, want > 0", entry.TotalNs)
	}
}
