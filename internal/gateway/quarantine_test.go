package gateway

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httputil"
	"repro/internal/nn"
)

// TestGatewayQuarantineFailover locks the quarantine routing signal end
// to end: a backend whose copy of a model is corrupt answers 503 with the
// quarantine header, the gateway fails the request over to the model's
// other affinity replica (the client sees a correct 200), and the
// (model, backend) pair is routed around — without touching the same
// backend's other models — until the TTL expires.
func TestGatewayQuarantineFailover(t *testing.T) {
	names := []string{"m0", "m1"}
	net0, m0 := buildModel(t, 70)
	net1, m1 := buildModel(t, 71)
	nets := []*nn.Network{net0, net1}
	// Each replica gets its own round-tripped copy of every model:
	// corrupting one replica's blob must not touch the other replica (or
	// the reference) through a shared pointer — exactly like separate
	// processes with separate memory.
	clone := func(m *core.Model) *core.Model {
		mm, err := core.Unmarshal(m.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		return mm
	}
	reps := []*testReplica{
		newCluster(t, 1, names, nets, []*core.Model{clone(m0), clone(m1)})[0],
		newCluster(t, 1, names, nets, []*core.Model{clone(m0), clone(m1)})[0],
	}

	g, err := New(backendURLs(reps), Options{
		ProbeInterval: time.Hour, // probes out of the picture: health never flips
		HedgeAfter:    -1,        // failover only, so attempt counts are pure routing
		QuarantineTTL: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Corrupt m0's blob on the replica the gateway ranks first for it, so
	// the very first routed attempt hits the corruption.
	first := g.rank("m0")[0]
	var bad, good *testReplica
	for _, r := range reps {
		if r.ts.URL == first.base {
			bad = r
		} else {
			good = r
		}
	}
	e, ok := bad.reg.Get("m0")
	if !ok {
		t.Fatal("m0 missing from the corrupt replica")
	}
	blob := e.Model().Layers[0].DataBlob
	blob[len(blob)/2] ^= 0xFF

	rows := testRows(2, 7)
	want := reference(t, nets[0], m0, rows)
	checkM0 := func(body []byte) {
		t.Helper()
		got := parseOutputs(t, body)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("row %d logit %d: %v, want %v", i, j, got[i][j], want[i][j])
				}
			}
		}
	}

	gw := httptest.NewServer(g)
	defer gw.Close()

	// First predict: the corrupt replica 503s, the gateway fails over, the
	// client sees a correct answer and no quarantine header.
	code, resp, body := postPredict(t, gw.URL, "m0", rows)
	if code != http.StatusOK {
		t.Fatalf("predict through failover: status %d (%s)", code, body)
	}
	if resp.Header.Get(httputil.QuarantineHeader) != "" {
		t.Fatal("winning answer leaked the loser's quarantine header")
	}
	checkM0(body)
	if got := g.Stats().ModelQuarantines; got != 1 {
		t.Fatalf("model_quarantines %d, want 1", got)
	}
	badM0 := bad.counter.get("m0")
	if badM0 == 0 {
		t.Fatal("the corrupt replica was never attempted; the test fixture is wrong")
	}

	// While quarantined, m0 traffic avoids the corrupt replica entirely;
	// its other model still serves there.
	for i := 0; i < 5; i++ {
		code, _, body := postPredict(t, gw.URL, "m0", rows)
		if code != http.StatusOK {
			t.Fatalf("predict %d during quarantine: status %d (%s)", i, code, body)
		}
		checkM0(body)
	}
	if got := bad.counter.get("m0"); got != badM0 {
		t.Fatalf("quarantined pair still attempted: %d -> %d", badM0, got)
	}
	if ranked := g.rank("m1"); ranked[len(ranked)-1] == nil {
		t.Fatal("unreachable")
	}
	if code, _, body := postPredict(t, gw.URL, "m1", rows); code != http.StatusOK {
		t.Fatalf("unrelated model m1: status %d (%s)", code, body)
	}
	if n := g.quarantinedPairs(); n != 1 {
		t.Fatalf("quarantined pairs %d, want 1 (m0 on one backend)", n)
	}

	// After the TTL the pair is probed with real traffic again: the replica
	// still 503s (its artifact never healed), so the request fails over —
	// correct answer, and the quarantine is re-noted.
	time.Sleep(250 * time.Millisecond)
	if n := g.quarantinedPairs(); n != 0 {
		t.Fatalf("quarantine did not expire: %d pairs", n)
	}
	code, _, body = postPredict(t, gw.URL, "m0", rows)
	if code != http.StatusOK {
		t.Fatalf("predict after TTL expiry: status %d (%s)", code, body)
	}
	checkM0(body)
	if got := g.Stats().ModelQuarantines; got != 2 {
		t.Fatalf("model_quarantines %d after re-noting, want 2", got)
	}
	if good.counter.get("m0") < 6 {
		t.Fatalf("clean replica served %d m0 predicts, want all of them", good.counter.get("m0"))
	}
}
