package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// buildModel compresses one small pruned MLP (64→32→10, input [1,8,8]);
// distinct seeds give distinct weights, so routing mix-ups change the
// answers and the correctness checks catch them.
func buildModel(t testing.TB, seed uint64) (*nn.Network, *core.Model) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	net := nn.NewNetwork("test-mlp",
		nn.NewFlatten("flat"),
		nn.NewDense("ip1", 64, 32, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("ip2", 32, 10, rng),
	)
	prune.Network(net, map[string]float64{"ip1": 0.2, "ip2": 0.4}, 0.1)
	plan := &core.Plan{}
	for _, fc := range net.DenseLayers() {
		plan.Choices = append(plan.Choices, core.Choice{Layer: fc.Name(), EB: 1e-3})
	}
	m, err := core.Generate(net, plan, core.Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return net, m
}

// reference is the decoded network's forward pass: the ground truth
// every routed predict must match bit for bit.
func reference(t testing.TB, net *nn.Network, m *core.Model, rows [][]float32) [][]float32 {
	t.Helper()
	ref := net.Clone()
	if _, err := m.Apply(ref); err != nil {
		t.Fatal(err)
	}
	flat := make([]float32, 0, len(rows)*64)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	y := ref.Forward(tensor.FromSlice(flat, len(rows), 1, 8, 8), false)
	classes := y.Len() / len(rows)
	out := make([][]float32, len(rows))
	for i := range out {
		out[i] = y.Data[i*classes : (i+1)*classes]
	}
	return out
}

func testRows(n int, seed uint64) [][]float32 {
	rng := tensor.NewRNG(seed)
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = make([]float32, 64)
		rng.FillNormal(rows[i], 0, 1)
	}
	return rows
}

// predictCounter records which models each backend actually served —
// the observability the affinity and ejection assertions hang off.
type predictCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func (c *predictCounter) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/predict") {
			model := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/v1/models/"), "/predict")
			c.mu.Lock()
			if c.counts == nil {
				c.counts = map[string]int{}
			}
			c.counts[model]++
			c.mu.Unlock()
		}
		h.ServeHTTP(w, r)
	})
}

func (c *predictCounter) get(model string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[model]
}

func (c *predictCounter) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.counts {
		n += v
	}
	return n
}

type testReplica struct {
	ts      *httptest.Server
	reg     *serve.Registry
	counter *predictCounter
}

// newCluster boots n in-process serve.Server replicas, each carrying
// every model in ms under its name.
func newCluster(t testing.TB, n int, names []string, nets []*nn.Network, ms []*core.Model) []*testReplica {
	t.Helper()
	reps := make([]*testReplica, n)
	for i := range reps {
		reg := serve.NewRegistry(0, serve.BatchOptions{})
		for j, name := range names {
			if _, err := reg.Add(name, ms[j], nets[j], []int{1, 8, 8}); err != nil {
				t.Fatal(err)
			}
		}
		c := &predictCounter{}
		ts := httptest.NewServer(c.wrap(serve.NewServer(reg)))
		t.Cleanup(func() { ts.Close(); reg.Close() })
		reps[i] = &testReplica{ts: ts, reg: reg, counter: c}
	}
	return reps
}

func backendURLs(reps []*testReplica) []string {
	urls := make([]string, len(reps))
	for i, r := range reps {
		urls[i] = r.ts.URL
	}
	return urls
}

func postPredict(t testing.TB, base, model string, rows [][]float32) (int, *http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(struct {
		Inputs [][]float32 `json:"inputs"`
	}{rows})
	resp, err := http.Post(base+"/v1/models/"+model+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("predict %s: %v", model, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp, buf.Bytes()
}

func parseOutputs(t testing.TB, body []byte) [][]float32 {
	t.Helper()
	var pr struct {
		Outputs [][]float32 `json:"outputs"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("bad predict response %q: %v", body, err)
	}
	return pr.Outputs
}

// TestGatewayClusterIntegration is the acceptance test: an in-process
// gateway over three serve.Server replicas must (1) answer correctly
// under concurrent load, (2) keep answering with zero failed requests
// while a replica is killed, ejected, and routed around, and (3) keep
// each model's traffic on at most AffinityWidth replicas.
func TestGatewayClusterIntegration(t *testing.T) {
	const nModels = 5
	names := make([]string, nModels)
	nets := make([]*nn.Network, nModels)
	ms := make([]*core.Model, nModels)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
		nets[i], ms[i] = buildModel(t, uint64(40+i))
	}
	reps := newCluster(t, 3, names, nets, ms)

	// EjectAfter 3 at 25ms probes leaves a ~75ms window where the killed
	// replica is still routed to — phase 3's load lands inside it and must
	// survive on failover alone.
	g, err := New(backendURLs(reps), Options{
		ProbeInterval: 25 * time.Millisecond,
		EjectAfter:    3,
		ReadmitAfter:  2,
		HedgeAfter:    -1, // hedging off: affinity counts must be pure routing
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	rows := testRows(3, 99)
	want := make([][][]float32, nModels)
	for i := range names {
		want[i] = reference(t, nets[i], ms[i], rows)
	}
	check := func(model int, body []byte) error {
		got := parseOutputs(t, body)
		for i := range want[model] {
			for j := range want[model][i] {
				if got[i][j] != want[model][i][j] {
					return fmt.Errorf("model %s row %d logit %d: %v, want %v",
						names[model], i, j, got[i][j], want[model][i][j])
				}
			}
		}
		return nil
	}

	// Phase 1: concurrent load across every model, all answers correct.
	var failed atomic.Int64
	load := func(requestsPerClient int) {
		var wg sync.WaitGroup
		for c := 0; c < 6; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < requestsPerClient; i++ {
					model := (c + i) % nModels
					code, _, body := postPredict(t, gw.URL, names[model], rows)
					if code != http.StatusOK {
						failed.Add(1)
						t.Errorf("predict %s: status %d (%s)", names[model], code, body)
						continue
					}
					if err := check(model, body); err != nil {
						failed.Add(1)
						t.Error(err)
					}
				}
			}(c)
		}
		wg.Wait()
	}
	load(10)
	if failed.Load() != 0 {
		t.Fatalf("%d failed requests with all replicas healthy", failed.Load())
	}

	// Phase 2: rendezvous affinity — every model's traffic stayed on at
	// most AffinityWidth (2) of the 3 replicas.
	for mi, name := range names {
		hit := 0
		for _, r := range reps {
			if r.counter.get(name) > 0 {
				hit++
			}
		}
		if hit == 0 || hit > 2 {
			t.Fatalf("model %s served by %d replicas, want 1..2 (affinity violated)", names[mi], hit)
		}
	}

	// Phase 3: kill the replica that owns the most traffic, keep loading.
	// Requests racing the still-unejected dead replica fail over, so the
	// client sees zero failures before, during, and after ejection.
	victim := 0
	for i, r := range reps {
		if r.counter.total() > reps[victim].counter.total() {
			victim = i
		}
	}
	victimURL := reps[victim].ts.URL
	reps[victim].ts.Close()
	load(5) // rides the failover path while probes are still ejecting
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := g.Stats()
		ejected := false
		for _, b := range s.Backends {
			if b.Backend == victimURL && !b.Healthy {
				ejected = true
			}
		}
		if ejected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed replica never ejected: %+v", s)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 4: post-ejection load routes cleanly around the corpse — zero
	// failures, and not one attempt goes to the ejected backend.
	attemptsBefore := uint64(0)
	for _, b := range g.Stats().Backends {
		if b.Backend == victimURL {
			attemptsBefore = b.Requests
		}
	}
	load(5)
	if failed.Load() != 0 {
		t.Fatalf("%d failed requests across kill + ejection (want zero)", failed.Load())
	}
	s := g.Stats()
	if s.HealthyBackends != 2 {
		t.Fatalf("healthy backends %d, want 2", s.HealthyBackends)
	}
	for _, b := range s.Backends {
		if b.Backend == victimURL && b.Requests != attemptsBefore {
			t.Fatalf("ejected backend still attempted: %d → %d requests", attemptsBefore, b.Requests)
		}
	}
	if s.Failovers == 0 {
		t.Fatal("kill survived without a single failover — the dead replica was never routed around")
	}

	// Phase 5: observability. Both tiers' /metrics must parse under the
	// strict exposition parser, the gateway must report per-backend health
	// (the ejected victim at 0), and a second scrape after more load must
	// only ever move counters forward. With DEEPSZ_METRICS_SNAPSHOT set,
	// the raw expositions are written there for the CI artifact.
	survivor := (victim + 1) % len(reps)
	gwScrape, gwRaw := scrape(t, gw.URL+"/metrics")
	repScrape, repRaw := scrape(t, reps[survivor].ts.URL+"/metrics")

	healthByBackend := map[string]float64{}
	for _, sm := range gwScrape.Family("deepszgw_backend_healthy").Samples {
		for _, l := range sm.Labels {
			if l.Name == "backend" {
				healthByBackend[l.Value] = sm.Value
			}
		}
	}
	if len(healthByBackend) != len(reps) {
		t.Fatalf("gateway reports health for %d backends, want %d: %v", len(healthByBackend), len(reps), healthByBackend)
	}
	if healthByBackend[victimURL] != 0 {
		t.Fatalf("ejected backend reported healthy=%v, want 0", healthByBackend[victimURL])
	}
	if healthByBackend[reps[survivor].ts.URL] != 1 {
		t.Fatalf("live backend reported healthy=%v, want 1", healthByBackend[reps[survivor].ts.URL])
	}
	for _, fam := range []string{"deepszgw_admitted_total", "deepszgw_backend_requests_total", "deepszgw_backend_duration_seconds", "deepszgw_build_info", "deepszgw_model_quarantines_total", "deepszgw_quarantined_model_backends"} {
		if gwScrape.Family(fam) == nil {
			t.Fatalf("gateway family %q missing from exposition", fam)
		}
	}
	for _, fam := range []string{"deepsz_cache_events_total", "deepsz_stage_duration_seconds", "deepsz_predict_requests_total"} {
		if repScrape.Family(fam) == nil {
			t.Fatalf("replica family %q missing from exposition", fam)
		}
	}

	load(3)
	gwScrape2, _ := scrape(t, gw.URL+"/metrics")
	repScrape2, _ := scrape(t, reps[survivor].ts.URL+"/metrics")
	if err := telemetry.CheckMonotonic(gwScrape, gwScrape2); err != nil {
		t.Fatalf("gateway counters moved backwards between scrapes: %v", err)
	}
	if err := telemetry.CheckMonotonic(repScrape, repScrape2); err != nil {
		t.Fatalf("replica counters moved backwards between scrapes: %v", err)
	}

	if dir := os.Getenv("DEEPSZ_METRICS_SNAPSHOT"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "gateway.prom"), gwRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "replica.prom"), repRaw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGatewayRankDeterministicAffinity pins the rendezvous ranking: the
// same model always ranks the fleet identically, different models
// spread across it, and the affinity prefix is AffinityWidth wide.
func TestGatewayRankDeterministicAffinity(t *testing.T) {
	g, err := New([]string{
		"http://replica-a:8080", "http://replica-b:8080",
		"http://replica-c:8080", "http://replica-d:8080",
	}, Options{HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	primaries := map[string]bool{}
	for i := 0; i < 64; i++ {
		model := fmt.Sprintf("model-%d", i)
		a, b := g.rank(model), g.rank(model)
		if len(a) != 4 || len(b) != 4 {
			t.Fatalf("rank returned %d/%d replicas, want 4", len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("rank(%s) not deterministic at position %d", model, j)
			}
		}
		primaries[a[0].base] = true
	}
	// 64 models over 4 replicas: rendezvous must not funnel everything to
	// one primary.
	if len(primaries) < 3 {
		t.Fatalf("only %d distinct primaries over 64 models — hash is not spreading", len(primaries))
	}
}

// TestGatewayHedgesSlowBackend: a backend that sits on a predict past
// HedgeAfter gets its request duplicated to the next-ranked replica,
// and the client gets the fast answer.
func TestGatewayHedgesSlowBackend(t *testing.T) {
	net, m := buildModel(t, 60)
	slowReg := serve.NewRegistry(0, serve.BatchOptions{})
	fastReg := serve.NewRegistry(0, serve.BatchOptions{})
	defer slowReg.Close()
	defer fastReg.Close()
	var delay atomic.Int64
	slowSrv := serve.NewServer(slowReg)
	slowTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			time.Sleep(time.Duration(delay.Load()))
		}
		slowSrv.ServeHTTP(w, r)
	}))
	defer slowTS.Close()
	fastTS := httptest.NewServer(serve.NewServer(fastReg))
	defer fastTS.Close()

	g, err := New([]string{slowTS.URL, fastTS.URL}, Options{
		ProbeInterval: 50 * time.Millisecond,
		HedgeAfter:    25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Pick a model name whose rendezvous primary is the slow replica, so
	// the hedge is the only way to the fast one.
	name := ""
	for i := 0; i < 100; i++ {
		cand := fmt.Sprintf("hedge-%d", i)
		if g.rank(cand)[0].base == slowTS.URL {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no candidate model ranked the slow replica first (hash broken?)")
	}
	for _, reg := range []*serve.Registry{slowReg, fastReg} {
		if _, err := reg.Add(name, m, net, []int{1, 8, 8}); err != nil {
			t.Fatal(err)
		}
	}
	delay.Store(int64(400 * time.Millisecond))

	gw := httptest.NewServer(g)
	defer gw.Close()
	rows := testRows(2, 61)
	want := reference(t, net, m, rows)
	t0 := time.Now()
	code, _, body := postPredict(t, gw.URL, name, rows)
	elapsed := time.Since(t0)
	if code != http.StatusOK {
		t.Fatalf("hedged predict status %d (%s)", code, body)
	}
	got := parseOutputs(t, body)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("hedged answer wrong at row %d logit %d", i, j)
			}
		}
	}
	s := g.Stats()
	if s.Hedges == 0 {
		t.Fatalf("no hedge fired against a %v-slow primary (elapsed %v): %+v", 400*time.Millisecond, elapsed, s)
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("hedge did not rescue latency: %v elapsed against a 400ms-slow primary", elapsed)
	}
}

// TestGatewayShedsAtMaxPending: predicts over the gateway's admission
// bound get 503 + Retry-After while admitted ones complete.
func TestGatewayShedsAtMaxPending(t *testing.T) {
	net, m := buildModel(t, 70)
	reg := serve.NewRegistry(0, serve.BatchOptions{})
	defer reg.Close()
	if _, err := reg.Add("m", m, net, []int{1, 8, 8}); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(reg)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			time.Sleep(150 * time.Millisecond)
		}
		srv.ServeHTTP(w, r)
	}))
	defer slow.Close()

	g, err := New([]string{slow.URL}, Options{MaxPending: 1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	rows := testRows(1, 71)
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 5; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, resp, _ := postPredict(t, gw.URL, "m", rows)
			switch code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusServiceUnavailable:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("shed without Retry-After")
				}
				shed.Add(1)
			default:
				t.Errorf("unexpected status %d", code)
			}
		}()
	}
	wg.Wait()
	if ok.Load() < 1 || shed.Load() < 1 {
		t.Fatalf("ok=%d shed=%d, want at least one of each", ok.Load(), shed.Load())
	}
	if s := g.Stats(); s.Shed != uint64(shed.Load()) || s.InFlight != 0 {
		t.Fatalf("stats shed=%d in_flight=%d, want shed=%d in_flight=0", s.Shed, s.InFlight, shed.Load())
	}
}

// TestGatewayRejectsOversizedBody: the gateway refuses to buffer a body
// its backends would refuse anyway.
func TestGatewayRejectsOversizedBody(t *testing.T) {
	net, m := buildModel(t, 80)
	reg := serve.NewRegistry(0, serve.BatchOptions{})
	defer reg.Close()
	if _, err := reg.Add("m", m, net, []int{1, 8, 8}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(reg))
	defer ts.Close()
	g, err := New([]string{ts.URL}, Options{MaxBodyBytes: 2048, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	if code, _, _ := postPredict(t, gw.URL, "m", testRows(16, 81)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", code)
	}
	if code, _, _ := postPredict(t, gw.URL, "m", testRows(1, 82)); code != http.StatusOK {
		t.Fatalf("in-bounds body status %d, want 200", code)
	}
}

// TestGatewayHealthAndModels: the gateway reports fleet health on its
// own /healthz and proxies /v1/models; client errors pass through
// untouched (they are authoritative, not retriable).
func TestGatewayHealthAndModels(t *testing.T) {
	net, m := buildModel(t, 90)
	reps := newCluster(t, 2, []string{"m"}, []*nn.Network{net}, []*core.Model{m})
	g, err := New(backendURLs(reps), Options{ProbeInterval: 20 * time.Millisecond, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	resp, err := http.Get(gw.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status          string `json:"status"`
		Backends        int    `json:"backends"`
		HealthyBackends int    `json:"healthy_backends"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Backends != 2 {
		t.Fatalf("healthz %d %+v", resp.StatusCode, health)
	}

	resp, err = http.Get(gw.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Models []struct {
			Name string `json:"name"`
		} `json:"models"`
	}
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(list.Models) != 1 || list.Models[0].Name != "m" {
		t.Fatalf("models %d %+v", resp.StatusCode, list)
	}

	// An unknown model is a 404 relayed from the backend, not a failover
	// storm: each replica is asked at most once.
	if code, _, _ := postPredict(t, gw.URL, "nope", testRows(1, 91)); code != http.StatusNotFound {
		t.Fatalf("unknown model status %d, want 404", code)
	}

	// Kill the whole fleet: probes eject everyone, gateway goes unhealthy.
	for _, r := range reps {
		r.ts.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.HealthyBackends() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never fully ejected: %+v", g.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err = http.Get(gw.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with zero healthy backends: %d, want 503", resp.StatusCode)
	}
}

// shedBackend is a fake replica at maximum load: every predict is shed
// with 503 + Retry-After, like serve.Server over a full admission bound.
func shedBackend(retryAfter string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/predict") {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", retryAfter)
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"overloaded: 256 predicts pending"}`))
			return
		}
		w.WriteHeader(http.StatusOK)
	})
}

// TestGatewayExhaustionRelays503: when every affinity replica sheds, the
// client must get the replicas' own 503 with its Retry-After and body
// relayed — the backoff hint survives the failover sweep — not a
// synthesized gateway error.
func TestGatewayExhaustionRelays503(t *testing.T) {
	a := httptest.NewServer(shedBackend("7"))
	defer a.Close()
	b := httptest.NewServer(shedBackend("7"))
	defer b.Close()

	g, err := New([]string{a.URL, b.URL}, Options{HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	code, resp, body := postPredict(t, gw.URL, "m", testRows(1, 95))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("fleet-wide shed status %d, want 503 (body %q)", code, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want the replicas' %q relayed", got, "7")
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Fatalf("body %q, want the replica's shed body relayed", body)
	}
}

// TestGatewayExhaustionPrefers503OverTransport: a replica that answered —
// even with a 5xx — beats a replica that died in transport, regardless of
// which the failover sweep reached last. Several model names are routed so
// rendezvous ranking visits both attempt orders; every answer must be the
// shedder's 503 + Retry-After, never a synthesized transport-error 502.
func TestGatewayExhaustionPrefers503OverTransport(t *testing.T) {
	shed := httptest.NewServer(shedBackend("3"))
	defer shed.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("test server not hijackable")
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		conn.Close() // mid-request connection drop: a pure transport error
	}))
	defer dead.Close()

	g, err := New([]string{shed.URL, dead.URL}, Options{HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	for i := 0; i < 8; i++ {
		model := fmt.Sprintf("m%d", i) // vary the rendezvous rank order
		code, resp, body := postPredict(t, gw.URL, model, testRows(1, 96))
		if code != http.StatusServiceUnavailable {
			t.Fatalf("model %s: status %d (body %q), want the shedder's 503 regardless of attempt order", model, code, body)
		}
		if got := resp.Header.Get("Retry-After"); got != "3" {
			t.Fatalf("model %s: Retry-After %q, want the shedder's %q relayed", model, got, "3")
		}
	}
}
