package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// tracedReplica boots one serve.Server that samples every request, its
// predict path optionally delayed — the deterministic slow primary the
// hedging assertions need.
func tracedReplica(t testing.TB, delay time.Duration) (*httptest.Server, *serve.Registry) {
	t.Helper()
	reg := serve.NewRegistry(0, serve.BatchOptions{})
	h := http.Handler(serve.NewServerWith(reg, serve.ServerOptions{TraceSampleRate: 1}))
	if delay > 0 {
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/predict") {
				time.Sleep(delay)
			}
			inner.ServeHTTP(w, r)
		})
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() { ts.Close(); reg.Close() })
	return ts, reg
}

func getStoredTrace(t testing.TB, base, id string) (telemetry.StoredTrace, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st telemetry.StoredTrace
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp.StatusCode
}

func spansNamed(spans []telemetry.Span, name string) []telemetry.Span {
	var out []telemetry.Span
	for _, sp := range spans {
		if sp.Name == name || strings.HasPrefix(sp.Name, name) {
			out = append(out, sp)
		}
	}
	return out
}

// TestGatewayTraceAssembly is the tentpole acceptance test: one
// gateway-minted trace ID must yield one assembled timeline spanning
// both tiers via GET /v1/traces/{id} on the gateway — the gateway root
// span, two attempt spans (hedging deterministically induced by a slow
// primary), the winning replica's stage spans, and its per-layer decode
// spans, all linked by parent span IDs. The losing attempt must be
// recorded as canceled with its wall time on the wasted-hedge counter.
func TestGatewayTraceAssembly(t *testing.T) {
	net, m := buildModel(t, 200)
	slowTS, slowReg := tracedReplica(t, 300*time.Millisecond)
	fastTS, fastReg := tracedReplica(t, 0)

	g, err := New([]string{slowTS.URL, fastTS.URL}, Options{
		ProbeInterval:   time.Hour, // health probing out of the picture
		HedgeAfter:      10 * time.Millisecond,
		TraceSampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// A model name whose rendezvous primary is the slow replica, so the
	// winner can only arrive via the hedge and the primary is cancelled.
	name := ""
	for i := 0; i < 100; i++ {
		cand := fmt.Sprintf("asm-%d", i)
		if g.rank(cand)[0].base == slowTS.URL {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no candidate model ranked the slow replica first")
	}
	for _, reg := range []*serve.Registry{slowReg, fastReg} {
		if _, err := reg.Add(name, m, net, []int{1, 8, 8}); err != nil {
			t.Fatal(err)
		}
	}

	gw := httptest.NewServer(g)
	defer gw.Close()
	code, resp, _ := postPredict(t, gw.URL, name, testRows(2, 201))
	if code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	traceID := resp.Header.Get(telemetry.TraceHeader)
	if traceID == "" {
		t.Fatal("gateway did not mint a trace ID")
	}

	// The cancelled loser's span lands asynchronously (its goroutine
	// unwinds after the winner's response), and the winning replica
	// stores its spans after writing its response body — poll until the
	// assembled timeline is complete.
	var st telemetry.StoredTrace
	deadline := time.Now().Add(10 * time.Second)
	for {
		var status int
		st, status = getStoredTrace(t, gw.URL, traceID)
		if status == http.StatusOK &&
			len(spansNamed(st.Spans, "gateway.attempt")) >= 2 &&
			len(spansNamed(st.Spans, "decode.")) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("assembled timeline never completed (status %d): %+v", status, st.Spans)
		}
		time.Sleep(10 * time.Millisecond)
	}

	roots := spansNamed(st.Spans, "deepszgw.predict")
	if len(roots) != 1 {
		t.Fatalf("want exactly one gateway root span, got %d", len(roots))
	}
	root := roots[0]
	if root.TraceID != traceID || root.Parent != "" {
		t.Fatalf("malformed root span: %+v", root)
	}

	attempts := spansNamed(st.Spans, "gateway.attempt")
	var winner, canceled *telemetry.Span
	for i := range attempts {
		a := &attempts[i]
		if a.Parent != root.SpanID {
			t.Fatalf("attempt span parented to %q, want gateway root %q", a.Parent, root.SpanID)
		}
		switch a.Attrs["outcome"] {
		case "win":
			winner = a
		case "canceled":
			canceled = a
		}
	}
	if winner == nil || winner.Attrs["backend"] != fastTS.URL {
		t.Fatalf("no winning attempt on the fast replica: %+v", attempts)
	}
	if canceled == nil || canceled.Attrs["backend"] != slowTS.URL {
		t.Fatalf("the slow primary's attempt was not recorded as canceled: %+v", attempts)
	}

	// The winning replica's spans joined the timeline and link under the
	// winning attempt.
	repRoots := spansNamed(st.Spans, "deepszd.predict")
	var repRoot *telemetry.Span
	for i := range repRoots {
		if repRoots[i].Parent == winner.SpanID {
			repRoot = &repRoots[i]
		}
	}
	if repRoot == nil {
		t.Fatalf("no replica root span parented under the winning attempt %q: %+v", winner.SpanID, repRoots)
	}
	for _, want := range []string{"stage.decode", "stage.kernel"} {
		found := false
		for _, sp := range spansNamed(st.Spans, want) {
			if sp.Parent == repRoot.SpanID {
				found = true
			}
		}
		if !found {
			t.Fatalf("no %s span under the replica root", want)
		}
	}
	for _, sp := range spansNamed(st.Spans, "decode.") {
		if sp.Attrs["codec"] == "" || sp.Attrs["outcome"] == "" {
			t.Fatalf("decode span missing codec/outcome attrs: %+v", sp)
		}
	}

	// Satellite contract: the cancelled loser's latency is on the books.
	stats := g.Stats()
	if stats.HedgeWastedSeconds <= 0 {
		t.Fatalf("hedge_wasted_seconds = %v, want > 0 after a cancelled loser", stats.HedgeWastedSeconds)
	}
	cancelTotal := uint64(0)
	for _, rs := range stats.Backends {
		cancelTotal += rs.Canceled
	}
	if cancelTotal == 0 {
		t.Fatal("no backend recorded a canceled attempt")
	}

	// The index lists the trace too.
	idxResp, err := http.Get(gw.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer idxResp.Body.Close()
	var idx struct {
		Traces []telemetry.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(idxResp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range idx.Traces {
		if s.ID == traceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s missing from /v1/traces index", traceID)
	}
}

// TestGatewayFleetMetrics locks the federation contract: /metrics/fleet
// merges every healthy replica's exposition under a backend label, the
// merged page survives the strict parser, counters only move forward
// between scrapes, exemplars round-trip from the replicas, and the
// fleet-edge SLO tracker reports on the gateway's own page. With
// DEEPSZ_TRACE_SNAPSHOT set, an assembled trace and the federated page
// are written there for the CI artifact.
func TestGatewayFleetMetrics(t *testing.T) {
	net, m := buildModel(t, 210)
	repA, regA := tracedReplica(t, 0)
	repB, regB := tracedReplica(t, 0)
	for _, reg := range []*serve.Registry{regA, regB} {
		if _, err := reg.Add("fm", m, net, []int{1, 8, 8}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := New([]string{repA.URL, repB.URL}, Options{
		ProbeInterval:   time.Hour,
		HedgeAfter:      -1,
		TraceSampleRate: 1,
		SLOTarget:       time.Second,
		SLOObjective:    0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	var lastTrace string
	for i := 0; i < 4; i++ {
		code, resp, _ := postPredict(t, gw.URL, "fm", testRows(2, uint64(211+i)))
		if code != http.StatusOK {
			t.Fatalf("predict %d status %d", i, code)
		}
		lastTrace = resp.Header.Get(telemetry.TraceHeader)
	}

	fleet1, raw1 := scrape(t, gw.URL+"/metrics/fleet")

	// Every sample carries the backend label, and replica-side families
	// appear once per backend.
	backends := map[string]bool{}
	fam := fleet1.Family("deepsz_uptime_seconds")
	if fam == nil {
		t.Fatalf("federated page is missing the replicas' deepsz_uptime_seconds:\n%s", raw1)
	}
	for _, sm := range fam.Samples {
		for _, l := range sm.Labels {
			if l.Name == "backend" {
				backends[l.Value] = true
			}
		}
	}
	for _, want := range []string{repA.URL, repB.URL} {
		if !backends[want] {
			t.Fatalf("federated deepsz_uptime_seconds has no backend=%q sample (got %v)", want, backends)
		}
	}
	// Exemplars survive federation: the replicas sample at rate 1, so
	// their latency buckets carry trace_id exemplars into the merged page.
	if !strings.Contains(string(raw1), ` # {trace_id="`) {
		t.Fatalf("federated page carries no exemplars:\n%s", raw1)
	}

	// More traffic, second scrape: federated counters only move forward.
	for i := 0; i < 3; i++ {
		if code, _, _ := postPredict(t, gw.URL, "fm", testRows(2, uint64(221+i))); code != http.StatusOK {
			t.Fatalf("predict status %d", code)
		}
	}
	fleet2, _ := scrape(t, gw.URL+"/metrics/fleet")
	if err := telemetry.CheckMonotonic(fleet1, fleet2); err != nil {
		t.Fatalf("federated counters moved backwards between scrapes: %v", err)
	}

	// The fleet-edge SLO shows up on the gateway's own exposition.
	gwScrape, _ := scrape(t, gw.URL+"/metrics")
	att := gwScrape.Family("deepszgw_slo_attainment")
	if att == nil || len(att.Samples) == 0 {
		t.Fatal("gateway /metrics has no deepszgw_slo_attainment samples after scored traffic")
	}
	sawModel := false
	for _, sm := range att.Samples {
		for _, l := range sm.Labels {
			if l.Name == "model" && l.Value == "fm" {
				sawModel = true
			}
		}
	}
	if !sawModel {
		t.Fatalf("deepszgw_slo_attainment has no model=fm sample: %+v", att.Samples)
	}

	if dir := os.Getenv("DEEPSZ_TRACE_SNAPSHOT"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		st, status := getStoredTrace(t, gw.URL, lastTrace)
		if status != http.StatusOK {
			t.Fatalf("assembled trace fetch status %d", status)
		}
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "trace.json"), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "fleet.prom"), raw1, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
