// Package gateway is the replicated serving tier above internal/serve:
// a front door that spreads /v1/models/{name}/predict traffic over a
// fleet of deepszd backends. One deepszd process caps out at one
// machine's cores and one decode-cache budget no matter how fast the
// kernels get; the fleet economics of compressed models (Han et al.,
// ICLR'16 — small models mean many replicas per machine) make the
// routing tier the missing piece between "a daemon" and "a service".
//
// The gateway's decisions, in the order a request meets them:
//
//   - Bounded admission: at most MaxPending predicts in flight; the
//     overflow is shed with 503 + Retry-After instead of queueing until
//     every client times out.
//   - Rendezvous-hash model affinity: each model name ranks the
//     replicas deterministically, and traffic goes to the top
//     AffinityWidth healthy ones — so a model's layers stay hot in a
//     few decode caches instead of thrashing every cache in the fleet.
//   - Least-pending selection inside the affinity set, so a slow or
//     busy replica sheds load to its affinity peer before anything
//     times out.
//   - Hedged retries: predicts are idempotent, so a backend that is
//     slow (HedgeAfter) or fails (connection error, 5xx) gets its
//     request re-issued to the next-ranked replica; first good answer
//     wins and the losers are cancelled.
//   - Active health checking: /healthz probes every ProbeInterval;
//     EjectAfter consecutive failures ejects a replica from routing,
//     ReadmitAfter consecutive successes re-admits it.
package gateway

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httputil"
	"repro/internal/telemetry"
)

// Options tunes the gateway. The zero value of every field means its
// default; HedgeAfter < 0 disables hedging entirely.
type Options struct {
	// ProbeInterval is the /healthz probe period per backend
	// (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 2s).
	ProbeTimeout time.Duration
	// EjectAfter is the consecutive probe failures that eject a backend
	// from routing (default 3).
	EjectAfter int
	// ReadmitAfter is the consecutive probe successes that re-admit an
	// ejected backend (default 2).
	ReadmitAfter int
	// HedgeAfter is how long a predict waits on one backend before a
	// duplicate is issued to the next-ranked replica (default 100ms;
	// < 0 disables hedging).
	HedgeAfter time.Duration
	// MaxPending is the gateway-wide cap on predicts in flight; the
	// overflow is shed with 503 + Retry-After (default 256, < 0
	// unlimited).
	MaxPending int
	// MaxBodyBytes caps a predict request body, mirroring deepszd's own
	// -max-body-bytes guard (default 8 MiB).
	MaxBodyBytes int64
	// AffinityWidth is how many replicas serve one model's steady-state
	// traffic (default 2): wide enough to survive one replica dying
	// without a cold cache, narrow enough that the model's layers stay
	// hot somewhere.
	AffinityWidth int
	// SpillPending quantises the least-pending comparison inside the
	// affinity set: pending counts in the same bucket of this size are
	// a tie, broken by rendezvous score (default 2; 1 = strict
	// least-pending). Without it, a single in-flight request would
	// bounce a model between its affinity replicas and keep both caches
	// half-cold; with it, traffic spills to the peer on real imbalance
	// only.
	SpillPending int
	// RetryAfter is the hint attached to shed responses (default 1s).
	RetryAfter time.Duration
	// QuarantineTTL is how long a (model, replica) pair is routed around
	// after the replica answered that model with a quarantine 503
	// (default 15s). The replica attempts a self-heal reload on its own;
	// the TTL bounds how long the gateway trusts the signal before
	// probing the pair with real traffic again.
	QuarantineTTL time.Duration
	// Client issues backend requests (default: http.Client with a 1min
	// overall timeout, so a backend that accepts connections but never
	// answers cannot pin gateway goroutines forever; probes use their
	// own shorter ProbeTimeout context regardless).
	Client *http.Client
	// Logger receives the gateway's structured logs (ejections,
	// re-admissions, slow requests). nil means slog.Default().
	Logger *slog.Logger
	// SlowRequest is the end-to-end latency at or above which a predict is
	// logged with its assembled cross-tier evidence: trace ID, winning
	// backend, every attempt's outcome, and the winner's stage breakdown
	// (relayed by the replica in a response header, no extra round trip).
	// 0 disables the slow-request log.
	SlowRequest time.Duration
	// TraceSampleRate is the fraction of client requests that record full
	// span timelines. The decision hashes the trace ID, so the replicas
	// sample the same requests with no coordination. 0 means
	// DefaultTraceSampleRate (1%); negative disables probabilistic
	// sampling (slow/errored requests are still kept).
	TraceSampleRate float64
	// TraceStoreSize bounds the gateway's kept-trace ring
	// (0 = telemetry.DefaultTraceStoreSize).
	TraceStoreSize int
	// SLOTarget and SLOObjective configure per-model SLO tracking at the
	// fleet edge: a client request is good when it succeeded within
	// SLOTarget; SLOObjective is the fraction that must (e.g. 0.99). SLOs
	// are off unless both are set.
	SLOTarget    time.Duration
	SLOObjective float64
}

// DefaultTraceSampleRate mirrors serve.DefaultTraceSampleRate: 1% of
// requests record full span timelines.
const DefaultTraceSampleRate = 0.01

func (o *Options) fill() {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 3
	}
	if o.ReadmitAfter <= 0 {
		o.ReadmitAfter = 2
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 100 * time.Millisecond
	}
	if o.MaxPending == 0 {
		o.MaxPending = 256
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.AffinityWidth <= 0 {
		o.AffinityWidth = 2
	}
	if o.SpillPending <= 0 {
		o.SpillPending = 2
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.QuarantineTTL <= 0 {
		o.QuarantineTTL = 15 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: time.Minute}
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	switch {
	case o.TraceSampleRate == 0:
		o.TraceSampleRate = DefaultTraceSampleRate
	case o.TraceSampleRate < 0:
		o.TraceSampleRate = 0
	}
}

// replica is one backend and everything the gateway knows about it.
// All fields past base are written by probe loops and request
// goroutines concurrently, hence the atomics.
type replica struct {
	id   int
	base string // normalised URL, no trailing slash

	healthy atomic.Bool
	pending atomic.Int64 // predict attempts in flight on this backend

	requests  atomic.Uint64 // predict attempts issued
	errors    atomic.Uint64 // attempts that failed (transport error or 5xx)
	hedged    atomic.Uint64 // attempts issued as hedges
	wins      atomic.Uint64 // attempts whose answer reached a client
	canceled  atomic.Uint64 // attempts cancelled because another attempt won
	ejections atomic.Uint64

	latNs atomic.Int64 // total latency of counted attempts…
	latN  atomic.Uint64

	probeFails  atomic.Uint64
	lastProbeNs atomic.Int64 // RTT of the last successful probe

	// hist observes counted predict-attempt latencies — the distribution
	// (not just the mean) the hedging knobs are tuned against.
	hist *telemetry.Histogram
}

// Gateway routes predict traffic across a replica fleet. Create with
// New, serve it as an http.Handler, Close to stop the probe loops.
type Gateway struct {
	opt      Options
	replicas []*replica
	mux      *http.ServeMux
	start    time.Time
	tel      *telemetry.Registry

	inFlight  atomic.Int64
	admitted  atomic.Uint64
	shed      atomic.Uint64
	hedges    atomic.Uint64
	failovers atomic.Uint64

	// hedgeWastedNs accumulates the wall time of attempts whose answer was
	// thrown away (cancelled losers, failed attempts that a sibling
	// absorbed) — the price paid for the tail latency hedging buys.
	hedgeWastedNs atomic.Int64

	// store keeps sampled and tail-captured traces; slo scores client
	// requests against the operator's latency target (nil when off).
	store *telemetry.TraceStore
	slo   *telemetry.SLOTracker

	// quarantined maps model name → replicas that answered it with a
	// quarantine 503, each with the expiry of its avoidance window.
	// Entries are pruned lazily on ranking and scraping.
	qmu              sync.Mutex
	quarantined      map[string]map[*replica]time.Time
	modelQuarantines atomic.Uint64 // quarantine signals accepted (new pairs)

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a gateway over the given backend base URLs (e.g.
// "http://10.0.0.7:8080") and starts the health-probe loops. Backends
// start healthy — traffic flows before the first probe lands, and the
// failover path covers a backend that was dead all along.
func New(backends []string, opt Options) (*Gateway, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("gateway: at least one backend is required")
	}
	opt.fill()
	g := &Gateway{opt: opt, start: time.Now(), stop: make(chan struct{}), tel: telemetry.NewRegistry(),
		quarantined: map[string]map[*replica]time.Time{},
		store:       telemetry.NewTraceStore(opt.TraceStoreSize),
		slo:         telemetry.NewSLOTracker(opt.SLOTarget, opt.SLOObjective)}
	seen := map[string]bool{}
	for i, b := range backends {
		u, err := url.Parse(strings.TrimSpace(b))
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("gateway: backend %q is not an http(s) URL", b)
		}
		base := strings.TrimRight(u.String(), "/")
		if seen[base] {
			return nil, fmt.Errorf("gateway: backend %s listed twice", base)
		}
		seen[base] = true
		r := &replica{id: i, base: base}
		r.healthy.Store(true)
		r.hist = g.tel.Histogram("deepszgw_backend_duration_seconds",
			"Latency of counted predict attempts, by backend.",
			telemetry.DurationBuckets, telemetry.Label{Name: "backend", Value: base})
		g.replicas = append(g.replicas, r)
	}
	g.registerMetrics()
	g.routes()
	for _, r := range g.replicas {
		g.wg.Add(1)
		go g.probeLoop(r)
	}
	return g, nil
}

// Telemetry returns the gateway's metric registry (what /metrics
// exposes).
func (g *Gateway) Telemetry() *telemetry.Registry { return g.tel }

// registerMetrics wires the scrape-time samplers over the counters the
// gateway already maintains; scraping costs one pass over the fleet,
// serving costs nothing new.
func (g *Gateway) registerMetrics() {
	telemetry.RegisterBuildInfo(g.tel, "deepszgw")
	g.tel.CounterFunc("deepszgw_admitted_total",
		"Predict requests admitted past the gateway's admission bound.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(g.admitted.Load())}}
		})
	g.tel.CounterFunc("deepszgw_shed_total",
		"Predict requests shed at the gateway's admission bound.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(g.shed.Load())}}
		})
	g.tel.CounterFunc("deepszgw_hedges_total",
		"Hedged attempts issued to a next-ranked replica after HedgeAfter.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(g.hedges.Load())}}
		})
	g.tel.CounterFunc("deepszgw_failovers_total",
		"Immediate failovers after a backend attempt failed.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(g.failovers.Load())}}
		})
	g.tel.CounterFunc("deepszgw_hedge_wasted_seconds_total",
		"Wall time of attempts whose answer was thrown away (cancelled hedge losers and absorbed failures) — the spend side of the hedging tradeoff.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(g.hedgeWastedNs.Load()) / 1e9}}
		})
	if g.slo != nil {
		telemetry.RegisterSLOMetrics(g.tel, "deepszgw", g.slo)
	}
	g.tel.CounterFunc("deepszgw_model_quarantines_total",
		"Quarantine 503 signals accepted from backends: each counts one new (model, backend) pair routed around.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(g.modelQuarantines.Load())}}
		})
	g.tel.GaugeFunc("deepszgw_quarantined_model_backends",
		"(model, backend) pairs currently routed around after a quarantine 503.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(g.quarantinedPairs())}}
		})
	g.tel.GaugeFunc("deepszgw_in_flight",
		"Predict requests currently inside the gateway.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(g.inFlight.Load())}}
		})
	g.tel.GaugeFunc("deepszgw_healthy_backends",
		"Backends currently admitted to routing.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(g.HealthyBackends())}}
		})
	g.tel.GaugeFunc("deepszgw_uptime_seconds",
		"Seconds since the gateway started.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: time.Since(g.start).Seconds()}}
		})
	perReplica := func(f func(*replica) float64) func() []telemetry.Sample {
		return func() []telemetry.Sample {
			out := make([]telemetry.Sample, 0, len(g.replicas))
			for _, r := range g.replicas {
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{{Name: "backend", Value: r.base}},
					Value:  f(r),
				})
			}
			return out
		}
	}
	g.tel.CounterFunc("deepszgw_backend_requests_total",
		"Predict attempts issued, by backend.",
		perReplica(func(r *replica) float64 { return float64(r.requests.Load()) }))
	g.tel.CounterFunc("deepszgw_backend_errors_total",
		"Predict attempts that failed (transport error or 5xx), by backend.",
		perReplica(func(r *replica) float64 { return float64(r.errors.Load()) }))
	g.tel.CounterFunc("deepszgw_backend_hedged_total",
		"Predict attempts issued as hedges, by backend.",
		perReplica(func(r *replica) float64 { return float64(r.hedged.Load()) }))
	g.tel.CounterFunc("deepszgw_backend_wins_total",
		"Predict attempts whose answer reached a client, by backend.",
		perReplica(func(r *replica) float64 { return float64(r.wins.Load()) }))
	g.tel.CounterFunc("deepszgw_backend_canceled_total",
		"Predict attempts cancelled because a sibling attempt won, by backend.",
		perReplica(func(r *replica) float64 { return float64(r.canceled.Load()) }))
	g.tel.CounterFunc("deepszgw_backend_ejections_total",
		"Times a backend was ejected from routing, by backend.",
		perReplica(func(r *replica) float64 { return float64(r.ejections.Load()) }))
	g.tel.CounterFunc("deepszgw_backend_probe_failures_total",
		"Failed /healthz probes, by backend.",
		perReplica(func(r *replica) float64 { return float64(r.probeFails.Load()) }))
	g.tel.GaugeFunc("deepszgw_backend_healthy",
		"1 when the backend is admitted to routing, by backend.",
		perReplica(func(r *replica) float64 {
			if r.healthy.Load() {
				return 1
			}
			return 0
		}))
	g.tel.GaugeFunc("deepszgw_backend_pending",
		"Predict attempts in flight, by backend.",
		perReplica(func(r *replica) float64 { return float64(r.pending.Load()) }))
}

// Close stops the probe loops. In-flight requests finish on their own.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// probeLoop actively health-checks one replica: EjectAfter consecutive
// failures flip it unhealthy (outlier ejection), ReadmitAfter
// consecutive successes flip it back. Streak counters are loop-local —
// only this goroutine writes the replica's health bit.
func (g *Gateway) probeLoop(r *replica) {
	defer g.wg.Done()
	t := time.NewTicker(g.opt.ProbeInterval)
	defer t.Stop()
	fails, oks := 0, 0
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
		}
		if g.probe(r) {
			oks++
			fails = 0
		} else {
			fails++
			oks = 0
			r.probeFails.Add(1)
		}
		if r.healthy.Load() {
			if fails >= g.opt.EjectAfter {
				r.healthy.Store(false)
				r.ejections.Add(1)
				g.opt.Logger.Warn("backend ejected",
					"backend", r.base, "consecutive_failures", fails,
					"ejections", r.ejections.Load())
			}
		} else if oks >= g.opt.ReadmitAfter {
			r.healthy.Store(true)
			g.opt.Logger.Info("backend readmitted",
				"backend", r.base, "consecutive_successes", oks)
		}
	}
}

// probe issues one /healthz round trip.
func (g *Gateway) probe(r *replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.opt.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return false
	}
	t0 := time.Now()
	resp, err := g.opt.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	r.lastProbeNs.Store(time.Since(t0).Nanoseconds())
	return true
}

// score is the rendezvous (highest-random-weight) hash of one
// (model, replica) pair: every gateway instance ranks the fleet for a
// model identically, with no coordination and no reshuffling when
// unrelated replicas come or go.
func score(model, base string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, model)
	h.Write([]byte{0}) // separator: ("ab","c") must not collide with ("a","bc")
	io.WriteString(h, base)
	return h.Sum64()
}

// noteQuarantine records that rep answered model with a quarantine 503:
// rep drops out of model's routing preference for QuarantineTTL. Other
// models on the same replica are unaffected — the quarantine signal is
// per-model, and so is the avoidance.
func (g *Gateway) noteQuarantine(model string, rep *replica) {
	g.qmu.Lock()
	defer g.qmu.Unlock()
	m := g.quarantined[model]
	if m == nil {
		m = map[*replica]time.Time{}
		g.quarantined[model] = m
	}
	if _, already := m[rep]; !already {
		g.modelQuarantines.Add(1)
		g.opt.Logger.Warn("model quarantined on backend",
			"model", model, "backend", rep.base, "ttl", g.opt.QuarantineTTL)
	}
	m[rep] = time.Now().Add(g.opt.QuarantineTTL)
}

// avoidSet returns the replicas currently quarantined for model, pruning
// expired entries on the way.
func (g *Gateway) avoidSet(model string) map[*replica]bool {
	g.qmu.Lock()
	defer g.qmu.Unlock()
	m := g.quarantined[model]
	if len(m) == 0 {
		return nil
	}
	now := time.Now()
	var out map[*replica]bool
	for rep, until := range m {
		if now.After(until) {
			delete(m, rep)
			continue
		}
		if out == nil {
			out = make(map[*replica]bool, len(m))
		}
		out[rep] = true
	}
	if len(m) == 0 {
		delete(g.quarantined, model)
	}
	return out
}

// quarantinedPairs counts the live (model, replica) quarantine entries.
func (g *Gateway) quarantinedPairs() int {
	g.qmu.Lock()
	defer g.qmu.Unlock()
	now := time.Now()
	n := 0
	for model, m := range g.quarantined {
		for rep, until := range m {
			if now.After(until) {
				delete(m, rep)
				continue
			}
			n++
		}
		if len(m) == 0 {
			delete(g.quarantined, model)
		}
	}
	return n
}

// rank orders the fleet for one model: the healthy affinity set (top
// AffinityWidth by rendezvous score) sorted least-pending first with
// score as the tie-break, then the remaining healthy replicas in score
// order as failover/hedge targets, then replicas quarantined for this
// model, then ejected replicas last — a fleet that is entirely ejected
// or quarantined still gets tried, rather than failing with no attempt
// at all.
func (g *Gateway) rank(model string) []*replica {
	type cand struct {
		r       *replica
		s       uint64
		pending int64 // snapshot: a comparator reading live atomics mid-sort is inconsistent
	}
	avoid := g.avoidSet(model)
	cands := make([]cand, 0, len(g.replicas))
	for _, r := range g.replicas {
		cands = append(cands, cand{r, score(model, r.base), r.pending.Load()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].s > cands[j].s })
	var affinity, spill, avoided, ejected []cand
	for _, c := range cands {
		switch {
		case !c.r.healthy.Load():
			ejected = append(ejected, c)
		case avoid[c.r]:
			// Healthy for everything else, but known to 503 this model:
			// below every clean replica, above the ejected — the replica
			// answers instantly (cheap quarantine pre-check), so as a last
			// resort it still beats a dead box.
			avoided = append(avoided, c)
		case len(affinity) < g.opt.AffinityWidth:
			affinity = append(affinity, c)
		default:
			spill = append(spill, c)
		}
	}
	// Load-aware selection inside the affinity set only: pending counts
	// break the routing between a model's designated replicas, they never
	// pull in a replica outside the set (that is what keeps the model on
	// few caches). The comparison is quantised by SpillPending so the
	// model sticks to its rendezvous primary through one-request jitter
	// and spills to the peer on real imbalance.
	q := int64(g.opt.SpillPending)
	sort.SliceStable(affinity, func(i, j int) bool {
		pi, pj := affinity[i].pending/q, affinity[j].pending/q
		if pi != pj {
			return pi < pj
		}
		return affinity[i].s > affinity[j].s
	})
	out := make([]*replica, 0, len(cands))
	for _, group := range [][]cand{affinity, spill, avoided, ejected} {
		for _, c := range group {
			out = append(out, c.r)
		}
	}
	return out
}

// attempt is one backend's answer to a proxied predict.
type attempt struct {
	rep        *replica
	status     int
	body       []byte
	ctype      string
	retryAfter string
	// quarantined: the response carried the replica's quarantine header —
	// this model is down on this replica until its artifact heals, so the
	// gateway routes the pair around rather than hedging back into it.
	quarantined bool
	err         error

	// spanID names this attempt in the request's span tree; the replica
	// parents its own root span under it (ParentHeader), so hedged
	// attempts stay distinguishable at assembly time.
	spanID string
	start  time.Time
	dur    time.Duration
	// stages is the replica's compact per-stage breakdown from
	// StagesHeader — the winner's is what the slow-request log prints.
	stages string
}

// reqTrace accumulates the gateway-side spans of one client request: a
// root span plus one child span per backend attempt. Attempt spans are
// recorded by the attempt goroutines themselves (a cancelled loser
// unwinds after the winner's response is written), so the collection is
// mutex-guarded and late spans are appended to the store directly once
// the trace has been finished.
type reqTrace struct {
	id        string
	rootSpan  string
	model     string
	recording bool
	start     time.Time
	store     *telemetry.TraceStore

	mu     sync.Mutex
	spans  []telemetry.Span
	stored bool // finish ran; late spans go through store.Append
}

func (g *Gateway) newReqTrace(id, model string) *reqTrace {
	return &reqTrace{
		id:        id,
		rootSpan:  telemetry.MintSpanID(),
		model:     model,
		recording: telemetry.SampleTrace(id, g.opt.TraceSampleRate),
		start:     time.Now(),
		store:     g.store,
	}
}

// recordAttempt notes one finished backend attempt. Called from the
// attempt's own goroutine, possibly after the client response was
// written — in that case the span lands via store.Append, which drops it
// silently when the trace was not kept.
func (rt *reqTrace) recordAttempt(a *attempt, outcome string) {
	sp := telemetry.Span{
		TraceID: rt.id,
		SpanID:  a.spanID,
		Parent:  rt.rootSpan,
		Name:    "gateway.attempt",
		Start:   a.start,
		Dur:     a.dur,
		Attrs:   map[string]string{"backend": a.rep.base, "outcome": outcome},
	}
	if a.status != 0 {
		sp.Attrs["status"] = strconv.Itoa(a.status)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.stored {
		rt.store.Append(rt.id, sp)
		return
	}
	rt.spans = append(rt.spans, sp)
}

// markWin upgrades the winning attempt's provisional outcome. The
// attempt goroutine records "lose" before surfacing its result (it
// cannot know who wins); the predict loop, which does know, flips
// exactly one span to "win".
func (rt *reqTrace) markWin(a *attempt) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i := range rt.spans {
		if rt.spans[i].SpanID == a.spanID {
			rt.spans[i].Attrs["outcome"] = "win"
			return
		}
	}
}

// finish seals the trace: builds the root span and, when keep names a
// reason, puts the whole tree in the store. Either way the trace is
// marked stored, so attempt spans landing later go through store.Append
// (kept trace) or are dropped (not kept).
func (rt *reqTrace) finish(status int, keep string, total time.Duration) {
	root := telemetry.Span{
		TraceID: rt.id,
		SpanID:  rt.rootSpan,
		Name:    "deepszgw.predict",
		Start:   rt.start,
		Dur:     total,
		Attrs:   map[string]string{"model": rt.model, "status": strconv.Itoa(status)},
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.stored = true
	if keep == "" {
		return
	}
	rt.store.Put(telemetry.StoredTrace{
		ID:     rt.id,
		Model:  rt.model,
		Start:  rt.start,
		Dur:    total,
		Status: status,
		Keep:   keep,
		Spans:  append([]telemetry.Span{root}, rt.spans...),
	})
}

// attemptsSummary renders the attempts so far as one compact log value:
// "backend(outcome 12ms)" per attempt, in recording order.
func (rt *reqTrace) attemptsSummary() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var b strings.Builder
	for _, sp := range rt.spans {
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s(%s %s)", sp.Attrs["backend"], sp.Attrs["outcome"],
			sp.Dur.Round(time.Millisecond))
	}
	return b.String()
}

// send issues one predict attempt and reads the full response, so a
// losing hedge never leaks a connection: its body is consumed and
// closed here, before anyone decides whether it won. traceID stamps the
// attempt with the client request's trace: hedges carry the same ID, so
// one client request is one trace fleet-wide, and each replica's
// slow-request log entry for it is findable from the gateway's answer.
// rt supplies the attempt's span identity: the replica parents its own
// root span under a.spanID via ParentHeader.
func (g *Gateway) send(ctx context.Context, rep *replica, model string, rt *reqTrace, body []byte) *attempt {
	a := &attempt{rep: rep, spanID: telemetry.MintSpanID()}
	rep.requests.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		rep.base+"/v1/models/"+url.PathEscape(model)+"/predict", bytes.NewReader(body))
	if err != nil {
		a.err = err
		return a
	}
	req.Header.Set("Content-Type", "application/json")
	if rt.id != "" {
		req.Header.Set(telemetry.TraceHeader, rt.id)
		req.Header.Set(telemetry.ParentHeader, a.spanID)
	}
	a.start = time.Now()
	defer func() { a.dur = time.Since(a.start) }()
	resp, err := g.opt.Client.Do(req)
	if err != nil {
		a.err = err
		return a
	}
	a.body, a.err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if a.err != nil {
		return a
	}
	a.status = resp.StatusCode
	a.ctype = resp.Header.Get("Content-Type")
	a.retryAfter = resp.Header.Get("Retry-After")
	a.quarantined = resp.Header.Get(httputil.QuarantineHeader) != ""
	a.stages = resp.Header.Get(telemetry.StagesHeader)
	if a.status < http.StatusInternalServerError {
		dt := time.Since(a.start)
		rep.latNs.Add(dt.Nanoseconds())
		rep.latN.Add(1)
		if rt.recording {
			rep.hist.ObserveExemplar(dt.Seconds(), rt.id)
		} else {
			rep.hist.Observe(dt.Seconds())
		}
	}
	return a
}

// predict runs the hedged fan-out for one admitted request: attempt the
// top-ranked replica; on failure (transport error or 5xx) fail over to
// the next immediately, on silence hedge to the next after HedgeAfter.
// The first answer below 500 wins — client errors (400/404/413) are
// authoritative, every replica would say the same. Losing attempts are
// cancelled through the shared context.
func (g *Gateway) predict(ctx context.Context, model string, rt *reqTrace, body []byte) (*attempt, error) {
	ranked := g.rank(model)
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan *attempt, len(ranked)) // buffered: losers never block
	next, outstanding := 0, 0
	launch := func(hedge bool) {
		rep := ranked[next]
		next++
		outstanding++
		if hedge {
			rep.hedged.Add(1)
			g.hedges.Add(1)
		}
		rep.pending.Add(1)
		go func() {
			defer rep.pending.Add(-1)
			a := g.send(actx, rep, model, rt, body)
			// The span is recorded here, in the attempt's own goroutine,
			// because a cancelled loser unwinds after the predict loop has
			// already returned the winner. The outcome is provisional
			// ("lose" until the loop marks the winner); cancelled and failed
			// attempts are settled for good — their wall time is the hedge
			// spend the wasted-seconds counter accounts for.
			switch {
			case a.err != nil && actx.Err() != nil:
				rep.canceled.Add(1)
				g.hedgeWastedNs.Add(a.dur.Nanoseconds())
				rt.recordAttempt(a, "canceled")
			case a.err != nil || a.status >= http.StatusInternalServerError:
				g.hedgeWastedNs.Add(a.dur.Nanoseconds())
				rt.recordAttempt(a, "error")
			default:
				rt.recordAttempt(a, "lose")
			}
			results <- a
		}()
	}
	launch(false)
	var hedgeC <-chan time.Time // nil (never fires) when hedging is disabled
	if g.opt.HedgeAfter > 0 {
		hedge := time.NewTimer(g.opt.HedgeAfter)
		defer hedge.Stop()
		hedgeC = hedge.C
	}
	var lastFail *attempt
	var lastHTTP *attempt // last failure that was a real 5xx answer, not a transport error
	for {
		select {
		case a := <-results:
			outstanding--
			if a.err == nil && a.status < http.StatusInternalServerError {
				a.rep.wins.Add(1)
				rt.markWin(a)
				return a, nil
			}
			if ctx.Err() != nil {
				// The client is gone and this failure is (or is
				// indistinguishable from) our own cancellation rippling
				// through the attempts: charging it to the replica and
				// failing over on a dead context would turn routine client
				// timeouts into phantom backend errors in /v1/stats.
				if outstanding == 0 {
					return nil, ctx.Err()
				}
				continue
			}
			a.rep.errors.Add(1)
			if a.quarantined {
				g.noteQuarantine(model, a.rep)
			}
			lastFail = a
			if a.err == nil {
				lastHTTP = a
			}
			if next < len(ranked) {
				g.failovers.Add(1)
				launch(false)
			} else if outstanding == 0 {
				// Exhaustion: every replica failed. A replica that answered —
				// even with a 5xx — said something authoritative (a fleet-wide
				// shed is a 503 with a Retry-After the client should honour),
				// so relay the last such answer with its headers rather than
				// invent our own story; only when every attempt died in
				// transport is there nothing to relay.
				if lastHTTP != nil {
					return lastHTTP, nil
				}
				return nil, fmt.Errorf("gateway: all %d backends failed, last: %w", len(ranked), lastFail.err)
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(ranked) {
				launch(true)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
