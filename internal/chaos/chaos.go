// Package chaos is the fault-injection harness for the integrity layer:
// it flips bits in .dsz artifacts, in a live engine's in-memory blobs,
// and in resident decode-cache buffers while concurrent predict traffic
// is running, and tallies what escaped. The invariant under test is the
// integrity contract end to end: a corrupted byte may cost availability
// (a 503, a quarantine window) but never correctness — zero wrong
// answers reach a client.
//
// Injection is phased: faults land only between request waves, while no
// request is in flight. A mid-flight flip would be a data race between
// the harness and a kernel — the race detector would (rightly) flag the
// test itself, drowning the signal. Phasing keeps `go test -race` clean
// so any race it reports is a real serving bug, and it makes the zero-
// wrong-answers assertion about the verification layer, not about
// timing luck.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// Outcome classifies one request as the client experienced it.
type Outcome int

const (
	// OK: a 200 whose logits matched the uncorrupted reference exactly.
	OK Outcome = iota
	// Wrong: a 200 whose logits differed from the reference — the one
	// outcome the integrity layer exists to make impossible.
	Wrong
	// Unavailable: a 503 (corruption detected, quarantine, shed) — the
	// acceptable price of a caught fault.
	Unavailable
	// Failed: any other error (transport failure, unexpected status).
	Failed
)

// Scenario tallies one chaos scenario for the report.
type Scenario struct {
	Name        string  `json:"name"`
	Requests    int     `json:"requests"`
	OKAnswers   int     `json:"ok_answers"`
	Wrong       int     `json:"wrong_answers"`
	Unavailable int     `json:"unavailable_503"`
	Failed      int     `json:"failed_requests"`
	Injections  int     `json:"injections"`
	Quarantines uint64  `json:"quarantines"`
	Reloads     uint64  `json:"reloads_ok"`
	ReloadFails uint64  `json:"reloads_failed"`
	Ejections   uint64  `json:"cache_corrupt_ejections"`
	Seconds     float64 `json:"seconds"`
	// WrongTraces and FailedTraces hold the trace IDs of the requests
	// behind the Wrong and Failed tallies (capped at maxTraceRefs each):
	// a wrong answer in the report names the exact request to pull from
	// /v1/traces/{id} instead of leaving a bare count to reproduce.
	WrongTraces  []string `json:"wrong_traces,omitempty"`
	FailedTraces []string `json:"failed_traces,omitempty"`
}

// maxTraceRefs caps the trace IDs kept per outcome class — enough to
// chase every realistic failure, bounded if a scenario melts down.
const maxTraceRefs = 32

// Count records one request outcome and, for the outcomes an operator
// would investigate, the trace ID that names it. Safe for concurrent
// use.
func (s *Scenario) Count(o Outcome, trace string) {
	countMu.Lock()
	defer countMu.Unlock()
	s.Requests++
	switch o {
	case OK:
		s.OKAnswers++
	case Wrong:
		s.Wrong++
		if trace != "" && len(s.WrongTraces) < maxTraceRefs {
			s.WrongTraces = append(s.WrongTraces, trace)
		}
	case Unavailable:
		s.Unavailable++
	default:
		s.Failed++
		if trace != "" && len(s.FailedTraces) < maxTraceRefs {
			s.FailedTraces = append(s.FailedTraces, trace)
		}
	}
}

var countMu sync.Mutex

// Report is the artifact the CI chaos-smoke step uploads: one entry per
// scenario plus the aggregate invariant check.
type Report struct {
	GoVersion   string      `json:"go_version"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Started     time.Time   `json:"started"`
	Scenarios   []*Scenario `json:"scenarios"`
	TotalWrong  int         `json:"total_wrong_answers"`
	ZeroEscapes bool        `json:"zero_wrong_answers"`

	mu sync.Mutex
}

// NewReport stamps a report with the run environment.
func NewReport() *Report {
	return &Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Started:    time.Now(),
	}
}

// Add appends a finished scenario.
func (r *Report) Add(s *Scenario) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Scenarios = append(r.Scenarios, s)
}

// Write finalises the aggregate fields and writes the report as JSON.
func (r *Report) Write(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.TotalWrong = 0
	for _, s := range r.Scenarios {
		r.TotalWrong += s.Wrong
	}
	r.ZeroEscapes = r.TotalWrong == 0
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FlipResident corrupts one value in one resident decode-cache buffer —
// post-decode bit rot in "device memory". Returns false when nothing is
// resident. Call only while no request is in flight (see package doc).
func FlipResident(c *serve.DecodeCache) bool {
	done := false
	c.VisitResident(func(key string, l *core.DecodedLayer) {
		if done {
			return
		}
		switch {
		case l.Weights != nil:
			l.Weights[len(l.Weights)/2] += 1
			done = true
		case l.Sparse != nil && len(l.Sparse.Val) > 0:
			l.Sparse.Val[len(l.Sparse.Val)/2] += 1
			done = true
		}
	})
	return done
}

// FlipBlob corrupts one byte of a model's compressed layer blob in
// memory — the rot DecodeLayer's CRC check exists to catch. Call only
// between waves.
func FlipBlob(m *core.Model, layer int) {
	blob := m.Layers[layer].DataBlob
	blob[len(blob)/2] ^= 0xFF
}

// FlipFileByte corrupts one byte near the end of the file at path — in a
// .dsz, inside the last layer's blob or CRC trailer, so both the stream
// digest and the per-layer CRC disagree with the bytes.
func FlipFileByte(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < 16 {
		return fmt.Errorf("chaos: %s too short to corrupt", path)
	}
	data[len(data)-10] ^= 0xFF
	return os.WriteFile(path, data, 0o644)
}

// Waves drives phased concurrent load: each wave runs workers goroutines
// issuing perWorker requests through do, waits for all of them, then
// calls inject(wave) — faults land only while the system is quiescent.
// inject may be nil; wave numbering starts at 0 and inject(0) runs
// BEFORE the first wave, so a scenario can start cold-corrupted.
func Waves(waves, workers, perWorker int, do func(), inject func(wave int)) {
	for w := 0; w < waves; w++ {
		if inject != nil {
			inject(w)
		}
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < perWorker; j++ {
					do()
				}
			}()
		}
		wg.Wait()
	}
}
