package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// report collects every scenario; TestMain writes it to the path in
// DEEPSZ_CHAOS_REPORT (the CI chaos-smoke step uploads it as an
// artifact).
var report = NewReport()

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("DEEPSZ_CHAOS_REPORT"); path != "" {
		if err := report.Write(path); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: writing report: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// ip1Bypass is a cache budget below lenet-300-100's largest layer: ip1
// bypasses the cache and is decoded on every request, so a corrupted
// blob is hit immediately instead of hiding behind a resident entry.
const ip1Bypass = 32 << 10

// lenetFixture builds a pruned, compressed lenet-300-100 (a models.Build
// name, so serve can reload it from disk), writes it to dir, and returns
// the network, model, and path.
func lenetFixture(t testing.TB, dir string) (*nn.Network, *core.Model, string) {
	t.Helper()
	net, err := models.Build(models.LeNet300, tensor.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	prune.Network(net, map[string]float64{"ip1": 0.05, "ip2": 0.1, "ip3": 0.5}, 0.1)
	plan := &core.Plan{}
	for _, fc := range net.DenseLayers() {
		plan.Choices = append(plan.Choices, core.Choice{Layer: fc.Name(), EB: 1e-3})
	}
	m, err := core.Generate(net, plan, core.Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/lenet.dsz"
	if err := m.WriteModel(path); err != nil {
		t.Fatal(err)
	}
	return net, m, path
}

// refLogits is the decoded network's forward pass — the ground truth
// every 200 answer must match bit for bit.
func refLogits(t testing.TB, net *nn.Network, m *core.Model, rows [][]float32) [][]float32 {
	t.Helper()
	ref := net.Clone()
	if _, err := m.Apply(ref); err != nil {
		t.Fatal(err)
	}
	flat := make([]float32, 0, len(rows)*784)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	y := ref.Forward(tensor.FromSlice(flat, len(rows), 1, 28, 28), false)
	classes := y.Len() / len(rows)
	out := make([][]float32, len(rows))
	for i := range out {
		out[i] = y.Data[i*classes : (i+1)*classes]
	}
	return out
}

func chaosRows(n int) [][]float32 {
	rng := tensor.NewRNG(7)
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = make([]float32, 784)
		rng.FillNormal(rows[i], 0, 1)
	}
	return rows
}

// predictOutcome posts one predict and classifies the answer against
// want. Every request carries a minted trace ID, so a wrong or failed
// outcome in the chaos report names the exact request to look up in the
// server's /v1/traces/{id} — the returned ID is what Scenario.Count
// records.
func predictOutcome(url, model string, body []byte, want [][]float32) (Outcome, string) {
	traceID := telemetry.MintID()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/models/"+model+"/predict", bytes.NewReader(body))
	if err != nil {
		return Failed, traceID
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return Failed, traceID
	}
	defer resp.Body.Close()
	var pr struct {
		Outputs [][]float32 `json:"outputs"`
	}
	dec := json.NewDecoder(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		if dec.Decode(&pr) != nil || len(pr.Outputs) != len(want) {
			return Wrong, traceID
		}
		for i := range want {
			if len(pr.Outputs[i]) != len(want[i]) {
				return Wrong, traceID
			}
			for j := range want[i] {
				if pr.Outputs[i][j] != want[i][j] {
					return Wrong, traceID
				}
			}
		}
		return OK, traceID
	case http.StatusServiceUnavailable:
		return Unavailable, traceID
	default:
		return Failed, traceID
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// finish stamps the registry counters into the scenario, records it, and
// asserts the one non-negotiable invariant.
func finish(t *testing.T, s *Scenario, reg *serve.Registry, t0 time.Time) {
	t.Helper()
	if reg != nil {
		s.Quarantines, s.Reloads, s.ReloadFails = reg.ReloadStats()
		s.Ejections = reg.Cache().Stats().CorruptEjections
	}
	s.Seconds = time.Since(t0).Seconds()
	report.Add(s)
	if s.Wrong != 0 {
		t.Fatalf("%s: %d WRONG ANSWERS escaped to clients (of %d requests); traces: %v",
			s.Name, s.Wrong, s.Requests, s.WrongTraces)
	}
}

// TestChaosCacheRot flips bits in resident decode-cache buffers between
// waves of concurrent load. Verified decode (fill-time checksums,
// release-time re-verification, periodic scrub) must eject every rotted
// entry: some requests pay a 503, none get wrong logits.
func TestChaosCacheRot(t *testing.T) {
	net, m, path := lenetFixture(t, t.TempDir())
	reg := serve.NewRegistry(0, serve.BatchOptions{})
	defer reg.Close()
	if err := reg.SetVerifyDecoded(true); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.LoadFile("", path, ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(reg))
	defer ts.Close()

	rows := chaosRows(2)
	want := refLogits(t, net, m, rows)
	body, _ := json.Marshal(map[string]any{"inputs": rows})
	s := &Scenario{Name: "cache-rot"}
	t0 := time.Now()

	// The scrub is driven synchronously from the inject hook rather than
	// via SetScrubInterval: a background scrub goroutine checksumming a
	// buffer the harness is flipping would be a harness-vs-scrub data
	// race, not a serving bug. Phasing applies to the scrubber too.
	Waves(8, 4, 4,
		func() { s.Count(predictOutcome(ts.URL, models.LeNet300, body, want)) },
		func(wave int) {
			if wave >= 1 && wave <= 6 { // leave the last wave clean
				if FlipResident(reg.Cache()) {
					s.Injections++
				}
				if wave%2 == 0 {
					// Even waves: the scrub sweep catches the rot before any
					// request does. Odd waves leave it for the per-release
					// verify path, so both detectors are exercised.
					reg.Cache().Scrub()
				}
			}
		})

	if s.Injections == 0 {
		t.Fatal("no faults injected; the harness never hit a resident entry")
	}
	if got := reg.Cache().Stats().CorruptEjections; got < uint64(s.Injections) {
		t.Fatalf("%d injections but only %d corrupt ejections — rot survived in the cache", s.Injections, got)
	}
	if q, _, _ := reg.ReloadStats(); q != 0 {
		t.Fatalf("cache-surface rot quarantined the model (%d quarantines); it must self-heal", q)
	}
	finish(t, s, reg, t0)
}

// TestChaosBlobRotRecovers flips a byte in the live engine's in-memory
// compressed blob while the artifact on disk stays clean: decode CRC
// catches it, the model quarantines (503s, never wrong bytes), and the
// automatic reload from disk restores service without a restart.
func TestChaosBlobRotRecovers(t *testing.T) {
	net, m, path := lenetFixture(t, t.TempDir())
	reg := serve.NewRegistry(ip1Bypass, serve.BatchOptions{})
	defer reg.Close()
	e, err := reg.LoadFile("", path, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(reg))
	defer ts.Close()

	rows := chaosRows(2)
	want := refLogits(t, net, m, rows)
	body, _ := json.Marshal(map[string]any{"inputs": rows})
	s := &Scenario{Name: "blob-rot-recovers"}
	t0 := time.Now()

	Waves(4, 4, 4,
		func() { s.Count(predictOutcome(ts.URL, models.LeNet300, body, want)) },
		func(wave int) {
			if wave == 2 {
				FlipBlob(e.Model(), 0)
				s.Injections++
			}
		})
	if s.Unavailable == 0 {
		t.Fatal("blob rot was never detected: no request answered 503")
	}
	// The disk artifact is clean, so the quarantine-triggered reload must
	// bring the model back on its own; a full post-recovery wave is then
	// flawless.
	waitUntil(t, "quarantine to clear", func() bool {
		_, quarantined := reg.Quarantined(models.LeNet300)
		return !quarantined
	})
	before := s.Requests
	Waves(1, 4, 4, func() { s.Count(predictOutcome(ts.URL, models.LeNet300, body, want)) }, nil)
	if s.OKAnswers < before { // every post-recovery request must be OK
		t.Fatalf("post-recovery wave not clean: %+v", s)
	}
	if _, reloads, _ := reg.ReloadStats(); reloads == 0 {
		t.Fatal("model recovered without a recorded reload")
	}
	finish(t, s, reg, t0)
}

// TestChaosDiskRotRepaired rots both memory and the on-disk artifact:
// the reload fails and the model stays quarantined (503, never wrong),
// until the artifact is repaired — then the scrub-tick retry notices the
// changed file and restores service, still without a restart.
func TestChaosDiskRotRepaired(t *testing.T) {
	dir := t.TempDir()
	net, m, path := lenetFixture(t, dir)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(ip1Bypass, serve.BatchOptions{})
	defer reg.Close()
	reg.SetScrubInterval(20 * time.Millisecond)
	e, err := reg.LoadFile("", path, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(reg))
	defer ts.Close()

	rows := chaosRows(2)
	want := refLogits(t, net, m, rows)
	body, _ := json.Marshal(map[string]any{"inputs": rows})
	s := &Scenario{Name: "disk-rot-repaired"}
	t0 := time.Now()

	Waves(4, 4, 4,
		func() { s.Count(predictOutcome(ts.URL, models.LeNet300, body, want)) },
		func(wave int) {
			if wave == 2 {
				if err := FlipFileByte(path); err != nil {
					t.Error(err)
				}
				FlipBlob(e.Model(), 0)
				s.Injections++
			}
		})
	if s.Unavailable == 0 {
		t.Fatal("corruption was never detected: no request answered 503")
	}
	waitUntil(t, "a failed reload attempt", func() bool {
		_, _, fails := reg.ReloadStats()
		return fails >= 1
	})
	if _, quarantined := reg.Quarantined(models.LeNet300); !quarantined {
		t.Fatal("model recovered from a corrupt artifact — reload validation is broken")
	}

	// Repair the artifact. The periodic retry keys on the file identity
	// changing, so nudge the mtime past filesystem timestamp granularity.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Now(), time.Now().Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "repaired artifact to clear quarantine", func() bool {
		_, quarantined := reg.Quarantined(models.LeNet300)
		return !quarantined
	})
	okBefore := s.OKAnswers
	Waves(1, 4, 4, func() { s.Count(predictOutcome(ts.URL, models.LeNet300, body, want)) }, nil)
	if s.OKAnswers != okBefore+16 {
		t.Fatalf("post-repair wave not clean: %+v", s)
	}
	finish(t, s, reg, t0)
}

// TestChaosGatewayFailover corrupts one replica's copy of the model
// under a two-replica gateway: the corrupt replica 503s with the
// quarantine header, the gateway fails over and routes around the pair —
// clients see nothing but correct 200s.
func TestChaosGatewayFailover(t *testing.T) {
	net, m, path := lenetFixture(t, t.TempDir())
	regs := make([]*serve.Registry, 2)
	urls := make([]string, 2)
	engines := make([]*serve.Engine, 2)
	for i := range regs {
		regs[i] = serve.NewRegistry(ip1Bypass, serve.BatchOptions{})
		defer regs[i].Close()
		e, err := regs[i].LoadFile("", path, "")
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
		ts := httptest.NewServer(serve.NewServer(regs[i]))
		defer ts.Close()
		urls[i] = ts.URL
	}
	g, err := gateway.New(urls, gateway.Options{
		ProbeInterval: time.Hour, // health probing out of the picture
		HedgeAfter:    -1,        // failover only
		QuarantineTTL: time.Hour, // the avoid set must hold for the whole test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	rows := chaosRows(2)
	want := refLogits(t, net, m, rows)
	body, _ := json.Marshal(map[string]any{"inputs": rows})
	s := &Scenario{Name: "gateway-failover"}
	t0 := time.Now()

	Waves(4, 4, 4,
		func() { s.Count(predictOutcome(gw.URL, models.LeNet300, body, want)) },
		func(wave int) {
			if wave == 0 {
				// Cold corruption on one replica: the gateway's first attempt
				// there meets the CRC failure, not a cached clean layer. Which
				// replica is ranked first doesn't matter — either the first
				// attempt 503s and fails over, or routing never touches the
				// corrupt copy.
				FlipBlob(engines[0].Model(), 0)
				s.Injections++
			}
		})

	// The invariant is stricter here than on a single replica: the fleet
	// absorbs the fault, so clients never even see the 503.
	if s.Unavailable != 0 || s.Failed != 0 {
		t.Fatalf("fleet leaked failures to clients: %+v", s)
	}
	if s.OKAnswers != s.Requests {
		t.Fatalf("%d of %d answers OK: %+v", s.OKAnswers, s.Requests, s)
	}
	finish(t, s, regs[0], t0)
}
