package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/models"
	"repro/internal/prune"
	"repro/internal/sz"
)

// Ablation reproduces the paper's §3.2 design justification: applying lossy
// compression directly to the dense (2-D) pruned weight matrices — instead
// of to the condensed nonzero data arrays — destroys the sparsity pattern
// (pruned zeros come back as ±eb noise) and collapses inference accuracy,
// while the CSR-then-compress design holds it. It also reports the SZ
// predictor and lossless-stage ablations on fc6.
func Ablation(w io.Writer) error {
	p, err := Prepare(models.AlexNetS)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "--- compress dense matrix vs sparse data array (eb = 3e-2) ---")
	fmt.Fprintln(tw, "design\ttop-1\tnote")
	const eb = 3e-2

	baseline := p.PrunedAcc
	fmt.Fprintf(tw, "pruned baseline\t%.2f%%\t\n", 100*baseline.Top1)

	// (a) DeepSZ design: compress only the nonzero data array.
	sparseNet := p.Pruned.Clone()
	for _, fc := range sparseNet.DenseLayers() {
		sp := prune.Encode(fc.Weights())
		blob, err := sz.Compress(sp.Data, sz.Options{ErrorBound: eb})
		if err != nil {
			return err
		}
		dec, err := sz.Decompress(blob)
		if err != nil {
			return err
		}
		dense, err := (&prune.Sparse{N: sp.N, Data: dec, Index: sp.Index}).Decode()
		if err != nil {
			return err
		}
		fc.SetWeights(dense)
	}
	accSparse := sparseNet.Evaluate(p.Test, 100)
	fmt.Fprintf(tw, "CSR data array (DeepSZ)\t%.2f%%\tzeros stay exactly zero\n", 100*accSparse.Top1)

	// (b) Naive design: compress the whole dense matrix; every pruned zero
	// returns as ±eb noise, so ~91 % of the weights become noise.
	denseNet := p.Pruned.Clone()
	for _, fc := range denseNet.DenseLayers() {
		blob, err := sz.Compress(fc.Weights(), sz.Options{ErrorBound: eb})
		if err != nil {
			return err
		}
		dec, err := sz.Decompress(blob)
		if err != nil {
			return err
		}
		fc.SetWeights(dec)
	}
	accDense := denseNet.Evaluate(p.Test, 100)
	fmt.Fprintf(tw, "dense 1-D stream (naive)\t%.2f%%\tpruned zeros decode as ±eb noise\n", 100*accDense.Top1)

	// (c) Same naive design through the 2-D SZ path (tiled 2-D Lorenzo /
	// plane prediction over the weight matrix). Unlike the 1-D stream, a
	// zero weight whose west/north neighbours are all zero predicts exactly
	// zero and decodes exactly zero, so most of the sparsity pattern
	// survives — an observation beyond the paper.
	dense2Net := p.Pruned.Clone()
	for _, fc := range dense2Net.DenseLayers() {
		blob, err := sz.Compress2D(fc.Weights(), fc.Out, fc.In, sz.Options{ErrorBound: eb})
		if err != nil {
			return err
		}
		dec, _, _, err := sz.Decompress2D(blob)
		if err != nil {
			return err
		}
		fc.SetWeights(dec)
	}
	accDense2 := dense2Net.Evaluate(p.Test, 100)
	fmt.Fprintf(tw, "dense 2-D matrix (SZ-2D)\t%.2f%%\tzero neighbourhoods predict exact zeros\n", 100*accDense2.Top1)
	if err := tw.Flush(); err != nil {
		return err
	}

	// SZ-internal ablations on the fc6 data array.
	sp := prune.Encode(p.Pruned.DenseLayers()[0].Weights())
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\n--- SZ design ablations on fc6 (eb = 1e-3) ---")
	fmt.Fprintln(tw, "variant\tratio")
	for _, tc := range []struct {
		name string
		opts sz.Options
	}{
		{"adaptive predictors + lossless stage", sz.Options{ErrorBound: 1e-3}},
		{"lorenzo only", sz.Options{ErrorBound: 1e-3, DisableRegression: true}},
		{"regression only", sz.Options{ErrorBound: 1e-3, DisableLorenzo: true}},
		{"no lossless stage", sz.Options{ErrorBound: 1e-3, DisableLossless: true}},
	} {
		blob, err := sz.Compress(sp.Data, tc.opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.2fx\n", tc.name, sz.Ratio(len(sp.Data), blob))
	}
	return tw.Flush()
}
