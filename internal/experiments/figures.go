package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/lossless"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/stats"
	"repro/internal/sz"
	"repro/internal/tensor"
	"repro/internal/zfp"
)

// Table1 prints the architecture table: analytic full-scale sizes from the
// published dimensions plus measured forward times of the scaled stand-ins.
func Table1(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\tconv\tfc\tfc dims\tfc size\tfc share\tconv fwd\tfc fwd")
	for _, spec := range models.PaperTable1() {
		p, err := Prepare(spec.ScaledName)
		if err != nil {
			return err
		}
		convT, fcT, err := measureForwardSplit(p.Trained)
		if err != nil {
			return err
		}
		dims := ""
		for i, fc := range spec.FCLayers {
			if i > 0 {
				dims += ", "
			}
			dims += fmt.Sprintf("%s %d×%d", fc.Name, fc.Rows, fc.Cols)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%.1f MB\t%.1f%%\t%v\t%v\n",
			spec.Name, spec.ConvLayers, len(spec.FCLayers), dims,
			float64(spec.FCBytes())/1e6, 100*spec.FCFraction(),
			convT.Round(time.Microsecond), fcT.Round(time.Microsecond))
	}
	fmt.Fprintln(tw, "\n(sizes analytic from published dims; fwd times measured on the scaled stand-ins, batch 100)")
	return tw.Flush()
}

// measureForwardSplit times the conv prefix and fc suffix of one batch.
func measureForwardSplit(tr *models.Trained) (conv, fc time.Duration, err error) {
	split := tr.Net.FirstDenseIndex()
	idx := make([]int, min(100, tr.Test.Len()))
	for i := range idx {
		idx[i] = i
	}
	x, _ := tr.Test.Batch(idx)
	t0 := time.Now()
	mid := tr.Net.ForwardRange(0, split, x, false)
	t1 := time.Now()
	tr.Net.ForwardRange(split, len(tr.Net.Layers), mid, false)
	return t1.Sub(t0), time.Since(t1), nil
}

// Fig2 compares SZ and ZFP compression ratios on the pruned fc data arrays
// of the two ImageNet-class networks at absolute bounds 1e-2/1e-3/1e-4.
func Fig2(w io.Writer) error {
	bounds := []float64{1e-2, 1e-3, 1e-4}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\tlayer\tcompressor\t1E-2\t1E-3\t1E-4")
	for _, name := range []string{models.AlexNetS, models.VGG16S} {
		p, err := Prepare(name)
		if err != nil {
			return err
		}
		for _, fc := range p.Pruned.DenseLayers() {
			sp := prune.Encode(fc.Weights())
			var szR, zfpR [3]float64
			for i, eb := range bounds {
				szBlob, err := sz.Compress(sp.Data, sz.Options{ErrorBound: eb})
				if err != nil {
					return err
				}
				szR[i] = sz.Ratio(len(sp.Data), szBlob)
				zfpBlob, err := zfp.Compress(sp.Data, zfp.Options{Mode: zfp.ModeAccuracy, Tolerance: eb})
				if err != nil {
					return err
				}
				zfpR[i] = zfp.Ratio(len(sp.Data), zfpBlob)
			}
			fmt.Fprintf(tw, "%s\t%s\tSZ\t%.2f\t%.2f\t%.2f\n", name, fc.Name(), szR[0], szR[1], szR[2])
			fmt.Fprintf(tw, "%s\t%s\tZFP\t%.2f\t%.2f\t%.2f\n", name, fc.Name(), zfpR[0], zfpR[1], zfpR[2])
		}
	}
	return tw.Flush()
}

// Fig4 compares the three lossless back-ends on each layer's index array.
func Fig4(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\tlayer\tgzip\tzstdlike\tblosclike")
	for _, name := range []string{models.AlexNetS, models.VGG16S} {
		p, err := Prepare(name)
		if err != nil {
			return err
		}
		for _, fc := range p.Pruned.DenseLayers() {
			sp := prune.Encode(fc.Weights())
			idx := make([]byte, len(sp.Index))
			copy(idx, sp.Index)
			var ratios []float64
			for _, c := range lossless.All() {
				blob := c.Compress(idx)
				ratios = append(ratios, float64(len(idx))/float64(len(blob)))
			}
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\n", name, fc.Name(), ratios[0], ratios[1], ratios[2])
		}
	}
	return tw.Flush()
}

// fig5Bounds is the sweep grid of Figures 3 and 5. The scaled networks have
// ~10× larger weights than the full-size models, so the accuracy knee sits
// around 1e-1–4e-1 instead of the paper's 1e-2–1e-1; the grid extends right
// to capture it (see EXPERIMENTS.md).
var fig5Bounds = []float64{1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 2e-1, 4e-1}

// Fig5 reproduces Figures 3 and 5: top-1 accuracy as a function of the error
// bound applied to one fc layer at a time, for all four networks.
func Fig5(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "network\tlayer"
	for _, eb := range fig5Bounds {
		header += fmt.Sprintf("\t%.0e", eb)
	}
	fmt.Fprintln(tw, header)
	for _, name := range models.All() {
		p, err := Prepare(name)
		if err != nil {
			return err
		}
		split := p.Pruned.FirstDenseIndex()
		features := p.Pruned.FeatureCache(split, p.Test, 100)
		suffix := p.Pruned.CloneRange(split, len(p.Pruned.Layers))
		fmt.Fprintf(tw, "%s\t(baseline)\t%.2f%%\n", name, 100*p.PrunedAcc.Top1)
		for _, fc := range suffix.DenseLayers() {
			row := fmt.Sprintf("%s\t%s", name, fc.Name())
			original := append([]float32(nil), fc.Weights()...)
			sp := prune.Encode(original)
			for _, eb := range fig5Bounds {
				acc, err := reconstructedAccuracy(suffix, features, p, fc, sp, eb)
				if err != nil {
					return err
				}
				row += fmt.Sprintf("\t%.2f%%", 100*acc.Top1)
				fc.SetWeights(original)
			}
			fmt.Fprintln(tw, row)
		}
	}
	return tw.Flush()
}

// reconstructedAccuracy compresses one layer's data array at eb, rebuilds
// the layer inside the suffix clone, and evaluates.
func reconstructedAccuracy(suffix *nn.Network, features *tensor.Tensor, p *Prepared,
	fc *nn.Dense, sp *prune.Sparse, eb float64) (nn.Accuracy, error) {
	blob, err := sz.Compress(sp.Data, sz.Options{ErrorBound: eb})
	if err != nil {
		return nn.Accuracy{}, err
	}
	dec, err := sz.Decompress(blob)
	if err != nil {
		return nn.Accuracy{}, err
	}
	recon := &prune.Sparse{N: sp.N, Data: dec, Index: sp.Index}
	dense, err := recon.Decode()
	if err != nil {
		return nn.Accuracy{}, err
	}
	fc.SetWeights(dense)
	return suffix.EvaluateFrom(0, features, p.Test, 100), nil
}

// Fig6 tests the linearity model of §3.4: for random per-layer error-bound
// combinations, the sum of individually measured degradations should track
// the degradation measured with all layers reconstructed together.
func Fig6(w io.Writer) error {
	p, err := Prepare(models.AlexNetS)
	if err != nil {
		return err
	}
	a := p.Result.Assessment
	split := p.Pruned.FirstDenseIndex()
	features := p.Pruned.FeatureCache(split, p.Test, 100)
	suffix := p.Pruned.CloneRange(split, len(p.Pruned.Layers))

	originals := map[string][]float32{}
	for _, fc := range suffix.DenseLayers() {
		originals[fc.Name()] = append([]float32(nil), fc.Weights()...)
	}
	restore := func() {
		for _, fc := range suffix.DenseLayers() {
			fc.SetWeights(originals[fc.Name()])
		}
	}

	rng := tensor.NewRNG(99)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "combo\texpected loss (Σ∆ℓ)\tactual loss")
	var xs, ys []float64
	for trial := 0; trial < 12; trial++ {
		var expected float64
		for _, la := range a.Layers {
			pt := la.Points[rng.Intn(len(la.Points))]
			fc := findDenseLayer(suffix, la.Layer)
			acc, err := reconstructedAccuracy(suffix, features, p, fc, la.Sparse, pt.EB)
			_ = acc // individual reconstruction applied cumulatively below
			if err != nil {
				return err
			}
			if pt.Degradation > 0 {
				expected += pt.Degradation
			}
		}
		// All chosen layers are now reconstructed simultaneously (the loop
		// above left each layer's decompressed weights in place).
		actualAcc := suffix.EvaluateFrom(0, features, p.Test, 100)
		actual := a.Baseline.Top1 - actualAcc.Top1
		if actual < 0 {
			actual = 0
		}
		restore()
		fmt.Fprintf(tw, "%d\t%.3f%%\t%.3f%%\n", trial, 100*expected, 100*actual)
		xs = append(xs, expected)
		ys = append(ys, actual)
	}
	fmt.Fprintf(tw, "\nPearson r(expected, actual) = %.3f (paper: approximately linear below 2%%)\n", stats.Pearson(xs, ys))
	return tw.Flush()
}

func findDenseLayer(net *nn.Network, name string) *nn.Dense {
	for _, fc := range net.DenseLayers() {
		if fc.Name() == name {
			return fc
		}
	}
	panic(fmt.Sprintf("experiments: layer %q not found", name))
}
