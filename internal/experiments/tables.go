package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"repro/internal/deepcomp"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/weightless"
)

// layerBytes returns the per-layer compressed size from a DeepSZ model.
func layerBytes(p *Prepared, layer string) int {
	for _, l := range p.Result.Model.Layers {
		if l.Name == layer {
			return l.CompressedBytes()
		}
	}
	return 0
}

// Table2 prints the per-layer compression statistics (paper Tables 2a–2d):
// original size, pruning keep ratio, CSR size, and DeepSZ-compressed size.
func Table2(w io.Writer) error {
	for _, name := range models.All() {
		p, err := Prepare(name)
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "--- %s ---\n", name)
		fmt.Fprintln(tw, "layer\toriginal\tkeep ratio\tCSR size\tDeepSZ\teb")
		var orig, csr, comp int
		for _, la := range p.Result.Assessment.Layers {
			o := 4 * la.WeightCount()
			c := la.Sparse.Bytes()
			d := layerBytes(p, la.Layer)
			eb := 0.0
			for _, ch := range p.Result.Plan.Choices {
				if ch.Layer == la.Layer {
					eb = ch.EB
				}
			}
			density := float64(la.Sparse.Nonzeros()) / float64(la.WeightCount())
			fmt.Fprintf(tw, "%s\t%s\t%.0f%%\t%s\t%s\t%.0e\n",
				la.Layer, fmtBytes(o), 100*density, fmtBytes(c), fmtBytes(d), eb)
			orig += o
			csr += c
			comp += d
		}
		fmt.Fprintf(tw, "overall\t%s\t\t%s (%.1fx)\t%s (%.1fx)\n\n",
			fmtBytes(orig), fmtBytes(csr), float64(orig)/float64(csr),
			fmtBytes(comp), float64(orig)/float64(comp))
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func fmtBytes(n int) string {
	switch {
	case n >= 1e6:
		return fmt.Sprintf("%.2f MB", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1f KB", float64(n)/1e3)
	}
	return fmt.Sprintf("%d B", n)
}

// Table3 prints before/after accuracy and the overall compression ratio
// (paper Table 3).
func Table3(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\ttop-1\ttop-5\tfc size\tratio")
	for _, name := range models.All() {
		p, err := Prepare(name)
		if err != nil {
			return err
		}
		r := p.Result
		fmt.Fprintf(tw, "%s original\t%.2f%%\t%.2f%%\t%s\t\n",
			name, 100*r.Before.Top1, 100*r.Before.Top5, fmtBytes(int(r.OriginalBytes)))
		fmt.Fprintf(tw, "%s DeepSZ\t%.2f%%\t%.2f%%\t%s\t%.1fx\n",
			name, 100*r.After.Top1, 100*r.After.Top5, fmtBytes(r.CompressedBytes), r.CompressionRatio())
	}
	return tw.Flush()
}

// baselineSizes compresses every fc layer of the pruned network with Deep
// Compression (5-bit codebooks) and the largest layer with Weightless,
// returning per-layer byte sizes.
type baselineSizes struct {
	dc map[string]int
	wl map[string]int // only the largest layer; others fall back to CSR
}

func runBaselines(p *Prepared, dcBits, wlBits int) (*baselineSizes, error) {
	out := &baselineSizes{dc: map[string]int{}, wl: map[string]int{}}
	largest, largestN := "", 0
	for _, fc := range p.Pruned.DenseLayers() {
		if n := len(fc.Weights()); n > largestN {
			largest, largestN = fc.Name(), n
		}
	}
	for _, fc := range p.Pruned.DenseLayers() {
		c, err := deepcomp.CompressLayer(fc.Weights(), deepcomp.Options{Bits: dcBits})
		if err != nil {
			return nil, err
		}
		out.dc[fc.Name()] = c.Bytes()
		if fc.Name() == largest {
			f, err := weightless.Encode(fc.Weights(), weightless.Options{ValueBits: wlBits, CheckBits: 4})
			if err != nil {
				return nil, err
			}
			out.wl[fc.Name()] = f.Bytes()
		} else {
			out.wl[fc.Name()] = prune.Encode(fc.Weights()).Bytes()
		}
	}
	return out, nil
}

// Table4 compares per-layer and overall compression ratios of Deep
// Compression, Weightless, and DeepSZ (paper Table 4).
func Table4(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\tlayer\tDeepComp\tWeightless\tDeepSZ\timprovement")
	for _, name := range models.All() {
		p, err := Prepare(name)
		if err != nil {
			return err
		}
		bl, err := runBaselines(p, 5, 4)
		if err != nil {
			return err
		}
		var origT, dcT, wlT, dszT int
		largest := largestLayer(p)
		for _, la := range p.Result.Assessment.Layers {
			orig := 4 * la.WeightCount()
			dc := bl.dc[la.Layer]
			wl := bl.wl[la.Layer]
			dsz := layerBytes(p, la.Layer)
			wlStr := "-"
			if la.Layer == largest {
				wlStr = fmt.Sprintf("%.1f", float64(orig)/float64(wl))
			}
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%s\t%.1f\t\n",
				name, la.Layer, float64(orig)/float64(dc), wlStr, float64(orig)/float64(dsz))
			origT += orig
			dcT += dc
			wlT += wl
			dszT += dsz
		}
		dszRatio := float64(origT) / float64(dszT)
		secondBest := math.Max(float64(origT)/float64(dcT), float64(origT)/float64(wlT))
		fmt.Fprintf(tw, "%s\toverall\t%.1f\t%.1f\t%.1f\t%.2fx\n",
			name, float64(origT)/float64(dcT), float64(origT)/float64(wlT),
			dszRatio, dszRatio/secondBest)
	}
	return tw.Flush()
}

func largestLayer(p *Prepared) string {
	largest, largestN := "", 0
	for _, fc := range p.Pruned.DenseLayers() {
		if n := len(fc.Weights()); n > largestN {
			largest, largestN = fc.Name(), n
		}
	}
	return largest
}

// Table5 measures accuracy degradation when Deep Compression and Weightless
// are forced to DeepSZ's bit budget (paper Table 5): without error-bounded
// quantization, accuracy collapses at comparable ratios.
func Table5(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\tbits/weight\tDeepComp ∆top-1\tWeightless ∆top-1\tDeepSZ ∆top-1")
	for _, name := range models.All() {
		p, err := Prepare(name)
		if err != nil {
			return err
		}
		// DeepSZ's value bits per nonzero weight, excluding index storage,
		// is the apples-to-apples codebook width.
		dataBits := 0
		nz := 0
		for _, l := range p.Result.Model.Layers {
			dataBits += 8 * len(l.DataBlob)
		}
		for _, la := range p.Result.Assessment.Layers {
			nz += la.Sparse.Nonzeros()
		}
		bits := int(math.Round(float64(dataBits) / float64(nz)))
		if bits < 1 {
			bits = 1
		}
		if bits > 12 {
			bits = 12
		}

		dcDrop, err := deepCompDrop(p, bits)
		if err != nil {
			return err
		}
		wlDrop, err := weightlessDrop(p, bits)
		if err != nil {
			return err
		}
		dszDrop := p.Result.Before.Top1 - p.Result.After.Top1
		fmt.Fprintf(tw, "%s\t%d\t%+.2f%%\t%+.2f%%\t%+.2f%%\n",
			name, bits, 100*dcDrop, 100*wlDrop, 100*dszDrop)
	}
	fmt.Fprintln(tw, "\n(∆ = baseline − compressed top-1; positive means accuracy lost)")
	return tw.Flush()
}

// deepCompDrop quantizes every fc layer at the given bit width and measures
// the accuracy drop.
func deepCompDrop(p *Prepared, bits int) (float64, error) {
	recon := p.Pruned.Clone()
	for _, fc := range recon.DenseLayers() {
		c, err := deepcomp.CompressLayer(fc.Weights(), deepcomp.Options{Bits: bits})
		if err != nil {
			return 0, err
		}
		dense, err := c.Decompress()
		if err != nil {
			return 0, err
		}
		fc.SetWeights(dense)
	}
	acc := recon.Evaluate(p.Test, 100)
	return p.PrunedAcc.Top1 - acc.Top1, nil
}

// weightlessDrop Bloomier-encodes the largest fc layer at the given value
// bits and measures the accuracy drop (other layers stay exact, as in the
// paper).
func weightlessDrop(p *Prepared, bits int) (float64, error) {
	recon := p.Pruned.Clone()
	largest := largestLayer(p)
	var target *nn.Dense
	for _, fc := range recon.DenseLayers() {
		if fc.Name() == largest {
			target = fc
		}
	}
	f, err := weightless.Encode(target.Weights(), weightless.Options{ValueBits: bits, CheckBits: 4})
	if err != nil {
		return 0, err
	}
	target.SetWeights(f.Decompress())
	acc := recon.Evaluate(p.Test, 100)
	return p.PrunedAcc.Top1 - acc.Top1, nil
}
