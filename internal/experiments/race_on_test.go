//go:build race

package experiments

// raceEnabled gates the training-heavy report tests: under the race
// detector they run >10x slower and blow the package test timeout, and
// they contain no concurrency of their own (CI covers them in its
// non-race test step).
const raceEnabled = true
