// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5) on the scaled substrates, printing rows/series in
// the paper's shape. Both cmd/experiments and the repository benchmarks call
// into this package, so numbers in EXPERIMENTS.md come from the same code
// paths the benchmarks exercise.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// Prepared is a network taken through the full DeepSZ pipeline: trained,
// pruned to the paper's keep ratios, mask-retrained, and encoded.
type Prepared struct {
	*models.Trained
	// Pruned is the pruned + mask-retrained network the encoders consume.
	Pruned *nn.Network
	// PrunedAcc is Pruned's test accuracy (DeepSZ's baseline).
	PrunedAcc nn.Accuracy
	// Result is the DeepSZ encoding of Pruned.
	Result *core.Result
}

var (
	prepMu sync.Mutex
	preps  = map[string]*Prepared{}
)

// PipelineConfig returns the core.Config used throughout the experiments.
// The accuracy budget is scaled to the synthetic test sets' resolution
// (1/600 per image vs the paper's 1/50000); see EXPERIMENTS.md.
func PipelineConfig() core.Config {
	return core.Config{
		ExpectedAccuracyLoss: 0.02,
		DistortionCriterion:  0.005,
		StartErrorBound:      1e-3,
		// §3.4 requires eb < 0.1 so ∆W ≪ W and the linearity model holds.
		MaxErrorBound: 0.1,
		TestBatch:     100,
	}
}

// Prepare trains (via the model zoo), prunes, retrains, and DeepSZ-encodes
// the named network, caching the result for the life of the process.
func Prepare(name string) (*Prepared, error) {
	prepMu.Lock()
	defer prepMu.Unlock()
	if p, ok := preps[name]; ok {
		return p, nil
	}
	tr, err := models.Pretrained(name)
	if err != nil {
		return nil, err
	}
	pruned := tr.Net.Clone()
	prune.Network(pruned, prune.PaperRatios(name), 0.1)
	prune.Retrain(pruned, tr.Train, 1, 0.03, tensor.NewRNG(1234))
	p := &Prepared{Trained: tr, Pruned: pruned}
	p.PrunedAcc = pruned.Evaluate(tr.Test, 100)
	p.Result, err = core.Encode(pruned, tr.Test, PipelineConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: encoding %s: %w", name, err)
	}
	preps[name] = p
	return p, nil
}

// Runner is a named experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"table1", "Table 1: architectures of the evaluation networks", Table1},
		{"fig2", "Figure 2: SZ vs ZFP compression ratios on fc data arrays", Fig2},
		{"fig4", "Figure 4: lossless compressors on index arrays", Fig4},
		{"fig5", "Figures 3+5: inference accuracy vs per-layer error bound", Fig5},
		{"fig6", "Figure 6: linearity of accuracy loss", Fig6},
		{"table2", "Table 2: per-layer compression statistics", Table2},
		{"table3", "Table 3: inference accuracy of DeepSZ-compressed networks", Table3},
		{"table4", "Table 4: compression-ratio comparison of the three methods", Table4},
		{"table5", "Table 5: accuracy degradation at comparable ratios", Table5},
		{"fig7", "Figure 7: encoding and decoding time", Fig7},
		{"ablation", "Ablations: dense-vs-CSR compression, SZ design choices", Ablation},
	}
}

// Run executes the experiment with the given id ("all" runs everything).
func Run(id string, w io.Writer) error {
	if id == "all" {
		for _, r := range All() {
			fmt.Fprintf(w, "\n================ %s ================\n", r.Title)
			if err := r.Run(w); err != nil {
				return fmt.Errorf("%s: %w", r.ID, err)
			}
		}
		return nil
	}
	for _, r := range All() {
		if r.ID == id {
			fmt.Fprintf(w, "%s\n\n", r.Title)
			return r.Run(w)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q", id)
}
