package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/models"
)

// The experiment reports train real networks; only the cheapest paths run
// here (and skip entirely under -short or the race detector — they are
// compute-bound with no concurrency of their own, and the >10x race
// slowdown blows the package timeout). cmd/experiments and the repo
// benchmarks exercise the full set.

func skipIfHeavy(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	if raceEnabled {
		t.Skip("training under -race blows the test timeout; covered by the non-race run")
	}
}

func TestPrepareCachesAndEncodes(t *testing.T) {
	skipIfHeavy(t)
	p, err := Prepare(models.LeNet300)
	if err != nil {
		t.Fatal(err)
	}
	if p.Result == nil || p.Result.CompressedBytes <= 0 {
		t.Fatal("Prepare did not encode")
	}
	if p.Result.CompressionRatio() < 20 {
		t.Fatalf("ratio %.1f suspiciously low", p.Result.CompressionRatio())
	}
	if p.PrunedAcc.Top1 < 0.85 {
		t.Fatalf("pruned accuracy %.3f too low", p.PrunedAcc.Top1)
	}
	p2, err := Prepare(models.LeNet300)
	if err != nil {
		t.Fatal(err)
	}
	if p != p2 {
		t.Fatal("Prepare must cache")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &buf); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestAllHaveDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range All() {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != 11 {
		t.Fatalf("expected 11 experiments, got %d", len(seen))
	}
}

func TestTable1Report(t *testing.T) {
	skipIfHeavy(t)
	var buf bytes.Buffer
	if err := Run("table1", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LeNet-300-100", "AlexNet", "VGG-16", "fc6 4096×25088"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Report(t *testing.T) {
	skipIfHeavy(t)
	var buf bytes.Buffer
	if err := Run("table3", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range models.All() {
		if !strings.Contains(out, name+" original") || !strings.Contains(out, name+" DeepSZ") {
			t.Fatalf("table3 missing rows for %s:\n%s", name, out)
		}
	}
}

func TestFig2ShapeSZBeatsZFP(t *testing.T) {
	skipIfHeavy(t)
	var buf bytes.Buffer
	if err := Run("fig2", &buf); err != nil {
		t.Fatal(err)
	}
	// The report prints SZ and ZFP rows per layer; spot-check presence.
	out := buf.String()
	if !strings.Contains(out, "SZ") || !strings.Contains(out, "ZFP") {
		t.Fatalf("fig2 output malformed:\n%s", out)
	}
}
