package experiments

// Shape tests: assert the paper's qualitative claims hold on the scaled
// substrates (the quantitative record lives in EXPERIMENTS.md). Only the
// cheapest network is used so the suite stays fast.

import (
	"testing"
	"time"

	"repro/internal/deepcomp"
	"repro/internal/models"
	"repro/internal/prune"
	"repro/internal/weightless"
)

func TestShapeDeepSZBeatsDeepCompressionOverall(t *testing.T) {
	skipIfHeavy(t)
	p, err := Prepare(models.LeNet300)
	if err != nil {
		t.Fatal(err)
	}
	var orig, dcTotal int
	for _, fc := range p.Pruned.DenseLayers() {
		orig += 4 * len(fc.Weights())
		c, err := deepcomp.CompressLayer(fc.Weights(), deepcomp.Options{Bits: 5})
		if err != nil {
			t.Fatal(err)
		}
		dcTotal += c.Bytes()
	}
	dszRatio := p.Result.CompressionRatio()
	dcRatio := float64(orig) / float64(dcTotal)
	if dszRatio <= dcRatio {
		t.Fatalf("Table 4 shape violated: DeepSZ %.1fx vs Deep Compression %.1fx", dszRatio, dcRatio)
	}
}

func TestShapeBoundedErrorBeatsUnboundedAtMatchedBits(t *testing.T) {
	skipIfHeavy(t)
	// Table 5's claim: at DeepSZ's bit budget, unbounded quantization loses
	// far more accuracy than DeepSZ does.
	p, err := Prepare(models.LeNet300)
	if err != nil {
		t.Fatal(err)
	}
	dszDrop := p.Result.Before.Top1 - p.Result.After.Top1
	dcDrop, err := deepCompDrop(p, 2) // ~DeepSZ's data bits per weight
	if err != nil {
		t.Fatal(err)
	}
	if dcDrop < dszDrop {
		t.Fatalf("Table 5 shape violated: DC drop %.4f < DeepSZ drop %.4f at 2 bits", dcDrop, dszDrop)
	}
	if dcDrop < 0.03 {
		t.Fatalf("2-bit unbounded quantization should hurt noticeably, dropped only %.4f", dcDrop)
	}
}

func TestShapeWeightlessDecodeSlower(t *testing.T) {
	skipIfHeavy(t)
	// Figure 7b's claim: Bloomier-filter decode pays 4 hashes per dense
	// position and is much slower than CSR reconstruction.
	p, err := Prepare(models.LeNet300)
	if err != nil {
		t.Fatal(err)
	}
	fc := p.Pruned.DenseLayers()[0]
	f, err := weightless.Encode(fc.Weights(), weightless.Options{ValueBits: 4, CheckBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	sp := prune.Encode(fc.Weights())

	wlT := timeIt(func() { f.Decompress() })
	csrT := timeIt(func() {
		if _, err := sp.Decode(); err != nil {
			t.Error(err)
		}
	})
	if wlT < csrT {
		t.Fatalf("Figure 7b shape violated: Weightless decode %v faster than CSR %v", wlT, csrT)
	}
}

func TestShapeBudgetRespectedEndToEnd(t *testing.T) {
	skipIfHeavy(t)
	p, err := Prepare(models.LeNet300)
	if err != nil {
		t.Fatal(err)
	}
	loss := p.Result.Before.Top1 - p.Result.After.Top1
	budget := PipelineConfig().ExpectedAccuracyLoss
	// Allow one test-set quantum of slack beyond the budget.
	if loss > budget+1.0/float64(p.Test.Len()) {
		t.Fatalf("accuracy loss %.4f exceeds budget %.4f", loss, budget)
	}
}

// timeIt returns the wall time of one invocation of fn.
func timeIt(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}
