package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestBenchServeReport runs the trajectory generator end to end and pins
// the claims BENCH_serve.json exists to record. Timing assertions are
// deliberately loose (CI machines vary); the hit-rate comparison is a
// deterministic function of cache capacity and asserted tightly.
func TestBenchServeReport(t *testing.T) {
	if testing.Short() {
		t.Skip("timing loops")
	}
	var buf bytes.Buffer
	if err := WriteBenchServe(&buf); err != nil {
		t.Fatal(err)
	}
	var r BenchReport
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(r.Kernel) != 5 {
		t.Fatalf("kernel sweep has %d points", len(r.Kernel))
	}
	for _, p := range r.Kernel {
		if p.DenseNsOp <= 0 || p.CSRNsOp <= 0 {
			t.Fatalf("non-positive timing at density %v: %+v", p.Density, p)
		}
		if p.Density <= 0.15 && p.ResidentFrac >= 0.5 {
			t.Fatalf("CSR residency at density %v should be far under dense: %+v", p.Density, p)
		}
	}
	// Paper-density point: the CSR kernel does ~10% of the multiplies; even
	// on a noisy shared runner it must be clearly faster.
	at10 := r.Kernel[1]
	if at10.Density != 0.1 {
		t.Fatalf("second kernel point is density %v, want 0.1", at10.Density)
	}
	if at10.Speedup < 1.2 {
		t.Fatalf("CSR speedup at paper density is %.2fx; expected well above 1x (≥2x on idle hardware)", at10.Speedup)
	}
	// Fixed two-dense-layer budget over eight layers: dense residency
	// thrashes (sequential LRU scan), sparse residency fits every layer.
	if r.ServingSparse.HitRate <= r.ServingDense.HitRate {
		t.Fatalf("sparse residency did not improve hit rate: %v vs %v",
			r.ServingSparse.HitRate, r.ServingDense.HitRate)
	}
	if r.ServingSparse.HitRate < 0.9 {
		t.Fatalf("sparse residency should make the whole model resident (hit rate %v)", r.ServingSparse.HitRate)
	}
	if r.ServingDense.SparseBytes != 0 {
		t.Fatalf("dense-policy run reported sparse residents: %+v", r.ServingDense)
	}
	if r.ServingSparse.SparseBytes == 0 {
		t.Fatalf("sparse-policy run reported no sparse residents: %+v", r.ServingSparse)
	}
}
