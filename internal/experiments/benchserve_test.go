package experiments

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
)

// TestBenchServeReport runs the trajectory generator end to end and pins
// the claims BENCH_serve.json exists to record. Timing assertions are
// deliberately loose (CI machines vary); the hit-rate comparison is a
// deterministic function of cache capacity and asserted tightly.
func TestBenchServeReport(t *testing.T) {
	if testing.Short() {
		t.Skip("timing loops")
	}
	var buf bytes.Buffer
	if err := WriteBenchServe(&buf); err != nil {
		t.Fatal(err)
	}
	var r BenchReport
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(r.Kernel) != 5 {
		t.Fatalf("kernel sweep has %d points", len(r.Kernel))
	}
	for _, p := range r.Kernel {
		if p.DenseNsOp <= 0 || p.CSRNsOp <= 0 {
			t.Fatalf("non-positive timing at density %v: %+v", p.Density, p)
		}
		if p.Density <= 0.15 && p.ResidentFrac >= 0.5 {
			t.Fatalf("CSR residency at density %v should be far under dense: %+v", p.Density, p)
		}
	}
	// Paper-density point: the CSR kernel does ~10% of the multiplies; even
	// on a noisy shared runner it must be clearly faster.
	at10 := r.Kernel[1]
	if at10.Density != 0.1 {
		t.Fatalf("second kernel point is density %v, want 0.1", at10.Density)
	}
	if at10.Speedup < 1.2 {
		t.Fatalf("CSR speedup at paper density is %.2fx; expected well above 1x (≥2x on idle hardware)", at10.Speedup)
	}
	// Kernel scaling sweep: structure and honesty checks everywhere, real
	// scaling asserted only where the hardware can deliver it.
	ks := r.KernelScaling
	if ks.PhysicalCPUs != runtime.NumCPU() {
		t.Fatalf("kernel_scaling physical_cpus %d, want %d", ks.PhysicalCPUs, runtime.NumCPU())
	}
	if len(ks.Points) != 4 {
		t.Fatalf("kernel_scaling has %d points, want 4 (GOMAXPROCS 1/2/4/8)", len(ks.Points))
	}
	atProcs := map[int]KernelScalingPoint{}
	for _, p := range ks.Points {
		if p.DenseNsOp <= 0 || p.CSRNsOp <= 0 || p.DenseRowsSec <= 0 || p.CSRRowsSec <= 0 {
			t.Fatalf("non-positive kernel_scaling point: %+v", p)
		}
		atProcs[p.Procs] = p
	}
	if p1 := atProcs[1]; p1.DenseSpeedup != 1 || p1.CSRSpeedup != 1 {
		t.Fatalf("GOMAXPROCS=1 point is not the speedup baseline: %+v", p1)
	}
	// Scaling claims need the cores to exist and an uninstrumented build;
	// oversubscribed or race-instrumented sweeps record honest flat numbers
	// instead.
	if !raceEnabled && runtime.NumCPU() >= 4 {
		if p4 := atProcs[4]; p4.DenseSpeedup < 1.8 {
			t.Fatalf("dense kernel speedup at GOMAXPROCS=4 is %.2fx on a %d-core machine; want ≥1.8x",
				p4.DenseSpeedup, runtime.NumCPU())
		}
	}
	if !raceEnabled && runtime.NumCPU() >= 8 {
		if p8 := atProcs[8]; p8.DenseSpeedup < 3 {
			t.Fatalf("dense kernel speedup at GOMAXPROCS=8 is %.2fx on a %d-core machine; want ≥3x",
				p8.DenseSpeedup, runtime.NumCPU())
		}
	}
	if r.ServingMatrixProcs != 4 {
		t.Fatalf("serving matrix measured at GOMAXPROCS=%d, want 4", r.ServingMatrixProcs)
	}

	// Fixed two-dense-layer budget over eight layers: dense residency
	// thrashes (sequential LRU scan), sparse residency fits every layer.
	if r.ServingSparse.HitRate <= r.ServingDense.HitRate {
		t.Fatalf("sparse residency did not improve hit rate: %v vs %v",
			r.ServingSparse.HitRate, r.ServingDense.HitRate)
	}
	if r.ServingSparse.HitRate < 0.9 {
		t.Fatalf("sparse residency should make the whole model resident (hit rate %v)", r.ServingSparse.HitRate)
	}
	if r.ServingDense.SparseBytes != 0 {
		t.Fatalf("dense-policy run reported sparse residents: %+v", r.ServingDense)
	}
	if r.ServingSparse.SparseBytes == 0 {
		t.Fatalf("sparse-policy run reported no sparse residents: %+v", r.ServingSparse)
	}

	// Policy × prefetch matrix on the mixed-codec workload. Hit-rate
	// comparisons are deterministic functions of the policies; rows/s is
	// asserted only for sanity (CI machines vary).
	if len(r.ServingMatrix) != 4 {
		t.Fatalf("serving matrix has %d cells, want 4 (lru/gdsf × depth 0/2)", len(r.ServingMatrix))
	}
	cell := func(policy string, depth int) ServingVariant {
		for _, v := range r.ServingMatrix {
			if v.Policy == policy && v.PrefetchDepth == depth {
				return v
			}
		}
		t.Fatalf("matrix cell %s/depth%d missing: %+v", policy, depth, r.ServingMatrix)
		return ServingVariant{}
	}
	for _, v := range r.ServingMatrix {
		if v.RowsPerSec <= 0 {
			t.Fatalf("non-positive throughput in cell %+v", v)
		}
		if v.PrefetchDepth == 0 && v.Prefetches != 0 {
			t.Fatalf("prefetch-off cell issued speculative decodes: %+v", v)
		}
		if v.PrefetchDepth > 0 && v.Prefetches == 0 {
			t.Fatalf("prefetch-on cell issued no speculative decodes: %+v", v)
		}
		if v.EffectiveHitRate < v.HitRate {
			t.Fatalf("effective hit rate below plain hit rate: %+v", v)
		}
	}
	// Cost-aware eviction must not lose to LRU on a mixed-cost cyclic
	// scan: LRU's sequential thrash evicts every layer right before its
	// reuse, GDSF retains the most expensive ones.
	if gdsf, lru := cell("gdsf", 0), cell("lru", 0); gdsf.HitRate < lru.HitRate {
		t.Fatalf("gdsf hit rate %v below lru %v on the mixed-codec workload", gdsf.HitRate, lru.HitRate)
	}
	// Decode-ahead must convert stalls into hits or overlapped decodes.
	if on, off := cell("lru", 2), cell("lru", 0); on.EffectiveHitRate <= off.EffectiveHitRate {
		t.Fatalf("prefetch-on effective hit rate %v did not improve on prefetch-off %v",
			on.EffectiveHitRate, off.EffectiveHitRate)
	}
}
