package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// This file emits the gateway scaling trajectory (BENCH_gateway.json):
// aggregate predict throughput of an in-process gateway + cluster at 1,
// 2, and 4 replicas, driven by the same multi-model closed-loop load.
//
// What makes 1 → 4 scale is deliberately NOT parallel matmuls (CI
// runners and dev boxes may have one core): every replica's decode
// cache is budgeted at ~3 of the workload's eight models, so a single
// replica thrashes — most requests pay the full huffman+sz decode —
// while rendezvous affinity confines each model to ≤2 replicas and the
// fleet's aggregate cache grows to hold the whole working set. The
// throughput curve therefore measures the routing tier's actual job:
// turning N small caches into one big one without sharing memory.

// Gateway bench workload shape. Eight models × three fc layers at the
// paper's ~10% density; per-replica budget is set from the measured
// resident cost of one model (see BenchGateway). Eight models (not
// fewer) so the rendezvous split over 2 replicas stays near-balanced
// regardless of the random backend ports feeding the hash.
const (
	gwModels            = 8
	gwLayersPerModel    = 3
	gwInputLen          = 512
	gwClients           = 2
	gwRequestsPerClient = 60
	gwRowsPerRequest    = 4
	gwBudgetModels      = 3 // replica cache holds ~this many models
)

// GatewayPoint is one cluster size's measurement.
type GatewayPoint struct {
	Replicas   int     `json:"replicas"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// HitRate aggregates the replicas' decode-cache hit rates — the
	// mechanism behind the throughput column.
	HitRate   float64 `json:"aggregate_cache_hit_rate"`
	Shed      uint64  `json:"shed"`
	Failovers uint64  `json:"failovers"`
	// SpeedupVs1 is RowsPerSec over the 1-replica point's.
	SpeedupVs1 float64 `json:"speedup_vs_1,omitempty"`
}

// GatewayReport is the BENCH_gateway.json schema.
type GatewayReport struct {
	GeneratedUnix         int64          `json:"generated_unix"`
	CPU                   int            `json:"gomaxprocs"`
	Models                int            `json:"models"`
	LayersPerModel        int            `json:"layers_per_model"`
	PerModelResidentBytes int64          `json:"per_model_resident_bytes"`
	ReplicaBudgetBytes    int64          `json:"replica_budget_bytes"`
	Clients               int            `json:"clients"`
	RequestsPerClient     int            `json:"requests_per_client"`
	RowsPerRequest        int            `json:"rows_per_request"`
	Points                []GatewayPoint `json:"points"`
	Scaling1To4           float64        `json:"scaling_1_to_4"`
}

var (
	gwOnce sync.Once
	gwNets []*nn.Network
	gwMods []*core.Model
	gwErr  error

	gwResOnce  sync.Once
	gwResident int64
	gwResErr   error
)

// gatewayWorkload builds (once) the gwModels compressed models the
// cluster serves: distinct weights per model, balanced fc layers, ~10%
// density.
func gatewayWorkload() ([]*nn.Network, []*core.Model, error) {
	gwOnce.Do(func() {
		for i := 0; i < gwModels; i++ {
			rng := tensor.NewRNG(uint64(900 + i))
			layers := []nn.Layer{nn.NewFlatten("flat")}
			ratios := map[string]float64{}
			for l := 0; l < gwLayersPerModel; l++ {
				name := fmt.Sprintf("fc%d", l)
				layers = append(layers, nn.NewDense(name, gwInputLen, gwInputLen, rng), nn.NewReLU(name+"-relu"))
				ratios[name] = 0.1
			}
			net := nn.NewNetwork(fmt.Sprintf("gw-bench-%d", i), layers...)
			prune.Network(net, ratios, 0.1)
			plan := &core.Plan{}
			for _, fc := range net.DenseLayers() {
				plan.Choices = append(plan.Choices, core.Choice{Layer: fc.Name(), EB: 1e-3})
			}
			m, err := core.Generate(net, plan, core.Config{ExpectedAccuracyLoss: 0.01})
			if err != nil {
				gwErr = err
				return
			}
			gwNets = append(gwNets, net)
			gwMods = append(gwMods, m)
		}
	})
	return gwNets, gwMods, gwErr
}

// residentBytesPerModel measures (once — it is deterministic and costs
// a full decode) what one model costs the decode cache once warm (CSR
// residency at the default sparse threshold), so the replica budget
// tracks the workload instead of a magic number.
func residentBytesPerModel() (int64, error) {
	gwResOnce.Do(func() {
		nets, mods, err := gatewayWorkload()
		if err != nil {
			gwResErr = err
			return
		}
		reg := serve.NewRegistry(0, serve.BatchOptions{})
		defer reg.Close()
		e, err := reg.Add("probe", mods[0], nets[0], []int{gwInputLen})
		if err != nil {
			gwResErr = err
			return
		}
		row := make([]float32, gwInputLen)
		tensor.NewRNG(1).FillNormal(row, 0, 1)
		if _, err := e.Predict([][]float32{row}); err != nil {
			gwResErr = err
			return
		}
		s := reg.Cache().Stats()
		gwResident = s.SparseBytes + s.DenseBytes
	})
	return gwResident, gwResErr
}

// replicaBudget is the one place the per-replica cache budget is
// derived from the measured per-model cost: gwBudgetModels models plus
// slack so exactly that many fit without borderline eviction.
func replicaBudget(perModel int64) int64 {
	return gwBudgetModels*perModel + perModel/8
}

// BenchGatewayPoint boots an in-process cluster of n serve.Server
// replicas behind a gateway and drives the closed-loop multi-model load
// through real HTTP, returning the measured point.
func BenchGatewayPoint(n int) (GatewayPoint, error) {
	nets, mods, err := gatewayWorkload()
	if err != nil {
		return GatewayPoint{}, err
	}
	perModel, err := residentBytesPerModel()
	if err != nil {
		return GatewayPoint{}, err
	}
	budget := replicaBudget(perModel)

	regs := make([]*serve.Registry, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		// MaxBatch = the load's request size: each request flushes
		// immediately instead of idling in the 2ms batch window, so the
		// measurement is decode/cache economics, not batcher latency.
		reg := serve.NewRegistry(budget, serve.BatchOptions{MaxBatch: gwRowsPerRequest})
		for j := range mods {
			if _, err := reg.Add(fmt.Sprintf("m%d", j), mods[j], nets[j], []int{gwInputLen}); err != nil {
				reg.Close()
				return GatewayPoint{}, err
			}
		}
		ts := httptest.NewServer(serve.NewServer(reg))
		defer ts.Close()
		defer reg.Close()
		regs[i], urls[i] = reg, ts.URL
	}
	g, err := gateway.New(urls, gateway.Options{
		ProbeInterval: 200 * time.Millisecond,
		HedgeAfter:    -1, // hedges would duplicate decodes and blur the cache story
		MaxPending:    1024,
	})
	if err != nil {
		return GatewayPoint{}, err
	}
	defer g.Close()
	gw := httptest.NewServer(g)
	defer gw.Close()

	rng := tensor.NewRNG(7)
	rows := make([][]float32, gwRowsPerRequest)
	for i := range rows {
		rows[i] = make([]float32, gwInputLen)
		rng.FillNormal(rows[i], 0, 1)
	}
	body, err := json.Marshal(struct {
		Inputs [][]float32 `json:"inputs"`
	}{rows})
	if err != nil {
		return GatewayPoint{}, err
	}
	post := func(model int) error {
		resp, err := http.Post(fmt.Sprintf("%s/v1/models/m%d/predict", gw.URL, model), "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("predict m%d: status %d", model, resp.StatusCode)
		}
		return nil
	}

	// Warm: one pass over every model settles the affinity placement.
	for m := 0; m < gwModels; m++ {
		if err := post(m); err != nil {
			return GatewayPoint{}, err
		}
	}
	hits0, misses0 := cacheTotals(regs)

	errCh := make(chan error, gwClients)
	t0 := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < gwClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Random (not round-robin) model choice: a strict cycle is
			// LRU's pathological worst case and would overstate thrash.
			r := rand.New(rand.NewSource(int64(100 + c)))
			for i := 0; i < gwRequestsPerClient; i++ {
				if err := post(r.Intn(gwModels)); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	select {
	case err := <-errCh:
		return GatewayPoint{}, err
	default:
	}

	hits1, misses1 := cacheTotals(regs)
	p := GatewayPoint{
		Replicas:   n,
		RowsPerSec: float64(gwClients*gwRequestsPerClient*gwRowsPerRequest) / elapsed,
	}
	if dh, dm := hits1-hits0, misses1-misses0; dh+dm > 0 {
		p.HitRate = float64(dh) / float64(dh+dm)
	}
	s := g.Stats()
	p.Shed, p.Failovers = s.Shed, s.Failovers
	return p, nil
}

// cacheTotals sums hits and misses across the replicas' decode caches.
func cacheTotals(regs []*serve.Registry) (hits, misses uint64) {
	for _, reg := range regs {
		s := reg.Cache().Stats()
		hits += s.Hits
		misses += s.Misses + s.Bypasses // a bypass is a miss that could not even be kept
	}
	return hits, misses
}

// BenchGateway measures the 1/2/4-replica scaling curve.
func BenchGateway() (*GatewayReport, error) {
	perModel, err := residentBytesPerModel()
	if err != nil {
		return nil, err
	}
	r := &GatewayReport{
		GeneratedUnix:         time.Now().Unix(),
		CPU:                   runtime.GOMAXPROCS(0),
		Models:                gwModels,
		LayersPerModel:        gwLayersPerModel,
		PerModelResidentBytes: perModel,
		ReplicaBudgetBytes:    replicaBudget(perModel),
		Clients:               gwClients,
		RequestsPerClient:     gwRequestsPerClient,
		RowsPerRequest:        gwRowsPerRequest,
	}
	for _, n := range []int{1, 2, 4} {
		p, err := BenchGatewayPoint(n)
		if err != nil {
			return nil, err
		}
		if len(r.Points) > 0 {
			p.SpeedupVs1 = p.RowsPerSec / r.Points[0].RowsPerSec
		}
		r.Points = append(r.Points, p)
	}
	r.Scaling1To4 = r.Points[len(r.Points)-1].RowsPerSec / r.Points[0].RowsPerSec
	return r, nil
}

// WriteBenchGateway runs BenchGateway and writes the JSON report to w.
func WriteBenchGateway(w io.Writer) error {
	r, err := BenchGateway()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
