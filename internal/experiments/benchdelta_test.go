package experiments

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchDeltaFlattensAndCompares(t *testing.T) {
	oldDoc := map[string]any{
		"speedup": 2.0,
		"kernel": []any{
			map[string]any{"density": 0.1, "ns": 100.0},
			map[string]any{"density": 0.5, "ns": 400.0},
		},
		"gone": 7.0,
		"zero": 0.0,
	}
	newDoc := map[string]any{
		"speedup": 3.0,
		"kernel": []any{
			map[string]any{"density": 0.1, "ns": 50.0},
			map[string]any{"density": 0.5, "ns": 400.0},
		},
		"added": 1.0,
		"zero":  5.0,
	}
	rows := BenchDelta(oldDoc, newDoc)
	byPath := map[string]BenchDeltaRow{}
	for _, r := range rows {
		byPath[r.Path] = r
	}
	if r := byPath["speedup"]; r.PctDelta != 50 {
		t.Fatalf("speedup delta %v, want +50%%", r.PctDelta)
	}
	if r := byPath["kernel[0].ns"]; r.PctDelta != -50 {
		t.Fatalf("kernel[0].ns delta %v, want -50%%", r.PctDelta)
	}
	if r := byPath["kernel[1].ns"]; r.PctDelta != 0 {
		t.Fatalf("unchanged metric delta %v, want 0", r.PctDelta)
	}
	if r := byPath["gone"]; !math.IsNaN(r.New) {
		t.Fatalf("removed metric should have NaN new side: %+v", r)
	}
	if r := byPath["added"]; !math.IsNaN(r.Old) {
		t.Fatalf("added metric should have NaN old side: %+v", r)
	}
	if r := byPath["zero"]; !math.IsNaN(r.PctDelta) {
		t.Fatalf("0 -> 5 has no meaningful %% delta, got %v", r.PctDelta)
	}
	// Rows come back sorted by path.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Path >= rows[i].Path {
			t.Fatalf("rows not sorted: %q before %q", rows[i-1].Path, rows[i].Path)
		}
	}
}

func TestWriteBenchDelta(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(`{"rows_per_sec": 1000, "hit_rate": 0.5, "steady": 9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(`{"rows_per_sec": 1500, "hit_rate": 0.5, "steady": 9.0001}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteBenchDelta(&buf, oldPath, newPath, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rows_per_sec") || !strings.Contains(out, "+50.0%") {
		t.Fatalf("output missing the changed metric:\n%s", out)
	}
	if strings.Contains(out, "hit_rate") || strings.Contains(out, "steady ") {
		t.Fatalf("metrics inside the threshold should be summarised, not listed:\n%s", out)
	}
	if !strings.Contains(out, "2 metrics within") {
		t.Fatalf("output missing the quiet-metric summary:\n%s", out)
	}

	if err := WriteBenchDelta(&buf, filepath.Join(dir, "missing.json"), newPath, 5); err == nil {
		t.Fatal("expected an error for a missing input file")
	}
}
