package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/deepcomp"
	"repro/internal/models"
	"repro/internal/prune"
	"repro/internal/tensor"
	"repro/internal/weightless"
)

// retrainEpochs models the fine-tuning each baseline needs to recover
// accuracy after its unbounded quantization (paper §4.2–4.3: Deep
// Compression and Weightless both retrain; DeepSZ does not). The epoch
// counts follow the paper's observation that Weightless needs the longest
// recovery.
const (
	dcRetrainEpochs = 2
	wlRetrainEpochs = 3
)

// Fig7 measures encoding time (DeepSZ assessment+optimisation+generation vs
// the baselines' quantize+retrain) and the decoding-time breakdown.
func Fig7(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "--- encoding time (lower is better) ---")
	fmt.Fprintln(tw, "network\tDeepSZ\tDeepComp\tWeightless\tspeedup vs 2nd best")
	for _, name := range []string{models.LeNet5, models.AlexNetS, models.VGG16S} {
		p, err := Prepare(name)
		if err != nil {
			return err
		}
		dszT := p.Result.EncodeTime

		dcT, err := timeDeepCompEncode(p)
		if err != nil {
			return err
		}
		wlT, err := timeWeightlessEncode(p)
		if err != nil {
			return err
		}
		second := dcT
		if wlT < second {
			second = wlT
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%.1fx\n",
			name, dszT.Round(time.Millisecond), dcT.Round(time.Millisecond),
			wlT.Round(time.Millisecond), float64(second)/float64(dszT))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\n--- decoding time ---")
	fmt.Fprintln(tw, "network\tDeepSZ total\t(lossless / SZ / reconstruct)\tDeepComp\tWeightless")
	for _, name := range []string{models.LeNet5, models.AlexNetS, models.VGG16S} {
		p, err := Prepare(name)
		if err != nil {
			return err
		}
		recon := p.Pruned.Clone()
		bd, err := p.Result.Model.Apply(recon)
		if err != nil {
			return err
		}
		dszTotal := bd.Lossless + bd.Lossy + bd.Reconstruct

		dcT, err := timeDeepCompDecode(p)
		if err != nil {
			return err
		}
		wlT, err := timeWeightlessDecode(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%v\t(%v / %v / %v)\t%v\t%v\n",
			name, dszTotal.Round(time.Microsecond),
			bd.Lossless.Round(time.Microsecond), bd.Lossy.Round(time.Microsecond),
			bd.Reconstruct.Round(time.Microsecond),
			dcT.Round(time.Microsecond), wlT.Round(time.Microsecond))
	}
	fmt.Fprintln(tw, "\n(baseline encode times include the retraining their unbounded quantization requires:")
	fmt.Fprintf(tw, " DeepComp %d epochs, Weightless %d epochs; DeepSZ retrains nothing)\n", dcRetrainEpochs, wlRetrainEpochs)
	return tw.Flush()
}

func timeDeepCompEncode(p *Prepared) (time.Duration, error) {
	net := p.Pruned.Clone()
	t0 := time.Now()
	for _, fc := range net.DenseLayers() {
		if _, err := deepcomp.CompressLayer(fc.Weights(), deepcomp.Options{Bits: 5}); err != nil {
			return 0, err
		}
	}
	// Recovery retraining (masks kept).
	prune.Retrain(net, p.Train, dcRetrainEpochs, 0.02, tensor.NewRNG(5))
	return time.Since(t0), nil
}

func timeWeightlessEncode(p *Prepared) (time.Duration, error) {
	net := p.Pruned.Clone()
	largest := largestLayer(p)
	t0 := time.Now()
	for _, fc := range net.DenseLayers() {
		if fc.Name() != largest {
			continue
		}
		if _, err := weightless.Encode(fc.Weights(), weightless.Options{ValueBits: 4, CheckBits: 4}); err != nil {
			return 0, err
		}
	}
	prune.Retrain(net, p.Train, wlRetrainEpochs, 0.02, tensor.NewRNG(6))
	return time.Since(t0), nil
}

func timeDeepCompDecode(p *Prepared) (time.Duration, error) {
	var blobs []*deepcomp.Compressed
	for _, fc := range p.Pruned.DenseLayers() {
		c, err := deepcomp.CompressLayer(fc.Weights(), deepcomp.Options{Bits: 5})
		if err != nil {
			return 0, err
		}
		blobs = append(blobs, c)
	}
	t0 := time.Now()
	for _, c := range blobs {
		if _, err := c.Decompress(); err != nil {
			return 0, err
		}
	}
	return time.Since(t0), nil
}

func timeWeightlessDecode(p *Prepared) (time.Duration, error) {
	largest := largestLayer(p)
	var filter *weightless.Filter
	var others []*prune.Sparse
	for _, fc := range p.Pruned.DenseLayers() {
		if fc.Name() == largest {
			f, err := weightless.Encode(fc.Weights(), weightless.Options{ValueBits: 4, CheckBits: 4})
			if err != nil {
				return 0, err
			}
			filter = f
		} else {
			others = append(others, prune.Encode(fc.Weights()))
		}
	}
	t0 := time.Now()
	filter.Decompress()
	for _, sp := range others {
		if _, err := sp.Decode(); err != nil {
			return 0, err
		}
	}
	return time.Since(t0), nil
}
