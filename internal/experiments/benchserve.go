package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// This file emits the serving perf trajectory (BENCH_serve.json): a
// machine-readable record of what the sparse fast path buys over the
// dense one — kernel speedup by density, and cache hit rate plus
// throughput at a fixed byte budget. CI regenerates and uploads it on
// every run so future changes can be diffed against the trajectory
// instead of re-measured by hand.

// KernelPoint is one density sample of the fc forward kernel comparison.
type KernelPoint struct {
	Density      float64 `json:"density"`
	DenseNsOp    float64 `json:"dense_ns_op"`
	CSRNsOp      float64 `json:"csr_ns_op"`
	Speedup      float64 `json:"speedup"`       // dense / csr
	ResidentFrac float64 `json:"resident_frac"` // CSR bytes / dense bytes
}

// KernelScalingPoint is one GOMAXPROCS setting of the kernel scaling
// sweep: the fc forward through both kernels at a fixed shape and density.
type KernelScalingPoint struct {
	Procs        int     `json:"gomaxprocs"`
	DenseNsOp    float64 `json:"dense_ns_op"`
	DenseRowsSec float64 `json:"dense_rows_per_sec"`
	DenseSpeedup float64 `json:"dense_speedup_vs_p1"`
	CSRNsOp      float64 `json:"csr_ns_op"`
	CSRRowsSec   float64 `json:"csr_rows_per_sec"`
	CSRSpeedup   float64 `json:"csr_speedup_vs_p1"`
}

// KernelScaling is the multicore throughput record for the tiled kernels:
// ns/op and rows/s at GOMAXPROCS 1/2/4/8. PhysicalCPUs is runtime.NumCPU()
// on the generating machine — on a box with fewer cores than a sweep
// point, that point oversubscribes and its speedup is honestly flat; only
// multi-core runs (CI) can show real scaling.
type KernelScaling struct {
	Shape        string               `json:"shape"`
	Density      float64              `json:"density"`
	PhysicalCPUs int                  `json:"physical_cpus"`
	Points       []KernelScalingPoint `json:"points"`
}

// ServingSide is one residency policy's serving measurement.
type ServingSide struct {
	HitRate     float64 `json:"hit_rate"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	SparseBytes int64   `json:"sparse_bytes_in_use"`
	DenseBytes  int64   `json:"dense_bytes_in_use"`
}

// ServingVariant is one (eviction policy × prefetch depth) cell of the
// serving matrix, measured on the mixed-codec thrashing workload: a
// budget of two dense layers over eight, every layer resident dense, so
// residency choices — what to keep, what to decode ahead — are the whole
// difference between cells.
type ServingVariant struct {
	Policy        string `json:"policy"`
	PrefetchDepth int    `json:"prefetch_depth"`
	// HitRate counts demand decode-or-hit gets only; EffectiveHitRate also
	// counts gets served by joining an in-flight (often prefetch) decode.
	HitRate          float64 `json:"hit_rate"`
	EffectiveHitRate float64 `json:"effective_hit_rate"`
	RowsPerSec       float64 `json:"rows_per_sec"`
	Prefetches       uint64  `json:"prefetches"`
	PrefetchHits     uint64  `json:"prefetch_hits"`
	PrefetchWaste    uint64  `json:"prefetch_waste"`
	PrefetchOverlap  uint64  `json:"prefetch_overlap"`
	AdmissionDrops   uint64  `json:"admission_drops"`
}

// StageQuantiles is one pipeline stage's per-request latency summary,
// measured from the engine's own traces (the same instrumentation the
// /metrics stage histograms sample).
type StageQuantiles struct {
	Stage string `json:"stage"`
	P50Ns int64  `json:"p50_ns"`
	P95Ns int64  `json:"p95_ns"`
	P99Ns int64  `json:"p99_ns"`
}

// BenchReport is the BENCH_serve.json schema.
type BenchReport struct {
	GeneratedUnix int64  `json:"generated_unix"`
	CPU           int    `json:"gomaxprocs"`
	KernelShape   string `json:"kernel_shape"`
	// Kernel sweeps the fc forward at AlexNet-like shape across densities;
	// the paper's pruned fc layers sit near density 0.1.
	Kernel []KernelPoint `json:"kernel"`
	// KernelScaling sweeps the same shape across GOMAXPROCS for both
	// kernels at the paper's ~10% density.
	KernelScaling KernelScaling `json:"kernel_scaling"`
	// Serving fixes a cache budget of two dense layers over an
	// eight-layer model and compares dense-only residency against the
	// sparse threshold: CSR entries are ~8× smaller at 10% density, so
	// the same budget holds every layer and the hit rate jumps.
	ServingBudget int64       `json:"serving_budget_bytes"`
	ServingDense  ServingSide `json:"serving_dense"`
	ServingSparse ServingSide `json:"serving_sparse"`
	HitRateGain   float64     `json:"hit_rate_gain"`
	// ServingMatrix crosses eviction policy {lru, gdsf} with decode-ahead
	// depth {0, 2} on a mixed-codec (sz/deepcomp), mixed-decode-cost
	// workload at the same two-layer budget, all layers dense: prefetch
	// buys rows/s by overlapping decode with compute, GDSF buys hit rate
	// by keeping the layers whose re-decode costs the most. Measured at
	// GOMAXPROCS = ServingMatrixProcs so kernels and decode-ahead contend
	// the way a multicore deployment would.
	ServingMatrix      []ServingVariant `json:"serving_matrix"`
	ServingMatrixProcs int              `json:"serving_matrix_gomaxprocs"`
	// StageLatency breaks the sparse-side serving latency down by
	// pipeline stage (queue, batch_wait, cache_lookup, decode, kernel) at
	// p50/p95/p99, from per-request traces through the micro-batcher —
	// the offline twin of the deepsz_stage_duration_seconds histograms.
	StageLatency []StageQuantiles `json:"stage_latency"`
}

// timeOp measures steady-state ns/op of f over a ~120ms window.
func timeOp(f func()) float64 {
	f() // warm caches and pools
	t0 := time.Now()
	n := 0
	for time.Since(t0) < 120*time.Millisecond {
		f()
		n++
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(n)
}

// Sparsify zeroes all but roughly density of w, deterministically — the
// shared workload generator for the kernel sweep here and the top-level
// BenchmarkSparseForward, so both measure the same sparsity pattern.
func Sparsify(rng *tensor.RNG, w []float32, density float64) {
	gate := make([]float32, len(w))
	rng.FillUniform(gate, 0, 1)
	for i := range w {
		if float64(gate[i]) >= density {
			w[i] = 0
		}
	}
}

// benchKernel sweeps the fc forward kernel dense-vs-CSR by density.
func benchKernel() []KernelPoint {
	rng := tensor.NewRNG(55)
	const out, in, batch = 256, 2048, 16
	d := nn.NewDense("fc", in, out, rng)
	x := tensor.New(batch, in)
	rng.FillNormal(x.Data, 0, 1)
	var points []KernelPoint
	for _, density := range []float64{0.05, 0.1, 0.25, 0.5, 1} {
		w := append([]float32(nil), d.W.W.Data...)
		Sparsify(rng, w, density)
		csr := tensor.CSRFromDense(w, out, in)
		denseNs := timeOp(func() { d.ForwardWith(x, w, nil) })
		csrNs := timeOp(func() { d.ForwardSparse(x, csr, nil) })
		points = append(points, KernelPoint{
			Density:      density,
			DenseNsOp:    denseNs,
			CSRNsOp:      csrNs,
			Speedup:      denseNs / csrNs,
			ResidentFrac: float64(csr.Bytes()) / float64(4*len(w)),
		})
	}
	return points
}

// benchKernelScaling sweeps the fc forward across GOMAXPROCS for the dense
// and CSR kernels at the paper's ~10% density. GOMAXPROCS is restored
// before returning.
func benchKernelScaling() KernelScaling {
	rng := tensor.NewRNG(55)
	const out, in, batch = 256, 2048, 16
	const density = 0.1
	d := nn.NewDense("fc", in, out, rng)
	x := tensor.New(batch, in)
	rng.FillNormal(x.Data, 0, 1)
	w := append([]float32(nil), d.W.W.Data...)
	Sparsify(rng, w, density)
	csr := tensor.CSRFromDense(w, out, in)

	ks := KernelScaling{
		Shape:        fmt.Sprintf("fc %dx%d, batch %d", out, in, batch),
		Density:      density,
		PhysicalCPUs: runtime.NumCPU(),
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var dense1, csr1 float64
	for _, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		p := KernelScalingPoint{Procs: procs}
		p.DenseNsOp = timeOp(func() { d.ForwardWith(x, w, nil) })
		p.CSRNsOp = timeOp(func() { d.ForwardSparse(x, csr, nil) })
		p.DenseRowsSec = batch * 1e9 / p.DenseNsOp
		p.CSRRowsSec = batch * 1e9 / p.CSRNsOp
		if procs == 1 {
			dense1, csr1 = p.DenseNsOp, p.CSRNsOp
		}
		p.DenseSpeedup = dense1 / p.DenseNsOp
		p.CSRSpeedup = csr1 / p.CSRNsOp
		ks.Points = append(ks.Points, p)
	}
	return ks
}

// benchServingNet builds an eight-layer pruned MLP at the paper's ~10%
// fc density — balanced layers, so the cache-capacity effect is not
// hidden by one dominant layer.
func benchServingNet() (*nn.Network, *core.Model, error) {
	rng := tensor.NewRNG(77)
	layers := []nn.Layer{nn.NewFlatten("flat")}
	ratios := map[string]float64{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("fc%d", i)
		layers = append(layers, nn.NewDense(name, 256, 256, rng), nn.NewReLU(name+"-relu"))
		ratios[name] = 0.1
	}
	net := nn.NewNetwork("serve-bench", layers...)
	prune.Network(net, ratios, 0.1)
	plan := &core.Plan{}
	for _, fc := range net.DenseLayers() {
		plan.Choices = append(plan.Choices, core.Choice{Layer: fc.Name(), EB: 1e-3})
	}
	m, err := core.Generate(net, plan, core.Config{ExpectedAccuracyLoss: 0.01})
	return net, m, err
}

// benchServingSide serves requests against one residency policy and
// reports hit rate, throughput, and the cache's resident-byte split.
func benchServingSide(net *nn.Network, m *core.Model, budget int64, threshold float64) (ServingSide, error) {
	reg := serve.NewRegistry(budget, serve.BatchOptions{})
	defer reg.Close()
	reg.SetSparseThreshold(threshold)
	eng, err := reg.Add("bench", m, net, []int{256})
	if err != nil {
		return ServingSide{}, err
	}
	const rows, requests = 8, 60
	batch := make([][]float32, rows)
	rng := tensor.NewRNG(123)
	for i := range batch {
		batch[i] = make([]float32, 256)
		rng.FillNormal(batch[i], 0, 1)
	}
	if _, err := eng.Predict(batch); err != nil { // warm
		return ServingSide{}, err
	}
	t0 := time.Now()
	for i := 0; i < requests; i++ {
		if _, err := eng.Predict(batch); err != nil {
			return ServingSide{}, err
		}
	}
	elapsed := time.Since(t0).Seconds()
	s := reg.Cache().Stats()
	return ServingSide{
		HitRate:     s.HitRate(),
		RowsPerSec:  float64(rows*requests) / elapsed,
		SparseBytes: s.SparseBytes,
		DenseBytes:  s.DenseBytes,
	}, nil
}

// benchMixedCodecNet builds the matrix workload: eight equal-shape fc
// layers whose decode costs differ — codecs alternate between sz and the
// Deep-Compression-style path, and densities alternate between heavily
// and lightly pruned — so a cost-aware policy has real spread to exploit
// while every layer still charges the same dense bytes to the budget.
func benchMixedCodecNet() (*nn.Network, *core.Model, error) {
	rng := tensor.NewRNG(88)
	layers := []nn.Layer{nn.NewFlatten("flat")}
	ratios := map[string]float64{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("fc%d", i)
		layers = append(layers, nn.NewDense(name, 256, 256, rng), nn.NewReLU(name+"-relu"))
		if i%2 == 0 {
			ratios[name] = 0.05
		} else {
			ratios[name] = 0.4
		}
	}
	net := nn.NewNetwork("serve-bench-mixed", layers...)
	prune.Network(net, ratios, 0.1)
	plan := &core.Plan{}
	for i, fc := range net.DenseLayers() {
		id := codec.IDSZ
		if i%2 == 1 {
			id = codec.IDDeepComp
		}
		plan.Choices = append(plan.Choices, core.Choice{Layer: fc.Name(), EB: 1e-3, Codec: id})
	}
	m, err := core.Generate(net, plan, core.Config{ExpectedAccuracyLoss: 0.01})
	return net, m, err
}

// benchServingVariant serves the mixed-codec workload under one
// (policy, prefetch depth) configuration. Threshold 0 keeps every layer
// dense: at a two-of-eight budget the cache must thrash, and the cell's
// numbers are purely the policy's and the prefetcher's doing.
func benchServingVariant(net *nn.Network, m *core.Model, budget int64, policy serve.EvictionPolicy, depth int) (ServingVariant, error) {
	reg := serve.NewRegistry(budget, serve.BatchOptions{})
	defer reg.Close()
	if err := reg.SetEvictionPolicy(policy); err != nil {
		return ServingVariant{}, err
	}
	reg.SetSparseThreshold(0)
	reg.SetPrefetchDepth(depth)
	eng, err := reg.Add("bench-matrix", m, net, []int{256})
	if err != nil {
		return ServingVariant{}, err
	}
	// 64-row batches make the kernel comparable to a layer decode, so
	// decode-ahead has real compute to hide under — the regime the paper's
	// layer-at-a-time serving targets.
	const rows, requests = 64, 60
	batch := make([][]float32, rows)
	rng := tensor.NewRNG(345)
	for i := range batch {
		batch[i] = make([]float32, 256)
		rng.FillNormal(batch[i], 0, 1)
	}
	if _, err := eng.Predict(batch); err != nil { // warm
		return ServingVariant{}, err
	}
	t0 := time.Now()
	for i := 0; i < requests; i++ {
		if _, err := eng.Predict(batch); err != nil {
			return ServingVariant{}, err
		}
	}
	elapsed := time.Since(t0).Seconds()
	s := reg.Cache().Stats()
	return ServingVariant{
		Policy:           policy.String(),
		PrefetchDepth:    depth,
		HitRate:          s.HitRate(),
		EffectiveHitRate: s.EffectiveHitRate(),
		RowsPerSec:       float64(rows*requests) / elapsed,
		Prefetches:       s.Prefetches,
		PrefetchHits:     s.PrefetchHits,
		PrefetchWaste:    s.PrefetchWaste,
		PrefetchOverlap:  s.PrefetchOver,
		AdmissionDrops:   s.AdmissionDrops,
	}, nil
}

// benchServingMatrix measures every policy × depth cell.
func benchServingMatrix(net *nn.Network, m *core.Model, budget int64) ([]ServingVariant, error) {
	var out []ServingVariant
	for _, policy := range []serve.EvictionPolicy{serve.EvictLRU, serve.EvictGDSF} {
		for _, depth := range []int{0, 2} {
			v, err := benchServingVariant(net, m, budget, policy, depth)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// quantileNs picks the p-th percentile (0..100) from sorted ns samples.
func quantileNs(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)-1))
	return sorted[i]
}

// benchStageLatency serves traced requests through the micro-batcher and
// summarises each pipeline stage's per-request latency at p50/p95/p99.
func benchStageLatency(net *nn.Network, m *core.Model, budget int64, threshold float64) ([]StageQuantiles, error) {
	reg := serve.NewRegistry(budget, serve.BatchOptions{})
	defer reg.Close()
	reg.SetSparseThreshold(threshold)
	eng, err := reg.Add("bench-stage", m, net, []int{256})
	if err != nil {
		return nil, err
	}
	const rows, requests = 8, 60
	batch := make([][]float32, rows)
	rng := tensor.NewRNG(321)
	for i := range batch {
		batch[i] = make([]float32, 256)
		rng.FillNormal(batch[i], 0, 1)
	}
	var samples [telemetry.NumStages][]int64
	for i := 0; i < requests; i++ {
		tr := telemetry.NewTrace("")
		if _, err := eng.PredictBatchedTraced(batch, tr); err != nil {
			return nil, err
		}
		for _, st := range telemetry.Stages() {
			samples[st] = append(samples[st], tr.Dur(st).Nanoseconds())
		}
	}
	var out []StageQuantiles
	for _, st := range telemetry.Stages() {
		if st == telemetry.StageEncode {
			continue // encode is HTTP serialisation; there is none here
		}
		s := samples[st]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		out = append(out, StageQuantiles{
			Stage: st.String(),
			P50Ns: quantileNs(s, 50),
			P95Ns: quantileNs(s, 95),
			P99Ns: quantileNs(s, 99),
		})
	}
	return out, nil
}

// BenchServe runs the sparse-path benchmark suite and returns the report.
func BenchServe() (*BenchReport, error) {
	net, m, err := benchServingNet()
	if err != nil {
		return nil, err
	}
	budget := 2 * m.MaxDenseBytes() // two of eight layers fit dense
	dense, err := benchServingSide(net, m, budget, 0)
	if err != nil {
		return nil, err
	}
	sparse, err := benchServingSide(net, m, budget, serve.DefaultSparseThreshold)
	if err != nil {
		return nil, err
	}
	stages, err := benchStageLatency(net, m, budget, serve.DefaultSparseThreshold)
	if err != nil {
		return nil, err
	}
	mixedNet, mixedM, err := benchMixedCodecNet()
	if err != nil {
		return nil, err
	}
	const matrixProcs = 4
	prev := runtime.GOMAXPROCS(matrixProcs)
	matrix, err := benchServingMatrix(mixedNet, mixedM, 2*mixedM.MaxDenseBytes())
	runtime.GOMAXPROCS(prev)
	if err != nil {
		return nil, err
	}
	return &BenchReport{
		GeneratedUnix:      time.Now().Unix(),
		CPU:                runtime.GOMAXPROCS(0),
		KernelShape:        "fc 256x2048, batch 16",
		Kernel:             benchKernel(),
		KernelScaling:      benchKernelScaling(),
		ServingBudget:      budget,
		ServingDense:       dense,
		ServingSparse:      sparse,
		HitRateGain:        sparse.HitRate - dense.HitRate,
		ServingMatrix:      matrix,
		ServingMatrixProcs: matrixProcs,
		StageLatency:       stages,
	}, nil
}

// WriteBenchServe runs BenchServe and writes the JSON report to w.
func WriteBenchServe(w io.Writer) error {
	r, err := BenchServe()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
