package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Benchstat-style comparison of two BENCH JSON reports. CI regenerates
// BENCH_serve.json / BENCH_gateway.json on every run; this diffs the fresh
// report against the committed one by flattened numeric path, so a perf
// regression shows up as a signed % delta in the job log instead of an
// opaque changed file.

// flattenNumbers walks any JSON value and records every numeric leaf under
// a dotted path (array elements indexed, objects keyed).
func flattenNumbers(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case float64:
		out[prefix] = x
	case map[string]any:
		for k, e := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenNumbers(p, e, out)
		}
	case []any:
		for i, e := range x {
			flattenNumbers(fmt.Sprintf("%s[%d]", prefix, i), e, out)
		}
	}
}

// BenchDeltaRow is one compared metric: the value in each report and the
// relative change.
type BenchDeltaRow struct {
	Path     string
	Old, New float64
	// PctDelta is (new-old)/|old| in percent; NaN when old is 0 and new
	// is not (rendered as "new").
	PctDelta float64
}

// BenchDelta compares two parsed JSON documents by flattened numeric path.
// Rows are sorted by path; paths present in only one report appear with the
// other side's value as NaN.
func BenchDelta(oldDoc, newDoc any) []BenchDeltaRow {
	oldN := map[string]float64{}
	newN := map[string]float64{}
	flattenNumbers("", oldDoc, oldN)
	flattenNumbers("", newDoc, newN)
	paths := map[string]bool{}
	for p := range oldN {
		paths[p] = true
	}
	for p := range newN {
		paths[p] = true
	}
	var rows []BenchDeltaRow
	for p := range paths {
		row := BenchDeltaRow{Path: p, Old: math.NaN(), New: math.NaN(), PctDelta: math.NaN()}
		o, hasOld := oldN[p]
		n, hasNew := newN[p]
		if hasOld {
			row.Old = o
		}
		if hasNew {
			row.New = n
		}
		if hasOld && hasNew {
			switch {
			case o == n:
				row.PctDelta = 0
			case o != 0:
				row.PctDelta = (n - o) / math.Abs(o) * 100
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Path < rows[j].Path })
	return rows
}

// WriteBenchDelta loads two BENCH JSON files and writes the comparison
// table to w. Metrics whose relative change is under threshold percent are
// summarised rather than listed, keeping the CI comment readable.
func WriteBenchDelta(w io.Writer, oldPath, newPath string, thresholdPct float64) error {
	load := func(path string) (any, error) {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var doc any
		if err := json.Unmarshal(b, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return doc, nil
	}
	oldDoc, err := load(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return err
	}
	rows := BenchDelta(oldDoc, newDoc)
	fmt.Fprintf(w, "bench delta: %s -> %s (%d metrics, showing |Δ| ≥ %g%%)\n",
		oldPath, newPath, len(rows), thresholdPct)
	fmt.Fprintf(w, "%-60s %14s %14s %9s\n", "metric", "old", "new", "delta")
	quiet := 0
	for _, r := range rows {
		switch {
		case math.IsNaN(r.Old):
			fmt.Fprintf(w, "%-60s %14s %14s %9s\n", r.Path, "-", fmtVal(r.New), "added")
		case math.IsNaN(r.New):
			fmt.Fprintf(w, "%-60s %14s %14s %9s\n", r.Path, fmtVal(r.Old), "-", "removed")
		case math.IsNaN(r.PctDelta):
			fmt.Fprintf(w, "%-60s %14s %14s %9s\n", r.Path, fmtVal(r.Old), fmtVal(r.New), "new")
		case math.Abs(r.PctDelta) < thresholdPct:
			quiet++
		default:
			fmt.Fprintf(w, "%-60s %14s %14s %+8.1f%%\n", r.Path, fmtVal(r.Old), fmtVal(r.New), r.PctDelta)
		}
	}
	if quiet > 0 {
		fmt.Fprintf(w, "(%d metrics within ±%g%%)\n", quiet, thresholdPct)
	}
	return nil
}

// fmtVal renders a metric compactly: integers without a fraction, large
// timings in engineering-friendly form.
func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	s := fmt.Sprintf("%.4g", v)
	return strings.TrimSuffix(s, ".")
}
