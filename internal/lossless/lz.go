package lossless

import (
	"encoding/binary"
	"errors"
)

// errLZCorrupt is returned for structurally invalid LZ payloads.
var errLZCorrupt = errors.New("lossless: corrupt LZ stream")

const (
	lzMinMatch   = 4
	lzMaxDist    = 65535
	lzHashBits   = 16
	lzHashSize   = 1 << lzHashBits
	lzNoMatchEnd = 0 // distance value marking the final literal-only sequence
)

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashBits)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// lzCompress produces an LZ4-style token stream:
//
//	repeat sequence:
//	  token byte: high nibble litLenCode, low nibble matchLenCode
//	  [extended literal length: 255-continuation bytes if litLenCode == 15]
//	  literal bytes
//	  2-byte little-endian match distance (0 terminates the stream: the
//	  sequence carries literals only and no match follows)
//	  [extended match length if matchLenCode == 15]
//
// maxChain controls effort: the number of hash-chain candidates examined per
// position. maxChain == 1 degenerates to a plain hash table (fast mode).
func lzCompress(src []byte, maxChain int) []byte {
	out := make([]byte, 0, len(src)/2+16)
	n := len(src)
	if n == 0 {
		return append(out, 0, 0, 0) // empty literal-only terminator
	}

	head := make([]int32, lzHashSize)
	for i := range head {
		head[i] = -1
	}
	var chain []int32
	if maxChain > 1 {
		chain = make([]int32, n)
	}

	emit := func(lits []byte, dist, matchLen int) {
		litLen := len(lits)
		litCode, matchCode := litLen, 0
		if litCode > 15 {
			litCode = 15
		}
		if dist != lzNoMatchEnd {
			matchCode = matchLen - lzMinMatch
			if matchCode > 15 {
				matchCode = 15
			}
		}
		out = append(out, byte(litCode<<4|matchCode))
		if litCode == 15 {
			rem := litLen - 15
			for rem >= 255 {
				out = append(out, 255)
				rem -= 255
			}
			out = append(out, byte(rem))
		}
		out = append(out, lits...)
		out = append(out, byte(dist), byte(dist>>8))
		if dist != lzNoMatchEnd && matchCode == 15 {
			rem := matchLen - lzMinMatch - 15
			for rem >= 255 {
				out = append(out, 255)
				rem -= 255
			}
			out = append(out, byte(rem))
		}
	}

	litStart := 0
	i := 0
	for i+lzMinMatch <= n {
		h := lzHash(load32(src, i))
		cand := head[h]
		bestLen, bestDist := 0, 0
		for try := 0; cand >= 0 && try < maxChain; try++ {
			c := int(cand)
			if i-c > lzMaxDist {
				break
			}
			if load32(src, c) == load32(src, i) {
				l := lzMinMatch
				for i+l < n && src[c+l] == src[i+l] {
					l++
				}
				if l > bestLen {
					bestLen, bestDist = l, i-c
				}
			}
			if chain == nil {
				break
			}
			cand = chain[c]
		}
		if chain != nil {
			chain[i] = head[h]
		}
		head[h] = int32(i)
		if bestLen >= lzMinMatch && bestDist > 0 {
			emit(src[litStart:i], bestDist, bestLen)
			// Insert a few positions inside the match so future matches can
			// reference them (full insertion is slow; stride keeps it cheap).
			end := i + bestLen
			for j := i + 1; j < end && j+lzMinMatch <= n; j += 2 {
				hj := lzHash(load32(src, j))
				if chain != nil {
					chain[j] = head[hj]
				}
				head[hj] = int32(j)
			}
			i = end
			litStart = i
		} else {
			i++
		}
	}
	emit(src[litStart:], lzNoMatchEnd, 0)
	return out
}

// lzDecompress reverses lzCompress. rawLen is the expected output size,
// validated incrementally: output exceeding it fails immediately, so a
// corrupt stream cannot expand past the claimed length, and the claimed
// length itself (an attacker-controlled header field) caps neither trusted
// nor preallocated memory — the prealloc is bounded separately.
func lzDecompress(src []byte, rawLen int) ([]byte, error) {
	if rawLen < 0 {
		return nil, errLZCorrupt
	}
	// Forged headers must not drive the allocation (a u32 rawLen can claim
	// 4 GiB); start small-ish and let append grow toward real output.
	prealloc := rawLen
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	out := make([]byte, 0, prealloc)
	p := 0
	readExt := func(base int) (int, error) {
		l := base
		for {
			if p >= len(src) {
				return 0, errLZCorrupt
			}
			b := src[p]
			p++
			l += int(b)
			if b != 255 {
				return l, nil
			}
		}
	}
	for {
		if p >= len(src) {
			return nil, errLZCorrupt
		}
		token := src[p]
		p++
		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, err = readExt(15)
			if err != nil {
				return nil, err
			}
		}
		if p+litLen > len(src) {
			return nil, errLZCorrupt
		}
		if len(out)+litLen > rawLen {
			return nil, errLZCorrupt
		}
		out = append(out, src[p:p+litLen]...)
		p += litLen
		if p+2 > len(src) {
			return nil, errLZCorrupt
		}
		dist := int(src[p]) | int(src[p+1])<<8
		p += 2
		if dist == lzNoMatchEnd {
			break
		}
		matchLen := int(token & 0x0F)
		if matchLen == 15 {
			var err error
			matchLen, err = readExt(15)
			if err != nil {
				return nil, err
			}
		}
		matchLen += lzMinMatch
		start := len(out) - dist
		if start < 0 {
			return nil, errLZCorrupt
		}
		if len(out)+matchLen > rawLen {
			return nil, errLZCorrupt
		}
		// Byte-by-byte copy: matches may overlap their own output.
		for k := 0; k < matchLen; k++ {
			out = append(out, out[start+k])
		}
	}
	if len(out) != rawLen {
		return nil, errLZCorrupt
	}
	return out, nil
}
