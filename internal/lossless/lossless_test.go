package lossless

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// corpora returns representative inputs: empty, tiny, repetitive (index-array
// like), random (incompressible), and float-structured data.
func corpora() map[string][]byte {
	rng := tensor.NewRNG(99)
	rep := make([]byte, 20000)
	for i := range rep {
		rep[i] = byte(1 + i%7) // small index deltas, very repetitive
	}
	random := make([]byte, 8192)
	for i := range random {
		random[i] = byte(rng.Uint64())
	}
	floats := make([]byte, 16384)
	for i := 0; i < len(floats); i += 4 {
		// float-like: shared high bytes, noisy low bytes
		floats[i] = byte(rng.Uint64())
		floats[i+1] = byte(rng.Uint64() % 16)
		floats[i+2] = 0x3D
		floats[i+3] = 0xBC
	}
	return map[string][]byte{
		"empty":      {},
		"one":        {42},
		"tiny":       []byte("abcabcabc"),
		"repetitive": rep,
		"random":     random,
		"floatlike":  floats,
	}
}

func TestRoundTripAllBackends(t *testing.T) {
	for name, data := range corpora() {
		for _, c := range All() {
			blob := c.Compress(data)
			got, err := c.Decompress(blob)
			if err != nil {
				t.Fatalf("%s/%s: decompress: %v", c.Name(), name, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%s: round trip mismatch (%d vs %d bytes)", c.Name(), name, len(got), len(data))
			}
		}
	}
}

func TestRepetitiveDataCompressesWell(t *testing.T) {
	data := corpora()["repetitive"]
	for _, c := range All() {
		blob := c.Compress(data)
		ratio := float64(len(data)) / float64(len(blob))
		if ratio < 5 {
			t.Errorf("%s: ratio %.1f on repetitive data, want ≥5", c.Name(), ratio)
		}
	}
}

func TestBestPicksSmallest(t *testing.T) {
	data := corpora()["repetitive"]
	best, blob := Best(data)
	for _, c := range All() {
		if other := c.Compress(data); len(other) < len(blob) {
			t.Fatalf("Best chose %s (%d bytes) but %s gives %d", best.Name(), len(blob), c.Name(), len(other))
		}
	}
	got, err := best.Decompress(blob)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("Best result does not round trip")
	}
}

func TestByID(t *testing.T) {
	for _, c := range All() {
		got, err := ByID(c.ID())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != c.Name() {
			t.Fatalf("ByID(%d) = %s, want %s", c.ID(), got.Name(), c.Name())
		}
	}
	if _, err := ByID(200); err == nil {
		t.Fatal("expected error for unknown ID")
	}
}

func TestDecompressCorruptInputs(t *testing.T) {
	for _, c := range All() {
		if _, err := c.Decompress([]byte{1, 2}); err == nil {
			t.Errorf("%s: expected error on garbage blob", c.Name())
		}
	}
}

func TestZstdLikeTruncated(t *testing.T) {
	blob := ZstdLike{}.Compress(bytes.Repeat([]byte("hello world "), 100))
	if _, err := (ZstdLike{}).Decompress(blob[:len(blob)/2]); err == nil {
		t.Fatal("expected error for truncated blob")
	}
}

func TestShuffleRoundTrip(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	s := shuffle(data, 4)
	want := []byte{1, 5, 9, 2, 6, 10, 3, 7, 11, 4, 8, 12}
	if !bytes.Equal(s, want) {
		t.Fatalf("shuffle = %v, want %v", s, want)
	}
	if !bytes.Equal(unshuffle(s, 4), data) {
		t.Fatal("unshuffle does not invert shuffle")
	}
}

func TestLZRoundTripQuick(t *testing.T) {
	f := func(data []byte) bool {
		for _, depth := range []int{1, 32} {
			lz := lzCompress(data, depth)
			got, err := lzDecompress(lz, len(data))
			if err != nil || !bytes.Equal(got, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLZLongMatchAndLongLiterals(t *testing.T) {
	// >15 literals and >19 match length exercise the extension encoding.
	var data []byte
	rng := tensor.NewRNG(4)
	lit := make([]byte, 100)
	for i := range lit {
		lit[i] = byte(rng.Uint64())
	}
	data = append(data, lit...)
	data = append(data, bytes.Repeat([]byte{0xCC}, 1000)...)
	data = append(data, lit...)
	lz := lzCompress(data, 32)
	got, err := lzDecompress(lz, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("long-match round trip failed: %v", err)
	}
	if len(lz) > len(data)/2 {
		t.Fatalf("long runs should compress: %d vs %d", len(lz), len(data))
	}
}

func TestLZOverlappingMatch(t *testing.T) {
	// "aaaa..." forces overlapping copies (dist < matchLen).
	data := bytes.Repeat([]byte{'a'}, 500)
	lz := lzCompress(data, 1)
	got, err := lzDecompress(lz, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("overlapping-match round trip failed")
	}
}

func TestRatioOrderingOnIndexArrays(t *testing.T) {
	// The paper's Figure 4 finds zstd > gzip and both > blosc on index
	// arrays. Check the zstdlike back-end at least beats blosclike.
	rng := tensor.NewRNG(7)
	idx := make([]byte, 50000)
	for i := range idx {
		idx[i] = byte(1 + rng.Intn(20)) // geometric-ish deltas
	}
	z := len(ZstdLike{}.Compress(idx))
	b := len(BloscLike{}.Compress(idx))
	if z >= b {
		t.Fatalf("zstdlike (%d) should beat blosclike (%d) on index arrays", z, b)
	}
}
