// Package lossless provides the lossless back-end compressors DeepSZ selects
// among when encoding the sparse index arrays (paper §3.5, Figure 4) and the
// optional final stage of the SZ pipeline.
//
// Three back-ends are provided, mirroring the paper's Gzip / Zstandard /
// Blosc choices:
//
//   - Gzip: the stdlib DEFLATE implementation.
//   - ZstdLike: a greedy LZ77 with a large hash-chained window followed by a
//     canonical-Huffman entropy stage. Like Zstandard it trades a little
//     speed for the best ratio of the three.
//   - BloscLike: byte-shuffle followed by a fast LZ with a small window,
//     mirroring Blosc's shuffle+LZ4 design: fastest, lowest ratio.
//
// Best compresses with all back-ends and returns the smallest result, which
// is exactly the "best-fit lossless compressor" selection of DeepSZ step 4.
package lossless

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
)

// ID identifies a lossless back-end inside serialized blobs.
type ID uint8

// Back-end identifiers. The numeric values are part of the container format.
const (
	IDGzip ID = iota + 1
	IDZstdLike
	IDBloscLike
)

// ErrUnknownID is returned when decompressing a blob with an unknown
// back-end identifier.
var ErrUnknownID = errors.New("lossless: unknown compressor id")

// maxRawLen bounds the decompressed size every back-end will produce
// (256 MiB — 2.5× the index array of the paper's largest fc layer, VGG-16
// fc6). Corrupt or adversarial streams claiming more are rejected before
// the claim can drive allocations or decompression work.
const maxRawLen = 1 << 28

// Compressor is a lossless byte-stream codec.
type Compressor interface {
	// ID returns the serialization identifier of this back-end.
	ID() ID
	// Name returns a human-readable name ("gzip", "zstdlike", "blosclike").
	Name() string
	// Compress returns an encoded copy of src.
	Compress(src []byte) []byte
	// Decompress reverses Compress.
	Decompress(src []byte) ([]byte, error)
}

// All returns one instance of every back-end, in ID order.
func All() []Compressor {
	return []Compressor{Gzip{}, ZstdLike{}, BloscLike{}}
}

// ByID returns the back-end with the given identifier.
func ByID(id ID) (Compressor, error) {
	switch id {
	case IDGzip:
		return Gzip{}, nil
	case IDZstdLike:
		return ZstdLike{}, nil
	case IDBloscLike:
		return BloscLike{}, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrUnknownID, id)
}

// Best compresses src with every back-end and returns the smallest blob along
// with the back-end that produced it.
func Best(src []byte) (Compressor, []byte) {
	var best Compressor
	var bestBlob []byte
	for _, c := range All() {
		blob := c.Compress(src)
		if best == nil || len(blob) < len(bestBlob) {
			best, bestBlob = c, blob
		}
	}
	return best, bestBlob
}

// Gzip is the stdlib DEFLATE back-end.
type Gzip struct{}

// ID implements Compressor.
func (Gzip) ID() ID { return IDGzip }

// Name implements Compressor.
func (Gzip) Name() string { return "gzip" }

// Compress implements Compressor.
func (Gzip) Compress(src []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		panic(err) // only fails for invalid level
	}
	if _, err := w.Write(src); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// Decompress implements Compressor.
func (Gzip) Decompress(src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, maxRawLen+1))
	if err != nil {
		return nil, fmt.Errorf("lossless: gzip decompress: %w", err)
	}
	if len(out) > maxRawLen {
		return nil, fmt.Errorf("lossless: gzip decompress: output exceeds %d-byte limit", maxRawLen)
	}
	return out, nil
}
