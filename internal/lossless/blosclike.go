package lossless

import (
	"encoding/binary"
	"fmt"
)

// BloscLike is the fast back-end: a byte shuffle (transpose of the byte
// planes of fixed-size elements, Blosc's signature preconditioner) followed
// by a single-probe LZ. It favours speed over ratio, like Blosc+LZ4.
type BloscLike struct{}

// bloscElemSize is the shuffle stride. Index arrays are byte streams and
// data arrays are float32 streams; a 4-byte stride covers the float case and
// degrades gracefully (stride 1) when the input length is not a multiple.
const bloscElemSize = 4

// ID implements Compressor.
func (BloscLike) ID() ID { return IDBloscLike }

// Name implements Compressor.
func (BloscLike) Name() string { return "blosclike" }

// shuffle transposes src viewed as (n/elem) elements of elem bytes into
// elem byte planes.
func shuffle(src []byte, elem int) []byte {
	n := len(src) / elem
	out := make([]byte, len(src))
	for e := 0; e < elem; e++ {
		plane := out[e*n : (e+1)*n]
		for i := 0; i < n; i++ {
			plane[i] = src[i*elem+e]
		}
	}
	return out
}

func unshuffle(src []byte, elem int) []byte {
	n := len(src) / elem
	out := make([]byte, len(src))
	for e := 0; e < elem; e++ {
		plane := src[e*n : (e+1)*n]
		for i := 0; i < n; i++ {
			out[i*elem+e] = plane[i]
		}
	}
	return out
}

// Compress implements Compressor. Blob layout:
//
//	u8  shuffle element size (1 or 4)
//	u32 raw length
//	LZ stream (single-probe fast parse)
func (BloscLike) Compress(src []byte) []byte {
	elem := bloscElemSize
	if len(src)%elem != 0 {
		elem = 1
	}
	var pre []byte
	if elem > 1 {
		pre = shuffle(src, elem)
	} else {
		pre = src
	}
	lz := lzCompress(pre, 1)
	out := make([]byte, 0, 5+len(lz))
	out = append(out, byte(elem))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(src)))
	return append(out, lz...)
}

// Decompress implements Compressor.
func (BloscLike) Decompress(src []byte) ([]byte, error) {
	if len(src) < 5 {
		return nil, fmt.Errorf("lossless: blosclike: short blob")
	}
	elem := int(src[0])
	if elem != 1 && elem != bloscElemSize {
		return nil, fmt.Errorf("lossless: blosclike: bad element size %d", elem)
	}
	rawLen := int(binary.LittleEndian.Uint32(src[1:5]))
	if rawLen > maxRawLen {
		return nil, fmt.Errorf("lossless: blosclike: claimed length %d exceeds limit", rawLen)
	}
	pre, err := lzDecompress(src[5:], rawLen)
	if err != nil {
		return nil, fmt.Errorf("lossless: blosclike: %w", err)
	}
	if elem == 1 {
		return pre, nil
	}
	if len(pre)%elem != 0 {
		return nil, fmt.Errorf("lossless: blosclike: shuffled length %d not multiple of %d", len(pre), elem)
	}
	return unshuffle(pre, elem), nil
}
