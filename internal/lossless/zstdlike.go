package lossless

import (
	"encoding/binary"
	"fmt"

	"repro/internal/huffman"
)

// ZstdLike is the high-ratio back-end: a greedy LZ77 with hash chains (effort
// comparable to Zstandard's default level) followed by a canonical-Huffman
// entropy stage over the token stream.
type ZstdLike struct{}

// zstdChainDepth is the number of hash-chain candidates examined per
// position. Deeper chains find longer matches at some speed cost.
const zstdChainDepth = 32

// ID implements Compressor.
func (ZstdLike) ID() ID { return IDZstdLike }

// Name implements Compressor.
func (ZstdLike) Name() string { return "zstdlike" }

// Compress implements Compressor. Blob layout:
//
//	u32 raw length
//	u32 LZ stream length
//	huffman blob of the LZ token bytes
func (ZstdLike) Compress(src []byte) []byte {
	lz := lzCompress(src, zstdChainDepth)
	syms := make([]uint32, len(lz))
	for i, b := range lz {
		syms[i] = uint32(b)
	}
	hblob := huffman.Encode(syms)
	out := make([]byte, 0, 8+len(hblob))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(src)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(lz)))
	return append(out, hblob...)
}

// Decompress implements Compressor.
func (ZstdLike) Decompress(src []byte) ([]byte, error) {
	if len(src) < 8 {
		return nil, fmt.Errorf("lossless: zstdlike: short blob")
	}
	rawLen := int(binary.LittleEndian.Uint32(src[0:4]))
	lzLen := int(binary.LittleEndian.Uint32(src[4:8]))
	if rawLen > maxRawLen {
		return nil, fmt.Errorf("lossless: zstdlike: claimed length %d exceeds limit", rawLen)
	}
	syms, err := huffman.Decode(src[8:])
	if err != nil {
		return nil, fmt.Errorf("lossless: zstdlike entropy stage: %w", err)
	}
	if len(syms) != lzLen {
		return nil, fmt.Errorf("lossless: zstdlike: LZ length mismatch")
	}
	lz := make([]byte, len(syms))
	for i, s := range syms {
		if s > 255 {
			return nil, fmt.Errorf("lossless: zstdlike: symbol out of byte range")
		}
		lz[i] = byte(s)
	}
	out, err := lzDecompress(lz, rawLen)
	if err != nil {
		return nil, fmt.Errorf("lossless: zstdlike: %w", err)
	}
	return out, nil
}
