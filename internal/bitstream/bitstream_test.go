package bitstream

import (
	"testing"
	"testing/quick"
)

func TestSingleBits(t *testing.T) {
	w := NewWriter()
	pattern := []uint32{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsMSBFirst(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0b11010, 5)
	bytes := w.Bytes()
	if len(bytes) != 1 || bytes[0] != 0b10111010 {
		t.Fatalf("got %08b", bytes)
	}
}

func TestCrossByteBoundary(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xABCD, 16)
	w.WriteBits(0x5, 3)
	r := NewReader(w.Bytes())
	v, err := r.ReadBits(16)
	if err != nil || v != 0xABCD {
		t.Fatalf("ReadBits(16) = %x, %v", v, err)
	}
	v, err = r.ReadBits(3)
	if err != nil || v != 0x5 {
		t.Fatalf("ReadBits(3) = %x, %v", v, err)
	}
}

func TestFullWidth64(t *testing.T) {
	w := NewWriter()
	const val = 0xDEADBEEFCAFEF00D
	w.WriteBits(val, 64)
	r := NewReader(w.Bytes())
	v, err := r.ReadBits(64)
	if err != nil || v != val {
		t.Fatalf("64-bit round trip: %x, %v", v, err)
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter()
	if w.BitLen() != 0 {
		t.Fatal("empty writer BitLen != 0")
	}
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Fatalf("BitLen = %d, want 13", w.BitLen())
	}
}

func TestOutOfBits(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
	r2 := NewReader([]byte{0xFF})
	if _, err := r2.ReadBits(9); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits for over-read, got %v", err)
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0, 0})
	if r.Remaining() != 24 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 19 {
		t.Fatalf("Remaining after 5 = %d", r.Remaining())
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1, 1)
	w.WriteBits(0xAB, 8) // crosses boundary
	r := NewReader(w.Bytes())
	r.ReadBit()
	r.Align()
	// After align we are at bit 8; the remaining payload is 0xAB shifted by
	// one bit, so just confirm alignment landed on a byte boundary.
	if r.bit != 0 {
		t.Fatal("Align did not reach byte boundary")
	}
	if r.pos != 1 {
		t.Fatalf("Align pos = %d, want 1", r.pos)
	}
}

func TestQuickRoundTripVariedWidths(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		w := NewWriter()
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		if n == 0 {
			return true
		}
		ws := make([]uint, n)
		for i := 0; i < n; i++ {
			ws[i] = uint(widths[i]%64) + 1
			w.WriteBits(vals[i], ws[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			got, err := r.ReadBits(ws[i])
			if err != nil {
				return false
			}
			want := vals[i]
			if ws[i] < 64 {
				want &= (1 << ws[i]) - 1
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReusableAfterBytes(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xF, 4)
	first := len(w.Bytes())
	w.WriteBits(0xAA, 8)
	all := w.Bytes()
	if len(all) != first+1 {
		t.Fatalf("writer not usable after Bytes: %d vs %d", len(all), first)
	}
	if all[1] != 0xAA {
		t.Fatalf("second write corrupted: %x", all)
	}
}
