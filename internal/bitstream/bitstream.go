// Package bitstream implements MSB-first bit-level readers and writers used
// by the Huffman coder, the ZFP-style transform coder, and the Bloomier
// filter.
package bitstream

import "errors"

// ErrOutOfBits is returned when a read requests more bits than remain.
var ErrOutOfBits = errors.New("bitstream: out of bits")

// Writer accumulates bits MSB-first into a byte buffer.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within nbit
	nbit uint   // number of pending bits in cur (< 8 after flushing)
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint32) {
	w.WriteBits(uint64(b&1), 1)
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic("bitstream: WriteBits n > 64")
	}
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	for n > 0 {
		space := 8 - w.nbit
		if n <= space {
			w.cur = (w.cur << n) | v
			w.nbit += n
			n = 0
		} else {
			take := space
			w.cur = (w.cur << take) | (v >> (n - take))
			w.nbit += take
			n -= take
			if n < 64 {
				v &= (1 << n) - 1
			}
		}
		if w.nbit == 8 {
			w.buf = append(w.buf, byte(w.cur))
			w.cur, w.nbit = 0, 0
		}
	}
}

// BitLen returns the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nbit) }

// Bytes flushes any partial byte (padding with zero bits) and returns the
// underlying buffer. The Writer remains usable; further writes continue after
// the padding.
func (w *Writer) Bytes() []byte {
	if w.nbit > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.nbit)))
		w.cur, w.nbit = 0, 0
	}
	return w.buf
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int  // byte position
	bit uint // bits consumed within buf[pos], 0..7
}

// NewReader returns a Reader over data. The slice is not copied.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 - int(r.bit)
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (uint32, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrOutOfBits
	}
	b := (r.buf[r.pos] >> (7 - r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return uint32(b), nil
}

// ReadBits reads n bits (n ≤ 64) MSB-first and returns them right-aligned.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic("bitstream: ReadBits n > 64")
	}
	if r.Remaining() < int(n) {
		return 0, ErrOutOfBits
	}
	var v uint64
	for n > 0 {
		avail := 8 - r.bit
		take := n
		if take > avail {
			take = avail
		}
		cur := r.buf[r.pos]
		bits := (cur >> (avail - take)) & byte((1<<take)-1)
		v = (v << take) | uint64(bits)
		r.bit += take
		n -= take
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
	}
	return v, nil
}

// Align discards bits up to the next byte boundary.
func (r *Reader) Align() {
	if r.bit != 0 {
		r.bit = 0
		r.pos++
	}
}
