// Package cluster provides 1-D k-means weight clustering, the shared
// quantization substrate of the Deep Compression and Weightless baselines
// (both map nonzero weights onto a small codebook of centroids).
package cluster

import (
	"fmt"
	"math"
)

// KMeans1D clusters data into k centroids with Lloyd's algorithm, using
// linear (min–max spaced) initialisation — the initialisation Deep
// Compression found best for weight sharing. It returns the centroids and
// each point's assignment. Deterministic.
func KMeans1D(data []float32, k, iters int) (centroids []float32, assign []uint32, err error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("cluster: k must be ≥ 1, got %d", k)
	}
	if len(data) == 0 {
		return make([]float32, k), nil, nil
	}
	lo, hi := data[0], data[0]
	for _, v := range data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	centroids = make([]float32, k)
	if k == 1 {
		centroids[0] = (lo + hi) / 2
	} else {
		step := (float64(hi) - float64(lo)) / float64(k-1)
		for i := range centroids {
			centroids[i] = float32(float64(lo) + step*float64(i))
		}
	}
	assign = make([]uint32, len(data))
	sums := make([]float64, k)
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range data {
			best := nearest(centroids, v)
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		for i := range sums {
			sums[i], counts[i] = 0, 0
		}
		for i, v := range data {
			sums[assign[i]] += float64(v)
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] > 0 {
				centroids[c] = float32(sums[c] / float64(counts[c]))
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	// Final assignment against the last centroid update.
	for i, v := range data {
		assign[i] = nearest(centroids, v)
	}
	return centroids, assign, nil
}

func nearest(centroids []float32, v float32) uint32 {
	best := 0
	bestD := math.Abs(float64(centroids[0]) - float64(v))
	for c := 1; c < len(centroids); c++ {
		if d := math.Abs(float64(centroids[c]) - float64(v)); d < bestD {
			best, bestD = c, d
		}
	}
	return uint32(best)
}

// MaxQuantError returns the largest |data[i] − centroids[assign[i]]|.
func MaxQuantError(data, centroids []float32, assign []uint32) float64 {
	var m float64
	for i, v := range data {
		if d := math.Abs(float64(v) - float64(centroids[assign[i]])); d > m {
			m = d
		}
	}
	return m
}
