package cluster

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestKMeansRecoverWellSeparatedClusters(t *testing.T) {
	rng := tensor.NewRNG(1)
	var data []float32
	truth := []float64{-1, 0, 2}
	for i := 0; i < 3000; i++ {
		c := truth[i%3]
		data = append(data, float32(c+rng.NormFloat64()*0.02))
	}
	centroids, assign, err := KMeans1D(data, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	found := make([]bool, 3)
	for _, c := range centroids {
		for ti, tv := range truth {
			if math.Abs(float64(c)-tv) < 0.05 {
				found[ti] = true
			}
		}
	}
	for ti, ok := range found {
		if !ok {
			t.Fatalf("cluster %v not recovered; centroids %v", truth[ti], centroids)
		}
	}
	if MaxQuantError(data, centroids, assign) > 0.15 {
		t.Fatalf("quantization error too large: %v", MaxQuantError(data, centroids, assign))
	}
}

func TestKMeansAssignmentsAreNearest(t *testing.T) {
	rng := tensor.NewRNG(2)
	data := make([]float32, 500)
	rng.FillNormal(data, 0, 1)
	centroids, assign, err := KMeans1D(data, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		got := float64(centroids[assign[i]])
		for _, c := range centroids {
			if math.Abs(float64(c)-float64(v)) < math.Abs(got-float64(v))-1e-9 {
				t.Fatalf("point %v assigned %v but %v is closer", v, got, c)
			}
		}
	}
}

func TestKMeansErrorShrinksWithK(t *testing.T) {
	rng := tensor.NewRNG(3)
	data := make([]float32, 2000)
	rng.FillNormal(data, 0, 0.1)
	var prev float64 = math.Inf(1)
	for _, k := range []int{2, 8, 32} {
		centroids, assign, _ := KMeans1D(data, k, 15)
		e := MaxQuantError(data, centroids, assign)
		if e > prev {
			t.Fatalf("k=%d: error %v grew from %v", k, e, prev)
		}
		prev = e
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if _, _, err := KMeans1D([]float32{1, 2}, 0, 5); err == nil {
		t.Fatal("expected error for k=0")
	}
	c, a, err := KMeans1D(nil, 4, 5)
	if err != nil || len(c) != 4 || a != nil {
		t.Fatal("empty data should give zero codebook")
	}
	c, a, err = KMeans1D([]float32{7, 7, 7}, 1, 5)
	if err != nil || c[0] != 7 {
		t.Fatalf("constant data k=1: %v %v", c, err)
	}
	for _, v := range a {
		if v != 0 {
			t.Fatal("constant data must assign to centroid 0")
		}
	}
	// More clusters than points must still terminate and assign validly.
	c, a, err = KMeans1D([]float32{1, 5}, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, ai := range a {
		if int(ai) >= len(c) {
			t.Fatalf("assignment %d out of range at %d", ai, i)
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := tensor.NewRNG(4)
	data := make([]float32, 300)
	rng.FillNormal(data, 0, 1)
	c1, a1, _ := KMeans1D(data, 16, 10)
	c2, a2, _ := KMeans1D(data, 16, 10)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("centroids not deterministic")
		}
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("assignments not deterministic")
		}
	}
}
