package serve

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestEngineCachesSparseLayers checks the residency decision end to end:
// with the default threshold, the heavily pruned ip1 (~20% density) must
// sit in the cache as CSR while ip2 (~40%) stays dense, and the stats
// must report the split.
func TestEngineCachesSparseLayers(t *testing.T) {
	net, m := servedModel(t, 31)
	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	e, err := reg.Add("mlp", m, net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(4, 32)
	got, err := e.Predict(rows)
	if err != nil {
		t.Fatal(err)
	}
	want := decodedReference(t, net, m, rows)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d logit %d: %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}

	cs := reg.Cache().Stats()
	if cs.SparseBytes == 0 || cs.DenseBytes == 0 {
		t.Fatalf("expected mixed residency, got sparse=%d dense=%d", cs.SparseBytes, cs.DenseBytes)
	}
	if cs.SparseBytes+cs.DenseBytes != cs.BytesInUse {
		t.Fatalf("format split %d+%d != bytes in use %d", cs.SparseBytes, cs.DenseBytes, cs.BytesInUse)
	}

	byName := map[string]LayerMeta{}
	for _, lm := range e.LayerMeta() {
		byName[lm.Name] = lm
	}
	ip1, ip2 := byName["ip1"], byName["ip2"]
	if ip1.Format != "csr" {
		t.Fatalf("ip1 format %q (density %v), want csr", ip1.Format, ip1.Density)
	}
	if ip2.Format != "dense" {
		t.Fatalf("ip2 format %q (density %v), want dense", ip2.Format, ip2.Density)
	}
	if ip1.Density <= 0 || ip1.Density >= DefaultSparseThreshold {
		t.Fatalf("ip1 density %v outside (0, threshold)", ip1.Density)
	}
	if ip1.ResidentBytes >= ip1.DenseBytes {
		t.Fatalf("sparse residency costs %d, dense would cost %d", ip1.ResidentBytes, ip1.DenseBytes)
	}
	if ip2.ResidentBytes != ip2.DenseBytes {
		t.Fatalf("dense layer resident %d != dense %d", ip2.ResidentBytes, ip2.DenseBytes)
	}
}

// TestEngineSparseDisabled pins the opt-out: threshold <= 0 keeps every
// layer dense regardless of density.
func TestEngineSparseDisabled(t *testing.T) {
	net, m := servedModel(t, 33)
	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	reg.SetSparseThreshold(0)
	e, err := reg.Add("mlp", m, net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict(testRows(2, 34)); err != nil {
		t.Fatal(err)
	}
	cs := reg.Cache().Stats()
	if cs.SparseBytes != 0 || cs.DenseBytes == 0 {
		t.Fatalf("threshold 0 still produced sparse residents: %+v", cs)
	}
	for _, lm := range e.LayerMeta() {
		if lm.Format == "csr" {
			t.Fatalf("layer %s cached as csr with sparsity disabled", lm.Name)
		}
	}
}

// TestServerStatsReportSparseFields walks the HTTP surface: /v1/stats
// must carry the cache's sparse/dense byte split and per-layer density,
// format, and resident bytes.
func TestServerStatsReportSparseFields(t *testing.T) {
	net, m := servedModel(t, 35)
	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	if _, err := reg.Add("mlp", m, net, []int{1, 8, 8}); err != nil {
		t.Fatal(err)
	}
	e, _ := reg.Get("mlp")
	if _, err := e.Predict(testRows(2, 36)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	var stats struct {
		Cache struct {
			Sparse int64 `json:"sparse_bytes_in_use"`
			Dense  int64 `json:"dense_bytes_in_use"`
			InUse  int64 `json:"bytes_in_use"`
		} `json:"cache"`
		Models map[string]struct {
			SparseThreshold float64 `json:"sparse_threshold"`
			Layers          []struct {
				Name          string  `json:"name"`
				Density       float64 `json:"density"`
				Format        string  `json:"format"`
				ResidentBytes int64   `json:"resident_bytes"`
				DenseBytes    int64   `json:"dense_bytes"`
			} `json:"layers"`
		} `json:"models"`
	}
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Sparse == 0 {
		t.Fatal("stats report no sparse resident bytes")
	}
	if stats.Cache.Sparse+stats.Cache.Dense != stats.Cache.InUse {
		t.Fatalf("stats split %d+%d != %d", stats.Cache.Sparse, stats.Cache.Dense, stats.Cache.InUse)
	}
	mlp, ok := stats.Models["mlp"]
	if !ok {
		t.Fatal("model missing from stats")
	}
	if mlp.SparseThreshold != DefaultSparseThreshold {
		t.Fatalf("threshold %v, want %v", mlp.SparseThreshold, DefaultSparseThreshold)
	}
	for _, l := range mlp.Layers {
		if l.Density <= 0 || l.Density > 1 {
			t.Fatalf("layer %s density %v out of range", l.Name, l.Density)
		}
		if l.Format != "csr" && l.Format != "dense" {
			t.Fatalf("layer %s has format %q after serving", l.Name, l.Format)
		}
		if l.ResidentBytes <= 0 || l.DenseBytes <= 0 {
			t.Fatalf("layer %s resident/dense bytes %d/%d", l.Name, l.ResidentBytes, l.DenseBytes)
		}
	}
}

// TestEngineSparseDenseFlipRace hammers one cache from two engines that
// serve the same model under the same keys but opposite residency
// policies (always-dense vs always-sparse), with a budget small enough to
// evict on every pass. Each predict therefore keeps flipping the cached
// layers between CSR and dense mid-traffic — the formats race, the
// numbers must not. Run under -race this also proves the cache's format
// accounting and the kernels' shared-read safety.
func TestEngineSparseDenseFlipRace(t *testing.T) {
	net, m := servedModel(t, 37)
	cache := NewDecodeCache(m.MaxDenseBytes()) // one dense layer's worth
	dense, err := NewEngine("flip", m, net, []int{1, 8, 8}, cache, BatchOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dense.Close()
	sparse, err := NewEngine("flip", m, net, []int{1, 8, 8}, cache, BatchOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sparse.Close()

	rows := testRows(3, 38)
	want := decodedReference(t, net, m, rows)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		e := dense
		if g%2 == 1 {
			e = sparse
		}
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			for r := 0; r < 25; r++ {
				got, err := e.Predict(rows)
				if err != nil {
					t.Error(err)
					return
				}
				for i := range want {
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Errorf("flip race diverged at row %d logit %d: %v vs %v", i, j, got[i][j], want[i][j])
							return
						}
					}
				}
			}
		}(e)
	}
	wg.Wait()
	cs := cache.Stats()
	if cs.SparseBytes+cs.DenseBytes != cs.BytesInUse {
		t.Fatalf("format accounting drifted: %d+%d != %d", cs.SparseBytes, cs.DenseBytes, cs.BytesInUse)
	}
}
