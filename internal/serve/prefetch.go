package serve

import (
	"sort"
	"sync"
)

// prefetcher implements decode-ahead for one engine: when layer k of the
// per-request schedule is announced, the speculative decode flights for
// layers k+1..k+depth are registered in the shared cache synchronously —
// a cheap map insert on the request path — and the decodes themselves run
// on a single worker goroutine. Registering at announce time is what
// makes the overlap deterministic: a demand get that reaches layer k+1
// before the worker has decoded it joins the registered flight
// (coalesced/overlap) instead of racing the worker for the key, so
// coverage does not depend on goroutine scheduling luck. Depth bounds the
// speculation; the work queue is drop-on-full, and a flight whose decode
// cannot be queued is aborted, which sends any joiners back through the
// demand path.
//
// Determinism: the worker only ever warms the cache. Demand gets either
// find the prefetched entry (hit), join its in-flight decode
// (coalesced/overlap), or decode themselves — all three return the same
// bits, so outputs are identical at any depth and any worker timing.
type prefetcher struct {
	e     *Engine
	depth int

	ch   chan prefetchTask
	done chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex // serialises advance vs stop so no task outlives the drain
	stopped bool

	once sync.Once // stop() idempotence
}

// prefetchTask is one registered flight handed to the worker: run decodes
// it, abort cancels it. Exactly one must be called.
type prefetchTask struct {
	run   func()
	abort func()
}

// newPrefetcher starts the decode-ahead worker for e at the given depth
// (>= 1).
func newPrefetcher(e *Engine, depth int) *prefetcher {
	p := &prefetcher{
		e:     e,
		depth: depth,
		// One slot per lookahead step plus slack for the next batch's
		// advance landing before the previous drains.
		ch:   make(chan prefetchTask, 2*depth),
		done: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.worker()
	return p
}

// advance announces that layer idx of the schedule is about to compute:
// layers idx+1..idx+depth become prefetch candidates. The immediate next
// layer is queued first — the demand pass needs it soonest — and the rest
// of the window most-expensive-estimated-decode first, so a worker that
// only gets through part of it masks the largest stall. Nil-safe — a nil
// prefetcher (prefetch disabled) costs one compare.
func (p *prefetcher) advance(idx int) {
	if p == nil {
		return
	}
	var cand []int
	for k := idx + 1; k <= idx+p.depth && k < len(p.e.model.Layers); k++ {
		cand = append(cand, k)
	}
	if len(cand) > 2 {
		tail := cand[1:]
		sort.SliceStable(tail, func(i, j int) bool {
			return p.e.estCost[tail[i]] > p.e.estCost[tail[j]]
		})
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	for _, k := range cand {
		run, abort := p.e.cache.BeginPrefetch(p.e.cacheKey(k), p.e.decodeForCache(k))
		if run == nil { // already resident or in flight
			continue
		}
		select {
		case p.ch <- prefetchTask{run: run, abort: abort}:
		default:
			// The worker is more than a full window behind; cancel rather
			// than stall the request path.
			abort()
		}
	}
}

// worker drains the task queue, running each registered decode.
func (p *prefetcher) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case t := <-p.ch:
			t.run()
		}
	}
}

// stop terminates the worker, waits out any decode in progress, and
// aborts queued tasks so no registered flight is left unresolved.
// Idempotent and nil-safe.
func (p *prefetcher) stop() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		p.mu.Lock()
		p.stopped = true
		p.mu.Unlock()
		close(p.done)
		p.wg.Wait()
		for {
			select {
			case t := <-p.ch:
				t.abort()
			default:
				return
			}
		}
	})
}
