package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
)

// slowLayer is fakeLayer plus a simulated decode wall time, recorded into
// the entry's GDSF weight by sleeping inside the decode thunk.
func slowDecode(cost int64, dt time.Duration) func() (*core.DecodedLayer, int64, error) {
	return func() (*core.DecodedLayer, int64, error) {
		time.Sleep(dt)
		return fakeLayer(cost), cost, nil
	}
}

// TestGDSFKeepsExpensiveLayers: at equal size and equal frequency, the
// layer that cost more wall time to decode survives the budget squeeze —
// the whole point of cost-aware eviction over LRU, which would keep
// whatever was touched last.
func TestGDSFKeepsExpensiveLayers(t *testing.T) {
	const cost = 400
	c := NewDecodeCacheWith(2*cost, EvictGDSF)
	get := func(key string, dt time.Duration) {
		t.Helper()
		if _, err := c.Get(key, slowDecode(cost, dt)); err != nil {
			t.Fatal(err)
		}
	}
	get("expensive", 20*time.Millisecond)
	get("cheap", 0)
	// The newcomer is worth more than "cheap" but less than "expensive":
	// it must displace the cheap resident and leave the expensive one.
	get("newcomer", 5*time.Millisecond)

	if _, ok := c.entries["expensive"]; !ok {
		t.Fatalf("expensive layer evicted before a cheap one: %+v", c.Stats())
	}
	if _, ok := c.entries["newcomer"]; !ok {
		t.Fatalf("mid-cost newcomer not admitted over the cheap resident: %+v", c.Stats())
	}
	if _, ok := c.entries["cheap"]; ok {
		t.Fatal("cheap layer survived over the expensive one")
	}

	// An incoming entry worth less than everything resident is refused
	// outright (admission control): caching it would trade stall up.
	get("worthless", 0)
	if _, ok := c.entries["worthless"]; ok {
		t.Fatal("near-free layer admitted over more valuable residents")
	}
	if s := c.Stats(); s.AdmissionDrops == 0 {
		t.Fatalf("refused insert not counted as an admission drop: %+v", s)
	}
}

// TestGDSFDeterministicTieBreak: entries with identical priority (same
// cost, same decode time, same frequency) evict in insertion order,
// oldest first — byte-for-byte reproducible evictions at any concurrency.
// Exact priority ties cannot be staged through Get (the cache measures
// real decode wall time), so this drives insertLocked directly with a
// fixed decodeNs.
func TestGDSFDeterministicTieBreak(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		const cost, decodeNs = 100, 1000
		c := NewDecodeCacheWith(3*cost, EvictGDSF)
		insert := func(key string) {
			c.mu.Lock()
			c.insertLocked(key, fakeLayer(cost), cost, decodeNs, false)
			c.mu.Unlock()
		}
		for _, k := range []string{"first", "second", "third"} {
			insert(k)
		}
		// All three residents tie on priority; each insert must evict the
		// oldest remaining one, in order.
		for i, k := range []string{"fourth", "fifth", "sixth"} {
			insert(k)
			if _, ok := c.entries[k]; !ok {
				t.Fatalf("trial %d: %s not admitted on a priority tie", trial, k)
			}
			evictedWant := []string{"first", "second", "third"}[i]
			if _, ok := c.entries[evictedWant]; ok {
				t.Fatalf("trial %d: after inserting %s, %s still resident (want oldest-first eviction)", trial, k, evictedWant)
			}
		}
	}
}

// TestPrefetchCannotEvictPinned: while layer k is pinned (its kernel is
// running), prefetching enough layers to overflow the budget must not
// displace it — the speculative entries are dropped instead.
func TestPrefetchCannotEvictPinned(t *testing.T) {
	for _, policy := range []EvictionPolicy{EvictLRU, EvictGDSF} {
		t.Run(policy.String(), func(t *testing.T) {
			const cost = 400
			c := NewDecodeCacheWith(2*cost, policy)
			layerK, release, err := c.GetPinned("k", slowDecode(cost, time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			// Speculate far past the budget while k is pinned.
			for i := 0; i < 4; i++ {
				c.Prefetch(fmt.Sprintf("k+%d", i+1), slowDecode(cost, 0))
			}
			ent, ok := c.entries["k"]
			if !ok {
				t.Fatal("pinned layer k evicted by prefetch traffic")
			}
			if ent.layer != layerK {
				t.Fatal("layer k entry replaced while pinned")
			}
			if s := c.Stats(); s.BytesInUse > 2*cost {
				t.Fatalf("budget exceeded by speculation: %d > %d", s.BytesInUse, 2*cost)
			}
			release()
			// Unpinned, k is fair game again; a demand insert may now take
			// its slot without deadlocking on the stale pin.
			if _, err := c.Get("fresh", slowDecode(cost, 0)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPrefetchAccounting locks the speculative counters: a prefetch that
// a demand get later claims is a prefetch hit; one that is evicted or
// dropped unused is waste; a demand get that joins an in-flight prefetch
// decode is overlap (and coalesced), not a hit or miss.
func TestPrefetchAccounting(t *testing.T) {
	const cost = 400
	c := NewDecodeCacheWith(4*cost, EvictGDSF)

	// Hit: prefetch lands, demand claims it — no demand miss, no decode.
	c.Prefetch("claimed", slowDecode(cost, 0))
	demandDecodes := 0
	if _, err := c.Get("claimed", func() (*core.DecodedLayer, int64, error) {
		demandDecodes++
		return fakeLayer(cost), cost, nil
	}); err != nil {
		t.Fatal(err)
	}
	if demandDecodes != 0 {
		t.Fatal("demand get re-decoded a prefetched layer")
	}
	s := c.Stats()
	if s.Prefetches != 1 || s.PrefetchHits != 1 || s.Misses != 0 || s.Hits != 1 {
		t.Fatalf("after claimed prefetch: %+v", s)
	}

	// Overlap: demand arrives while the prefetch decode is in flight.
	started := make(chan struct{})
	hold := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Prefetch("inflight", func() (*core.DecodedLayer, int64, error) {
			close(started)
			<-hold
			return fakeLayer(cost), cost, nil
		})
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Get("inflight", slowDecode(cost, 0)); err != nil {
			t.Error(err)
		}
	}()
	for c.Stats().PrefetchOver == 0 {
		time.Sleep(time.Millisecond)
	}
	close(hold)
	wg.Wait()
	s = c.Stats()
	if s.PrefetchOver != 1 || s.Coalesced != 1 {
		t.Fatalf("overlap accounting: %+v", s)
	}
	if s.PrefetchHits != 1 {
		t.Fatalf("an overlap wait double-counted as a prefetch hit: %+v", s)
	}

	// Waste: prefetched entries squeezed out (or refused) before any
	// demand use are charged to the speculation.
	for i := 0; i < 8; i++ {
		c.Prefetch(fmt.Sprintf("spill%d", i), slowDecode(cost, 0))
	}
	if s = c.Stats(); s.PrefetchWaste == 0 {
		t.Fatalf("overflowing speculative traffic recorded no waste: %+v", s)
	}
}

// TestPrefetchedEntryEvictsBeforeHot: under GDSF a prefetched-but-unused
// entry enters at zero frequency, so when the budget squeezes it loses to
// a demand-hot resident of the same shape instead of displacing it.
func TestPrefetchedEntryEvictsBeforeHot(t *testing.T) {
	const cost = 400
	c := NewDecodeCacheWith(2*cost, EvictGDSF)
	// "hot" earns demand frequency.
	for i := 0; i < 3; i++ {
		if _, err := c.Get("hot", slowDecode(cost, time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	c.Prefetch("spec", slowDecode(cost, time.Millisecond))
	// A demand miss now needs a slot: the unused prefetch must go first.
	if _, err := c.Get("demand", slowDecode(cost, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.entries["hot"]; !ok {
		t.Fatalf("hot layer evicted while an unused prefetched entry was resident: %+v", c.Stats())
	}
	if _, ok := c.entries["spec"]; ok {
		t.Fatal("unused prefetched entry outlived the squeeze")
	}
	if s := c.Stats(); s.PrefetchWaste != 1 {
		t.Fatalf("evicted unused prefetch not counted as waste: %+v", s)
	}
}

// TestCacheEffectiveHitRate locks the coalesced-get accounting bugfix:
// HitRate keeps its decode-or-hit meaning, EffectiveHitRate folds
// coalesced serves in, and under singleflight-heavy traffic the two
// disagree exactly by the coalesced share.
func TestCacheEffectiveHitRate(t *testing.T) {
	s := CacheStats{Hits: 1, Misses: 1, Coalesced: 8}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5 (coalesced excluded)", got)
	}
	if got := s.EffectiveHitRate(); got != 0.9 {
		t.Fatalf("EffectiveHitRate = %v, want 0.9 ((1+8)/10)", got)
	}
	var zero CacheStats
	if zero.HitRate() != 0 || zero.EffectiveHitRate() != 0 {
		t.Fatal("zero-traffic rates must be 0, not NaN")
	}
}

// prefetchEngine builds an engine over the shared test MLP with an
// optional decode-ahead depth and a budget that fits both fc layers.
func prefetchEngine(t testing.TB, net *nn.Network, m *core.Model, policy EvictionPolicy, depth int) *Engine {
	t.Helper()
	cache := NewDecodeCacheWith(2*m.MaxDenseBytes(), policy)
	e, err := NewEngine("mlp", m, net, []int{1, 8, 8}, cache, BatchOptions{}, DefaultSparseThreshold)
	if err != nil {
		t.Fatal(err)
	}
	e.StartPrefetch(depth)
	t.Cleanup(e.Close)
	return e
}

// TestPrefetchBitIdenticalOutputs is the determinism contract, and the
// named -race target in CI: with prefetch on at several depths and
// eviction policies, concurrent predicts return bit-identical outputs to
// prefetch-off and to the decoded reference network.
func TestPrefetchBitIdenticalOutputs(t *testing.T) {
	net, m := servedModel(t, 17)
	rows := testRows(6, 18)
	want := decodedReference(t, net, m, rows)

	for _, cfg := range []struct {
		policy EvictionPolicy
		depth  int
	}{
		{EvictLRU, 0}, {EvictLRU, 1}, {EvictLRU, 2},
		{EvictGDSF, 0}, {EvictGDSF, 1}, {EvictGDSF, 2},
	} {
		t.Run(fmt.Sprintf("%s-depth%d", cfg.policy, cfg.depth), func(t *testing.T) {
			e := prefetchEngine(t, net, m, cfg.policy, cfg.depth)
			const workers, reps = 8, 5
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for rep := 0; rep < reps; rep++ {
						got, err := e.Predict(rows)
						if err != nil {
							t.Error(err)
							return
						}
						for i := range want {
							for j := range want[i] {
								if got[i][j] != want[i][j] {
									t.Errorf("row %d col %d: %v != %v (outputs must be bit-identical with prefetch on)",
										i, j, got[i][j], want[i][j])
									return
								}
							}
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestPrefetchWorkerDecodesAhead: announcing layer k to the prefetcher
// makes the worker decode layer k+1 into the cache on its own, through
// the speculative path (counted as a prefetch, not a demand miss); a
// demand get then claims it without decoding. Driven directly (on this
// two-fc-layer model a demand pass outruns the worker, so end-to-end
// traffic exercises dedup rather than the decode-ahead itself).
func TestPrefetchWorkerDecodesAhead(t *testing.T) {
	net, m := servedModel(t, 19)
	rows := testRows(4, 20)
	want := decodedReference(t, net, m, rows)

	cache := NewDecodeCacheWith(2*m.MaxDenseBytes(), EvictGDSF)
	e, err := NewEngine("mlp", m, net, []int{1, 8, 8}, cache, BatchOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.StartPrefetch(1)
	defer e.Close()
	if e.PrefetchDepth() != 1 {
		t.Fatalf("PrefetchDepth = %d, want 1", e.PrefetchDepth())
	}

	// Announce layer 0 on an idle engine: the worker must decode layer 1.
	e.prefetch.advance(0)
	deadline := time.Now().Add(5 * time.Second)
	for cache.Stats().Prefetches == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("prefetch worker never decoded ahead: %+v", cache.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	for cache.Stats().Entries == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s := cache.Stats(); s.Misses != 0 {
		t.Fatalf("speculative decode charged as a demand miss: %+v", s)
	}

	// Traffic over the warmed cache: outputs exact, and the speculative
	// entry is claimed as a prefetch hit (layer 1 never demand-decoded).
	for i := 0; i < 5; i++ {
		got, err := e.Predict(rows)
		if err != nil {
			t.Fatal(err)
		}
		for r := range want {
			for c := range want[r] {
				if got[r][c] != want[r][c] {
					t.Fatalf("iteration %d: output diverged with a prefetched layer resident", i)
				}
			}
		}
	}
	s := cache.Stats()
	if s.PrefetchHits != 1 {
		t.Fatalf("prefetched layer not claimed as a hit: %+v", s)
	}
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (only the non-prefetched layer decodes on demand): %+v", s.Misses, s)
	}
}

// TestEvictionPolicyConfig locks the policy plumbing: parse, registry
// switch, the non-empty-cache guard, and the stats label.
func TestEvictionPolicyConfig(t *testing.T) {
	if p, err := ParseEvictionPolicy("gdsf"); err != nil || p != EvictGDSF {
		t.Fatalf("ParseEvictionPolicy(gdsf) = %v, %v", p, err)
	}
	if p, err := ParseEvictionPolicy(""); err != nil || p != EvictLRU {
		t.Fatalf("ParseEvictionPolicy(\"\") = %v, %v", p, err)
	}
	if _, err := ParseEvictionPolicy("arc"); err == nil {
		t.Fatal("unknown policy accepted")
	}

	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	if err := reg.SetEvictionPolicy(EvictGDSF); err != nil {
		t.Fatal(err)
	}
	if got := reg.Cache().Stats().Policy; got != "gdsf" {
		t.Fatalf("stats policy %q, want gdsf", got)
	}

	// Switching under residents is refused (priorities/recency would be
	// meaningless across policies).
	c := NewDecodeCache(0)
	if _, err := c.Get("x", func() (*core.DecodedLayer, int64, error) {
		return &core.DecodedLayer{Weights: make([]float32, 8)}, 32, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPolicy(EvictGDSF); err == nil {
		t.Fatal("policy switch on a non-empty cache accepted")
	}
}
