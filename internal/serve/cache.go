package serve

import (
	"container/heap"
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// EvictionPolicy selects the DecodeCache's replacement algorithm.
type EvictionPolicy int

const (
	// EvictLRU evicts the least-recently-used entry — oblivious to what a
	// re-decode would cost, which is fine when every layer decodes in
	// about the same time.
	EvictLRU EvictionPolicy = iota
	// EvictGDSF evicts by GreedyDual-Size-Frequency priority: an entry's
	// value is its measured decode cost per resident byte, scaled by how
	// often it is demand-used and aged against a global floor that rises
	// with every eviction. Expensive-to-decode layers outlive cheap ones
	// of the same size; a layer that stops being used sinks below the
	// floor and goes first. Prefetched-but-unused entries carry zero
	// frequency, so speculation can never displace a demand-hot layer.
	EvictGDSF
)

// String returns the policy's CLI name.
func (p EvictionPolicy) String() string {
	if p == EvictGDSF {
		return "gdsf"
	}
	return "lru"
}

// ParseEvictionPolicy parses the -eviction-policy flag value.
func ParseEvictionPolicy(s string) (EvictionPolicy, error) {
	switch s {
	case "lru", "":
		return EvictLRU, nil
	case "gdsf":
		return EvictGDSF, nil
	}
	return EvictLRU, fmt.Errorf("unknown eviction policy %q (want lru or gdsf)", s)
}

// DecodeCache is a byte-budgeted cache over decoded layers, evicting by
// LRU or by a GDSF cost/size priority (see EvictionPolicy). Concurrent
// Gets for the same key are deduplicated singleflight-style: one goroutine
// decodes, the rest wait and share the result. Entries whose cost exceeds
// the whole budget are decoded but never inserted (counted as bypasses),
// so a tiny budget degrades to pure streaming instead of thrashing.
//
// Entries can be pinned (GetPinned) for the duration of a kernel: a pinned
// entry is never evicted, which is what lets a prefetch of layer k+1 run
// while layer k computes without any risk of the prefetch displacing the
// layer mid-forward.
//
// Cached *core.DecodedLayer values are shared between callers and must be
// treated as read-only.
type DecodeCache struct {
	mu       sync.Mutex
	policy   EvictionPolicy
	budget   int64 // bytes; <= 0 means unlimited
	bytes    int64
	ll       *list.List // front = most recently used (EvictLRU order)
	heap     prioHeap   // min-priority order (EvictGDSF)
	entries  map[string]*cacheEntry
	inflight map[string]*flight

	agingL float64 // GDSF aging floor: the priority of the last eviction
	seq    uint64  // insertion sequence; deterministic GDSF tie-break

	// bytes split by resident format: sparseBytes + denseBytes == bytes.
	sparseBytes, denseBytes int64

	hits, misses, evictions, coalesced, bypasses          uint64
	prefetches, prefetchHits, prefetchWaste, prefetchOver uint64
	admissionDrops                                        uint64
	decodeTime                                            time.Duration
	prefetchTime                                          time.Duration

	// verify: entries are checksummed at insert and re-verified by Scrub
	// and CheckEntry; a mismatch ejects the entry (see SetIntegrityTracking).
	verify        bool
	scrubs        uint64 // Scrub sweeps completed
	scrubChecks   uint64 // entries checksummed by sweeps
	scrubEjected  uint64 // mismatches found by sweeps
	releaseChecks uint64 // entries checksummed by CheckEntry
	corrupt       uint64 // entries ejected on checksum mismatch (all paths)
	scrubTime     time.Duration
}

type cacheEntry struct {
	key    string
	layer  *core.DecodedLayer
	cost   int64 // resident bytes, charged to the budget
	sparse bool  // layer resident in CSR form

	el      *list.Element // LRU position; nil under EvictGDSF
	heapIdx int           // heap position; -1 under EvictLRU

	decodeNs   int64   // measured decode wall time that produced the entry
	freq       uint64  // demand uses since insertion
	prio       float64 // GDSF priority at last touch
	seq        uint64  // insertion order; older evicts first on prio ties
	pins       int     // > 0: in use by a kernel, not evictable
	prefetched bool    // inserted speculatively, no demand use yet
	crc        uint32  // fill-time checksum of the resident layer (verify mode)
}

// weight is the GDSF cost term: decode nanoseconds per resident byte —
// how much re-decode stall one evicted byte of this entry would buy back.
func (e *cacheEntry) weight() float64 {
	ns := e.decodeNs
	if ns < 1 {
		ns = 1 // decodes under clock resolution still have nonzero value
	}
	return float64(ns) / float64(max(e.cost, 1))
}

// prioHeap is a min-heap over GDSF priority with the insertion sequence as
// the tie-break, so eviction order under equal priorities is deterministic
// (oldest first) at any concurrency.
type prioHeap []*cacheEntry

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h prioHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx, h[j].heapIdx = i, j
}
func (h *prioHeap) Push(x any) {
	e := x.(*cacheEntry)
	e.heapIdx = len(*h)
	*h = append(*h, e)
}
func (h *prioHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	e.heapIdx = -1
	return e
}

// flight is one in-progress decode that later arrivals wait on.
type flight struct {
	done     chan struct{}
	layer    *core.DecodedLayer
	err      error
	prefetch bool // decode was started speculatively, not by a request
}

// NewDecodeCache creates an LRU cache holding at most budget bytes of
// decoded layers (budget <= 0 means unlimited).
func NewDecodeCache(budget int64) *DecodeCache {
	return NewDecodeCacheWith(budget, EvictLRU)
}

// NewDecodeCacheWith is NewDecodeCache with an explicit eviction policy.
func NewDecodeCacheWith(budget int64, policy EvictionPolicy) *DecodeCache {
	return &DecodeCache{
		policy:   policy,
		budget:   budget,
		ll:       list.New(),
		entries:  map[string]*cacheEntry{},
		inflight: map[string]*flight{},
	}
}

// SetPolicy switches the eviction policy. Only valid while the cache is
// empty (call it at configuration time, before traffic).
func (c *DecodeCache) SetPolicy(p EvictionPolicy) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) > 0 || len(c.inflight) > 0 {
		return fmt.Errorf("serve: cannot switch eviction policy on a non-empty cache")
	}
	c.policy = p
	return nil
}

// Policy returns the active eviction policy.
func (c *DecodeCache) Policy() EvictionPolicy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy
}

// SetIntegrityTracking turns resident-entry checksumming on or off: every
// inserted layer is checksummed at fill time, and Scrub/CheckEntry compare
// against that value, ejecting mismatches. Like SetPolicy it is only valid
// while the cache is empty — a half-tracked cache would scrub garbage.
func (c *DecodeCache) SetIntegrityTracking(on bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) > 0 || len(c.inflight) > 0 {
		return fmt.Errorf("serve: cannot toggle integrity tracking on a non-empty cache")
	}
	c.verify = on
	return nil
}

// IntegrityTracking reports whether resident checksumming is on.
func (c *DecodeCache) IntegrityTracking() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.verify
}

// CheckEntry re-verifies the entry under key against its fill-time
// checksum, ejecting it on mismatch. It returns false only for a resident
// entry that failed (a missing entry is vacuously fine). The checksum runs
// outside the cache lock; the entry is ejected only if it is still the
// same entry afterwards. Engines call this while the entry is pinned —
// after a kernel consumed the buffer, before unpinning — so a false return
// means the kernel may have read flipped bits and its output must not be
// served.
func (c *DecodeCache) CheckEntry(key string) bool {
	c.mu.Lock()
	if !c.verify {
		c.mu.Unlock()
		return true
	}
	ent, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return true
	}
	layer, want := ent.layer, ent.crc
	c.releaseChecks++
	c.mu.Unlock()

	if layer.Checksum() == want {
		return true
	}
	c.mu.Lock()
	if cur, ok := c.entries[key]; ok && cur == ent {
		c.removeLocked(cur)
		c.corrupt++
	}
	c.mu.Unlock()
	return false
}

// Scrub sweeps every resident entry, re-verifying it against its
// fill-time checksum and ejecting mismatches. Checksums run outside the
// cache lock (the sweep holds it only to snapshot and to eject), so
// serving continues during a scrub. Pinned entries are verified and — on
// mismatch — removed from the index like any other: pointer holders keep
// a valid detached entry, and the in-flight kernel read is covered by
// release-time CheckEntry, not by the sweep. Returns entries checked and
// ejected; (0, 0) when tracking is off.
func (c *DecodeCache) Scrub() (checked, ejected int) {
	t0 := time.Now()
	c.mu.Lock()
	if !c.verify {
		c.mu.Unlock()
		return 0, 0
	}
	type snap struct {
		ent   *cacheEntry
		layer *core.DecodedLayer
		want  uint32
	}
	snaps := make([]snap, 0, len(c.entries))
	for _, ent := range c.entries {
		snaps = append(snaps, snap{ent, ent.layer, ent.crc})
	}
	c.mu.Unlock()

	var bad []*cacheEntry
	for _, s := range snaps {
		if s.layer.Checksum() != s.want {
			bad = append(bad, s.ent)
		}
	}

	c.mu.Lock()
	for _, ent := range bad {
		if cur, ok := c.entries[ent.key]; ok && cur == ent {
			c.removeLocked(cur)
			c.corrupt++
			c.scrubEjected++
			ejected++
		}
	}
	c.scrubs++
	c.scrubChecks += uint64(len(snaps))
	c.scrubTime += time.Since(t0)
	c.mu.Unlock()
	return len(snaps), ejected
}

// VisitResident calls fn for every resident entry's key and shared layer
// pointer, without touching recency or frequency. The layers are the live
// cached buffers — fn mutating them corrupts what kernels read, which is
// exactly what the chaos harness uses it for. Not part of the serving
// path.
func (c *DecodeCache) VisitResident(fn func(key string, layer *core.DecodedLayer)) {
	c.mu.Lock()
	type kv struct {
		key   string
		layer *core.DecodedLayer
	}
	snaps := make([]kv, 0, len(c.entries))
	for k, ent := range c.entries {
		snaps = append(snaps, kv{k, ent.layer})
	}
	c.mu.Unlock()
	for _, s := range snaps {
		fn(s.key, s.layer)
	}
}

// Get returns the layer stored under key, invoking decode on a miss.
// decode also reports the layer's resident size in bytes — known only
// after decoding, since a sparse-enough layer comes back in CSR form and
// costs ~40 bits per nonzero instead of 32 bits per dense slot. decode
// runs outside the cache lock; at most one decode per key is in flight.
func (c *DecodeCache) Get(key string, decode func() (*core.DecodedLayer, int64, error)) (*core.DecodedLayer, error) {
	layer, release, err := c.GetPinned(key, decode)
	release()
	return layer, err
}

// GetPinned is Get plus a pin: until release is called the entry cannot be
// evicted, no matter what demand or prefetch traffic inserts meanwhile.
// The returned release is never nil and is idempotent.
func (c *DecodeCache) GetPinned(key string, decode func() (*core.DecodedLayer, int64, error)) (*core.DecodedLayer, func(), error) {
	layer, release, _, err := c.getPinnedOutcome(key, decode)
	return layer, release, err
}

// Cache outcomes as span tracing sees them. These name the same paths the
// counters already count — the span layer just attributes them to a
// specific request instead of a fleet-wide sum.
const (
	OutcomeHit             = "hit"
	OutcomeMiss            = "miss"
	OutcomeCoalesced       = "coalesced"
	OutcomePrefetchHit     = "prefetch_hit"
	OutcomePrefetchOverlap = "prefetch_overlap"
	OutcomeCorruptEject    = "corrupt_eject"
)

// getPinnedOutcome is GetPinned's core; the extra return names which
// cache path served the request (OutcomeHit, OutcomeMiss, ...).
func (c *DecodeCache) getPinnedOutcome(key string, decode func() (*core.DecodedLayer, int64, error)) (*core.DecodedLayer, func(), string, error) {
retry:
	c.mu.Lock()
	if ent, ok := c.entries[key]; ok {
		// touchLocked clears the prefetched flag (counting the prefetch
		// hit); read it first so the span sees which kind of hit this was.
		outcome := OutcomeHit
		if ent.prefetched {
			outcome = OutcomePrefetchHit
		}
		c.touchLocked(ent)
		c.hits++
		ent.pins++
		layer := ent.layer
		c.mu.Unlock()
		return layer, c.unpinFunc(ent), outcome, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced++
		joinedPrefetch := f.prefetch
		if joinedPrefetch {
			// The stall this request does pay is the tail of a decode that
			// started before it arrived — compute/decode overlap working.
			c.prefetchOver++
		}
		c.mu.Unlock()
		<-f.done
		if f.err == errPrefetchAborted {
			// The scheduler cancelled this speculative decode before it
			// started. Undo the join accounting and take the demand path.
			c.mu.Lock()
			c.coalesced--
			if joinedPrefetch {
				c.prefetchOver--
			}
			c.mu.Unlock()
			goto retry
		}
		outcome := OutcomeCoalesced
		if joinedPrefetch {
			outcome = OutcomePrefetchOverlap
		}
		if f.err != nil {
			return f.layer, func() {}, outcome, f.err
		}
		return f.layer, c.adoptAfterFlight(key), outcome, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	t0 := time.Now()
	layer, cost, err := decode()
	dt := time.Since(t0)

	c.mu.Lock()
	c.decodeTime += dt
	delete(c.inflight, key)
	var release func()
	if err == nil {
		if ent := c.insertLocked(key, layer, cost, dt.Nanoseconds(), false); ent != nil {
			ent.pins++
			release = c.unpinFunc(ent)
		}
	}
	c.mu.Unlock()

	f.layer, f.err = layer, err
	close(f.done)
	if release == nil {
		release = func() {}
	}
	return layer, release, OutcomeMiss, err
}

// errPrefetchAborted marks a speculative flight that was cancelled before
// its decode started (scheduler queue full, or shutdown). Demand gets that
// joined such a flight retry through the normal paths; the sentinel never
// escapes the cache.
var errPrefetchAborted = errors.New("serve: prefetch aborted before decode")

// Prefetch decodes key into the cache if it is not already resident or in
// flight. It never touches recency, frequency, or the demand hit/miss
// counters, and a prefetched entry enters with zero frequency: under GDSF
// it is the first eviction candidate until a demand Get claims it, so
// speculation can stretch the budget but never shrink what is hot.
func (c *DecodeCache) Prefetch(key string, decode func() (*core.DecodedLayer, int64, error)) {
	run, _ := c.BeginPrefetch(key, decode)
	if run != nil {
		run()
	}
}

// BeginPrefetch registers a speculative decode flight for key and returns
// run (performs the decode; call outside any lock) and abort (cancels the
// registration when the decode cannot be scheduled). Exactly one of the
// two must be called. Both are nil when key is already resident or in
// flight.
//
// Splitting registration from execution lets the announcing goroutine
// claim the flight synchronously on the request path — from that moment a
// demand get for the key joins the speculative decode instead of racing
// it, so prefetch coverage does not depend on how quickly the worker
// goroutine is scheduled. Aborted flights wake their joiners with an
// internal sentinel that sends them back through the demand path, so a
// cancelled prefetch costs a retry, never a deadlock.
func (c *DecodeCache) BeginPrefetch(key string, decode func() (*core.DecodedLayer, int64, error)) (run, abort func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return nil, nil
	}
	if _, ok := c.inflight[key]; ok {
		return nil, nil
	}
	f := &flight{done: make(chan struct{}), prefetch: true}
	c.inflight[key] = f
	c.prefetches++

	run = func() {
		t0 := time.Now()
		layer, cost, err := decode()
		dt := time.Since(t0)

		c.mu.Lock()
		c.prefetchTime += dt
		delete(c.inflight, key)
		if err == nil {
			c.insertLocked(key, layer, cost, dt.Nanoseconds(), true)
		}
		c.mu.Unlock()

		f.layer, f.err = layer, err
		close(f.done)
	}
	abort = func() {
		c.mu.Lock()
		delete(c.inflight, key)
		c.prefetches-- // never started: keep the counter to decodes actually run
		c.mu.Unlock()
		f.err = errPrefetchAborted
		close(f.done)
	}
	return run, abort
}

// adoptAfterFlight claims a just-landed flight's entry for a demand
// caller: pin it, count its demand use, and clear the speculative flag (a
// coalesced wait on a prefetch is already counted as overlap, not as a
// prefetch hit). The entry may have been evicted in the window between
// flight completion and this lock — the shared layer pointer stays valid
// either way, there is just nothing to pin.
func (c *DecodeCache) adoptAfterFlight(key string) func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[key]
	if !ok {
		return func() {}
	}
	ent.prefetched = false
	ent.freq++
	c.reprioritizeLocked(ent)
	ent.pins++
	return c.unpinFunc(ent)
}

// unpinFunc returns the idempotent release for one pin on ent.
func (c *DecodeCache) unpinFunc(ent *cacheEntry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			ent.pins--
			c.mu.Unlock()
		})
	}
}

// touchLocked records a demand use: recency under LRU, frequency and a
// re-aged priority under GDSF, and prefetch-hit accounting when this is
// the first demand use of a speculative entry. Caller owns c.mu.
func (c *DecodeCache) touchLocked(ent *cacheEntry) {
	if ent.prefetched {
		ent.prefetched = false
		c.prefetchHits++
	}
	ent.freq++
	if ent.el != nil {
		c.ll.MoveToFront(ent.el)
	}
	c.reprioritizeLocked(ent)
}

// reprioritizeLocked recomputes ent's GDSF priority from the current
// aging floor and fixes its heap position. No-op under LRU. Caller owns
// c.mu.
func (c *DecodeCache) reprioritizeLocked(ent *cacheEntry) {
	if c.policy != EvictGDSF || ent.heapIdx < 0 {
		return
	}
	ent.prio = c.agingL + float64(ent.freq)*ent.weight()
	heap.Fix(&c.heap, ent.heapIdx)
}

// insertLocked adds an entry and evicts until the budget holds, returning
// the resident entry (nil when the layer was not admitted). Caller owns
// c.mu.
//
// Under LRU anything inserted evicts from the tail, skipping pinned
// entries. Under GDSF the incoming entry competes on priority: it only
// displaces entries worth less than itself, and an incoming entry worth
// less than everything resident is dropped instead (admission control) —
// for a demand insert that is harmless (the caller already holds the
// decoded layer), for a prefetch it is the speculation losing to the
// working set, as it should.
func (c *DecodeCache) insertLocked(key string, layer *core.DecodedLayer, cost, decodeNs int64, prefetch bool) *cacheEntry {
	if ent, ok := c.entries[key]; ok {
		// A concurrent insert beat us (possible when a key is re-requested
		// right after eviction); refresh recency only.
		if ent.el != nil {
			c.ll.MoveToFront(ent.el)
		}
		return ent
	}
	if c.budget > 0 && cost > c.budget {
		c.bypasses++
		return nil
	}
	ent := &cacheEntry{
		key:      key,
		layer:    layer,
		cost:     cost,
		sparse:   layer.Sparse != nil,
		heapIdx:  -1,
		decodeNs: decodeNs,
		seq:      c.seq,
	}
	if c.verify {
		// Fill-time checksum; Scrub and CheckEntry compare against it. The
		// layer was verified against the stream by the decode that produced
		// it, so this pins the known-good resident bytes.
		ent.crc = layer.Checksum()
	}
	c.seq++
	if !prefetch {
		ent.freq = 1
	} else {
		ent.prefetched = true
	}
	ent.prio = c.agingL + float64(ent.freq)*ent.weight()

	for c.budget > 0 && c.bytes+cost > c.budget {
		victim := c.victimLocked()
		if victim == nil {
			// Everything resident is pinned by running kernels. A demand
			// insert overshoots transiently (the pins release when those
			// kernels finish); a speculative one is dropped instead.
			if prefetch {
				c.admissionDrops++
				c.prefetchWaste++
				return nil
			}
			break
		}
		if c.policy == EvictGDSF && victim.prio > ent.prio {
			// The incoming entry is worth less than the cheapest resident:
			// caching it would trade re-decode stall up, not down.
			c.admissionDrops++
			if prefetch {
				c.prefetchWaste++
			}
			return nil
		}
		c.removeLocked(victim)
		c.evictions++
		if victim.prefetched {
			c.prefetchWaste++
		}
		if c.policy == EvictGDSF && victim.prio > c.agingL {
			// Classic GreedyDual aging: the floor rises to the evicted
			// priority, so long-resident entries must keep earning hits to
			// stay above newcomers.
			c.agingL = victim.prio
		}
	}
	c.entries[key] = ent
	switch c.policy {
	case EvictGDSF:
		heap.Push(&c.heap, ent)
	default:
		ent.el = c.ll.PushFront(ent)
	}
	c.bytes += cost
	c.addFormatBytes(ent.sparse, cost)
	return ent
}

// victimLocked picks the next eviction candidate — the LRU tail or the
// GDSF priority minimum — skipping pinned entries. Returns nil when
// nothing is evictable. Caller owns c.mu.
func (c *DecodeCache) victimLocked() *cacheEntry {
	if c.policy == EvictGDSF {
		// Pop pinned minima aside and restore them after: pins are held
		// for one kernel's duration, so this stays a handful of swaps.
		var pinned []*cacheEntry
		var victim *cacheEntry
		for c.heap.Len() > 0 {
			e := heap.Pop(&c.heap).(*cacheEntry)
			if e.pins > 0 {
				pinned = append(pinned, e)
				continue
			}
			victim = e
			break
		}
		for _, e := range pinned {
			heap.Push(&c.heap, e)
		}
		if victim != nil {
			// Re-attach so removeLocked finds it in a consistent state.
			heap.Push(&c.heap, victim)
		}
		return victim
	}
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		if ent := el.Value.(*cacheEntry); ent.pins == 0 {
			return ent
		}
	}
	return nil
}

// removeLocked detaches ent from every index and returns its bytes.
// Caller owns c.mu.
func (c *DecodeCache) removeLocked(ent *cacheEntry) {
	delete(c.entries, ent.key)
	if ent.el != nil {
		c.ll.Remove(ent.el)
		ent.el = nil
	}
	if ent.heapIdx >= 0 {
		heap.Remove(&c.heap, ent.heapIdx)
	}
	c.bytes -= ent.cost
	c.addFormatBytes(ent.sparse, -ent.cost)
}

// addFormatBytes adjusts the per-format resident byte split. Caller owns
// c.mu.
func (c *DecodeCache) addFormatBytes(sparse bool, delta int64) {
	if sparse {
		c.sparseBytes += delta
	} else {
		c.denseBytes += delta
	}
}

// CacheStats is a point-in-time snapshot of cache behaviour.
type CacheStats struct {
	Policy      string `json:"policy"`              // "lru" or "gdsf"
	Budget      int64  `json:"budget_bytes"`        // 0 = unlimited
	BytesInUse  int64  `json:"bytes_in_use"`        // resident decoded layers
	SparseBytes int64  `json:"sparse_bytes_in_use"` // resident CSR-form layers
	DenseBytes  int64  `json:"dense_bytes_in_use"`  // resident dense-form layers
	Entries     int    `json:"entries"`             // resident layer count
	// Hits counts gets served from a resident entry; Misses counts gets
	// that ran a decode themselves. Coalesced gets — served by waiting on
	// another caller's in-flight decode — are neither: they decoded
	// nothing, but they did stall. HitRate reports hits over decode-or-hit
	// traffic only; EffectiveHitRate folds coalesced serves in as
	// non-decoding, which is the number that matches the
	// deepsz_cache_events_total totals under bursty identical traffic.
	Hits           uint64        `json:"hits"`
	Misses         uint64        `json:"misses"`
	Coalesced      uint64        `json:"coalesced"`
	Evictions      uint64        `json:"evictions"`           // evictions (either policy)
	Bypasses       uint64        `json:"bypasses"`            // layer larger than whole budget
	AdmissionDrops uint64        `json:"admission_drops"`     // GDSF refused to cache (worth less than residents)
	Prefetches     uint64        `json:"prefetches"`          // speculative decodes started
	PrefetchHits   uint64        `json:"prefetch_hits"`       // demand get served by a resident prefetched entry
	PrefetchWaste  uint64        `json:"prefetch_waste"`      // prefetched entries dropped or evicted unused
	PrefetchOver   uint64        `json:"prefetch_overlap"`    // demand gets that joined an in-flight prefetch decode
	DecodeTime     time.Duration `json:"decode_time_nanos"`   // cumulative demand decode wall time
	PrefetchTime   time.Duration `json:"prefetch_time_nanos"` // cumulative speculative decode wall time

	// Integrity tracking (zero when SetIntegrityTracking is off).
	Scrubs           uint64        `json:"scrubs"`            // completed scrub sweeps
	ScrubChecks      uint64        `json:"scrub_checks"`      // entries checksummed by sweeps
	ScrubEjections   uint64        `json:"scrub_ejections"`   // mismatches found by sweeps
	ReleaseChecks    uint64        `json:"release_checks"`    // entries checksummed at kernel release
	CorruptEjections uint64        `json:"corrupt_ejections"` // entries ejected on checksum mismatch
	ScrubTime        time.Duration `json:"scrub_time_nanos"`  // cumulative scrub wall time
}

// HitRate returns hits / (hits + misses), or 0 before any traffic: the
// fraction of decode-or-hit gets that found a resident entry. Coalesced
// gets are excluded — see EffectiveHitRate for the number that counts
// them as served-without-decoding.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// EffectiveHitRate returns (hits + coalesced) / (hits + misses +
// coalesced), or 0 before any traffic: the fraction of all gets that did
// not run a decode themselves. Under bursty identical traffic the
// singleflight path serves most callers by coalescing, so HitRate alone
// under-reports how well the cache is doing and disagrees with the event
// totals exported at /metrics; this is the rate to alert on.
func (s CacheStats) EffectiveHitRate() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// Stats snapshots the counters.
func (c *DecodeCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Policy:         c.policy.String(),
		Budget:         max(c.budget, 0),
		BytesInUse:     c.bytes,
		SparseBytes:    c.sparseBytes,
		DenseBytes:     c.denseBytes,
		Entries:        len(c.entries),
		Hits:           c.hits,
		Misses:         c.misses,
		Coalesced:      c.coalesced,
		Evictions:      c.evictions,
		Bypasses:       c.bypasses,
		AdmissionDrops: c.admissionDrops,
		Prefetches:     c.prefetches,
		PrefetchHits:   c.prefetchHits,
		PrefetchWaste:  c.prefetchWaste,
		PrefetchOver:   c.prefetchOver,
		DecodeTime:     c.decodeTime,
		PrefetchTime:   c.prefetchTime,

		Scrubs:           c.scrubs,
		ScrubChecks:      c.scrubChecks,
		ScrubEjections:   c.scrubEjected,
		ReleaseChecks:    c.releaseChecks,
		CorruptEjections: c.corrupt,
		ScrubTime:        c.scrubTime,
	}
}
