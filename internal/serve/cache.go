package serve

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/core"
)

// DecodeCache is a byte-budgeted LRU over decoded layers. Concurrent
// Gets for the same key are deduplicated singleflight-style: one goroutine
// decodes, the rest wait and share the result. Entries whose cost exceeds
// the whole budget are decoded but never inserted (counted as bypasses),
// so a tiny budget degrades to pure streaming instead of thrashing.
//
// Cached *core.DecodedLayer values are shared between callers and must be
// treated as read-only.
type DecodeCache struct {
	mu       sync.Mutex
	budget   int64 // bytes; <= 0 means unlimited
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight

	// bytes split by resident format: sparseBytes + denseBytes == bytes.
	sparseBytes, denseBytes int64

	hits, misses, evictions, coalesced, bypasses uint64
	decodeTime                                   time.Duration
}

type cacheEntry struct {
	key    string
	layer  *core.DecodedLayer
	cost   int64
	sparse bool // layer resident in CSR form
}

// flight is one in-progress decode that later arrivals wait on.
type flight struct {
	done  chan struct{}
	layer *core.DecodedLayer
	err   error
}

// NewDecodeCache creates a cache holding at most budget bytes of decoded
// layers (budget <= 0 means unlimited).
func NewDecodeCache(budget int64) *DecodeCache {
	return &DecodeCache{
		budget:   budget,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*flight{},
	}
}

// Get returns the layer stored under key, invoking decode on a miss.
// decode also reports the layer's resident size in bytes — known only
// after decoding, since a sparse-enough layer comes back in CSR form and
// costs ~40 bits per nonzero instead of 32 bits per dense slot. decode
// runs outside the cache lock; at most one decode per key is in flight.
func (c *DecodeCache) Get(key string, decode func() (*core.DecodedLayer, int64, error)) (*core.DecodedLayer, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		layer := el.Value.(*cacheEntry).layer
		c.mu.Unlock()
		return layer, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.layer, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	t0 := time.Now()
	layer, cost, err := decode()
	dt := time.Since(t0)

	c.mu.Lock()
	c.decodeTime += dt
	delete(c.inflight, key)
	if err == nil {
		if c.budget > 0 && cost > c.budget {
			c.bypasses++
		} else {
			c.insertLocked(key, layer, cost)
		}
	}
	c.mu.Unlock()

	f.layer, f.err = layer, err
	close(f.done)
	return layer, err
}

// insertLocked adds an entry and evicts from the LRU tail until the budget
// holds. Caller owns c.mu.
func (c *DecodeCache) insertLocked(key string, layer *core.DecodedLayer, cost int64) {
	if el, ok := c.entries[key]; ok {
		// A concurrent insert beat us (possible when a key is re-requested
		// right after eviction); refresh recency only.
		c.ll.MoveToFront(el)
		return
	}
	for c.budget > 0 && c.bytes+cost > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, ent.key)
		c.bytes -= ent.cost
		c.addFormatBytes(ent.sparse, -ent.cost)
		c.evictions++
	}
	ent := &cacheEntry{key: key, layer: layer, cost: cost, sparse: layer.Sparse != nil}
	c.entries[key] = c.ll.PushFront(ent)
	c.bytes += cost
	c.addFormatBytes(ent.sparse, cost)
}

// addFormatBytes adjusts the per-format resident byte split. Caller owns
// c.mu.
func (c *DecodeCache) addFormatBytes(sparse bool, delta int64) {
	if sparse {
		c.sparseBytes += delta
	} else {
		c.denseBytes += delta
	}
}

// CacheStats is a point-in-time snapshot of cache behaviour.
type CacheStats struct {
	Budget      int64         `json:"budget_bytes"`        // 0 = unlimited
	BytesInUse  int64         `json:"bytes_in_use"`        // resident decoded layers
	SparseBytes int64         `json:"sparse_bytes_in_use"` // resident CSR-form layers
	DenseBytes  int64         `json:"dense_bytes_in_use"`  // resident dense-form layers
	Entries     int           `json:"entries"`             // resident layer count
	Hits        uint64        `json:"hits"`                // served without decoding
	Misses      uint64        `json:"misses"`              // triggered a decode
	Coalesced   uint64        `json:"coalesced"`           // waited on another caller's decode
	Evictions   uint64        `json:"evictions"`           // LRU evictions
	Bypasses    uint64        `json:"bypasses"`            // layer larger than whole budget
	DecodeTime  time.Duration `json:"decode_time_nanos"`   // cumulative decode wall time
}

// HitRate returns hits / (hits + misses), or 0 before any traffic.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the counters.
func (c *DecodeCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Budget:      max(c.budget, 0),
		BytesInUse:  c.bytes,
		SparseBytes: c.sparseBytes,
		DenseBytes:  c.denseBytes,
		Entries:     c.ll.Len(),
		Hits:        c.hits,
		Misses:      c.misses,
		Coalesced:   c.coalesced,
		Evictions:   c.evictions,
		Bypasses:    c.bypasses,
		DecodeTime:  c.decodeTime,
	}
}
