package serve

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Registry holds the engines for every loaded model and owns the decode
// cache they share: the memory budget is server-wide, so hot models evict
// cold models' layers, exactly like device memory on a shared accelerator.
// It also owns the telemetry registry behind /metrics: cache and engine
// counters are sampled lazily at scrape time (zero hot-path cost), while
// the per-stage latency histograms live here so every engine feeds one
// family.
type Registry struct {
	mu            sync.RWMutex
	cache         *DecodeCache
	engines       map[string]*Engine
	opt           BatchOptions
	threshold     float64
	prefetchDepth int

	// autotune, when set, replaces the uniform sparse threshold for
	// engines added afterwards with per-layer crossovers measured by tuner
	// at registration time (one measurement per distinct weight shape,
	// shared across models).
	autotune bool
	tuner    *autotuner

	tel    *telemetry.Registry
	stages [telemetry.NumStages]*telemetry.Histogram

	// slo, when configured via SetSLO, scores every finished predict
	// against the operator's latency target. Nil means SLOs are off; every
	// use is nil-safe.
	slo *telemetry.SLOTracker

	// verifyDecoded: engines added afterwards re-verify every cached layer
	// a kernel consumed before unpinning it, and the shared cache tracks
	// fill-time checksums for scrubbing (SetVerifyDecoded).
	verifyDecoded bool

	// sources remembers where each file-loaded model came from, so a
	// quarantined model can be reloaded from disk without a restart.
	sources map[string]*modelSource

	// quar holds the models currently refusing traffic after a corruption
	// detection, keyed by model name. A model leaves the map only through
	// a successful reload.
	quar map[string]*quarState

	quarantines atomic.Uint64 // total quarantine entries (monotonic)
	reloads     atomic.Uint64 // successful quarantine-triggered reloads
	reloadFails atomic.Uint64 // failed reload attempts

	scrubStop chan struct{} // non-nil once the scrub loop is running
}

// modelSource records the on-disk identity of a loaded model.
type modelSource struct {
	path    string
	weights string
}

// quarState tracks one quarantined model.
type quarState struct {
	reason    string
	since     time.Time
	attempts  uint64
	reloading bool // a TryRecover is in flight
	// Identity of the source file at the last failed reload: the periodic
	// retry only re-attempts once the artifact on disk changes, so a bad
	// file is not re-read every tick but a repaired one is picked up
	// without a restart.
	tried     bool
	lastMtime time.Time
	lastSize  int64
}

// QuarantineInfo is the externally visible quarantine state of one model.
type QuarantineInfo struct {
	Reason   string    `json:"reason"`
	Since    time.Time `json:"since"`
	Attempts uint64    `json:"reload_attempts"`
}

// NewRegistry creates a registry whose decode cache holds at most budget
// bytes of materialised layers (budget <= 0 means unlimited). Engines
// start with DefaultSparseThreshold; see SetSparseThreshold.
func NewRegistry(budget int64, opt BatchOptions) *Registry {
	r := &Registry{
		cache:     NewDecodeCache(budget),
		engines:   map[string]*Engine{},
		opt:       opt,
		threshold: DefaultSparseThreshold,
		tuner:     newAutotuner(nil),
		tel:       telemetry.NewRegistry(),
		sources:   map[string]*modelSource{},
		quar:      map[string]*quarState{},
	}
	r.registerMetrics()
	return r
}

// Telemetry returns the registry's metric registry (what /metrics
// exposes).
func (r *Registry) Telemetry() *telemetry.Registry { return r.tel }

// registerMetrics wires the scrape-time samplers and stage histograms.
// Everything counter-like here is backed by the counters the cache and
// engines already maintain, so scraping costs one snapshot per family
// and serving costs nothing new.
func (r *Registry) registerMetrics() {
	telemetry.RegisterBuildInfo(r.tel, "deepsz")
	for _, s := range telemetry.Stages() {
		r.stages[s] = r.tel.Histogram("deepsz_stage_duration_seconds",
			"Predict latency by pipeline stage (queue, batch_wait, cache_lookup, decode, kernel, encode).",
			telemetry.DurationBuckets, telemetry.Label{Name: "stage", Value: s.String()})
	}
	r.tel.CounterFunc("deepsz_cache_events_total",
		"Decode cache events: hit, miss, coalesced (waited on another caller's decode), eviction, bypass (layer larger than the whole budget), prefetch (speculative decode started), prefetch_hit (demand get served by a resident prefetched entry), prefetch_overlap (demand get joined an in-flight prefetch decode), prefetch_waste (prefetched entry dropped or evicted unused), admission_drop (policy refused to cache an entry worth less than the residents).",
		func() []telemetry.Sample {
			s := r.cache.Stats()
			return []telemetry.Sample{
				{Labels: []telemetry.Label{{Name: "event", Value: "hit"}}, Value: float64(s.Hits)},
				{Labels: []telemetry.Label{{Name: "event", Value: "miss"}}, Value: float64(s.Misses)},
				{Labels: []telemetry.Label{{Name: "event", Value: "coalesced"}}, Value: float64(s.Coalesced)},
				{Labels: []telemetry.Label{{Name: "event", Value: "eviction"}}, Value: float64(s.Evictions)},
				{Labels: []telemetry.Label{{Name: "event", Value: "bypass"}}, Value: float64(s.Bypasses)},
				{Labels: []telemetry.Label{{Name: "event", Value: "prefetch"}}, Value: float64(s.Prefetches)},
				{Labels: []telemetry.Label{{Name: "event", Value: "prefetch_hit"}}, Value: float64(s.PrefetchHits)},
				{Labels: []telemetry.Label{{Name: "event", Value: "prefetch_overlap"}}, Value: float64(s.PrefetchOver)},
				{Labels: []telemetry.Label{{Name: "event", Value: "prefetch_waste"}}, Value: float64(s.PrefetchWaste)},
				{Labels: []telemetry.Label{{Name: "event", Value: "admission_drop"}}, Value: float64(s.AdmissionDrops)},
			}
		})
	r.tel.CounterFunc("deepsz_cache_decode_seconds_total",
		"Cumulative wall time spent decoding layers on cache misses.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: r.cache.Stats().DecodeTime.Seconds()}}
		})
	r.tel.CounterFunc("deepsz_cache_prefetch_decode_seconds_total",
		"Cumulative wall time the prefetch worker spent decoding ahead — decode overlapped with compute instead of stalling a request.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: r.cache.Stats().PrefetchTime.Seconds()}}
		})
	r.tel.GaugeFunc("deepsz_cache_resident_bytes",
		"Decoded bytes resident in the cache, by representation.",
		func() []telemetry.Sample {
			s := r.cache.Stats()
			return []telemetry.Sample{
				{Labels: []telemetry.Label{{Name: "format", Value: "dense"}}, Value: float64(s.DenseBytes)},
				{Labels: []telemetry.Label{{Name: "format", Value: "sparse"}}, Value: float64(s.SparseBytes)},
			}
		})
	r.tel.GaugeFunc("deepsz_cache_budget_bytes",
		"Decode cache byte budget (0 = unlimited).",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(r.cache.Stats().Budget)}}
		})
	r.tel.GaugeFunc("deepsz_cache_entries",
		"Layers currently resident in the decode cache.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(r.cache.Stats().Entries)}}
		})
	r.tel.CounterFunc("deepsz_predict_requests_total",
		"Predict calls admitted, by model.",
		r.engineSamples(func(e *Engine) float64 { return float64(e.requests.Load()) }))
	r.tel.CounterFunc("deepsz_predict_rows_total",
		"Example rows served, by model.",
		r.engineSamples(func(e *Engine) float64 { return float64(e.rows.Load()) }))
	r.tel.CounterFunc("deepsz_predict_batches_total",
		"Forward passes run, by model.",
		r.engineSamples(func(e *Engine) float64 { return float64(e.batches.Load()) }))
	r.tel.CounterFunc("deepsz_predict_shed_total",
		"Predict calls shed by the per-engine admission bound, by model.",
		r.engineSamples(func(e *Engine) float64 { return float64(e.shed.Load()) }))
	r.tel.GaugeFunc("deepsz_predict_pending",
		"Predicts admitted and not yet finished, by model.",
		r.engineSamples(func(e *Engine) float64 { return float64(e.pendingNow.Load()) }))
	r.tel.GaugeFunc("deepsz_kernel_autotune_threshold",
		"Autotuned dense-vs-CSR crossover density per layer: the decode cache keeps the layer CSR below this measured density. Absent for engines running the uniform threshold.",
		func() []telemetry.Sample {
			r.mu.RLock()
			defer r.mu.RUnlock()
			var out []telemetry.Sample
			for name, e := range r.engines {
				if !e.autotuned {
					continue
				}
				for i := range e.model.Layers {
					out = append(out, telemetry.Sample{
						Labels: []telemetry.Label{
							{Name: "model", Value: name},
							{Name: "layer", Value: e.model.Layers[i].Name},
						},
						Value: e.thresholdFor(i),
					})
				}
			}
			return out
		})
	r.tel.CounterFunc("deepsz_kernel_autotune_shapes_total",
		"Distinct layer shapes micro-benchmarked by kernel autotuning.",
		func() []telemetry.Sample {
			r.mu.RLock()
			defer r.mu.RUnlock()
			return []telemetry.Sample{{Value: float64(r.tuner.shapesMeasured)}}
		})
	r.tel.CounterFunc("deepsz_kernel_autotune_seconds_total",
		"Wall time spent measuring dense-vs-CSR crossovers at engine registration.",
		func() []telemetry.Sample {
			r.mu.RLock()
			defer r.mu.RUnlock()
			return []telemetry.Sample{{Value: float64(r.tuner.spentNs) / 1e9}}
		})
	r.tel.CounterFunc("deepsz_integrity_checks_total",
		"Integrity verifications, by result: decode-time CRC/checksum checks, release-time re-verification, and scrub sweep checks.",
		func() []telemetry.Sample {
			cs := r.cache.Stats()
			var ok, fail float64
			ok += float64(cs.ScrubChecks - cs.ScrubEjections)
			fail += float64(cs.ScrubEjections)
			r.mu.RLock()
			for _, e := range r.engines {
				ok += float64(e.integOK.Load())
				fail += float64(e.integFail.Load())
			}
			r.mu.RUnlock()
			return []telemetry.Sample{
				{Labels: []telemetry.Label{{Name: "result", Value: "ok"}}, Value: ok},
				{Labels: []telemetry.Label{{Name: "result", Value: "fail"}}, Value: fail},
			}
		})
	r.tel.CounterFunc("deepsz_integrity_corrupt_total",
		"Corruption detections, by surface: blob (compressed bytes failed CRC before decompression), decoded (reconstructed weights mismatched the stream checksum), cache (resident entry rotted after a verified fill).",
		func() []telemetry.Sample {
			var blob, decoded float64
			r.mu.RLock()
			for _, e := range r.engines {
				blob += float64(e.corruptBlob.Load())
				decoded += float64(e.corruptDecoded.Load())
			}
			r.mu.RUnlock()
			// Cache-surface detections are counted by the cache itself
			// (scrub sweeps + release-time checks), so each ejection is
			// counted once no matter who noticed it.
			cache := float64(r.cache.Stats().CorruptEjections)
			return []telemetry.Sample{
				{Labels: []telemetry.Label{{Name: "where", Value: "blob"}}, Value: blob},
				{Labels: []telemetry.Label{{Name: "where", Value: "decoded"}}, Value: decoded},
				{Labels: []telemetry.Label{{Name: "where", Value: "cache"}}, Value: cache},
			}
		})
	r.tel.CounterFunc("deepsz_integrity_scrubs_total",
		"Completed background scrub sweeps over the decode cache.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(r.cache.Stats().Scrubs)}}
		})
	r.tel.CounterFunc("deepsz_integrity_scrub_seconds_total",
		"Cumulative wall time spent scrubbing resident cache entries.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: r.cache.Stats().ScrubTime.Seconds()}}
		})
	r.tel.CounterFunc("deepsz_quarantines_total",
		"Models quarantined after a corruption detection (cumulative).",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(r.quarantines.Load())}}
		})
	r.tel.CounterFunc("deepsz_quarantine_reloads_total",
		"Quarantine-triggered reload attempts, by result.",
		func() []telemetry.Sample {
			return []telemetry.Sample{
				{Labels: []telemetry.Label{{Name: "result", Value: "ok"}}, Value: float64(r.reloads.Load())},
				{Labels: []telemetry.Label{{Name: "result", Value: "fail"}}, Value: float64(r.reloadFails.Load())},
			}
		})
	r.tel.GaugeFunc("deepsz_quarantined_models",
		"Models currently quarantined and refusing traffic.",
		func() []telemetry.Sample {
			r.mu.RLock()
			defer r.mu.RUnlock()
			return []telemetry.Sample{{Value: float64(len(r.quar))}}
		})
}

// SetSLO configures per-model SLO tracking: target is the latency bound
// a request must meet to count as good, objective the fraction that must
// (e.g. 250ms, 0.99). Invalid values leave SLOs off. Call before serving
// traffic, like the other configuration setters.
func (r *Registry) SetSLO(target time.Duration, objective float64) {
	s := telemetry.NewSLOTracker(target, objective)
	if s == nil {
		return
	}
	r.mu.Lock()
	r.slo = s
	r.mu.Unlock()
	telemetry.RegisterSLOMetrics(r.tel, "deepsz", s)
}

// SLO returns the registry's SLO tracker (nil when not configured).
func (r *Registry) SLO() *telemetry.SLOTracker {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.slo
}

// PredictHist returns the end-to-end predict latency histogram for model
// (registered on first use; subsequent calls return the same child).
func (r *Registry) PredictHist(model string) *telemetry.Histogram {
	return r.tel.Histogram("deepsz_predict_duration_seconds",
		"End-to-end predict latency by model, measured across the whole HTTP handler.",
		telemetry.DurationBuckets, telemetry.Label{Name: "model", Value: model})
}

// engineSamples builds a scrape-time sampler that reads one value per
// registered engine, labelled by model name.
func (r *Registry) engineSamples(f func(*Engine) float64) func() []telemetry.Sample {
	return func() []telemetry.Sample {
		r.mu.RLock()
		defer r.mu.RUnlock()
		out := make([]telemetry.Sample, 0, len(r.engines))
		for name, e := range r.engines {
			out = append(out, telemetry.Sample{
				Labels: []telemetry.Label{{Name: "model", Value: name}},
				Value:  f(e),
			})
		}
		return out
	}
}

// SetSparseThreshold changes the decoded-layer density below which
// engines cache layers in CSR form (t <= 0 keeps everything dense). It
// affects engines added afterwards, so call it before Add/LoadFile.
func (r *Registry) SetSparseThreshold(t float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.threshold = t
}

// SetAutotuneSparse turns startup kernel autotuning on or off for engines
// added afterwards (off is the library default; the deepszd daemon turns
// it on by default). When on, each distinct layer shape is
// micro-benchmarked at registration — the dense fc kernel against the CSR
// kernel across a density ladder — and the measured crossover replaces
// the uniform sparse threshold for that layer; the uniform threshold
// (SetSparseThreshold) remains the override used when autotuning is off
// or a shape cannot be measured. Call before Add/LoadFile.
func (r *Registry) SetAutotuneSparse(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.autotune = on
}

// setAutotuneMeasure swaps the kernel-timing function used by autotuning;
// tests inject synthetic cost models to get deterministic thresholds.
func (r *Registry) setAutotuneMeasure(m measureFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tuner = newAutotuner(m)
}

// AutotuneTunes returns the measured ShapeTunes keyed by [rows, cols],
// for reporting and tests.
func (r *Registry) AutotuneTunes() map[[2]int]ShapeTune {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[[2]int]ShapeTune, len(r.tuner.tunes))
	for k, v := range r.tuner.tunes {
		out[k] = v
	}
	return out
}

// SetPrefetchDepth turns on decode-ahead for engines added afterwards:
// while layer k computes, a per-engine worker decodes layers k+1..k+d
// into the shared cache. d <= 0 (the default) leaves prefetch off. Call
// it before Add/LoadFile, like SetSparseThreshold.
func (r *Registry) SetPrefetchDepth(d int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prefetchDepth = d
}

// SetEvictionPolicy switches the shared cache's replacement policy. Only
// valid before traffic (the cache must be empty).
func (r *Registry) SetEvictionPolicy(p EvictionPolicy) error {
	return r.cache.SetPolicy(p)
}

// SetVerifyDecoded turns decoded-weights verification on for engines added
// afterwards: the shared cache checksums entries at fill time, and every
// cached layer a kernel consumed is re-verified before its eviction pin
// drops — a bit flip in resident weights fails the request (and ejects the
// entry) instead of skewing its logits. Call before Add/LoadFile; the
// cache must still be empty.
func (r *Registry) SetVerifyDecoded(on bool) error {
	if err := r.cache.SetIntegrityTracking(on); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.verifyDecoded = on
	return nil
}

// SetScrubInterval starts (or stops, d <= 0) the background integrity
// loop: every d the shared cache is scrubbed — each resident entry
// re-checksummed against its fill-time value, mismatches ejected — and
// quarantined models whose source artifact changed on disk are retried.
// Requires integrity tracking (SetVerifyDecoded) for the scrub to check
// anything; the quarantine retry works regardless. Call at configuration
// time; the loop stops on Close.
func (r *Registry) SetScrubInterval(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.scrubStop != nil {
		close(r.scrubStop)
		r.scrubStop = nil
	}
	if d <= 0 {
		return
	}
	stop := make(chan struct{})
	r.scrubStop = stop
	go func() {
		t := time.NewTicker(d)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.cache.Scrub()
				r.retryQuarantined()
			}
		}
	}()
}

// MarkCorrupt reports a corruption detection for model name and returns
// whether the model is now quarantined. Cache-surface corruption
// (core.CorruptCache) self-heals — the entry is already ejected, a retry
// decodes fresh from verified blobs — so it never quarantines. Stream
// corruption (blob, decoded, header) means the in-memory model (and
// possibly the artifact on disk) is damaged: the model stops serving with
// 503s, and an asynchronous reload from its source file is attempted
// immediately (memory may have rotted while the disk stayed clean).
// Non-corruption errors are ignored.
func (r *Registry) MarkCorrupt(name string, err error) bool {
	if !errors.Is(err, core.ErrCorrupt) {
		return false
	}
	var ce *core.CorruptError
	if errors.As(err, &ce) && ce.Kind == core.CorruptCache {
		return false
	}
	r.mu.Lock()
	if _, ok := r.engines[name]; !ok {
		r.mu.Unlock()
		return false
	}
	if _, already := r.quar[name]; already {
		r.mu.Unlock()
		return true
	}
	r.quar[name] = &quarState{reason: err.Error(), since: time.Now()}
	r.quarantines.Add(1)
	r.mu.Unlock()
	go r.TryRecover(name)
	return true
}

// Quarantined returns the quarantine state of model name.
func (r *Registry) Quarantined(name string) (QuarantineInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	q, ok := r.quar[name]
	if !ok {
		return QuarantineInfo{}, false
	}
	return QuarantineInfo{Reason: q.reason, Since: q.since, Attempts: q.attempts}, true
}

// QuarantinedModels returns every quarantined model's state, keyed by
// name (empty map when healthy).
func (r *Registry) QuarantinedModels() map[string]QuarantineInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]QuarantineInfo, len(r.quar))
	for name, q := range r.quar {
		out[name] = QuarantineInfo{Reason: q.reason, Since: q.since, Attempts: q.attempts}
	}
	return out
}

// ReloadStats reports quarantine-reload outcomes: total quarantines,
// successful reloads, failed attempts.
func (r *Registry) ReloadStats() (quarantines, reloads, fails uint64) {
	return r.quarantines.Load(), r.reloads.Load(), r.reloadFails.Load()
}

// TryRecover attempts to clear a quarantine by reloading the model from
// its source file. On success the fresh engine replaces the quarantined
// one atomically and the model serves again; on failure the source file's
// identity (mtime, size) is recorded so the periodic retry waits for the
// artifact to change instead of hammering a known-bad file. Models
// registered via Add (no file source) cannot self-recover and stay
// quarantined until re-registered.
func (r *Registry) TryRecover(name string) error {
	r.mu.Lock()
	q, ok := r.quar[name]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	if q.reloading {
		r.mu.Unlock()
		return fmt.Errorf("serve: %s: reload already in flight", name)
	}
	q.reloading = true
	q.attempts++
	src := r.sources[name]
	r.mu.Unlock()

	if src == nil {
		r.mu.Lock()
		q.reloading = false
		r.mu.Unlock()
		r.reloadFails.Add(1)
		return fmt.Errorf("serve: %s: no source file to reload from", name)
	}

	e, err := r.buildFromFile(name, src.path, src.weights)

	r.mu.Lock()
	defer r.mu.Unlock()
	q.reloading = false
	if err != nil {
		r.reloadFails.Add(1)
		q.tried = true
		q.lastMtime, q.lastSize = statIdentity(src.path)
		return fmt.Errorf("serve: reloading %s from %s: %w", name, src.path, err)
	}
	old := r.engines[name]
	r.engines[name] = e
	delete(r.quar, name)
	r.reloads.Add(1)
	if old != nil {
		go old.Close()
	}
	return nil
}

// retryQuarantined re-attempts recovery for quarantined models whose
// source artifact changed since the last failed attempt (or was never
// tried). Called from the scrub loop.
func (r *Registry) retryQuarantined() {
	r.mu.RLock()
	var due []string
	for name, q := range r.quar {
		if q.reloading {
			continue
		}
		src := r.sources[name]
		if src == nil {
			continue
		}
		if q.tried {
			mtime, size := statIdentity(src.path)
			if mtime.Equal(q.lastMtime) && size == q.lastSize {
				continue // same bad artifact; wait for a repair
			}
		}
		due = append(due, name)
	}
	r.mu.RUnlock()
	for _, name := range due {
		r.TryRecover(name) //nolint:errcheck // failure recorded in counters/state
	}
}

// statIdentity returns the file's mtime and size (zero values when the
// file is unreadable — which also reads as "changed" once it reappears).
func statIdentity(path string) (time.Time, int64) {
	fi, err := os.Stat(path)
	if err != nil {
		return time.Time{}, 0
	}
	return fi.ModTime(), fi.Size()
}

// Cache returns the shared decode cache (for stats reporting).
func (r *Registry) Cache() *DecodeCache { return r.cache }

// Add registers a model under name. skeleton provides the topology and
// conv-prefix weights; inputShape is the per-example input shape.
func (r *Registry) Add(name string, m *core.Model, skeleton *nn.Network, inputShape []int) (*Engine, error) {
	e, err := r.newConfiguredEngine(name, m, skeleton, inputShape)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.engines[name]; dup {
		e.Close()
		return nil, fmt.Errorf("serve: model %q already registered", name)
	}
	r.engines[name] = e
	return e, nil
}

// newConfiguredEngine builds an engine with the registry's current
// settings (threshold, autotune, prefetch, verification, telemetry)
// without registering it — shared by Add and the quarantine reload path.
func (r *Registry) newConfiguredEngine(name string, m *core.Model, skeleton *nn.Network, inputShape []int) (*Engine, error) {
	r.mu.RLock()
	threshold, depth, autotune, verify := r.threshold, r.prefetchDepth, r.autotune, r.verifyDecoded
	r.mu.RUnlock()
	e, err := NewEngine(name, m, skeleton, inputShape, r.cache, r.opt, threshold)
	if err != nil {
		return nil, err
	}
	if autotune {
		e.setLayerThresholds(r.tuneModel(m, threshold))
	}
	e.SetVerifyRelease(verify)
	e.attachTelemetry(r.tel, r.stages)
	e.StartPrefetch(depth)
	return e, nil
}

// tuneModel measures (or looks up) the dense-vs-CSR crossover for each of
// the model's layer shapes, returning one threshold per layer in storage
// order. Shapes autotuning cannot measure fall back to the uniform
// threshold. Measurements are cached per shape across models under the
// registry lock.
func (r *Registry) tuneModel(m *core.Model, uniform float64) []float64 {
	ts := make([]float64, len(m.Layers))
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range m.Layers {
		shape := m.Layers[i].Shape
		rows, cols := 0, 0
		if len(shape) > 0 {
			rows, cols = shape[0], 1
			for _, d := range shape[1:] {
				cols *= d
			}
		}
		if st, ok := r.tuner.tune(rows, cols); ok {
			ts[i] = st.Threshold
		} else {
			ts[i] = uniform
		}
	}
	return ts
}

// LoadFile reads a .dsz file and registers it under name (empty name means
// the model's stored network name). The network skeleton is built from the
// model's NetName; weightsPath, when non-empty, supplies the trained
// conv-prefix weights (`deepsz prune` output). Networks with parameters
// outside their fc layers refuse to load without one — their conv prefix
// would otherwise be random init and every prediction garbage.
//
// The file's path is remembered: if the model is later quarantined for
// corruption, the registry reloads it from the same source.
func (r *Registry) LoadFile(name, path, weightsPath string) (*Engine, error) {
	if name == "" {
		m, err := core.ReadModel(path)
		if err != nil {
			return nil, err
		}
		name = m.NetName
	}
	e, err := r.buildFromFile(name, path, weightsPath)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.engines[name]; dup {
		e.Close()
		return nil, fmt.Errorf("serve: model %q already registered", name)
	}
	r.engines[name] = e
	r.sources[name] = &modelSource{path: path, weights: weightsPath}
	return e, nil
}

// buildFromFile reads, validates, and configures an engine from a .dsz
// file without registering it.
func (r *Registry) buildFromFile(name, path, weightsPath string) (*Engine, error) {
	m, err := core.ReadModel(path)
	if err != nil {
		return nil, err
	}
	skeleton, err := models.Build(m.NetName, tensor.NewRNG(42))
	if err != nil {
		return nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	if weightsPath != "" {
		f, err := os.Open(weightsPath)
		if err != nil {
			return nil, err
		}
		err = nn.LoadWeights(f, skeleton)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("serve: %s: %w", weightsPath, err)
		}
	} else if hasUncoveredParams(skeleton, m) {
		// Without trained weights any parameterised layer the .dsz does not
		// cover keeps its random init and every prediction is garbage;
		// refuse instead. A whole-network model (`deepsz encode -layers
		// all`) covers the conv layers too and needs no weights file.
		return nil, fmt.Errorf("serve: network %s has parameters the model does not cover; supply a weights file (-model name=%s:weights)", m.NetName, path)
	}
	shape, err := models.InputShape(m.NetName)
	if err != nil {
		return nil, err
	}
	return r.newConfiguredEngine(name, m, skeleton, shape)
}

// hasUncoveredParams reports whether any layer carries trainable parameters
// the model cannot supply (e.g. a conv prefix when the .dsz holds only the
// fc suffix).
func hasUncoveredParams(n *nn.Network, m *core.Model) bool {
	for _, l := range n.Layers {
		if len(l.Params()) == 0 {
			continue
		}
		if cl, ok := l.(nn.Compressible); ok && m.Layer(cl.Name()) != nil {
			continue
		}
		return true
	}
	return false
}

// Get returns the engine registered under name.
func (r *Registry) Get(name string) (*Engine, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.engines[name]
	return e, ok
}

// Names lists the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.engines))
	for n := range r.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close shuts down every engine's micro-batcher and the scrub loop.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.scrubStop != nil {
		close(r.scrubStop)
		r.scrubStop = nil
	}
	for _, e := range r.engines {
		e.Close()
	}
}
