package serve

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Registry holds the engines for every loaded model and owns the decode
// cache they share: the memory budget is server-wide, so hot models evict
// cold models' layers, exactly like device memory on a shared accelerator.
type Registry struct {
	mu        sync.RWMutex
	cache     *DecodeCache
	engines   map[string]*Engine
	opt       BatchOptions
	threshold float64
}

// NewRegistry creates a registry whose decode cache holds at most budget
// bytes of materialised layers (budget <= 0 means unlimited). Engines
// start with DefaultSparseThreshold; see SetSparseThreshold.
func NewRegistry(budget int64, opt BatchOptions) *Registry {
	return &Registry{
		cache:     NewDecodeCache(budget),
		engines:   map[string]*Engine{},
		opt:       opt,
		threshold: DefaultSparseThreshold,
	}
}

// SetSparseThreshold changes the decoded-layer density below which
// engines cache layers in CSR form (t <= 0 keeps everything dense). It
// affects engines added afterwards, so call it before Add/LoadFile.
func (r *Registry) SetSparseThreshold(t float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.threshold = t
}

// Cache returns the shared decode cache (for stats reporting).
func (r *Registry) Cache() *DecodeCache { return r.cache }

// Add registers a model under name. skeleton provides the topology and
// conv-prefix weights; inputShape is the per-example input shape.
func (r *Registry) Add(name string, m *core.Model, skeleton *nn.Network, inputShape []int) (*Engine, error) {
	r.mu.RLock()
	threshold := r.threshold
	r.mu.RUnlock()
	e, err := NewEngine(name, m, skeleton, inputShape, r.cache, r.opt, threshold)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.engines[name]; dup {
		e.Close()
		return nil, fmt.Errorf("serve: model %q already registered", name)
	}
	r.engines[name] = e
	return e, nil
}

// LoadFile reads a .dsz file and registers it under name (empty name means
// the model's stored network name). The network skeleton is built from the
// model's NetName; weightsPath, when non-empty, supplies the trained
// conv-prefix weights (`deepsz prune` output). Networks with parameters
// outside their fc layers refuse to load without one — their conv prefix
// would otherwise be random init and every prediction garbage.
func (r *Registry) LoadFile(name, path, weightsPath string) (*Engine, error) {
	m, err := core.ReadModel(path)
	if err != nil {
		return nil, err
	}
	skeleton, err := models.Build(m.NetName, tensor.NewRNG(42))
	if err != nil {
		return nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	if weightsPath != "" {
		f, err := os.Open(weightsPath)
		if err != nil {
			return nil, err
		}
		err = nn.LoadWeights(f, skeleton)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("serve: %s: %w", weightsPath, err)
		}
	} else if hasUncoveredParams(skeleton, m) {
		// Without trained weights any parameterised layer the .dsz does not
		// cover keeps its random init and every prediction is garbage;
		// refuse instead. A whole-network model (`deepsz encode -layers
		// all`) covers the conv layers too and needs no weights file.
		return nil, fmt.Errorf("serve: network %s has parameters the model does not cover; supply a weights file (-model name=%s:weights)", m.NetName, path)
	}
	shape, err := models.InputShape(m.NetName)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = m.NetName
	}
	return r.Add(name, m, skeleton, shape)
}

// hasUncoveredParams reports whether any layer carries trainable parameters
// the model cannot supply (e.g. a conv prefix when the .dsz holds only the
// fc suffix).
func hasUncoveredParams(n *nn.Network, m *core.Model) bool {
	for _, l := range n.Layers {
		if len(l.Params()) == 0 {
			continue
		}
		if cl, ok := l.(nn.Compressible); ok && m.Layer(cl.Name()) != nil {
			continue
		}
		return true
	}
	return false
}

// Get returns the engine registered under name.
func (r *Registry) Get(name string) (*Engine, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.engines[name]
	return e, ok
}

// Names lists the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.engines))
	for n := range r.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close shuts down every engine's micro-batcher.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.engines {
		e.Close()
	}
}
