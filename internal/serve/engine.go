package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// ErrBadInput marks request-validation failures; the HTTP layer maps it
// to 400.
var ErrBadInput = errors.New("serve: bad input")

// ErrOverloaded marks predicts rejected by the per-engine admission
// bound (BatchOptions.MaxPending); the HTTP layer maps it to 503 with a
// Retry-After hint. It is the backpressure signal a routing tier keys
// on: shed here, cheaply and immediately, rather than time out there.
var ErrOverloaded = errors.New("serve: overloaded")

// DefaultSparseThreshold is the decoded-layer density below which engines
// keep the layer in CSR form. 0.35 sits under the CSR kernels' measured
// speed break-even (~0.3–0.5 density on the fc SpMM), so the sparse path
// only engages where it is faster AND smaller; at the paper's ~10%
// densities it is ~3× faster and ~8× smaller than dense residency.
const DefaultSparseThreshold = 0.35

// Engine serves one compressed model: forward passes run on a pool of
// weight-stripped network clones, and every compressed layer's weights (fc
// and conv alike) are fetched through the shared decode cache at the moment
// the kernel needs them. Peak extra memory for compressed weights is
// therefore the cache budget, not the model's dense size; layers whose
// decoded density falls below the sparse threshold are cached in CSR form,
// stretching that budget and feeding the sparse kernels. Engine implements
// nn.WeightProvider.
type Engine struct {
	name      string
	model     *core.Model
	cache     *DecodeCache
	inShape   []int   // per-example input shape, e.g. [1 28 28]
	inLen     int     // product of inShape
	threshold float64 // density below which decoded layers stay CSR; <= 0 disables
	pool      sync.Pool
	flatPool  sync.Pool // per-request input flatten buffers (*[]float32)

	// thresholds, when non-nil, overrides threshold per layer (index into
	// model.Layers) with the autotuned dense-vs-CSR crossover measured for
	// that layer's shape on this machine. Set once before traffic.
	thresholds []float64
	autotuned  bool

	// obs[i] is what the last decode of model.Layers[i] observed (density,
	// resident format/bytes); nil until the layer is first decoded.
	obs []atomic.Pointer[layerObs]

	// Telemetry hooks, attached by Registry.Add. All are nil-safe no-ops
	// on a bare NewEngine, so tests and benchmarks that build engines
	// directly pay only nil checks.
	stageHist  [telemetry.NumStages]*telemetry.Histogram
	codecBytes map[codec.ID]*telemetry.Counter // decoded dense bytes per codec

	requests atomic.Uint64 // predict calls
	rows     atomic.Uint64 // examples served
	batches  atomic.Uint64 // forward passes run

	// verifyRelease: after each layer's kernel consumes a cached buffer
	// (and before its pin drops), the cache entry is re-checksummed; a
	// mismatch fails the whole forward pass instead of serving output
	// computed from flipped bits. Set before traffic (SetVerifyRelease).
	verifyRelease bool

	// Integrity counters: checks that passed/failed, and failures split by
	// where the corruption was detected (see core.CorruptKind).
	integOK, integFail                        atomic.Uint64
	corruptBlob, corruptDecoded, corruptCache atomic.Uint64

	maxPending int          // admitted-predict cap; 0 = unlimited
	pendingNow atomic.Int64 // predicts admitted and not yet finished
	shed       atomic.Uint64

	batcher *batcher

	// estCost[i] is model.Layers[i].EstimatedDecodeCostNs(), precomputed so
	// the prefetcher can rank its candidate window without touching blobs.
	estCost  []int64
	prefetch *prefetcher // nil until StartPrefetch; nil = decode-ahead off
}

// layerObs is a point-in-time observation of one layer's decoded form.
type layerObs struct {
	density  float64
	sparse   bool
	resident int64
}

// NewEngine builds an engine for model, using skeleton for the network
// topology and conv-prefix weights. The skeleton is cloned and stripped;
// the caller's copy is not retained or modified. inputShape is the
// per-example input shape the network expects. sparseThreshold is the
// decoded density below which layers are cached in CSR form
// (DefaultSparseThreshold is the tuned default; <= 0 keeps every layer
// dense).
func NewEngine(name string, model *core.Model, skeleton *nn.Network, inputShape []int, cache *DecodeCache, opt BatchOptions, sparseThreshold float64) (*Engine, error) {
	// Bad model files must fail here, at load time, not as panics inside a
	// request's forward pass: every stored layer has to match a weighted
	// layer's kind and shape, and every layer of a kind the model carries
	// has to be covered (those layers are weight-stripped from serving
	// clones, so there is no fallback).
	kinds := map[nn.LayerKind]bool{}
	for i := range model.Layers {
		l := &model.Layers[i]
		cl := skeleton.CompressibleByName(l.Name)
		if cl == nil {
			return nil, fmt.Errorf("serve: model %s has layer %q absent from network %s", name, l.Name, skeleton.Name())
		}
		if cl.Kind() != l.Kind {
			return nil, fmt.Errorf("serve: model %s layer %s is %s, network %s has %s",
				name, l.Name, l.Kind, skeleton.Name(), cl.Kind())
		}
		if !shapeEqual(l.Shape, cl.WeightShape()) {
			return nil, fmt.Errorf("serve: model %s layer %s has shape %v, network %s wants %v",
				name, l.Name, l.Shape, skeleton.Name(), cl.WeightShape())
		}
		// A forged bias count would otherwise pass the container checks and
		// panic inside ForwardWith — in the micro-batcher's goroutine, where
		// no per-request recover shields the process. Zero biases are fine
		// (the provider hands ForwardWith nil, meaning zero bias).
		if want := len(cl.BiasParam().W.Data); len(l.Bias) != 0 && len(l.Bias) != want {
			return nil, fmt.Errorf("serve: model %s layer %s has %d biases, network %s wants %d",
				name, l.Name, len(l.Bias), skeleton.Name(), want)
		}
		kinds[l.Kind] = true
	}
	for _, cl := range skeleton.CompressibleLayers() {
		if kinds[cl.Kind()] && model.Layer(cl.Name()) == nil {
			return nil, fmt.Errorf("serve: model %s does not cover %s layer %s of network %s",
				name, cl.Kind(), cl.Name(), skeleton.Name())
		}
	}
	inLen := 1
	for _, d := range inputShape {
		inLen *= d
	}
	if inLen <= 0 {
		return nil, fmt.Errorf("serve: model %s: bad input shape %v", name, inputShape)
	}
	template := skeleton.Clone()
	nn.StripWeights(template, func(layer string) bool { return model.Layer(layer) != nil })
	e := &Engine{
		name:       name,
		model:      model,
		cache:      cache,
		inShape:    append([]int(nil), inputShape...),
		inLen:      inLen,
		threshold:  sparseThreshold,
		maxPending: opt.MaxPending,
		obs:        make([]atomic.Pointer[layerObs], len(model.Layers)),
	}
	e.pool.New = func() any { return template.Clone() }
	e.batcher = newBatcher(e, opt)
	return e, nil
}

// Name returns the registered model name.
func (e *Engine) Name() string { return e.name }

// Model returns the compressed model being served.
func (e *Engine) Model() *core.Model { return e.model }

// Codec returns the name(s) of the lossy codec(s) the served model's data
// arrays were compressed with — one name for a normally generated model,
// comma-joined in layer order for mixed-codec files.
func (e *Engine) Codec() string {
	ids := e.model.Codecs()
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = codec.NameOf(id)
	}
	return strings.Join(names, ",")
}

// InputLen returns the flattened per-example input length.
func (e *Engine) InputLen() int { return e.inLen }

// attachTelemetry wires the engine's per-stage histograms and per-codec
// decode-byte counters. Called by Registry.Add before the engine sees
// traffic; tel may be nil (everything stays a no-op).
func (e *Engine) attachTelemetry(tel *telemetry.Registry, stages [telemetry.NumStages]*telemetry.Histogram) {
	if tel == nil {
		return
	}
	e.stageHist = stages
	e.codecBytes = map[codec.ID]*telemetry.Counter{}
	for _, id := range e.model.Codecs() {
		e.codecBytes[id] = tel.Counter("deepsz_decoded_bytes_total",
			"Dense bytes materialised by layer decodes, by codec.",
			telemetry.Label{Name: "codec", Value: codec.NameOf(id)})
	}
}

// StartPrefetch turns on decode-ahead at the given depth: while layer k
// of the model's storage order computes, a worker decodes layers
// k+1..k+depth into the cache. depth <= 0 leaves prefetch off. Call once,
// before traffic; outputs are bit-identical at any depth (the worker only
// warms the cache).
func (e *Engine) StartPrefetch(depth int) {
	if depth <= 0 || e.prefetch != nil {
		return
	}
	e.estCost = make([]int64, len(e.model.Layers))
	for i := range e.model.Layers {
		e.estCost[i] = e.model.Layers[i].EstimatedDecodeCostNs()
	}
	e.prefetch = newPrefetcher(e, depth)
}

// PrefetchDepth returns the decode-ahead depth (0 = off).
func (e *Engine) PrefetchDepth() int {
	if e.prefetch == nil {
		return 0
	}
	return e.prefetch.depth
}

// cacheKey names model.Layers[idx] in the shared decode cache.
func (e *Engine) cacheKey(idx int) string {
	return e.name + "/" + e.model.Layers[idx].Name
}

// setLayerThresholds installs per-layer autotuned sparse thresholds
// (len(ts) must equal the model's layer count). Call before traffic, like
// StartPrefetch: decodeForCache reads the slice without synchronisation.
func (e *Engine) setLayerThresholds(ts []float64) {
	if len(ts) != len(e.model.Layers) {
		panic(fmt.Sprintf("serve: %s: %d thresholds for %d layers", e.name, len(ts), len(e.model.Layers)))
	}
	e.thresholds = ts
	e.autotuned = true
}

// thresholdFor returns the sparse threshold for model.Layers[idx]: the
// autotuned per-shape crossover when installed, the uniform engine
// threshold otherwise.
func (e *Engine) thresholdFor(idx int) float64 {
	if e.thresholds != nil {
		return e.thresholds[idx]
	}
	return e.threshold
}

// Autotuned reports whether per-layer autotuned thresholds are installed.
func (e *Engine) Autotuned() bool { return e.autotuned }

// SetVerifyRelease turns release-time re-verification on: every cached
// layer a kernel consumed is re-checksummed before its pin drops, and a
// mismatch fails the forward pass with a cache-kind core.CorruptError.
// Requires the shared cache to have integrity tracking on. Call before
// traffic, like StartPrefetch.
func (e *Engine) SetVerifyRelease(on bool) { e.verifyRelease = on }

// decodeForCache builds the decode thunk for model.Layers[idx] that the
// cache runs on a miss (demand or prefetch): decode, record the density
// observation, compact to CSR below the sparse threshold, and report the
// resident byte cost the budget is charged.
func (e *Engine) decodeForCache(idx int) func() (*core.DecodedLayer, int64, error) {
	return func() (*core.DecodedLayer, int64, error) {
		dl, err := e.model.DecodeLayer(e.model.Layers[idx].Name)
		if err != nil {
			var ce *core.CorruptError
			if errors.As(err, &ce) {
				e.integFail.Add(1)
				if ce.Kind == core.CorruptDecoded {
					e.corruptDecoded.Add(1)
				} else {
					e.corruptBlob.Add(1)
				}
			}
			return nil, 0, err
		}
		if e.model.Layers[idx].Checksummed {
			// DecodeLayer verified the blob CRCs (and the decoded checksum
			// when present) on the way here.
			e.integOK.Add(1)
		}
		density := dl.Density()
		dl.Compact(e.thresholdFor(idx))
		e.obs[idx].Store(&layerObs{density: density, sparse: dl.Sparse != nil, resident: dl.ResidentBytes()})
		e.codecBytes[e.model.Layers[idx].Codec].Add(uint64(e.model.Layers[idx].DenseBytes()))
		return dl, dl.ResidentBytes(), nil
	}
}

// LayerWeights implements nn.WeightProvider over the decode cache. A
// decoded layer below the sparse threshold is compacted to CSR before
// insertion, so it is charged to the budget (and handed to the kernels)
// in its cheap form. The returned release drops the entry's eviction pin;
// ForwardWithProvider calls it when the layer's kernel finishes, so
// prefetch of layer k+1 can never displace layer k mid-forward.
func (e *Engine) LayerWeights(layer string) (nn.LayerWeights, func(), error) {
	lw, rel, _, _, err := e.layerWeightsTimed(layer, nil)
	return lw, rel, err
}

// layerWeightsTimed is LayerWeights plus the nanoseconds this call spent
// actually decoding (zero on a cache hit, or when another caller's
// in-flight decode was joined — that wait is lookup time, not decode
// time, because the decode cost is charged to the request that ran it).
// Before looking layer k up it announces k to the prefetcher, so the
// decode of k+1 overlaps with k's kernel.
//
// When verify-on-release is on and corrupt is non-nil, the release handed
// back re-checksums the cache entry after the kernel consumed it (while
// the pin still guarantees it is the same buffer) and records the first
// failing layer in *corrupt — the caller must then discard the pass's
// output.
func (e *Engine) layerWeightsTimed(layer string, corrupt *string) (nn.LayerWeights, func(), int64, string, error) {
	idx, ok := e.model.LayerIndex(layer)
	if !ok {
		return nn.LayerWeights{}, nil, 0, "", nn.ErrNotProvided
	}
	e.prefetch.advance(idx)
	inner := e.decodeForCache(idx)
	var decodeNs int64
	key := e.cacheKey(idx)
	dl, release, outcome, err := e.cache.getPinnedOutcome(key, func() (*core.DecodedLayer, int64, error) {
		t0 := time.Now()
		dl, cost, err := inner()
		decodeNs = time.Since(t0).Nanoseconds()
		return dl, cost, err
	})
	if err != nil {
		return nn.LayerWeights{}, nil, decodeNs, outcome, err
	}
	if e.verifyRelease && corrupt != nil {
		inner := release
		layerName := e.model.Layers[idx].Name
		release = func() {
			if !e.cache.CheckEntry(key) {
				e.integFail.Add(1)
				e.corruptCache.Add(1)
				if *corrupt == "" {
					*corrupt = layerName
				}
			} else {
				e.integOK.Add(1)
			}
			inner()
		}
	}
	return nn.LayerWeights{Dense: dl.Weights, Sparse: dl.Sparse, Bias: dl.Bias}, release, decodeNs, outcome, nil
}

// layerEventMeta looks up the span attributes for a layer after its fetch
// landed: codec from the manifest, density and resident format from the
// per-layer observation the decode recorded (obs is always populated by
// the time a fetch returns — the decode path stores it before handing the
// layer back, and a hit implies an earlier decode did).
func (e *Engine) layerEventMeta(layer string) (codecName, format string, density float64) {
	idx, ok := e.model.LayerIndex(layer)
	if !ok {
		return "", "", 0
	}
	codecName = codec.NameOf(e.model.Layers[idx].Codec)
	if o := e.obs[idx].Load(); o != nil {
		density = o.density
		if o.sparse {
			format = "csr"
		} else {
			format = "dense"
		}
	}
	return codecName, format, density
}

// timedProvider wraps the engine's weight provider for one forward pass,
// splitting provider time into cache lookup (hits, bookkeeping, waiting
// on coalesced decodes) and decode proper. One batch runs in one
// goroutine, so plain fields suffice — including corruptLayer, which the
// release funcs write from the same goroutine (ForwardWithProvider calls
// release after each layer's kernel, on the forward path), and events,
// which only this goroutine appends.
type timedProvider struct {
	e                  *Engine
	lookupNs, decodeNs int64
	corruptLayer       string // first layer whose release-check failed
	record             bool   // collect per-layer events for span tracing
	events             []telemetry.LayerEvent
}

func (p *timedProvider) LayerWeights(layer string) (nn.LayerWeights, func(), error) {
	t0 := time.Now()
	lw, rel, decodeNs, outcome, err := p.e.layerWeightsTimed(layer, &p.corruptLayer)
	p.decodeNs += decodeNs
	p.lookupNs += time.Since(t0).Nanoseconds() - decodeNs
	if p.record && err == nil {
		codecName, format, density := p.e.layerEventMeta(layer)
		p.events = append(p.events, telemetry.LayerEvent{
			Layer: layer, Codec: codecName, Outcome: outcome, Format: format, Density: density,
			Start: t0, Dur: time.Since(t0),
			// DecodeDur is the same nanoseconds charged to StageDecode, so a
			// trace's decode.<layer> spans sum exactly to its decode stage.
			DecodeDur: time.Duration(decodeNs),
		})
	}
	return lw, rel, err
}

// forwardWith runs one inference pass over a [N, inShape...] batch with
// the given weight provider.
func (e *Engine) forwardWith(x *tensor.Tensor, p nn.WeightProvider) (*tensor.Tensor, error) {
	net := e.pool.Get().(*nn.Network)
	defer e.pool.Put(net)
	e.batches.Add(1)
	return net.ForwardWithProvider(x, p)
}

// fwdStages is one forward pass's stage split. For a micro-batched pass
// these costs are shared by every rider: each request's trace is charged
// the full amount (the latency it actually experienced), while the stage
// histograms observe the pass once so per-stage totals stay physical.
type fwdStages struct {
	lookup, decode, kernel time.Duration
}

// addTo charges the forward stages to a trace (nil-safe).
func (st fwdStages) addTo(tr *telemetry.Trace) {
	tr.Add(telemetry.StageCacheLookup, st.lookup)
	tr.Add(telemetry.StageDecode, st.decode)
	tr.Add(telemetry.StageKernel, st.kernel)
}

// observe records the pass in the engine's per-stage histograms.
// exemplarID, when non-empty, is a sampled rider's trace ID: it lands as
// the bucket exemplar so a dashboard's slow-decode bucket links to a
// retrievable trace. Unsampled passes take the exemplar-free path.
func (st fwdStages) observe(e *Engine, exemplarID string) {
	if exemplarID == "" {
		e.stageHist[telemetry.StageCacheLookup].Observe(st.lookup.Seconds())
		e.stageHist[telemetry.StageDecode].Observe(st.decode.Seconds())
		e.stageHist[telemetry.StageKernel].Observe(st.kernel.Seconds())
		return
	}
	e.stageHist[telemetry.StageCacheLookup].ObserveExemplar(st.lookup.Seconds(), exemplarID)
	e.stageHist[telemetry.StageDecode].ObserveExemplar(st.decode.Seconds(), exemplarID)
	e.stageHist[telemetry.StageKernel].ObserveExemplar(st.kernel.Seconds(), exemplarID)
}

// admit charges one predict against the engine's admission bound and
// returns the release func, or fails with ErrOverloaded when the engine
// is already at MaxPending admitted calls.
func (e *Engine) admit() (func(), error) {
	d := e.pendingNow.Add(1)
	if e.maxPending > 0 && d > int64(e.maxPending) {
		e.pendingNow.Add(-1)
		e.shed.Add(1)
		return nil, fmt.Errorf("%w: %s: %d predicts pending (max %d)", ErrOverloaded, e.name, d-1, e.maxPending)
	}
	return func() { e.pendingNow.Add(-1) }, nil
}

// Predict runs rows (flattened examples) through the model immediately,
// without micro-batching, and returns one logits row per input. Safe for
// concurrent use.
func (e *Engine) Predict(rows [][]float32) ([][]float32, error) {
	return e.PredictTraced(rows, nil)
}

// PredictTraced is Predict with a per-request trace: the forward pass's
// cache-lookup/decode/kernel split is charged to tr (which may be nil).
func (e *Engine) PredictTraced(rows [][]float32, tr *telemetry.Trace) ([][]float32, error) {
	if err := e.checkRows(rows); err != nil {
		return nil, err
	}
	release, err := e.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	e.requests.Add(1)
	e.rows.Add(uint64(len(rows)))
	exemplarID := ""
	if tr.Recording() {
		exemplarID = tr.ID
	}
	out, st, evs, err := e.run(rows, tr.Recording(), exemplarID)
	st.addTo(tr)
	tr.AddLayerEvents(evs)
	return out, err
}

// PredictBatched is Predict through the micro-batcher: concurrent callers
// within the batch window share one forward pass.
func (e *Engine) PredictBatched(rows [][]float32) ([][]float32, error) {
	return e.PredictBatchedTraced(rows, nil)
}

// PredictBatchedTraced is PredictBatched with a per-request trace: queue
// and batch-wait time are charged per request, and the shared forward
// pass's stage split is charged in full to every batch rider (it is the
// latency each of them experienced). tr may be nil.
func (e *Engine) PredictBatchedTraced(rows [][]float32, tr *telemetry.Trace) ([][]float32, error) {
	if err := e.checkRows(rows); err != nil {
		return nil, err
	}
	release, err := e.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	e.requests.Add(1)
	e.rows.Add(uint64(len(rows)))
	return e.batcher.submit(rows, tr)
}

func (e *Engine) checkRows(rows [][]float32) error {
	if len(rows) == 0 {
		return fmt.Errorf("%w: %s: inputs must be a non-empty array of rows", ErrBadInput, e.name)
	}
	for i, r := range rows {
		if len(r) != e.inLen {
			return fmt.Errorf("%w: %s: input %d has %d values, want %d", ErrBadInput, e.name, i, len(r), e.inLen)
		}
	}
	return nil
}

// run executes rows as a single forward pass and splits the logits. The
// input flatten buffer is pooled across requests: no layer retains the
// input tensor in inference mode, so once the forward returns the buffer
// is dead — unless the network's trailing layers were all views
// (Flatten's Reshape, inference-mode pass-throughs), in which case the
// returned logits still alias it and it must be dropped instead of
// recycled.
func (e *Engine) run(rows [][]float32, record bool, exemplarID string) ([][]float32, fwdStages, []telemetry.LayerEvent, error) {
	n := len(rows)
	need := n * e.inLen
	flatPtr, _ := e.flatPool.Get().(*[]float32)
	if flatPtr == nil || cap(*flatPtr) < need {
		s := make([]float32, 0, need)
		flatPtr = &s
	}
	flat := (*flatPtr)[:0]
	for _, r := range rows {
		flat = append(flat, r...)
	}
	x := tensor.FromSlice(flat, append([]int{n}, e.inShape...)...)
	p := timedProvider{e: e, record: record}
	t0 := time.Now()
	y, err := e.forwardWith(x, &p)
	st := fwdStages{
		lookup: time.Duration(p.lookupNs),
		decode: time.Duration(p.decodeNs),
		kernel: time.Since(t0) - time.Duration(p.lookupNs+p.decodeNs),
	}
	if st.kernel < 0 {
		st.kernel = 0 // clock skew between nested time.Now pairs
	}
	st.observe(e, exemplarID)
	if y == nil || len(y.Data) == 0 || &y.Data[0] != &flat[0] {
		// View layers share storage from element 0, so a first-element
		// address match is exactly "y aliases the pooled buffer".
		*flatPtr = flat
		e.flatPool.Put(flatPtr)
	}
	if err != nil {
		return nil, st, p.events, err
	}
	if p.corruptLayer != "" {
		// A cached buffer failed its post-kernel re-check: the logits were
		// (possibly) computed from flipped bits. The entry is already
		// ejected, so a retry decodes fresh; this pass's output must die.
		for i := range p.events {
			if p.events[i].Layer == p.corruptLayer {
				p.events[i].Outcome = OutcomeCorruptEject
			}
		}
		return nil, st, p.events, &core.CorruptError{Layer: p.corruptLayer, Kind: core.CorruptCache,
			Detail: "cached weights failed release-time re-verification"}
	}
	classes := y.Len() / n
	out := make([][]float32, n)
	for i := range out {
		out[i] = y.Data[i*classes : (i+1)*classes : (i+1)*classes]
	}
	return out, st, p.events, nil
}

// EngineStats is a snapshot of one model's serving counters. QueueDepth
// is the load gauge a routing tier reads: predicts admitted and not yet
// finished (queued in the batcher plus running), bounded by MaxPending
// when that is non-zero; Shed counts the calls the bound rejected.
type EngineStats struct {
	Codec           string      `json:"codec"`
	SparseThreshold float64     `json:"sparse_threshold"`
	AutotuneSparse  bool        `json:"autotune_sparse"`
	VerifyRelease   bool        `json:"verify_release,omitempty"`
	PrefetchDepth   int         `json:"prefetch_depth,omitempty"`
	Requests        uint64      `json:"requests"`
	Rows            uint64      `json:"rows"`
	Batches         uint64      `json:"batches"`
	AvgBatch        float64     `json:"avg_batch_rows"`
	QueueDepth      int64       `json:"queue_depth"`
	MaxPending      int         `json:"max_pending,omitempty"`
	Shed            uint64      `json:"shed"`
	Layers          []LayerMeta `json:"layers"`
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		Codec:           e.Codec(),
		SparseThreshold: e.threshold,
		AutotuneSparse:  e.autotuned,
		VerifyRelease:   e.verifyRelease,
		PrefetchDepth:   e.PrefetchDepth(),
		Requests:        e.requests.Load(),
		Rows:            e.rows.Load(),
		Batches:         e.batches.Load(),
		QueueDepth:      e.pendingNow.Load(),
		MaxPending:      e.maxPending,
		Shed:            e.shed.Load(),
		Layers:          e.LayerMeta(),
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(s.Rows) / float64(s.Batches)
	}
	return s
}

// LayerMeta describes one served layer: its kind (fc/conv), weight shape,
// the codec its data array was compressed with, and what the sparse fast
// path sees — the layer's density and the format/cost it takes when
// resident in the decode cache. Until a layer is first decoded, Density
// is the stream-header estimate (stored sparse entries over dense slots,
// an upper bound) and Format is empty; after a decode they report the
// exact density and the chosen representation ("csr" or "dense") with
// its resident byte cost.
type LayerMeta struct {
	Name          string  `json:"name"`
	Kind          string  `json:"kind"`
	Shape         []int   `json:"shape"`
	Codec         string  `json:"codec"`
	Density       float64 `json:"density"`
	Format        string  `json:"format,omitempty"`
	ResidentBytes int64   `json:"resident_bytes,omitempty"`
	DenseBytes    int64   `json:"dense_bytes"`
	// SparseThreshold is the density below which this layer is cached in
	// CSR form; Autotuned marks it as a measured per-shape crossover
	// rather than the engine's uniform setting.
	SparseThreshold float64 `json:"sparse_threshold"`
	Autotuned       bool    `json:"autotuned,omitempty"`
}

// LayerMeta lists the served model's layers in storage order.
func (e *Engine) LayerMeta() []LayerMeta {
	out := make([]LayerMeta, len(e.model.Layers))
	for i := range e.model.Layers {
		l := &e.model.Layers[i]
		out[i] = LayerMeta{
			Name:            l.Name,
			Kind:            l.Kind.String(),
			Shape:           append([]int(nil), l.Shape...),
			Codec:           codec.NameOf(l.Codec),
			Density:         l.EstimatedDensity(),
			DenseBytes:      l.DenseBytes(),
			SparseThreshold: e.thresholdFor(i),
			Autotuned:       e.autotuned,
		}
		if o := e.obs[i].Load(); o != nil {
			out[i].Density = o.density
			out[i].ResidentBytes = o.resident
			if o.sparse {
				out[i].Format = "csr"
			} else {
				out[i].Format = "dense"
			}
		}
	}
	return out
}

// Close stops the micro-batcher and the prefetch worker. Predict keeps
// working; PredictBatched returns an error after Close.
func (e *Engine) Close() {
	e.batcher.close()
	e.prefetch.stop()
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
