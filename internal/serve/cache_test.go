package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// fakeLayer builds a decoded layer whose weight slice is `cost` bytes.
func fakeLayer(cost int64) *core.DecodedLayer {
	return &core.DecodedLayer{Weights: make([]float32, cost/4)}
}

func TestCacheHitMissEviction(t *testing.T) {
	const cost = 400
	c := NewDecodeCache(2 * cost) // room for two entries
	decodes := map[string]int{}
	get := func(key string) {
		t.Helper()
		if _, err := c.Get(key, func() (*core.DecodedLayer, int64, error) {
			decodes[key]++
			return fakeLayer(cost), cost, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	get("a") // miss
	get("b") // miss
	get("a") // hit, refreshes a's recency
	get("c") // miss, evicts b (LRU)
	get("b") // miss again: b was evicted

	s := c.Stats()
	if s.Hits != 1 || s.Misses != 4 {
		t.Fatalf("hits=%d misses=%d, want 1/4", s.Hits, s.Misses)
	}
	if s.Evictions != 2 {
		// c evicted b; reloading b evicted a (LRU after c's insert).
		t.Fatalf("evictions=%d, want 2", s.Evictions)
	}
	if s.Entries != 2 || s.BytesInUse != 2*cost {
		t.Fatalf("entries=%d bytes=%d, want 2/%d", s.Entries, s.BytesInUse, 2*cost)
	}
	if decodes["b"] != 2 || decodes["a"] != 1 || decodes["c"] != 1 {
		t.Fatalf("decode counts %v", decodes)
	}
	if s.HitRate() != 0.2 {
		t.Fatalf("hit rate %v, want 0.2", s.HitRate())
	}
}

func TestCacheBudgetEdges(t *testing.T) {
	c := NewDecodeCache(1000)

	// cost == budget: fits exactly.
	if _, err := c.Get("exact", func() (*core.DecodedLayer, int64, error) {
		return fakeLayer(1000), 1000, nil
	}); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Entries != 1 || s.BytesInUse != 1000 {
		t.Fatalf("exact-fit entry not resident: %+v", s)
	}

	// cost > budget: decoded but never cached (bypass), evicting nothing.
	for i := 0; i < 2; i++ {
		if _, err := c.Get("huge", func() (*core.DecodedLayer, int64, error) {
			return fakeLayer(1001), 1001, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Bypasses != 2 {
		t.Fatalf("bypasses=%d, want 2 (oversized layer must decode every time)", s.Bypasses)
	}
	if s.Entries != 1 || s.BytesInUse != 1000 {
		t.Fatalf("oversized layer disturbed residents: %+v", s)
	}
	if s.Evictions != 0 {
		t.Fatalf("oversized layer evicted residents: %+v", s)
	}

	// Unlimited budget caches everything and never evicts.
	u := NewDecodeCache(0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := u.Get(key, func() (*core.DecodedLayer, int64, error) {
			return fakeLayer(1 << 20), 1 << 20, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s := u.Stats(); s.Entries != 50 || s.Evictions != 0 || s.Budget != 0 {
		t.Fatalf("unlimited cache: %+v", s)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewDecodeCache(0)
	var decodes atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*core.DecodedLayer, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dl, err := c.Get("shared", func() (*core.DecodedLayer, int64, error) {
				close(started)
				decodes.Add(1)
				<-release // hold the flight open until all callers queued
				return fakeLayer(64), 64, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = dl
		}(i)
	}
	<-started
	// While the flight is held open every other goroutine must end up
	// coalesced onto it; spin until they have all queued.
	for c.Stats().Coalesced < waiters-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if n := decodes.Load(); n != 1 {
		t.Fatalf("decode ran %d times, want 1", n)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != waiters-1 {
		t.Fatalf("misses=%d coalesced=%d, want 1/%d", s.Misses, s.Coalesced, waiters-1)
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatalf("waiter %d got a different layer pointer", i)
		}
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewDecodeCache(0)
	boom := fmt.Errorf("decode exploded")
	if _, err := c.Get("bad", func() (*core.DecodedLayer, int64, error) { return nil, 0, boom }); err != boom {
		t.Fatalf("error %v, want passthrough", err)
	}
	calls := 0
	if _, err := c.Get("bad", func() (*core.DecodedLayer, int64, error) {
		calls++
		return fakeLayer(40), 40, nil
	}); err != nil || calls != 1 {
		t.Fatalf("failed decode was cached: err=%v calls=%d", err, calls)
	}
}

func TestCacheConcurrentStress(t *testing.T) {
	const (
		goroutines = 16
		rounds     = 200
		keys       = 7
		cost       = 400
	)
	c := NewDecodeCache(3 * cost) // forces constant eviction across 7 keys
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("k%d", (g*31+r)%keys)
				dl, err := c.Get(key, func() (*core.DecodedLayer, int64, error) {
					return fakeLayer(cost), cost, nil
				})
				if err != nil || len(dl.Weights) != cost/4 {
					t.Errorf("get %s: %v", key, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if got := s.Hits + s.Misses + s.Coalesced; got != goroutines*rounds {
		t.Fatalf("accounted gets %d, want %d (stats %+v)", got, goroutines*rounds, s)
	}
	if s.BytesInUse > 3*cost {
		t.Fatalf("budget exceeded: %d > %d", s.BytesInUse, 3*cost)
	}
}
