package serve

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/httputil"
	"repro/internal/telemetry"
)

// Server is the HTTP JSON front end over a Registry.
//
//	GET  /healthz                        liveness probe + in-flight gauge + build info
//	GET  /v1/models                      loaded models and their layers
//	POST /v1/models/{name}/predict       {"inputs": [[...], ...], "trace": bool}
//	GET  /v1/stats                       cache + per-model counters
//	GET  /metrics                        Prometheus text exposition
type Server struct {
	reg        *Registry
	mux        *http.ServeMux
	start      time.Time
	maxBody    int64
	slowThresh time.Duration
	log        *slog.Logger
	inFlight   atomic.Int64 // predict requests currently being handled

	// sampleRate is the probabilistic base rate for span recording; the
	// tail-capture policy (slow, errored, shed, quarantined) keeps traces
	// regardless. store holds what was kept, served by /v1/traces.
	sampleRate float64
	store      *telemetry.TraceStore
}

// DefaultMaxBodyBytes caps a predict request body unless ServerOptions
// overrides it. At ~12 JSON bytes per float32, 8 MiB fits ~1300 rows of
// 512 values — an order of magnitude above any sane micro-batch, while
// keeping one request from materialising a large buffer in a daemon
// whose whole point is bounded memory. Clients that legitimately need
// the full maxPredictRows of wide rows raise it (-max-body-bytes).
const DefaultMaxBodyBytes = 8 << 20

// ServerOptions tunes the HTTP front end.
type ServerOptions struct {
	// MaxBodyBytes caps a predict request body; overflow is answered
	// with 413. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// SlowRequestThreshold is the end-to-end predict latency at or above
	// which the request is logged with its trace ID and per-stage
	// breakdown — the evidence trail for "why was this one slow" without
	// tracing everything. 0 disables the slow-request log.
	SlowRequestThreshold time.Duration
	// Logger receives the server's structured logs (slow requests).
	// nil means slog.Default().
	Logger *slog.Logger
	// TraceSampleRate is the fraction of predicts that record full span
	// timelines (per-layer decode/cache events included). Slow, errored,
	// shed, and quarantined requests are kept regardless, with stage-level
	// spans only when unsampled. 0 means DefaultTraceSampleRate; negative
	// disables probabilistic sampling (tail capture still applies).
	TraceSampleRate float64
	// TraceStoreSize bounds the in-memory trace ring
	// (0 = telemetry.DefaultTraceStoreSize).
	TraceStoreSize int
}

// DefaultTraceSampleRate records 1% of predicts with full span detail —
// enough exemplar coverage for dashboards without the per-layer event
// collection showing up in the serving benchmarks.
const DefaultTraceSampleRate = 0.01

// NewServer wires the API routes over reg with default options.
func NewServer(reg *Registry) *Server { return NewServerWith(reg, ServerOptions{}) }

// NewServerWith wires the API routes over reg.
func NewServerWith(reg *Registry, opt ServerOptions) *Server {
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opt.Logger == nil {
		opt.Logger = slog.Default()
	}
	rate := opt.TraceSampleRate
	switch {
	case rate == 0:
		rate = DefaultTraceSampleRate
	case rate < 0:
		rate = 0
	}
	s := &Server{
		reg:        reg,
		mux:        http.NewServeMux(),
		start:      time.Now(),
		maxBody:    opt.MaxBodyBytes,
		slowThresh: opt.SlowRequestThreshold,
		log:        opt.Logger,
		sampleRate: rate,
		store:      telemetry.NewTraceStore(opt.TraceStoreSize),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/models/{name}/predict", s.handlePredict)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceByID)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// The server-level gauges live on the registry's telemetry so one
	// scrape covers both; re-registering (a second server over the same
	// registry) just repoints the sampler at the newest server.
	tel := reg.Telemetry()
	tel.GaugeFunc("deepsz_http_in_flight",
		"Predict requests currently inside the HTTP handler.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(s.inFlight.Load())}}
		})
	tel.GaugeFunc("deepsz_uptime_seconds",
		"Seconds since the server started.",
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: time.Since(s.start).Seconds()}}
		})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.Telemetry().WriteExposition(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// in_flight rides along so a probing load balancer gets a cheap load
	// signal without the full /v1/stats fan-out; build identifies what is
	// serving before any number it reports is trusted.
	resp := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"models":         len(s.reg.Names()),
		"in_flight":      s.inFlight.Load(),
		"build":          telemetry.BuildInfo(),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
	}
	if quar := s.reg.QuarantinedModels(); len(quar) > 0 {
		// Still "ok" overall — other models serve — but the probing tier
		// sees exactly which models this replica cannot serve.
		names := make([]string, 0, len(quar))
		for n := range quar {
			names = append(names, n)
		}
		sort.Strings(names)
		resp["quarantined_models"] = names
	}
	httputil.WriteJSON(w, http.StatusOK, resp)
}

// layerInfo describes one compressed layer in a /v1/models response.
type layerInfo struct {
	Name            string `json:"name"`
	Kind            string `json:"kind"`  // "fc" or "conv"
	Shape           []int  `json:"shape"` // weight dims: [out,in] fc, [outC,inC,k,k] conv
	Codec           string `json:"codec"`
	CompressedBytes int    `json:"compressed_bytes"`
	DenseBytes      int64  `json:"dense_bytes"`
}

type modelInfo struct {
	Name            string      `json:"name"`
	Net             string      `json:"net"`
	Codec           string      `json:"codec"`
	InputLen        int         `json:"input_len"`
	CompressedBytes int         `json:"compressed_bytes"`
	DenseBytes      int64       `json:"dense_bytes"`
	Layers          []layerInfo `json:"layers"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Models []modelInfo `json:"models"`
	}{Models: []modelInfo{}}
	for _, name := range s.reg.Names() {
		e, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		m := e.Model()
		mi := modelInfo{
			Name:            name,
			Net:             m.NetName,
			Codec:           e.Codec(),
			InputLen:        e.InputLen(),
			CompressedBytes: m.TotalBytes(),
		}
		for _, l := range m.Layers {
			db := l.DenseBytes()
			mi.DenseBytes += db
			mi.Layers = append(mi.Layers, layerInfo{
				Name:            l.Name,
				Kind:            l.Kind.String(),
				Shape:           append([]int(nil), l.Shape...),
				Codec:           codec.NameOf(l.Codec),
				CompressedBytes: l.CompressedBytes(),
				DenseBytes:      db,
			})
		}
		out.Models = append(out.Models, mi)
	}
	httputil.WriteJSON(w, http.StatusOK, out)
}

// maxPredictRows bounds the rows accepted per request; the byte-side
// guard is Server.maxBody (see ServerOptions.MaxBodyBytes).
const maxPredictRows = 4096

type predictRequest struct {
	Inputs [][]float32 `json:"inputs"`
	// Trace asks for the per-stage timing breakdown in the response. The
	// trace always runs (stage histograms and the slow-request log need
	// it); this only controls whether the client sees it.
	Trace bool `json:"trace,omitempty"`
}

type predictResponse struct {
	Outputs [][]float32          `json:"outputs"`
	Argmax  []int                `json:"argmax"`
	Trace   *telemetry.Breakdown `json:"trace,omitempty"`
}

// predictOutcome carries what the trace-keep / SLO decision needs from
// one finished predict.
type predictOutcome struct {
	tr         *telemetry.Trace
	parent     string // gateway attempt span ID from ParentHeader
	t0         time.Time
	model      string
	rows       int
	sampled    bool
	status     int
	shed       bool
	quarantine bool
	scoreSLO   bool // reached (or was refused by) the model — burns budget
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		httputil.WriteError(w, http.StatusNotFound, "unknown model %q", name)
		return
	}
	// One trace per request: the ID arrives from the tier above (the
	// gateway mints one per client request and stamps every hedged
	// attempt with it) or is minted here, and is always echoed in the
	// response header so the client can quote it at the slow-request log.
	// Whether the request records a full span timeline is a deterministic
	// hash of the ID, so the gateway and every replica agree without
	// coordination.
	tr := telemetry.NewTrace(r.Header.Get(telemetry.TraceHeader))
	tr.SetRecording(telemetry.SampleTrace(tr.ID, s.sampleRate))
	w.Header().Set(telemetry.TraceHeader, tr.ID)
	po := &predictOutcome{
		tr: tr, parent: r.Header.Get(telemetry.ParentHeader),
		t0: t0, model: name, sampled: tr.Recording(),
	}
	defer func() { s.finishPredict(po) }()
	if q, quarantined := s.reg.Quarantined(name); quarantined {
		// The model is known-corrupt on this replica: refuse cheaply, name
		// the quarantine so the gateway routes around us instead of
		// hedging back, and hint when to re-probe (the reload loop retries
		// once the artifact changes).
		w.Header().Set(httputil.QuarantineHeader, name)
		w.Header().Set("Retry-After", "5")
		po.status, po.quarantine, po.scoreSLO = http.StatusServiceUnavailable, true, true
		httputil.WriteError(w, http.StatusServiceUnavailable,
			"model %q quarantined: %s", name, q.Reason)
		return
	}
	var req predictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		po.status = status
		httputil.WriteError(w, status, "bad request body: %v", err)
		return
	}
	if len(req.Inputs) > maxPredictRows {
		po.status = http.StatusRequestEntityTooLarge
		httputil.WriteError(w, http.StatusRequestEntityTooLarge, "%d input rows exceed the per-request limit of %d", len(req.Inputs), maxPredictRows)
		return
	}
	po.rows = len(req.Inputs)
	out, err := e.PredictBatchedTraced(req.Inputs, tr)
	po.scoreSLO = true
	// The stage split rides back to the gateway as a response header, so
	// its slow-request log names where the time went without a synchronous
	// trace fetch. Encode is excluded: the header is written before the
	// body is serialised.
	w.Header().Set(telemetry.StagesHeader, stagesHeaderValue(tr))
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrBadInput):
			status = http.StatusBadRequest
		case errors.Is(err, ErrOverloaded):
			// Shed with a hint instead of queueing: the client (or the
			// gateway in front of us) should back off or go elsewhere.
			status = http.StatusServiceUnavailable
			po.shed = true
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, core.ErrCorrupt):
			// Corruption is a replica-health event, not a request error:
			// quarantine the model (one 503 stream, not a fresh 500 per
			// request) and tell the gateway to fail over. Cache-surface
			// corruption self-heals (entry already ejected), so MarkCorrupt
			// declines to quarantine and the client's retry re-decodes.
			status = http.StatusServiceUnavailable
			po.quarantine = true
			w.Header().Set("Retry-After", "1")
			if s.reg.MarkCorrupt(name, err) {
				w.Header().Set(httputil.QuarantineHeader, name)
				w.Header().Set("Retry-After", "5")
			}
		}
		po.status = status
		httputil.WriteError(w, status, "%v", err)
		return
	}
	resp := predictResponse{Outputs: out, Argmax: make([]int, len(out))}
	for i, row := range out {
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		resp.Argmax[i] = best
	}
	if req.Trace {
		// Encode time is still unknown (it is the serialisation below);
		// the response reports it as 0, the histograms and the slow log
		// get the measured value.
		resp.Trace = tr.Breakdown(time.Since(t0))
	}
	po.status = http.StatusOK
	encodeStart := time.Now()
	httputil.WriteJSON(w, http.StatusOK, resp)
	encode := time.Since(encodeStart)
	tr.Add(telemetry.StageEncode, encode)
	if po.sampled {
		s.reg.stages[telemetry.StageEncode].ObserveExemplar(encode.Seconds(), tr.ID)
	} else {
		s.reg.stages[telemetry.StageEncode].Observe(encode.Seconds())
	}

	if total := time.Since(t0); s.slowThresh > 0 && total >= s.slowThresh {
		s.log.Warn("slow request",
			"trace", tr.ID,
			"model", name,
			"rows", len(req.Inputs),
			"total_ns", total.Nanoseconds(),
			"queue_ns", tr.Dur(telemetry.StageQueue).Nanoseconds(),
			"batch_wait_ns", tr.Dur(telemetry.StageBatchWait).Nanoseconds(),
			"cache_lookup_ns", tr.Dur(telemetry.StageCacheLookup).Nanoseconds(),
			"decode_ns", tr.Dur(telemetry.StageDecode).Nanoseconds(),
			"kernel_ns", tr.Dur(telemetry.StageKernel).Nanoseconds(),
			"encode_ns", encode.Nanoseconds(),
		)
	}
}

// stagesHeaderValue renders a trace's stage split as the compact
// "stage=ns;..." StagesHeader value (encode excluded — not yet measured
// when the header is written).
func stagesHeaderValue(tr *telemetry.Trace) string {
	var b strings.Builder
	for _, st := range telemetry.Stages() {
		if st == telemetry.StageEncode {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		b.WriteString(st.String())
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(tr.Dur(st).Nanoseconds(), 10))
	}
	return b.String()
}

// finishPredict scores the finished request against the SLO, observes
// the end-to-end latency histogram, and decides whether its trace is
// kept: sampled traces always, plus the tail-capture policy (slow,
// 5xx, shed, quarantined) so the requests an operator goes looking for
// are retrievable even at low sample rates.
func (s *Server) finishPredict(po *predictOutcome) {
	total := time.Since(po.t0)
	if po.scoreSLO {
		s.reg.SLO().Record(po.model, total, po.status == http.StatusOK)
	}
	if h := s.reg.PredictHist(po.model); po.sampled {
		h.ObserveExemplar(total.Seconds(), po.tr.ID)
	} else {
		h.Observe(total.Seconds())
	}
	var keep []string
	if po.sampled {
		keep = append(keep, telemetry.KeepSampled)
	}
	if s.slowThresh > 0 && total >= s.slowThresh {
		keep = append(keep, telemetry.KeepSlow)
	}
	if po.status >= 500 && !po.shed && !po.quarantine {
		keep = append(keep, telemetry.KeepError)
	}
	if po.shed {
		keep = append(keep, telemetry.KeepShed)
	}
	if po.quarantine {
		keep = append(keep, telemetry.KeepQuarantined)
	}
	if len(keep) == 0 {
		return
	}
	s.store.Put(telemetry.StoredTrace{
		ID:     po.tr.ID,
		Model:  po.model,
		Start:  po.t0,
		Dur:    total,
		Status: po.status,
		Keep:   strings.Join(keep, ","),
		Spans:  buildReplicaSpans(po, total),
	})
}

// buildReplicaSpans lays one request's span tree out: a root span for
// the replica's handling (parented under the gateway attempt that sent
// it, when there was one), one child span per non-zero pipeline stage,
// and — for sampled requests — one span per layer fetch recorded by the
// forward pass. Stage spans are synthesized from the per-stage sums
// (laid end to end from t0 in pipeline order: accurate durations,
// approximate offsets); layer spans carry their real start times. The
// decode.<layer> spans partition the decode stage exactly: their
// durations sum to the decode stage span's.
func buildReplicaSpans(po *predictOutcome, total time.Duration) []telemetry.Span {
	traceID := po.tr.ID
	root := telemetry.Span{
		TraceID: traceID,
		SpanID:  telemetry.MintSpanID(),
		Parent:  po.parent,
		Name:    "deepszd.predict",
		Start:   po.t0,
		Dur:     total,
		Attrs: map[string]string{
			"model":  po.model,
			"rows":   strconv.Itoa(po.rows),
			"status": strconv.Itoa(po.status),
		},
	}
	spans := []telemetry.Span{root}
	cursor := po.t0
	for _, st := range telemetry.Stages() {
		d := po.tr.Dur(st)
		if d <= 0 {
			continue
		}
		spans = append(spans, telemetry.Span{
			TraceID: traceID,
			SpanID:  telemetry.MintSpanID(),
			Parent:  root.SpanID,
			Name:    "stage." + st.String(),
			Start:   cursor,
			Dur:     d,
			Attrs:   map[string]string{"timing": "stage_sum"},
		})
		cursor = cursor.Add(d)
	}
	for _, ev := range po.tr.LayerEvents() {
		sp := telemetry.Span{
			TraceID: traceID,
			SpanID:  telemetry.MintSpanID(),
			Parent:  root.SpanID,
			Start:   ev.Start,
			Attrs: map[string]string{
				"codec":   ev.Codec,
				"outcome": ev.Outcome,
				"format":  ev.Format,
				"density": strconv.FormatFloat(ev.Density, 'g', 4, 64),
			},
		}
		if ev.DecodeDur > 0 {
			// A miss: the decode portion is the span, so decode.* spans sum
			// exactly to the decode stage total.
			sp.Name, sp.Dur = "decode."+ev.Layer, ev.DecodeDur
		} else {
			sp.Name, sp.Dur = "cache."+ev.Layer, ev.Dur
		}
		spans = append(spans, sp)
	}
	return spans
}

// handleTraces serves the kept-trace index, newest first (?n= bounds the
// count).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil {
			n = parsed
		}
	}
	httputil.WriteJSON(w, http.StatusOK, struct {
		Traces []telemetry.TraceSummary `json:"traces"`
	}{Traces: s.store.Index(n)})
}

func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.store.Get(id)
	if !ok {
		httputil.WriteError(w, http.StatusNotFound, "trace %q not stored on this replica", id)
		return
	}
	httputil.WriteJSON(w, http.StatusOK, t)
}

type statsResponse struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Build         telemetry.Build `json:"build"`
	GoMaxProcs    int             `json:"gomaxprocs"`
	Cache         CacheStats      `json:"cache"`
	// HitRate is hits over decode-or-hit gets only; EffectiveHitRate also
	// counts coalesced gets (served by waiting on another caller's decode)
	// as served-without-decoding — the one to watch under bursty traffic.
	HitRate          float64 `json:"cache_hit_rate"`
	EffectiveHitRate float64 `json:"cache_effective_hit_rate"`
	// InFlight is the predict requests currently inside the HTTP handler
	// — the server-wide load gauge; per-engine queue depth is under each
	// model's stats.
	InFlight int64                  `json:"in_flight"`
	Models   map[string]EngineStats `json:"models"`
	// Quarantined lists models currently refused with 503 because a
	// corrupt artifact was detected; absent when every model is healthy.
	Quarantined map[string]QuarantineInfo `json:"quarantined,omitempty"`
	// SLO is the per-model attainment and burn-rate report; absent unless
	// -slo-target-ms configured one.
	SLO *telemetry.SLOReport `json:"slo,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Build:         telemetry.BuildInfo(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Cache:         s.reg.Cache().Stats(),
		InFlight:      s.inFlight.Load(),
		Models:        map[string]EngineStats{},
	}
	resp.HitRate = resp.Cache.HitRate()
	resp.EffectiveHitRate = resp.Cache.EffectiveHitRate()
	resp.SLO = s.reg.SLO().Report()
	if quar := s.reg.QuarantinedModels(); len(quar) > 0 {
		resp.Quarantined = quar
	}
	for _, name := range s.reg.Names() {
		if e, ok := s.reg.Get(name); ok {
			resp.Models[name] = e.Stats()
		}
	}
	httputil.WriteJSON(w, http.StatusOK, resp)
}
