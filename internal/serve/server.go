package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/codec"
)

// Server is the HTTP JSON front end over a Registry.
//
//	GET  /healthz                        liveness probe
//	GET  /v1/models                      loaded models and their layers
//	POST /v1/models/{name}/predict       {"inputs": [[...], ...]}
//	GET  /v1/stats                       cache + per-model counters
type Server struct {
	reg   *Registry
	mux   *http.ServeMux
	start time.Time
}

// NewServer wires the API routes over reg.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/models/{name}/predict", s.handlePredict)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"models":         len(s.reg.Names()),
	})
}

// layerInfo describes one compressed layer in a /v1/models response.
type layerInfo struct {
	Name            string `json:"name"`
	Kind            string `json:"kind"`  // "fc" or "conv"
	Shape           []int  `json:"shape"` // weight dims: [out,in] fc, [outC,inC,k,k] conv
	Codec           string `json:"codec"`
	CompressedBytes int    `json:"compressed_bytes"`
	DenseBytes      int64  `json:"dense_bytes"`
}

type modelInfo struct {
	Name            string      `json:"name"`
	Net             string      `json:"net"`
	Codec           string      `json:"codec"`
	InputLen        int         `json:"input_len"`
	CompressedBytes int         `json:"compressed_bytes"`
	DenseBytes      int64       `json:"dense_bytes"`
	Layers          []layerInfo `json:"layers"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Models []modelInfo `json:"models"`
	}{Models: []modelInfo{}}
	for _, name := range s.reg.Names() {
		e, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		m := e.Model()
		mi := modelInfo{
			Name:            name,
			Net:             m.NetName,
			Codec:           e.Codec(),
			InputLen:        e.InputLen(),
			CompressedBytes: m.TotalBytes(),
		}
		for _, l := range m.Layers {
			db := l.DenseBytes()
			mi.DenseBytes += db
			mi.Layers = append(mi.Layers, layerInfo{
				Name:            l.Name,
				Kind:            l.Kind.String(),
				Shape:           append([]int(nil), l.Shape...),
				Codec:           codec.NameOf(l.Codec),
				CompressedBytes: l.CompressedBytes(),
				DenseBytes:      db,
			})
		}
		out.Models = append(out.Models, mi)
	}
	writeJSON(w, http.StatusOK, out)
}

// Request-size guards: the daemon's whole point is bounded memory, so a
// single predict call must not be able to materialise an unbounded body.
const (
	maxPredictBody = 32 << 20 // bytes of JSON accepted per request
	maxPredictRows = 4096     // rows accepted per request
)

type predictRequest struct {
	Inputs [][]float32 `json:"inputs"`
}

type predictResponse struct {
	Outputs [][]float32 `json:"outputs"`
	Argmax  []int       `json:"argmax"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model %q", name)
		return
	}
	var req predictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPredictBody)).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "bad request body: %v", err)
		return
	}
	if len(req.Inputs) > maxPredictRows {
		writeError(w, http.StatusRequestEntityTooLarge, "%d input rows exceed the per-request limit of %d", len(req.Inputs), maxPredictRows)
		return
	}
	out, err := e.PredictBatched(req.Inputs)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrBadInput):
			status = http.StatusBadRequest
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	resp := predictResponse{Outputs: out, Argmax: make([]int, len(out))}
	for i, row := range out {
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		resp.Argmax[i] = best
	}
	writeJSON(w, http.StatusOK, resp)
}

type statsResponse struct {
	Cache   CacheStats             `json:"cache"`
	HitRate float64                `json:"cache_hit_rate"`
	Models  map[string]EngineStats `json:"models"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Cache:  s.reg.Cache().Stats(),
		Models: map[string]EngineStats{},
	}
	resp.HitRate = resp.Cache.HitRate()
	for _, name := range s.reg.Names() {
		if e, ok := s.reg.Get(name); ok {
			resp.Models[name] = e.Stats()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
