package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/httputil"
)

// Server is the HTTP JSON front end over a Registry.
//
//	GET  /healthz                        liveness probe + in-flight gauge
//	GET  /v1/models                      loaded models and their layers
//	POST /v1/models/{name}/predict       {"inputs": [[...], ...]}
//	GET  /v1/stats                       cache + per-model counters
type Server struct {
	reg      *Registry
	mux      *http.ServeMux
	start    time.Time
	maxBody  int64
	inFlight atomic.Int64 // predict requests currently being handled
}

// DefaultMaxBodyBytes caps a predict request body unless ServerOptions
// overrides it. At ~12 JSON bytes per float32, 8 MiB fits ~1300 rows of
// 512 values — an order of magnitude above any sane micro-batch, while
// keeping one request from materialising a large buffer in a daemon
// whose whole point is bounded memory. Clients that legitimately need
// the full maxPredictRows of wide rows raise it (-max-body-bytes).
const DefaultMaxBodyBytes = 8 << 20

// ServerOptions tunes the HTTP front end.
type ServerOptions struct {
	// MaxBodyBytes caps a predict request body; overflow is answered
	// with 413. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// NewServer wires the API routes over reg with default options.
func NewServer(reg *Registry) *Server { return NewServerWith(reg, ServerOptions{}) }

// NewServerWith wires the API routes over reg.
func NewServerWith(reg *Registry, opt ServerOptions) *Server {
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{reg: reg, mux: http.NewServeMux(), start: time.Now(), maxBody: opt.MaxBodyBytes}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/models/{name}/predict", s.handlePredict)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// in_flight rides along so a probing load balancer gets a cheap load
	// signal without the full /v1/stats fan-out.
	httputil.WriteJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"models":         len(s.reg.Names()),
		"in_flight":      s.inFlight.Load(),
	})
}

// layerInfo describes one compressed layer in a /v1/models response.
type layerInfo struct {
	Name            string `json:"name"`
	Kind            string `json:"kind"`  // "fc" or "conv"
	Shape           []int  `json:"shape"` // weight dims: [out,in] fc, [outC,inC,k,k] conv
	Codec           string `json:"codec"`
	CompressedBytes int    `json:"compressed_bytes"`
	DenseBytes      int64  `json:"dense_bytes"`
}

type modelInfo struct {
	Name            string      `json:"name"`
	Net             string      `json:"net"`
	Codec           string      `json:"codec"`
	InputLen        int         `json:"input_len"`
	CompressedBytes int         `json:"compressed_bytes"`
	DenseBytes      int64       `json:"dense_bytes"`
	Layers          []layerInfo `json:"layers"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Models []modelInfo `json:"models"`
	}{Models: []modelInfo{}}
	for _, name := range s.reg.Names() {
		e, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		m := e.Model()
		mi := modelInfo{
			Name:            name,
			Net:             m.NetName,
			Codec:           e.Codec(),
			InputLen:        e.InputLen(),
			CompressedBytes: m.TotalBytes(),
		}
		for _, l := range m.Layers {
			db := l.DenseBytes()
			mi.DenseBytes += db
			mi.Layers = append(mi.Layers, layerInfo{
				Name:            l.Name,
				Kind:            l.Kind.String(),
				Shape:           append([]int(nil), l.Shape...),
				Codec:           codec.NameOf(l.Codec),
				CompressedBytes: l.CompressedBytes(),
				DenseBytes:      db,
			})
		}
		out.Models = append(out.Models, mi)
	}
	httputil.WriteJSON(w, http.StatusOK, out)
}

// maxPredictRows bounds the rows accepted per request; the byte-side
// guard is Server.maxBody (see ServerOptions.MaxBodyBytes).
const maxPredictRows = 4096

type predictRequest struct {
	Inputs [][]float32 `json:"inputs"`
}

type predictResponse struct {
	Outputs [][]float32 `json:"outputs"`
	Argmax  []int       `json:"argmax"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		httputil.WriteError(w, http.StatusNotFound, "unknown model %q", name)
		return
	}
	var req predictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httputil.WriteError(w, status, "bad request body: %v", err)
		return
	}
	if len(req.Inputs) > maxPredictRows {
		httputil.WriteError(w, http.StatusRequestEntityTooLarge, "%d input rows exceed the per-request limit of %d", len(req.Inputs), maxPredictRows)
		return
	}
	out, err := e.PredictBatched(req.Inputs)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrBadInput):
			status = http.StatusBadRequest
		case errors.Is(err, ErrOverloaded):
			// Shed with a hint instead of queueing: the client (or the
			// gateway in front of us) should back off or go elsewhere.
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		}
		httputil.WriteError(w, status, "%v", err)
		return
	}
	resp := predictResponse{Outputs: out, Argmax: make([]int, len(out))}
	for i, row := range out {
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		resp.Argmax[i] = best
	}
	httputil.WriteJSON(w, http.StatusOK, resp)
}

type statsResponse struct {
	Cache   CacheStats `json:"cache"`
	HitRate float64    `json:"cache_hit_rate"`
	// InFlight is the predict requests currently inside the HTTP handler
	// — the server-wide load gauge; per-engine queue depth is under each
	// model's stats.
	InFlight int64                  `json:"in_flight"`
	Models   map[string]EngineStats `json:"models"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Cache:    s.reg.Cache().Stats(),
		InFlight: s.inFlight.Load(),
		Models:   map[string]EngineStats{},
	}
	resp.HitRate = resp.Cache.HitRate()
	for _, name := range s.reg.Names() {
		if e, ok := s.reg.Get(name); ok {
			resp.Models[name] = e.Stats()
		}
	}
	httputil.WriteJSON(w, http.StatusOK, resp)
}
