package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// tracedPredict posts one predict carrying a fixed trace ID and returns
// the echoed ID.
func tracedPredict(t *testing.T, ts *httptest.Server, model, traceID string, rows [][]float32) string {
	t.Helper()
	body, _ := json.Marshal(struct {
		Inputs [][]float32 `json:"inputs"`
	}{rows})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/models/"+model+"/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	return resp.Header.Get(telemetry.TraceHeader)
}

// fetchTrace pulls one stored trace over the API.
func fetchTrace(t *testing.T, ts *httptest.Server, id string) telemetry.StoredTrace {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status %d", resp.StatusCode)
	}
	var st telemetry.StoredTrace
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestTraceDecodeSpansSumToStageTotal locks the per-layer accounting
// invariant: on a cold cache, a sampled predict's decode.<layer> spans
// partition the decode stage exactly — their durations sum to the
// stage.decode span's, to the nanosecond, because both are charged from
// the same per-layer decode measurements. A warm second request must
// instead report cache.<layer> hit events and no decode spans.
func TestTraceDecodeSpansSumToStageTotal(t *testing.T) {
	net, m := servedModel(t, 77)
	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	if _, err := reg.Add("mlp", m, net, []int{1, 8, 8}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWith(reg, ServerOptions{TraceSampleRate: 1}))
	defer ts.Close()

	coldID := tracedPredict(t, ts, "mlp", telemetry.MintID(), testRows(2, 78))
	cold := fetchTrace(t, ts, coldID)
	if !strings.Contains(cold.Keep, telemetry.KeepSampled) {
		t.Fatalf("trace keep %q, want it sampled at rate 1", cold.Keep)
	}

	var root *telemetry.Span
	for i := range cold.Spans {
		if cold.Spans[i].Name == "deepszd.predict" {
			root = &cold.Spans[i]
		}
	}
	if root == nil {
		t.Fatalf("no deepszd.predict root span in %+v", cold.Spans)
	}
	var stageDecode, decodeSum int64
	decodeSpans := 0
	for _, sp := range cold.Spans {
		switch {
		case sp.Name == "stage.decode":
			if sp.Parent != root.SpanID {
				t.Fatalf("stage.decode parented to %q, want root %q", sp.Parent, root.SpanID)
			}
			stageDecode = sp.Dur.Nanoseconds()
		case strings.HasPrefix(sp.Name, "decode."):
			if sp.Parent != root.SpanID {
				t.Fatalf("%s parented to %q, want root %q", sp.Name, sp.Parent, root.SpanID)
			}
			if sp.Attrs["outcome"] != OutcomeMiss {
				t.Fatalf("cold-cache %s outcome %q, want %q", sp.Name, sp.Attrs["outcome"], OutcomeMiss)
			}
			decodeSum += sp.Dur.Nanoseconds()
			decodeSpans++
		}
	}
	if decodeSpans == 0 {
		t.Fatal("cold-cache sampled trace recorded no per-layer decode spans")
	}
	if stageDecode == 0 {
		t.Fatal("no stage.decode span recorded")
	}
	if decodeSum != stageDecode {
		t.Fatalf("decode.* spans sum to %dns but stage.decode is %dns — per-layer decode accounting leaks", decodeSum, stageDecode)
	}

	// Warm pass: every layer is resident, so the trace carries cache hit
	// events and not a single decode span.
	warmID := tracedPredict(t, ts, "mlp", telemetry.MintID(), testRows(2, 78))
	warm := fetchTrace(t, ts, warmID)
	hits := 0
	for _, sp := range warm.Spans {
		if strings.HasPrefix(sp.Name, "decode.") {
			t.Fatalf("warm trace still has %s", sp.Name)
		}
		if strings.HasPrefix(sp.Name, "cache.") && sp.Attrs["outcome"] == OutcomeHit {
			hits++
		}
	}
	if hits == 0 {
		t.Fatalf("warm trace recorded no cache hit events: %+v", warm.Spans)
	}
}
