package serve

import (
	"time"

	"repro/internal/tensor"
)

// Startup autotuning of the dense-vs-CSR crossover. The sparse fast path
// only pays off below a density break-even that moves with the weight
// shape (BENCH_serve.json: ~7× at 5% density, ~0.8× at 50% for one fc
// shape — other shapes cross elsewhere), so a single global threshold is
// always wrong for some layer. At engine registration each distinct layer
// shape is micro-benchmarked: the dense kernel against the CSR kernel at a
// ladder of probe densities, on the machine and GOMAXPROCS that will serve
// traffic. The measured crossover (where speedup falls through 1×) becomes
// that shape's sparse threshold, so the decode cache keeps a layer in CSR
// form exactly when the CSR kernel is faster here — not faster on whatever
// machine a constant was tuned on. Thresholds only pick the resident
// format; either format yields bit-identical outputs, so autotuning can
// never change a prediction.

// autotuneProbeDensities is the density ladder each shape is measured at,
// ascending. The ends stay inside (0, 1): at density 0 or 1 the choice is
// obvious and the interpolation below covers the boundary regions.
var autotuneProbeDensities = []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.75}

const (
	// autotuneBatch is the A-matrix row count probes run with — small, like
	// the micro-batches serving actually sees.
	autotuneBatch = 8
	// autotuneProbeBudget bounds one (shape, density, kernel) timing loop;
	// the whole ladder for a shape costs ~2·len(densities)·budget.
	autotuneProbeBudget = 2 * time.Millisecond
	// autotuneMaxShapeElems skips measurement for weight matrices too large
	// to probe in reasonable startup time; such layers keep the uniform
	// threshold.
	autotuneMaxShapeElems = 64 << 20
)

// AutotuneProbe is one measured point of a shape's density ladder.
type AutotuneProbe struct {
	Density float64 `json:"density"`
	DenseNs float64 `json:"dense_ns"`
	CSRNs   float64 `json:"csr_ns"`
	Speedup float64 `json:"speedup"` // dense_ns / csr_ns; > 1 means CSR wins
}

// ShapeTune is the autotune result for one weight shape (rows × cols,
// the CSR layout): the measured crossover threshold and the probes behind
// it.
type ShapeTune struct {
	Rows, Cols int
	Threshold  float64
	Probes     []AutotuneProbe
}

// measureFunc times the dense and CSR fc kernels for one rows×cols weight
// matrix at the given density, returning ns/op for each. Swappable so
// tests drive tuneShape with synthetic cost models.
type measureFunc func(rows, cols int, density float64) (denseNs, csrNs float64)

// timeKernel runs f repeatedly for the probe budget and returns ns/op.
func timeKernel(f func()) float64 {
	f() // warm caches and the worker pool
	n := 0
	t0 := time.Now()
	for time.Since(t0) < autotuneProbeBudget {
		f()
		n++
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(n)
}

// defaultMeasure is the real kernel benchmark: a deterministic random
// rows×cols matrix pruned to the target density, multiplied against an
// autotuneBatch×cols activation through both kernels.
func defaultMeasure(rows, cols int, density float64) (denseNs, csrNs float64) {
	rng := tensor.NewRNG(0x5eed + uint64(rows)*31 + uint64(cols))
	w := make([]float32, rows*cols)
	rng.FillNormal(w, 0, 1)
	gate := make([]float32, len(w))
	rng.FillUniform(gate, 0, 1)
	for i := range w {
		if float64(gate[i]) >= density {
			w[i] = 0
		}
	}
	wt := tensor.FromSlice(w, rows, cols)
	csr := tensor.CSRFromDense(w, rows, cols)
	x := tensor.New(autotuneBatch, cols)
	rng.FillNormal(x.Data, 0, 1)
	out := make([]float32, autotuneBatch*rows)
	denseNs = timeKernel(func() { tensor.MatMulTransBInto(out, x, wt, tensor.Epilogue{}) })
	csrNs = timeKernel(func() { tensor.MatMulTransBCSRInto(out, x, csr, tensor.Epilogue{}) })
	return denseNs, csrNs
}

// tuneShape measures the density ladder for one shape and derives the
// crossover threshold: the density where the CSR/dense speedup falls
// through 1×, linearly interpolated between the neighbouring probes. A
// shape where CSR never wins gets 0 (always dense); one where CSR wins at
// every probe gets the top probe density (beyond it the ladder has no
// evidence, and at full density CSR's 40-bit entries cannot win).
func tuneShape(rows, cols int, measure measureFunc) ShapeTune {
	st := ShapeTune{Rows: rows, Cols: cols}
	for _, d := range autotuneProbeDensities {
		dn, cn := measure(rows, cols, d)
		sp := 0.0
		if cn > 0 {
			sp = dn / cn
		}
		st.Probes = append(st.Probes, AutotuneProbe{Density: d, DenseNs: dn, CSRNs: cn, Speedup: sp})
	}
	st.Threshold = crossover(st.Probes)
	return st
}

// crossover finds the first probe (ascending density) where CSR stops
// winning and interpolates the speedup-1 crossing between it and its
// predecessor.
func crossover(probes []AutotuneProbe) float64 {
	for i, p := range probes {
		if p.Speedup > 1 {
			continue
		}
		if i == 0 {
			return 0 // CSR loses even at the sparsest probe
		}
		prev := probes[i-1]
		// Linear interpolation of speedup across [prev.Density, p.Density]
		// to the point where it equals 1.
		run := p.Density - prev.Density
		drop := prev.Speedup - p.Speedup
		if run <= 0 || drop <= 0 {
			return prev.Density
		}
		t := prev.Density + run*(prev.Speedup-1)/drop
		if t < prev.Density {
			t = prev.Density
		}
		if t > p.Density {
			t = p.Density
		}
		return t
	}
	return probes[len(probes)-1].Density // CSR won every probe
}

// autotuner caches ShapeTunes across models: fleets serve many models with
// repeated layer shapes, and one measurement per shape is enough.
type autotuner struct {
	measure measureFunc
	tunes   map[[2]int]ShapeTune

	// Scrape-time counters for the deepsz_kernel_autotune_* telemetry.
	shapesMeasured int
	spentNs        int64
}

func newAutotuner(measure measureFunc) *autotuner {
	if measure == nil {
		measure = defaultMeasure
	}
	return &autotuner{measure: measure, tunes: map[[2]int]ShapeTune{}}
}

// tune returns the ShapeTune for rows×cols, measuring on first sight of
// the shape. ok is false for shapes autotuning skips (degenerate or
// oversized). Callers hold the owning registry's lock.
func (a *autotuner) tune(rows, cols int) (ShapeTune, bool) {
	if rows <= 0 || cols <= 0 || rows*cols > autotuneMaxShapeElems {
		return ShapeTune{}, false
	}
	key := [2]int{rows, cols}
	if st, ok := a.tunes[key]; ok {
		return st, true
	}
	t0 := time.Now()
	st := tuneShape(rows, cols, a.measure)
	a.spentNs += time.Since(t0).Nanoseconds()
	a.shapesMeasured++
	a.tunes[key] = st
	return st, true
}
