package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httputil"
	"repro/internal/models"
	"repro/internal/prune"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// trackedLayer builds a dense decoded layer with recognisable weights for
// direct cache integrity tests.
func trackedLayer(n int, seed float32) *core.DecodedLayer {
	w := make([]float32, n)
	for i := range w {
		w[i] = seed + float32(i)
	}
	return &core.DecodedLayer{Shape: []int{n}, Weights: w, Bias: []float32{seed}}
}

func fillTracked(t *testing.T, c *DecodeCache, key string, l *core.DecodedLayer) {
	t.Helper()
	if _, err := c.Get(key, func() (*core.DecodedLayer, int64, error) {
		return l, int64(4 * len(l.Weights)), nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheIntegrityCheckEntry(t *testing.T) {
	c := NewDecodeCache(0)
	if c.IntegrityTracking() {
		t.Fatal("integrity tracking should default off")
	}
	if err := c.SetIntegrityTracking(true); err != nil {
		t.Fatal(err)
	}
	la := trackedLayer(16, 1)
	fillTracked(t, c, "a", la)

	if !c.CheckEntry("a") {
		t.Fatal("pristine entry failed its check")
	}
	if !c.CheckEntry("missing") {
		t.Fatal("missing entry must be vacuously fine")
	}
	la.Weights[3] += 0.5 // rot the resident buffer
	if c.CheckEntry("a") {
		t.Fatal("corrupted entry passed its check")
	}
	s := c.Stats()
	if s.Entries != 0 {
		t.Fatalf("corrupt entry not ejected: %d resident", s.Entries)
	}
	if s.CorruptEjections != 1 || s.ReleaseChecks != 2 {
		t.Fatalf("corrupt=%d releaseChecks=%d, want 1/2", s.CorruptEjections, s.ReleaseChecks)
	}
	// Toggling tracking now requires an empty cache — which it is after the
	// ejection — so refill and confirm the guard.
	fillTracked(t, c, "b", trackedLayer(8, 2))
	if err := c.SetIntegrityTracking(false); err == nil {
		t.Fatal("toggled integrity tracking on a non-empty cache")
	}
}

func TestCacheScrubEjectsRottedEntries(t *testing.T) {
	c := NewDecodeCache(0)
	if checked, ejected := c.Scrub(); checked != 0 || ejected != 0 {
		t.Fatalf("scrub with tracking off checked %d/%d, want 0/0", checked, ejected)
	}
	if err := c.SetIntegrityTracking(true); err != nil {
		t.Fatal(err)
	}
	layers := map[string]*core.DecodedLayer{}
	for _, k := range []string{"a", "b", "c"} {
		l := trackedLayer(32, float32(len(k)))
		layers[k] = l
		fillTracked(t, c, k, l)
	}
	layers["b"].Weights[0] = -999

	checked, ejected := c.Scrub()
	if checked != 3 || ejected != 1 {
		t.Fatalf("scrub checked %d ejected %d, want 3/1", checked, ejected)
	}
	s := c.Stats()
	if s.Scrubs != 1 || s.ScrubChecks != 3 || s.ScrubEjections != 1 {
		t.Fatalf("scrub stats %+v", s)
	}
	if s.ScrubTime <= 0 {
		t.Fatal("scrub time not accumulated")
	}
	if s.Entries != 2 {
		t.Fatalf("%d entries resident after scrub, want 2", s.Entries)
	}
	// The survivors stay put on a clean second sweep.
	if checked, ejected := c.Scrub(); checked != 2 || ejected != 0 {
		t.Fatalf("second scrub %d/%d, want 2/0", checked, ejected)
	}
}

// corruptOneResident flips a value in one resident cache buffer — the bit
// rot the verify-on-release and scrub paths exist to catch.
func corruptOneResident(t *testing.T, c *DecodeCache) {
	t.Helper()
	done := false
	c.VisitResident(func(key string, l *core.DecodedLayer) {
		if done {
			return
		}
		done = true
		switch {
		case l.Weights != nil:
			l.Weights[0] += 1
		case l.Sparse != nil:
			l.Sparse.Val[0] += 1
		default:
			t.Fatalf("resident entry %s has no weights", key)
		}
	})
	if !done {
		t.Fatal("no resident entries to corrupt")
	}
}

func TestEngineVerifyReleaseCatchesCacheRot(t *testing.T) {
	net, m := servedModel(t, 21)
	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	if err := reg.SetVerifyDecoded(true); err != nil {
		t.Fatal(err)
	}
	e, err := reg.Add("mlp", m, net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Stats().VerifyRelease {
		t.Fatal("engine did not inherit verify-release from the registry")
	}
	rows := testRows(2, 22)
	want := decodedReference(t, net, m, rows)
	if _, err := e.Predict(rows); err != nil {
		t.Fatal(err)
	}

	corruptOneResident(t, reg.Cache())
	_, err = e.Predict(rows)
	if err == nil {
		t.Fatal("predict served logits computed from corrupted cache bytes")
	}
	if !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("error %v is not core.ErrCorrupt", err)
	}
	var ce *core.CorruptError
	if !errors.As(err, &ce) || ce.Kind != core.CorruptCache {
		t.Fatalf("error %v, want a cache-kind CorruptError", err)
	}
	// Cache-surface corruption self-heals: the entry was ejected, so a
	// retry decodes fresh and must match the reference exactly.
	if reg.MarkCorrupt("mlp", err) {
		t.Fatal("cache-kind corruption must not quarantine the model")
	}
	got, err := e.Predict(rows)
	if err != nil {
		t.Fatalf("predict after ejection: %v", err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("post-recovery row %d logit %d: %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	if e.integFail.Load() == 0 || e.corruptCache.Load() == 0 {
		t.Fatalf("integrity counters not advanced: fail=%d cache=%d",
			e.integFail.Load(), e.corruptCache.Load())
	}
}

// lenetModelFile writes a compressed lenet-300-100 .dsz (a models.Build
// name, so LoadFile can rebuild its skeleton) and returns its path.
func lenetModelFile(t testing.TB, dir string) string {
	t.Helper()
	lenet, err := models.Build(models.LeNet300, tensor.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	prune.Network(lenet, map[string]float64{"ip1": 0.05, "ip2": 0.1, "ip3": 0.5}, 0.1)
	plan := &core.Plan{}
	for _, fc := range lenet.DenseLayers() {
		plan.Choices = append(plan.Choices, core.Choice{Layer: fc.Name(), EB: 1e-3})
	}
	m, err := core.Generate(lenet, plan, core.Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/lenet.dsz"
	if err := m.WriteModel(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// corruptModelBlob flips bytes in a registered engine's in-memory layer
// blob: the next cold decode fails its CRC — memory rot with (possibly)
// clean bytes still on disk.
func corruptModelBlob(t *testing.T, e *Engine) {
	t.Helper()
	if !e.model.Layers[0].Checksummed {
		t.Fatal("model carries no blob CRCs; corruption would go undetected")
	}
	blob := e.model.Layers[0].DataBlob
	blob[len(blob)/2] ^= 0xFF
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestQuarantineReloadsFromCleanDisk(t *testing.T) {
	path := lenetModelFile(t, t.TempDir())
	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	e, err := reg.LoadFile("", path, "")
	if err != nil {
		t.Fatal(err)
	}
	name := e.Name()
	corruptModelBlob(t, e)

	row := make([]float32, 784)
	tensor.NewRNG(13).FillNormal(row, 0, 1)
	_, err = e.Predict([][]float32{row})
	if err == nil || !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("predict over a rotted blob: %v, want core.ErrCorrupt", err)
	}
	var ce *core.CorruptError
	if !errors.As(err, &ce) || ce.Kind != core.CorruptBlob {
		t.Fatalf("error %v, want a blob-kind CorruptError", err)
	}
	if !reg.MarkCorrupt(name, err) {
		t.Fatal("stream-kind corruption must quarantine the model")
	}
	// MarkCorrupt kicked off an async reload; the disk artifact is clean, so
	// the model must come back on its own.
	waitFor(t, "quarantine to clear", func() bool {
		_, quarantined := reg.Quarantined(name)
		return !quarantined
	})
	fresh, ok := reg.Get(name)
	if !ok {
		t.Fatal("model vanished from the registry after reload")
	}
	if fresh == e {
		t.Fatal("reload did not swap in a fresh engine")
	}
	if _, err := fresh.Predict([][]float32{row}); err != nil {
		t.Fatalf("predict after reload: %v", err)
	}
	quars, reloads, _ := reg.ReloadStats()
	if quars != 1 || reloads != 1 {
		t.Fatalf("quarantines=%d reloads=%d, want 1/1", quars, reloads)
	}
}

// TestQuarantineRetriesOnlyWhenArtifactChanges locks the reload-retry
// contract: a known-bad file is not re-read every scrub tick, but a
// repaired artifact is picked up without a restart.
func TestQuarantineRetriesOnlyWhenArtifactChanges(t *testing.T) {
	dir := t.TempDir()
	path := lenetModelFile(t, dir)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	e, err := reg.LoadFile("", path, "")
	if err != nil {
		t.Fatal(err)
	}
	name := e.Name()

	// Rot both memory and disk: the immediate reload must fail, leaving the
	// model quarantined with the bad file's identity recorded.
	corruptModelBlob(t, e)
	bad := append([]byte(nil), good...)
	bad[len(bad)-10] ^= 0xFF // inside the last layer's blob; digest now wrong
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if !reg.MarkCorrupt(name, &core.CorruptError{Layer: "ip1", Kind: core.CorruptBlob}) {
		t.Fatal("expected quarantine")
	}
	waitFor(t, "first reload attempt to fail", func() bool {
		_, _, fails := reg.ReloadStats()
		return fails >= 1
	})

	// Same bad artifact: the periodic retry must not burn another attempt.
	reg.retryQuarantined()
	if q, ok := reg.Quarantined(name); !ok || q.Attempts != 1 {
		t.Fatalf("retry against an unchanged bad artifact ran: %+v ok=%v", q, ok)
	}

	// Repair the artifact (with a distinct mtime — coarse filesystem clocks
	// would otherwise hide the change) and the next tick recovers it.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Now(), time.Now().Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	reg.retryQuarantined()
	waitFor(t, "repaired artifact to clear quarantine", func() bool {
		_, quarantined := reg.Quarantined(name)
		return !quarantined
	})
	row := make([]float32, 784)
	tensor.NewRNG(13).FillNormal(row, 0, 1)
	fresh, _ := reg.Get(name)
	if _, err := fresh.Predict([][]float32{row}); err != nil {
		t.Fatalf("predict after repair: %v", err)
	}
	if _, reloads, fails := func() (uint64, uint64, uint64) { return reg.ReloadStats() }(); reloads != 1 || fails != 1 {
		t.Fatalf("reloads=%d fails=%d, want 1/1", reloads, fails)
	}
}

// TestServerQuarantineSurface drives the HTTP contract: a corrupt decode
// turns into 503 + Retry-After + the quarantine routing header, the model
// stays 503 while quarantined, and /healthz and /v1/stats report it.
func TestServerQuarantineSurface(t *testing.T) {
	net, m := servedModel(t, 31)
	reg := NewRegistry(0, BatchOptions{})
	e, err := reg.Add("mlp", m, net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg))
	t.Cleanup(func() { ts.Close(); reg.Close() })

	corruptModelBlob(t, e)
	body, _ := json.Marshal(predictRequest{Inputs: testRows(1, 32)})
	resp, err := http.Post(ts.URL+"/v1/models/mlp/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("corrupt decode returned %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(httputil.QuarantineHeader) != "mlp" {
		t.Fatalf("quarantine header %q, want mlp", resp.Header.Get(httputil.QuarantineHeader))
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Registered via Add — no source file — so the quarantine sticks and
	// every later predict gets the cheap pre-check 503.
	resp2, err := http.Post(ts.URL+"/v1/models/mlp/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable || resp2.Header.Get(httputil.QuarantineHeader) != "mlp" {
		t.Fatalf("quarantined model predict: status %d header %q", resp2.StatusCode, resp2.Header.Get(httputil.QuarantineHeader))
	}

	var health struct {
		Status      string   `json:"status"`
		Quarantined []string `json:"quarantined_models"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if len(health.Quarantined) != 1 || health.Quarantined[0] != "mlp" {
		t.Fatalf("healthz quarantined_models %v, want [mlp]", health.Quarantined)
	}

	var stats statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	q, ok := stats.Quarantined["mlp"]
	if !ok || q.Reason == "" {
		t.Fatalf("stats quarantined %+v, want mlp with a reason", stats.Quarantined)
	}
}

// TestIntegrityMetricsExposition locks the integrity metric families under
// the strict exposition parser: present when healthy, advancing on induced
// corruption, and monotonic between scrapes.
func TestIntegrityMetricsExposition(t *testing.T) {
	net, m := servedModel(t, 41)
	reg := NewRegistry(0, BatchOptions{})
	if err := reg.SetVerifyDecoded(true); err != nil {
		t.Fatal(err)
	}
	e, err := reg.Add("mlp", m, net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg))
	t.Cleanup(func() { ts.Close(); reg.Close() })

	rows := testRows(2, 42)
	if _, err := e.Predict(rows); err != nil {
		t.Fatal(err)
	}
	first := scrape(t, ts.URL+"/metrics")

	get := func(sc *telemetry.Scrape, family, label, value string) (float64, bool) {
		f := sc.Family(family)
		if f == nil {
			return 0, false
		}
		for _, s := range f.Samples {
			if label == "" {
				return s.Value, true
			}
			for _, l := range s.Labels {
				if l.Name == label && l.Value == value {
					return s.Value, true
				}
			}
		}
		return 0, false
	}

	okN, found := get(first, "deepsz_integrity_checks_total", "result", "ok")
	if !found || okN < 4 {
		// Two layers: one decode-time verification + one release-time
		// re-check each.
		t.Fatalf("integrity ok checks %v (found=%v), want >= 4", okN, found)
	}
	if failN, _ := get(first, "deepsz_integrity_checks_total", "result", "fail"); failN != 0 {
		t.Fatalf("healthy serve reports %v failed checks", failN)
	}
	for _, where := range []string{"blob", "decoded", "cache"} {
		if v, found := get(first, "deepsz_integrity_corrupt_total", "where", where); !found || v != 0 {
			t.Fatalf("corrupt_total{where=%q} = %v (found=%v), want present and 0", where, v, found)
		}
	}
	for _, fam := range []string{
		"deepsz_integrity_scrubs_total", "deepsz_integrity_scrub_seconds_total",
		"deepsz_quarantines_total", "deepsz_quarantine_reloads_total",
		"deepsz_quarantined_models",
	} {
		if first.Family(fam) == nil {
			t.Fatalf("family %q missing from exposition", fam)
		}
	}

	// Induce cache rot: the failed predict and the scrub both land in the
	// counters, and every counter stays monotonic.
	corruptOneResident(t, reg.Cache())
	if _, err := e.Predict(rows); err == nil {
		t.Fatal("predict over rotted cache succeeded")
	}
	reg.Cache().Scrub()
	second := scrape(t, ts.URL+"/metrics")
	if failN, _ := get(second, "deepsz_integrity_checks_total", "result", "fail"); failN < 1 {
		t.Fatalf("failed checks %v after induced corruption, want >= 1", failN)
	}
	if v, _ := get(second, "deepsz_integrity_corrupt_total", "where", "cache"); v < 1 {
		t.Fatalf("corrupt_total{where=cache} = %v after induced corruption, want >= 1", v)
	}
	if scrubs, _ := get(second, "deepsz_integrity_scrubs_total", "", ""); scrubs < 1 {
		t.Fatalf("scrubs_total %v, want >= 1", scrubs)
	}
	if err := telemetry.CheckMonotonic(first, second); err != nil {
		t.Fatalf("counters moved backwards: %v", err)
	}
}
