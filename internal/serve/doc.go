// Package serve turns the DeepSZ batch pipeline into a long-running
// inference service: models stay compressed at rest (the paper's §6
// future-work direction) and stored layers — fc and, for whole-network
// models, conv — are materialised on demand through a byte-budgeted,
// layer-granular decode cache shared by all models. Layers whose decoded
// density falls below the sparse threshold stay resident in CSR form
// (~40 bits per surviving weight instead of 32 bits per slot) and run
// through sparse kernels that are bit-identical to the dense ones — the
// budget holds more layers and each hit's matmul skips the zeros.
//
// The pieces, bottom up:
//
//   - DecodeCache — an LRU over decoded layers with a configurable byte
//     budget, singleflight deduplication (concurrent requests for the same
//     layer trigger exactly one decode), and hit/miss/eviction/coalesce
//     counters exported through /v1/stats.
//   - Engine — per-model inference: a pool of weight-stripped network
//     clones runs nn.ForwardWithProvider, sourcing each compressed layer
//     from the cache; a micro-batcher folds concurrent predict calls into
//     one forward pass.
//   - Registry — loads .dsz files (core.ReadModel) or in-memory models and
//     owns the shared cache.
//   - Server — the HTTP JSON API: GET /healthz, GET /v1/models,
//     POST /v1/models/{name}/predict, GET /v1/stats.
//
// cmd/deepszd is the daemon wrapping this package; examples/serving drives
// it in-process under different memory budgets.
package serve
