package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ErrClosed is returned by PredictBatched after the engine is closed.
var ErrClosed = errors.New("serve: engine closed")

// BatchOptions tunes the micro-batcher and the per-engine admission
// bound.
type BatchOptions struct {
	// MaxBatch is the row count that triggers an immediate flush
	// (default 32).
	MaxBatch int
	// Window is how long the first request in a batch waits for company
	// before flushing anyway (default 2ms).
	Window time.Duration
	// MaxPending caps the predict calls admitted per engine at once
	// (queued in the batcher plus running). A call over the cap fails
	// immediately with ErrOverloaded — shedding with a clear signal the
	// moment the engine saturates, instead of queueing unboundedly until
	// every client times out anyway. 0 means unlimited.
	MaxPending int
}

func (o *BatchOptions) fill() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.Window <= 0 {
		o.Window = 2 * time.Millisecond
	}
}

// batcher folds concurrent predict calls into shared forward passes: the
// first arrival opens a batch window; requests landing inside it ride the
// same matmul. One batch is in flight at a time per engine — while a
// forward runs, new arrivals accumulate for the next one, which is what
// makes the cache's singleflight path hot under bursts.
type batcher struct {
	engine   *Engine
	opt      BatchOptions
	reqs     chan batchReq
	quit     chan struct{}
	done     chan struct{}
	quitOnce sync.Once
}

type batchReq struct {
	rows     [][]float32
	resp     chan batchResp
	tr       *telemetry.Trace // may be nil
	submitAt time.Time        // when the caller entered submit
}

// pendingReq is a batchReq the loop has accepted, stamped with when: the
// submit→accept gap is StageQueue (waiting behind the previous batch),
// accept→flush is StageBatchWait (window residency).
type pendingReq struct {
	batchReq
	acceptAt time.Time
}

type batchResp struct {
	out [][]float32
	err error
}

func newBatcher(e *Engine, opt BatchOptions) *batcher {
	opt.fill()
	b := &batcher{
		engine: e,
		opt:    opt,
		reqs:   make(chan batchReq),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go b.loop()
	return b
}

func (b *batcher) submit(rows [][]float32, tr *telemetry.Trace) ([][]float32, error) {
	resp := make(chan batchResp, 1)
	select {
	case b.reqs <- batchReq{rows: rows, resp: resp, tr: tr, submitAt: time.Now()}:
	case <-b.quit:
		return nil, ErrClosed
	}
	r := <-resp
	return r.out, r.err
}

func (b *batcher) close() {
	b.quitOnce.Do(func() { close(b.quit) })
	<-b.done
}

func (b *batcher) loop() {
	defer close(b.done)
	for {
		var first batchReq
		select {
		case first = <-b.reqs:
		case <-b.quit:
			return
		}
		batch := []pendingReq{{batchReq: first, acceptAt: time.Now()}}
		n := len(first.rows)
		timer := time.NewTimer(b.opt.Window)
	fill:
		for n < b.opt.MaxBatch {
			select {
			case req := <-b.reqs:
				batch = append(batch, pendingReq{batchReq: req, acceptAt: time.Now()})
				n += len(req.rows)
			case <-timer.C:
				break fill
			case <-b.quit:
				timer.Stop()
				b.flush(batch)
				return
			}
		}
		timer.Stop()
		b.flush(batch)
	}
}

// flush runs one forward pass over every request in the batch and splits
// the result rows back out in submission order. A panic in the forward
// pass fails the batch instead of killing the batcher goroutine (and with
// it the whole daemon — unlike HTTP handler goroutines, nothing above us
// recovers). Per-request queue/batch-wait timings and the shared forward
// stage split are charged to each request's trace before its response is
// released, so callers never race the instrumentation.
func (b *batcher) flush(batch []pendingReq) {
	flushAt := time.Now()
	e := b.engine
	rows := make([][]float32, 0, len(batch))
	// One sampled rider is enough to record the shared pass's layer events
	// (every sampled rider gets a copy — the pass IS their latency); the
	// first one's trace ID becomes the stage histograms' exemplar.
	record := false
	exemplarID := ""
	for i := range batch {
		req := &batch[i]
		rows = append(rows, req.rows...)
		queued := req.acceptAt.Sub(req.submitAt)
		waited := flushAt.Sub(req.acceptAt)
		req.tr.Add(telemetry.StageQueue, queued)
		req.tr.Add(telemetry.StageBatchWait, waited)
		if req.tr.Recording() {
			record = true
			if exemplarID == "" {
				exemplarID = req.tr.ID
			}
			e.stageHist[telemetry.StageQueue].ObserveExemplar(queued.Seconds(), req.tr.ID)
			e.stageHist[telemetry.StageBatchWait].ObserveExemplar(waited.Seconds(), req.tr.ID)
		} else {
			e.stageHist[telemetry.StageQueue].Observe(queued.Seconds())
			e.stageHist[telemetry.StageBatchWait].Observe(waited.Seconds())
		}
	}
	out, st, evs, err := func() (out [][]float32, st fwdStages, evs []telemetry.LayerEvent, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: forward pass panicked: %v", r)
			}
		}()
		return e.run(rows, record, exemplarID)
	}()
	off := 0
	for i := range batch {
		req := &batch[i]
		st.addTo(req.tr)
		req.tr.AddLayerEvents(evs)
		if err != nil {
			req.resp <- batchResp{err: err}
			continue
		}
		req.resp <- batchResp{out: out[off : off+len(req.rows)]}
		off += len(req.rows)
	}
}
