package serve

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

// syntheticMeasure builds a measureFunc whose dense/CSR speedup is linear
// in density and equals exactly 1 at crossAt, so tuneShape's linear
// interpolation recovers crossAt exactly.
func syntheticMeasure(crossAt float64, calls *atomic.Int64) measureFunc {
	return func(rows, cols int, density float64) (float64, float64) {
		if calls != nil {
			calls.Add(1)
		}
		const dense = 1000.0
		if crossAt <= 0 {
			return dense, dense * 10 // CSR always loses
		}
		speedup := 1 + (crossAt - density) // linear, >0 on the probe ladder
		return dense, dense / speedup
	}
}

func TestTuneShapeRecoversCrossover(t *testing.T) {
	for _, crossAt := range []float64{0.15, 0.3, 0.45} {
		st := tuneShape(32, 64, syntheticMeasure(crossAt, nil))
		if math.Abs(st.Threshold-crossAt) > 1e-9 {
			t.Fatalf("crossover at %v: tuned threshold %v", crossAt, st.Threshold)
		}
		if len(st.Probes) != len(autotuneProbeDensities) {
			t.Fatalf("got %d probes, want %d", len(st.Probes), len(autotuneProbeDensities))
		}
		// The derived threshold must choose CSR exactly where the measured
		// speedup exceeds 1: every winning probe sits below it, every
		// losing probe at or above it.
		for _, p := range st.Probes {
			if p.Speedup > 1 && p.Density >= st.Threshold {
				t.Fatalf("crossover %v: probe at %v wins (%.2fx) but threshold %v would serve it dense",
					crossAt, p.Density, p.Speedup, st.Threshold)
			}
			if p.Speedup < 1 && p.Density < st.Threshold {
				t.Fatalf("crossover %v: probe at %v loses (%.2fx) but threshold %v would keep it CSR",
					crossAt, p.Density, p.Speedup, st.Threshold)
			}
		}
	}
}

func TestTuneShapeBoundaries(t *testing.T) {
	if st := tuneShape(32, 64, syntheticMeasure(0, nil)); st.Threshold != 0 {
		t.Fatalf("CSR-never-wins threshold %v, want 0", st.Threshold)
	}
	// CSR wins every probe: threshold caps at the densest probe measured.
	st := tuneShape(32, 64, syntheticMeasure(10, nil))
	want := autotuneProbeDensities[len(autotuneProbeDensities)-1]
	if st.Threshold != want {
		t.Fatalf("CSR-always-wins threshold %v, want %v", st.Threshold, want)
	}
}

// TestRegistryAutotunePerLayer runs the full path: a registry with
// autotuning on (and a synthetic, shape-dependent cost model) registers a
// model and must surface measured per-layer thresholds in stats, choose
// the resident format per layer accordingly, and dedup measurements by
// shape across models.
func TestRegistryAutotunePerLayer(t *testing.T) {
	net, m := servedModel(t, 6)
	var calls atomic.Int64
	// Shape-dependent crossover: ip1 (32×64) tunes to 0.45, ip2 (10×32)
	// to 0 (never CSR). servedModel prunes ip1 to ~0.2 density and ip2 to
	// ~0.4, so with these thresholds ip1 must land CSR, ip2 dense.
	measure := func(rows, cols int, density float64) (float64, float64) {
		calls.Add(1)
		if rows == 32 {
			return syntheticMeasure(0.45, nil)(rows, cols, density)
		}
		return syntheticMeasure(0, nil)(rows, cols, density)
	}

	r := NewRegistry(0, BatchOptions{})
	defer r.Close()
	r.setAutotuneMeasure(measure)
	r.SetAutotuneSparse(true)
	e, err := r.Add("mlp", m, net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if !st.AutotuneSparse {
		t.Fatal("stats do not report autotune_sparse")
	}
	byName := map[string]LayerMeta{}
	for _, lm := range st.Layers {
		byName[lm.Name] = lm
	}
	if th := byName["ip1"].SparseThreshold; math.Abs(th-0.45) > 1e-9 {
		t.Fatalf("ip1 threshold %v, want 0.45", th)
	}
	if th := byName["ip2"].SparseThreshold; th != 0 {
		t.Fatalf("ip2 threshold %v, want 0", th)
	}
	for _, lm := range st.Layers {
		if !lm.Autotuned {
			t.Fatalf("layer %s not marked autotuned", lm.Name)
		}
	}

	// Per-shape dedup: one ladder of measurements per distinct shape.
	perShape := int64(len(autotuneProbeDensities))
	if got := calls.Load(); got != 2*perShape {
		t.Fatalf("measure called %d times, want %d (2 shapes × %d probes)", got, 2*perShape, perShape)
	}
	// A second model with the same shapes must reuse the cached tunes.
	net2, m2 := servedModel(t, 7)
	if _, err := r.Add("mlp2", m2, net2, []int{1, 8, 8}); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2*perShape {
		t.Fatalf("second model re-measured: %d calls, want %d", got, 2*perShape)
	}

	// The thresholds must steer the decode cache's format choice: after
	// traffic, ip1 (density ~0.2 < 0.45) is resident CSR and ip2 (density
	// ~0.4 > 0) dense.
	if _, err := e.Predict(testRows(2, 3)); err != nil {
		t.Fatal(err)
	}
	meta := e.LayerMeta()
	byName = map[string]LayerMeta{}
	for _, lm := range meta {
		byName[lm.Name] = lm
	}
	if f := byName["ip1"].Format; f != "csr" {
		t.Fatalf("ip1 resident %q, want csr (density %v < threshold 0.45)", f, byName["ip1"].Density)
	}
	if f := byName["ip2"].Format; f != "dense" {
		t.Fatalf("ip2 resident %q, want dense (threshold 0)", f)
	}

	// Telemetry: thresholds, shape count, and time spent are exposed.
	var buf strings.Builder
	if err := r.Telemetry().WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	exp := buf.String()
	for _, want := range []string{
		`deepsz_kernel_autotune_threshold{layer="ip1",model="mlp"} 0.4`,
		`deepsz_kernel_autotune_threshold{layer="ip2",model="mlp"} 0`,
		"deepsz_kernel_autotune_shapes_total 2",
		"deepsz_kernel_autotune_seconds_total",
	} {
		if !strings.Contains(exp, want) {
			t.Fatalf("exposition missing %q:\n%s", want, exp)
		}
	}
}

// TestRegistryAutotuneOffKeepsUniform pins the default: without
// SetAutotuneSparse the uniform threshold applies to every layer and
// nothing is measured.
func TestRegistryAutotuneOffKeepsUniform(t *testing.T) {
	net, m := servedModel(t, 8)
	r := NewRegistry(0, BatchOptions{})
	defer r.Close()
	var calls atomic.Int64
	r.setAutotuneMeasure(syntheticMeasure(0.3, &calls))
	r.SetSparseThreshold(0.25)
	e, err := r.Add("mlp", m, net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.AutotuneSparse {
		t.Fatal("autotune_sparse reported without opt-in")
	}
	for _, lm := range st.Layers {
		if lm.SparseThreshold != 0.25 || lm.Autotuned {
			t.Fatalf("layer %s threshold %v autotuned=%v, want uniform 0.25", lm.Name, lm.SparseThreshold, lm.Autotuned)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("measure ran %d times with autotune off", calls.Load())
	}
}

// TestDefaultMeasureRuns smoke-tests the real kernel benchmark on a tiny
// shape: positive timings for both kernels.
func TestDefaultMeasureRuns(t *testing.T) {
	dn, cn := defaultMeasure(16, 32, 0.1)
	if dn <= 0 || cn <= 0 {
		t.Fatalf("defaultMeasure returned %v, %v", dn, cn)
	}
}
