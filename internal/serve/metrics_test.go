package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// scrape fetches and strictly parses url's /metrics exposition.
func scrape(t testing.TB, url string) *telemetry.Scrape {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	s, err := telemetry.ParseExposition(raw)
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, raw)
	}
	return s
}

// TestServerMetricsEndpoint locks the /metrics tentpole on the serving
// side: the exposition parses under the strict parser, the cache and
// per-stage families carry real traffic, and counters only move forward
// between scrapes.
func TestServerMetricsEndpoint(t *testing.T) {
	ts, _ := serverFixture(t, 0)

	// Cold-cache predict so the decode stage has something to measure.
	body, _ := json.Marshal(predictRequest{Inputs: testRows(3, 40)})
	resp, err := http.Post(ts.URL+"/v1/models/mlp/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	first := scrape(t, ts.URL+"/metrics")

	// Cache counters: the cold predict decoded both fc layers.
	events := map[string]float64{}
	for _, s := range first.Family("deepsz_cache_events_total").Samples {
		for _, l := range s.Labels {
			if l.Name == "event" {
				events[l.Value] = s.Value
			}
		}
	}
	if events["miss"] != 2 {
		t.Fatalf("cache miss counter %v, want 2 (one per layer)", events["miss"])
	}
	for _, ev := range []string{"hit", "coalesced", "eviction", "bypass"} {
		if _, ok := events[ev]; !ok {
			t.Fatalf("cache event %q missing from exposition", ev)
		}
	}

	// Per-stage histograms: every stage family member exists; the stages
	// the cold predict exercised observed at least one sample.
	stageCount := map[string]uint64{}
	for _, s := range first.Family("deepsz_stage_duration_seconds").Samples {
		if !strings.HasSuffix(s.Name, "_count") {
			continue
		}
		for _, l := range s.Labels {
			if l.Name == "stage" {
				stageCount[l.Value] = uint64(s.Value)
			}
		}
	}
	for _, st := range telemetry.Stages() {
		if _, ok := stageCount[st.String()]; !ok {
			t.Fatalf("stage %q missing from deepsz_stage_duration_seconds", st)
		}
	}
	for _, st := range []string{"queue", "batch_wait", "cache_lookup", "decode", "kernel", "encode"} {
		if stageCount[st] == 0 {
			t.Fatalf("stage %q observed no samples after a cold predict: %v", st, stageCount)
		}
	}

	// Decoded-bytes and per-model counters carry the predict.
	if f := first.Family("deepsz_decoded_bytes_total"); f == nil || len(f.Samples) == 0 || f.Samples[0].Value <= 0 {
		t.Fatalf("deepsz_decoded_bytes_total missing or zero after a cold predict: %+v", f)
	}
	for _, name := range []string{
		"deepsz_predict_requests_total", "deepsz_predict_rows_total",
		"deepsz_predict_batches_total", "deepsz_build_info",
		"deepsz_http_in_flight", "deepsz_uptime_seconds",
	} {
		if first.Family(name) == nil {
			t.Fatalf("family %q missing from exposition", name)
		}
	}

	// More traffic, then re-scrape: every counter must be monotonic.
	resp, err = http.Post(ts.URL+"/v1/models/mlp/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	second := scrape(t, ts.URL+"/metrics")
	if err := telemetry.CheckMonotonic(first, second); err != nil {
		t.Fatalf("counters moved backwards between scrapes: %v", err)
	}
}

// TestServerTraceResponse locks the per-request tracing contract at the
// HTTP layer: a trace ID is always echoed in the response header, a
// client-minted ID is honoured, and "trace": true returns the per-stage
// breakdown with decode time > 0 on a cold cache.
func TestServerTraceResponse(t *testing.T) {
	ts, _ := serverFixture(t, 0)

	body, _ := json.Marshal(predictRequest{Inputs: testRows(2, 41), Trace: true})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/models/mlp/predict", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceHeader, "cafef00dcafef00d")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(telemetry.TraceHeader); got != "cafef00dcafef00d" {
		t.Fatalf("trace header %q, want the client-minted ID echoed", got)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Trace == nil {
		t.Fatal("trace requested but response carries none")
	}
	if pr.Trace.ID != "cafef00dcafef00d" {
		t.Fatalf("trace body ID %q, want the header ID", pr.Trace.ID)
	}
	if pr.Trace.StagesNs["decode"] <= 0 {
		t.Fatalf("cold-cache trace reports decode_ns=%d, want > 0 (%+v)", pr.Trace.StagesNs["decode"], pr.Trace.StagesNs)
	}
	if pr.Trace.TotalNs <= 0 {
		t.Fatalf("trace total_ns=%d, want > 0", pr.Trace.TotalNs)
	}

	// Without a client header the server mints one; without "trace": true
	// the body stays clean but the header still carries the ID.
	plain, _ := json.Marshal(predictRequest{Inputs: testRows(1, 42)})
	resp2, err := http.Post(ts.URL+"/v1/models/mlp/predict", "application/json", bytes.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.Header.Get(telemetry.TraceHeader) == "" {
		t.Fatal("server did not mint a trace ID")
	}
	var pr2 predictResponse
	if err := json.NewDecoder(resp2.Body).Decode(&pr2); err != nil {
		t.Fatal(err)
	}
	if pr2.Trace != nil {
		t.Fatalf("trace not requested but response carries %+v", pr2.Trace)
	}
}
