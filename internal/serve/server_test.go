package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// servedModel builds a small pruned MLP, compresses it, and returns both:
// the fixture every engine/server test serves from.
func servedModel(t testing.TB, seed uint64) (*nn.Network, *core.Model) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	net := nn.NewNetwork("test-mlp",
		nn.NewFlatten("flat"),
		nn.NewDense("ip1", 64, 32, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("ip2", 32, 10, rng),
	)
	prune.Network(net, map[string]float64{"ip1": 0.2, "ip2": 0.4}, 0.1)
	plan := &core.Plan{}
	for _, fc := range net.DenseLayers() {
		plan.Choices = append(plan.Choices, core.Choice{Layer: fc.Name(), EB: 1e-3})
	}
	m, err := core.Generate(net, plan, core.Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return net, m
}

// decodedReference applies the compressed model to a clone of net and
// returns its plain forward pass — the ground truth serving must match.
func decodedReference(t testing.TB, net *nn.Network, m *core.Model, rows [][]float32) [][]float32 {
	t.Helper()
	ref := net.Clone()
	if _, err := m.Apply(ref); err != nil {
		t.Fatal(err)
	}
	flat := make([]float32, 0, len(rows)*len(rows[0]))
	for _, r := range rows {
		flat = append(flat, r...)
	}
	y := ref.Forward(tensor.FromSlice(flat, len(rows), 1, 8, 8), false)
	classes := y.Len() / len(rows)
	out := make([][]float32, len(rows))
	for i := range out {
		out[i] = y.Data[i*classes : (i+1)*classes]
	}
	return out
}

func testRows(n int, seed uint64) [][]float32 {
	rng := tensor.NewRNG(seed)
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = make([]float32, 64)
		rng.FillNormal(rows[i], 0, 1)
	}
	return rows
}

func TestEnginePredictMatchesDecodedNetwork(t *testing.T) {
	net, m := servedModel(t, 1)
	for _, budget := range []int64{0, m.MaxDenseBytes(), 64} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			reg := NewRegistry(budget, BatchOptions{})
			defer reg.Close()
			e, err := reg.Add("mlp", m, net, []int{1, 8, 8})
			if err != nil {
				t.Fatal(err)
			}
			rows := testRows(5, 2)
			got, err := e.Predict(rows)
			if err != nil {
				t.Fatal(err)
			}
			want := decodedReference(t, net, m, rows)
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("row %d logit %d: %v, want %v", i, j, got[i][j], want[i][j])
					}
				}
			}
			// A second pass must agree too (exercises the hit / bypass path).
			again, err := e.Predict(rows)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				for j := range want[i] {
					if again[i][j] != want[i][j] {
						t.Fatalf("second pass diverged at row %d logit %d", i, j)
					}
				}
			}
		})
	}
}

func TestEngineTinyBudgetBypasses(t *testing.T) {
	net, m := servedModel(t, 3)
	reg := NewRegistry(64, BatchOptions{}) // smaller than any layer
	defer reg.Close()
	e, err := reg.Add("mlp", m, net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict(testRows(1, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict(testRows(1, 5)); err != nil {
		t.Fatal(err)
	}
	s := reg.Cache().Stats()
	if s.Entries != 0 || s.Bypasses != 4 {
		t.Fatalf("tiny budget should bypass every layer decode: %+v", s)
	}
}

func TestEngineRejectsBadInput(t *testing.T) {
	net, m := servedModel(t, 6)
	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	e, err := reg.Add("mlp", m, net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := e.Predict([][]float32{make([]float32, 63)}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := reg.Add("mlp", m, net, []int{1, 8, 8}); err == nil {
		t.Fatal("duplicate registration accepted")
	}

	// Bad model/skeleton pairings must fail at registration, not panic in
	// a request's forward pass.
	rng := tensor.NewRNG(1)
	wrongShape := nn.NewNetwork("test-mlp",
		nn.NewFlatten("flat"),
		nn.NewDense("ip1", 64, 16, rng), // model stores ip1 as 32x64
		nn.NewReLU("relu1"),
		nn.NewDense("ip2", 32, 10, rng),
	)
	if _, err := reg.Add("wrong-shape", m, wrongShape, []int{1, 8, 8}); err == nil {
		t.Fatal("shape-mismatched skeleton accepted")
	}
	uncovered := nn.NewNetwork("test-mlp",
		nn.NewFlatten("flat"),
		nn.NewDense("ip1", 64, 32, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("ip2", 32, 10, rng),
		nn.NewDense("ip3", 10, 4, rng), // not in the model
	)
	if _, err := reg.Add("uncovered", m, uncovered, []int{1, 8, 8}); err == nil {
		t.Fatal("skeleton with an uncovered fc layer accepted")
	}

	// A forged bias count passes the container checks (Unmarshal never ties
	// bias length to the shape) but must fail at registration, not panic in
	// the batcher's goroutine mid-request.
	badBias := &core.Model{NetName: m.NetName, Layers: append([]core.LayerBlob(nil), m.Layers...)}
	badBias.Layers[0].Bias = badBias.Layers[0].Bias[:1]
	if _, err := reg.Add("bad-bias", badBias, net, []int{1, 8, 8}); err == nil {
		t.Fatal("model with truncated bias accepted")
	}
}

func TestBatcherRecoversForwardPanic(t *testing.T) {
	net, m := servedModel(t, 12)
	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	// Lie about the input shape: rows of 128 values pass validation, but
	// flatten produces [N,128] and ip1 wants 64 — the forward panics.
	e, err := reg.Add("mlp", m, net, []int{2, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]float32{make([]float32, 128)}
	if _, err := e.PredictBatched(bad); err == nil {
		t.Fatal("expected error from panicking forward pass")
	}
	// The batcher survived: a second call still gets an error response
	// instead of deadlocking on a dead goroutine.
	if _, err := e.PredictBatched(bad); err == nil {
		t.Fatal("batcher died after recovered panic")
	}
}

func TestMicroBatchingCoalesces(t *testing.T) {
	net, m := servedModel(t, 7)
	reg := NewRegistry(0, BatchOptions{MaxBatch: 64, Window: 250 * time.Millisecond})
	defer reg.Close()
	e, err := reg.Add("mlp", m, net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(8, 8)
	want := decodedReference(t, net, m, rows)

	var wg sync.WaitGroup
	var mu sync.Mutex
	got := make([][]float32, len(rows))
	for i := range rows {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := e.PredictBatched([][]float32{rows[i]})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			got[i] = out[0]
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("batched row %d logit %d: %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	s := e.Stats()
	if s.Requests != 8 || s.Rows != 8 {
		t.Fatalf("stats %+v, want 8 requests / 8 rows", s)
	}
	if s.Batches >= s.Requests {
		t.Fatalf("no coalescing: %d batches for %d requests (window should merge them)", s.Batches, s.Requests)
	}

	e.Close()
	if _, err := e.PredictBatched([][]float32{rows[0]}); err != ErrClosed {
		t.Fatalf("predict after close: %v, want ErrClosed", err)
	}
}

// servedConvModel builds a conv+fc network with every weighted layer
// pruned and compresses it whole (LayersAll): the whole-network serving
// fixture. Input shape: [1, 8, 8].
func servedConvModel(t testing.TB, seed uint64) (*nn.Network, *core.Model) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	net := nn.NewNetwork("test-conv",
		nn.NewConv2D("conv1", 1, 6, 3, 1, 1, rng), // 8×8
		nn.NewMaxPool2D("pool1", 2, 2),            // →4
		nn.NewReLU("reluc1"),
		nn.NewConv2D("conv2", 6, 8, 3, 1, 1, rng), // 4×4
		nn.NewReLU("reluc2"),
		nn.NewFlatten("flat"),
		nn.NewDense("ip1", 128, 32, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("ip2", 32, 10, rng),
	)
	prune.NetworkAll(net, map[string]float64{"ip1": 0.1, "ip2": 0.3}, 0.1, 0.3)
	plan := &core.Plan{}
	for _, cl := range net.CompressibleLayers() {
		plan.Choices = append(plan.Choices, core.Choice{Layer: cl.Name(), EB: 1e-3})
	}
	m, err := core.Generate(net, plan, core.Config{ExpectedAccuracyLoss: 0.01, Layers: core.LayersAll})
	if err != nil {
		t.Fatal(err)
	}
	return net, m
}

// TestEngineServesConvLayersThroughCache: a whole-network model must serve
// with the conv layers fetched through the decode cache, byte-for-byte
// matching a fully decoded network, at every budget regime (unlimited,
// one-layer, thrash) and under concurrency.
func TestEngineServesConvLayersThroughCache(t *testing.T) {
	net, m := servedConvModel(t, 21)
	if len(m.Layers) != 4 {
		t.Fatalf("model has %d layers, want 4 (2 conv + 2 fc)", len(m.Layers))
	}
	for i := range m.Layers {
		l := &m.Layers[i]
		if int64(l.CompressedBytes()) >= l.DenseBytes() {
			t.Fatalf("layer %s (%s) not compressed: %d stored vs %d dense",
				l.Name, l.Kind, l.CompressedBytes(), l.DenseBytes())
		}
	}
	rows := testRows(4, 22)
	ref := net.Clone()
	if _, err := m.Apply(ref); err != nil {
		t.Fatal(err)
	}
	flat := make([]float32, 0, len(rows)*64)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	y := ref.Forward(tensor.FromSlice(flat, len(rows), 1, 8, 8), false)
	classes := y.Len() / len(rows)

	for _, budget := range []int64{0, m.MaxDenseBytes(), 64} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			reg := NewRegistry(budget, BatchOptions{})
			defer reg.Close()
			e, err := reg.Add("conv", m, net, []int{1, 8, 8})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					got, err := e.Predict(rows)
					if err != nil {
						t.Error(err)
						return
					}
					for i := range got {
						for j := range got[i] {
							if got[i][j] != y.Data[i*classes+j] {
								t.Errorf("row %d logit %d: served %v, decoded %v", i, j, got[i][j], y.Data[i*classes+j])
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			// All four layers — conv included — must have moved through the
			// cache, not fallen back to (stripped) layer parameters.
			s := reg.Cache().Stats()
			if s.Misses+s.Bypasses < 4 {
				t.Fatalf("only %d decodes for 4 layers: conv layers not cache-fed (%+v)", s.Misses+s.Bypasses, s)
			}
		})
	}
}

// TestEngineReportsKindAndShape locks the /v1/stats satellite: layer
// metadata must carry each layer's kind and weight shape.
func TestEngineReportsKindAndShape(t *testing.T) {
	net, m := servedConvModel(t, 23)
	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	e, err := reg.Add("conv", m, net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	metas := e.Stats().Layers
	if len(metas) != 4 {
		t.Fatalf("stats report %d layers, want 4", len(metas))
	}
	want := map[string]struct {
		kind string
		rank int
	}{
		"conv1": {"conv", 4}, "conv2": {"conv", 4},
		"ip1": {"fc", 2}, "ip2": {"fc", 2},
	}
	for _, lm := range metas {
		w, ok := want[lm.Name]
		if !ok {
			t.Fatalf("unexpected layer %q", lm.Name)
		}
		if lm.Kind != w.kind || len(lm.Shape) != w.rank || lm.Codec == "" {
			t.Fatalf("layer %s reported kind=%s shape=%v codec=%q, want %s rank %d",
				lm.Name, lm.Kind, lm.Shape, lm.Codec, w.kind, w.rank)
		}
	}
}

func serverFixture(t testing.TB, budget int64) (*httptest.Server, *Registry) {
	t.Helper()
	net, m := servedModel(t, 9)
	reg := NewRegistry(budget, BatchOptions{})
	if _, err := reg.Add("mlp", m, net, []int{1, 8, 8}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg))
	t.Cleanup(func() { ts.Close(); reg.Close() })
	return ts, reg
}

func getJSON(t testing.TB, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestServerEndpoints(t *testing.T) {
	ts, _ := serverFixture(t, 0)

	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz %v", health)
	}

	var list struct {
		Models []modelInfo `json:"models"`
	}
	if code := getJSON(t, ts.URL+"/v1/models", &list); code != http.StatusOK {
		t.Fatalf("models status %d", code)
	}
	if len(list.Models) != 1 || list.Models[0].Name != "mlp" || len(list.Models[0].Layers) != 2 {
		t.Fatalf("models response %+v", list)
	}
	if list.Models[0].InputLen != 64 || list.Models[0].DenseBytes <= 0 {
		t.Fatalf("model info %+v", list.Models[0])
	}
	for _, li := range list.Models[0].Layers {
		if li.Kind != "fc" || len(li.Shape) != 2 {
			t.Fatalf("layer %s reported kind=%q shape=%v, want fc rank 2", li.Name, li.Kind, li.Shape)
		}
	}

	rows := testRows(3, 10)
	body, _ := json.Marshal(predictRequest{Inputs: rows})
	resp, err := http.Post(ts.URL+"/v1/models/mlp/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	if len(pr.Outputs) != 3 || len(pr.Argmax) != 3 {
		t.Fatalf("predict response %d outputs / %d argmax", len(pr.Outputs), len(pr.Argmax))
	}
	for i, row := range pr.Outputs {
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if pr.Argmax[i] != best {
			t.Fatalf("argmax[%d]=%d, want %d", i, pr.Argmax[i], best)
		}
	}

	var stats statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Models["mlp"].Rows != 3 {
		t.Fatalf("stats rows %+v", stats.Models["mlp"])
	}
	if stats.Cache.Misses != 2 {
		t.Fatalf("cache misses %d, want 2 (one per layer)", stats.Cache.Misses)
	}
}

func TestServerErrors(t *testing.T) {
	ts, _ := serverFixture(t, 0)

	if code := getJSON(t, ts.URL+"/v1/models/nope/predict", nil); code != http.StatusMethodNotAllowed {
		// GET on a POST route is routed by method; the JSON API only
		// accepts POST here.
		t.Fatalf("GET predict status %d", code)
	}

	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/models/nope/predict", `{"inputs":[[1]]}`); code != http.StatusNotFound {
		t.Fatalf("unknown model status %d", code)
	}
	if code := post("/v1/models/mlp/predict", `{"inputs":`); code != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", code)
	}
	if code := post("/v1/models/mlp/predict", `{"inputs":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty inputs status %d", code)
	}
	if code := post("/v1/models/mlp/predict", `{"inputs":[[1,2,3]]}`); code != http.StatusBadRequest {
		t.Fatalf("short row status %d", code)
	}
}

// TestEngineAdmissionSheds locks the bounded-admission satellite: an
// engine at MaxPending admitted predicts rejects the overflow with
// ErrOverloaded instead of queueing it, and the queue-depth gauge and
// shed counter report what happened.
func TestEngineAdmissionSheds(t *testing.T) {
	net, m := servedModel(t, 31)
	// A wide batch window keeps the first predict parked in the batcher
	// long enough for the second to arrive while it is still pending.
	reg := NewRegistry(0, BatchOptions{MaxPending: 1, Window: 300 * time.Millisecond, MaxBatch: 64})
	defer reg.Close()
	e, err := reg.Add("mlp", m, net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(1, 32)
	first := make(chan error, 1)
	go func() {
		_, err := e.PredictBatched(rows)
		first <- err
	}()
	// Wait until the first predict is admitted (gauge visible), then
	// overflow the bound.
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first predict never showed up in the queue-depth gauge")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := e.Predict(rows); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("predict over the admission bound: %v, want ErrOverloaded", err)
	}
	if err := <-first; err != nil {
		t.Fatalf("admitted predict failed: %v", err)
	}
	s := e.Stats()
	if s.Shed != 1 || s.MaxPending != 1 {
		t.Fatalf("stats shed=%d max_pending=%d, want 1/1", s.Shed, s.MaxPending)
	}
	if s.QueueDepth != 0 {
		t.Fatalf("queue depth %d after all predicts finished, want 0", s.QueueDepth)
	}
	// The bound is a gate, not a latch: the engine serves again.
	if _, err := e.Predict(rows); err != nil {
		t.Fatalf("predict after shed: %v", err)
	}
}

// TestServerShedsWith503RetryAfter drives the admission bound through
// the HTTP layer: overflow predicts get 503 + Retry-After, admitted ones
// still succeed.
func TestServerShedsWith503RetryAfter(t *testing.T) {
	net, m := servedModel(t, 33)
	reg := NewRegistry(0, BatchOptions{MaxPending: 1, Window: 200 * time.Millisecond, MaxBatch: 64})
	if _, err := reg.Add("mlp", m, net, []int{1, 8, 8}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg))
	t.Cleanup(func() { ts.Close(); reg.Close() })

	body, _ := json.Marshal(predictRequest{Inputs: testRows(1, 34)})
	const clients = 4
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/models/mlp/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusServiceUnavailable:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("503 without a Retry-After hint")
				}
				shed.Add(1)
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if ok.Load() < 1 || shed.Load() < 1 || ok.Load()+shed.Load() != clients {
		t.Fatalf("ok=%d shed=%d, want at least one of each summing to %d", ok.Load(), shed.Load(), clients)
	}
	var stats statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	ms := stats.Models["mlp"]
	if ms.Shed != uint64(shed.Load()) || ms.MaxPending != 1 {
		t.Fatalf("engine stats %+v, want shed=%d max_pending=1", ms, shed.Load())
	}
	if stats.InFlight != 0 || ms.QueueDepth != 0 {
		t.Fatalf("gauges in_flight=%d queue_depth=%d at rest, want 0/0", stats.InFlight, ms.QueueDepth)
	}
}

// TestServerMaxBodyBytes locks the request-size satellite: a predict
// body over the configured cap is refused with 413.
func TestServerMaxBodyBytes(t *testing.T) {
	net, m := servedModel(t, 35)
	reg := NewRegistry(0, BatchOptions{})
	if _, err := reg.Add("mlp", m, net, []int{1, 8, 8}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWith(reg, ServerOptions{MaxBodyBytes: 2048}))
	t.Cleanup(func() { ts.Close(); reg.Close() })

	big, _ := json.Marshal(predictRequest{Inputs: testRows(4, 36)}) // 4×64 floats ≫ 512 B
	resp, err := http.Post(ts.URL+"/v1/models/mlp/predict", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", resp.StatusCode)
	}
	// Under the cap the same model still serves.
	small, _ := json.Marshal(predictRequest{Inputs: testRows(1, 37)})
	if len(small) > 2048 {
		t.Fatalf("fixture row serialises to %d B, does not fit the 2 KiB cap", len(small))
	}
	resp, err = http.Post(ts.URL+"/v1/models/mlp/predict", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-bounds body status %d, want 200", resp.StatusCode)
	}
}

func TestServerConcurrentPredicts(t *testing.T) {
	ts, reg := serverFixture(t, 0)
	const clients = 12
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rows := testRows(2, uint64(100+c))
			body, _ := json.Marshal(predictRequest{Inputs: rows})
			resp, err := http.Post(ts.URL+"/v1/models/mlp/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d status %d", c, resp.StatusCode)
			}
		}(c)
	}
	wg.Wait()
	s := reg.Cache().Stats()
	// Two layers total: everything beyond the first decode of each must be
	// a hit or a coalesced wait, never a duplicate decode.
	if s.Misses != 2 {
		t.Fatalf("misses=%d, want 2 (singleflight under concurrency)", s.Misses)
	}
	e, _ := reg.Get("mlp")
	if e.Stats().Rows != 2*clients {
		t.Fatalf("rows=%d, want %d", e.Stats().Rows, 2*clients)
	}
}

func TestRegistryLoadFile(t *testing.T) {
	_, m := servedModel(t, 11)
	dir := t.TempDir()
	path := dir + "/model.dsz"
	if err := m.WriteModel(path); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	// test-mlp is not a models.Build name, so LoadFile must fail cleanly.
	if _, err := reg.LoadFile("", path, ""); err == nil {
		t.Fatal("expected error for unknown network name")
	}
	if _, err := reg.LoadFile("", dir+"/missing.dsz", ""); err == nil {
		t.Fatal("expected error for missing file")
	}

	// A model whose NetName the registry knows loads end to end: the fc
	// suffix comes entirely from the .dsz (lenet-300-100 has no conv
	// prefix, so no weights file is needed).
	lenet, err := models.Build(models.LeNet300, tensor.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	prune.Network(lenet, map[string]float64{"ip1": 0.05, "ip2": 0.1, "ip3": 0.5}, 0.1)
	plan := &core.Plan{}
	for _, fc := range lenet.DenseLayers() {
		plan.Choices = append(plan.Choices, core.Choice{Layer: fc.Name(), EB: 1e-3})
	}
	lm, err := core.Generate(lenet, plan, core.Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	lpath := dir + "/lenet.dsz"
	if err := lm.WriteModel(lpath); err != nil {
		t.Fatal(err)
	}
	e, err := reg.LoadFile("", lpath, "")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != models.LeNet300 || e.InputLen() != 784 {
		t.Fatalf("loaded engine %s/%d", e.Name(), e.InputLen())
	}
	row := make([]float32, 784)
	tensor.NewRNG(13).FillNormal(row, 0, 1)
	out, err := e.Predict([][]float32{row})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0]) != 10 {
		t.Fatalf("predict shape %d×%d, want 1×10", len(out), len(out[0]))
	}
}

func TestRegistryLoadFileConvNeedsWeights(t *testing.T) {
	lenet5, err := models.Build(models.LeNet5, tensor.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	prune.Network(lenet5, map[string]float64{"ip1": 0.05, "ip2": 0.2}, 0.1)
	plan := &core.Plan{}
	for _, fc := range lenet5.DenseLayers() {
		plan.Choices = append(plan.Choices, core.Choice{Layer: fc.Name(), EB: 1e-2})
	}
	m, err := core.Generate(lenet5, plan, core.Config{ExpectedAccuracyLoss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/lenet5.dsz"
	if err := m.WriteModel(path); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(0, BatchOptions{})
	defer reg.Close()
	// A conv-prefix network must refuse to serve without trained weights.
	if _, err := reg.LoadFile("", path, ""); err == nil {
		t.Fatal("conv network loaded without a weights file")
	}
	wpath := dir + "/lenet5.weights"
	f, err := os.Create(wpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.SaveWeights(f, lenet5); err != nil {
		t.Fatal(err)
	}
	f.Close()
	e, err := reg.LoadFile("", path, wpath)
	if err != nil {
		t.Fatal(err)
	}
	if e.InputLen() != 784 {
		t.Fatalf("input len %d, want 784", e.InputLen())
	}
	row := make([]float32, 784)
	if _, err := e.Predict([][]float32{row}); err != nil {
		t.Fatal(err)
	}
}
