// Package huffman implements a canonical Huffman coder over uint32 symbol
// streams. It is the entropy stage of the SZ compressor (quantization codes),
// of Deep Compression (cluster indices), and of the zstd-like lossless
// back-end.
//
// The encoded format is self-describing: a compact code-length table followed
// by the bit payload, so Decode needs no side information beyond the blob.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitstream"
)

// MaxCodeLen is the longest code length the canonical coder will emit. Codes
// longer than this (possible for very skewed inputs) are flattened by the
// standard depth-limiting pass.
const MaxCodeLen = 32

// ErrCorrupt is returned when a blob fails structural validation.
var ErrCorrupt = errors.New("huffman: corrupt stream")

type node struct {
	freq uint64
	sym  uint32
	// seq is a deterministic tie-breaker: leaves get their rank in symbol
	// order, merged nodes get the next counter value. Without it, equal
	// frequencies would be merged in map-iteration order and the emitted
	// code lengths — hence the encoded bytes — would differ between runs.
	seq         uint64
	left, right *node
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// codeLengths builds Huffman code lengths for the given frequency map,
// limited to MaxCodeLen.
func codeLengths(freq map[uint32]uint64) map[uint32]uint8 {
	if len(freq) == 0 {
		return nil
	}
	if len(freq) == 1 {
		for s := range freq {
			return map[uint32]uint8{s: 1}
		}
	}
	syms := make([]uint32, 0, len(freq))
	for s := range freq {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	h := make(nodeHeap, 0, len(freq))
	for i, s := range syms {
		h = append(h, &node{freq: freq[s], sym: s, seq: uint64(i)})
	}
	seq := uint64(len(syms))
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*node)
		b := heap.Pop(&h).(*node)
		heap.Push(&h, &node{freq: a.freq + b.freq, seq: seq, left: a, right: b})
		seq++
	}
	root := h[0]
	lengths := make(map[uint32]uint8, len(freq))
	var walk func(n *node, depth uint8)
	walk = func(n *node, depth uint8) {
		if n.left == nil {
			d := depth
			if d == 0 {
				d = 1
			}
			lengths[n.sym] = d
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	limitLengths(lengths)
	return lengths
}

// limitLengths caps code lengths at MaxCodeLen while keeping the Kraft sum
// exactly 1 (standard heuristic: demote overly long codes, then repair).
func limitLengths(lengths map[uint32]uint8) {
	over := false
	for _, l := range lengths {
		if l > MaxCodeLen {
			over = true
			break
		}
	}
	if !over {
		return
	}
	// Clamp, then fix the Kraft inequality by lengthening the shortest codes.
	type sl struct {
		sym uint32
		l   uint8
	}
	all := make([]sl, 0, len(lengths))
	for s, l := range lengths {
		if l > MaxCodeLen {
			l = MaxCodeLen
		}
		all = append(all, sl{s, l})
	}
	kraft := func() float64 {
		var k float64
		for _, e := range all {
			k += 1 / float64(uint64(1)<<e.l)
		}
		return k
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].l != all[j].l {
			return all[i].l < all[j].l
		}
		return all[i].sym < all[j].sym // deterministic victim selection
	})
	for i := 0; kraft() > 1 && i < len(all); {
		if all[i].l < MaxCodeLen {
			all[i].l++
		} else {
			i++
		}
	}
	for _, e := range all {
		lengths[e.sym] = e.l
	}
}

// canonicalCodes assigns canonical codes (sorted by (length, symbol)).
func canonicalCodes(lengths map[uint32]uint8) (syms []uint32, codes map[uint32]uint32) {
	syms = make([]uint32, 0, len(lengths))
	for s := range lengths {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool {
		li, lj := lengths[syms[i]], lengths[syms[j]]
		if li != lj {
			return li < lj
		}
		return syms[i] < syms[j]
	})
	codes = make(map[uint32]uint32, len(syms))
	var code uint32
	var prevLen uint8
	for _, s := range syms {
		l := lengths[s]
		code <<= (l - prevLen)
		codes[s] = code
		code++
		prevLen = l
	}
	return syms, codes
}

// Encode compresses data into a self-describing blob.
//
// Blob layout:
//
//	u32  symbol count n (number of encoded symbols)
//	u32  alphabet size m
//	m × (u32 symbol, u8 length)   code-length table
//	u32  payload byte length
//	payload bits (canonical codes, MSB-first)
func Encode(data []uint32) []byte {
	freq := make(map[uint32]uint64)
	for _, s := range data {
		freq[s]++
	}
	lengths := codeLengths(freq)
	syms, codes := canonicalCodes(lengths)

	w := bitstream.NewWriter()
	for _, s := range data {
		w.WriteBits(uint64(codes[s]), uint(lengths[s]))
	}
	payload := w.Bytes()

	out := make([]byte, 0, 8+len(syms)*5+4+len(payload))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(data)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(syms)))
	for _, s := range syms {
		out = binary.LittleEndian.AppendUint32(out, s)
		out = append(out, lengths[s])
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	return out
}

// decodeTable is a canonical-Huffman decoding structure: for each code length
// it stores the first code value and the index of the first symbol of that
// length in the (length, symbol)-sorted symbol list.
type decodeTable struct {
	syms      []uint32
	firstCode [MaxCodeLen + 2]uint32
	firstSym  [MaxCodeLen + 2]int
	count     [MaxCodeLen + 2]int
	maxLen    uint8
}

func buildDecodeTable(syms []uint32, lengths []uint8) (*decodeTable, error) {
	t := &decodeTable{syms: syms}
	for _, l := range lengths {
		if l == 0 || l > MaxCodeLen {
			return nil, ErrCorrupt
		}
		t.count[l]++
		if l > t.maxLen {
			t.maxLen = l
		}
	}
	var code uint32
	idx := 0
	for l := uint8(1); l <= t.maxLen; l++ {
		t.firstCode[l] = code
		t.firstSym[l] = idx
		code = (code + uint32(t.count[l])) << 1
		idx += t.count[l]
	}
	return t, nil
}

// Decode reverses Encode.
func Decode(blob []byte) ([]uint32, error) {
	if len(blob) < 8 {
		return nil, ErrCorrupt
	}
	n := binary.LittleEndian.Uint32(blob[0:4])
	m := binary.LittleEndian.Uint32(blob[4:8])
	off := 8
	if len(blob) < off+int(m)*5+4 {
		return nil, ErrCorrupt
	}
	syms := make([]uint32, m)
	lengths := make([]uint8, m)
	for i := 0; i < int(m); i++ {
		syms[i] = binary.LittleEndian.Uint32(blob[off : off+4])
		lengths[i] = blob[off+4]
		off += 5
	}
	payloadLen := binary.LittleEndian.Uint32(blob[off : off+4])
	off += 4
	if len(blob) < off+int(payloadLen) {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return []uint32{}, nil
	}
	if m == 0 {
		return nil, ErrCorrupt
	}
	// Every symbol costs at least one payload bit; a count beyond that is a
	// forged header (and would otherwise drive a huge allocation).
	if uint64(n) > uint64(payloadLen)*8 {
		return nil, fmt.Errorf("%w: symbol count %d exceeds payload capacity", ErrCorrupt, n)
	}
	table, err := buildDecodeTable(syms, lengths)
	if err != nil {
		return nil, err
	}
	r := bitstream.NewReader(blob[off : off+int(payloadLen)])
	// n is attacker-controlled (bounded only by payloadLen*8, and callers
	// like the LZ stage can present large payloads); cap the preallocation
	// and let append grow toward the real symbol count.
	prealloc := n
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	out := make([]uint32, 0, prealloc)
	for len(out) < int(n) {
		var code uint32
		var l uint8
		for {
			b, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
			}
			code = code<<1 | b
			l++
			if l > table.maxLen {
				return nil, fmt.Errorf("%w: code longer than table", ErrCorrupt)
			}
			if table.count[l] > 0 && code-table.firstCode[l] < uint32(table.count[l]) {
				out = append(out, table.syms[table.firstSym[l]+int(code-table.firstCode[l])])
				break
			}
		}
	}
	return out, nil
}

// EstimateBits returns the entropy-coded size in bits of data under its own
// Huffman code (table overhead excluded). Useful for predictor selection.
func EstimateBits(data []uint32) int {
	freq := make(map[uint32]uint64)
	for _, s := range data {
		freq[s]++
	}
	lengths := codeLengths(freq)
	bits := 0
	for s, f := range freq {
		bits += int(f) * int(lengths[s])
	}
	return bits
}
