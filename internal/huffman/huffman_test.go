package huffman

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func roundTrip(t *testing.T, data []uint32) []byte {
	t.Helper()
	blob := Encode(data)
	got, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(data) {
		t.Fatalf("length %d, want %d", len(got), len(data))
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("symbol %d = %d, want %d", i, got[i], data[i])
		}
	}
	return blob
}

func TestEmpty(t *testing.T) {
	roundTrip(t, []uint32{})
}

func TestSingleSymbolRepeated(t *testing.T) {
	data := make([]uint32, 1000)
	for i := range data {
		data[i] = 42
	}
	blob := roundTrip(t, data)
	// 1000 symbols at 1 bit each = 125 payload bytes + small header.
	if len(blob) > 200 {
		t.Fatalf("degenerate stream too large: %d bytes", len(blob))
	}
}

func TestTwoSymbols(t *testing.T) {
	roundTrip(t, []uint32{0, 1, 0, 0, 1, 1, 1, 0, 0, 0})
}

func TestSkewedDistributionCompresses(t *testing.T) {
	rng := tensor.NewRNG(1)
	data := make([]uint32, 20000)
	for i := range data {
		// ~95% of symbols are 100, the rest spread over 256 values.
		if rng.Float64() < 0.95 {
			data[i] = 100
		} else {
			data[i] = uint32(rng.Intn(256))
		}
	}
	blob := roundTrip(t, data)
	raw := len(data) * 4
	if len(blob)*4 > raw {
		t.Fatalf("skewed data should compress ≥4x: %d vs %d", len(blob), raw)
	}
}

func TestLargeAlphabet(t *testing.T) {
	rng := tensor.NewRNG(2)
	data := make([]uint32, 5000)
	for i := range data {
		data[i] = uint32(rng.Intn(70000)) // > 16-bit alphabet
	}
	roundTrip(t, data)
}

func TestDecodeCorruptHeader(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for short blob")
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	blob := Encode([]uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1, 2, 3})
	if _, err := Decode(blob[:len(blob)-2]); err == nil {
		t.Fatal("expected error for truncated payload")
	}
}

func TestDecodeZeroCountNonEmptyOK(t *testing.T) {
	blob := Encode(nil)
	got, err := Decode(blob)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty encode/decode: %v %v", got, err)
	}
}

func TestEstimateBitsMatchesOptimal(t *testing.T) {
	data := []uint32{0, 0, 0, 0, 1, 1, 2, 3}
	// Optimal Huffman: 0→1 bit, 1→2 bits, 2/3→3 bits: 4+4+3+3 = 14 bits.
	if got := EstimateBits(data); got != 14 {
		t.Fatalf("EstimateBits = %d, want 14", got)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		data := make([]uint32, len(raw))
		for i, v := range raw {
			data[i] = uint32(v % 512)
		}
		blob := Encode(data)
		got, err := Decode(blob)
		if err != nil || len(got) != len(data) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	data := []uint32{5, 9, 5, 5, 1, 9, 2, 5}
	a := Encode(data)
	b := Encode(data)
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestGaussianQuantCodes(t *testing.T) {
	// Realistic SZ workload: quantization codes tightly centred on a radius.
	rng := tensor.NewRNG(3)
	data := make([]uint32, 50000)
	const radius = 32768
	for i := range data {
		data[i] = uint32(radius + int(rng.NormFloat64()*3))
	}
	blob := roundTrip(t, data)
	bitsPerSym := float64(len(blob)*8) / float64(len(data))
	if bitsPerSym > 6 {
		t.Fatalf("centred codes should take <6 bits/symbol, got %.2f", bitsPerSym)
	}
}
