package models

import (
	"testing"

	"repro/internal/tensor"
)

func TestBuildAllNetworks(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, name := range All() {
		net, err := Build(name, rng)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if net.Name() != name {
			t.Fatalf("network name %q", net.Name())
		}
		if len(net.DenseLayers()) < 2 {
			t.Fatalf("%s: expected ≥2 fc layers", name)
		}
	}
	if _, err := Build("bogus", rng); err == nil {
		t.Fatal("expected error for unknown network")
	}
}

func TestBuildFCDimensionsMatchPaper(t *testing.T) {
	rng := tensor.NewRNG(2)
	net, _ := Build(LeNet300, rng)
	fcs := net.DenseLayers()
	wantDims := [][2]int{{300, 784}, {100, 300}, {10, 100}}
	for i, fc := range fcs {
		if fc.Out != wantDims[i][0] || fc.In != wantDims[i][1] {
			t.Fatalf("%s dims (%d,%d), want %v", fc.Name(), fc.Out, fc.In, wantDims[i])
		}
	}
	net5, _ := Build(LeNet5, rng)
	fcs5 := net5.DenseLayers()
	if fcs5[0].In != 800 || fcs5[0].Out != 500 || fcs5[1].In != 500 || fcs5[1].Out != 10 {
		t.Fatalf("LeNet-5 fc dims wrong: %d×%d, %d×%d", fcs5[0].Out, fcs5[0].In, fcs5[1].Out, fcs5[1].In)
	}
}

func TestForwardShapesAllNetworks(t *testing.T) {
	rng := tensor.NewRNG(3)
	for _, name := range All() {
		net, _ := Build(name, rng)
		_, test, err := DataFor(name, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		x, _ := test.Batch([]int{0, 1, 2, 3})
		logits := net.Forward(x, false)
		if logits.Shape[0] != 4 {
			t.Fatalf("%s: batch dim %d", name, logits.Shape[0])
		}
		if logits.Shape[1] != test.Classes {
			t.Fatalf("%s: %d logits for %d classes", name, logits.Shape[1], test.Classes)
		}
	}
}

func TestFCDominanceOrdering(t *testing.T) {
	// The scaled ImageNet networks must preserve fc6 > fc7 > fc8 (the
	// property DeepSZ's per-layer error-bound optimisation exploits).
	rng := tensor.NewRNG(4)
	for _, name := range []string{AlexNetS, VGG16S} {
		net, _ := Build(name, rng)
		fcs := net.DenseLayers()
		if len(fcs) != 3 {
			t.Fatalf("%s: %d fc layers, want 3", name, len(fcs))
		}
		for i := 0; i < 2; i++ {
			if fcs[i].In*fcs[i].Out <= fcs[i+1].In*fcs[i+1].Out {
				t.Fatalf("%s: fc%d not larger than fc%d", name, 6+i, 7+i)
			}
		}
	}
}

func TestFCStorageDominatesScaledNets(t *testing.T) {
	rng := tensor.NewRNG(5)
	for _, name := range []string{LeNet5, AlexNetS, VGG16S} {
		net, _ := Build(name, rng)
		total, dense := net.ParamBytes()
		if frac := float64(dense) / float64(total); frac < 0.7 {
			t.Fatalf("%s: fc storage fraction %.2f, want ≥0.7 (paper: 0.89–1.0)", name, frac)
		}
	}
}

func TestPaperTable1Invariants(t *testing.T) {
	specs := PaperTable1()
	if len(specs) != 4 {
		t.Fatalf("got %d architectures", len(specs))
	}
	// Published fc fractions: 100%, 95.3%, 96.1%, 89.4%.
	wantFrac := []float64{1.00, 0.953, 0.961, 0.894}
	for i, s := range specs {
		got := s.FCFraction()
		if diff := got - wantFrac[i]; diff < -0.03 || diff > 0.03 {
			t.Fatalf("%s: fc fraction %.3f, paper %.3f", s.Name, got, wantFrac[i])
		}
	}
	// VGG-16 fc6 is ~25× fc8 (paper §3.4).
	vgg := specs[3]
	ratio := float64(vgg.FCLayers[0].Weights()) / float64(vgg.FCLayers[2].Weights())
	if ratio < 20 || ratio > 30 {
		t.Fatalf("VGG fc6/fc8 = %.1f, want ≈25", ratio)
	}
}

func TestPretrainedReachesUsableAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	// One MLP (cheap) exercises the zoo path; chance is 10%.
	tr, err := Pretrained(LeNet300)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Baseline.Top1 < 0.85 {
		t.Fatalf("pretrained %s top-1 %.3f, want ≥0.85", LeNet300, tr.Baseline.Top1)
	}
	// Cached: second call returns the identical object.
	tr2, _ := Pretrained(LeNet300)
	if tr != tr2 {
		t.Fatal("Pretrained must cache")
	}
}

func TestDataForUnknown(t *testing.T) {
	if _, _, err := DataFor("bogus", 1, 1); err == nil {
		t.Fatal("expected error")
	}
}
