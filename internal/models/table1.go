package models

// This file carries the analytic full-scale architecture data behind the
// paper's Table 1. The byte counts are computed from the published layer
// dimensions (float32 weights), not measured, because the full-scale
// networks do not fit the offline environment; the scaled variants preserve
// the ratios (see DESIGN.md §1).

// FCSpec describes one fully connected layer of a full-scale network.
type FCSpec struct {
	Name string
	Rows int // output neurons
	Cols int // input neurons
}

// Weights returns the weight count of the layer.
func (f FCSpec) Weights() int { return f.Rows * f.Cols }

// Bytes returns the float32 storage of the layer's weights.
func (f FCSpec) Bytes() int64 { return int64(f.Weights()) * 4 }

// ArchSpec describes a full-scale network as published.
type ArchSpec struct {
	Name       string
	ConvLayers int
	FCLayers   []FCSpec
	// TotalBytes is the published total model size (all layers).
	TotalBytes int64
	// ScaledName is the runnable counterpart in this repository.
	ScaledName string
}

// FCBytes returns the total fc-layer weight storage.
func (a ArchSpec) FCBytes() int64 {
	var b int64
	for _, f := range a.FCLayers {
		b += f.Bytes()
	}
	return b
}

// FCFraction returns the fc share of total storage.
func (a ArchSpec) FCFraction() float64 {
	return float64(a.FCBytes()) / float64(a.TotalBytes)
}

// PaperTable1 returns the four architectures with the paper's published
// dimensions (Table 1 of the paper).
func PaperTable1() []ArchSpec {
	// The paper reports sizes in decimal megabytes (e.g. AlexNet's fc layers
	// are 234.5 MB = 58.6 M weights × 4 bytes / 10⁶).
	mb := func(x float64) int64 { return int64(x * 1e6) }
	lenet300FC := []FCSpec{
		{Name: "ip1", Rows: 300, Cols: 784},
		{Name: "ip2", Rows: 100, Cols: 300},
		{Name: "ip3", Rows: 10, Cols: 100},
	}
	// LeNet-300-100 has no conv layers, so its total size is exactly its fc
	// weight storage (the paper reports the fc share as 100%).
	var lenet300Total int64
	for _, f := range lenet300FC {
		lenet300Total += f.Bytes()
	}
	return []ArchSpec{
		{
			Name:       "LeNet-300-100",
			ConvLayers: 0,
			FCLayers:   lenet300FC,
			TotalBytes: lenet300Total,
			ScaledName: LeNet300,
		},
		{
			Name:       "LeNet-5",
			ConvLayers: 3,
			FCLayers: []FCSpec{
				{Name: "ip1", Rows: 500, Cols: 800},
				{Name: "ip2", Rows: 10, Cols: 500},
			},
			TotalBytes: mb(1.7),
			ScaledName: LeNet5,
		},
		{
			Name:       "AlexNet",
			ConvLayers: 5,
			FCLayers: []FCSpec{
				{Name: "fc6", Rows: 4096, Cols: 9216},
				{Name: "fc7", Rows: 4096, Cols: 4096},
				{Name: "fc8", Rows: 1000, Cols: 4096},
			},
			TotalBytes: mb(243.9),
			ScaledName: AlexNetS,
		},
		{
			Name:       "VGG-16",
			ConvLayers: 13,
			FCLayers: []FCSpec{
				{Name: "fc6", Rows: 4096, Cols: 25088},
				{Name: "fc7", Rows: 4096, Cols: 4096},
				{Name: "fc8", Rows: 1000, Cols: 4096},
			},
			TotalBytes: mb(553.4),
			ScaledName: VGG16S,
		},
	}
}
