// Package models builds the four evaluation networks of the paper —
// LeNet-300-100, LeNet-5, AlexNet, and VGG-16 — plus the synthetic datasets
// they train on, and carries the analytic full-scale architecture table
// (paper Table 1).
//
// The two LeNets are built at their published fc dimensions (ip1 300×784
// etc.). AlexNet and VGG-16 are built as faithful scaled-down variants
// ("alexnet-s", "vgg16-s") that preserve the property DeepSZ exploits: a
// conv prefix that dominates compute and an fc suffix (fc6 ≫ fc7 ≫ fc8)
// that dominates storage. Full-scale sizes for Table 1 are computed
// analytically from the true architectures (see PaperTable1).
package models

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Names of the four networks.
const (
	LeNet300 = "lenet-300-100"
	LeNet5   = "lenet-5"
	AlexNetS = "alexnet-s"
	VGG16S   = "vgg16-s"
)

// All lists the four evaluation networks in paper order.
func All() []string { return []string{LeNet300, LeNet5, AlexNetS, VGG16S} }

// Build constructs an untrained network by name. The rng seeds weight
// initialisation.
func Build(name string, rng *tensor.RNG) (*nn.Network, error) {
	switch name {
	case LeNet300:
		return nn.NewNetwork(name,
			nn.NewFlatten("flat"),
			nn.NewDense("ip1", 784, 300, rng),
			nn.NewReLU("relu1"),
			nn.NewDense("ip2", 300, 100, rng),
			nn.NewReLU("relu2"),
			nn.NewDense("ip3", 100, 10, rng),
		), nil
	case LeNet5:
		// Caffe LeNet with the paper's fc dimensions (ip1 500×800, ip2
		// 10×500); conv1 is slimmed to 6 channels to fit the offline CPU
		// budget without changing the fc shapes DeepSZ compresses.
		return nn.NewNetwork(name,
			nn.NewConv2D("conv1", 1, 6, 5, 1, 0, rng), // 28→24
			nn.NewMaxPool2D("pool1", 2, 2),            // →12
			nn.NewReLU("relu1"),
			nn.NewConv2D("conv2", 6, 50, 5, 1, 0, rng), // →8
			nn.NewMaxPool2D("pool2", 2, 2),             // →4
			nn.NewReLU("relu2"),
			nn.NewFlatten("flat"),
			nn.NewDense("ip1", 800, 500, rng),
			nn.NewReLU("relu3"),
			nn.NewDense("ip2", 500, 10, rng),
		), nil
	case AlexNetS:
		// Scaled AlexNet: 5-layer topology collapsed to a 2-conv prefix on
		// 16×16×3 inputs; fc6 > fc7 > fc8 mirrors 151 MB / 67 MB / 16 MB.
		return nn.NewNetwork(name,
			nn.NewConv2D("conv1", 3, 8, 3, 1, 1, rng), // 16×16
			nn.NewMaxPool2D("pool1", 2, 2),            // →8
			nn.NewReLU("relu1"),
			nn.NewConv2D("conv2", 8, 16, 3, 1, 1, rng),
			nn.NewMaxPool2D("pool2", 2, 2), // →4
			nn.NewReLU("relu2"),
			nn.NewFlatten("flat"),             // 16·4·4 = 256
			nn.NewDense("fc6", 256, 256, rng), // 65 k weights
			nn.NewReLU("relu6"),
			nn.NewDense("fc7", 256, 128, rng), // 33 k
			nn.NewReLU("relu7"),
			nn.NewDense("fc8", 128, 16, rng), // 2 k
		), nil
	case VGG16S:
		// Scaled VGG-16: deeper conv stack, and an fc6 that dominates the fc
		// suffix even more strongly than AlexNet's (411 MB vs 67 vs 16).
		return nn.NewNetwork(name,
			nn.NewConv2D("conv1_1", 3, 8, 3, 1, 1, rng),
			nn.NewReLU("relu1_1"),
			nn.NewConv2D("conv1_2", 8, 8, 3, 1, 1, rng),
			nn.NewMaxPool2D("pool1", 2, 2), // 16→8
			nn.NewReLU("relu1_2"),
			nn.NewConv2D("conv2_1", 8, 16, 3, 1, 1, rng),
			nn.NewReLU("relu2_1"),
			nn.NewConv2D("conv2_2", 16, 16, 3, 1, 1, rng),
			nn.NewMaxPool2D("pool2", 2, 2), // →4
			nn.NewReLU("relu2_2"),
			nn.NewFlatten("flat"),             // 256
			nn.NewDense("fc6", 256, 512, rng), // 131 k weights
			nn.NewReLU("relu6"),
			nn.NewDense("fc7", 512, 64, rng), // 33 k
			nn.NewReLU("relu7"),
			nn.NewDense("fc8", 64, 16, rng), // 1 k
		), nil
	}
	return nil, fmt.Errorf("models: unknown network %q", name)
}

// InputShape returns the per-example input shape a network expects
// (channels × height × width for the image networks).
func InputShape(name string) ([]int, error) {
	switch name {
	case LeNet300, LeNet5:
		return []int{1, 28, 28}, nil
	case AlexNetS, VGG16S:
		return []int{3, 16, 16}, nil
	}
	return nil, fmt.Errorf("models: unknown network %q", name)
}

// DataFor generates the train/test datasets a network evaluates on: synthetic
// MNIST for the LeNets, the synthetic 16×16×3 image task for the scaled
// ImageNet networks. Seeds are fixed per network for reproducibility.
func DataFor(name string, trainN, testN int) (train, test *dataset.Set, err error) {
	switch name {
	case LeNet300, LeNet5:
		return dataset.SynthMNIST(trainN, 1000), dataset.SynthMNIST(testN, 2000), nil
	case AlexNetS, VGG16S:
		train, test = dataset.SynthImagesSplit(trainN, testN, 16, 3, 16, 16, 3000)
		return train, test, nil
	}
	return nil, nil, fmt.Errorf("models: unknown network %q", name)
}

// trainBudget returns per-network training hyperparameters sized for the
// offline single-core environment.
type budget struct {
	trainN, testN int
	epochs        int
	lr            float32
}

func budgetFor(name string) budget {
	switch name {
	case LeNet300:
		return budget{trainN: 1200, testN: 600, epochs: 3, lr: 0.1}
	case LeNet5:
		return budget{trainN: 700, testN: 500, epochs: 3, lr: 0.05}
	case AlexNetS:
		return budget{trainN: 1200, testN: 600, epochs: 4, lr: 0.03}
	default: // VGG16S
		return budget{trainN: 1400, testN: 600, epochs: 6, lr: 0.04}
	}
}

// Trained bundles a trained network with its data and baseline accuracy.
type Trained struct {
	Net      *nn.Network
	Train    *dataset.Set
	Test     *dataset.Set
	Baseline nn.Accuracy
}

var (
	zooMu sync.Mutex
	zoo   = map[string]*Trained{}
)

// Pretrained returns a trained instance of the named network, training it on
// first use and caching it for the life of the process. Training is
// deterministic, so every caller sees the same weights.
func Pretrained(name string) (*Trained, error) {
	zooMu.Lock()
	defer zooMu.Unlock()
	if t, ok := zoo[name]; ok {
		return t, nil
	}
	b := budgetFor(name)
	rng := tensor.NewRNG(42)
	net, err := Build(name, rng)
	if err != nil {
		return nil, err
	}
	train, test, err := DataFor(name, b.trainN, b.testN)
	if err != nil {
		return nil, err
	}
	opt := nn.NewSGD(b.lr, 0.9, 1e-4)
	nn.Train(net, train, opt, nn.TrainConfig{Epochs: b.epochs, BatchSize: 32, LRDecay: 0.7}, rng)
	t := &Trained{Net: net, Train: train, Test: test}
	t.Baseline = net.Evaluate(test, 100)
	zoo[name] = t
	return t, nil
}

// ResetZoo clears the pretrained cache (test hook).
func ResetZoo() {
	zooMu.Lock()
	defer zooMu.Unlock()
	zoo = map[string]*Trained{}
}
