package deepcomp

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/prune"
	"repro/internal/tensor"
)

// prunedWeights makes a dense array with ~density fraction nonzero.
func prunedWeights(rng *tensor.RNG, n int, density float64) []float32 {
	w := make([]float32, n)
	for i := range w {
		if rng.Float64() < density {
			w[i] = float32(rng.NormFloat64() * 0.05)
		}
	}
	return w
}

func TestRoundTripPreservesSparsity(t *testing.T) {
	rng := tensor.NewRNG(1)
	dense := prunedWeights(rng, 20000, 0.1)
	c, err := CompressLayer(dense, Options{Bits: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(dense) {
		t.Fatalf("length %d, want %d", len(got), len(dense))
	}
	for i := range dense {
		if (dense[i] == 0) != (got[i] == 0) {
			t.Fatalf("sparsity pattern broken at %d: %v vs %v", i, dense[i], got[i])
		}
	}
}

func TestQuantizationErrorShrinksWithBits(t *testing.T) {
	rng := tensor.NewRNG(2)
	dense := prunedWeights(rng, 20000, 0.1)
	var prev = math.Inf(1)
	for _, bits := range []int{2, 5, 8} {
		c, err := CompressLayer(dense, Options{Bits: bits})
		if err != nil {
			t.Fatal(err)
		}
		e, err := c.MaxError(dense)
		if err != nil {
			t.Fatal(err)
		}
		if e > prev {
			t.Fatalf("bits=%d: error %v grew from %v", bits, e, prev)
		}
		prev = e
	}
	// 2-bit quantization of gaussian weights has large error (no bound).
	c2, _ := CompressLayer(dense, Options{Bits: 2})
	if e, _ := c2.MaxError(dense); e < 0.01 {
		t.Fatalf("2-bit quantization suspiciously accurate: %v", e)
	}
}

func TestCompressionRatioAt5Bits(t *testing.T) {
	rng := tensor.NewRNG(3)
	dense := prunedWeights(rng, 50000, 0.09)
	c, err := CompressLayer(dense, Options{Bits: 5})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(4*len(dense)) / float64(c.Bytes())
	// Deep Compression reaches ~30–40× on 9 %-pruned fc layers.
	if ratio < 20 {
		t.Fatalf("ratio %.1f, want ≥20", ratio)
	}
	// And it must beat raw CSR.
	sp := prune.Encode(dense)
	if c.Bytes() >= sp.Bytes() {
		t.Fatalf("quantized size %d not below CSR %d", c.Bytes(), sp.Bytes())
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	rng := tensor.NewRNG(4)
	dense := prunedWeights(rng, 5000, 0.12)
	c, _ := CompressLayer(dense, Options{Bits: 4})
	blob := c.Marshal()
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != c.N || got.Bits != c.Bits || got.Entries != c.Entries {
		t.Fatal("header mismatch")
	}
	if !bytes.Equal(got.CodeBlob, c.CodeBlob) || !bytes.Equal(got.IndexBlob, c.IndexBlob) {
		t.Fatal("blob mismatch")
	}
	d1, _ := c.Decompress()
	d2, err := got.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("decompress mismatch after round trip")
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	rng := tensor.NewRNG(5)
	c, _ := CompressLayer(prunedWeights(rng, 1000, 0.1), Options{Bits: 4})
	blob := c.Marshal()
	if _, err := Unmarshal(blob[:8]); err == nil {
		t.Fatal("expected error for short blob")
	}
	if _, err := Unmarshal(blob[:len(blob)-3]); err == nil {
		t.Fatal("expected error for truncated blob")
	}
}

func TestInvalidOptions(t *testing.T) {
	for _, bits := range []int{0, -1, 17} {
		if _, err := CompressLayer([]float32{1}, Options{Bits: bits}); err == nil {
			t.Fatalf("expected error for bits=%d", bits)
		}
	}
}

func TestAllZeroLayer(t *testing.T) {
	c, err := CompressLayer(make([]float32, 100), Options{Bits: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatal("all-zero layer must decode to zeros")
		}
	}
}

func TestLongGapsPreserved(t *testing.T) {
	dense := make([]float32, 2000)
	dense[0] = 0.5
	dense[1999] = -0.5
	c, err := CompressLayer(dense, Options{Bits: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == 0 || got[1999] == 0 {
		t.Fatal("endpoints lost")
	}
	for i := 1; i < 1999; i++ {
		if got[i] != 0 {
			t.Fatalf("spurious weight at %d", i)
		}
	}
}
