// Package deepcomp implements the Deep Compression baseline (Han, Mao &
// Dally, ICLR 2016) the paper compares against: pruning (shared with
// DeepSZ), k-means weight sharing with a 2^bits codebook, and Huffman coding
// of both the cluster indices and the sparse position deltas.
package deepcomp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/huffman"
	"repro/internal/prune"
)

// Options configures the quantizer.
type Options struct {
	// Bits is the codebook width (Deep Compression uses 5 for fc layers);
	// the codebook has 2^Bits entries. Must be in [1, 16].
	Bits int
	// KMeansIters bounds Lloyd iterations (default 15).
	KMeansIters int
}

// ErrCorrupt is returned for structurally invalid blobs.
var ErrCorrupt = errors.New("deepcomp: corrupt stream")

// maxDenseLen bounds the dense length accepted from serialized headers
// (2^31 weights = 8 GiB dense, far beyond any fc layer).
const maxDenseLen = 1 << 31

// Compressed is one fc layer encoded by Deep Compression.
type Compressed struct {
	N         int // dense length
	Bits      int
	Codebook  []float32
	CodeBlob  []byte // Huffman-coded cluster indices (one per sparse entry)
	IndexBlob []byte // Huffman-coded position deltas
	Entries   int    // sparse entries (incl. padding)
}

// CompressLayer encodes a pruned dense weight array.
func CompressLayer(dense []float32, opts Options) (*Compressed, error) {
	if opts.Bits < 1 || opts.Bits > 16 {
		return nil, fmt.Errorf("deepcomp: bits %d out of [1,16]", opts.Bits)
	}
	if opts.KMeansIters <= 0 {
		opts.KMeansIters = 15
	}
	sp := prune.Encode(dense)
	k := 1 << opts.Bits

	// Cluster the real (nonzero) weights; padding entries keep a dedicated
	// zero code so reconstruction preserves them exactly.
	var nz []float32
	for _, v := range sp.Data {
		if v != 0 {
			nz = append(nz, v)
		}
	}
	centroids, assign, err := cluster.KMeans1D(nz, k-1, opts.KMeansIters)
	if err != nil {
		return nil, err
	}
	// Code 0 = padding/zero; codes 1..k-1 = centroids.
	codes := make([]uint32, len(sp.Data))
	ni := 0
	for i, v := range sp.Data {
		if v == 0 {
			codes[i] = 0
		} else {
			codes[i] = assign[ni] + 1
			ni++
		}
	}
	idxSyms := make([]uint32, len(sp.Index))
	for i, d := range sp.Index {
		idxSyms[i] = uint32(d)
	}
	return &Compressed{
		N:         sp.N,
		Bits:      opts.Bits,
		Codebook:  centroids,
		CodeBlob:  huffman.Encode(codes),
		IndexBlob: huffman.Encode(idxSyms),
		Entries:   len(sp.Data),
	}, nil
}

// Bytes returns the compressed storage: both Huffman blobs plus the
// codebook.
func (c *Compressed) Bytes() int {
	return len(c.CodeBlob) + len(c.IndexBlob) + 4*len(c.Codebook) + 16 // header fields
}

// Decompress reconstructs the dense weight array (each nonzero weight
// replaced by its centroid).
func (c *Compressed) Decompress() ([]float32, error) {
	codes, err := huffman.Decode(c.CodeBlob)
	if err != nil {
		return nil, fmt.Errorf("deepcomp: codes: %w", err)
	}
	idxSyms, err := huffman.Decode(c.IndexBlob)
	if err != nil {
		return nil, fmt.Errorf("deepcomp: indices: %w", err)
	}
	if len(codes) != len(idxSyms) || len(codes) != c.Entries {
		return nil, fmt.Errorf("%w: entry count mismatch", ErrCorrupt)
	}
	dense := make([]float32, c.N)
	pos := -1
	for i, d := range idxSyms {
		if d > 255 {
			return nil, fmt.Errorf("%w: index delta %d", ErrCorrupt, d)
		}
		pos += int(d)
		code := codes[i]
		if code == 0 {
			continue // padding / zero
		}
		if int(code-1) >= len(c.Codebook) {
			return nil, fmt.Errorf("%w: code %d beyond codebook", ErrCorrupt, code)
		}
		if pos < 0 || pos >= c.N {
			return nil, fmt.Errorf("%w: position %d out of range", ErrCorrupt, pos)
		}
		dense[pos] = c.Codebook[code-1]
	}
	return dense, nil
}

// MaxError returns the largest reconstruction error against the original
// dense array (unbounded in general — Deep Compression has no error
// control; this is what Table 5 contrasts with SZ's bounds).
func (c *Compressed) MaxError(original []float32) (float64, error) {
	dec, err := c.Decompress()
	if err != nil {
		return 0, err
	}
	if len(dec) != len(original) {
		return 0, fmt.Errorf("deepcomp: length mismatch")
	}
	var m float64
	for i := range dec {
		if d := math.Abs(float64(dec[i]) - float64(original[i])); d > m {
			m = d
		}
	}
	return m, nil
}

// Marshal serializes the layer.
func (c *Compressed) Marshal() []byte {
	out := make([]byte, 0, c.Bytes()+32)
	out = binary.LittleEndian.AppendUint32(out, uint32(c.N))
	out = binary.LittleEndian.AppendUint32(out, uint32(c.Bits))
	out = binary.LittleEndian.AppendUint32(out, uint32(c.Entries))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(c.Codebook)))
	for _, v := range c.Codebook {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(c.CodeBlob)))
	out = append(out, c.CodeBlob...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(c.IndexBlob)))
	out = append(out, c.IndexBlob...)
	return out
}

// Unmarshal reverses Marshal.
func Unmarshal(blob []byte) (*Compressed, error) {
	if len(blob) < 16 {
		return nil, ErrCorrupt
	}
	c := &Compressed{
		N:       int(binary.LittleEndian.Uint32(blob[0:4])),
		Bits:    int(binary.LittleEndian.Uint32(blob[4:8])),
		Entries: int(binary.LittleEndian.Uint32(blob[8:12])),
	}
	// Forged headers must not drive huge allocations in Decompress.
	if c.N < 0 || c.N > maxDenseLen || c.Bits < 1 || c.Bits > 16 || c.Entries < 0 {
		return nil, fmt.Errorf("%w: implausible header", ErrCorrupt)
	}
	nCb := int(binary.LittleEndian.Uint32(blob[12:16]))
	off := 16
	if len(blob) < off+4*nCb+4 {
		return nil, ErrCorrupt
	}
	c.Codebook = make([]float32, nCb)
	for i := range c.Codebook {
		c.Codebook[i] = math.Float32frombits(binary.LittleEndian.Uint32(blob[off:]))
		off += 4
	}
	n := int(binary.LittleEndian.Uint32(blob[off:]))
	off += 4
	if len(blob) < off+n+4 {
		return nil, ErrCorrupt
	}
	c.CodeBlob = append([]byte(nil), blob[off:off+n]...)
	off += n
	n = int(binary.LittleEndian.Uint32(blob[off:]))
	off += 4
	if len(blob) < off+n {
		return nil, ErrCorrupt
	}
	c.IndexBlob = append([]byte(nil), blob[off:off+n]...)
	return c, nil
}
