package deepcomp

import (
	"testing"

	"repro/internal/tensor"
)

func TestUnmarshalSurvivesRandomCorruption(t *testing.T) {
	rng := tensor.NewRNG(9)
	c, err := CompressLayer(prunedWeights(rng, 3000, 0.1), Options{Bits: 5})
	if err != nil {
		t.Fatal(err)
	}
	blob := c.Marshal()
	for trial := 0; trial < 300; trial++ {
		bad := append([]byte(nil), blob...)
		for i := 0; i < 1+rng.Intn(12); i++ {
			p := rng.Intn(len(bad))
			bad[p] ^= 1 << rng.Intn(8)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			if cc, err := Unmarshal(bad); err == nil {
				_, _ = cc.Decompress()
			}
		}()
	}
}

func TestUnmarshalRejectsForgedHugeN(t *testing.T) {
	rng := tensor.NewRNG(10)
	c, _ := CompressLayer(prunedWeights(rng, 100, 0.1), Options{Bits: 4})
	blob := c.Marshal()
	blob[3] = 0xFF // N becomes ~4e9
	if _, err := Unmarshal(blob); err == nil {
		t.Fatal("expected rejection of forged dense length")
	}
}
