package deepcomp

import (
	"testing"

	"repro/internal/tensor"
)

// FuzzUnmarshal is the native-fuzzing counterpart of the corruption tests
// above: arbitrary bytes must be rejected or decompressed without panics
// or forged-header-driven huge allocations.
func FuzzUnmarshal(f *testing.F) {
	rng := tensor.NewRNG(22)
	for _, n := range []int{100, 3000} {
		c, err := CompressLayer(prunedWeights(rng, n, 0.1), Options{Bits: 5})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(c.Marshal())
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, blob []byte) {
		c, err := Unmarshal(blob)
		if err != nil {
			return
		}
		_, _ = c.Decompress()
	})
}
