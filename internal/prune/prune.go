// Package prune implements step 1 of DeepSZ: magnitude-threshold network
// pruning with mask retraining (the "Magnitude" method of Han et al. the
// paper builds on), plus the paper's two-array sparse representation
// (§3.2): a float32 data array and a uint8 index-delta array with the
// 255/zero-padding convention for long gaps.
package prune

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// MagnitudeMask returns a keep-mask retaining the keepRatio fraction of w
// with the largest magnitudes. Ties at the threshold are kept in index
// order until the quota is filled.
func MagnitudeMask(w []float32, keepRatio float64) []bool {
	if keepRatio < 0 || keepRatio > 1 {
		panic(fmt.Sprintf("prune: keep ratio %v out of [0,1]", keepRatio))
	}
	n := len(w)
	keep := int(float64(n)*keepRatio + 0.5)
	mask := make([]bool, n)
	if keep == 0 {
		return mask
	}
	if keep >= n {
		for i := range mask {
			mask[i] = true
		}
		return mask
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	abs := func(v float32) float32 {
		if v < 0 {
			return -v
		}
		return v
	}
	sort.Slice(idx, func(a, b int) bool { return abs(w[idx[a]]) > abs(w[idx[b]]) })
	for _, i := range idx[:keep] {
		mask[i] = true
	}
	return mask
}

// PaperRatios returns the per-layer pruning (keep) ratios the paper uses
// (Table 2), keyed by fc-layer name.
func PaperRatios(netName string) map[string]float64 {
	switch netName {
	case "lenet-300-100":
		return map[string]float64{"ip1": 0.08, "ip2": 0.09, "ip3": 0.26}
	case "lenet-5":
		return map[string]float64{"ip1": 0.08, "ip2": 0.19}
	case "alexnet-s", "alexnet":
		return map[string]float64{"fc6": 0.09, "fc7": 0.09, "fc8": 0.25}
	case "vgg16-s", "vgg-16":
		return map[string]float64{"fc6": 0.03, "fc7": 0.04, "fc8": 0.24}
	}
	return nil
}

// Network prunes every fc layer of net to the given keep ratios (layer name
// → ratio; layers without an entry keep defaultRatio) and installs the
// masks. It does not retrain; call Retrain afterwards.
func Network(net *nn.Network, ratios map[string]float64, defaultRatio float64) {
	for _, fc := range net.DenseLayers() {
		r, ok := ratios[fc.Name()]
		if !ok {
			r = defaultRatio
		}
		fc.W.Mask = MagnitudeMask(fc.W.W.Data, r)
		fc.W.ApplyMask()
	}
}

// NetworkAll prunes every weighted layer — conv included — to the given
// keep ratios. Layers without an entry keep defaultFC or defaultConv by
// kind; conv layers tolerate far less pruning than fc (Han et al. keep
// ~30–70 % of conv weights vs ~10 % of fc), hence the separate default.
// Whole-network compression (`-layers all`) needs the conv layers sparse:
// on a dense layer the two-array form costs 5 bytes per weight, more than
// the 4 the dense tensor costs.
func NetworkAll(net *nn.Network, ratios map[string]float64, defaultFC, defaultConv float64) {
	for _, cl := range net.CompressibleLayers() {
		r, ok := ratios[cl.Name()]
		if !ok {
			if cl.Kind() == nn.KindConv {
				r = defaultConv
			} else {
				r = defaultFC
			}
		}
		p := cl.WeightParam()
		p.Mask = MagnitudeMask(p.W.Data, r)
		p.ApplyMask()
	}
}

// Retrain runs mask-respecting SGD for the given number of epochs, restoring
// the accuracy lost to pruning ("magnitude threshold plus retraining").
func Retrain(net *nn.Network, ds *dataset.Set, epochs int, lr float32, rng *tensor.RNG) {
	opt := nn.NewSGD(lr, 0.9, 0)
	nn.Train(net, ds, opt, nn.TrainConfig{Epochs: epochs, BatchSize: 32}, rng)
}

// Sparse is the paper's two-array representation of a pruned layer: Data
// holds the nonzero float32 weights (with zero padding entries for long
// gaps) and Index holds 8-bit deltas between consecutive nonzero positions.
// When a gap exceeds 255, a padding pair (Index 255, Data 0) advances the
// cursor, exactly as described in §3.2 and in Deep Compression.
type Sparse struct {
	N     int // dense length
	Data  []float32
	Index []uint8
}

// Encode converts a dense weight array to the two-array representation.
func Encode(dense []float32) *Sparse {
	s := &Sparse{N: len(dense)}
	prev := -1
	for p, v := range dense {
		if v == 0 {
			continue
		}
		gap := p - prev
		for gap > 255 {
			s.Index = append(s.Index, 255)
			s.Data = append(s.Data, 0)
			gap -= 255
		}
		s.Index = append(s.Index, uint8(gap))
		s.Data = append(s.Data, v)
		prev = p
	}
	return s
}

// Decode reconstructs the dense array.
func (s *Sparse) Decode() ([]float32, error) {
	if len(s.Data) != len(s.Index) {
		return nil, fmt.Errorf("prune: data/index length mismatch (%d vs %d)", len(s.Data), len(s.Index))
	}
	dense := make([]float32, s.N)
	pos := -1
	for i, d := range s.Index {
		pos += int(d)
		if s.Data[i] == 0 {
			continue // padding entry
		}
		if pos < 0 || pos >= s.N {
			return nil, fmt.Errorf("prune: index %d out of range [0,%d)", pos, s.N)
		}
		dense[pos] = s.Data[i]
	}
	return dense, nil
}

// Bytes returns the storage of the representation: 32 bits per data entry
// plus 8 bits per index entry (the paper's 40 bits per nonzero weight).
func (s *Sparse) Bytes() int {
	return 4*len(s.Data) + len(s.Index)
}

// Nonzeros returns the number of real (non-padding) entries.
func (s *Sparse) Nonzeros() int {
	n := 0
	for _, v := range s.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// CompressionRatio returns the dense-to-sparse size ratio (the "real
// compression ratio after pruning" the paper distinguishes from the pruning
// ratio itself).
func (s *Sparse) CompressionRatio() float64 {
	return float64(4*s.N) / float64(s.Bytes())
}
