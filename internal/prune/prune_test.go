package prune

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestMagnitudeMaskKeepsLargest(t *testing.T) {
	w := []float32{0.1, -5, 0.01, 3, -0.2, 0.001, 2, -1}
	mask := MagnitudeMask(w, 0.5) // keep 4 of 8
	wantKept := map[int]bool{1: true, 3: true, 6: true, 7: true}
	for i, keep := range mask {
		if keep != wantKept[i] {
			t.Fatalf("mask[%d] = %v (w=%v)", i, keep, w[i])
		}
	}
}

func TestMagnitudeMaskEdgeRatios(t *testing.T) {
	w := []float32{1, 2, 3}
	all := MagnitudeMask(w, 1)
	none := MagnitudeMask(w, 0)
	for i := range w {
		if !all[i] {
			t.Fatal("ratio 1 must keep everything")
		}
		if none[i] {
			t.Fatal("ratio 0 must drop everything")
		}
	}
}

func TestMagnitudeMaskBadRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MagnitudeMask([]float32{1}, 1.5)
}

func TestMagnitudeMaskCount(t *testing.T) {
	rng := tensor.NewRNG(1)
	w := make([]float32, 10000)
	rng.FillNormal(w, 0, 1)
	mask := MagnitudeMask(w, 0.09)
	kept := 0
	for _, k := range mask {
		if k {
			kept++
		}
	}
	if kept != 900 {
		t.Fatalf("kept %d, want 900", kept)
	}
}

func TestSparseRoundTripSimple(t *testing.T) {
	dense := []float32{0, 0, 1.5, 0, 0, -2, 0, 0, 0, 3}
	s := Encode(dense)
	got, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense {
		if got[i] != dense[i] {
			t.Fatalf("decode[%d] = %v, want %v", i, got[i], dense[i])
		}
	}
	if s.Nonzeros() != 3 {
		t.Fatalf("Nonzeros = %d", s.Nonzeros())
	}
}

func TestSparseLongGapPadding(t *testing.T) {
	dense := make([]float32, 1000)
	dense[0] = 1
	dense[999] = 2 // gap of 999 needs padding entries
	s := Encode(dense)
	if len(s.Data) <= 2 {
		t.Fatal("expected padding entries for long gap")
	}
	// Padding entries must carry value 0 and index 255.
	pads := 0
	for i := range s.Data {
		if s.Data[i] == 0 {
			pads++
			if s.Index[i] != 255 {
				t.Fatalf("padding entry %d has index %d", i, s.Index[i])
			}
		}
	}
	if pads != 3 { // 999 = 3·255 + 234
		t.Fatalf("pads = %d, want 3", pads)
	}
	got, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[999] != 2 {
		t.Fatal("long-gap round trip failed")
	}
	for i := 1; i < 999; i++ {
		if got[i] != 0 {
			t.Fatalf("spurious nonzero at %d", i)
		}
	}
}

func TestSparseGapExactly255(t *testing.T) {
	dense := make([]float32, 300)
	dense[10] = 1
	dense[10+255] = 2
	s := Encode(dense)
	got, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got[10] != 1 || got[265] != 2 {
		t.Fatal("gap-255 round trip failed")
	}
}

func TestSparseAllZero(t *testing.T) {
	s := Encode(make([]float32, 50))
	if len(s.Data) != 0 {
		t.Fatal("all-zero input should produce empty arrays")
	}
	got, err := s.Decode()
	if err != nil || len(got) != 50 {
		t.Fatal("all-zero decode failed")
	}
}

func TestSparseBytesFormula(t *testing.T) {
	dense := []float32{1, 0, 2, 0, 3}
	s := Encode(dense)
	if s.Bytes() != 3*5 {
		t.Fatalf("Bytes = %d, want 15 (3 entries × 5 bytes)", s.Bytes())
	}
	// CSR ratio is below the naive 1/keep ratio because of the 40-bit cost.
	if r := s.CompressionRatio(); math.Abs(r-20.0/15.0) > 1e-9 {
		t.Fatalf("CompressionRatio = %v", r)
	}
}

func TestSparseDecodeMismatch(t *testing.T) {
	s := &Sparse{N: 10, Data: []float32{1}, Index: []uint8{1, 2}}
	if _, err := s.Decode(); err == nil {
		t.Fatal("expected error for mismatched arrays")
	}
	s2 := &Sparse{N: 2, Data: []float32{1, 2}, Index: []uint8{1, 200}}
	if _, err := s2.Decode(); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
}

func TestQuickSparseRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(2)
	f := func(seed uint32, density uint8) bool {
		n := 100 + int(seed%5000)
		dense := make([]float32, n)
		d := float64(density%40) / 100 // 0–39% density, incl. 0
		for i := range dense {
			if rng.Float64() < d {
				dense[i] = float32(rng.NormFloat64())
			}
		}
		s := Encode(dense)
		got, err := s.Decode()
		if err != nil || len(got) != n {
			return false
		}
		for i := range dense {
			if got[i] != dense[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkPruneAndRetrainRecoversAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	rng := tensor.NewRNG(3)
	net := nn.NewNetwork("mlp",
		nn.NewFlatten("flat"),
		nn.NewDense("ip1", 784, 64, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("ip2", 64, 10, rng),
	)
	train := dataset.SynthMNIST(1200, 20)
	test := dataset.SynthMNIST(400, 21)
	opt := nn.NewSGD(0.1, 0.9, 1e-4)
	nn.Train(net, train, opt, nn.TrainConfig{Epochs: 3, BatchSize: 32}, rng)
	before := net.Evaluate(test, 100)

	Network(net, map[string]float64{"ip1": 0.10, "ip2": 0.30}, 0.1)
	ip1 := net.DenseLayers()[0]
	if d := ip1.W.Density(); math.Abs(d-0.10) > 0.005 {
		t.Fatalf("ip1 density %.3f, want 0.10", d)
	}
	Retrain(net, train, 2, 0.05, rng)
	after := net.Evaluate(test, 100)

	// Pruned weights must still be zero after retraining.
	for i, keep := range ip1.W.Mask {
		if !keep && ip1.W.W.Data[i] != 0 {
			t.Fatal("pruned weight drifted during retraining")
		}
	}
	// The paper prunes "without loss of inference accuracy"; allow a small
	// slack for the tiny training budget.
	if after.Top1 < before.Top1-0.05 {
		t.Fatalf("pruning lost too much accuracy: %.3f → %.3f", before.Top1, after.Top1)
	}
}

func TestPaperRatiosCoverage(t *testing.T) {
	for _, name := range []string{"lenet-300-100", "lenet-5", "alexnet-s", "vgg16-s"} {
		r := PaperRatios(name)
		if len(r) < 2 {
			t.Fatalf("%s: missing ratios", name)
		}
		for layer, v := range r {
			if v <= 0 || v >= 1 {
				t.Fatalf("%s/%s: ratio %v", name, layer, v)
			}
		}
	}
	if PaperRatios("bogus") != nil {
		t.Fatal("unknown network should give nil")
	}
}
