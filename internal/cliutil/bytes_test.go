package cliutil

import (
	"math"
	"testing"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{in: "", want: 0},
		{in: "0", want: 0},
		{in: "8m", want: 8 << 20},
		{in: "2K", want: 2 << 10},
		{in: "1g", want: 1 << 30},
		{in: "-1", wantErr: true},
		{in: "9999999999g", wantErr: true},
		{in: "x", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if (err != nil) != c.wantErr || got != c.want && !c.wantErr {
			t.Fatalf("ParseBytes(%q) = %d, %v; want %d, err=%v", c.in, got, err, c.want, c.wantErr)
		}
	}
}

// TestParseBytesOverflowBoundary pins the int64 overflow guard at its
// exact edges per suffix: the largest count whose product still fits is
// accepted, one more is an error — never a silent negative wrap, which a
// budget flag downstream would read as "unlimited".
func TestParseBytesOverflowBoundary(t *testing.T) {
	cases := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		// No suffix: int64 range itself.
		{in: "9223372036854775807", want: math.MaxInt64},
		{in: "9223372036854775808", wantErr: true},
		// k = 2^10: MaxInt64/1024 = 9007199254740991.
		{in: "9007199254740991k", want: 9007199254740991 << 10},
		{in: "9007199254740992k", wantErr: true},
		// m = 2^20: MaxInt64/2^20 = 8796093022207.
		{in: "8796093022207m", want: 8796093022207 << 20},
		{in: "8796093022208m", wantErr: true},
		// g = 2^30: MaxInt64/2^30 = 8589934591.
		{in: "8589934591g", want: 8589934591 << 30},
		{in: "8589934592g", wantErr: true},
		{in: "8589934592G", wantErr: true}, // same guard on the upper-case suffix
		// Far past the boundary, and negative-with-suffix.
		{in: "99999999999999999999g", wantErr: true},
		{in: "-1g", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.wantErr {
			if err == nil {
				t.Fatalf("ParseBytes(%q) = %d, nil; want overflow error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Fatalf("ParseBytes(%q) = %d, %v; want %d, nil", c.in, got, err, c.want)
		}
		if got < 0 {
			t.Fatalf("ParseBytes(%q) = %d: negative wrap escaped the guard", c.in, got)
		}
	}
}
