package cliutil

import "testing"

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{in: "", want: 0},
		{in: "0", want: 0},
		{in: "8m", want: 8 << 20},
		{in: "2K", want: 2 << 10},
		{in: "1g", want: 1 << 30},
		{in: "-1", wantErr: true},
		{in: "9999999999g", wantErr: true},
		{in: "x", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if (err != nil) != c.wantErr || got != c.want && !c.wantErr {
			t.Fatalf("ParseBytes(%q) = %d, %v; want %d, err=%v", c.in, got, err, c.want, c.wantErr)
		}
	}
}
