package cliutil

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"time"
)

// NewHTTPServer wraps h with the daemons' shared connection hygiene:
// slow or idle clients must not pin connection goroutines forever; the
// request-body limit lives in each daemon's predict handler.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// ServeUntilDone serves srv on ln until ctx is cancelled (or the server
// fails), then drains: the listener closes immediately — new
// connections are refused — while requests already accepted get up to
// drain to complete. Shared by deepszd and deepszgw so both daemons
// have the same (tested) shutdown contract.
func ServeUntilDone(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errCh := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	slog.Info("shutting down", "drain", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
