package cliutil

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

// SetupSlog builds the daemons' shared logger from the -log-level and
// -log-format flag values and installs it as slog's default, so library
// code that logs via slog.Default() (and legacy log.Printf callers,
// which slog redirects) all land in one stream with one format.
//
// level is one of debug, info, warn, error; format is text or json
// (json is the shape log shippers want, text is for humans at a
// terminal). Both are matched case-insensitively via slog's own
// unmarshalling where possible.
func SetupSlog(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch format {
	case "text", "":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	return logger, nil
}

// StartPprof serves net/http/pprof on its own listener and mux, so
// profiling never shares a port (or a mux, or an accidental route) with
// the public API. It returns the bound address ("" when addr is empty —
// profiling stays off unless asked for). The server lives until the
// process exits; profiling endpoints have no graceful-shutdown story to
// honour.
func StartPprof(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("pprof listen: %w", err)
	}
	srv := &http.Server{
		Handler: mux,
		// Profile captures run for their requested duration (30s default
		// for CPU profiles), so these bounds stay generous.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
