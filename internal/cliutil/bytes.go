// Package cliutil holds the small pieces the command-line daemons
// share — flag syntax and HTTP-server scaffolding — so deepszd and
// deepszgw cannot drift apart on the behaviour they both advertise.
package cliutil

import (
	"fmt"
	"math"
	"strconv"
)

// ParseBytes parses a byte count with an optional k/m/g suffix
// (base 1024). The empty string is 0.
func ParseBytes(v string) (int64, error) {
	if v == "" {
		return 0, nil
	}
	mult := int64(1)
	switch v[len(v)-1] {
	case 'k', 'K':
		mult, v = 1<<10, v[:len(v)-1]
	case 'm', 'M':
		mult, v = 1<<20, v[:len(v)-1]
	case 'g', 'G':
		mult, v = 1<<30, v[:len(v)-1]
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 || n > math.MaxInt64/mult {
		// A negative or overflowing size would read as "unlimited"
		// downstream — the opposite of what the operator asked for.
		return 0, fmt.Errorf("bad byte size %q", v)
	}
	return n * mult, nil
}
