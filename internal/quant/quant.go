// Package quant implements the error-controlled linear-scaling quantization
// at the heart of SZ (Tao et al., IPDPS'17): prediction residuals are mapped
// to integer codes such that reconstruction error never exceeds the error
// bound, with an escape code for residuals outside the representable range.
package quant

// Quantizer maps residuals (value − prediction) to integer codes with a
// guaranteed |reconstructed − value| ≤ ErrorBound for quantized points.
//
// Codes are laid out as in SZ: code 0 is the escape ("unpredictable") marker;
// quantized residuals map to [1, 2*Radius-1] centred on Radius.
type Quantizer struct {
	// ErrorBound is the absolute error bound (> 0).
	ErrorBound float64
	// Radius is half the number of quantization intervals. The
	// representable residual range is ±(Radius−1)·2·ErrorBound.
	Radius int
}

// New returns a Quantizer with the given error bound and interval radius.
// SZ's default capacity of 65536 intervals corresponds to radius 32768.
func New(errorBound float64, radius int) Quantizer {
	if errorBound <= 0 {
		panic("quant: error bound must be positive")
	}
	if radius < 2 {
		panic("quant: radius must be at least 2")
	}
	return Quantizer{ErrorBound: errorBound, Radius: radius}
}

// Encode quantizes residual = value − pred. ok is false when the residual
// falls outside the representable range (the caller must store the value
// verbatim and emit code 0). When ok, code is in [1, 2*Radius) and recon is
// the reconstructed value (pred + dequantized residual), guaranteed within
// ErrorBound of value.
func (q Quantizer) Encode(value, pred float64) (code uint32, recon float64, ok bool) {
	diff := value - pred
	step := 2 * q.ErrorBound
	var k int
	if diff >= 0 {
		k = int(diff/step + 0.5)
	} else {
		k = -int(-diff/step + 0.5)
	}
	if k <= -q.Radius || k >= q.Radius {
		return 0, 0, false
	}
	recon = pred + float64(k)*step
	// Guard against floating-point rounding pushing the reconstruction just
	// outside the bound; fall back to escape in that case.
	if d := recon - value; d > q.ErrorBound || d < -q.ErrorBound {
		return 0, 0, false
	}
	return uint32(k + q.Radius), recon, true
}

// Decode reconstructs a value from a non-escape code and the prediction.
func (q Quantizer) Decode(code uint32, pred float64) float64 {
	k := int(code) - q.Radius
	return pred + float64(k)*2*q.ErrorBound
}

// IsEscape reports whether code is the escape marker.
func IsEscape(code uint32) bool { return code == 0 }
