package quant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeWithinBound(t *testing.T) {
	q := New(1e-3, 32768)
	cases := []struct{ value, pred float64 }{
		{0.5, 0.49}, {0.5, 0.5}, {-0.3, 0.3}, {1e-6, 0}, {-1e-6, 0},
		{0.123456, 0.123}, {7.5, 7.0},
	}
	for _, c := range cases {
		code, recon, ok := q.Encode(c.value, c.pred)
		if !ok {
			t.Fatalf("Encode(%v,%v) escaped unexpectedly", c.value, c.pred)
		}
		if IsEscape(code) {
			t.Fatal("ok encode returned escape code")
		}
		if math.Abs(recon-c.value) > q.ErrorBound {
			t.Fatalf("recon error %v exceeds bound", math.Abs(recon-c.value))
		}
		if got := q.Decode(code, c.pred); got != recon {
			t.Fatalf("Decode = %v, want %v", got, recon)
		}
	}
}

func TestEscapeOnLargeResidual(t *testing.T) {
	q := New(1e-4, 256)
	// Residual range is ±(255)·2e-4 ≈ ±0.051; a residual of 1 must escape.
	if _, _, ok := q.Encode(1.0, 0.0); ok {
		t.Fatal("large residual should escape")
	}
	if _, _, ok := q.Encode(-1.0, 0.0); ok {
		t.Fatal("large negative residual should escape")
	}
}

func TestCodeRange(t *testing.T) {
	q := New(0.01, 128)
	for _, v := range []float64{-2, -1, -0.5, 0, 0.5, 1, 2} {
		code, _, ok := q.Encode(v, 0)
		if !ok {
			continue
		}
		if code < 1 || code >= uint32(2*q.Radius) {
			t.Fatalf("code %d out of range for v=%v", code, v)
		}
	}
}

func TestSymmetry(t *testing.T) {
	q := New(0.01, 1024)
	cPos, _, okP := q.Encode(0.255, 0)
	cNeg, _, okN := q.Encode(-0.255, 0)
	if !okP || !okN {
		t.Fatal("unexpected escape")
	}
	if int(cPos)-q.Radius != -(int(cNeg) - q.Radius) {
		t.Fatalf("codes not symmetric: %d vs %d", cPos, cNeg)
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 100) },
		func() { New(-1, 100) },
		func() { New(1e-3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuickErrorBoundInvariant(t *testing.T) {
	q := New(1e-3, 32768)
	f := func(v, p float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.IsNaN(p) || math.IsInf(p, 0) {
			return true
		}
		// Keep magnitudes realistic for weights.
		v = math.Mod(v, 2)
		p = math.Mod(p, 2)
		code, recon, ok := q.Encode(v, p)
		if !ok {
			return true // escape path: caller stores verbatim
		}
		if math.Abs(recon-v) > q.ErrorBound {
			return false
		}
		return q.Decode(code, p) == recon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInverseOfEncodeIntervals(t *testing.T) {
	q := New(0.05, 64)
	// Every non-escape code must decode to pred + k*2eb exactly.
	for code := uint32(1); code < uint32(2*q.Radius); code++ {
		got := q.Decode(code, 1.0)
		want := 1.0 + float64(int(code)-q.Radius)*0.1
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("Decode(%d) = %v, want %v", code, got, want)
		}
	}
}
