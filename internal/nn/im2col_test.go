package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestForwardIm2colMatchesDirect(t *testing.T) {
	rng := tensor.NewRNG(1)
	cases := []struct{ inC, outC, k, stride, pad, h, w int }{
		{1, 1, 3, 1, 0, 8, 8},
		{3, 8, 3, 1, 1, 16, 16},
		{2, 4, 5, 2, 2, 13, 11},
		{6, 50, 5, 1, 0, 12, 12}, // LeNet-5 conv2 shape
	}
	for _, tc := range cases {
		c := NewConv2D("conv", tc.inC, tc.outC, tc.k, tc.stride, tc.pad, rng)
		x := tensor.New(3, tc.inC, tc.h, tc.w)
		rng.FillNormal(x.Data, 0, 1)
		direct := c.Forward(x, false)
		fast := c.ForwardIm2col(x)
		if !direct.SameShape(fast) {
			t.Fatalf("%+v: shape %v vs %v", tc, direct.Shape, fast.Shape)
		}
		for i := range direct.Data {
			if d := math.Abs(float64(direct.Data[i] - fast.Data[i])); d > 1e-4 {
				t.Fatalf("%+v: elem %d differs by %g", tc, i, d)
			}
		}
	}
}

func TestIm2colPaddingColumnsAreZero(t *testing.T) {
	rng := tensor.NewRNG(2)
	c := NewConv2D("conv", 1, 1, 3, 1, 1, rng)
	in := []float32{1, 2, 3, 4} // 2×2 image
	cols := make([]float32, 1*9*4)
	c.im2col(in, 2, 2, 2, 2, cols)
	// Top-left output position, kernel cell (0,0) reads (-1,-1) → 0.
	if cols[0] != 0 {
		t.Fatalf("padded cell should be 0, got %v", cols[0])
	}
	// Kernel centre (1,1) at output (0,0) reads input (0,0) = 1.
	if cols[(1*3+1)*4+0] != 1 {
		t.Fatalf("centre cell wrong: %v", cols[(1*3+1)*4+0])
	}
}

func TestLRNIdentityLikeForSmallActivations(t *testing.T) {
	// With AlexNet defaults and tiny activations the denominator ≈ k^β, so
	// LRN is close to a constant scaling.
	l := NewLRN("lrn", 0, 0, 0, 0)
	x := tensor.New(1, 4, 2, 2)
	x.Fill(1e-3)
	y := l.Forward(x, false)
	want := 1e-3 / math.Pow(2, 0.75)
	for _, v := range y.Data {
		if math.Abs(float64(v)-want) > 1e-9 {
			t.Fatalf("LRN small-signal output %v, want %v", v, want)
		}
	}
}

func TestLRNSuppressesStrongNeighbours(t *testing.T) {
	l := NewLRN("lrn", 3, 1.0, 0.75, 1.0)
	// Channel 1 has strong neighbours; channel 0 in a quiet region keeps
	// more of its value.
	x := tensor.New(1, 4, 1, 1)
	x.Set(1, 0, 0, 0, 0)
	x.Set(1, 0, 1, 0, 0)
	x.Set(10, 0, 2, 0, 0)
	y := l.Forward(x, false)
	if y.At(0, 1, 0, 0) >= y.At(0, 0, 0, 0) {
		t.Fatalf("channel next to a strong response must be suppressed more: %v vs %v",
			y.At(0, 1, 0, 0), y.At(0, 0, 0, 0))
	}
}

func TestLRNValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for even window")
		}
	}()
	NewLRN("lrn", 4, 0, 0, 0)
}

func TestLRNCloneAndRank(t *testing.T) {
	l := NewLRN("lrn", 5, 2e-4, 0.5, 1)
	c := CloneLayer(l).(*LRN)
	if c.Size != 5 || c.Alpha != 2e-4 || c.Beta != 0.5 || c.K != 1 {
		t.Fatalf("clone lost parameters: %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank-2 input")
		}
	}()
	l.Forward(tensor.New(1, 4), false)
}

func BenchmarkConvDirectVsIm2col(b *testing.B) {
	rng := tensor.NewRNG(3)
	c := NewConv2D("conv", 8, 16, 3, 1, 1, rng)
	x := tensor.New(16, 8, 16, 16)
	rng.FillNormal(x.Data, 0, 1)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Forward(x, false)
		}
	})
	b.Run("im2col", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.ForwardIm2col(x)
		}
	})
}
