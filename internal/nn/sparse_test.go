package nn

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/tensor"
)

// pruneTo zeroes all but roughly keep of the values, mimicking magnitude
// pruning's output shape without importing the prune package.
func pruneTo(rng *tensor.RNG, w []float32, keep float64) {
	gate := make([]float32, len(w))
	rng.FillUniform(gate, 0, 1)
	for i := range w {
		if float64(gate[i]) >= keep {
			w[i] = 0
		}
	}
}

func assertBitEqual(t *testing.T, got, want *tensor.Tensor, label string) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", label, got.Shape, want.Shape)
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d: %v (bits %x), want %v (bits %x)", label, i,
				got.Data[i], math.Float32bits(got.Data[i]),
				want.Data[i], math.Float32bits(want.Data[i]))
		}
	}
}

// TestDenseForwardSparseBitIdentical asserts the serving guarantee for fc
// layers: CSR forward output is bit-for-bit the dense ForwardWith output
// across densities, including an all-zero layer.
func TestDenseForwardSparseBitIdentical(t *testing.T) {
	rng := tensor.NewRNG(21)
	for _, density := range []float64{0, 0.05, 0.1, 0.5, 1} {
		d := NewDense("fc", 64, 32, rng)
		w := append([]float32(nil), d.W.W.Data...)
		pruneTo(rng, w, density)
		// Zero an output row entirely (all-zero-row case).
		for j := 0; j < d.In; j++ {
			w[j] = 0
		}
		bias := append([]float32(nil), d.B.W.Data...)
		rng.FillNormal(bias, 0, 1)
		x := tensor.New(5, 64)
		rng.FillNormal(x.Data, 0, 1)

		want := d.ForwardWith(x, w, bias)
		got := d.ForwardSparse(x, tensor.CSRFromDense(w, d.Out, d.In), bias)
		assertBitEqual(t, got, want, "fc with bias")

		wantNil := d.ForwardWith(x, w, nil)
		gotNil := d.ForwardSparse(x, tensor.CSRFromDense(w, d.Out, d.In), nil)
		assertBitEqual(t, gotNil, wantNil, "fc nil bias")
	}
}

// TestConvForwardSparseBitIdentical asserts the same for conv layers: the
// CSR im2col kernel must match the direct dense convolution bit-for-bit.
func TestConvForwardSparseBitIdentical(t *testing.T) {
	rng := tensor.NewRNG(22)
	cases := []struct{ inC, outC, k, stride, pad, h, w int }{
		{1, 1, 3, 1, 0, 8, 8},
		{3, 8, 3, 1, 1, 16, 16},
		{2, 4, 5, 2, 2, 13, 11},
	}
	for _, tc := range cases {
		for _, density := range []float64{0, 0.1, 0.35, 1} {
			c := NewConv2D("conv", tc.inC, tc.outC, tc.k, tc.stride, tc.pad, rng)
			w := append([]float32(nil), c.W.W.Data...)
			pruneTo(rng, w, density)
			bias := make([]float32, tc.outC)
			rng.FillNormal(bias, 0, 1)
			x := tensor.New(3, tc.inC, tc.h, tc.w)
			rng.FillNormal(x.Data, 0, 1)
			csr := tensor.CSRFromDense(w, tc.outC, tc.inC*tc.k*tc.k)

			want := c.ForwardWith(x, w, bias)
			got := c.ForwardSparse(x, csr, bias)
			assertBitEqual(t, got, want, "conv with bias")

			wantNil := c.ForwardWith(x, w, nil)
			gotNil := c.ForwardSparse(x, csr, nil)
			assertBitEqual(t, gotNil, wantNil, "conv nil bias")
		}
	}
}

// TestForwardWithProviderSparseMatchesDense runs the full provider-driven
// network forward once with dense weights and once with every layer in
// CSR form; the logits must be bit-identical.
func TestForwardWithProviderSparseMatchesDense(t *testing.T) {
	rng := tensor.NewRNG(23)
	net := NewNetwork("sparse-mlp",
		NewConv2D("conv1", 1, 4, 3, 1, 1, rng),
		NewReLU("relu0"),
		NewFlatten("flat"),
		NewDense("ip1", 4*6*6, 16, rng),
		NewReLU("relu1"),
		NewDense("ip2", 16, 4, rng),
	)
	p := &mapProvider{w: map[string][]float32{}, b: map[string][]float32{}, shape: map[string][]int{}}
	for _, cl := range net.CompressibleLayers() {
		w := append([]float32(nil), cl.Weights()...)
		pruneTo(rng, w, 0.2)
		cl.SetWeights(w)
		p.w[cl.Name()] = w
		p.b[cl.Name()] = append([]float32(nil), cl.BiasParam().W.Data...)
		p.shape[cl.Name()] = cl.WeightShape()
	}
	x := tensor.New(2, 1, 6, 6)
	rng.FillNormal(x.Data, 0, 1)

	clone := net.Clone()
	StripWeights(clone, nil)
	dense, err := clone.ForwardWithProvider(x, p)
	if err != nil {
		t.Fatal(err)
	}
	p.sparse = true
	sparse, err := clone.ForwardWithProvider(x, p)
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqual(t, sparse, dense, "provider sparse vs dense")
	if want := net.Forward(x, false); true {
		assertBitEqual(t, sparse, want, "provider sparse vs layer-owned")
	}
	if int(p.released.Load()) != 2*len(net.CompressibleLayers()) {
		t.Fatalf("released %d times, want %d", p.released.Load(), 2*len(net.CompressibleLayers()))
	}
}

// TestForwardSparseValidation checks the shape panics fire for malformed
// CSR weights instead of corrupting memory.
func TestForwardSparseValidation(t *testing.T) {
	rng := tensor.NewRNG(24)
	d := NewDense("fc", 8, 4, rng)
	x := tensor.New(1, 8)
	bad := tensor.CSRFromDense(make([]float32, 12), 4, 3) // wrong cols
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong CSR shape")
		}
	}()
	d.ForwardSparse(x, bad, nil)
}

// allocBytesPerOp measures steady-state heap bytes per call of fn on the
// calling goroutine (TotalAlloc is monotonic, so GC timing cannot skew
// it).
func allocBytesPerOp(fn func()) uint64 {
	const iters = 200
	fn() // warm pools and lazy state
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < iters; i++ {
		fn()
	}
	runtime.ReadMemStats(&m1)
	return (m1.TotalAlloc - m0.TotalAlloc) / iters
}

// TestForwardIm2colAllocsPooled locks in the im2col scratch pooling: a
// steady-state single-image forward must not re-allocate the unrolled
// column matrix, the call's dominant transient before pooling (36 KB here
// vs an 8 KB output tensor).
func TestForwardIm2colAllocsPooled(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector; byte budgets would flake")
	}
	rng := tensor.NewRNG(25)
	c := NewConv2D("conv", 4, 8, 3, 1, 1, rng)
	x := tensor.New(1, 4, 16, 16) // batch 1 → ParallelFor runs inline
	rng.FillNormal(x.Data, 0, 1)
	// Budget: the 8 KB output plus headers. The unpooled cols buffer
	// (4·3·3·16·16 floats = 36 KB) busts it immediately.
	const budget = 16 << 10
	if got := allocBytesPerOp(func() { c.ForwardIm2col(x) }); got > budget {
		t.Fatalf("ForwardIm2col allocates %d B/op (budget %d); cols pooling regressed", got, budget)
	}
	sp := tensor.CSRFromDense(c.W.W.Data, 8, 4*3*3)
	if got := allocBytesPerOp(func() { c.ForwardSparse(x, sp, nil) }); got > budget {
		t.Fatalf("ForwardSparse allocates %d B/op (budget %d); cols pooling regressed", got, budget)
	}
}
