package nn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Weight-file format: a flat list of named parameter records (raw float32
// data plus an optional pruning-mask bitset), matched to a freshly built
// network by parameter name. Used by cmd/deepsz to pass trained models
// between invocations.

const (
	weightsMagic   = 0x4E4E5747 // "NNWG"
	weightsVersion = 1
)

// ErrWeightsCorrupt is returned for structurally invalid weight files.
var ErrWeightsCorrupt = errors.New("nn: corrupt weights file")

// SaveWeights writes every parameter of net to w.
func SaveWeights(w io.Writer, net *Network) error {
	bw := bufio.NewWriter(w)
	params := net.Params()
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], weightsMagic)
	hdr[4] = weightsVersion
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(params)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(p.W.Data)))
		if _, err := bw.Write(n[:]); err != nil {
			return err
		}
		for _, v := range p.W.Data {
			binary.LittleEndian.PutUint32(n[:], math.Float32bits(v))
			if _, err := bw.Write(n[:]); err != nil {
				return err
			}
		}
		hasMask := byte(0)
		if p.Mask != nil {
			hasMask = 1
		}
		if err := bw.WriteByte(hasMask); err != nil {
			return err
		}
		if p.Mask != nil {
			bits := make([]byte, (len(p.Mask)+7)/8)
			for i, keep := range p.Mask {
				if keep {
					bits[i/8] |= 1 << (7 - i%8)
				}
			}
			if _, err := bw.Write(bits); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeString(w io.Writer, s string) error {
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(s)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// LoadWeights reads a weight file and installs the values into net's
// parameters, matched by name. Every parameter in the file must exist in
// net with the same element count.
func LoadWeights(r io.Reader, net *Network) error {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrWeightsCorrupt, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != weightsMagic {
		return fmt.Errorf("%w: bad magic", ErrWeightsCorrupt)
	}
	if hdr[4] != weightsVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrWeightsCorrupt, hdr[4])
	}
	count := int(binary.LittleEndian.Uint32(hdr[8:12]))
	byName := map[string]*Param{}
	for _, p := range net.Params() {
		byName[p.Name] = p
	}
	var buf [4]byte
	for i := 0; i < count; i++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return fmt.Errorf("%w: %v", ErrWeightsCorrupt, err)
		}
		n := int(binary.LittleEndian.Uint32(buf[:]))
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("nn: weights file has unknown parameter %q", name)
		}
		if len(p.W.Data) != n {
			return fmt.Errorf("nn: parameter %q has %d elements in file, %d in network", name, n, len(p.W.Data))
		}
		for j := 0; j < n; j++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return fmt.Errorf("%w: %v", ErrWeightsCorrupt, err)
			}
			p.W.Data[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))
		}
		hasMask, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrWeightsCorrupt, err)
		}
		switch hasMask {
		case 0:
			p.Mask = nil
		case 1:
			bits := make([]byte, (n+7)/8)
			if _, err := io.ReadFull(br, bits); err != nil {
				return fmt.Errorf("%w: %v", ErrWeightsCorrupt, err)
			}
			mask := make([]bool, n)
			for j := range mask {
				mask[j] = bits[j/8]&(1<<(7-j%8)) != 0
			}
			p.Mask = mask
		default:
			return fmt.Errorf("%w: bad mask flag %d", ErrWeightsCorrupt, hasMask)
		}
	}
	return nil
}

func readString(r io.Reader) (string, error) {
	var n [2]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", fmt.Errorf("%w: %v", ErrWeightsCorrupt, err)
	}
	b := make([]byte, binary.LittleEndian.Uint16(n[:]))
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("%w: %v", ErrWeightsCorrupt, err)
	}
	return string(b), nil
}
