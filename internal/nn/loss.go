package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// [N, classes] against integer labels, and the gradient ∂L/∂logits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy logits shape %v", logits.Shape))
	}
	n, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d logits rows", len(labels), n))
	}
	grad = tensor.New(n, c)
	var total float64
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		g := grad.Data[i*c : (i+1)*c]
		total += softmaxRow(row, g, labels[i], n)
	}
	return total / float64(n), grad
}

// softmaxRow fills g with the gradient for one example and returns its loss.
func softmaxRow(row, g []float32, label, batch int) float64 {
	if label < 0 || label >= len(row) {
		panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, len(row)))
	}
	maxv := row[0]
	for _, v := range row[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range row {
		sum += math.Exp(float64(v - maxv))
	}
	logSum := math.Log(sum)
	inv := 1 / float64(batch)
	for j, v := range row {
		p := math.Exp(float64(v-maxv)) / sum
		g[j] = float32(p * inv)
	}
	g[label] -= float32(inv)
	return logSum - float64(row[label]-maxv)
}

// Softmax returns the row-wise softmax probabilities of logits [N, classes].
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, c := logits.Shape[0], logits.Shape[1]
	out := tensor.New(n, c)
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		o := out.Data[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			o[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range o {
			o[j] *= inv
		}
	}
	return out
}
