package nn

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// Tests for the serving fast path added with the tiled kernels: fused
// bias+ReLU epilogues and pooled output buffers must be invisible in the
// output bits, across layer kinds, weight forms, and concurrent use.

// TestForwardInferenceFusedBitIdentical locks ForwardInference (pooled
// output, fused bias, optionally fused ReLU) to the unfused
// ForwardWith/ForwardSparse + ReLU-layer composition, bit for bit.
func TestForwardInferenceFusedBitIdentical(t *testing.T) {
	rng := tensor.NewRNG(31)
	relu := NewReLU("r")

	d := NewDense("fc", 48, 20, rng)
	wFC := append([]float32(nil), d.W.W.Data...)
	pruneTo(rng, wFC, 0.2)
	biasFC := append([]float32(nil), d.B.W.Data...)
	xFC := tensor.New(5, 48)
	rng.FillNormal(xFC.Data, 0, 1)
	csrFC := tensor.CSRFromDense(wFC, d.Out, d.In)

	cv := NewConv2D("c1", 3, 6, 3, 1, 1, rng)
	wCV := append([]float32(nil), cv.W.W.Data...)
	pruneTo(rng, wCV, 0.3)
	biasCV := append([]float32(nil), cv.B.W.Data...)
	xCV := tensor.New(2, 3, 9, 9)
	rng.FillNormal(xCV.Data, 0, 1)
	csrCV := tensor.CSRFromDense(wCV, cv.OutC, cv.InC*cv.K*cv.K)

	cases := []struct {
		name  string
		layer Compressible
		lw    LayerWeights
		x     *tensor.Tensor
		ref   func() *tensor.Tensor
	}{
		{"fc/dense", d, LayerWeights{Dense: wFC, Bias: biasFC}, xFC,
			func() *tensor.Tensor { return d.ForwardWith(xFC, wFC, biasFC) }},
		{"fc/sparse", d, LayerWeights{Sparse: csrFC, Bias: biasFC}, xFC,
			func() *tensor.Tensor { return d.ForwardSparse(xFC, csrFC, biasFC) }},
		{"fc/nil-bias", d, LayerWeights{Dense: wFC}, xFC,
			func() *tensor.Tensor { return d.ForwardWith(xFC, wFC, nil) }},
		{"conv/dense", cv, LayerWeights{Dense: wCV, Bias: biasCV}, xCV,
			func() *tensor.Tensor { return cv.ForwardWith(xCV, wCV, biasCV) }},
		{"conv/sparse", cv, LayerWeights{Sparse: csrCV, Bias: biasCV}, xCV,
			func() *tensor.Tensor { return cv.ForwardSparse(xCV, csrCV, biasCV) }},
		{"conv/nil-bias", cv, LayerWeights{Dense: wCV}, xCV,
			func() *tensor.Tensor { return cv.ForwardWith(xCV, wCV, nil) }},
	}
	for _, tc := range cases {
		plain := tc.layer.ForwardInference(tc.x, tc.lw, false)
		assertBitEqual(t, plain, tc.ref(), tc.name+" unfused")
		fused := tc.layer.ForwardInference(tc.x, tc.lw, true)
		assertBitEqual(t, fused, relu.Forward(tc.ref(), false), tc.name+" fused ReLU")
		tensor.Recycle(plain)
		tensor.Recycle(fused)
	}
}

// fusedTestNet is a conv→relu→flatten→fc→relu→dropout→fc stack touching
// every recycle edge case: a fused ReLU skip, a Reshape view over a pooled
// buffer, and Dropout's inference pass-through.
func fusedTestNet(seed uint64) *Network {
	rng := tensor.NewRNG(seed)
	return NewNetwork("fused-net",
		NewConv2D("conv1", 1, 4, 3, 1, 1, rng),
		NewReLU("relu0"),
		NewFlatten("flat"),
		NewDense("ip1", 4*8*8, 16, rng),
		NewReLU("relu1"),
		NewDropout("drop1", 0.5, rng),
		NewDense("ip2", 16, 4, rng),
	)
}

func fusedTestProvider(net *Network, sparse bool) *mapProvider {
	p := &mapProvider{
		w:      map[string][]float32{},
		b:      map[string][]float32{},
		shape:  map[string][]int{},
		sparse: sparse,
	}
	for _, c := range net.CompressibleLayers() {
		w := append([]float32(nil), c.Weights()...)
		pruneTo(tensor.NewRNG(77), w, 0.3)
		p.w[c.Name()] = w
		p.b[c.Name()] = c.BiasParam().W.Data
		p.shape[c.Name()] = c.WeightShape()
	}
	return p
}

// TestProviderFusionRecyclingConcurrent hammers ForwardWithProvider from
// many goroutines over shared pooled buffers and asserts every result is
// bit-identical to a single-threaded reference — the test that would catch
// a recycled buffer being handed out while still referenced.
func TestProviderFusionRecyclingConcurrent(t *testing.T) {
	net := fusedTestNet(3)
	for _, sparse := range []bool{false, true} {
		p := fusedTestProvider(net, sparse)
		x := tensor.New(2, 1, 8, 8)
		tensor.NewRNG(13).FillNormal(x.Data, 0, 1)
		want, err := net.ForwardWithProvider(x, p)
		if err != nil {
			t.Fatal(err)
		}

		const workers, iters = 8, 20
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Each goroutine needs its own clone: non-compressible
				// layers may touch state, as ForwardWithProvider documents.
				cl := net.Clone()
				for it := 0; it < iters; it++ {
					got, err := cl.ForwardWithProvider(x, p)
					if err != nil {
						errs <- err
						return
					}
					for i := range want.Data {
						if got.Data[i] != want.Data[i] {
							errs <- fmt.Errorf("sparse=%v: output diverged at %d: %v vs %v",
								sparse, i, got.Data[i], want.Data[i])
							return
						}
					}
					tensor.Recycle(got)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// TestProviderForwardRecyclesIntermediates checks the steady-state alloc
// win: with fused epilogues and pooled buffers, a provider forward should
// allocate roughly the final output, not one tensor per layer. Skipped
// under the race detector, whose instrumentation inflates allocation.
func TestProviderForwardRecyclesIntermediates(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is skewed under -race")
	}
	rng := tensor.NewRNG(8)
	net := NewNetwork("alloc-mlp",
		NewDense("ip1", 256, 256, rng),
		NewReLU("r1"),
		NewDense("ip2", 256, 256, rng),
		NewReLU("r2"),
		NewDense("ip3", 256, 256, rng),
		NewReLU("r3"),
		NewDense("ip4", 256, 64, rng),
	)
	p := fusedTestProvider(net, false)
	x := tensor.New(8, 256)
	rng.FillNormal(x.Data, 0, 1)

	got := allocBytesPerOp(func() {
		y, err := net.ForwardWithProvider(x, p)
		if err != nil {
			panic(err)
		}
		tensor.Recycle(y)
	})
	// Unpooled, the 8×256 intermediates alone are 4×8 KiB plus ReLU
	// copies (~57 KiB/op). Pooled and fused, steady state is tensor
	// headers and closures only.
	const budget = 4 << 10
	if got > budget {
		t.Fatalf("provider forward allocates %d B/op, budget %d", got, budget)
	}
}
