package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Dense is a fully connected (fc / inner-product) layer: y = x·Wᵀ + b with
// W stored (out × in), the layout DeepSZ compresses.
type Dense struct {
	LayerName string
	In, Out   int
	W         *Param // weight matrix, shape [Out, In]
	B         *Param // bias vector, shape [Out]

	lastX *tensor.Tensor // cached input for backward
}

// NewDense creates a Dense layer with He-initialised weights.
func NewDense(name string, in, out int, rng *tensor.RNG) *Dense {
	w := tensor.New(out, in)
	std := math.Sqrt(2.0 / float64(in))
	rng.FillNormal(w.Data, 0, std)
	b := tensor.New(out)
	return &Dense{
		LayerName: name,
		In:        in,
		Out:       out,
		W:         &Param{Name: name + ".W", W: w, Grad: tensor.New(out, in)},
		B:         &Param{Name: name + ".b", W: b, Grad: tensor.New(out)},
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.LayerName }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Forward implements Layer. x must have shape [N, In].
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N, %d]", d.LayerName, x.Shape, d.In))
	}
	if train {
		d.lastX = x
	}
	y := tensor.MatMulTransB(x, d.W.W)
	n := x.Shape[0]
	bias := d.B.W.Data
	for i := 0; i < n; i++ {
		row := y.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += bias[j]
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.lastX == nil {
		panic("nn: Dense.Backward without Forward(train=true)")
	}
	// dW += doutᵀ · x ; db += column sums ; dx = dout · W
	dW := tensor.MatMulTransA(dout, d.lastX)
	d.W.Grad.AddInPlace(dW)
	n := dout.Shape[0]
	db := d.B.Grad.Data
	for i := 0; i < n; i++ {
		row := dout.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			db[j] += row[j]
		}
	}
	return tensor.MatMul(dout, d.W.W)
}

// SetWeights replaces the weight matrix data (used when reconstructing a
// layer from decompressed weights). The slice is copied.
func (d *Dense) SetWeights(w []float32) {
	if len(w) != len(d.W.W.Data) {
		panic(fmt.Sprintf("nn: %s: SetWeights got %d values, want %d", d.LayerName, len(w), len(d.W.W.Data)))
	}
	copy(d.W.W.Data, w)
}

// Weights returns the live weight slice (not a copy).
func (d *Dense) Weights() []float32 { return d.W.W.Data }

// Kind implements Compressible.
func (d *Dense) Kind() LayerKind { return KindDense }

// WeightShape implements Compressible: [Out, In].
func (d *Dense) WeightShape() []int { return []int{d.Out, d.In} }

// WeightParam implements Compressible.
func (d *Dense) WeightParam() *Param { return d.W }

// BiasParam implements Compressible.
func (d *Dense) BiasParam() *Param { return d.B }
