package nn

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// This file adds the provider-driven forward pass the serving subsystem
// builds on: instead of every weighted layer owning its dense weight
// tensor, the weights are fetched on demand from a WeightProvider (in
// production a layer-granular decode cache over a compressed model) and
// released as soon as the layer's kernel finishes. Peak extra memory for
// the compressed layers is then governed by the provider's budget, not by
// the network. A provider may hand back the weights dense or in CSR form;
// sparse layers then skip the dense kernels' zero multiplies entirely
// while producing bit-identical outputs.

// ErrNotProvided is returned by a WeightProvider that does not supply the
// requested layer; ForwardWithProvider falls back to the layer's own
// parameters in that case.
var ErrNotProvided = errors.New("nn: layer weights not provided")

// LayerWeights is one layer's externally supplied parameters: exactly one
// of Dense (flat row-major out×in for fc, [outC·inC·k·k] for conv) or
// Sparse (the same matrix in CSR form, rows = out, cols = the flattened
// rest) is set. Bias may be nil, meaning zero bias.
type LayerWeights struct {
	Dense  []float32
	Sparse *tensor.CSR
	Bias   []float32
}

// WeightProvider supplies materialised layer weights on demand.
// Implementations must be safe for concurrent use; the returned slices
// and CSR are read-only for the caller and remain valid until release is
// called.
type WeightProvider interface {
	// LayerWeights returns the named layer's weights in dense or CSR form.
	// release (which may be nil) must be invoked once the caller is done
	// reading them.
	LayerWeights(name string) (w LayerWeights, release func(), err error)
}

// ForwardWith computes the layer output using externally supplied weights
// and bias instead of d.W/d.B, touching no layer state — unlike Forward it
// is safe to call concurrently on a shared *Dense. weights must have
// Out×In entries; bias Out entries (nil means zero bias).
func (d *Dense) ForwardWith(x *tensor.Tensor, weights, bias []float32) *tensor.Tensor {
	y := tensor.New(x.Shape[0], d.Out)
	d.forwardInto(y.Data, x, weights, bias, false)
	return y
}

// forwardInto runs the fc kernel with bias (and optionally the following
// ReLU) fused into the matmul epilogue, writing into a caller-owned
// buffer. The fused epilogue applies (Σ terms) + bias then the clamp —
// exactly what the former separate addBias loop and ReLU layer computed.
func (d *Dense) forwardInto(out []float32, x *tensor.Tensor, weights, bias []float32, relu bool) {
	if x.Rank() != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N, %d]", d.LayerName, x.Shape, d.In))
	}
	if len(weights) != d.Out*d.In {
		panic(fmt.Sprintf("nn: %s: ForwardWith got %d weights, want %d", d.LayerName, len(weights), d.Out*d.In))
	}
	if bias != nil && len(bias) != d.Out {
		panic(fmt.Sprintf("nn: %s: got %d biases, want %d", d.LayerName, len(bias), d.Out))
	}
	ep := tensor.Epilogue{Bias: bias, ReLU: relu}
	tensor.MatMulTransBInto(out, x, tensor.FromSlice(weights, d.Out, d.In), ep)
}

// ForwardSparse is ForwardWith for CSR weights (shape Out×In): the fc
// matmul runs over the stored nonzeros only, producing bit-identical
// output to the dense path for finite inputs. Safe to call concurrently
// on a shared *Dense.
func (d *Dense) ForwardSparse(x *tensor.Tensor, w *tensor.CSR, bias []float32) *tensor.Tensor {
	y := tensor.New(x.Shape[0], d.Out)
	d.forwardSparseInto(y.Data, x, w, bias, false)
	return y
}

// forwardSparseInto is forwardInto over CSR weights.
func (d *Dense) forwardSparseInto(out []float32, x *tensor.Tensor, w *tensor.CSR, bias []float32, relu bool) {
	if x.Rank() != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N, %d]", d.LayerName, x.Shape, d.In))
	}
	if w.Rows != d.Out || w.Cols != d.In {
		panic(fmt.Sprintf("nn: %s: ForwardSparse got %dx%d weights, want %dx%d", d.LayerName, w.Rows, w.Cols, d.Out, d.In))
	}
	if bias != nil && len(bias) != d.Out {
		panic(fmt.Sprintf("nn: %s: got %d biases, want %d", d.LayerName, len(bias), d.Out))
	}
	ep := tensor.Epilogue{Bias: bias, ReLU: relu}
	tensor.MatMulTransBCSRInto(out, x, w, ep)
}

// ForwardInference implements Compressible: the fc serving path with the
// bias (and, when fuseReLU is set, the following ReLU) fused into the
// matmul epilogue, returning a pooled output the caller recycles.
func (d *Dense) ForwardInference(x *tensor.Tensor, lw LayerWeights, fuseReLU bool) *tensor.Tensor {
	y := tensor.NewPooled(x.Shape[0], d.Out)
	if lw.Sparse != nil {
		d.forwardSparseInto(y.Data, x, lw.Sparse, lw.Bias, fuseReLU)
	} else {
		d.forwardInto(y.Data, x, lw.Dense, lw.Bias, fuseReLU)
	}
	return y
}

// ForwardWithProvider runs an inference-mode forward pass, sourcing every
// compressible (fc and conv) layer's weights from p — dispatching to the
// sparse kernel when the provider hands back CSR weights. Layers for
// which p reports ErrNotProvided fall back to their own parameters. Other
// layers run normally, so the network value itself must not be shared
// across concurrent calls (use clones); the provider and the supplied
// weights may be shared.
//
// Two serving optimisations ride on this loop, neither visible in the
// output bits: a ReLU layer directly after a provided compressible layer
// is fused into that layer's kernel epilogue (the ReLU layer itself is
// skipped), and compressible outputs come from the tensor buffer pool —
// each pooled intermediate is recycled as soon as the next layer has
// produced an output that doesn't share its storage, so steady-state
// serving reuses the same buffers request after request instead of
// allocating per layer. The returned tensor may be pool-backed but is
// never recycled here; ownership passes to the caller.
func (n *Network) ForwardWithProvider(x *tensor.Tensor, p WeightProvider) (*tensor.Tensor, error) {
	var pooled *tensor.Tensor // last pooled intermediate not yet recycled
	step := func(y *tensor.Tensor) {
		// Recycle the previous pooled buffer once the pipeline has moved
		// past it. View layers (Flatten's Reshape, Dropout's inference
		// pass-through) return tensors sharing the same storage — detected
		// by first-element identity — which keeps the buffer alive.
		if pooled != nil && !sharesStorage(y, pooled) {
			tensor.Recycle(pooled)
			pooled = nil
		}
	}
	for i := 0; i < len(n.Layers); i++ {
		l := n.Layers[i]
		c, ok := l.(Compressible)
		if !ok {
			y := l.Forward(x, false)
			step(y)
			x = y
			continue
		}
		lw, release, err := p.LayerWeights(c.Name())
		if errors.Is(err, ErrNotProvided) {
			y := c.Forward(x, false)
			step(y)
			x = y
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("nn: %s: %w", c.Name(), err)
		}
		fuse := false
		if i+1 < len(n.Layers) {
			_, fuse = n.Layers[i+1].(*ReLU)
		}
		y := c.ForwardInference(x, lw, fuse)
		if release != nil {
			release()
		}
		if fuse {
			i++ // the ReLU ran inside the kernel epilogue
		}
		step(y)
		pooled = y
		x = y
	}
	return x, nil
}

// sharesStorage reports whether two tensors are views over the same
// backing array, by first-element identity. Empty tensors share nothing.
func sharesStorage(a, b *tensor.Tensor) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

// StripWeights drops the weight and gradient storage of every compressible
// layer selected by covered (nil selects all), keeping shapes and biases.
// A stripped layer can only run through ForwardWithProvider with a provider
// that supplies it; stripping exists so serving clones don't pay for dense
// tensors the decode cache already budgets. Returns the number of float32
// values released.
func StripWeights(n *Network, covered func(name string) bool) int {
	freed := 0
	for _, c := range n.CompressibleLayers() {
		if covered != nil && !covered(c.Name()) {
			continue
		}
		p := c.WeightParam()
		freed += len(p.W.Data) + len(p.Grad.Data)
		p.W.Data = nil
		p.Grad.Data = nil
	}
	return freed
}

// StripDenseWeights strips every Dense layer (see StripWeights). Kept for
// fc-only callers.
func StripDenseWeights(n *Network) int {
	freed := 0
	for _, d := range n.DenseLayers() {
		freed += len(d.W.W.Data) + len(d.W.Grad.Data)
		d.W.W.Data = nil
		d.W.Grad.Data = nil
	}
	return freed
}
