package nn

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// This file adds the provider-driven forward pass the serving subsystem
// builds on: instead of every Dense layer owning its dense weight matrix,
// the weights are fetched on demand from a WeightProvider (in production a
// layer-granular decode cache over a compressed model) and released as soon
// as the layer's matmul finishes. Peak extra memory for the fc suffix is
// then governed by the provider's budget, not by the network.

// ErrNotProvided is returned by a WeightProvider that does not supply the
// requested layer; ForwardWithProvider falls back to the layer's own
// parameters in that case.
var ErrNotProvided = errors.New("nn: layer weights not provided")

// WeightProvider supplies materialised fc-layer weights on demand.
// Implementations must be safe for concurrent use; the returned slices are
// read-only for the caller and remain valid until release is called.
type WeightProvider interface {
	// LayerWeights returns the dense weight matrix (row-major, out×in) and
	// bias for the named layer. release (which may be nil) must be invoked
	// once the caller is done reading the slices.
	LayerWeights(name string) (weights, bias []float32, release func(), err error)
}

// ForwardWith computes the layer output using externally supplied weights
// and bias instead of d.W/d.B, touching no layer state — unlike Forward it
// is safe to call concurrently on a shared *Dense. weights must have
// Out×In entries; bias Out entries (nil means zero bias).
func (d *Dense) ForwardWith(x *tensor.Tensor, weights, bias []float32) *tensor.Tensor {
	if x.Rank() != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N, %d]", d.LayerName, x.Shape, d.In))
	}
	if len(weights) != d.Out*d.In {
		panic(fmt.Sprintf("nn: %s: ForwardWith got %d weights, want %d", d.LayerName, len(weights), d.Out*d.In))
	}
	if bias != nil && len(bias) != d.Out {
		panic(fmt.Sprintf("nn: %s: ForwardWith got %d biases, want %d", d.LayerName, len(bias), d.Out))
	}
	y := tensor.MatMulTransB(x, tensor.FromSlice(weights, d.Out, d.In))
	if bias != nil {
		n := x.Shape[0]
		for i := 0; i < n; i++ {
			row := y.Data[i*d.Out : (i+1)*d.Out]
			for j := range row {
				row[j] += bias[j]
			}
		}
	}
	return y
}

// ForwardWithProvider runs an inference-mode forward pass, sourcing every
// Dense layer's weights from p. Layers for which p reports ErrNotProvided
// fall back to their own parameters. Non-Dense layers run normally, so the
// network value itself must not be shared across concurrent calls (use
// clones); the provider and the supplied weight slices may be shared.
func (n *Network) ForwardWithProvider(x *tensor.Tensor, p WeightProvider) (*tensor.Tensor, error) {
	for _, l := range n.Layers {
		d, ok := l.(*Dense)
		if !ok {
			x = l.Forward(x, false)
			continue
		}
		w, b, release, err := p.LayerWeights(d.Name())
		if errors.Is(err, ErrNotProvided) {
			x = d.Forward(x, false)
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("nn: %s: %w", d.Name(), err)
		}
		x = d.ForwardWith(x, w, b)
		if release != nil {
			release()
		}
	}
	return x, nil
}

// StripDenseWeights drops the weight and gradient storage of every Dense
// layer, keeping shapes and biases. A stripped network can only run through
// ForwardWithProvider (with a provider covering all fc layers); it exists
// so serving clones don't pay for dense matrices the decode cache already
// budgets. Returns the number of float32 values released.
func StripDenseWeights(n *Network) int {
	freed := 0
	for _, d := range n.DenseLayers() {
		freed += len(d.W.W.Data) + len(d.W.Grad.Data)
		d.W.W.Data = nil
		d.W.Grad.Data = nil
	}
	return freed
}
