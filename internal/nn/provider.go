package nn

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// This file adds the provider-driven forward pass the serving subsystem
// builds on: instead of every weighted layer owning its dense weight
// tensor, the weights are fetched on demand from a WeightProvider (in
// production a layer-granular decode cache over a compressed model) and
// released as soon as the layer's kernel finishes. Peak extra memory for
// the compressed layers is then governed by the provider's budget, not by
// the network.

// ErrNotProvided is returned by a WeightProvider that does not supply the
// requested layer; ForwardWithProvider falls back to the layer's own
// parameters in that case.
var ErrNotProvided = errors.New("nn: layer weights not provided")

// WeightProvider supplies materialised layer weights on demand — flat
// row-major out×in matrices for fc layers, flat [outC·inC·k·k] kernels for
// conv layers. Implementations must be safe for concurrent use; the
// returned slices are read-only for the caller and remain valid until
// release is called.
type WeightProvider interface {
	// LayerWeights returns the flat dense weight tensor and bias for the
	// named layer. release (which may be nil) must be invoked once the
	// caller is done reading the slices.
	LayerWeights(name string) (weights, bias []float32, release func(), err error)
}

// ForwardWith computes the layer output using externally supplied weights
// and bias instead of d.W/d.B, touching no layer state — unlike Forward it
// is safe to call concurrently on a shared *Dense. weights must have
// Out×In entries; bias Out entries (nil means zero bias).
func (d *Dense) ForwardWith(x *tensor.Tensor, weights, bias []float32) *tensor.Tensor {
	if x.Rank() != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N, %d]", d.LayerName, x.Shape, d.In))
	}
	if len(weights) != d.Out*d.In {
		panic(fmt.Sprintf("nn: %s: ForwardWith got %d weights, want %d", d.LayerName, len(weights), d.Out*d.In))
	}
	if bias != nil && len(bias) != d.Out {
		panic(fmt.Sprintf("nn: %s: ForwardWith got %d biases, want %d", d.LayerName, len(bias), d.Out))
	}
	y := tensor.MatMulTransB(x, tensor.FromSlice(weights, d.Out, d.In))
	if bias != nil {
		n := x.Shape[0]
		for i := 0; i < n; i++ {
			row := y.Data[i*d.Out : (i+1)*d.Out]
			for j := range row {
				row[j] += bias[j]
			}
		}
	}
	return y
}

// ForwardWithProvider runs an inference-mode forward pass, sourcing every
// compressible (fc and conv) layer's weights from p. Layers for which p
// reports ErrNotProvided fall back to their own parameters. Other layers
// run normally, so the network value itself must not be shared across
// concurrent calls (use clones); the provider and the supplied weight
// slices may be shared.
func (n *Network) ForwardWithProvider(x *tensor.Tensor, p WeightProvider) (*tensor.Tensor, error) {
	for _, l := range n.Layers {
		c, ok := l.(Compressible)
		if !ok {
			x = l.Forward(x, false)
			continue
		}
		w, b, release, err := p.LayerWeights(c.Name())
		if errors.Is(err, ErrNotProvided) {
			x = c.Forward(x, false)
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("nn: %s: %w", c.Name(), err)
		}
		x = c.ForwardWith(x, w, b)
		if release != nil {
			release()
		}
	}
	return x, nil
}

// StripWeights drops the weight and gradient storage of every compressible
// layer selected by covered (nil selects all), keeping shapes and biases.
// A stripped layer can only run through ForwardWithProvider with a provider
// that supplies it; stripping exists so serving clones don't pay for dense
// tensors the decode cache already budgets. Returns the number of float32
// values released.
func StripWeights(n *Network, covered func(name string) bool) int {
	freed := 0
	for _, c := range n.CompressibleLayers() {
		if covered != nil && !covered(c.Name()) {
			continue
		}
		p := c.WeightParam()
		freed += len(p.W.Data) + len(p.Grad.Data)
		p.W.Data = nil
		p.Grad.Data = nil
	}
	return freed
}

// StripDenseWeights strips every Dense layer (see StripWeights). Kept for
// fc-only callers.
func StripDenseWeights(n *Network) int {
	freed := 0
	for _, d := range n.DenseLayers() {
		freed += len(d.W.W.Data) + len(d.W.Grad.Data)
		d.W.W.Data = nil
		d.W.Grad.Data = nil
	}
	return freed
}
