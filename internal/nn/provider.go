package nn

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// This file adds the provider-driven forward pass the serving subsystem
// builds on: instead of every weighted layer owning its dense weight
// tensor, the weights are fetched on demand from a WeightProvider (in
// production a layer-granular decode cache over a compressed model) and
// released as soon as the layer's kernel finishes. Peak extra memory for
// the compressed layers is then governed by the provider's budget, not by
// the network. A provider may hand back the weights dense or in CSR form;
// sparse layers then skip the dense kernels' zero multiplies entirely
// while producing bit-identical outputs.

// ErrNotProvided is returned by a WeightProvider that does not supply the
// requested layer; ForwardWithProvider falls back to the layer's own
// parameters in that case.
var ErrNotProvided = errors.New("nn: layer weights not provided")

// LayerWeights is one layer's externally supplied parameters: exactly one
// of Dense (flat row-major out×in for fc, [outC·inC·k·k] for conv) or
// Sparse (the same matrix in CSR form, rows = out, cols = the flattened
// rest) is set. Bias may be nil, meaning zero bias.
type LayerWeights struct {
	Dense  []float32
	Sparse *tensor.CSR
	Bias   []float32
}

// WeightProvider supplies materialised layer weights on demand.
// Implementations must be safe for concurrent use; the returned slices
// and CSR are read-only for the caller and remain valid until release is
// called.
type WeightProvider interface {
	// LayerWeights returns the named layer's weights in dense or CSR form.
	// release (which may be nil) must be invoked once the caller is done
	// reading them.
	LayerWeights(name string) (w LayerWeights, release func(), err error)
}

// ForwardWith computes the layer output using externally supplied weights
// and bias instead of d.W/d.B, touching no layer state — unlike Forward it
// is safe to call concurrently on a shared *Dense. weights must have
// Out×In entries; bias Out entries (nil means zero bias).
func (d *Dense) ForwardWith(x *tensor.Tensor, weights, bias []float32) *tensor.Tensor {
	if x.Rank() != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N, %d]", d.LayerName, x.Shape, d.In))
	}
	if len(weights) != d.Out*d.In {
		panic(fmt.Sprintf("nn: %s: ForwardWith got %d weights, want %d", d.LayerName, len(weights), d.Out*d.In))
	}
	y := tensor.MatMulTransB(x, tensor.FromSlice(weights, d.Out, d.In))
	d.addBias(x.Shape[0], y, bias)
	return y
}

// ForwardSparse is ForwardWith for CSR weights (shape Out×In): the fc
// matmul runs over the stored nonzeros only, producing bit-identical
// output to the dense path for finite inputs. Safe to call concurrently
// on a shared *Dense.
func (d *Dense) ForwardSparse(x *tensor.Tensor, w *tensor.CSR, bias []float32) *tensor.Tensor {
	if x.Rank() != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N, %d]", d.LayerName, x.Shape, d.In))
	}
	if w.Rows != d.Out || w.Cols != d.In {
		panic(fmt.Sprintf("nn: %s: ForwardSparse got %dx%d weights, want %dx%d", d.LayerName, w.Rows, w.Cols, d.Out, d.In))
	}
	y := tensor.MatMulTransBCSR(x, w)
	d.addBias(x.Shape[0], y, bias)
	return y
}

// addBias adds the shared bias vector to every row of y (nil means zero
// bias), validating its length.
func (d *Dense) addBias(n int, y *tensor.Tensor, bias []float32) {
	if bias == nil {
		return
	}
	if len(bias) != d.Out {
		panic(fmt.Sprintf("nn: %s: got %d biases, want %d", d.LayerName, len(bias), d.Out))
	}
	for i := 0; i < n; i++ {
		row := y.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// ForwardWithProvider runs an inference-mode forward pass, sourcing every
// compressible (fc and conv) layer's weights from p — dispatching to the
// sparse kernel when the provider hands back CSR weights. Layers for
// which p reports ErrNotProvided fall back to their own parameters. Other
// layers run normally, so the network value itself must not be shared
// across concurrent calls (use clones); the provider and the supplied
// weights may be shared.
func (n *Network) ForwardWithProvider(x *tensor.Tensor, p WeightProvider) (*tensor.Tensor, error) {
	for _, l := range n.Layers {
		c, ok := l.(Compressible)
		if !ok {
			x = l.Forward(x, false)
			continue
		}
		lw, release, err := p.LayerWeights(c.Name())
		if errors.Is(err, ErrNotProvided) {
			x = c.Forward(x, false)
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("nn: %s: %w", c.Name(), err)
		}
		if lw.Sparse != nil {
			x = c.ForwardSparse(x, lw.Sparse, lw.Bias)
		} else {
			x = c.ForwardWith(x, lw.Dense, lw.Bias)
		}
		if release != nil {
			release()
		}
	}
	return x, nil
}

// StripWeights drops the weight and gradient storage of every compressible
// layer selected by covered (nil selects all), keeping shapes and biases.
// A stripped layer can only run through ForwardWithProvider with a provider
// that supplies it; stripping exists so serving clones don't pay for dense
// tensors the decode cache already budgets. Returns the number of float32
// values released.
func StripWeights(n *Network, covered func(name string) bool) int {
	freed := 0
	for _, c := range n.CompressibleLayers() {
		if covered != nil && !covered(c.Name()) {
			continue
		}
		p := c.WeightParam()
		freed += len(p.W.Data) + len(p.Grad.Data)
		p.W.Data = nil
		p.Grad.Data = nil
	}
	return freed
}

// StripDenseWeights strips every Dense layer (see StripWeights). Kept for
// fc-only callers.
func StripDenseWeights(n *Network) int {
	freed := 0
	for _, d := range n.DenseLayers() {
		freed += len(d.W.W.Data) + len(d.W.Grad.Data)
		d.W.W.Data = nil
		d.W.Grad.Data = nil
	}
	return freed
}
