package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestDenseForwardHandComputed(t *testing.T) {
	rng := tensor.NewRNG(1)
	d := NewDense("fc", 3, 2, rng)
	d.SetWeights([]float32{1, 2, 3, 4, 5, 6}) // W = [[1,2,3],[4,5,6]]
	d.B.W.Data[0], d.B.W.Data[1] = 0.5, -0.5
	x := tensor.FromSlice([]float32{1, 0, -1, 2, 2, 2}, 2, 3)
	y := d.Forward(x, false)
	want := []float32{
		1*1 + 0*2 + (-1)*3 + 0.5, 1*4 + 0*5 + (-1)*6 - 0.5,
		2*1 + 2*2 + 2*3 + 0.5, 2*4 + 2*5 + 2*6 - 0.5,
	}
	for i, w := range want {
		if math.Abs(float64(y.Data[i]-w)) > 1e-5 {
			t.Fatalf("y[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestDenseShapePanic(t *testing.T) {
	rng := tensor.NewRNG(2)
	d := NewDense("fc", 3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input width")
		}
	}()
	d.Forward(tensor.New(1, 4), false)
}

// numericalGrad estimates dLoss/dtheta for every element of theta by central
// differences, where loss() re-runs the forward pass.
func numericalGrad(theta []float32, loss func() float64, eps float32) []float64 {
	g := make([]float64, len(theta))
	for i := range theta {
		orig := theta[i]
		theta[i] = orig + eps
		lp := loss()
		theta[i] = orig - eps
		lm := loss()
		theta[i] = orig
		g[i] = (lp - lm) / (2 * float64(eps))
	}
	return g
}

func gradClose(t *testing.T, name string, analytic []float32, numeric []float64) {
	t.Helper()
	for i := range numeric {
		a, n := float64(analytic[i]), numeric[i]
		scale := math.Max(math.Max(math.Abs(a), math.Abs(n)), 1e-2)
		if math.Abs(a-n)/scale > 0.08 {
			t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", name, i, a, n)
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := tensor.NewRNG(3)
	d := NewDense("fc", 4, 3, rng)
	x := tensor.New(5, 4)
	rng.FillNormal(x.Data, 0, 1)
	labels := []int{0, 2, 1, 1, 0}
	loss := func() float64 {
		logits := d.Forward(x, false)
		l, _ := SoftmaxCrossEntropy(logits, labels)
		return l
	}
	// Analytic gradients.
	logits := d.Forward(x, true)
	_, g := SoftmaxCrossEntropy(logits, labels)
	d.W.Grad.Zero()
	d.B.Grad.Zero()
	dx := d.Backward(g)

	gradClose(t, "dense.W", d.W.Grad.Data, numericalGrad(d.W.W.Data, loss, 1e-2))
	gradClose(t, "dense.b", d.B.Grad.Data, numericalGrad(d.B.W.Data, loss, 1e-2))
	gradClose(t, "dense.x", dx.Data, numericalGrad(x.Data, loss, 1e-2))
}

func TestConvForwardHandComputed(t *testing.T) {
	rng := tensor.NewRNG(4)
	c := NewConv2D("conv", 1, 1, 2, 1, 0, rng)
	copy(c.W.W.Data, []float32{1, 0, 0, 1}) // identity-diagonal 2×2 kernel
	c.B.W.Data[0] = 1
	x := tensor.FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	y := c.Forward(x, false)
	want := []float32{1 + 5 + 1, 2 + 6 + 1, 4 + 8 + 1, 5 + 9 + 1}
	if y.Shape[2] != 2 || y.Shape[3] != 2 {
		t.Fatalf("out shape %v", y.Shape)
	}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("y[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestConvPaddingAndStride(t *testing.T) {
	rng := tensor.NewRNG(5)
	c := NewConv2D("conv", 1, 1, 3, 2, 1, rng)
	x := tensor.New(1, 1, 5, 5)
	y := c.Forward(x, false)
	// (5 + 2 − 3)/2 + 1 = 3
	if y.Shape[2] != 3 || y.Shape[3] != 3 {
		t.Fatalf("out shape %v, want 3×3", y.Shape)
	}
}

func TestConvGradCheck(t *testing.T) {
	rng := tensor.NewRNG(6)
	c := NewConv2D("conv", 2, 3, 3, 1, 1, rng)
	flat := NewFlatten("flat")
	x := tensor.New(2, 2, 4, 4)
	rng.FillNormal(x.Data, 0, 1)
	labels := []int{1, 40}
	loss := func() float64 {
		y := flat.Forward(c.Forward(x, false), false)
		l, _ := SoftmaxCrossEntropy(y, labels)
		return l
	}
	y := flat.Forward(c.Forward(x, true), true)
	_, g := SoftmaxCrossEntropy(y, labels)
	c.W.Grad.Zero()
	c.B.Grad.Zero()
	dx := c.Backward(flat.Backward(g))

	gradClose(t, "conv.W", c.W.Grad.Data, numericalGrad(c.W.W.Data, loss, 1e-2))
	gradClose(t, "conv.b", c.B.Grad.Data, numericalGrad(c.B.W.Data, loss, 1e-2))
	gradClose(t, "conv.x", dx.Data, numericalGrad(x.Data, loss, 1e-2))
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D("pool", 2, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 0, 9,
	}, 1, 1, 4, 4)
	y := p.Forward(x, true)
	want := []float32{4, 8, -1, 9}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
	g := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := p.Backward(g)
	// Gradient lands only on the argmax positions.
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 1, 3) != 2 || dx.At(0, 0, 2, 0) != 3 || dx.At(0, 0, 3, 3) != 4 {
		t.Fatalf("pool backward wrong: %v", dx.Data)
	}
	var sum float32
	for _, v := range dx.Data {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("gradient mass not conserved: %v", sum)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU("relu")
	x := tensor.FromSlice([]float32{-1, 0, 2, -3, 4}, 1, 5)
	y := r.Forward(x, true)
	want := []float32{0, 0, 2, 0, 4}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("relu[%d] = %v", i, y.Data[i])
		}
	}
	g := tensor.FromSlice([]float32{10, 10, 10, 10, 10}, 1, 5)
	dx := r.Backward(g)
	wantG := []float32{0, 0, 10, 0, 10}
	for i, w := range wantG {
		if dx.Data[i] != w {
			t.Fatalf("relu grad[%d] = %v", i, dx.Data[i])
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("flat")
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Shape[0] != 2 || y.Shape[1] != 60 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	g := tensor.New(2, 60)
	dx := f.Backward(g)
	if dx.Shape[3] != 5 {
		t.Fatalf("flatten backward shape %v", dx.Shape)
	}
}

func TestDropoutInferencePassThrough(t *testing.T) {
	rng := tensor.NewRNG(7)
	d := NewDropout("drop", 0.5, rng)
	x := tensor.New(4, 10)
	rng.FillNormal(x.Data, 0, 1)
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("dropout must be identity at inference")
		}
	}
}

func TestDropoutTrainStatistics(t *testing.T) {
	rng := tensor.NewRNG(8)
	d := NewDropout("drop", 0.5, rng)
	x := tensor.New(1, 10000)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros := 0
	var mean float64
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		}
		mean += float64(v)
	}
	mean /= float64(len(y.Data))
	frac := float64(zeros) / float64(len(y.Data))
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("drop fraction %.3f, want ~0.5", frac)
	}
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("inverted-dropout mean %.3f, want ~1", mean)
	}
}

func TestDropoutRateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate 1")
		}
	}()
	NewDropout("d", 1.0, tensor.NewRNG(1))
}

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	logits := tensor.New(2, 4) // all zeros → uniform
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	want := math.Log(4)
	if math.Abs(loss-want) > 1e-6 {
		t.Fatalf("loss = %v, want ln4 = %v", loss, want)
	}
	// grad = (p − y)/N = (0.25 − 1{label})/2
	if math.Abs(float64(grad.At(0, 0))-(0.25-1)/2) > 1e-6 {
		t.Fatalf("grad wrong: %v", grad.At(0, 0))
	}
	if math.Abs(float64(grad.At(0, 1))-0.25/2) > 1e-6 {
		t.Fatalf("grad wrong: %v", grad.At(0, 1))
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(9)
	logits := tensor.New(8, 10)
	rng.FillNormal(logits.Data, 0, 3)
	p := Softmax(logits)
	for i := 0; i < 8; i++ {
		var sum float64
		for j := 0; j < 10; j++ {
			v := p.At(i, j)
			if v < 0 {
				t.Fatal("negative probability")
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestParamMaskAndDensity(t *testing.T) {
	p := &Param{
		W:    tensor.FromSlice([]float32{1, 2, 3, 4}, 4),
		Grad: tensor.FromSlice([]float32{5, 6, 7, 8}, 4),
		Mask: []bool{true, false, true, false},
	}
	p.ApplyMask()
	if p.W.Data[1] != 0 || p.W.Data[3] != 0 || p.Grad.Data[1] != 0 {
		t.Fatal("mask did not zero pruned entries")
	}
	if p.W.Data[0] != 1 || p.W.Data[2] != 3 {
		t.Fatal("mask zeroed kept entries")
	}
	if p.Density() != 0.5 {
		t.Fatalf("Density = %v", p.Density())
	}
	dense := &Param{W: tensor.New(3)}
	if dense.Density() != 1 {
		t.Fatal("nil mask density must be 1")
	}
}
