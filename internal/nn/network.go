package nn

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// Network is an ordered stack of layers ending in class logits.
type Network struct {
	NetName string
	Layers  []Layer
}

// NewNetwork creates a network from layers.
func NewNetwork(name string, layers ...Layer) *Network {
	return &Network{NetName: name, Layers: layers}
}

// Name returns the network's identifier.
func (n *Network) Name() string { return n.NetName }

// Forward runs all layers on x.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return n.ForwardRange(0, len(n.Layers), x, train)
}

// ForwardRange runs layers [from, to) on x. It underpins the assessment
// feature cache: the conv prefix is evaluated once, then each error-bound
// test reruns only the fc suffix.
func (n *Network) ForwardRange(from, to int, x *tensor.Tensor, train bool) *tensor.Tensor {
	if from < 0 || to > len(n.Layers) || from > to {
		panic(fmt.Sprintf("nn: ForwardRange [%d,%d) of %d layers", from, to, len(n.Layers)))
	}
	for _, l := range n.Layers[from:to] {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient through all layers.
func (n *Network) Backward(grad *tensor.Tensor) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// Params returns every trainable parameter in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears all parameter gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// DenseLayers returns the fully connected layers in order — the layers
// DeepSZ prunes and compresses by default (CompressibleLayers covers the
// whole-network selection).
func (n *Network) DenseLayers() []*Dense {
	var ds []*Dense
	for _, l := range n.Layers {
		if d, ok := l.(*Dense); ok {
			ds = append(ds, d)
		}
	}
	return ds
}

// LayerIndex returns the position of the layer with the given name, or -1.
func (n *Network) LayerIndex(name string) int {
	for i, l := range n.Layers {
		if l.Name() == name {
			return i
		}
	}
	return -1
}

// FirstDenseIndex returns the index of the first Dense layer, or -1.
func (n *Network) FirstDenseIndex() int {
	for i, l := range n.Layers {
		if _, ok := l.(*Dense); ok {
			return i
		}
	}
	return -1
}

// ParamBytes returns the total parameter storage in bytes (float32) and the
// bytes belonging to Dense layers.
func (n *Network) ParamBytes() (total, dense int64) {
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			b := int64(len(p.W.Data)) * 4
			total += b
			if _, ok := l.(*Dense); ok {
				dense += b
			}
		}
	}
	return total, dense
}

// Accuracy holds top-1 and top-5 evaluation results.
type Accuracy struct {
	Top1 float64
	Top5 float64
}

// Evaluate runs inference over ds in batches and returns top-1/top-5
// accuracy. Deterministic given the network and dataset.
func (n *Network) Evaluate(ds *dataset.Set, batchSize int) Accuracy {
	return n.EvaluateFrom(0, nil, ds, batchSize)
}

// EvaluateFrom evaluates starting at layer index `from`. If features is
// non-nil it is used as the input to layer `from` (one row per example,
// shape [N, ...]); otherwise the raw images are used (and from must be 0).
func (n *Network) EvaluateFrom(from int, features *tensor.Tensor, ds *dataset.Set, batchSize int) Accuracy {
	total := ds.Len()
	if features != nil && features.Shape[0] != total {
		panic("nn: feature cache size mismatch")
	}
	if batchSize <= 0 {
		batchSize = 100
	}
	var top1, top5 int
	for lo := 0; lo < total; lo += batchSize {
		hi := lo + batchSize
		if hi > total {
			hi = total
		}
		var x *tensor.Tensor
		var labels []int
		if features != nil {
			rowSz := features.Len() / features.Shape[0]
			x = tensor.FromSlice(features.Data[lo*rowSz:hi*rowSz], append([]int{hi - lo}, features.Shape[1:]...)...)
			labels = ds.Labels[lo:hi]
		} else {
			idx := make([]int, hi-lo)
			for i := range idx {
				idx[i] = lo + i
			}
			x, labels = ds.Batch(idx)
		}
		logits := n.ForwardRange(from, len(n.Layers), x, false)
		t1, t5 := countTopK(logits, labels)
		top1 += t1
		top5 += t5
	}
	return Accuracy{
		Top1: float64(top1) / float64(total),
		Top5: float64(top5) / float64(total),
	}
}

// countTopK returns the number of rows whose label is the argmax (top-1) and
// within the 5 largest logits (top-5).
func countTopK(logits *tensor.Tensor, labels []int) (top1, top5 int) {
	nRows, c := logits.Shape[0], logits.Shape[1]
	k := 5
	if k > c {
		k = c
	}
	idx := make([]int, c)
	for i := 0; i < nRows; i++ {
		row := logits.Data[i*c : (i+1)*c]
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
		if idx[0] == labels[i] {
			top1++
		}
		for j := 0; j < k; j++ {
			if idx[j] == labels[i] {
				top5++
				break
			}
		}
	}
	return top1, top5
}

// FeatureCache precomputes activations of layers [0, upto) for every example
// in ds, to be fed to EvaluateFrom(upto, ...). This is the assessment-time
// optimisation described in DESIGN.md §4.
func (n *Network) FeatureCache(upto int, ds *dataset.Set, batchSize int) *tensor.Tensor {
	if batchSize <= 0 {
		batchSize = 100
	}
	total := ds.Len()
	var out *tensor.Tensor
	var rowSz int
	for lo := 0; lo < total; lo += batchSize {
		hi := lo + batchSize
		if hi > total {
			hi = total
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, _ := ds.Batch(idx)
		f := n.ForwardRange(0, upto, x, false)
		if out == nil {
			rowSz = f.Len() / f.Shape[0]
			out = tensor.New(append([]int{total}, f.Shape[1:]...)...)
		}
		copy(out.Data[lo*rowSz:hi*rowSz], f.Data)
	}
	return out
}
