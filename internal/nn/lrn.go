package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LRN is AlexNet's local response normalisation across channels:
//
//	y[c] = x[c] / (K + α/n · Σ_{c' in window} x[c']²)^β
//
// with a window of Size channels centred on c. Inference-only in this
// repository (the scaled networks train without it; it is provided for
// architecture fidelity and used by tests), so Backward panics.
type LRN struct {
	LayerName string
	Size      int
	Alpha     float64
	Beta      float64
	K         float64
}

// NewLRN creates an LRN layer with AlexNet's published defaults when the
// numeric parameters are zero (n=5, α=1e-4, β=0.75, k=2).
func NewLRN(name string, size int, alpha, beta, k float64) *LRN {
	if size <= 0 {
		size = 5
	}
	if size%2 == 0 {
		panic(fmt.Sprintf("nn: LRN size %d must be odd", size))
	}
	if alpha == 0 {
		alpha = 1e-4
	}
	if beta == 0 {
		beta = 0.75
	}
	if k == 0 {
		k = 2
	}
	return &LRN{LayerName: name, Size: size, Alpha: alpha, Beta: beta, K: k}
}

// Name implements Layer.
func (l *LRN) Name() string { return l.LayerName }

// Params implements Layer.
func (l *LRN) Params() []*Param { return nil }

// Forward implements Layer. x must have shape [N, C, H, W].
func (l *LRN) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s: input shape %v, want rank 4", l.LayerName, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := tensor.New(x.Shape...)
	half := l.Size / 2
	plane := h * w
	imgSz := c * plane
	tensor.ParallelFor(n, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			in := x.Data[b*imgSz : (b+1)*imgSz]
			out := y.Data[b*imgSz : (b+1)*imgSz]
			for p := 0; p < plane; p++ {
				for ch := 0; ch < c; ch++ {
					var sum float64
					for cc := ch - half; cc <= ch+half; cc++ {
						if cc < 0 || cc >= c {
							continue
						}
						v := float64(in[cc*plane+p])
						sum += v * v
					}
					denom := math.Pow(l.K+l.Alpha/float64(l.Size)*sum, l.Beta)
					out[ch*plane+p] = float32(float64(in[ch*plane+p]) / denom)
				}
			}
		}
	})
	return y
}

// Backward implements Layer; LRN is inference-only here.
func (l *LRN) Backward(dout *tensor.Tensor) *tensor.Tensor {
	panic("nn: LRN is inference-only; place it in non-trained paths")
}
