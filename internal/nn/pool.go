package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// MaxPool2D is a max-pooling layer with square window and stride.
type MaxPool2D struct {
	LayerName string
	K, Stride int
	lastShape []int
	argmax    []int32 // flat input index of each output's maximum
}

// NewMaxPool2D creates a max-pooling layer.
func NewMaxPool2D(name string, k, stride int) *MaxPool2D {
	if k < 1 || stride < 1 {
		panic(fmt.Sprintf("nn: maxpool k=%d stride=%d invalid", k, stride))
	}
	return &MaxPool2D{LayerName: name, K: k, Stride: stride}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.LayerName }

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// OutDims returns the spatial output size for an input of h×w.
func (m *MaxPool2D) OutDims(h, w int) (int, int) {
	return (h-m.K)/m.Stride + 1, (w-m.K)/m.Stride + 1
}

// Forward implements Layer. x must have shape [N, C, H, W].
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s: input shape %v, want rank 4", m.LayerName, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := m.OutDims(h, w)
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: %s: input %dx%d too small for k=%d", m.LayerName, h, w, m.K))
	}
	y := tensor.New(n, c, oh, ow)
	if train {
		m.lastShape = x.Shape
		if cap(m.argmax) < len(y.Data) {
			m.argmax = make([]int32, len(y.Data))
		}
		m.argmax = m.argmax[:len(y.Data)]
	}
	inSz := c * h * w
	outSz := c * oh * ow
	tensor.ParallelFor(n, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			in := x.Data[b*inSz : (b+1)*inSz]
			out := y.Data[b*outSz : (b+1)*outSz]
			for ch := 0; ch < c; ch++ {
				chIn := in[ch*h*w:]
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						iy0 := oy * m.Stride
						ix0 := ox * m.Stride
						best := chIn[iy0*w+ix0]
						bestIdx := iy0*w + ix0
						for ky := 0; ky < m.K; ky++ {
							for kx := 0; kx < m.K; kx++ {
								idx := (iy0+ky)*w + ix0 + kx
								if v := chIn[idx]; v > best {
									best, bestIdx = v, idx
								}
							}
						}
						oi := ch*oh*ow + oy*ow + ox
						out[oi] = best
						if train {
							m.argmax[b*outSz+oi] = int32(ch*h*w + bestIdx)
						}
					}
				}
			}
		}
	})
	return y
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if m.lastShape == nil {
		panic("nn: MaxPool2D.Backward without Forward(train=true)")
	}
	dx := tensor.New(m.lastShape...)
	n := m.lastShape[0]
	inSz := len(dx.Data) / n
	outSz := len(dout.Data) / n
	for b := 0; b < n; b++ {
		for oi := 0; oi < outSz; oi++ {
			dx.Data[b*inSz+int(m.argmax[b*outSz+oi])] += dout.Data[b*outSz+oi]
		}
	}
	return dx
}
