package nn

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// This file provides the im2col inference fast path for Conv2D: the input
// window of every output position is unrolled into a column, turning the
// convolution into one matrix multiplication per image — the standard
// HPC formulation (and how Caffe implements convolution). The direct loop
// in conv.go remains the training path because it also serves backward;
// ForwardIm2col is bit-compatible with Forward for inference, and
// ForwardSparse is the same kernel over CSR weights (how serving runs
// conv layers whose decoded weights stayed sparse).

// colsPool recycles im2col scratch buffers across calls and worker
// goroutines: the unrolled matrix for one image is the hot path's largest
// transient (inC·k²·oh·ow floats), and serving re-runs it per image per
// request. Entries hold *[]float32 so Put doesn't allocate a header.
var colsPool sync.Pool

// getCols returns a zero-length scratch slice with capacity ≥ n.
func getCols(n int) *[]float32 {
	if p, ok := colsPool.Get().(*[]float32); ok && cap(*p) >= n {
		return p
	}
	s := make([]float32, n)
	return &s
}

// im2col unrolls one image (inC×h×w) into a (inC·k·k × oh·ow) matrix.
func (c *Conv2D) im2col(in []float32, h, w, oh, ow int, cols []float32) {
	kk := c.K * c.K
	rowLen := oh * ow
	for ic := 0; ic < c.InC; ic++ {
		chIn := in[ic*h*w:]
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				row := cols[(ic*kk+ky*c.K+kx)*rowLen:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.Stride - c.Pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							row[oy*ow+ox] = 0
						}
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.Stride - c.Pad + kx
						if ix < 0 || ix >= w {
							row[oy*ow+ox] = 0
						} else {
							row[oy*ow+ox] = chIn[iy*w+ix]
						}
					}
				}
			}
		}
	}
}

// forwardIm2col is the shared scaffold behind ForwardIm2col and
// ForwardSparse: validate, unroll each image into the pooled cols
// buffer, and hand (cols, out-slice, oh·ow) to the per-image matmul
// kernel.
func (c *Conv2D) forwardIm2col(x *tensor.Tensor, kernel func(cols, out []float32, rowLen int)) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N, %d, H, W]", c.LayerName, x.Shape, c.InC))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := c.OutDims(h, w)
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: %s: input %dx%d too small for k=%d s=%d p=%d", c.LayerName, h, w, c.K, c.Stride, c.Pad))
	}
	y := tensor.New(n, c.OutC, oh, ow)
	inSz := c.InC * h * w
	outSz := c.OutC * oh * ow
	colRows := c.InC * c.K * c.K
	rowLen := oh * ow

	tensor.ParallelFor(n, func(lo, hi int) {
		colsPtr := getCols(colRows * rowLen)
		defer colsPool.Put(colsPtr)
		cols := (*colsPtr)[:colRows*rowLen]
		for b := lo; b < hi; b++ {
			c.im2col(x.Data[b*inSz:(b+1)*inSz], h, w, oh, ow, cols)
			kernel(cols, y.Data[b*outSz:(b+1)*outSz], rowLen)
		}
	})
	return y
}

// ForwardIm2col computes the same output as Forward(x, false) via im2col +
// matrix multiplication. It does not cache state and cannot be followed by
// Backward.
func (c *Conv2D) ForwardIm2col(x *tensor.Tensor) *tensor.Tensor {
	colRows := c.InC * c.K * c.K
	wMat := c.W.W.Reshape(c.OutC, colRows)
	bias := c.B.W.Data
	return c.forwardIm2col(x, func(cols, out []float32, rowLen int) {
		colMat := tensor.FromSlice(cols, colRows, rowLen)
		tensor.MatMulInto(out, wMat, colMat) // (OutC × oh·ow), y is fresh zeros
		for oc := 0; oc < c.OutC; oc++ {
			row := out[oc*rowLen : (oc+1)*rowLen]
			for i := range row {
				row[i] += bias[oc]
			}
		}
	})
}

// ForwardSparse implements Compressible: the im2col convolution with CSR
// weights (OutC × InC·K·K) and bias (nil means zero). Output positions
// accumulate bias first and then the kernel products in ascending weight
// index, the same order as the dense direct loop over the surviving
// terms, so for finite inputs the result is bit-identical to
// ForwardWith(x, w.Dense(), bias). Touches no layer state.
func (c *Conv2D) ForwardSparse(x *tensor.Tensor, w *tensor.CSR, bias []float32) *tensor.Tensor {
	if colRows := c.InC * c.K * c.K; w.Rows != c.OutC || w.Cols != colRows {
		panic(fmt.Sprintf("nn: %s: ForwardSparse got %dx%d weights, want %dx%d", c.LayerName, w.Rows, w.Cols, c.OutC, colRows))
	}
	if bias != nil && len(bias) != c.OutC {
		panic(fmt.Sprintf("nn: %s: ForwardSparse got %d biases, want %d", c.LayerName, len(bias), c.OutC))
	}
	return c.forwardIm2col(x, func(cols, out []float32, rowLen int) {
		if bias != nil {
			// Bias seeds the accumulator (the direct kernel's order: sum
			// starts at bias, products follow in index order).
			for oc := 0; oc < c.OutC; oc++ {
				row := out[oc*rowLen : (oc+1)*rowLen]
				for i := range row {
					row[i] = bias[oc]
				}
			}
		}
		tensor.CSRMatMulInto(out, w, cols, rowLen)
	})
}
