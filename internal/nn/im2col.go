package nn

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// This file provides the im2col inference fast path for Conv2D: the input
// window of every output position is unrolled into a column, turning the
// convolution into one matrix multiplication per image — the standard
// HPC formulation (and how Caffe implements convolution). The direct loop
// in conv.go remains the training path because it also serves backward;
// ForwardIm2col is bit-compatible with Forward for inference, and
// ForwardSparse is the same kernel over CSR weights (how serving runs
// conv layers whose decoded weights stayed sparse).

// colsPool recycles im2col scratch buffers across calls and worker
// goroutines: the unrolled matrix for one image is the hot path's largest
// transient (inC·k²·oh·ow floats), and serving re-runs it per image per
// request. Entries hold *[]float32 so Put doesn't allocate a header.
var colsPool sync.Pool

// getCols returns a zero-length scratch slice with capacity ≥ n.
func getCols(n int) *[]float32 {
	if p, ok := colsPool.Get().(*[]float32); ok && cap(*p) >= n {
		return p
	}
	s := make([]float32, n)
	return &s
}

// im2col unrolls one image (inC×h×w) into a (inC·k·k × oh·ow) matrix.
func (c *Conv2D) im2col(in []float32, h, w, oh, ow int, cols []float32) {
	kk := c.K * c.K
	rowLen := oh * ow
	for ic := 0; ic < c.InC; ic++ {
		chIn := in[ic*h*w:]
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				row := cols[(ic*kk+ky*c.K+kx)*rowLen:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.Stride - c.Pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							row[oy*ow+ox] = 0
						}
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.Stride - c.Pad + kx
						if ix < 0 || ix >= w {
							row[oy*ow+ox] = 0
						} else {
							row[oy*ow+ox] = chIn[iy*w+ix]
						}
					}
				}
			}
		}
	}
}

// forwardIm2colInto is the shared scaffold behind ForwardIm2col and
// ForwardSparse: unroll each image into the pooled cols buffer and hand
// (cols, out-slice, oh·ow) to the per-image matmul kernel. y must be a
// zero-filled (n, OutC, oh, ow) tensor; the caller chooses its storage
// (heap or buffer pool).
func (c *Conv2D) forwardIm2colInto(y, x *tensor.Tensor, kernel func(cols, out []float32, rowLen int)) {
	n, h, w := c.checkInput(x)
	oh, ow := c.OutDims(h, w)
	inSz := c.InC * h * w
	outSz := c.OutC * oh * ow
	colRows := c.InC * c.K * c.K
	rowLen := oh * ow

	tensor.ParallelFor(n, func(lo, hi int) {
		colsPtr := getCols(colRows * rowLen)
		defer colsPool.Put(colsPtr)
		cols := (*colsPtr)[:colRows*rowLen]
		for b := lo; b < hi; b++ {
			c.im2col(x.Data[b*inSz:(b+1)*inSz], h, w, oh, ow, cols)
			kernel(cols, y.Data[b*outSz:(b+1)*outSz], rowLen)
		}
	})
}

// outTensor allocates the conv output for x — pooled storage when pooled
// is set (serving; the caller recycles), plain heap otherwise.
func (c *Conv2D) outTensor(x *tensor.Tensor, pooled bool) *tensor.Tensor {
	n, h, w := c.checkInput(x)
	oh, ow := c.OutDims(h, w)
	if pooled {
		return tensor.NewPooled(n, c.OutC, oh, ow)
	}
	return tensor.New(n, c.OutC, oh, ow)
}

// ForwardIm2col computes the same output as Forward(x, false) via im2col +
// matrix multiplication, the bias-add fused into the matmul's row
// epilogue. It does not cache state and cannot be followed by Backward.
func (c *Conv2D) ForwardIm2col(x *tensor.Tensor) *tensor.Tensor {
	colRows := c.InC * c.K * c.K
	wMat := c.W.W.Reshape(c.OutC, colRows)
	ep := tensor.Epilogue{Bias: c.B.W.Data}
	y := c.outTensor(x, false)
	c.forwardIm2colInto(y, x, func(cols, out []float32, rowLen int) {
		colMat := tensor.FromSlice(cols, colRows, rowLen)
		tensor.MatMulIntoEp(out, wMat, colMat, ep) // (OutC × oh·ow), y is fresh zeros
	})
	return y
}

// ForwardSparse implements Compressible: the im2col convolution with CSR
// weights (OutC × InC·K·K) and bias (nil means zero). Output positions
// accumulate bias first and then the kernel products in ascending weight
// index, the same order as the dense direct loop over the surviving
// terms, so for finite inputs the result is bit-identical to
// ForwardWith(x, w.Dense(), bias). Touches no layer state.
func (c *Conv2D) ForwardSparse(x *tensor.Tensor, w *tensor.CSR, bias []float32) *tensor.Tensor {
	return c.forwardSparseInto(c.outTensor(x, false), x, w, bias, false)
}

// forwardSparsePooled is ForwardSparse with pooled output storage and an
// optionally fused ReLU — the serving path behind ForwardInference.
func (c *Conv2D) forwardSparsePooled(x *tensor.Tensor, w *tensor.CSR, bias []float32, relu bool) *tensor.Tensor {
	return c.forwardSparseInto(c.outTensor(x, true), x, w, bias, relu)
}

func (c *Conv2D) forwardSparseInto(y, x *tensor.Tensor, w *tensor.CSR, bias []float32, relu bool) *tensor.Tensor {
	if colRows := c.InC * c.K * c.K; w.Rows != c.OutC || w.Cols != colRows {
		panic(fmt.Sprintf("nn: %s: ForwardSparse got %dx%d weights, want %dx%d", c.LayerName, w.Rows, w.Cols, c.OutC, colRows))
	}
	if bias != nil && len(bias) != c.OutC {
		panic(fmt.Sprintf("nn: %s: ForwardSparse got %d biases, want %d", c.LayerName, len(bias), c.OutC))
	}
	ep := tensor.Epilogue{ReLU: relu}
	c.forwardIm2colInto(y, x, func(cols, out []float32, rowLen int) {
		if bias != nil {
			// Bias seeds the accumulator (the direct kernel's order: sum
			// starts at bias, products follow in index order).
			for oc := 0; oc < c.OutC; oc++ {
				row := out[oc*rowLen : (oc+1)*rowLen]
				for i := range row {
					row[i] = bias[oc]
				}
			}
		}
		tensor.CSRMatMulIntoEp(out, w, cols, rowLen, ep)
	})
	return y
}
