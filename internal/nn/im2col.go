package nn

import (
	"repro/internal/tensor"
)

// This file provides the im2col inference fast path for Conv2D: the input
// window of every output position is unrolled into a column, turning the
// convolution into one matrix multiplication per image — the standard
// HPC formulation (and how Caffe implements convolution). The direct loop
// in conv.go remains the training path because it also serves backward;
// ForwardIm2col is bit-compatible with Forward for inference.

// im2col unrolls one image (inC×h×w) into a (inC·k·k × oh·ow) matrix.
func (c *Conv2D) im2col(in []float32, h, w, oh, ow int, cols []float32) {
	kk := c.K * c.K
	rowLen := oh * ow
	for ic := 0; ic < c.InC; ic++ {
		chIn := in[ic*h*w:]
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				row := cols[(ic*kk+ky*c.K+kx)*rowLen:]
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.Stride - c.Pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							row[oy*ow+ox] = 0
						}
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.Stride - c.Pad + kx
						if ix < 0 || ix >= w {
							row[oy*ow+ox] = 0
						} else {
							row[oy*ow+ox] = chIn[iy*w+ix]
						}
					}
				}
			}
		}
	}
}

// ForwardIm2col computes the same output as Forward(x, false) via im2col +
// matrix multiplication. It does not cache state and cannot be followed by
// Backward.
func (c *Conv2D) ForwardIm2col(x *tensor.Tensor) *tensor.Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := c.OutDims(h, w)
	y := tensor.New(n, c.OutC, oh, ow)
	inSz := c.InC * h * w
	outSz := c.OutC * oh * ow
	colRows := c.InC * c.K * c.K
	rowLen := oh * ow
	wMat := c.W.W.Reshape(c.OutC, colRows)
	bias := c.B.W.Data

	tensor.ParallelFor(n, func(lo, hi int) {
		cols := make([]float32, colRows*rowLen)
		for b := lo; b < hi; b++ {
			c.im2col(x.Data[b*inSz:(b+1)*inSz], h, w, oh, ow, cols)
			colMat := tensor.FromSlice(cols, colRows, rowLen)
			prod := tensor.MatMul(wMat, colMat) // (OutC × oh·ow)
			out := y.Data[b*outSz : (b+1)*outSz]
			copy(out, prod.Data)
			for oc := 0; oc < c.OutC; oc++ {
				row := out[oc*rowLen : (oc+1)*rowLen]
				for i := range row {
					row[i] += bias[oc]
				}
			}
		}
	})
	return y
}
