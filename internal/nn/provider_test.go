package nn

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tensor"
)

// mapProvider serves weights from an in-memory map and counts releases.
// With sparse=true it hands back every layer in CSR form instead.
type mapProvider struct {
	w, b     map[string][]float32
	shape    map[string][]int
	sparse   bool
	released atomic.Int64
	fail     error
}

func (p *mapProvider) LayerWeights(name string) (LayerWeights, func(), error) {
	if p.fail != nil {
		return LayerWeights{}, nil, p.fail
	}
	w, ok := p.w[name]
	if !ok {
		return LayerWeights{}, nil, ErrNotProvided
	}
	lw := LayerWeights{Bias: p.b[name]}
	if p.sparse {
		s := p.shape[name]
		cols := 1
		for _, d := range s[1:] {
			cols *= d
		}
		lw.Sparse = tensor.CSRFromDense(w, s[0], cols)
	} else {
		lw.Dense = w
	}
	return lw, func() { p.released.Add(1) }, nil
}

func providerNet(seed uint64) *Network {
	rng := tensor.NewRNG(seed)
	return NewNetwork("prov-mlp",
		NewFlatten("flat"),
		NewDense("ip1", 12, 8, rng),
		NewReLU("relu1"),
		NewDense("ip2", 8, 4, rng),
	)
}

func TestForwardWithProviderMatchesForward(t *testing.T) {
	net := providerNet(5)
	x := tensor.New(3, 12)
	tensor.NewRNG(9).FillNormal(x.Data, 0, 1)
	want := net.Forward(x, false)

	p := &mapProvider{w: map[string][]float32{}, b: map[string][]float32{}}
	for _, d := range net.DenseLayers() {
		p.w[d.Name()] = append([]float32(nil), d.W.W.Data...)
		p.b[d.Name()] = append([]float32(nil), d.B.W.Data...)
	}
	clone := net.Clone()
	StripDenseWeights(clone)
	got, err := clone.ForwardWithProvider(x, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != len(want.Data) {
		t.Fatalf("output length %d, want %d", len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("output %d: %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
	if int(p.released.Load()) != len(net.DenseLayers()) {
		t.Fatalf("released %d times, want %d", p.released.Load(), len(net.DenseLayers()))
	}
}

func TestForwardWithProviderFallback(t *testing.T) {
	net := providerNet(6)
	x := tensor.New(2, 12)
	tensor.NewRNG(3).FillNormal(x.Data, 0, 1)
	want := net.Forward(x, false)

	// Provider only covers ip1; ip2 must fall back to its own weights.
	p := &mapProvider{w: map[string][]float32{}, b: map[string][]float32{}}
	d := net.DenseLayers()[0]
	p.w[d.Name()] = append([]float32(nil), d.W.W.Data...)
	p.b[d.Name()] = append([]float32(nil), d.B.W.Data...)

	got, err := net.ForwardWithProvider(x, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("output %d diverged with partial provider", i)
		}
	}
}

func TestForwardWithProviderError(t *testing.T) {
	net := providerNet(7)
	x := tensor.New(1, 12)
	sentinel := errors.New("decode failed")
	_, err := net.ForwardWithProvider(x, &mapProvider{fail: sentinel})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v, want wrapped sentinel", err)
	}
}

func TestForwardWithConcurrentSharedDense(t *testing.T) {
	rng := tensor.NewRNG(11)
	d := NewDense("fc", 16, 8, rng)
	w := append([]float32(nil), d.W.W.Data...)
	b := append([]float32(nil), d.B.W.Data...)
	x := tensor.New(4, 16)
	rng.FillNormal(x.Data, 0, 1)
	want := d.Forward(x, false)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 16; r++ {
				y := d.ForwardWith(x, w, b)
				for i := range want.Data {
					if y.Data[i] != want.Data[i] {
						t.Errorf("concurrent ForwardWith diverged at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestStripDenseWeights(t *testing.T) {
	net := providerNet(8)
	var total int
	for _, d := range net.DenseLayers() {
		total += 2 * len(d.W.W.Data)
	}
	if freed := StripDenseWeights(net); freed != total {
		t.Fatalf("freed %d values, want %d", freed, total)
	}
	for _, d := range net.DenseLayers() {
		if d.W.W.Data != nil || d.W.Grad.Data != nil {
			t.Fatalf("%s still holds weight storage", d.Name())
		}
		if len(d.B.W.Data) != d.Out {
			t.Fatalf("%s bias was stripped", d.Name())
		}
	}
	// Cloning a stripped network must not reallocate the dense storage:
	// serving pools clone stripped templates and rely on the clones
	// staying storage-free.
	for _, d := range net.Clone().DenseLayers() {
		if d.W.W.Data != nil || d.W.Grad.Data != nil {
			t.Fatalf("clone of stripped net reallocated %s storage", d.Name())
		}
	}
}
