package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// ReLU is the rectified-linear activation used by every network in the
// paper's evaluation.
type ReLU struct {
	LayerName string
	mask      []bool
}

// NewReLU creates a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{LayerName: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.LayerName }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	if train {
		if cap(r.mask) < len(x.Data) {
			r.mask = make([]bool, len(x.Data))
		}
		r.mask = r.mask[:len(x.Data)]
	}
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			if train {
				r.mask[i] = true
			}
		} else if train {
			r.mask[i] = false
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward without Forward(train=true)")
	}
	dx := tensor.New(dout.Shape...)
	for i, v := range dout.Data {
		if r.mask[i] {
			dx.Data[i] = v
		}
	}
	return dx
}

// Flatten reshapes [N, ...] to [N, rest]; it feeds conv features into the
// first fc layer.
type Flatten struct {
	LayerName string
	lastShape []int
}

// NewFlatten creates a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{LayerName: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.LayerName }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: %s: rank %d input", f.LayerName, x.Rank()))
	}
	if train {
		f.lastShape = x.Shape
	}
	n := x.Shape[0]
	return x.Reshape(n, len(x.Data)/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return dout.Reshape(f.lastShape...)
}

// Dropout zeroes a fraction of activations during training (inverted
// dropout: survivors are scaled so inference is a pass-through). AlexNet and
// VGG use it between fc layers.
type Dropout struct {
	LayerName string
	Rate      float64
	rng       *tensor.RNG
	mask      []float32
}

// NewDropout creates a Dropout layer with the given drop probability.
func NewDropout(name string, rate float64, rng *tensor.RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{LayerName: name, Rate: rate, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.LayerName }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate == 0 {
		return x
	}
	y := tensor.New(x.Shape...)
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float32, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := float32(1 / (1 - d.Rate))
	for i, v := range x.Data {
		if d.rng.Float64() < d.Rate {
			d.mask[i] = 0
		} else {
			d.mask[i] = scale
			y.Data[i] = v * scale
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		panic("nn: Dropout.Backward without Forward(train=true)")
	}
	dx := tensor.New(dout.Shape...)
	for i, v := range dout.Data {
		dx.Data[i] = v * d.mask[i]
	}
	return dx
}
