package nn

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

func serializationNet(seed uint64) *Network {
	rng := tensor.NewRNG(seed)
	return NewNetwork("ser",
		NewConv2D("c1", 1, 3, 3, 1, 1, rng),
		NewFlatten("f"),
		NewDense("fc1", 3*8*8, 16, rng),
		NewReLU("r"),
		NewDense("fc2", 16, 4, rng),
	)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := serializationNet(1)
	// Add a mask to one layer to exercise the mask path.
	fc1 := src.DenseLayers()[0]
	mask := make([]bool, len(fc1.W.W.Data))
	for i := range mask {
		mask[i] = i%3 != 0
	}
	fc1.W.Mask = mask
	fc1.W.ApplyMask()

	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := serializationNet(999) // different init
	if err := LoadWeights(&buf, dst); err != nil {
		t.Fatal(err)
	}
	srcP, dstP := src.Params(), dst.Params()
	for i := range srcP {
		for j := range srcP[i].W.Data {
			if srcP[i].W.Data[j] != dstP[i].W.Data[j] {
				t.Fatalf("param %s elem %d differs", srcP[i].Name, j)
			}
		}
	}
	dfc1 := dst.DenseLayers()[0]
	if dfc1.W.Mask == nil {
		t.Fatal("mask not restored")
	}
	for i := range mask {
		if dfc1.W.Mask[i] != mask[i] {
			t.Fatalf("mask bit %d differs", i)
		}
	}
	// Unmasked params stay unmasked.
	if dst.DenseLayers()[1].W.Mask != nil {
		t.Fatal("spurious mask on fc2")
	}
}

func TestLoadWeightsValidation(t *testing.T) {
	src := serializationNet(2)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	if err := LoadWeights(bytes.NewReader(blob[:5]), serializationNet(3)); err == nil {
		t.Fatal("expected error for truncated header")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if err := LoadWeights(bytes.NewReader(bad), serializationNet(3)); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if err := LoadWeights(bytes.NewReader(blob[:len(blob)-10]), serializationNet(3)); err == nil {
		t.Fatal("expected error for truncation")
	}

	// Mismatched architecture: different fc width.
	rng := tensor.NewRNG(4)
	other := NewNetwork("other",
		NewConv2D("c1", 1, 3, 3, 1, 1, rng),
		NewFlatten("f"),
		NewDense("fc1", 3*8*8, 8, rng), // 16 → 8
		NewReLU("r"),
		NewDense("fc2", 16, 4, rng),
	)
	if err := LoadWeights(bytes.NewReader(blob), other); err == nil {
		t.Fatal("expected error for shape mismatch")
	}
}

func TestSaveLoadPreservesBehaviour(t *testing.T) {
	src := serializationNet(5)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := serializationNet(777)
	if err := LoadWeights(&buf, dst); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(6)
	x := tensor.New(2, 1, 8, 8)
	rng.FillNormal(x.Data, 0, 1)
	a := src.Forward(x.Clone(), false)
	b := dst.Forward(x.Clone(), false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("loaded network computes different outputs")
		}
	}
}
