package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution layer with square kernels, configurable stride
// and zero padding. Weights have shape [OutC, InC, K, K].
type Conv2D struct {
	LayerName    string
	InC, OutC    int
	K            int // kernel size
	Stride, Pad  int
	W            *Param
	B            *Param
	lastX        *tensor.Tensor
	lastInH      int
	lastInW      int
	lastOutShape []int
}

// NewConv2D creates a convolution layer with He-initialised weights.
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *tensor.RNG) *Conv2D {
	w := tensor.New(outC, inC, k, k)
	fanIn := float64(inC * k * k)
	rng.FillNormal(w.Data, 0, math.Sqrt(2/fanIn))
	return &Conv2D{
		LayerName: name,
		InC:       inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W: &Param{Name: name + ".W", W: w, Grad: tensor.New(outC, inC, k, k)},
		B: &Param{Name: name + ".b", W: tensor.New(outC), Grad: tensor.New(outC)},
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.LayerName }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// OutDims returns the spatial output size for an input of h×w.
func (c *Conv2D) OutDims(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	return oh, ow
}

// Forward implements Layer. x must have shape [N, InC, H, W].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := c.convolve(x, c.W.W.Data, c.B.W.Data)
	if train {
		c.lastX = x
		c.lastInH, c.lastInW = x.Shape[2], x.Shape[3]
		c.lastOutShape = y.Shape
	}
	return y
}

// ForwardWith implements Compressible: the forward pass with externally
// supplied flat weights ([OutC·InC·K·K]) and bias (nil means zero),
// touching no layer state — safe to call concurrently on a shared *Conv2D.
// This is how serving materialises conv weights from the decode cache.
func (c *Conv2D) ForwardWith(x *tensor.Tensor, weights, bias []float32) *tensor.Tensor {
	if len(weights) != c.OutC*c.InC*c.K*c.K {
		panic(fmt.Sprintf("nn: %s: ForwardWith got %d weights, want %d", c.LayerName, len(weights), c.OutC*c.InC*c.K*c.K))
	}
	if bias != nil && len(bias) != c.OutC {
		panic(fmt.Sprintf("nn: %s: ForwardWith got %d biases, want %d", c.LayerName, len(bias), c.OutC))
	}
	if bias == nil {
		bias = make([]float32, c.OutC)
	}
	return c.convolve(x, weights, bias)
}

// convolve is the shared stateless convolution kernel behind Forward and
// ForwardWith. x must have shape [N, InC, H, W].
func (c *Conv2D) convolve(x *tensor.Tensor, weights, bias []float32) *tensor.Tensor {
	n, h, w := c.checkInput(x)
	oh, ow := c.OutDims(h, w)
	y := tensor.New(n, c.OutC, oh, ow)
	c.convolveInto(y, x, weights, bias, false)
	return y
}

// checkInput validates a [N, InC, H, W] input against the layer geometry
// and returns (n, h, w).
func (c *Conv2D) checkInput(x *tensor.Tensor) (n, h, w int) {
	if x.Rank() != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N, %d, H, W]", c.LayerName, x.Shape, c.InC))
	}
	n, h, w = x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := c.OutDims(h, w)
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: %s: input %dx%d too small for k=%d s=%d p=%d", c.LayerName, h, w, c.K, c.Stride, c.Pad))
	}
	return n, h, w
}

// convolveInto is the direct convolution loop writing into a caller-owned
// output. Each output position accumulates bias first then the kernel
// products in index order (the order every conv path in this package
// shares); relu fuses the following ReLU layer's clamp into the same
// pass. Work splits over (image × output channel) via the worker pool so
// a batch-1 serving request still uses every core; each output is
// computed entirely by one goroutine, preserving summation order.
func (c *Conv2D) convolveInto(y, x *tensor.Tensor, weights, bias []float32, relu bool) {
	n, h, w := c.checkInput(x)
	oh, ow := c.OutDims(h, w)
	inSz := c.InC * h * w
	outSz := c.OutC * oh * ow
	flops := int64(n) * int64(outSz) * int64(c.InC*c.K*c.K)
	tensor.ParallelGrid(n, c.OutC, flops, func(b0, b1, oc0, oc1 int) {
		for b := b0; b < b1; b++ {
			in := x.Data[b*inSz : (b+1)*inSz]
			out := y.Data[b*outSz : (b+1)*outSz]
			for oc := oc0; oc < oc1; oc++ {
				wBase := oc * c.InC * c.K * c.K
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						sum := bias[oc]
						iy0 := oy*c.Stride - c.Pad
						ix0 := ox*c.Stride - c.Pad
						for ic := 0; ic < c.InC; ic++ {
							chIn := in[ic*h*w:]
							chW := weights[wBase+ic*c.K*c.K:]
							for ky := 0; ky < c.K; ky++ {
								iy := iy0 + ky
								if iy < 0 || iy >= h {
									continue
								}
								rowIn := chIn[iy*w:]
								rowW := chW[ky*c.K:]
								for kx := 0; kx < c.K; kx++ {
									ix := ix0 + kx
									if ix < 0 || ix >= w {
										continue
									}
									sum += rowIn[ix] * rowW[kx]
								}
							}
						}
						if relu && !(sum > 0) {
							sum = 0
						}
						out[oc*oh*ow+oy*ow+ox] = sum
					}
				}
			}
		}
	})
}

// ForwardInference implements Compressible: the conv serving path.
// Dense weights run the direct kernel (the same one ForwardWith uses, so
// bits match the non-fused path); CSR weights run the im2col SpMM. Both
// fuse the following ReLU into the kernel when fuseReLU is set and return
// a pooled output the caller recycles.
func (c *Conv2D) ForwardInference(x *tensor.Tensor, lw LayerWeights, fuseReLU bool) *tensor.Tensor {
	if lw.Sparse != nil {
		return c.forwardSparsePooled(x, lw.Sparse, lw.Bias, fuseReLU)
	}
	if len(lw.Dense) != c.OutC*c.InC*c.K*c.K {
		panic(fmt.Sprintf("nn: %s: ForwardWith got %d weights, want %d", c.LayerName, len(lw.Dense), c.OutC*c.InC*c.K*c.K))
	}
	bias := lw.Bias
	if bias != nil && len(bias) != c.OutC {
		panic(fmt.Sprintf("nn: %s: ForwardWith got %d biases, want %d", c.LayerName, len(bias), c.OutC))
	}
	if bias == nil {
		bias = make([]float32, c.OutC)
	}
	n, h, w := c.checkInput(x)
	oh, ow := c.OutDims(h, w)
	y := tensor.NewPooled(n, c.OutC, oh, ow)
	c.convolveInto(y, x, lw.Dense, bias, fuseReLU)
	return y
}

// Kind implements Compressible.
func (c *Conv2D) Kind() LayerKind { return KindConv }

// WeightShape implements Compressible: [OutC, InC, K, K].
func (c *Conv2D) WeightShape() []int { return []int{c.OutC, c.InC, c.K, c.K} }

// Weights returns the live flat weight slice (not a copy).
func (c *Conv2D) Weights() []float32 { return c.W.W.Data }

// SetWeights replaces the kernel data (the slice is copied).
func (c *Conv2D) SetWeights(w []float32) {
	if len(w) != len(c.W.W.Data) {
		panic(fmt.Sprintf("nn: %s: SetWeights got %d values, want %d", c.LayerName, len(w), len(c.W.W.Data)))
	}
	copy(c.W.W.Data, w)
}

// WeightParam implements Compressible.
func (c *Conv2D) WeightParam() *Param { return c.W }

// BiasParam implements Compressible.
func (c *Conv2D) BiasParam() *Param { return c.B }

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if c.lastX == nil {
		panic("nn: Conv2D.Backward without Forward(train=true)")
	}
	x := c.lastX
	n, h, w := x.Shape[0], c.lastInH, c.lastInW
	oh, ow := c.lastOutShape[2], c.lastOutShape[3]
	dx := tensor.New(x.Shape...)
	inSz := c.InC * h * w
	outSz := c.OutC * oh * ow
	weights := c.W.W.Data
	kk := c.K * c.K

	// Parameter gradients: accumulate per batch element into per-worker
	// buffers would complicate things; the batch loop is serial over b for
	// dW/db (cheap relative to dx) while dx is batch-parallel.
	dW := c.W.Grad.Data
	db := c.B.Grad.Data
	for b := 0; b < n; b++ {
		in := x.Data[b*inSz : (b+1)*inSz]
		g := dout.Data[b*outSz : (b+1)*outSz]
		for oc := 0; oc < c.OutC; oc++ {
			wBase := oc * c.InC * kk
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gv := g[oc*oh*ow+oy*ow+ox]
					if gv == 0 {
						continue
					}
					db[oc] += gv
					iy0 := oy*c.Stride - c.Pad
					ix0 := ox*c.Stride - c.Pad
					for ic := 0; ic < c.InC; ic++ {
						chIn := in[ic*h*w:]
						base := wBase + ic*kk
						for ky := 0; ky < c.K; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < c.K; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								dW[base+ky*c.K+kx] += gv * chIn[iy*w+ix]
							}
						}
					}
				}
			}
		}
	}

	tensor.ParallelFor(n, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			g := dout.Data[b*outSz : (b+1)*outSz]
			dIn := dx.Data[b*inSz : (b+1)*inSz]
			for oc := 0; oc < c.OutC; oc++ {
				wBase := oc * c.InC * kk
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						gv := g[oc*oh*ow+oy*ow+ox]
						if gv == 0 {
							continue
						}
						iy0 := oy*c.Stride - c.Pad
						ix0 := ox*c.Stride - c.Pad
						for ic := 0; ic < c.InC; ic++ {
							chD := dIn[ic*h*w:]
							base := wBase + ic*kk
							for ky := 0; ky < c.K; ky++ {
								iy := iy0 + ky
								if iy < 0 || iy >= h {
									continue
								}
								for kx := 0; kx < c.K; kx++ {
									ix := ix0 + kx
									if ix < 0 || ix >= w {
										continue
									}
									chD[iy*w+ix] += gv * weights[base+ky*c.K+kx]
								}
							}
						}
					}
				}
			}
		}
	})
	return dx
}
