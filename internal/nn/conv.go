package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution layer with square kernels, configurable stride
// and zero padding. Weights have shape [OutC, InC, K, K].
type Conv2D struct {
	LayerName    string
	InC, OutC    int
	K            int // kernel size
	Stride, Pad  int
	W            *Param
	B            *Param
	lastX        *tensor.Tensor
	lastInH      int
	lastInW      int
	lastOutShape []int
}

// NewConv2D creates a convolution layer with He-initialised weights.
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *tensor.RNG) *Conv2D {
	w := tensor.New(outC, inC, k, k)
	fanIn := float64(inC * k * k)
	rng.FillNormal(w.Data, 0, math.Sqrt(2/fanIn))
	return &Conv2D{
		LayerName: name,
		InC:       inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W: &Param{Name: name + ".W", W: w, Grad: tensor.New(outC, inC, k, k)},
		B: &Param{Name: name + ".b", W: tensor.New(outC), Grad: tensor.New(outC)},
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.LayerName }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// OutDims returns the spatial output size for an input of h×w.
func (c *Conv2D) OutDims(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	return oh, ow
}

// Forward implements Layer. x must have shape [N, InC, H, W].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [N, %d, H, W]", c.LayerName, x.Shape, c.InC))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := c.OutDims(h, w)
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: %s: input %dx%d too small for k=%d s=%d p=%d", c.LayerName, h, w, c.K, c.Stride, c.Pad))
	}
	y := tensor.New(n, c.OutC, oh, ow)
	if train {
		c.lastX = x
		c.lastInH, c.lastInW = h, w
		c.lastOutShape = y.Shape
	}
	inSz := c.InC * h * w
	outSz := c.OutC * oh * ow
	weights := c.W.W.Data
	bias := c.B.W.Data
	tensor.ParallelFor(n, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			in := x.Data[b*inSz : (b+1)*inSz]
			out := y.Data[b*outSz : (b+1)*outSz]
			for oc := 0; oc < c.OutC; oc++ {
				wBase := oc * c.InC * c.K * c.K
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						sum := bias[oc]
						iy0 := oy*c.Stride - c.Pad
						ix0 := ox*c.Stride - c.Pad
						for ic := 0; ic < c.InC; ic++ {
							chIn := in[ic*h*w:]
							chW := weights[wBase+ic*c.K*c.K:]
							for ky := 0; ky < c.K; ky++ {
								iy := iy0 + ky
								if iy < 0 || iy >= h {
									continue
								}
								rowIn := chIn[iy*w:]
								rowW := chW[ky*c.K:]
								for kx := 0; kx < c.K; kx++ {
									ix := ix0 + kx
									if ix < 0 || ix >= w {
										continue
									}
									sum += rowIn[ix] * rowW[kx]
								}
							}
						}
						out[oc*oh*ow+oy*ow+ox] = sum
					}
				}
			}
		}
	})
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if c.lastX == nil {
		panic("nn: Conv2D.Backward without Forward(train=true)")
	}
	x := c.lastX
	n, h, w := x.Shape[0], c.lastInH, c.lastInW
	oh, ow := c.lastOutShape[2], c.lastOutShape[3]
	dx := tensor.New(x.Shape...)
	inSz := c.InC * h * w
	outSz := c.OutC * oh * ow
	weights := c.W.W.Data
	kk := c.K * c.K

	// Parameter gradients: accumulate per batch element into per-worker
	// buffers would complicate things; the batch loop is serial over b for
	// dW/db (cheap relative to dx) while dx is batch-parallel.
	dW := c.W.Grad.Data
	db := c.B.Grad.Data
	for b := 0; b < n; b++ {
		in := x.Data[b*inSz : (b+1)*inSz]
		g := dout.Data[b*outSz : (b+1)*outSz]
		for oc := 0; oc < c.OutC; oc++ {
			wBase := oc * c.InC * kk
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gv := g[oc*oh*ow+oy*ow+ox]
					if gv == 0 {
						continue
					}
					db[oc] += gv
					iy0 := oy*c.Stride - c.Pad
					ix0 := ox*c.Stride - c.Pad
					for ic := 0; ic < c.InC; ic++ {
						chIn := in[ic*h*w:]
						base := wBase + ic*kk
						for ky := 0; ky < c.K; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < c.K; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								dW[base+ky*c.K+kx] += gv * chIn[iy*w+ix]
							}
						}
					}
				}
			}
		}
	}

	tensor.ParallelFor(n, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			g := dout.Data[b*outSz : (b+1)*outSz]
			dIn := dx.Data[b*inSz : (b+1)*inSz]
			for oc := 0; oc < c.OutC; oc++ {
				wBase := oc * c.InC * kk
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						gv := g[oc*oh*ow+oy*ow+ox]
						if gv == 0 {
							continue
						}
						iy0 := oy*c.Stride - c.Pad
						ix0 := ox*c.Stride - c.Pad
						for ic := 0; ic < c.InC; ic++ {
							chD := dIn[ic*h*w:]
							base := wBase + ic*kk
							for ky := 0; ky < c.K; ky++ {
								iy := iy0 + ky
								if iy < 0 || iy >= h {
									continue
								}
								for kx := 0; kx < c.K; kx++ {
									ix := ix0 + kx
									if ix < 0 || ix >= w {
										continue
									}
									chD[iy*w+ix] += gv * weights[base+ky*c.K+kx]
								}
							}
						}
					}
				}
			}
		}
	})
	return dx
}
