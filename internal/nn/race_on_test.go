//go:build race

package nn

// raceEnabled gates the alloc-budget assertions: under the race detector
// sync.Pool deliberately drops a fraction of Puts (to widen interleaving
// coverage), so pooled buffers legitimately re-allocate and any byte
// budget would flake. The non-race CI step covers the assertions.
const raceEnabled = true
