package nn

import "repro/internal/tensor"

// LayerKind tags the weight-carrying layer families DeepSZ can compress.
// The values are serialized into version-3 `.dsz` streams (one byte per
// layer), so they are part of the on-disk format and must never be
// renumbered.
type LayerKind uint8

const (
	// KindDense is a fully connected (inner-product) layer, the only kind
	// the paper compresses and the only kind pre-v3 streams can carry.
	KindDense LayerKind = 1
	// KindConv is a 2-D convolution layer.
	KindConv LayerKind = 2
)

// String returns the short human-readable tag used in reports and APIs.
func (k LayerKind) String() string {
	switch k {
	case KindDense:
		return "fc"
	case KindConv:
		return "conv"
	}
	return "unknown"
}

// KnownKind reports whether k is a layer kind this build can reconstruct.
// Stream readers use it to reject forged kind bytes before sizing any
// allocation off the header.
func KnownKind(k LayerKind) bool {
	return k == KindDense || k == KindConv
}

// Compressible is a layer whose weight tensor the DeepSZ pipeline can
// prune, assess, and compress. Dense and Conv2D implement it; the core
// package operates exclusively through this interface so every downstream
// feature (codecs, worker pools, the serving decode cache) applies to all
// weighted layer kinds uniformly.
type Compressible interface {
	Layer
	// Kind identifies the layer family (fc, conv).
	Kind() LayerKind
	// WeightShape returns the weight tensor's dimensions — [out, in] for
	// fc, [outC, inC, k, k] for conv. The flat Weights slice has exactly
	// the product of these entries.
	WeightShape() []int
	// Weights returns the live flat weight slice (not a copy).
	Weights() []float32
	// SetWeights replaces the weight data (the slice is copied).
	SetWeights(w []float32)
	// WeightParam returns the weight parameter (for masks and stripping).
	WeightParam() *Param
	// BiasParam returns the bias parameter.
	BiasParam() *Param
	// ForwardWith computes the layer output from externally supplied flat
	// weights and bias (nil bias means zero), touching no layer state; it
	// is safe to call concurrently on a shared layer value.
	ForwardWith(x *tensor.Tensor, weights, bias []float32) *tensor.Tensor
	// ForwardSparse is ForwardWith for CSR weights (rows = WeightShape[0],
	// cols = the product of the remaining dimensions). For finite inputs
	// its output is bit-identical to ForwardWith on the dense form of the
	// same matrix; like ForwardWith it touches no layer state.
	ForwardSparse(x *tensor.Tensor, w *tensor.CSR, bias []float32) *tensor.Tensor
	// ForwardInference is the serving fast path: dispatch on lw
	// (dense/sparse), run the kernel with the bias — and, when fuseReLU is
	// set, the following ReLU layer — fused into its epilogue, and return
	// a pooled output tensor (tensor.NewPooled storage; the caller owns
	// recycling it). Bit-identical to ForwardWith/ForwardSparse followed
	// by a ReLU layer; touches no layer state.
	ForwardInference(x *tensor.Tensor, lw LayerWeights, fuseReLU bool) *tensor.Tensor
}

// CompressibleLayers returns the weight-carrying layers of the network in
// order — the set DeepSZ can prune and compress.
func (n *Network) CompressibleLayers() []Compressible {
	var cs []Compressible
	for _, l := range n.Layers {
		if c, ok := l.(Compressible); ok {
			cs = append(cs, c)
		}
	}
	return cs
}

// CompressibleByName returns the named weight-carrying layer, or nil.
func (n *Network) CompressibleByName(name string) Compressible {
	for _, l := range n.Layers {
		if c, ok := l.(Compressible); ok && c.Name() == name {
			return c
		}
	}
	return nil
}
