package nn

import (
	"repro/internal/dataset"
	"repro/internal/tensor"
)

// SGD is stochastic gradient descent with momentum and L2 weight decay, the
// Caffe default solver used by the paper. Updates respect pruning masks:
// masked-out weights stay exactly zero (the "retrain with masks" step of
// network pruning).
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32
	vel         map[*Param][]float32
}

// NewSGD creates an optimizer.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, vel: make(map[*Param][]float32)}
}

// Step applies one update to every parameter and re-applies masks.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := s.vel[p]
		if !ok {
			v = make([]float32, len(p.W.Data))
			s.vel[p] = v
		}
		w := p.W.Data
		g := p.Grad.Data
		for i := range w {
			grad := g[i] + s.WeightDecay*w[i]
			v[i] = s.Momentum*v[i] - s.LR*grad
			w[i] += v[i]
		}
		p.ApplyMask()
	}
}

// TrainConfig controls the training loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// LRDecay multiplies the learning rate after each epoch (1 = constant).
	LRDecay float32
	// Silent training emits no output; there is no logging here by design —
	// callers report progress.
}

// Train runs mini-batch SGD over ds. The rng drives shuffling only, so runs
// are reproducible. Returns the final epoch's mean loss.
func Train(net *Network, ds *dataset.Set, opt *SGD, cfg TrainConfig, rng *tensor.RNG) float64 {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LRDecay == 0 {
		cfg.LRDecay = 1
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(ds.Len())
		var epochLoss float64
		batches := 0
		for lo := 0; lo < len(perm); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(perm) {
				hi = len(perm)
			}
			x, labels := ds.Batch(perm[lo:hi])
			net.ZeroGrads()
			logits := net.Forward(x, true)
			loss, grad := SoftmaxCrossEntropy(logits, labels)
			net.Backward(grad)
			opt.Step(net.Params())
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		opt.LR *= cfg.LRDecay
	}
	return lastLoss
}
