package nn

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// tinyMLP builds a 784→32→10 network for fast training tests.
func tinyMLP(rng *tensor.RNG) *Network {
	return NewNetwork("tiny-mlp",
		NewFlatten("flat"),
		NewDense("ip1", 28*28, 32, rng),
		NewReLU("relu1"),
		NewDense("ip2", 32, 10, rng),
	)
}

func TestTrainTinyMLPOnSynthMNIST(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := tinyMLP(rng)
	train := dataset.SynthMNIST(1500, 10)
	test := dataset.SynthMNIST(400, 11)
	opt := NewSGD(0.1, 0.9, 1e-4)
	loss := Train(net, train, opt, TrainConfig{Epochs: 3, BatchSize: 32}, rng)
	if math.IsNaN(loss) {
		t.Fatal("training diverged to NaN")
	}
	acc := net.Evaluate(test, 100)
	if acc.Top1 < 0.9 {
		t.Fatalf("top-1 accuracy %.3f after training, want ≥0.9", acc.Top1)
	}
	if acc.Top5 < acc.Top1 {
		t.Fatal("top-5 accuracy below top-1")
	}
}

func TestEvaluateFromWithFeatureCache(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := tinyMLP(rng)
	test := dataset.SynthMNIST(200, 12)
	full := net.Evaluate(test, 64)

	k := net.FirstDenseIndex()
	features := net.FeatureCache(k, test, 64)
	cached := net.EvaluateFrom(k, features, test, 64)
	if full.Top1 != cached.Top1 || full.Top5 != cached.Top5 {
		t.Fatalf("cached evaluation %+v differs from full %+v", cached, full)
	}
}

func TestForwardRangeComposition(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := tinyMLP(rng)
	x := tensor.New(4, 1, 28, 28)
	rng.FillNormal(x.Data, 0, 1)
	full := net.Forward(x.Clone(), false)
	mid := net.ForwardRange(0, 2, x.Clone(), false)
	composed := net.ForwardRange(2, len(net.Layers), mid, false)
	for i := range full.Data {
		if full.Data[i] != composed.Data[i] {
			t.Fatal("ForwardRange composition differs from full forward")
		}
	}
}

func TestDenseLayersAndIndices(t *testing.T) {
	rng := tensor.NewRNG(4)
	net := tinyMLP(rng)
	ds := net.DenseLayers()
	if len(ds) != 2 || ds[0].Name() != "ip1" || ds[1].Name() != "ip2" {
		t.Fatalf("DenseLayers = %v", ds)
	}
	if net.FirstDenseIndex() != 1 {
		t.Fatalf("FirstDenseIndex = %d", net.FirstDenseIndex())
	}
	if net.LayerIndex("ip2") != 3 {
		t.Fatalf("LayerIndex(ip2) = %d", net.LayerIndex("ip2"))
	}
	if net.LayerIndex("nope") != -1 {
		t.Fatal("missing layer should give -1")
	}
}

func TestParamBytes(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := NewNetwork("n",
		NewConv2D("c1", 1, 2, 3, 1, 0, rng), // 2*1*9 + 2 = 20 params
		NewFlatten("f"),
		NewDense("fc", 8, 4, rng), // 32 + 4 = 36 params
	)
	total, dense := net.ParamBytes()
	if total != 56*4 {
		t.Fatalf("total = %d", total)
	}
	if dense != 36*4 {
		t.Fatalf("dense = %d", dense)
	}
}

func TestMaskedSGDKeepsZeros(t *testing.T) {
	rng := tensor.NewRNG(6)
	net := tinyMLP(rng)
	// Prune half of ip1's weights.
	d := net.DenseLayers()[0]
	mask := make([]bool, len(d.W.W.Data))
	for i := range mask {
		mask[i] = i%2 == 0
	}
	d.W.Mask = mask
	d.W.ApplyMask()

	train := dataset.SynthMNIST(300, 13)
	opt := NewSGD(0.05, 0.9, 0)
	Train(net, train, opt, TrainConfig{Epochs: 1, BatchSize: 32}, rng)
	for i, keep := range mask {
		if !keep && d.W.W.Data[i] != 0 {
			t.Fatalf("pruned weight %d drifted to %v", i, d.W.W.Data[i])
		}
	}
	// Kept weights must have actually trained.
	moved := false
	for i, keep := range mask {
		if keep && d.W.Grad.Data[i] != 0 {
			moved = true
			_ = i
			break
		}
	}
	if !moved {
		t.Fatal("no kept weight received gradient")
	}
}

func TestTrainWithConvNet(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := NewNetwork("tiny-cnn",
		NewConv2D("conv1", 1, 4, 5, 1, 0, rng), // 28→24
		NewMaxPool2D("pool1", 2, 2),            // →12
		NewReLU("relu1"),
		NewFlatten("flat"),
		NewDense("ip1", 4*12*12, 10, rng),
	)
	train := dataset.SynthMNIST(600, 14)
	test := dataset.SynthMNIST(200, 15)
	opt := NewSGD(0.05, 0.9, 1e-4)
	Train(net, train, opt, TrainConfig{Epochs: 3, BatchSize: 32}, rng)
	acc := net.Evaluate(test, 50)
	if acc.Top1 < 0.8 {
		t.Fatalf("conv net top-1 %.3f, want ≥0.8", acc.Top1)
	}
}

func TestCountTopK(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		0, 1, 2, 3, 4, 5, 6, 7, 8, 9, // label 9: top1 hit
		9, 8, 7, 6, 5, 4, 3, 2, 1, 0, // label 4: within top 5
		9, 8, 7, 6, 5, 4, 3, 2, 1, 0, // label 9: miss entirely
	}, 3, 10)
	t1, t5 := countTopK(logits, []int{9, 4, 9})
	if t1 != 1 {
		t.Fatalf("top1 = %d, want 1", t1)
	}
	if t5 != 2 {
		t.Fatalf("top5 = %d, want 2", t5)
	}
}

func TestSGDLRDecay(t *testing.T) {
	rng := tensor.NewRNG(8)
	net := tinyMLP(rng)
	train := dataset.SynthMNIST(64, 16)
	opt := NewSGD(0.1, 0, 0)
	Train(net, train, opt, TrainConfig{Epochs: 2, BatchSize: 32, LRDecay: 0.5}, rng)
	if math.Abs(float64(opt.LR)-0.025) > 1e-9 {
		t.Fatalf("LR after 2 epochs of 0.5 decay = %v, want 0.025", opt.LR)
	}
}
