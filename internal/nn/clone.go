package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// CloneLayer deep-copies a layer's parameters (masks are shared read-only;
// cached activations are not copied). Clones let the DeepSZ assessment step
// evaluate many error bounds concurrently, each worker owning a private copy
// of the fc suffix.
func CloneLayer(l Layer) Layer {
	switch v := l.(type) {
	case *Dense:
		c := &Dense{LayerName: v.LayerName, In: v.In, Out: v.Out}
		c.W = cloneParam(v.W)
		c.B = cloneParam(v.B)
		return c
	case *Conv2D:
		c := &Conv2D{
			LayerName: v.LayerName,
			InC:       v.InC, OutC: v.OutC, K: v.K, Stride: v.Stride, Pad: v.Pad,
		}
		c.W = cloneParam(v.W)
		c.B = cloneParam(v.B)
		return c
	case *ReLU:
		return NewReLU(v.LayerName)
	case *Flatten:
		return NewFlatten(v.LayerName)
	case *MaxPool2D:
		return NewMaxPool2D(v.LayerName, v.K, v.Stride)
	case *Dropout:
		return NewDropout(v.LayerName, v.Rate, v.rng)
	case *LRN:
		return NewLRN(v.LayerName, v.Size, v.Alpha, v.Beta, v.K)
	}
	panic(fmt.Sprintf("nn: CloneLayer: unsupported layer type %T", l))
}

func cloneParam(p *Param) *Param {
	var grad *tensor.Tensor
	if p.Grad.Data != nil {
		grad = tensor.New(p.Grad.Shape...)
	} else {
		// Stripped param (see StripDenseWeights): keep the clone
		// storage-free so pooled serving clones stay small.
		grad = &tensor.Tensor{Shape: append([]int(nil), p.Grad.Shape...)}
	}
	return &Param{
		Name: p.Name,
		W:    p.W.Clone(),
		Grad: grad,
		Mask: p.Mask,
	}
}

// Clone deep-copies the network (see CloneLayer for sharing semantics).
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = CloneLayer(l)
	}
	return &Network{NetName: n.NetName, Layers: layers}
}

// CloneRange deep-copies layers [from, to) as a standalone network.
func (n *Network) CloneRange(from, to int) *Network {
	if from < 0 || to > len(n.Layers) || from > to {
		panic(fmt.Sprintf("nn: CloneRange [%d,%d) of %d layers", from, to, len(n.Layers)))
	}
	layers := make([]Layer, 0, to-from)
	for _, l := range n.Layers[from:to] {
		layers = append(layers, CloneLayer(l))
	}
	return &Network{NetName: n.NetName + "-suffix", Layers: layers}
}
