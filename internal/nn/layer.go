// Package nn is a compact float32 deep-neural-network engine: layers
// (convolution, fully connected, pooling, activations), forward and backward
// passes, an SGD optimizer with pruning masks, and evaluation helpers. It
// stands in for Caffe in the DeepSZ pipeline (see DESIGN.md §1): the
// framework needs forward passes to measure inference accuracy and
// mask-retraining after pruning, both of which this package provides.
package nn

import (
	"repro/internal/tensor"
)

// Param is a trainable parameter with its gradient and an optional pruning
// mask. A nil Mask means dense; otherwise Mask[i]==false pins W.Data[i] to
// zero through training (the paper's "retrain with masks" step).
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
	Mask []bool
}

// ApplyMask zeroes masked-out weights and their gradients.
func (p *Param) ApplyMask() {
	if p.Mask == nil {
		return
	}
	for i, keep := range p.Mask {
		if !keep {
			p.W.Data[i] = 0
			p.Grad.Data[i] = 0
		}
	}
}

// Density returns the fraction of weights kept by the mask (1 if unmasked).
func (p *Param) Density() float64 {
	if p.Mask == nil {
		return 1
	}
	kept := 0
	for _, k := range p.Mask {
		if k {
			kept++
		}
	}
	return float64(kept) / float64(len(p.Mask))
}

// Layer is one stage of a network. Forward caches whatever Backward needs,
// so a Layer must not be used concurrently; parallelism lives inside the
// kernels (batch rows are processed by a goroutine pool).
type Layer interface {
	// Name returns the layer's identifier (e.g. "fc6", "conv1").
	Name() string
	// Forward computes the layer output. train enables training-only
	// behaviour (dropout) and gradient caching.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward receives ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients. It must follow a Forward with train=true.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}
