package tensor

import "fmt"

// This file is the sparse inference fast path's kernel layer. A pruned fc
// or conv weight matrix is ~90% zeros (DeepSZ keeps ~9% of AlexNet fc6),
// yet the dense kernels above pay a multiply-add for every one of them.
// CSR stores only the surviving entries — in the paper's own two-array
// spirit: 8-bit column deltas plus float32 values, ~40 bits per stored
// entry — and the SpMM kernels below iterate them in ascending column
// order, which is exactly the summation order the dense loops use over
// the surviving terms. For finite inputs the outputs are therefore
// bit-identical to the dense kernels (adding a zero term to a finite
// partial sum never changes its bits), so callers may switch between the
// dense and sparse paths freely.

// CSR is a compressed-sparse-row matrix specialised for pruned weights.
// Row r's entries live in Delta/Val[RowPtr[r]:RowPtr[r+1]]; within a row
// the column is reconstructed by pos = -1 then pos += Delta[t] per entry
// (the §3.2 / Deep Compression delta convention). A gap wider than 255
// is bridged by padding entries (Delta 255, Val 0), which the kernels
// skip. Resident cost is 5 bytes per stored entry plus the row pointers,
// i.e. the paper's 40 bits per nonzero — versus 32 bits per slot dense.
//
// A CSR is immutable after construction and safe for concurrent reads.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32 // len Rows+1; offsets into Delta/Val
	Delta      []uint8 // column gap from the previous entry in the row
	Val        []float32
}

// CSRFromDense converts a flat row-major rows×cols matrix to CSR.
func CSRFromDense(dense []float32, rows, cols int) *CSR {
	if rows < 0 || cols < 0 || rows*cols != len(dense) {
		panic(fmt.Sprintf("tensor: CSRFromDense shape %dx%d wants %d values, got %d", rows, cols, rows*cols, len(dense)))
	}
	c := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for r := 0; r < rows; r++ {
		row := dense[r*cols : (r+1)*cols]
		prev := -1
		for p, v := range row {
			if v == 0 {
				continue
			}
			gap := p - prev
			for gap > 255 {
				c.Delta = append(c.Delta, 255)
				c.Val = append(c.Val, 0)
				gap -= 255
			}
			c.Delta = append(c.Delta, uint8(gap))
			c.Val = append(c.Val, v)
			prev = p
		}
		c.RowPtr[r+1] = int32(len(c.Val))
	}
	return c
}

// NNZ returns the number of real (non-padding) stored entries.
func (c *CSR) NNZ() int {
	n := 0
	for _, v := range c.Val {
		if v != 0 {
			n++
		}
	}
	return n
}

// Density returns NNZ over the dense slot count, in [0, 1]. An empty
// matrix has density 0.
func (c *CSR) Density() float64 {
	if c.Rows*c.Cols == 0 {
		return 0
	}
	return float64(c.NNZ()) / float64(c.Rows*c.Cols)
}

// Bytes returns the resident size of the representation: 4 bytes per
// value, 1 per delta, 4 per row pointer.
func (c *CSR) Bytes() int64 {
	return 4*int64(len(c.Val)) + int64(len(c.Delta)) + 4*int64(len(c.RowPtr))
}

// Dense reconstructs the flat row-major dense matrix.
func (c *CSR) Dense() []float32 {
	out := make([]float32, c.Rows*c.Cols)
	for r := 0; r < c.Rows; r++ {
		row := out[r*c.Cols : (r+1)*c.Cols]
		pos := -1
		for t := c.RowPtr[r]; t < c.RowPtr[r+1]; t++ {
			pos += int(c.Delta[t])
			if c.Val[t] == 0 {
				continue
			}
			row[pos] = c.Val[t]
		}
	}
	return out
}

// MatMulTransBCSR computes C = A·Wᵀ with A dense (m×k) and W sparse
// (n×k) — the fc-layer forward with a CSR weight matrix. For finite
// inputs the result is bit-identical to MatMulTransB on W's dense form:
// each output accumulates W-row entries in ascending column order, the
// dense kernel's order over the surviving terms.
func MatMulTransBCSR(a *Tensor, w *CSR) *Tensor {
	c := New(a.Shape[0], w.Rows)
	MatMulTransBCSRInto(c.Data, a, w, Epilogue{})
	return c
}

// MatMulTransBCSRInto computes C = A·Wᵀ with a fused epilogue into a
// caller-owned flat (m×n) buffer, overwriting it. Like MatMulTransBInto it
// tiles the output grid over rows of A and rows of W across the worker
// pool; each output still accumulates its W-row entries on one goroutine
// in ascending column order, so the bit-identity with the dense kernel is
// unchanged by the split.
func MatMulTransBCSRInto(c []float32, a *Tensor, w *CSR, ep Epilogue) {
	if a.Rank() != 2 {
		panic("tensor: MatMulTransBCSR requires a rank-2 tensor")
	}
	m, k := a.Shape[0], a.Shape[1]
	if k != w.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransBCSR inner dimension mismatch (%d vs %d)", k, w.Cols))
	}
	n := w.Rows
	if len(c) != m*n {
		panic(fmt.Sprintf("tensor: MatMulTransBCSRInto output has %d elements, want %d", len(c), m*n))
	}
	if ep.Bias != nil && len(ep.Bias) < n {
		panic(fmt.Sprintf("tensor: MatMulTransBCSRInto epilogue has %d biases, want %d", len(ep.Bias), n))
	}
	ad := a.Data
	flops := int64(m) * int64(len(w.Val))
	parallelGrid(m, n, flops, func(i0, i1, j0, j1 int) {
		for i := i0; i < i1; i++ {
			ar := ad[i*k : (i+1)*k]
			cr := c[i*n : (i+1)*n]
			for j := j0; j < j1; j++ {
				var s float32
				pos := -1
				for t := w.RowPtr[j]; t < w.RowPtr[j+1]; t++ {
					pos += int(w.Delta[t])
					v := w.Val[t]
					if v == 0 {
						continue // gap padding
					}
					s += ar[pos] * v
				}
				cr[j] = ep.apply(s, j)
			}
		}
	})
}

// CSRMatMulInto accumulates C += W·B with W sparse (Rows×Cols), B dense
// flat (Cols×n) and C dense flat (Rows×n). Contract: work is split over
// rows of W via the persistent worker pool, so a caller NOT already inside
// a parallel region (a batch-1 conv forward — the serving hot path) gets
// multicore SpMM for free; a caller already saturating the pool (the batch
// loop of a multi-image conv forward) finds no idle workers and each
// invocation degrades to the old serial loop — never nested goroutine
// fan-out. Either way each output row accumulates its entries in stored
// order on one goroutine, matching the dense ikj kernel's zero-skipping
// loop, so outputs stay bit-identical for finite inputs.
func CSRMatMulInto(c []float32, w *CSR, b []float32, n int) {
	CSRMatMulIntoEp(c, w, b, n, Epilogue{})
}

// CSRMatMulIntoEp is CSRMatMulInto with a row-indexed fused epilogue
// (bias per output row — the conv convention where row = output channel —
// then optional ReLU), applied to each output row once its accumulation
// completes. Callers that pre-seed C with the bias (the direct conv
// kernel's order) pass a nil-bias epilogue.
func CSRMatMulIntoEp(c []float32, w *CSR, b []float32, n int, ep Epilogue) {
	if len(c) != w.Rows*n || len(b) != w.Cols*n {
		panic(fmt.Sprintf("tensor: CSRMatMulInto got C[%d] B[%d] for %dx%d·%dx%d", len(c), len(b), w.Rows, w.Cols, w.Cols, n))
	}
	if ep.Bias != nil && len(ep.Bias) < w.Rows {
		panic(fmt.Sprintf("tensor: CSRMatMulIntoEp epilogue has %d biases, want %d", len(ep.Bias), w.Rows))
	}
	parallelRows(w.Rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			cr := c[r*n : (r+1)*n]
			pos := -1
			for t := w.RowPtr[r]; t < w.RowPtr[r+1]; t++ {
				pos += int(w.Delta[t])
				v := w.Val[t]
				if v == 0 {
					continue
				}
				br := b[pos*n : (pos+1)*n]
				for j := range cr {
					cr[j] += v * br[j]
				}
			}
			if !ep.isNop() {
				applyRowEpilogue(cr, r, ep)
			}
		}
	})
}

// MatMulCSR computes C = W·B with W sparse and B dense (Cols×n),
// parallel over W's rows. Bit-identical to MatMul(wDense, b) for finite
// inputs.
func MatMulCSR(w *CSR, b *Tensor) *Tensor {
	if b.Rank() != 2 {
		panic("tensor: MatMulCSR requires a rank-2 tensor")
	}
	if b.Shape[0] != w.Cols {
		panic(fmt.Sprintf("tensor: MatMulCSR inner dimension mismatch (%d vs %d)", w.Cols, b.Shape[0]))
	}
	n := b.Shape[1]
	c := New(w.Rows, n)
	parallelRows(w.Rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			cr := c.Data[r*n : (r+1)*n]
			pos := -1
			for t := w.RowPtr[r]; t < w.RowPtr[r+1]; t++ {
				pos += int(w.Delta[t])
				v := w.Val[t]
				if v == 0 {
					continue
				}
				br := b.Data[pos*n : (pos+1)*n]
				for j := range cr {
					cr[j] += v * br[j]
				}
			}
		}
	})
	return c
}
