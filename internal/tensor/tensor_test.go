package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tn := New(2, 3, 4)
	if tn.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tn.Len())
	}
	if tn.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", tn.Rank())
	}
	if tn.Dim(1) != 3 {
		t.Fatalf("Dim(1) = %d, want 3", tn.Dim(1))
	}
	for _, v := range tn.Data {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	tn := New(3, 4)
	tn.Set(7.5, 2, 1)
	if got := tn.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", got)
	}
	if got := tn.Data[2*4+1]; got != 7.5 {
		t.Fatalf("row-major offset wrong: %v", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tn := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	tn.At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if !a.SameShape(b) {
		t.Fatal("Clone changed shape")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Data[5] = 42
	if a.Data[5] != 42 {
		t.Fatal("Reshape must share underlying data")
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	a := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Reshape(4, 2)
}

func TestFillZeroMinMax(t *testing.T) {
	a := New(5)
	a.Fill(-2)
	min, max := a.MinMax()
	if min != -2 || max != -2 {
		t.Fatalf("MinMax after Fill = (%v,%v)", min, max)
	}
	a.Data[3] = 7
	min, max = a.MinMax()
	if min != -2 || max != 7 {
		t.Fatalf("MinMax = (%v,%v), want (-2,7)", min, max)
	}
	if a.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v, want 7", a.MaxAbs())
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Fatal("Zero did not clear data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{10, 20, 30}, 3)
	a.AddInPlace(b)
	if a.Data[2] != 33 {
		t.Fatalf("AddInPlace: %v", a.Data)
	}
	a.ScaleInPlace(2)
	if a.Data[0] != 22 {
		t.Fatalf("ScaleInPlace: %v", a.Data)
	}
	a.AxpyInPlace(-1, b)
	if a.Data[1] != 24 { // 44 - 20
		t.Fatalf("AxpyInPlace: %v", a.Data)
	}
}

func TestDot(t *testing.T) {
	got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6})
	if got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			c.Set(float32(s), i, j)
		}
	}
	return c
}

func randTensor(rng *RNG, shape ...int) *Tensor {
	t := New(shape...)
	rng.FillNormal(t.Data, 0, 1)
	return t
}

func tensorsClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i]-b.Data[i])) > tol {
			return false
		}
	}
	return true
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := NewRNG(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {17, 9, 23}, {64, 32, 48}} {
		a := randTensor(rng, dims[0], dims[1])
		b := randTensor(rng, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !tensorsClose(got, want, 1e-3) {
			t.Fatalf("MatMul mismatch for dims %v", dims)
		}
	}
}

func TestMatMulTransBMatchesNaive(t *testing.T) {
	rng := NewRNG(2)
	a := randTensor(rng, 13, 7)
	bt := randTensor(rng, 11, 7) // (n × k)
	// Build b = btᵀ for the naive reference.
	b := New(7, 11)
	for i := 0; i < 11; i++ {
		for j := 0; j < 7; j++ {
			b.Set(bt.At(i, j), j, i)
		}
	}
	got := MatMulTransB(a, bt)
	want := naiveMatMul(a, b)
	if !tensorsClose(got, want, 1e-3) {
		t.Fatal("MatMulTransB mismatch")
	}
}

func TestMatMulTransAMatchesNaive(t *testing.T) {
	rng := NewRNG(3)
	at := randTensor(rng, 9, 14) // (k × m)
	b := randTensor(rng, 9, 5)
	a := New(14, 9)
	for i := 0; i < 9; i++ {
		for j := 0; j < 14; j++ {
			a.Set(at.At(i, j), j, i)
		}
	}
	got := MatMulTransA(at, b)
	want := naiveMatMul(a, b)
	if !tensorsClose(got, want, 1e-3) {
		t.Fatal("MatMulTransA mismatch")
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 15, 16, 100, 1000} {
		seen := make([]int32, n)
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestRNGFloatRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if f := r.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(9)
	if err := quick.Check(func(x uint16) bool {
		n := int(x%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFillUniformBounds(t *testing.T) {
	r := NewRNG(13)
	buf := make([]float32, 1000)
	r.FillUniform(buf, -0.5, 0.5)
	for _, v := range buf {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}
