package tensor

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the kernel layer's scheduling and memory substrate: a
// persistent worker pool that replaces the old per-call goroutine spawning
// in parallelRows/ParallelFor, and a size-bucketed buffer pool so
// steady-state serving reuses kernel output storage instead of allocating
// per request.
//
// Pool design. Workers are spawned lazily (up to GOMAXPROCS at first
// parallel call, growing if GOMAXPROCS is raised later) and block on an
// UNBUFFERED job channel. Dispatch uses a non-blocking send, so a job is
// handed over only when a worker is actually idle — there is no queue. Two
// properties follow:
//
//   - Nested parallelism degrades gracefully instead of deadlocking: when a
//     parallel region is already saturating the pool, an inner parallel
//     call finds no idle worker and every chunk runs on the calling
//     goroutine. A buffered queue could deadlock here (outer jobs waiting
//     on inner jobs that sit behind them in the queue); the idle-only
//     handoff cannot, because the caller never waits for a handoff and
//     always participates in its own work loop.
//   - The caller is always one of the workers, so a parallel call costs at
//     most (workers-1) channel sends — no goroutine creation on the hot
//     path.
//
// Chunking is balanced and dynamic: [0, m) is split into equal chunks
// whose sizes differ by at most one row (the old code's ceil-division
// could leave one undersized trailing chunk for the slowest worker to
// finish last), and helpers claim chunks from an atomic counter so a
// worker that finishes early picks up remaining chunks instead of idling.

// maxPoolWorkers bounds the lazily spawned pool; it exists only to keep a
// pathological GOMAXPROCS from minting unbounded goroutines.
const maxPoolWorkers = 256

var (
	poolMu      sync.Mutex
	poolSize    int
	poolJobs    chan func()
	poolJobsRef atomic.Pointer[chan func()] // lock-free read of poolJobs on the hot path
)

// ensureWorkers makes sure at least n pool workers exist, spawning any
// missing ones. Workers are never torn down; an idle worker is just a
// goroutine blocked on a channel receive.
func ensureWorkers(n int) {
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	poolMu.Lock()
	if poolJobs == nil {
		poolJobs = make(chan func())
		poolJobsRef.Store(&poolJobs)
	}
	for poolSize < n {
		go func(jobs chan func()) {
			for f := range jobs {
				f()
			}
		}(poolJobs)
		poolSize++
	}
	poolMu.Unlock()
}

// dispatch offers f to an idle pool worker and reports whether one took
// it. It never blocks: if every worker is busy the caller should run the
// work itself.
func dispatch(f func()) bool {
	jobs := poolJobsRef.Load()
	if jobs == nil {
		return false
	}
	select {
	case *jobs <- f:
		return true
	default:
		return false
	}
}

// chunkBounds returns the half-open range of chunk c when [0, m) is split
// into n balanced chunks (sizes differ by at most one).
func chunkBounds(c, m, n int) (lo, hi int) {
	base, rem := m/n, m%n
	lo = c*base + min(c, rem)
	hi = lo + base
	if c < rem {
		hi++
	}
	return lo, hi
}

// chunkOversub is how many chunks are carved per available worker; claiming
// chunks dynamically from a shared counter lets fast workers absorb slow
// chunks, and a few chunks per worker smooths imbalance without shrinking
// chunks below useful sizes.
const chunkOversub = 4

// minParallelRows is the range size below which parallelRows runs inline;
// below this the channel handoff costs more than the work.
const minParallelRows = 16

// parallelRows splits [0, m) into balanced contiguous chunks and runs fn
// over them on the persistent worker pool, the calling goroutine included.
// Small ranges run inline. Safe to call from inside another parallel
// region: with no idle workers it degrades to an inline loop.
func parallelRows(m int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 || m < minParallelRows {
		fn(0, m)
		return
	}
	nchunks := workers * chunkOversub
	if nchunks > m {
		nchunks = m
	}
	var next atomic.Int64
	run := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= nchunks {
				return
			}
			lo, hi := chunkBounds(c, m, nchunks)
			fn(lo, hi)
		}
	}
	runHelpers(workers-1, run)
}

// runHelpers offers the claim loop to up to extra idle pool workers, runs
// it on the calling goroutine, and waits for the helpers that actually
// started. The first refused handoff stops offering: no idle worker now
// means the pool is saturated and the caller will chew through the chunks
// itself.
func runHelpers(extra int, run func()) {
	ensureWorkers(extra)
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		wg.Add(1)
		if !dispatch(func() { defer wg.Done(); run() }) {
			wg.Done()
			break
		}
	}
	run()
	wg.Wait()
}

// ParallelFor runs fn over [0, n) split across the persistent worker pool
// (see parallelRows). It is exported for batch-parallel layer kernels.
func ParallelFor(n int, fn func(lo, hi int)) { parallelRows(n, fn) }

// ParallelGrid runs fn over row×column blocks of an m×n grid on the
// worker pool (see parallelGrid). Exported for layer kernels that split
// work over two axes — e.g. conv over (image × output channel), so a
// batch-1 request still spreads across cores.
func ParallelGrid(m, n int, flops int64, fn func(i0, i1, j0, j1 int)) {
	parallelGrid(m, n, flops, fn)
}

// minParallelFlops gates grid parallelism: below this many multiply-adds
// the handoff overhead dominates and the kernel runs inline.
const minParallelFlops = 1 << 14

// minColBlock keeps column blocks wide enough that the 4-wide register
// blocking and per-block setup stay amortised.
const minColBlock = 16

// parallelGrid partitions an m×n output grid into row×column blocks and
// runs fn on each, using idle pool workers plus the caller. Rows split
// first; columns split only when there are fewer rows than workers (the
// serving case: small batch against a wide weight matrix). flops is the
// kernel's multiply-add estimate, used to gate parallelism for small
// problems. Each output element is computed by exactly one block, so
// kernels keep their per-output summation order regardless of the split.
func parallelGrid(m, n int, flops int64, fn func(i0, i1, j0, j1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || flops < minParallelFlops || m == 0 || n == 0 {
		fn(0, m, 0, n)
		return
	}
	rows := workers
	if rows > m {
		rows = m
	}
	cols := 1
	if rows < workers {
		cols = (workers + rows - 1) / rows
		if maxCols := n / minColBlock; cols > maxCols {
			cols = maxCols
		}
		if cols < 1 {
			cols = 1
		}
	}
	units := rows * cols
	if units == 1 {
		fn(0, m, 0, n)
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			u := int(next.Add(1)) - 1
			if u >= units {
				return
			}
			i0, i1 := chunkBounds(u/cols, m, rows)
			j0, j1 := chunkBounds(u%cols, n, cols)
			fn(i0, i1, j0, j1)
		}
	}
	runHelpers(workers-1, run)
}

// Buffer pool: kernel outputs bucketed by power-of-two capacity. Serving
// runs the same shapes request after request, so steady state is pure
// reuse. Slices enter the bucket of the largest power of two ≤ cap, so a
// Get from bucket b always yields cap ≥ 2^b regardless of where the slice
// came from.

const bufBuckets = 28 // up to 2^27 floats (512 MiB) pooled; larger stay GC-managed

var bufPool [bufBuckets]sync.Pool

// getBuf returns a float32 slice of length n backed by pooled storage.
// Contents are unspecified; callers that need zeros must clear it.
func getBuf(n int) []float32 {
	if n == 0 {
		return nil
	}
	b := bits.Len(uint(n - 1)) // smallest b with 2^b ≥ n
	if b >= bufBuckets {
		return make([]float32, n)
	}
	if p, ok := bufPool[b].Get().(*[]float32); ok {
		return (*p)[:n]
	}
	return make([]float32, n, 1<<b)
}

// putBuf returns a slice's storage to the pool. The caller must not touch
// the slice afterwards.
func putBuf(s []float32) {
	c := cap(s)
	if c == 0 {
		return
	}
	b := bits.Len(uint(c)) - 1 // largest b with 2^b ≤ cap
	if b >= bufBuckets {
		return
	}
	s = s[:0]
	bufPool[b].Put(&s)
}

// NewPooled returns a zero-filled tensor like New, but backed by recycled
// storage when available. Pair with Recycle once the tensor (and every
// view sharing its storage) is dead.
func NewPooled(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	data := getBuf(n)
	clear(data)
	return &Tensor{Shape: shape, Data: data}
}

// Recycle returns t's storage to the buffer pool. The caller asserts that
// no live tensor shares the storage; t must not be used afterwards. Safe
// on tensors not built by NewPooled — their storage simply joins the pool.
func Recycle(t *Tensor) {
	if t == nil || t.Data == nil {
		return
	}
	putBuf(t.Data)
	t.Data = nil
}
