package tensor

import (
	"fmt"
	"math"
	"testing"
)

// sparseRandom fills a rows×cols matrix keeping roughly density of the
// entries nonzero.
func sparseRandom(rng *RNG, rows, cols int, density float64) []float32 {
	w := make([]float32, rows*cols)
	rng.FillNormal(w, 0, 1)
	gate := make([]float32, len(w))
	rng.FillUniform(gate, 0, 1)
	for i := range w {
		if float64(gate[i]) >= density {
			w[i] = 0
		}
	}
	return w
}

func TestCSRRoundTrip(t *testing.T) {
	rng := NewRNG(42)
	cases := []struct {
		rows, cols int
		density    float64
	}{
		{1, 1, 1},
		{4, 7, 0},       // all-zero matrix
		{8, 300, 0.005}, // gaps > 255 force padding entries
		{16, 64, 0.1},
		{3, 1000, 0.002},
		{32, 32, 1},
		{5, 9, 0.5},
	}
	for _, tc := range cases {
		dense := sparseRandom(rng, tc.rows, tc.cols, tc.density)
		c := CSRFromDense(dense, tc.rows, tc.cols)
		back := c.Dense()
		if len(back) != len(dense) {
			t.Fatalf("%dx%d: round trip length %d, want %d", tc.rows, tc.cols, len(back), len(dense))
		}
		for i := range dense {
			if back[i] != dense[i] {
				t.Fatalf("%dx%d d=%v: element %d: %v, want %v", tc.rows, tc.cols, tc.density, i, back[i], dense[i])
			}
		}
		nnz := 0
		for _, v := range dense {
			if v != 0 {
				nnz++
			}
		}
		if c.NNZ() != nnz {
			t.Fatalf("%dx%d: NNZ %d, want %d", tc.rows, tc.cols, c.NNZ(), nnz)
		}
		wantDensity := float64(nnz) / float64(tc.rows*tc.cols)
		if math.Abs(c.Density()-wantDensity) > 1e-12 {
			t.Fatalf("%dx%d: density %v, want %v", tc.rows, tc.cols, c.Density(), wantDensity)
		}
		// The storage claim: 5 bytes per stored entry (value + delta) plus
		// the row pointers — the paper's ~40 bits per nonzero.
		want := 5*int64(len(c.Val)) + 4*int64(len(c.RowPtr))
		if c.Bytes() != want {
			t.Fatalf("%dx%d: Bytes %d, want %d", tc.rows, tc.cols, c.Bytes(), want)
		}
	}
}

func TestCSRRowPtrCoversAllZeroRows(t *testing.T) {
	// Rows 0 and 2 empty, row 1 dense.
	dense := []float32{
		0, 0, 0,
		1, -2, 3,
		0, 0, 0,
	}
	c := CSRFromDense(dense, 3, 3)
	if c.RowPtr[0] != 0 || c.RowPtr[1] != 0 || c.RowPtr[2] != 3 || c.RowPtr[3] != 3 {
		t.Fatalf("row pointers %v", c.RowPtr)
	}
	for i, v := range c.Dense() {
		if v != dense[i] {
			t.Fatalf("element %d: %v, want %v", i, v, dense[i])
		}
	}
}

// TestMatMulTransBCSRBitIdentical is the fast path's core guarantee: the
// CSR fc kernel must produce bit-for-bit the dense kernel's output at
// every density, including all-zero rows and an all-zero matrix.
func TestMatMulTransBCSRBitIdentical(t *testing.T) {
	rng := NewRNG(7)
	for _, density := range []float64{0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.9, 1} {
		for trial := 0; trial < 3; trial++ {
			m, k, n := 4+trial, 37+13*trial, 19+trial
			a := New(m, k)
			rng.FillNormal(a.Data, 0, 1)
			wDense := sparseRandom(rng, n, k, density)
			// Zero a whole weight row to cover the empty-row path.
			for j := 0; j < k; j++ {
				wDense[j] = 0
			}
			w := CSRFromDense(wDense, n, k)
			want := MatMulTransB(a, FromSlice(wDense, n, k))
			got := MatMulTransBCSR(a, w)
			if !got.SameShape(want) {
				t.Fatalf("d=%v: shape %v, want %v", density, got.Shape, want.Shape)
			}
			for i := range want.Data {
				if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
					t.Fatalf("d=%v trial %d: element %d: %v (bits %x), want %v (bits %x)",
						density, trial, i, got.Data[i], math.Float32bits(got.Data[i]),
						want.Data[i], math.Float32bits(want.Data[i]))
				}
			}
		}
	}
}

func TestMatMulCSRBitIdentical(t *testing.T) {
	rng := NewRNG(8)
	for _, density := range []float64{0, 0.05, 0.1, 0.3, 1} {
		m, k, n := 11, 29, 17
		wDense := sparseRandom(rng, m, k, density)
		b := New(k, n)
		rng.FillNormal(b.Data, 0, 1)
		w := CSRFromDense(wDense, m, k)
		want := MatMul(FromSlice(wDense, m, k), b)
		got := MatMulCSR(w, b)
		for i := range want.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("d=%v: element %d: %v, want %v", density, i, got.Data[i], want.Data[i])
			}
		}
		// The accumulate-into variant must agree too, starting from a
		// caller-zeroed buffer.
		into := make([]float32, m*n)
		CSRMatMulInto(into, w, b.Data, n)
		for i := range want.Data {
			if math.Float32bits(into[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("d=%v: into element %d: %v, want %v", density, i, into[i], want.Data[i])
			}
		}
	}
}

func TestCSRFromDenseValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape/length mismatch")
		}
	}()
	CSRFromDense(make([]float32, 5), 2, 3)
}

func TestCSRLongGapPadding(t *testing.T) {
	// One nonzero at the end of a 1000-wide row: needs ceil((1000-0)/255)
	// padding hops. Exercises delta-255 chains in every kernel.
	cols := 1000
	dense := make([]float32, cols)
	dense[cols-1] = 2.5
	c := CSRFromDense(dense, 1, cols)
	if got := c.Dense(); got[cols-1] != 2.5 {
		t.Fatalf("long-gap round trip lost the entry: %v", got[cols-1])
	}
	if c.NNZ() != 1 {
		t.Fatalf("NNZ %d, want 1", c.NNZ())
	}
	a := New(2, cols)
	NewRNG(3).FillNormal(a.Data, 0, 1)
	want := MatMulTransB(a, FromSlice(dense, 1, cols))
	got := MatMulTransBCSR(a, c)
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("element %d: %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func BenchmarkCSRKernel(b *testing.B) {
	rng := NewRNG(17)
	const out, in, batch = 256, 2048, 16
	x := New(batch, in)
	rng.FillNormal(x.Data, 0, 1)
	for _, density := range []float64{0.05, 0.1, 0.25, 0.5, 1} {
		wDense := sparseRandom(rng, out, in, density)
		w := CSRFromDense(wDense, out, in)
		wT := FromSlice(wDense, out, in)
		b.Run(fmt.Sprintf("dense/d=%v", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMulTransB(x, wT)
			}
		})
		b.Run(fmt.Sprintf("csr/d=%v", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMulTransBCSR(x, w)
			}
		})
	}
}
