package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64-seeded xoshiro256**). All randomness in this repository flows
// through RNG so experiments are reproducible bit-for-bit.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// NormFloat64 returns a standard-normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillNormal fills dst with normal(mean, std) variates.
func (r *RNG) FillNormal(dst []float32, mean, std float64) {
	for i := range dst {
		dst[i] = float32(mean + std*r.NormFloat64())
	}
}

// FillUniform fills dst with uniform [lo, hi) variates.
func (r *RNG) FillUniform(dst []float32, lo, hi float64) {
	for i := range dst {
		dst[i] = float32(lo + (hi-lo)*r.Float64())
	}
}
