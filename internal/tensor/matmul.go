package tensor

import "fmt"

// Kernel layer. Every matmul here honours one contract: the value of each
// output element is a single float32 accumulation whose terms are added in
// ascending k (inner-dimension) order, with exact zeros contributing
// nothing. That contract is what lets the dense, CSR, tiled, and fused
// variants substitute for each other bit-for-bit. Tiling therefore happens
// only over i (rows) and j (output columns) — each output still sees its
// full k-summation on one goroutine, in order. Splitting k across workers
// (a reduction tree) would reassociate the float adds and is forbidden.

// Epilogue is a fused kernel tail applied to each output element after its
// k-summation completes: add Bias[j] (nil means no bias), then clamp at
// zero when ReLU is set. The arithmetic and order match the separate
// bias-add loop and the ReLU layer exactly — (Σ terms) + bias, then
// `v > 0 ? v : 0` — so fusing changes no bits, it only removes the extra
// passes over the output.
type Epilogue struct {
	Bias []float32 // indexed by output column; nil = no bias
	ReLU bool
}

// apply runs the epilogue for output column j.
func (ep Epilogue) apply(v float32, j int) float32 {
	if ep.Bias != nil {
		v += ep.Bias[j]
	}
	if ep.ReLU && !(v > 0) {
		v = 0 // matches the ReLU layer: non-positive and NaN become +0
	}
	return v
}

// isNop reports whether the epilogue would leave every value unchanged.
func (ep Epilogue) isNop() bool { return ep.Bias == nil && !ep.ReLU }

// MatMul computes C = A·B where A is (m×k) and B is (k×n), returning a new
// (m×n) tensor. Work is split across the persistent worker pool by rows.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMul inner dimension mismatch")
	}
	c := New(m, n)
	matMulInto(c.Data, a.Data, b.Data, m, k, n, Epilogue{})
	return c
}

// MatMulTransB computes C = A·Bᵀ where A is (m×k) and B is (n×k), returning a
// new (m×n) tensor. This is the natural layout for fully connected layers
// whose weight matrix is stored (out × in).
func MatMulTransB(a, b *Tensor) *Tensor {
	c := New(a.Shape[0], b.Shape[0])
	MatMulTransBInto(c.Data, a, b, Epilogue{})
	return c
}

// MatMulTransBInto computes C = A·Bᵀ with a fused epilogue into a
// caller-owned flat (m×n) buffer, overwriting it. This is the serving fc
// kernel: row/column tiled over the worker pool with 4-wide
// register-blocked accumulators, bit-identical to the scalar loop (each
// output is an independent dot product accumulated in ascending k).
func MatMulTransBInto(c []float32, a, b *Tensor, ep Epilogue) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransB requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransB inner dimension mismatch")
	}
	if len(c) != m*n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto output has %d elements, want %d", len(c), m*n))
	}
	if ep.Bias != nil && len(ep.Bias) < n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto epilogue has %d biases, want %d", len(ep.Bias), n))
	}
	ad, bd := a.Data, b.Data
	parallelGrid(m, n, int64(m)*int64(k)*int64(n), func(i0, i1, j0, j1 int) {
		for i := i0; i < i1; i++ {
			ar := ad[i*k : (i+1)*k]
			cr := c[i*n : (i+1)*n]
			j := j0
			// 4 output columns at a time: four independent dot products
			// sharing one streaming read of A's row. Each sum is still a
			// plain ascending-k accumulation.
			for ; j+4 <= j1; j += 4 {
				b0 := bd[j*k : (j+1)*k]
				b1 := bd[(j+1)*k : (j+2)*k]
				b2 := bd[(j+2)*k : (j+3)*k]
				b3 := bd[(j+3)*k : (j+4)*k]
				var s0, s1, s2, s3 float32
				for p, av := range ar {
					s0 += av * b0[p]
					s1 += av * b1[p]
					s2 += av * b2[p]
					s3 += av * b3[p]
				}
				cr[j] = ep.apply(s0, j)
				cr[j+1] = ep.apply(s1, j+1)
				cr[j+2] = ep.apply(s2, j+2)
				cr[j+3] = ep.apply(s3, j+3)
			}
			for ; j < j1; j++ {
				br := bd[j*k : (j+1)*k]
				var s float32
				for p, av := range ar {
					s += av * br[p]
				}
				cr[j] = ep.apply(s, j)
			}
		}
	})
}

// MatMulInto accumulates C += A·B into a caller-owned flat (m×n) buffer.
// Exported for kernels that reuse output storage (the im2col conv forward
// writes straight into its output tensor instead of allocating a product
// matrix per image).
func MatMulInto(c []float32, a, b *Tensor) { MatMulIntoEp(c, a, b, Epilogue{}) }

// MatMulIntoEp is MatMulInto with a fused epilogue, applied to each output
// element after its full k-summation has accumulated — the same values the
// separate bias/ReLU passes would produce over C += A·B on a zero-seeded C.
func MatMulIntoEp(c []float32, a, b *Tensor, ep Epilogue) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulInto requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulInto inner dimension mismatch")
	}
	if len(c) != m*n {
		panic(fmt.Sprintf("tensor: MatMulInto output has %d elements, want %d", len(c), m*n))
	}
	if ep.Bias != nil && len(ep.Bias) < m {
		panic(fmt.Sprintf("tensor: MatMulIntoEp epilogue has %d biases, want %d", len(ep.Bias), m))
	}
	matMulInto(c, a.Data, b.Data, m, k, n, ep)
}

// MatMulTransA computes C = Aᵀ·B where A is (k×m) and B is (k×n), returning a
// new (m×n) tensor. Used by dense-layer backward passes.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransA requires rank-2 tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransA inner dimension mismatch")
	}
	c := New(m, n)
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cr := c.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.Data[p*m+i]
				if av == 0 {
					continue
				}
				br := b.Data[p*n : (p+1)*n]
				for j := range cr {
					cr[j] += av * br[j]
				}
			}
		}
	})
	return c
}

// matMulInto computes c += a·b with a (m×k), b (k×n), using an ikj loop
// order that streams rows of b with a zero-skip on a's entries, then runs
// the epilogue over each completed output row. For this layout the bias is
// indexed by output ROW (the im2col conv convention: row = output
// channel), so a transposed epilogue view is applied per row.
func matMulInto(c, a, b []float32, m, k, n int, ep Epilogue) {
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cr := c[i*n : (i+1)*n]
			ar := a[i*k : (i+1)*k]
			for p, av := range ar {
				if av == 0 {
					continue
				}
				br := b[p*n : (p+1)*n]
				for j := range cr {
					cr[j] += av * br[j]
				}
			}
			if !ep.isNop() {
				applyRowEpilogue(cr, i, ep)
			}
		}
	})
}

// applyRowEpilogue applies a row-indexed epilogue (bias per output row,
// then optional ReLU) to one completed output row — used by the W·B-layout
// kernels where the bias follows the row, not the column.
func applyRowEpilogue(cr []float32, row int, ep Epilogue) {
	if ep.Bias != nil {
		bv := ep.Bias[row]
		for j := range cr {
			cr[j] += bv
		}
	}
	if ep.ReLU {
		for j, v := range cr {
			if !(v > 0) {
				cr[j] = 0
			}
		}
	}
}
