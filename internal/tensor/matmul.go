package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// MatMul computes C = A·B where A is (m×k) and B is (k×n), returning a new
// (m×n) tensor. Work is split across GOMAXPROCS goroutines by rows of A.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMul inner dimension mismatch")
	}
	c := New(m, n)
	matMulInto(c.Data, a.Data, b.Data, m, k, n)
	return c
}

// MatMulTransB computes C = A·Bᵀ where A is (m×k) and B is (n×k), returning a
// new (m×n) tensor. This is the natural layout for fully connected layers
// whose weight matrix is stored (out × in).
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransB requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransB inner dimension mismatch")
	}
	c := New(m, n)
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Data[i*k : (i+1)*k]
			cr := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				br := b.Data[j*k : (j+1)*k]
				var s float32
				for p := range ar {
					s += ar[p] * br[p]
				}
				cr[j] = s
			}
		}
	})
	return c
}

// MatMulInto accumulates C += A·B into a caller-owned flat (m×n) buffer.
// Exported for kernels that reuse output storage (the im2col conv forward
// writes straight into its output tensor instead of allocating a product
// matrix per image).
func MatMulInto(c []float32, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulInto requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulInto inner dimension mismatch")
	}
	if len(c) != m*n {
		panic(fmt.Sprintf("tensor: MatMulInto output has %d elements, want %d", len(c), m*n))
	}
	matMulInto(c, a.Data, b.Data, m, k, n)
}

// MatMulTransA computes C = Aᵀ·B where A is (k×m) and B is (k×n), returning a
// new (m×n) tensor. Used by dense-layer backward passes.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransA requires rank-2 tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransA inner dimension mismatch")
	}
	c := New(m, n)
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cr := c.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.Data[p*m+i]
				if av == 0 {
					continue
				}
				br := b.Data[p*n : (p+1)*n]
				for j := range cr {
					cr[j] += av * br[j]
				}
			}
		}
	})
	return c
}

// matMulInto computes c = a·b with a (m×k), b (k×n), using an ikj loop order
// that streams rows of b.
func matMulInto(c, a, b []float32, m, k, n int) {
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cr := c[i*n : (i+1)*n]
			ar := a[i*k : (i+1)*k]
			for p, av := range ar {
				if av == 0 {
					continue
				}
				br := b[p*n : (p+1)*n]
				for j := range cr {
					cr[j] += av * br[j]
				}
			}
		}
	})
}

// parallelRows splits [0, m) into contiguous chunks and runs fn on each chunk
// in its own goroutine. Small ranges run inline to avoid scheduling overhead.
func parallelRows(m int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 || m < 16 {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelFor runs fn over [0, n) split across GOMAXPROCS goroutines.
// It is exported for batch-parallel layer kernels.
func ParallelFor(n int, fn func(lo, hi int)) { parallelRows(n, fn) }
