package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

// This file is the bit-identity property suite for the tiled/pooled
// kernels: every parallel, register-blocked, or fused variant must produce
// the same float32 bits as a serial naive reference at every tested
// GOMAXPROCS, shape, and density. The references below are transcriptions
// of the pre-tiling scalar loops — ascending-k accumulation per output,
// zero-skip semantics included — so a pass means the refactor changed
// scheduling and memory traffic only, never arithmetic.

// refMatMulTransB is the scalar C = A·Bᵀ loop: one ascending-k dot product
// per output.
func refMatMulTransB(a, b []float32, m, k, n int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[j*k+p]
			}
			c[i*n+j] = s
		}
	}
	return c
}

// refMatMulInto is the scalar ikj C += A·B loop with the zero-skip on A.
func refMatMulInto(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a[i*k+p]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[i*n+j] += av * b[p*n+j]
			}
		}
	}
}

// refEpilogue applies bias-then-ReLU per output column, the separate-pass
// order the fused kernels must reproduce.
func refEpilogue(c []float32, m, n int, bias []float32, relu bool) {
	for i := 0; i < m; i++ {
		row := c[i*n : (i+1)*n]
		if bias != nil {
			for j := range row {
				row[j] += bias[j]
			}
		}
		if relu {
			for j, v := range row {
				if !(v > 0) {
					row[j] = 0
				}
			}
		}
	}
}

// refCSRTransB is the scalar C = A·Wᵀ CSR loop: ascending stored-column
// accumulation with padding-entry skip.
func refCSRTransB(a []float32, w *CSR, m, k int) []float32 {
	n := w.Rows
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			pos := -1
			for t := w.RowPtr[j]; t < w.RowPtr[j+1]; t++ {
				pos += int(w.Delta[t])
				if w.Val[t] == 0 {
					continue
				}
				s += a[i*k+pos] * w.Val[t]
			}
			c[i*n+j] = s
		}
	}
	return c
}

// refCSRMatMulInto is the scalar C += W·B CSR loop.
func refCSRMatMulInto(c []float32, w *CSR, b []float32, n int) {
	for r := 0; r < w.Rows; r++ {
		pos := -1
		for t := w.RowPtr[r]; t < w.RowPtr[r+1]; t++ {
			pos += int(w.Delta[t])
			v := w.Val[t]
			if v == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[r*n+j] += v * b[pos*n+j]
			}
		}
	}
}

func fillRandSparse(rng *RNG, s []float32, density float64) {
	rng.FillNormal(s, 0, 1)
	if density >= 1 {
		return
	}
	for i := range s {
		if rng.Float64() >= density {
			s[i] = 0
		}
	}
}

func assertBits(t *testing.T, label string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %v (bits %08x), want %v (bits %08x)",
				label, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// withGOMAXPROCS runs f at each of the given parallelism levels, restoring
// the original setting afterwards.
func withGOMAXPROCS(t *testing.T, levels []int, f func(t *testing.T)) {
	t.Helper()
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, p := range levels {
		t.Run(fmt.Sprintf("procs=%d", p), func(t *testing.T) {
			runtime.GOMAXPROCS(p)
			f(t)
		})
	}
}

var identityShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 3},
	{3, 5, 2},
	{4, 16, 64},   // exercises full 4-wide blocks
	{5, 33, 67},   // ragged everywhere: odd k, n % 4 = 3
	{17, 31, 9},   // more rows than a small pool's chunking
	{33, 257, 66}, // k past one cache line, n splits into col blocks
	{64, 128, 130},
}

var identityDensities = []float64{0, 0.05, 0.3, 1}

// TestKernelBitIdentityDense locks the tiled MatMulTransB / MatMul /
// MatMulInto kernels (and their fused epilogues) to the scalar reference
// at GOMAXPROCS 1, 4, and 8 across ragged shapes and densities.
func TestKernelBitIdentityDense(t *testing.T) {
	withGOMAXPROCS(t, []int{1, 4, 8}, func(t *testing.T) {
		rng := NewRNG(7)
		for _, sh := range identityShapes {
			for _, den := range identityDensities {
				a := make([]float32, sh.m*sh.k)
				bT := make([]float32, sh.n*sh.k) // (n×k) for TransB
				b := make([]float32, sh.k*sh.n)  // (k×n) for MatMul
				bias := make([]float32, sh.n)
				fillRandSparse(rng, a, den)
				fillRandSparse(rng, bT, den)
				fillRandSparse(rng, b, den)
				rng.FillNormal(bias, 0, 1)
				label := fmt.Sprintf("m=%d k=%d n=%d den=%g", sh.m, sh.k, sh.n, den)

				at := FromSlice(a, sh.m, sh.k)
				got := MatMulTransB(at, FromSlice(bT, sh.n, sh.k))
				want := refMatMulTransB(a, bT, sh.m, sh.k, sh.n)
				assertBits(t, "MatMulTransB "+label, got.Data, want)

				// Fused bias+ReLU epilogue vs separate reference passes.
				fused := make([]float32, sh.m*sh.n)
				MatMulTransBInto(fused, at, FromSlice(bT, sh.n, sh.k), Epilogue{Bias: bias, ReLU: true})
				wantEp := refMatMulTransB(a, bT, sh.m, sh.k, sh.n)
				refEpilogue(wantEp, sh.m, sh.n, bias, true)
				assertBits(t, "MatMulTransBInto+ep "+label, fused, wantEp)

				gotMM := MatMul(at, FromSlice(b, sh.k, sh.n))
				wantMM := make([]float32, sh.m*sh.n)
				refMatMulInto(wantMM, a, b, sh.m, sh.k, sh.n)
				assertBits(t, "MatMul "+label, gotMM.Data, wantMM)

				// Accumulating variant on a pre-seeded output.
				seed := make([]float32, sh.m*sh.n)
				rng.FillNormal(seed, 0, 1)
				gotAcc := append([]float32(nil), seed...)
				MatMulInto(gotAcc, at, FromSlice(b, sh.k, sh.n))
				wantAcc := append([]float32(nil), seed...)
				refMatMulInto(wantAcc, a, b, sh.m, sh.k, sh.n)
				assertBits(t, "MatMulInto "+label, gotAcc, wantAcc)
			}
		}
	})
}

// TestKernelBitIdentityCSR locks the grid-parallel CSR kernels to their
// scalar references and to the dense kernels on the same matrix.
func TestKernelBitIdentityCSR(t *testing.T) {
	withGOMAXPROCS(t, []int{1, 4, 8}, func(t *testing.T) {
		rng := NewRNG(11)
		for _, sh := range identityShapes {
			for _, den := range identityDensities {
				label := fmt.Sprintf("m=%d k=%d n=%d den=%g", sh.m, sh.k, sh.n, den)
				a := make([]float32, sh.m*sh.k)
				wDense := make([]float32, sh.n*sh.k)
				bias := make([]float32, sh.n)
				rng.FillNormal(a, 0, 1)
				fillRandSparse(rng, wDense, den)
				rng.FillNormal(bias, 0, 1)
				w := CSRFromDense(wDense, sh.n, sh.k)
				at := FromSlice(a, sh.m, sh.k)

				got := MatMulTransBCSR(at, w)
				assertBits(t, "CSR vs ref "+label, got.Data, refCSRTransB(a, w, sh.m, sh.k))
				dense := MatMulTransB(at, FromSlice(wDense, sh.n, sh.k))
				assertBits(t, "CSR vs dense "+label, got.Data, dense.Data)

				fused := make([]float32, sh.m*sh.n)
				MatMulTransBCSRInto(fused, at, w, Epilogue{Bias: bias, ReLU: true})
				wantEp := refCSRTransB(a, w, sh.m, sh.k)
				refEpilogue(wantEp, sh.m, sh.n, bias, true)
				assertBits(t, "CSRInto+ep "+label, fused, wantEp)

				// W·B layout (the conv im2col kernel), accumulate + row epilogue.
				bMat := make([]float32, sh.k*sh.n)
				rowBias := make([]float32, w.Rows)
				rng.FillNormal(bMat, 0, 1)
				rng.FillNormal(rowBias, 0, 1)
				gotWB := make([]float32, w.Rows*sh.n)
				CSRMatMulInto(gotWB, w, bMat, sh.n)
				wantWB := make([]float32, w.Rows*sh.n)
				refCSRMatMulInto(wantWB, w, bMat, sh.n)
				assertBits(t, "CSRMatMulInto "+label, gotWB, wantWB)

				gotWBEp := make([]float32, w.Rows*sh.n)
				CSRMatMulIntoEp(gotWBEp, w, bMat, sh.n, Epilogue{Bias: rowBias, ReLU: true})
				wantWBEp := make([]float32, w.Rows*sh.n)
				refCSRMatMulInto(wantWBEp, w, bMat, sh.n)
				for r := 0; r < w.Rows; r++ {
					row := wantWBEp[r*sh.n : (r+1)*sh.n]
					for j := range row {
						row[j] += rowBias[r]
						if !(row[j] > 0) {
							row[j] = 0
						}
					}
				}
				assertBits(t, "CSRMatMulIntoEp "+label, gotWBEp, wantWBEp)
			}
		}
	})
}

// TestKernelBitIdentityWideGap exercises CSR padding entries (column gaps
// > 255) through the tiled kernels.
func TestKernelBitIdentityWideGap(t *testing.T) {
	k := 1000
	wDense := make([]float32, 2*k)
	wDense[3] = 1.5
	wDense[900] = -2.25 // gap 897 > 255 → padding entries
	wDense[k+999] = 0.5 // row starting with a wide gap
	w := CSRFromDense(wDense, 2, k)
	a := make([]float32, 4*k)
	NewRNG(3).FillNormal(a, 0, 1)
	at := FromSlice(a, 4, k)
	got := MatMulTransBCSR(at, w)
	dense := MatMulTransB(at, FromSlice(wDense, 2, k))
	assertBits(t, "wide-gap CSR vs dense", got.Data, dense.Data)
}

// TestParallelRowsBalancedChunks verifies the balanced chunking fix: every
// chunk ParallelFor hands out differs in size by at most one row, and the
// chunks exactly tile [0, n).
func TestParallelRowsBalancedChunks(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	runtime.GOMAXPROCS(4)
	for _, n := range []int{16, 17, 31, 100, 101, 1000, 1003} {
		var mu sync.Mutex
		sizes := []int{}
		seen := make([]int, n)
		ParallelFor(n, func(lo, hi int) {
			mu.Lock()
			sizes = append(sizes, hi-lo)
			mu.Unlock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		minSz, maxSz := n, 0
		total := 0
		for _, s := range sizes {
			total += s
			if s < minSz {
				minSz = s
			}
			if s > maxSz {
				maxSz = s
			}
		}
		if total != n {
			t.Fatalf("n=%d: chunks cover %d rows", n, total)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("n=%d: unbalanced chunks, sizes range %d..%d", n, minSz, maxSz)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

// TestNestedParallelNoDeadlock drives nested ParallelFor calls well past
// the pool size: inner calls must degrade to inline execution rather than
// wait on busy workers.
func TestNestedParallelNoDeadlock(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	runtime.GOMAXPROCS(4)
	outer := 64
	var total int64
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		ParallelFor(outer, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var local int64
				var lmu sync.Mutex
				ParallelFor(100, func(jlo, jhi int) {
					lmu.Lock()
					local += int64(jhi - jlo)
					lmu.Unlock()
				})
				mu.Lock()
				total += local
				mu.Unlock()
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second): // far beyond any sane scheduling delay
		t.Fatal("nested ParallelFor deadlocked")
	}
	if want := int64(outer * 100); total != want {
		t.Fatalf("nested ParallelFor covered %d, want %d", total, want)
	}
}

// TestPooledBuffersZeroed guards the NewPooled contract: storage recycled
// with dirty contents must come back zero-filled.
func TestPooledBuffersZeroed(t *testing.T) {
	a := NewPooled(8, 9)
	for i := range a.Data {
		a.Data[i] = float32(i) + 1
	}
	Recycle(a)
	if a.Data != nil {
		t.Fatal("Recycle left Data attached")
	}
	b := NewPooled(8, 9)
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("pooled buffer not zeroed at %d: %v", i, v)
		}
	}
	if got := len(b.Data); got != 72 {
		t.Fatalf("pooled tensor has %d elements, want 72", got)
	}
	Recycle(b)
	Recycle(nil)                           // nil-safe
	Recycle(&Tensor{})                     // empty-safe
	Recycle(FromSlice([]float32{1, 2}, 2)) // foreign storage is accepted
}
