// Package tensor provides dense float32 tensors and the numeric kernels
// (parallel matrix multiplication, vector primitives, seeded RNG) used by the
// neural-network engine and the compressors in this repository.
//
// Tensors are row-major. The zero value of Tensor is not usable; create
// tensors with New or FromSlice.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is not
// copied; len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy of t. A tensor whose storage was released
// (nil Data, e.g. a dense layer stripped for provider-driven serving)
// clones to another storage-free tensor instead of reallocating.
func (t *Tensor) Clone() *Tensor {
	if t.Data == nil {
		return &Tensor{Shape: append([]int(nil), t.Shape...)}
	}
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape. The element
// count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element of t to zero.
func (t *Tensor) Zero() {
	clear(t.Data)
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != u.Shape[i] {
			return false
		}
	}
	return true
}

// AddInPlace computes t += u elementwise.
func (t *Tensor) AddInPlace(u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i, v := range u.Data {
		t.Data[i] += v
	}
}

// ScaleInPlace computes t *= s elementwise.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AxpyInPlace computes t += a*u elementwise.
func (t *Tensor) AxpyInPlace(a float32, u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic("tensor: AxpyInPlace size mismatch")
	}
	for i, v := range u.Data {
		t.Data[i] += a * v
	}
}

// MaxAbs returns the largest absolute value in t, or 0 for an empty tensor.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// MinMax returns the smallest and largest values in t. For an empty tensor it
// returns (0, 0).
func (t *Tensor) MinMax() (min, max float32) {
	if len(t.Data) == 0 {
		return 0, 0
	}
	min, max = t.Data[0], t.Data[0]
	for _, v := range t.Data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Dot returns the inner product of a and b, accumulated in float64 for
// stability.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	if len(t.Data) > 32 {
		return fmt.Sprintf("Tensor%v[%d elems]", t.Shape, len(t.Data))
	}
	return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
}
