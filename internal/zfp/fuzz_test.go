package zfp

import (
	"testing"

	"repro/internal/tensor"
)

func TestDecompressSurvivesRandomCorruption(t *testing.T) {
	rng := tensor.NewRNG(1)
	data := weightLike(rng, 4000)
	blob, err := Compress(data, Options{Mode: ModeAccuracy, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		bad := append([]byte(nil), blob...)
		for i := 0; i < 1+rng.Intn(16); i++ {
			p := rng.Intn(len(bad))
			bad[p] ^= 1 << rng.Intn(8)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			_, _ = Decompress(bad)
		}()
	}
}

func TestDecompressRejectsForgedHugeCount(t *testing.T) {
	rng := tensor.NewRNG(2)
	blob, _ := Compress(weightLike(rng, 64), Options{Mode: ModeAccuracy, Tolerance: 1e-3})
	for i := 8; i < 16; i++ {
		blob[i] = 0
	}
	blob[13] = 1 // count = 2^40
	if _, err := Decompress(blob); err == nil {
		t.Fatal("expected rejection of forged count")
	}
}

func TestDecompressGarbage(t *testing.T) {
	rng := tensor.NewRNG(3)
	for trial := 0; trial < 200; trial++ {
		garbage := make([]byte, rng.Intn(200))
		for i := range garbage {
			garbage[i] = byte(rng.Uint64())
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on garbage: %v", trial, r)
				}
			}()
			_, _ = Decompress(garbage)
		}()
	}
}
