// Package zfp implements a 1-D ZFP-style transform coder (Lindstrom, TVCG
// 2014) used as the baseline lossy compressor in the paper's Figure 2.
//
// Following the published design, each block of 4 values goes through:
//
//  1. exponent alignment — the block is scaled by a common power of two so
//     all values share one stored exponent (block floating point),
//  2. fixed-point conversion to 32-bit integers,
//  3. the ZFP orthogonal (lifting) transform, which decorrelates the block,
//  4. negabinary mapping, so small magnitudes have leading zero bits, and
//  5. bit-plane coding from the most significant plane down, truncated at
//     the plane implied by the error bound (accuracy mode) or at a fixed
//     number of planes (fixed-precision mode).
//
// The coder guarantees |decoded − original| ≤ the absolute error bound in
// accuracy mode; the guard-bit margin that makes the guarantee hold through
// the inverse transform is validated by property tests.
package zfp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bitstream"
)

// Mode selects how the per-block plane cut-off is chosen.
type Mode uint8

const (
	// ModeAccuracy truncates planes so the reconstruction error stays below
	// Options.Tolerance.
	ModeAccuracy Mode = iota
	// ModePrecision keeps Options.Precision bit planes per block.
	ModePrecision
)

// Options configures compression.
type Options struct {
	// Mode selects accuracy (error-bounded) or fixed-precision coding.
	Mode Mode
	// Tolerance is the absolute error bound for ModeAccuracy.
	Tolerance float64
	// Precision is the bit-plane count per block for ModePrecision (1..32).
	Precision int
}

const (
	blockLen = 4
	magic    = 0x5A465031 // "ZFP1"
	// expBias encodes block exponents (frexp range ≈ [-148, 128]) in 9 bits.
	expBias = 160
	// fixedPointBits scales values so |i| ≤ 2^fixedPointBits, leaving
	// headroom for transform growth inside int32.
	fixedPointBits = 28
	// guardBits is the margin added below the tolerance-implied plane so
	// that truncation error, amplified by the inverse transform, stays
	// within the bound. Two bits cover the ≤4× worst-case growth of the
	// inverse lift; the property tests verify the bound across magnitudes.
	guardBits = 2
)

// ErrCorrupt is returned for structurally invalid blobs.
var ErrCorrupt = errors.New("zfp: corrupt stream")

// Compress encodes data under opts.
func Compress(data []float32, opts Options) ([]byte, error) {
	switch opts.Mode {
	case ModeAccuracy:
		if opts.Tolerance <= 0 {
			return nil, fmt.Errorf("zfp: tolerance must be positive, got %v", opts.Tolerance)
		}
	case ModePrecision:
		if opts.Precision < 1 || opts.Precision > 32 {
			return nil, fmt.Errorf("zfp: precision %d out of range [1,32]", opts.Precision)
		}
	default:
		return nil, fmt.Errorf("zfp: unknown mode %d", opts.Mode)
	}

	w := bitstream.NewWriter()
	n := len(data)
	var block [blockLen]float64
	for lo := 0; lo < n; lo += blockLen {
		for i := 0; i < blockLen; i++ {
			if lo+i < n {
				block[i] = sanitize(float64(data[lo+i]))
			} else {
				block[i] = 0
			}
		}
		encodeBlock(w, block, opts)
	}

	payload := w.Bytes()
	out := make([]byte, 0, 24+len(payload))
	out = binary.LittleEndian.AppendUint32(out, magic)
	out = append(out, byte(opts.Mode), byte(opts.Precision), 0, 0)
	out = binary.LittleEndian.AppendUint64(out, uint64(n))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(opts.Tolerance))
	return append(out, payload...), nil
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// blockExp returns the exponent e such that max|v| < 2^e.
func blockExp(block [blockLen]float64) (int, bool) {
	m := 0.0
	for _, v := range block {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	if m == 0 {
		return 0, false
	}
	_, e := math.Frexp(m)
	return e, true
}

// planeCut returns the lowest bit plane to keep for a block with exponent e.
func planeCut(e int, opts Options) int {
	if opts.Mode == ModePrecision {
		cut := 32 - opts.Precision
		if cut < 0 {
			cut = 0
		}
		return cut
	}
	minexp := int(math.Floor(math.Log2(opts.Tolerance)))
	cut := minexp - e + fixedPointBits - guardBits
	if cut < 0 {
		cut = 0
	}
	if cut > 32 {
		cut = 32
	}
	return cut
}

func encodeBlock(w *bitstream.Writer, block [blockLen]float64, opts Options) {
	e, nonzero := blockExp(block)
	if !nonzero {
		w.WriteBit(0)
		return
	}
	cut := planeCut(e, opts)
	if cut >= 32 {
		// Every value rounds to zero within the bound.
		w.WriteBit(0)
		return
	}
	w.WriteBit(1)
	w.WriteBits(uint64(e+expBias), 9)

	// Fixed-point conversion and forward lifting transform.
	var iv [blockLen]int32
	scale := math.Ldexp(1, fixedPointBits-e)
	for i, v := range block {
		iv[i] = int32(math.Round(v * scale))
	}
	fwdLift(&iv)

	// Negabinary mapping.
	var uv [blockLen]uint32
	for i, v := range iv {
		uv[i] = negabinary(v)
	}

	// Bit-plane coding, MSB first, truncated at cut.
	for plane := 31; plane >= cut; plane-- {
		var bits uint64
		for i := 0; i < blockLen; i++ {
			bits = bits<<1 | uint64((uv[i]>>plane)&1)
		}
		w.WriteBits(bits, blockLen)
	}
}

// fwdLift is ZFP's 4-point decorrelating transform.
func fwdLift(p *[blockLen]int32) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0], p[1], p[2], p[3] = x, y, z, w
}

// invLift inverts fwdLift.
func invLift(p *[blockLen]int32) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0], p[1], p[2], p[3] = x, y, z, w
}

// negabinary maps a two's-complement int32 to base −2, giving small
// magnitudes many leading zeros regardless of sign.
func negabinary(v int32) uint32 {
	const mask = 0xaaaaaaaa
	return (uint32(v) + mask) ^ mask
}

func invNegabinary(u uint32) int32 {
	const mask = 0xaaaaaaaa
	return int32((u ^ mask) - mask)
}

// Decompress reverses Compress.
func Decompress(blob []byte) ([]float32, error) {
	if len(blob) < 24 {
		return nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(blob[0:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	opts := Options{
		Mode:      Mode(blob[4]),
		Precision: int(blob[5]),
	}
	n := int(binary.LittleEndian.Uint64(blob[8:16]))
	opts.Tolerance = math.Float64frombits(binary.LittleEndian.Uint64(blob[16:24]))
	if opts.Mode == ModeAccuracy && opts.Tolerance <= 0 {
		return nil, fmt.Errorf("%w: bad tolerance", ErrCorrupt)
	}
	// A block of 4 values costs at least one flag bit; reject forged counts
	// before allocating.
	if uint64(n) > uint64(len(blob)-24)*8*blockLen {
		return nil, fmt.Errorf("%w: value count %d exceeds payload capacity", ErrCorrupt, n)
	}
	r := bitstream.NewReader(blob[24:])
	out := make([]float32, n)
	for lo := 0; lo < n; lo += blockLen {
		var block [blockLen]float64
		if err := decodeBlock(r, &block, opts); err != nil {
			return nil, err
		}
		for i := 0; i < blockLen && lo+i < n; i++ {
			out[lo+i] = float32(block[i])
		}
	}
	return out, nil
}

func decodeBlock(r *bitstream.Reader, block *[blockLen]float64, opts Options) error {
	flag, err := r.ReadBit()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if flag == 0 {
		*block = [blockLen]float64{}
		return nil
	}
	eBits, err := r.ReadBits(9)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	e := int(eBits) - expBias
	cut := planeCut(e, opts)
	var uv [blockLen]uint32
	for plane := 31; plane >= cut; plane-- {
		bits, err := r.ReadBits(blockLen)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		for i := 0; i < blockLen; i++ {
			uv[i] |= uint32((bits>>(blockLen-1-i))&1) << plane
		}
	}
	var iv [blockLen]int32
	for i, u := range uv {
		iv[i] = invNegabinary(u)
	}
	invLift(&iv)
	scale := math.Ldexp(1, e-fixedPointBits)
	for i, v := range iv {
		block[i] = float64(v) * scale
	}
	return nil
}

// Ratio returns the compression ratio achieved by blob for n float32 values.
func Ratio(n int, blob []byte) float64 {
	if len(blob) == 0 {
		return 0
	}
	return float64(4*n) / float64(len(blob))
}
