package zfp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func weightLike(rng *tensor.RNG, n int) []float32 {
	data := make([]float32, n)
	rng.FillNormal(data, 0, 0.05)
	return data
}

func checkBound(t *testing.T, data []float32, tol float64) []byte {
	t.Helper()
	blob, err := Compress(data, Options{Mode: ModeAccuracy, Tolerance: tol})
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	got, err := Decompress(blob)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if len(got) != len(data) {
		t.Fatalf("length %d, want %d", len(got), len(data))
	}
	for i := range data {
		if d := math.Abs(float64(got[i]) - float64(data[i])); d > tol+1e-9 {
			t.Fatalf("element %d: error %g exceeds tolerance %g", i, d, tol)
		}
	}
	return blob
}

func TestLiftNearInverse(t *testing.T) {
	// The fixed-point lifting transform drops up to one LSB per shift (as in
	// ZFP), so fwd∘inv is the identity only up to a few integer units. The
	// guard bits in planeCut absorb exactly this rounding.
	f := func(a, b, c, d int32) bool {
		in := [4]int32{a >> 3, b >> 3, c >> 3, d >> 3}
		v := in
		fwdLift(&v)
		invLift(&v)
		for i := range in {
			diff := int64(v[i]) - int64(in[i])
			if diff < -8 || diff > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNegabinaryInverse(t *testing.T) {
	f := func(v int32) bool { return invNegabinary(negabinary(v)) == v }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Small magnitudes must have many leading zeros.
	if bits := 32 - leadingZeros(negabinary(3)); bits > 4 {
		t.Fatalf("negabinary(3) uses %d bits", bits)
	}
}

func leadingZeros(u uint32) int {
	n := 0
	for i := 31; i >= 0 && u&(1<<i) == 0; i-- {
		n++
	}
	return n
}

func TestAccuracyModeBound(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, n := range []int{1, 2, 3, 4, 5, 100, 10001} {
		for _, tol := range []float64{1e-2, 1e-3, 1e-4} {
			checkBound(t, weightLike(rng, n), tol)
		}
	}
}

func TestAllZeroBlocksAreCheap(t *testing.T) {
	data := make([]float32, 4000)
	blob, err := Compress(data, Options{Mode: ModeAccuracy, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	// 1000 blocks × 1 bit + header: well under 200 bytes.
	if len(blob) > 200 {
		t.Fatalf("all-zero data should compress to ~nothing, got %d bytes", len(blob))
	}
	got, _ := Decompress(blob)
	for _, v := range got {
		if v != 0 {
			t.Fatal("zeros must decode to zeros")
		}
	}
}

func TestRatioGrowsWithTolerance(t *testing.T) {
	rng := tensor.NewRNG(2)
	data := weightLike(rng, 40000)
	var prev float64
	for _, tol := range []float64{1e-4, 1e-3, 1e-2} {
		blob := checkBound(t, data, tol)
		r := Ratio(len(data), blob)
		if r <= prev {
			t.Fatalf("ratio should grow with tolerance: tol=%g ratio=%.2f", tol, r)
		}
		prev = r
	}
}

func TestPrecisionMode(t *testing.T) {
	rng := tensor.NewRNG(3)
	data := weightLike(rng, 8000)
	var prevErr float64 = -1
	for _, p := range []int{30, 20, 12} {
		blob, err := Compress(data, Options{Mode: ModePrecision, Precision: p})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		var maxErr float64
		for i := range data {
			if d := math.Abs(float64(got[i]) - float64(data[i])); d > maxErr {
				maxErr = d
			}
		}
		if prevErr >= 0 && maxErr < prevErr {
			t.Fatalf("error should grow as precision drops: p=%d err=%g prev=%g", p, maxErr, prevErr)
		}
		prevErr = maxErr
	}
}

func TestInvalidOptions(t *testing.T) {
	data := []float32{1, 2, 3}
	for _, o := range []Options{
		{Mode: ModeAccuracy, Tolerance: 0},
		{Mode: ModeAccuracy, Tolerance: -1},
		{Mode: ModePrecision, Precision: 0},
		{Mode: ModePrecision, Precision: 33},
		{Mode: 9},
	} {
		if _, err := Compress(data, o); err == nil {
			t.Fatalf("expected error for %+v", o)
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	rng := tensor.NewRNG(4)
	blob, _ := Compress(weightLike(rng, 100), Options{Mode: ModeAccuracy, Tolerance: 1e-3})
	if _, err := Decompress(blob[:10]); err == nil {
		t.Fatal("expected error for truncated header")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if _, err := Decompress(bad); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := Decompress(blob[:len(blob)-3]); err == nil {
		t.Fatal("expected error for truncated payload")
	}
}

func TestNaNInfSanitized(t *testing.T) {
	data := []float32{1, float32(math.NaN()), float32(math.Inf(1)), 2}
	blob, err := Compress(data, Options{Mode: ModeAccuracy, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got[0])-1) > 1e-3+1e-9 || math.Abs(float64(got[3])-2) > 1e-3+1e-9 {
		t.Fatal("finite neighbours of NaN out of bound")
	}
}

func TestQuickAccuracyInvariant(t *testing.T) {
	rng := tensor.NewRNG(5)
	f := func(seed uint32, tolExp uint8) bool {
		n := 1 + int(seed%500)
		tol := math.Pow(10, -float64(1+tolExp%5))
		data := make([]float32, n)
		rng.FillNormal(data, 0, 0.2)
		blob, err := Compress(data, Options{Mode: ModeAccuracy, Tolerance: tol})
		if err != nil {
			return false
		}
		got, err := Decompress(blob)
		if err != nil || len(got) != n {
			return false
		}
		for i := range data {
			if math.Abs(float64(got[i])-float64(data[i])) > tol+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedMagnitudeBlocks(t *testing.T) {
	// Large dynamic range across blocks exercises per-block exponents.
	data := []float32{1e-6, 2e-6, -1e-6, 0, 100, -200, 50, 25, 0.01, -0.02, 0.03, -0.04}
	checkBound(t, data, 1e-3)
}
