package weightless

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func prunedWeights(rng *tensor.RNG, n int, density float64) []float32 {
	w := make([]float32, n)
	for i := range w {
		if rng.Float64() < density {
			w[i] = float32(rng.NormFloat64() * 0.05)
		}
	}
	return w
}

func TestEncodedKeysDecodeExactly(t *testing.T) {
	rng := tensor.NewRNG(1)
	dense := prunedWeights(rng, 10000, 0.1)
	f, err := Encode(dense, Options{ValueBits: 6, CheckBits: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Every nonzero position must decode to its codebook centroid (never
	// to zero, never to a different centroid).
	for p, v := range dense {
		if v == 0 {
			continue
		}
		got := f.Query(p)
		if got == 0 {
			t.Fatalf("key %d decoded as absent", p)
		}
		// The decoded value is the nearest-centroid quantization of v;
		// with 64 centroids over N(0, 0.05) the error is small.
		if math.Abs(float64(got)-float64(v)) > 0.05 {
			t.Fatalf("key %d: %v decoded as %v", p, v, got)
		}
	}
}

func TestFalsePositiveRateMatchesCheckBits(t *testing.T) {
	rng := tensor.NewRNG(2)
	dense := prunedWeights(rng, 40000, 0.1)
	for _, check := range []int{2, 6} {
		f, err := Encode(dense, Options{ValueBits: 4, CheckBits: check})
		if err != nil {
			t.Fatal(err)
		}
		fp, zeros := 0, 0
		for p, v := range dense {
			if v != 0 {
				continue
			}
			zeros++
			if f.Query(p) != 0 {
				fp++
			}
		}
		rate := float64(fp) / float64(zeros)
		want := math.Pow(2, -float64(check))
		if rate > want*2.5 || (check <= 2 && rate < want/4) {
			t.Fatalf("check=%d: fp rate %.4f, theory %.4f", check, rate, want)
		}
	}
}

func TestDecompressLength(t *testing.T) {
	rng := tensor.NewRNG(3)
	dense := prunedWeights(rng, 5000, 0.08)
	f, err := Encode(dense, Options{ValueBits: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := f.Decompress()
	if len(got) != len(dense) {
		t.Fatalf("length %d, want %d", len(got), len(dense))
	}
	// All true keys present.
	for p, v := range dense {
		if v != 0 && got[p] == 0 {
			t.Fatalf("lost key at %d", p)
		}
	}
}

func TestBytesSmallerThanCSR(t *testing.T) {
	rng := tensor.NewRNG(4)
	dense := prunedWeights(rng, 50000, 0.09)
	f, err := Encode(dense, Options{ValueBits: 4, CheckBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	csr := 5 * 4500 // ≈ nonzeros × 40 bits
	if f.Bytes() >= csr {
		t.Fatalf("filter %d bytes not below CSR %d", f.Bytes(), csr)
	}
}

func TestMarshalUnmarshalQueryEquivalence(t *testing.T) {
	rng := tensor.NewRNG(5)
	dense := prunedWeights(rng, 3000, 0.1)
	f, err := Encode(dense, Options{ValueBits: 5, CheckBits: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < len(dense); p++ {
		if f.Query(p) != got.Query(p) {
			t.Fatalf("query mismatch at %d after round trip", p)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	rng := tensor.NewRNG(6)
	f, _ := Encode(prunedWeights(rng, 500, 0.1), Options{ValueBits: 4})
	blob := f.Marshal()
	if _, err := Unmarshal(blob[:10]); err == nil {
		t.Fatal("expected error for short blob")
	}
	if _, err := Unmarshal(blob[:len(blob)-4]); err == nil {
		t.Fatal("expected error for truncated blob")
	}
}

func TestInvalidOptions(t *testing.T) {
	for _, o := range []Options{
		{ValueBits: 0},
		{ValueBits: 13},
		{ValueBits: 8, CheckBits: 25},
	} {
		if _, err := Encode([]float32{1}, o); err == nil {
			t.Fatalf("expected error for %+v", o)
		}
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	f, err := Encode(make([]float32, 100), Options{ValueBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f.Decompress() {
		if v != 0 {
			// A false positive on an all-zero layer is possible but the
			// codebook is all zeros, so any hit still returns 0.
			t.Fatal("all-zero layer decoded nonzero")
		}
	}
	one := make([]float32, 10)
	one[3] = 0.5
	f, err = Encode(one, Options{ValueBits: 4, CheckBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if f.Query(3) == 0 {
		t.Fatal("single key lost")
	}
}

func TestPeelDeterministicGivenSeed(t *testing.T) {
	rng := tensor.NewRNG(7)
	dense := prunedWeights(rng, 2000, 0.1)
	f1, err1 := Encode(dense, Options{ValueBits: 5})
	f2, err2 := Encode(dense, Options{ValueBits: 5})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if f1.Seed != f2.Seed || f1.M != f2.M {
		t.Fatal("construction not deterministic")
	}
	for i := range f1.table {
		if f1.table[i] != f2.table[i] {
			t.Fatal("tables differ")
		}
	}
}

func TestLargeConstruction(t *testing.T) {
	rng := tensor.NewRNG(8)
	dense := prunedWeights(rng, 120000, 0.09)
	f, err := Encode(dense, Options{ValueBits: 4, CheckBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for p, v := range dense {
		if v != 0 && f.Query(p) == 0 {
			misses++
		}
	}
	if misses != 0 {
		t.Fatalf("%d keys lost in large construction", misses)
	}
}
