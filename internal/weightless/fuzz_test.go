package weightless

import (
	"testing"

	"repro/internal/tensor"
)

func TestUnmarshalSurvivesRandomCorruption(t *testing.T) {
	rng := tensor.NewRNG(9)
	f, err := Encode(prunedWeights(rng, 2000, 0.1), Options{ValueBits: 5, CheckBits: 5})
	if err != nil {
		t.Fatal(err)
	}
	blob := f.Marshal()
	for trial := 0; trial < 300; trial++ {
		bad := append([]byte(nil), blob...)
		for i := 0; i < 1+rng.Intn(12); i++ {
			p := rng.Intn(len(bad))
			bad[p] ^= 1 << rng.Intn(8)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			if ff, err := Unmarshal(bad); err == nil {
				// Query a few positions; corrupted filters may answer
				// nonsense but must stay memory-safe.
				for p := 0; p < 16 && p < ff.N; p++ {
					ff.Query(p)
				}
			}
		}()
	}
}

func TestUnmarshalRejectsForgedHugeN(t *testing.T) {
	rng := tensor.NewRNG(10)
	f, _ := Encode(prunedWeights(rng, 100, 0.1), Options{ValueBits: 4})
	blob := f.Marshal()
	blob[3] = 0xFF
	if _, err := Unmarshal(blob); err == nil {
		t.Fatal("expected rejection of forged length")
	}
}
