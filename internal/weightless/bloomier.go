// Package weightless implements the Weightless baseline (Reagen et al.,
// ICML 2018): lossy weight encoding with a Bloomier filter. Nonzero pruned
// weights are clustered onto a 2^t-value codebook; the map position→code is
// stored in a Bloomier filter (XOR construction over k=4 hash cells, built
// by hypergraph peeling). Queries for pruned positions return "absent" with
// probability 1 − 2^−check, so decoding is approximate — the source of the
// accuracy loss and of the slow, hash-heavy decode the paper measures.
package weightless

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bitstream"
	"repro/internal/cluster"
)

const (
	// numHashes is the paper's four hash functions per query.
	numHashes = 4
	// loadFactor sizes the table: m = loadFactor · n cells (4-uniform
	// hypergraphs peel with high probability above ~1.30).
	loadFactor = 1.35
	// maxAttempts bounds re-seeding when peeling fails.
	maxAttempts = 32
)

// ErrConstruction is returned when no acyclic hash assignment is found.
var ErrConstruction = errors.New("weightless: bloomier construction failed")

// ErrCorrupt is returned for structurally invalid blobs.
var ErrCorrupt = errors.New("weightless: corrupt stream")

// Options configures encoding.
type Options struct {
	// ValueBits is t, the codebook width (codebook has 2^t entries).
	ValueBits int
	// CheckBits controls the false-positive rate 2^−CheckBits for pruned
	// positions (default 4).
	CheckBits int
	// KMeansIters bounds codebook clustering (default 15).
	KMeansIters int
}

// Filter is a Bloomier-filter-encoded fc layer.
type Filter struct {
	N         int // dense length
	M         int // table cells
	ValueBits int
	CheckBits int
	Seed      uint64
	Codebook  []float32
	table     []uint32 // r-bit cells, r = ValueBits + CheckBits
}

// hash mixes (seed, which, key) into a 64-bit value (SplitMix64 finaliser).
func hash(seed uint64, which int, key uint32) uint64 {
	z := seed ^ (uint64(which)+1)*0x9e3779b97f4a7c15 ^ uint64(key)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// cells returns the k table cells a key maps to (distinct by linear probing
// on collision).
func cells(seed uint64, key uint32, m int, out *[numHashes]int) {
	for i := 0; i < numHashes; i++ {
		c := int(hash(seed, i, key) % uint64(m))
	retry:
		for j := 0; j < i; j++ {
			if out[j] == c {
				c = (c + 1) % m
				goto retry
			}
		}
		out[i] = c
	}
}

// mask returns the r-bit per-key XOR mask M(key).
func mask(seed uint64, key uint32, r uint) uint32 {
	return uint32(hash(seed, numHashes, key)) & ((1 << r) - 1)
}

// Encode builds a Bloomier filter for a pruned dense weight array.
func Encode(dense []float32, opts Options) (*Filter, error) {
	if opts.ValueBits < 1 || opts.ValueBits > 12 {
		return nil, fmt.Errorf("weightless: value bits %d out of [1,12]", opts.ValueBits)
	}
	if opts.CheckBits == 0 {
		opts.CheckBits = 4
	}
	if opts.CheckBits < 1 || opts.ValueBits+opts.CheckBits > 30 {
		return nil, fmt.Errorf("weightless: check bits %d invalid", opts.CheckBits)
	}
	if opts.KMeansIters <= 0 {
		opts.KMeansIters = 15
	}

	var keys []uint32
	var vals []float32
	for p, v := range dense {
		if v != 0 {
			keys = append(keys, uint32(p))
			vals = append(vals, v)
		}
	}
	k := 1 << opts.ValueBits
	centroids, assign, err := cluster.KMeans1D(vals, k, opts.KMeansIters)
	if err != nil {
		return nil, err
	}

	f := &Filter{
		N:         len(dense),
		ValueBits: opts.ValueBits,
		CheckBits: opts.CheckBits,
		Codebook:  centroids,
	}
	n := len(keys)
	m := int(math.Ceil(loadFactor * float64(max(n, 1))))
	if m < numHashes {
		m = numHashes
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		seed := uint64(0x57454947) ^ uint64(attempt)*0x9e3779b97f4a7c15
		order, cellOf, ok := peel(keys, seed, m)
		if !ok {
			if attempt%8 == 7 {
				m = m + m/20 // grow 5 % after repeated failures
			}
			continue
		}
		f.Seed = seed
		f.M = m
		f.table = make([]uint32, m)
		assignTable(f, keys, assign, order, cellOf)
		return f, nil
	}
	return nil, ErrConstruction
}

// peel finds an ordering of keys such that each key owns a cell not shared
// with any key ordered after it (hypergraph peeling). Returns the order and
// each key's owned cell.
func peel(keys []uint32, seed uint64, m int) (order []int, cellOf []int, ok bool) {
	n := len(keys)
	count := make([]int, m)
	var cs [numHashes]int
	keyCells := make([][numHashes]int, n)
	for i, key := range keys {
		cells(seed, key, m, &cs)
		keyCells[i] = cs
		for _, c := range cs {
			count[c]++
		}
	}
	// cellKeys: XOR-trick incidence (store XOR of key ids per cell).
	xorKeys := make([]int, m)
	for i := range keys {
		for _, c := range keyCells[i] {
			xorKeys[c] ^= i
		}
	}
	queue := make([]int, 0, m)
	for c := 0; c < m; c++ {
		if count[c] == 1 {
			queue = append(queue, c)
		}
	}
	order = make([]int, 0, n)
	cellOf = make([]int, n)
	removed := make([]bool, n)
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if count[c] != 1 {
			continue
		}
		ki := xorKeys[c]
		if removed[ki] {
			continue
		}
		removed[ki] = true
		order = append(order, ki)
		cellOf[ki] = c
		for _, cc := range keyCells[ki] {
			count[cc]--
			xorKeys[cc] ^= ki
			if count[cc] == 1 {
				queue = append(queue, cc)
			}
		}
	}
	if len(order) != n {
		return nil, nil, false
	}
	return order, cellOf, true
}

// assignTable fills cells in reverse peeling order so each key's owned cell
// reconciles the XOR equation table[c0]^…^table[ck-1] ^ M(key) = value.
func assignTable(f *Filter, keys []uint32, assign []uint32, order []int, cellOf []int) {
	r := uint(f.ValueBits + f.CheckBits)
	var cs [numHashes]int
	for oi := len(order) - 1; oi >= 0; oi-- {
		ki := order[oi]
		key := keys[ki]
		cells(f.Seed, key, f.M, &cs)
		want := assign[ki] ^ mask(f.Seed, key, r) // value with zero check bits
		acc := uint32(0)
		for _, c := range cs {
			if c != cellOf[ki] {
				acc ^= f.table[c]
			}
		}
		f.table[cellOf[ki]] = want ^ acc
	}
}

// Query returns the decoded weight at position p: the centroid for an
// encoded key, or 0 for an absent key (with false-positive probability
// 2^−CheckBits, in which case a spurious centroid is returned — the
// approximation Weightless accepts).
func (f *Filter) Query(p int) float32 {
	var cs [numHashes]int
	key := uint32(p)
	cells(f.Seed, key, f.M, &cs)
	r := uint(f.ValueBits + f.CheckBits)
	v := mask(f.Seed, key, r)
	for _, c := range cs {
		v ^= f.table[c]
	}
	if v>>uint(f.ValueBits) != 0 {
		return 0 // check bits nonzero → not a key
	}
	return f.Codebook[v&((1<<uint(f.ValueBits))-1)]
}

// Decompress reconstructs the full dense array by querying every position —
// the O(n · k-hash) cost the paper's Figure 7b highlights.
func (f *Filter) Decompress() []float32 {
	out := make([]float32, f.N)
	for p := range out {
		out[p] = f.Query(p)
	}
	return out
}

// Bytes returns the filter's storage: m r-bit cells (bit-packed) plus the
// codebook and header.
func (f *Filter) Bytes() int {
	r := f.ValueBits + f.CheckBits
	return (f.M*r+7)/8 + 4*len(f.Codebook) + 24
}

// Marshal serializes the filter (cells bit-packed).
func (f *Filter) Marshal() []byte {
	r := uint(f.ValueBits + f.CheckBits)
	w := bitstream.NewWriter()
	for _, c := range f.table {
		w.WriteBits(uint64(c), r)
	}
	cellsBlob := w.Bytes()

	out := make([]byte, 0, len(cellsBlob)+64)
	out = binary.LittleEndian.AppendUint32(out, uint32(f.N))
	out = binary.LittleEndian.AppendUint32(out, uint32(f.M))
	out = append(out, byte(f.ValueBits), byte(f.CheckBits))
	out = binary.LittleEndian.AppendUint64(out, f.Seed)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Codebook)))
	for _, v := range f.Codebook {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(cellsBlob)))
	return append(out, cellsBlob...)
}

// Unmarshal reverses Marshal.
func Unmarshal(blob []byte) (*Filter, error) {
	if len(blob) < 22 {
		return nil, ErrCorrupt
	}
	f := &Filter{
		N:         int(binary.LittleEndian.Uint32(blob[0:4])),
		M:         int(binary.LittleEndian.Uint32(blob[4:8])),
		ValueBits: int(blob[8]),
		CheckBits: int(blob[9]),
		Seed:      binary.LittleEndian.Uint64(blob[10:18]),
	}
	if f.ValueBits < 1 || f.ValueBits > 12 || f.CheckBits < 1 || f.M < 1 {
		return nil, ErrCorrupt
	}
	// Forged lengths must not drive huge allocations (2^31 positions = 8 GiB
	// dense output is far beyond any fc layer).
	if f.N < 0 || f.N > 1<<31 {
		return nil, ErrCorrupt
	}
	nCb := int(binary.LittleEndian.Uint32(blob[18:22]))
	off := 22
	if len(blob) < off+4*nCb+4 {
		return nil, ErrCorrupt
	}
	f.Codebook = make([]float32, nCb)
	for i := range f.Codebook {
		f.Codebook[i] = math.Float32frombits(binary.LittleEndian.Uint32(blob[off:]))
		off += 4
	}
	nb := int(binary.LittleEndian.Uint32(blob[off:]))
	off += 4
	if len(blob) < off+nb {
		return nil, ErrCorrupt
	}
	r := uint(f.ValueBits + f.CheckBits)
	if nb < (f.M*int(r)+7)/8 {
		return nil, ErrCorrupt
	}
	rd := bitstream.NewReader(blob[off : off+nb])
	f.table = make([]uint32, f.M)
	for i := range f.table {
		v, err := rd.ReadBits(r)
		if err != nil {
			return nil, ErrCorrupt
		}
		f.table[i] = uint32(v)
	}
	return f, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
